package dlpic

import (
	"math"
	"testing"

	"dlpic/internal/nn"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Cells = 32
	cfg.ParticlesPerCell = 30
	cfg.Vth = 0
	cfg.QuietStart = true
	cfg.PerturbAmp = 1e-4 * cfg.Length
	cfg.PerturbMode = 1
	return cfg
}

func testSpec(cfg Config) PhaseSpec {
	s := DefaultPhaseSpec(cfg)
	s.NX = cfg.Cells
	s.NV = 16
	return s
}

func TestDefaultConfigIsPaperSetup(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Cells != 64 {
		t.Errorf("Cells = %d, want 64", cfg.Cells)
	}
	if math.Abs(cfg.Length-2*math.Pi/3.06) > 1e-12 {
		t.Errorf("Length = %v, want 2*pi/3.06", cfg.Length)
	}
	if cfg.Dt != 0.2 || cfg.ParticlesPerCell != 1000 || cfg.V0 != 0.2 {
		t.Errorf("paper parameters wrong: %+v", cfg)
	}
}

func TestTraditionalGrowthThroughFacade(t *testing.T) {
	cfg := testConfig()
	sim, err := NewTraditional(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rec Recorder
	if err := sim.Run(150, &rec, nil); err != nil {
		t.Fatal(err)
	}
	fit, err := MeasureGrowthRate(&rec)
	if err != nil {
		t.Fatal(err)
	}
	want := TheoreticalGrowthRate(cfg)
	// Note: TheoreticalGrowthRate includes vth = 0 here, so this is the
	// clean cold rate.
	if math.Abs(fit.Gamma-want)/want > 0.15 {
		t.Fatalf("facade growth %v vs theory %v", fit.Gamma, want)
	}
}

func TestOracleDLPICThroughFacade(t *testing.T) {
	cfg := testConfig()
	sim, err := NewOracleDLPIC(cfg, testSpec(cfg))
	if err != nil {
		t.Fatal(err)
	}
	var rec Recorder
	if err := sim.Run(100, &rec, nil); err != nil {
		t.Fatal(err)
	}
	if sim.Method().Name() != "dl-oracle" {
		t.Fatalf("method %q", sim.Method().Name())
	}
}

func TestNewDLPICNilSolver(t *testing.T) {
	if _, err := NewDLPIC(testConfig(), nil); err == nil {
		t.Fatal("nil solver should fail")
	}
}

func TestTheoreticalGrowthRatePaperValue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Vth = 0
	got := TheoreticalGrowthRate(cfg)
	want := 1 / math.Sqrt(8) // K = 0.612 ~ sqrt(3/8): near-maximal growth
	if math.Abs(got-want) > 2e-4 {
		t.Fatalf("gamma = %v, want ~%v", got, want)
	}
}

func TestSweepConstructors(t *testing.T) {
	cfg := DefaultConfig()
	spec := DefaultPhaseSpec(cfg)
	paper := PaperSweep(cfg, spec, 1)
	if err := paper.Validate(); err != nil {
		t.Fatalf("paper sweep invalid: %v", err)
	}
	if len(paper.V0s)*len(paper.Vths) != 20 || paper.Repeats != 10 || paper.Steps != 200 {
		t.Fatalf("paper sweep is not the 20x10x200 corpus: %+v", paper)
	}
	scaled := ScaledSweep(cfg, spec, 1)
	if err := scaled.Validate(); err != nil {
		t.Fatalf("scaled sweep invalid: %v", err)
	}
	paperSamples := len(paper.V0s) * len(paper.Vths) * paper.Repeats * paper.Steps
	scaledSamples := len(scaled.V0s) * len(scaled.Vths) * scaled.Repeats * scaled.Steps / scaled.SampleEvery
	if scaledSamples >= paperSamples/10 {
		t.Fatalf("scaled sweep too large: %d vs paper %d", scaledSamples, paperSamples)
	}
}

func TestBuildNetworkArchitectures(t *testing.T) {
	cfg := testConfig()
	spec := testSpec(cfg)
	for _, arch := range []SolverArch{ArchMLP, ArchCNN, ArchResMLP} {
		opts := SolverOpts{Arch: arch, Hidden: 16, Layers: 1, Channels1: 2, Channels2: 2, Blocks: 1, Seed: 1}
		net, err := BuildNetwork(opts, spec, cfg.Cells)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if net.InDim != spec.Size() || net.OutDim() != cfg.Cells {
			t.Fatalf("%v: dims %d->%d, want %d->%d", arch, net.InDim, net.OutDim(), spec.Size(), cfg.Cells)
		}
	}
	if _, err := BuildNetwork(SolverOpts{Arch: SolverArch(99)}, spec, cfg.Cells); err == nil {
		t.Fatal("unknown arch should fail")
	}
}

func TestPaperSolverOptsSizes(t *testing.T) {
	o := PaperSolverOpts(ArchMLP, 1)
	if o.Hidden != 1024 || o.Layers != 3 {
		t.Fatalf("paper MLP sizing wrong: %+v", o)
	}
}

func TestArchString(t *testing.T) {
	if ArchMLP.String() != "MLP" || ArchCNN.String() != "CNN" || ArchResMLP.String() != "ResMLP" {
		t.Fatal("arch names wrong")
	}
}

// Full pipeline through the facade: generate -> normalize -> split ->
// train -> evaluate -> simulate -> save/load.
func TestEndToEndPipelineThroughFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test skipped in -short mode")
	}
	cfg := testConfig()
	cfg.Vth = 0.01
	cfg.QuietStart = false
	cfg.PerturbAmp = 1e-3 * cfg.Length
	spec := testSpec(cfg)
	sweep := SweepOpts{
		Base: cfg,
		V0s:  []float64{0.15, 0.2}, Vths: []float64{0.005},
		Repeats: 1, Steps: 80, SampleEvery: 1,
		Spec: spec, Seed: 3,
	}
	ds, err := GenerateDataset(sweep)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Normalize(); err != nil {
		t.Fatal(err)
	}
	ds.Shuffle(1)
	train, val, _, err := ds.Split(ds.N()-20, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	solver, hist, err := TrainSolver(
		SolverOpts{Arch: ArchMLP, Hidden: 48, Layers: 2, Seed: 7},
		train, val,
		TrainConfig{Epochs: 30, BatchSize: 32, Optimizer: nn.NewAdam(1e-3), Loss: nn.MSE{}, Seed: 9},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Epochs) != 30 {
		t.Fatalf("history length %d", len(hist.Epochs))
	}
	m := EvaluateSolver(solver, val)
	if m.MAE > 0.05 {
		t.Fatalf("solver MAE %v too high", m.MAE)
	}
	// Drive the loop.
	simCfg := cfg
	simCfg.Seed = 77
	sim, err := NewDLPIC(simCfg, solver)
	if err != nil {
		t.Fatal(err)
	}
	var rec Recorder
	if err := sim.Run(60, &rec, nil); err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	// Persistence.
	path := t.TempDir() + "/solver.dlpic"
	if err := SaveSolver(solver, cfg.Cells, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSolver(path)
	if err != nil {
		t.Fatal(err)
	}
	m2 := EvaluateSolver(loaded, val)
	if math.Abs(m2.MAE-m.MAE) > 1e-12 {
		t.Fatalf("loaded solver MAE %v != %v", m2.MAE, m.MAE)
	}
}

func TestTrainSolverRequiresNormalizedCorpus(t *testing.T) {
	cfg := testConfig()
	spec := testSpec(cfg)
	sweep := SweepOpts{
		Base: cfg, V0s: []float64{0.2}, Vths: []float64{0},
		Repeats: 1, Steps: 5, SampleEvery: 1, Spec: spec, Seed: 1,
	}
	ds, err := GenerateDataset(sweep)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = TrainSolver(SolverOpts{Arch: ArchMLP, Hidden: 8, Layers: 1},
		ds, nil, TrainConfig{Epochs: 1, BatchSize: 4, Optimizer: nn.NewAdam(0), Loss: nn.MSE{}})
	if err == nil {
		t.Fatal("un-normalized corpus should be rejected")
	}
}

func TestScenarioSweepThroughFacade(t *testing.T) {
	base := DefaultConfig()
	base.Cells = 32
	base.ParticlesPerCell = 60
	scs := SweepGrid(base, []float64{0.15, 0.2}, []float64{0.01}, 1, 30, 5)
	if len(scs) != 2 {
		t.Fatalf("got %d scenarios, want 2", len(scs))
	}
	results := RunSweep(scs, SweepRunOpts{Workers: 2})
	if err := FirstSweepError(results); err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Rec.Len() != 30 {
			t.Fatalf("scenario %d: %d samples, want 30", i, r.Rec.Len())
		}
		if r.TheoryGamma <= 0 {
			t.Fatalf("scenario %d: theory gamma %v, want > 0", i, r.TheoryGamma)
		}
	}
	// Same grid, serial pool: bit-identical diagnostics.
	serial := RunSweep(scs, SweepRunOpts{Workers: 1})
	for i := range serial {
		for j := range serial[i].Rec.Samples {
			if serial[i].Rec.Samples[j] != results[i].Rec.Samples[j] {
				t.Fatalf("scenario %d sample %d differs between worker counts", i, j)
			}
		}
	}
}
