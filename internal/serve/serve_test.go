package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dlpic/internal/campaign"
	"dlpic/internal/experiments"
	"dlpic/internal/pic"
	"dlpic/internal/sweep"
)

// testSpec is a seconds-scale model-free campaign: 2 scenarios x 2
// methods = 4 cells.
func testSpec() CampaignSpec {
	return CampaignSpec{
		V0s: []float64{0.15, 0.2}, Vths: []float64{0.01},
		Steps: 12, PPC: 40, Seed: 3,
		Methods: []string{experiments.MethodTraditional, experiments.MethodOracle},
	}
}

// serialDigest runs the spec's campaign directly — no daemon, no
// journal — mirroring the planner's construction, and returns its
// digest. This is the service's correctness oracle: whatever the
// daemon's queueing, deduping and resuming do, the digest must land
// here.
func serialDigest(t *testing.T, spec CampaignSpec) string {
	t.Helper()
	n := spec.normalized()
	names, _, _, err := experiments.ResolveMethodNames(strings.Join(n.Methods, ","))
	if err != nil {
		t.Fatal(err)
	}
	base := pic.Default()
	base.ParticlesPerCell = n.PPC
	specs, cleanup, err := experiments.MethodsWith(nil, names, experiments.MethodConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	results, err := campaign.Run("", campaign.Spec{
		Scenarios: sweep.Grid(base, n.V0s, n.Vths, n.Repeats, n.Steps, n.Seed),
		Opts:      sweep.Options{Workers: 2, Methods: specs},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.FirstError(results); err != nil {
		t.Fatal(err)
	}
	return campaign.Digest(results)
}

// waitTerminal blocks until the job leaves its transient states.
func waitTerminal(t *testing.T, d *Daemon, id string) JobStatus {
	t.Helper()
	seen := -1
	for {
		st, version, ok := d.WaitChange(id, seen, func() bool { return false })
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if terminal(st.State) {
			return st
		}
		seen = version
	}
}

// submit POSTs a spec and decodes the response status.
func submit(t *testing.T, url string, spec CampaignSpec) (JobStatus, int) {
	t.Helper()
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/campaigns", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

// TestSubmitPollDigest is the end-to-end happy path: submit over HTTP,
// follow the job to done, and match the digest of a direct serial
// campaign run.
func TestSubmitPollDigest(t *testing.T) {
	d, err := New(Config{DataDir: t.TempDir(), SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Drain()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	st, code := submit(t, srv.URL, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d, want 202", code)
	}
	final := waitTerminal(t, d, st.ID)
	if final.State != StateDone {
		t.Fatalf("job ended %s (error %q), want done", final.State, final.Error)
	}
	if final.Failed != 0 || final.Done != 4 || final.Total != 4 {
		t.Fatalf("job counters off: %+v", final)
	}
	if want := serialDigest(t, testSpec()); final.Digest != want {
		t.Fatalf("daemon digest %s != serial digest %s", final.Digest, want)
	}

	// The snapshot endpoints agree with the stream's terminal state.
	resp, err := http.Get(srv.URL + "/campaigns/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Digest != final.Digest || got.State != StateDone {
		t.Fatalf("GET snapshot %+v disagrees with terminal state", got)
	}
	if resp, err := http.Get(srv.URL + "/campaigns/nope"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
}

// TestAdmissionAndDedup drives admission control against a daemon whose
// executors never start, so the queue state is deterministic: dedup
// returns the existing job, the full queue refuses with 429, invalid
// specs with 400, and a draining daemon with 503.
func TestAdmissionAndDedup(t *testing.T) {
	d, err := newDaemon(Config{DataDir: t.TempDir(), QueueCap: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	a := testSpec()
	stA, code := submit(t, srv.URL, a)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d, want 202", code)
	}
	stA2, code := submit(t, srv.URL, a)
	if code != http.StatusOK || stA2.ID != stA.ID {
		t.Fatalf("duplicate submit: %d id %s, want 200 id %s", code, stA2.ID, stA.ID)
	}
	b := testSpec()
	b.Seed = 99
	if _, code := submit(t, srv.URL, b); code != http.StatusAccepted {
		t.Fatalf("second distinct submit: %d, want 202", code)
	}
	c := testSpec()
	c.Seed = 100
	if _, code := submit(t, srv.URL, c); code != http.StatusTooManyRequests {
		t.Fatalf("queue-full submit: %d, want 429", code)
	}

	bad := testSpec()
	bad.Methods = []string{"nope"}
	if _, code := submit(t, srv.URL, bad); code != http.StatusBadRequest {
		t.Fatalf("unknown-method submit: %d, want 400", code)
	}
	bad = testSpec()
	bad.Scale = "galactic"
	if _, code := submit(t, srv.URL, bad); code != http.StatusBadRequest {
		t.Fatalf("unknown-scale submit: %d, want 400", code)
	}
	bad = testSpec()
	bad.V0s = nil
	if _, code := submit(t, srv.URL, bad); code != http.StatusBadRequest {
		t.Fatalf("empty-axis submit: %d, want 400", code)
	}

	d.Drain() // no executors: returns once the pool is closed
	fresh := testSpec()
	fresh.Seed = 101
	if _, code := submit(t, srv.URL, fresh); code != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d, want 503", code)
	}
	// Dedup still answers during a drain — the job exists.
	if _, code := submit(t, srv.URL, a); code != http.StatusOK {
		t.Fatalf("draining duplicate submit: %d, want 200", code)
	}
}

// TestSpecIdentityNormalization pins the content addressing: spelled
// defaults and omitted defaults produce one ID, and identity-neutral
// fields (PPC under a DL method, MaxBatch without Batched) do not
// split jobs.
func TestSpecIdentityNormalization(t *testing.T) {
	a := CampaignSpec{V0s: []float64{0.2}, Vths: []float64{0}}
	b := CampaignSpec{
		Scale: ScaleTiny, V0s: []float64{0.2}, Vths: []float64{0},
		Repeats: 1, Steps: 200, PPC: 250,
		Methods: []string{experiments.MethodTraditional},
	}
	if a.ID() != b.ID() {
		t.Fatal("default spelling split the spec identity")
	}
	c := CampaignSpec{V0s: []float64{0.2}, Vths: []float64{0}, Methods: []string{experiments.MethodMLP}}
	cp := c
	cp.PPC = 777 // forced to zero under a DL method
	if c.ID() != cp.ID() {
		t.Fatal("PPC split a DL spec identity")
	}
	cb := c
	cb.MaxBatch = 8 // meaningless without Batched
	if c.ID() != cb.ID() {
		t.Fatal("MaxBatch without Batched split the identity")
	}
	cb.Batched = true
	if c.ID() == cb.ID() {
		t.Fatal("Batched did not change the identity")
	}
	d := c
	d.Seed = 1
	if c.ID() == d.ID() {
		t.Fatal("seed did not change the identity")
	}
}

// TestStream follows the SSE feed of one job: monotone non-decreasing
// done counters, terminal event state done with the digest, stream
// closed by the server afterwards.
func TestStream(t *testing.T) {
	d, err := New(Config{DataDir: t.TempDir(), SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Drain()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	st, code := submit(t, srv.URL, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	resp, err := http.Get(srv.URL + "/campaigns/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []JobStatus
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev JobStatus
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("stream delivered no events")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Done < events[i-1].Done {
			t.Fatalf("done counter went backwards: %d after %d", events[i].Done, events[i-1].Done)
		}
	}
	last := events[len(events)-1]
	if last.State != StateDone || last.Digest == "" || last.Done != 4 {
		t.Fatalf("terminal event %+v", last)
	}
	if _, err := http.Get(srv.URL + "/campaigns/nope/stream"); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentIdenticalSubmissions is the dedup property: N clients
// racing to submit one spec get one job id, exactly one creation, one
// journal on disk, and a digest bit-identical to the serial run.
func TestConcurrentIdenticalSubmissions(t *testing.T) {
	dir := t.TempDir()
	d, err := New(Config{DataDir: dir, SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Drain()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	const n = 6
	codes := make([]int, n)
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, code := submit(t, srv.URL, testSpec())
			codes[i], ids[i] = code, st.ID
		}(i)
	}
	wg.Wait()
	created := 0
	for i := 0; i < n; i++ {
		switch codes[i] {
		case http.StatusAccepted:
			created++
		case http.StatusOK:
		default:
			t.Fatalf("submission %d: status %d", i, codes[i])
		}
		if ids[i] != ids[0] {
			t.Fatalf("submission %d: id %s != %s", i, ids[i], ids[0])
		}
	}
	if created != 1 {
		t.Fatalf("%d submissions created jobs, want exactly 1", created)
	}
	final := waitTerminal(t, d, ids[0])
	if final.State != StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	journals, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(journals) != 1 {
		t.Fatalf("%d journals on disk, want 1 (%v)", len(journals), journals)
	}
	if want := serialDigest(t, testSpec()); final.Digest != want {
		t.Fatalf("deduped digest %s != serial %s", final.Digest, want)
	}
}

// TestResumeOnRestart is the crash-recovery property: a data directory
// holding a spec and a torn journal — the disk state a kill -9 leaves —
// is picked up by a fresh daemon, which re-enqueues the job, resumes
// from the journal, and lands on the uninterrupted run's digest.
func TestResumeOnRestart(t *testing.T) {
	// First life: run the campaign to completion to get the reference
	// digest and a full journal.
	dir1 := t.TempDir()
	d1, err := New(Config{DataDir: dir1, SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, created, err := d1.Submit(testSpec())
	if err != nil || !created {
		t.Fatalf("submit: %v created=%t", err, created)
	}
	ref := waitTerminal(t, d1, st.ID)
	if ref.State != StateDone {
		t.Fatalf("reference run ended %s", ref.State)
	}
	d1.Drain()

	// Fabricate the crash state: spec present, first half of the
	// journal, no result file.
	dir2 := t.TempDir()
	copyFile := func(name string) {
		buf, err := os.ReadFile(filepath.Join(dir1, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir2, name), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	copyFile(st.ID + ".spec.json")
	buf, err := os.ReadFile(filepath.Join(dir1, st.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(buf), "\n")
	if len(lines) < 4 {
		t.Fatalf("reference journal has %d lines, want >= 4", len(lines))
	}
	torn := strings.Join(lines[:2], "")
	if err := os.WriteFile(filepath.Join(dir2, st.ID+".jsonl"), []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	// Second life: the daemon must resume the job unprompted.
	d2, err := New(Config{DataDir: dir2, SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Drain()
	resumed := waitTerminal(t, d2, st.ID)
	if resumed.State != StateDone {
		t.Fatalf("resumed run ended %s: %s", resumed.State, resumed.Error)
	}
	if resumed.Digest != ref.Digest {
		t.Fatalf("resumed digest %s != reference %s", resumed.Digest, ref.Digest)
	}

	// Third life: now terminal, the job loads as done without re-running
	// (its journal must not grow).
	before, err := os.ReadFile(filepath.Join(dir2, st.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	d3, err := newDaemon(Config{DataDir: dir2}, false)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := d3.Status(st.ID)
	if !ok || got.State != StateDone || got.Digest != ref.Digest {
		t.Fatalf("terminal replay: %+v", got)
	}
	after, err := os.ReadFile(filepath.Join(dir2, st.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("terminal replay touched the journal")
	}
}

// TestSharedBundleAcrossJobs is the shared-cache property: two DL jobs
// whose specs imply one training fingerprint, running concurrently on
// two executors, train once — one bundle file — and both finish; and
// the batched variant of a spec lands on the unbatched variant's
// digest while drawing its server from the daemon's pool.
func TestSharedBundleAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("trains tiny MLPs")
	}
	dir := t.TempDir()
	d, err := New(Config{DataDir: dir, Executors: 2, SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Drain()

	mlp := CampaignSpec{
		Scale: ScaleTiny, V0s: []float64{0.15}, Vths: []float64{0.01},
		Steps: 6, Seed: 5, Methods: []string{experiments.MethodMLP},
	}
	batched := mlp
	batched.Batched = true
	stA, createdA, err := d.Submit(mlp)
	if err != nil || !createdA {
		t.Fatalf("submit mlp: %v", err)
	}
	stB, createdB, err := d.Submit(batched)
	if err != nil || !createdB {
		t.Fatalf("submit batched mlp: %v", err)
	}
	if stA.ID == stB.ID {
		t.Fatal("batched and unbatched specs collapsed onto one id")
	}
	finalA := waitTerminal(t, d, stA.ID)
	finalB := waitTerminal(t, d, stB.ID)
	if finalA.State != StateDone || finalB.State != StateDone {
		t.Fatalf("jobs ended %s / %s (%s / %s)", finalA.State, finalB.State, finalA.Error, finalB.Error)
	}
	if finalA.Digest != finalB.Digest {
		t.Fatalf("batched digest %s != per-call digest %s", finalB.Digest, finalA.Digest)
	}
	bundles, err := filepath.Glob(filepath.Join(d.BundleDir(), "*.dlpic"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 {
		t.Fatalf("%d bundles persisted, want 1 shared (%v)", len(bundles), bundles)
	}
}

// TestFailedJobReplay pins the failed-job protocol: a persisted result
// file carrying an error replays as a terminal failed job, so a
// restart never retries a deterministically failing campaign forever.
func TestFailedJobReplay(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec().normalized()
	id := spec.ID()
	if err := writeJSONFileAtomic(filepath.Join(dir, id+".spec.json"), spec); err != nil {
		t.Fatal(err)
	}
	if err := writeJSONFileAtomic(filepath.Join(dir, id+".result.json"),
		resultFile{ID: id, Cells: 4, Error: "plan: boom"}); err != nil {
		t.Fatal(err)
	}
	d, err := newDaemon(Config{DataDir: dir}, false)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := d.Status(id)
	if !ok || st.State != StateFailed || st.Error != "plan: boom" {
		t.Fatalf("failed job replayed as %+v", st)
	}
}

// TestJobsListing checks /campaigns returns every job sorted by id.
func TestJobsListing(t *testing.T) {
	d, err := newDaemon(Config{DataDir: t.TempDir(), QueueCap: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	var want []string
	for i := 0; i < 3; i++ {
		s := testSpec()
		s.Seed = uint64(10 + i)
		st, code := submit(t, srv.URL, s)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		want = append(want, st.ID)
	}
	resp, err := http.Get(srv.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].ID <= got[i-1].ID {
			t.Fatalf("listing not sorted: %s after %s", got[i].ID, got[i-1].ID)
		}
	}
	listed := map[string]bool{}
	for _, st := range got {
		listed[st.ID] = true
	}
	for _, id := range want {
		if !listed[id] {
			t.Fatalf("job %s missing from listing", id)
		}
	}
}

// postSpec submits a spec and returns the raw response so tests can
// inspect headers.
func postSpec(t *testing.T, url string, spec CampaignSpec) *http.Response {
	t.Helper()
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/campaigns", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestAdmissionRetryAfterHints: admission refusals carry Retry-After
// so well-behaved clients back off instead of hammering — a short hint
// on a full queue (drains at campaign speed), a longer one on a drain
// (usually precedes a restart).
func TestAdmissionRetryAfterHints(t *testing.T) {
	d, err := newDaemon(Config{DataDir: t.TempDir(), QueueCap: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp := postSpec(t, srv.URL, testSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "" {
		t.Fatalf("accepted submit carries Retry-After %q", got)
	}
	over := testSpec()
	over.Seed = 99
	resp = postSpec(t, srv.URL, over)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full submit: %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterQueueFull {
		t.Fatalf("queue-full Retry-After %q, want %q", got, retryAfterQueueFull)
	}

	d.Drain()
	fresh := testSpec()
	fresh.Seed = 100
	resp = postSpec(t, srv.URL, fresh)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterDraining {
		t.Fatalf("draining Retry-After %q, want %q", got, retryAfterDraining)
	}
}

// TestStreamLastEventID: every SSE event carries its job version as the
// SSE id, and a reconnect with Last-Event-ID set to the last-seen id
// waits for the next change instead of replaying the snapshot the
// client already has. Driven against a daemon whose executors never
// start, so the job sits at one version deterministically.
func TestStreamLastEventID(t *testing.T) {
	d, err := newDaemon(Config{DataDir: t.TempDir()}, false)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	st, code := submit(t, srv.URL, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}

	// streamEvents reads SSE (id, data) pairs until the deadline or EOF.
	type event struct {
		id   int
		data string
	}
	streamEvents := func(lastEventID string, timeout time.Duration) []event {
		t.Helper()
		req, err := http.NewRequest("GET", srv.URL+"/campaigns/"+st.ID+"/stream", nil)
		if err != nil {
			t.Fatal(err)
		}
		if lastEventID != "" {
			req.Header.Set("Last-Event-ID", lastEventID)
		}
		client := &http.Client{Timeout: timeout}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var events []event
		cur := event{id: -1}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "id: "):
				id, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
				if err != nil {
					t.Fatalf("bad SSE id line %q: %v", line, err)
				}
				cur.id = id
			case strings.HasPrefix(line, "data: "):
				cur.data = strings.TrimPrefix(line, "data: ")
			case line == "":
				if cur.data != "" {
					events = append(events, cur)
					cur = event{id: -1}
				}
			}
		}
		return events // scanner error = client timeout, by design
	}

	// A fresh stream delivers the current snapshot immediately, with its
	// version as the SSE id.
	first := streamEvents("", 2*time.Second)
	if len(first) == 0 {
		t.Fatal("fresh stream delivered no snapshot")
	}
	if first[0].id < 0 {
		t.Fatal("event has no id line")
	}
	var ev JobStatus
	if err := json.Unmarshal([]byte(first[0].data), &ev); err != nil {
		t.Fatalf("bad event payload %q: %v", first[0].data, err)
	}
	if ev.State != StateQueued {
		t.Fatalf("snapshot state %q, want queued", ev.State)
	}

	// Reconnecting with that id: the server holds the stream open
	// waiting for a change instead of replaying the same snapshot.
	if resumed := streamEvents(strconv.Itoa(first[0].id), 500*time.Millisecond); len(resumed) != 0 {
		t.Fatalf("resume at id %d replayed %d events: %+v", first[0].id, len(resumed), resumed)
	}
	// Reconnecting below that id replays the snapshot at once.
	behind := streamEvents(strconv.Itoa(first[0].id-1), 2*time.Second)
	if len(behind) == 0 || behind[0].id != first[0].id {
		t.Fatalf("resume below current version got %+v, want snapshot id %d", behind, first[0].id)
	}
	// A malformed header is ignored, not an error: full snapshot again.
	if mal := streamEvents("not-a-number", 2*time.Second); len(mal) == 0 {
		t.Fatal("malformed Last-Event-ID suppressed the snapshot")
	}
}
