package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"dlpic/internal/campaign"
	"dlpic/internal/dist"
	"dlpic/internal/experiments"
	"dlpic/internal/pic"
	"dlpic/internal/sweep"
)

// plan compiles a job's spec into an executable campaign: method
// registry, scenario grid, progress plumbing and the drain interrupt.
// It mirrors the CLI's -scan path with two service-specific twists —
// model bundles always persist into the daemon's shared bundle
// directory, and batched DL methods draw their inference servers from
// the daemon's pool so concurrent campaigns share one live server per
// model identity.
//
// For a distributed DL campaign the pipeline builds eagerly —
// train-then-distribute: workers must be able to fetch the trained
// bundles the moment they claim, so training cannot hide inside a
// lazily-invoked provider that only the daemon-local execution path
// would trigger. The returned refs are those bundles' wire identities
// (empty for model-free or non-distributed jobs); runJob hands them to
// the hub so every grant can carry them.
func (d *Daemon) plan(j *job) (campaign.Spec, int, []dist.BundleRef, error) {
	spec := j.spec
	names, needMLP, needCNN, err := experiments.ResolveMethodNames(strings.Join(spec.Methods, ","))
	if err != nil {
		return campaign.Spec{}, 0, nil, err
	}

	var provider experiments.PipelineProvider
	var refs []dist.BundleRef
	base := pic.Default()
	base.ParticlesPerCell = spec.PPC
	if needMLP || needCNN {
		pipeOpts := experiments.Options{
			Tiny:         spec.Scale == ScaleTiny,
			Paper:        spec.Scale == ScalePaper,
			Seed:         spec.Seed,
			Log:          d.cfg.Log,
			SkipCNN:      !needCNN,
			TrainWorkers: d.cfg.TrainWorkers,
			BundleDir:    d.BundleDir(),
		}
		base = pipeOpts.BaseConfig()
		if spec.Distributed {
			p, err := experiments.New(pipeOpts)
			if err != nil {
				return campaign.Spec{}, 0, nil, err
			}
			provider = experiments.FixedPipeline(p)
			refs, err = bundleRefs(p, names)
			if err != nil {
				return campaign.Spec{}, 0, nil, err
			}
		} else {
			provider = experiments.NewPipelineProvider(pipeOpts)
		}
	}
	mc := experiments.MethodConfig{Batched: spec.Batched, MaxBatch: spec.MaxBatch}
	if spec.Batched {
		mc.Pool = d.pool
		// Everything the pooled server depends on: the training
		// identity inputs (scale, seed — the shared bundle directory
		// fixes the rest) plus the method and the flush cap.
		mc.PoolKey = func(method string) string {
			return fmt.Sprintf("%s|seed=%d|%s|mb=%d", spec.Scale, spec.Seed, method, spec.MaxBatch)
		}
	}
	specs, _, err := experiments.MethodsWith(provider, names, mc)
	if err != nil {
		return campaign.Spec{}, 0, nil, err
	}

	scenarios := sweep.Grid(base, spec.V0s, spec.Vths, spec.Repeats, spec.Steps, spec.Seed)
	total := len(scenarios) * len(specs)
	// The retry policy is seeded from the spec so backoff schedules are
	// part of the job's deterministic behavior; distributed jobs get a
	// real base delay because their transient failures (injected RPC
	// faults, worker churn) are expected rather than exceptional.
	retry := campaign.RetryPolicy{Seed: spec.Seed}
	if spec.Distributed {
		retry.BaseDelay = 100 * time.Millisecond
	}
	return campaign.Spec{
		Scenarios: scenarios,
		Opts: sweep.Options{
			Workers: d.cfg.SweepWorkers,
			Methods: specs,
			Progress: func(done, n int) {
				d.setProgress(j, done, n)
			},
		},
		Retry:     retry,
		Interrupt: d.drainingNow,
	}, total, refs, nil
}

// bundleRefs turns the pipeline's persisted bundles into wire refs for
// the DL methods in names. A DL method whose bundle never landed on
// disk (persistence failure — already logged by the store) cannot be
// distributed: failing the job here beats shipping workers a method
// they can never resolve.
func bundleRefs(p *experiments.Pipeline, names []string) ([]dist.BundleRef, error) {
	var refs []dist.BundleRef
	for _, name := range names {
		if name != experiments.MethodMLP && name != experiments.MethodCNN {
			continue
		}
		path, ok := p.BundlePaths[name]
		if !ok {
			return nil, fmt.Errorf("serve: distributed method %q has no persisted model bundle to ship", name)
		}
		ref, err := dist.BundleRefFromFile(name, path)
		if err != nil {
			return nil, err
		}
		refs = append(refs, ref)
	}
	return refs, nil
}

// readJSONFile decodes one JSON file into v; a missing file surfaces
// as os.IsNotExist.
func readJSONFile(path string, v any) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(buf, v)
}

// writeJSONFileAtomic writes v as JSON with the artifact store's
// durability pattern: encode to a temp file, fsync, rename into place.
// A kill at any point leaves either no file or a complete one.
func writeJSONFileAtomic(path string, v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(buf, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
