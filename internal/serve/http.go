package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// maxSpecBytes bounds one submitted spec body. Specs are a few hundred
// bytes of axes and names; a megabyte is generous.
const maxSpecBytes = 1 << 20

// Retry-After hints (seconds) on admission refusals: a full queue
// drains at campaign speed, a draining daemon is usually about to
// restart.
const (
	retryAfterQueueFull = "2"
	retryAfterDraining  = "15"
)

// Handler returns the daemon's HTTP API:
//
//	GET  /healthz                 liveness probe
//	POST /campaigns               submit a CampaignSpec (JSON body);
//	                              202 new job, 200 deduped onto an
//	                              existing one, 400 invalid, 429 queue
//	                              full, 503 draining (the refusals
//	                              carry Retry-After hints)
//	GET  /campaigns               every job, sorted by id
//	GET  /campaigns/{id}          one job snapshot, 404 unknown
//	GET  /campaigns/{id}/stream   server-sent events: one JobStatus per
//	                              observable change, closing after the
//	                              terminal snapshot; each event carries
//	                              its version as the SSE id, and a
//	                              reconnect with Last-Event-ID resumes
//	                              after that version instead of
//	                              replaying
//
// A coordinator-mode daemon additionally mounts the distributed
// execution endpoints (POST /dist/claim, /dist/heartbeat,
// /dist/complete — see dist.Hub.Register).
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	if d.hub != nil {
		d.hub.Register(mux)
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /campaigns", d.handleSubmit)
	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Jobs())
	})
	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := d.Status(r.PathValue("id"))
		if !ok {
			http.Error(w, "unknown job", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /campaigns/{id}/stream", d.handleStream)
	return mux
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec CampaignSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "bad spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	st, created, err := d.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// A full queue drains at campaign speed; a couple of seconds
		// is a sane resubmit pace for a well-behaved client.
		w.Header().Set("Retry-After", retryAfterQueueFull)
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrDraining):
		// Draining usually precedes a restart; hint clients to come
		// back after a plausible restart window.
		w.Header().Set("Retry-After", retryAfterDraining)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
	case created:
		writeJSON(w, http.StatusAccepted, st)
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

// handleStream is the per-cell progress feed: a server-sent-events
// stream pushing one JobStatus snapshot per observable change (state
// transitions and cell completions), ending after the terminal one.
func (d *Daemon) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := d.Status(id); !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Flush the headers before blocking in WaitChange: a resumed client
	// waiting for the next change must see the stream open immediately.
	fl.Flush()

	ctx := r.Context()
	// A dying connection must unblock the WaitChange loop: translate
	// its cancellation into the daemon's one wakeup channel.
	go func() {
		<-ctx.Done()
		d.Wake()
	}()
	stop := func() bool { return ctx.Err() != nil }

	// Send the current snapshot first, then one event per change. Each
	// event's SSE id is the job version it snapshots; a reconnecting
	// client (EventSource sends Last-Event-ID automatically) resumes
	// waiting *after* that version instead of replaying the history it
	// already saw.
	seen := -1
	if v, err := strconv.Atoi(r.Header.Get("Last-Event-ID")); err == nil && v >= 0 {
		seen = v
	}
	for {
		st, version, ok := d.WaitChange(id, seen, stop)
		if !ok || stop() {
			return
		}
		buf, err := json.Marshal(st)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", version, buf); err != nil {
			return
		}
		fl.Flush()
		if terminal(st.State) {
			return
		}
		seen = version
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	buf, err := json.Marshal(v)
	if err != nil {
		return
	}
	w.Write(append(buf, '\n'))
}
