// Package serve turns campaign execution into a long-running service:
// a daemon that accepts campaign specs over HTTP, runs them on a
// bounded executor pool, and survives both graceful drains and kill -9
// by leaning on the campaign journal for resume.
//
// Identity model. Every submitted spec is normalized and
// content-addressed (CampaignSpec.ID); the job id keys everything —
// the on-disk spec file, the campaign journal, the result file, and
// in-memory dedup. Submitting a spec the daemon already knows returns
// the existing job instead of enqueueing a duplicate, so N clients
// racing to submit the same campaign cost one computation.
//
// Persistence protocol. DataDir holds, per job, "<id>.spec.json"
// (written atomically at admission), "<id>.jsonl" (the campaign
// journal, appended cell by cell while the job runs) and
// "<id>.result.json" (written atomically at completion). A restarting
// daemon replays the directory: spec with result loads as a terminal
// job, spec without result re-enqueues — and the journal then restores
// every completed cell bit-identically, so the resumed run recomputes
// only what the crash interrupted. Model bundles live in a shared
// "bundles" subdirectory keyed by training fingerprints, so jobs
// whose specs imply the same trained model share one artifact (the
// experiments-layer training singleflight makes concurrent builds of
// one fingerprint train once).
//
// Drain protocol. Drain stops the executors at the next cell boundary
// (campaign.Spec.Interrupt), marks in-flight jobs interrupted without
// writing a result file, and closes the shared inference pool.
// Submissions during a drain are refused (503). Because interrupted
// jobs keep their spec-without-result state on disk, the next daemon
// start resumes them automatically.
package serve

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dlpic/internal/batch"
	"dlpic/internal/campaign"
	"dlpic/internal/dist"
	"dlpic/internal/sweep"
)

// Job states reported by JobStatus.State. Queued and running are
// transient; done and failed are terminal and persisted; interrupted
// is terminal only for the current process — the job's spec stays
// result-less on disk, so a restarted daemon re-enqueues it.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted"
)

// Config configures a Daemon. The zero value of every field but
// DataDir is usable.
type Config struct {
	// DataDir is the daemon's persistent root: specs, journals,
	// results, and the shared bundles/ directory. Required.
	DataDir string
	// QueueCap bounds the admission queue; a submission arriving with
	// QueueCap jobs already queued is refused with 429 (<= 0 selects 8).
	QueueCap int
	// Executors is the number of concurrent campaign runners (<= 0
	// selects 1).
	Executors int
	// SweepWorkers is the per-campaign sweep pool size (0 = one per
	// core, the sweep engine's default).
	SweepWorkers int
	// TrainWorkers is the training parallelism handed to the
	// experiments pipeline (0 = its default).
	TrainWorkers int
	// Coordinator enables distributed execution: the daemon hosts a
	// dist.Hub, mounts its lease endpoints, and jobs whose spec sets
	// Distributed run on remote workers instead of the local sweep
	// pool. Off by default — a plain daemon refuses distributed specs.
	Coordinator bool
	// LeaseTTL is the distributed lease lifetime (<= 0 selects
	// dist.DefaultLeaseTTL). Only meaningful with Coordinator.
	LeaseTTL time.Duration
	// Log receives the daemon's progress lines (nil = discard).
	Log io.Writer
}

// job is the daemon-internal state of one campaign.
type job struct {
	id     string
	spec   CampaignSpec // normalized
	state  string
	done   int
	total  int
	digest string
	failed int
	errMsg string
	// version increments on every observable change; streamers wait on
	// the daemon cond for it to move.
	version int
}

// JobStatus is the wire-format snapshot of one job.
type JobStatus struct {
	ID     string       `json:"id"`
	State  string       `json:"state"`
	Done   int          `json:"done"`
	Total  int          `json:"total"`
	Digest string       `json:"digest,omitempty"`
	Failed int          `json:"failed,omitempty"`
	Error  string       `json:"error,omitempty"`
	Spec   CampaignSpec `json:"spec"`
}

// Daemon is the campaign service: admission queue, executor pool,
// shared batched-inference pool, and the persistence protocol above.
// One mutex plus one condition variable order everything; the cond is
// broadcast on every observable change so pollers, streamers, drain
// waiters and executors all share a single wakeup discipline.
type Daemon struct {
	cfg  Config
	pool *batch.Pool
	// hub coordinates distributed jobs; nil unless Config.Coordinator.
	hub *dist.Hub

	mu        sync.Mutex
	cond      *sync.Cond
	jobs      map[string]*job
	queue     []*job
	draining  bool
	executors int
}

// New builds a daemon over cfg.DataDir, replays the directory's
// jobs (terminal ones load, unfinished ones re-enqueue for
// journal-backed resume) and starts the executor pool.
func New(cfg Config) (*Daemon, error) {
	return newDaemon(cfg, true)
}

// newDaemon is New with the executor pool optional, so tests can drive
// admission and dedup against a deterministically idle daemon.
func newDaemon(cfg Config, startExecutors bool) (*Daemon, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("serve: Config.DataDir is required")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 8
	}
	if cfg.Executors <= 0 {
		cfg.Executors = 1
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: data dir: %w", err)
	}
	d := &Daemon{cfg: cfg, pool: batch.NewPool(), jobs: map[string]*job{}}
	if cfg.Coordinator {
		d.hub = dist.NewHub(dist.Options{
			LeaseTTL: cfg.LeaseTTL,
			Log:      cfg.Log,
			// The hub serves the daemon's shared bundle store, so
			// grants' BundleRefs resolve against GET /bundles/{fp}.
			BundleDir: filepath.Join(cfg.DataDir, "bundles"),
		})
	}
	d.cond = sync.NewCond(&d.mu)
	if err := d.replay(); err != nil {
		return nil, err
	}
	if startExecutors {
		d.mu.Lock()
		d.executors = cfg.Executors
		d.mu.Unlock()
		for i := 0; i < cfg.Executors; i++ {
			go d.executor()
		}
	}
	return d, nil
}

// replay loads the persisted jobs of DataDir in sorted (deterministic)
// order: spec+result = terminal, spec alone = re-enqueued.
func (d *Daemon) replay() error {
	specs, err := filepath.Glob(filepath.Join(d.cfg.DataDir, "*.spec.json"))
	if err != nil {
		return err
	}
	sort.Strings(specs)
	for _, path := range specs {
		id := strings.TrimSuffix(filepath.Base(path), ".spec.json")
		var spec CampaignSpec
		if err := readJSONFile(path, &spec); err != nil {
			return fmt.Errorf("serve: replay %s: %w", path, err)
		}
		spec = spec.normalized()
		if got := spec.ID(); got != id {
			return fmt.Errorf("serve: replay %s: spec hashes to %s", path, got)
		}
		j := &job{id: id, spec: spec}
		var res resultFile
		switch err := readJSONFile(d.resultPath(id), &res); {
		case err == nil:
			j.digest, j.failed, j.errMsg = res.Digest, res.Failed, res.Error
			j.done, j.total = res.Cells, res.Cells
			j.state = StateDone
			if res.Error != "" {
				j.state = StateFailed
			}
		case os.IsNotExist(err):
			// Unfinished (queued at shutdown, or killed mid-run): the
			// journal carries whatever completed; re-enqueue to resume.
			j.state = StateQueued
			d.queue = append(d.queue, j)
			d.logf("[serve] replay: resuming job %s", id)
		default:
			return fmt.Errorf("serve: replay result of %s: %w", id, err)
		}
		d.jobs[id] = j
	}
	return nil
}

// Submit admits a spec: it normalizes, validates and content-addresses
// it, dedups against every known job, and enqueues a new one. The
// returned bool reports whether the job is new (false = deduped onto
// an existing job). ErrQueueFull and ErrDraining are admission
// refusals; other errors are invalid specs.
func (d *Daemon) Submit(spec CampaignSpec) (JobStatus, bool, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, false, err
	}
	if spec.Distributed && d.hub == nil {
		return JobStatus{}, false, errors.New("serve: distributed spec needs a coordinator daemon (start with -coordinator)")
	}
	n := spec.normalized()
	id := n.ID()
	d.mu.Lock()
	defer d.mu.Unlock()
	if j, ok := d.jobs[id]; ok {
		return d.statusLocked(j), false, nil
	}
	if d.draining {
		return JobStatus{}, false, ErrDraining
	}
	if len(d.queue) >= d.cfg.QueueCap {
		return JobStatus{}, false, ErrQueueFull
	}
	// Persist the spec before exposing the job: a daemon killed right
	// after the 202 must still know the job at restart.
	if err := writeJSONFileAtomic(d.specPath(id), n); err != nil {
		return JobStatus{}, false, fmt.Errorf("serve: persist spec: %w", err)
	}
	j := &job{id: id, spec: n, state: StateQueued}
	d.jobs[id] = j
	d.queue = append(d.queue, j)
	d.cond.Broadcast()
	d.logf("[serve] job %s queued (%d in queue)", id, len(d.queue))
	return d.statusLocked(j), true, nil
}

// Admission-refusal sentinels: the queue is full (HTTP 429) or the
// daemon is draining (HTTP 503).
var (
	ErrQueueFull = errors.New("serve: job queue full")
	ErrDraining  = errors.New("serve: daemon draining")
)

// Status returns the snapshot of one job.
func (d *Daemon) Status(id string) (JobStatus, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return d.statusLocked(j), true
}

// Jobs returns every known job's snapshot, sorted by id.
func (d *Daemon) Jobs() []JobStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := make([]string, 0, len(d.jobs))
	for id := range d.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]JobStatus, len(ids))
	for i, id := range ids {
		out[i] = d.statusLocked(d.jobs[id])
	}
	return out
}

// WaitChange blocks until the job's version differs from seen, the job
// reaches a terminal-for-this-process state, or stop returns true; it
// returns the fresh snapshot and version. Streamers drive it in a
// loop, passing a stop that reflects their connection context.
func (d *Daemon) WaitChange(id string, seen int, stop func() bool) (JobStatus, int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return JobStatus{}, 0, false
	}
	for j.version == seen && !terminal(j.state) && !stop() {
		d.cond.Wait()
	}
	return d.statusLocked(j), j.version, true
}

// Wake broadcasts the daemon's condition variable. Streamers call it
// when their connection dies so their WaitChange loop re-checks stop.
func (d *Daemon) Wake() {
	d.mu.Lock()
	d.cond.Broadcast()
	d.mu.Unlock()
}

// Drain stops accepting work, interrupts running campaigns at the next
// cell boundary, waits for the executors to exit, and closes the
// shared inference pool. Idempotent; safe to call on a daemon whose
// executors were never started.
func (d *Daemon) Drain() {
	d.mu.Lock()
	if !d.draining {
		d.draining = true
		d.cond.Broadcast()
		d.logf("[serve] draining")
	}
	for d.executors > 0 {
		d.cond.Wait()
	}
	d.mu.Unlock()
	d.pool.Close()
}

// terminal reports whether a state ends a job for this process.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateInterrupted
}

func (d *Daemon) statusLocked(j *job) JobStatus {
	return JobStatus{
		ID: j.id, State: j.state, Done: j.done, Total: j.total,
		Digest: j.digest, Failed: j.failed, Error: j.errMsg, Spec: j.spec,
	}
}

func (d *Daemon) specPath(id string) string {
	return filepath.Join(d.cfg.DataDir, id+".spec.json")
}

// JournalPath returns the campaign journal of one job id.
func (d *Daemon) JournalPath(id string) string {
	return filepath.Join(d.cfg.DataDir, id+".jsonl")
}

func (d *Daemon) resultPath(id string) string {
	return filepath.Join(d.cfg.DataDir, id+".result.json")
}

// BundleDir returns the shared model-bundle directory all jobs key
// their trained artifacts into.
func (d *Daemon) BundleDir() string {
	return filepath.Join(d.cfg.DataDir, "bundles")
}

func (d *Daemon) drainingNow() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

func (d *Daemon) logf(format string, args ...any) {
	fmt.Fprintf(d.cfg.Log, format+"\n", args...)
}

// executor is one runner goroutine: pop, run, repeat, exit on drain.
func (d *Daemon) executor() {
	for {
		j := d.next()
		if j == nil {
			return
		}
		d.runJob(j)
	}
}

// next blocks for the next queued job; nil means the daemon is
// draining and the executor must exit (its exit is what Drain waits
// on).
func (d *Daemon) next() *job {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.draining {
			d.executors--
			d.cond.Broadcast()
			return nil
		}
		if len(d.queue) > 0 {
			j := d.queue[0]
			d.queue = d.queue[1:]
			j.state = StateRunning
			j.version++
			d.cond.Broadcast()
			return j
		}
		d.cond.Wait()
	}
}

// setProgress publishes a running job's cell counter.
func (d *Daemon) setProgress(j *job, done, total int) {
	d.mu.Lock()
	j.done, j.total = done, total
	j.version++
	d.cond.Broadcast()
	d.mu.Unlock()
}

// finish publishes a job's end-of-run state.
func (d *Daemon) finish(j *job, state string, digest string, failed int, errMsg string) {
	d.mu.Lock()
	j.state, j.digest, j.failed, j.errMsg = state, digest, failed, errMsg
	j.version++
	d.cond.Broadcast()
	d.mu.Unlock()
	d.logf("[serve] job %s %s", j.id, state)
}

// resultFile is the persisted completion record of one job.
type resultFile struct {
	ID     string `json:"id"`
	Digest string `json:"digest,omitempty"`
	Cells  int    `json:"cells"`
	Failed int    `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`
}

// runJob executes one campaign end to end: plan, run against the
// job's journal (resuming whatever an earlier process completed),
// classify the outcome, persist it. Interrupted runs persist nothing —
// their journal is their checkpoint.
func (d *Daemon) runJob(j *job) {
	cspec, total, bundles, err := d.plan(j)
	if err != nil {
		d.persistFailure(j, total, fmt.Errorf("plan: %w", err))
		return
	}
	d.mu.Lock()
	j.total = total
	j.version++
	d.cond.Broadcast()
	d.mu.Unlock()
	var results []sweep.Result
	if j.spec.Distributed {
		// Distributed jobs run on the hub's remote workers: the
		// coordinator leases cells out and stays the journal's only
		// writer, so the journal/resume/digest contract is untouched.
		results, err = d.hub.Run(j.id, d.JournalPath(j.id), cspec, bundles...)
	} else {
		results, err = campaign.Run(d.JournalPath(j.id), cspec)
	}
	if err != nil {
		d.persistFailure(j, total, err)
		return
	}
	if campaign.Interrupted(results) {
		// Drained mid-run: completed cells are journaled, the rest
		// pending. No result file — the next daemon start resumes.
		d.finish(j, StateInterrupted, "", 0, "")
		return
	}
	failed := 0
	for i := range results {
		if results[i].Err != nil {
			failed++
		}
	}
	res := resultFile{ID: j.id, Digest: campaign.Digest(results), Cells: len(results), Failed: failed}
	if err := writeJSONFileAtomic(d.resultPath(j.id), res); err != nil {
		d.persistFailure(j, total, fmt.Errorf("persist result: %w", err))
		return
	}
	d.mu.Lock()
	j.done, j.total = total, total
	d.mu.Unlock()
	d.finish(j, StateDone, res.Digest, failed, "")
}

// persistFailure records a job-level failure (not per-cell: those live
// in the digest) both in memory and on disk, so a restart does not
// retry a deterministically failing job forever.
func (d *Daemon) persistFailure(j *job, total int, err error) {
	res := resultFile{ID: j.id, Cells: total, Error: err.Error()}
	if werr := writeJSONFileAtomic(d.resultPath(j.id), res); werr != nil {
		d.logf("[serve] job %s: persist failure record: %v", j.id, werr)
	}
	d.finish(j, StateFailed, "", 0, err.Error())
}
