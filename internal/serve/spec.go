package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"dlpic/internal/experiments"
)

// Scale names accepted by CampaignSpec.Scale, mirroring the experiment
// pipeline's three operating points.
const (
	ScaleTiny   = "tiny"
	ScaleScaled = "scaled"
	ScalePaper  = "paper"
)

// CampaignSpec is the wire-format description of one campaign job: the
// scenario grid axes crossed with a method registry, plus the scale
// knobs the experiments pipeline needs when a DL method is requested.
// It deliberately mirrors the `experiments -scan` flag surface — a spec
// is a scan request that outlives the request connection.
//
// Specs are content-addressed: ID is a fingerprint of the normalized
// spec, so two submissions that mean the same campaign collapse onto
// one job no matter how they spell defaults. The zero values of
// optional fields are therefore semantic: Methods defaults to
// traditional-only, Scale to tiny, Repeats to 1, Steps to 200; PPC
// defaults to 250 for model-free campaigns and is *forced* to zero
// when a DL method is present (the trained model fixes the base
// configuration, so a stray PPC must not split identical jobs into
// distinct IDs).
type CampaignSpec struct {
	// Scale selects the pipeline operating point (tiny, scaled, paper).
	// Model-free campaigns ignore it physically but it stays part of
	// the identity, normalized to tiny.
	Scale string `json:"scale,omitempty"`
	// V0s and Vths are the scan grid axes (beam drift and thermal
	// velocities). Required, non-empty.
	V0s  []float64 `json:"v0s"`
	Vths []float64 `json:"vths"`
	// Repeats replicates each grid point with distinct seeds.
	Repeats int `json:"repeats,omitempty"`
	// Steps is the per-scenario step count.
	Steps int `json:"steps,omitempty"`
	// PPC overrides particles per cell for model-free campaigns.
	PPC int `json:"ppc,omitempty"`
	// Seed drives scenario seeding and, for DL methods, the pipeline.
	Seed uint64 `json:"seed,omitempty"`
	// Methods is the comparison registry (see experiments.KnownMethods).
	Methods []string `json:"methods,omitempty"`
	// Batched routes DL field solves through the daemon's shared
	// batched-inference pool; MaxBatch caps one flush (<= 0 default).
	// Both are identity-neutral for model-free campaigns (forced to
	// zero: they change nothing there).
	Batched  bool `json:"batched,omitempty"`
	MaxBatch int  `json:"max_batch,omitempty"`
	// Distributed fans the campaign's cells across remote dlpicworker
	// processes via the daemon's coordinator hub instead of the local
	// sweep pool. Identity-bearing (like Batched) even though the
	// digest is provably execution-invariant — where a campaign runs is
	// part of what was asked for. Requires a coordinator-mode daemon.
	// DL methods train in the daemon first (bundle store), then ship to
	// workers as fingerprint-addressed model bundles; Batched is a
	// local-execution knob and cannot combine with Distributed.
	Distributed bool `json:"distributed,omitempty"`
}

// normalized returns the canonical form of the spec: defaults filled
// in, identity-neutral fields zeroed. ID and the planner both consume
// only normalized specs.
func (s CampaignSpec) normalized() CampaignSpec {
	n := s
	if n.Scale == "" {
		n.Scale = ScaleTiny
	}
	if len(n.Methods) == 0 {
		n.Methods = []string{experiments.MethodTraditional}
	}
	if n.Repeats <= 0 {
		n.Repeats = 1
	}
	if n.Steps <= 0 {
		n.Steps = 200
	}
	needDL := false
	for _, m := range n.Methods {
		if m == experiments.MethodMLP || m == experiments.MethodCNN {
			needDL = true
		}
	}
	if needDL {
		// The trained model fixes the base configuration; PPC is
		// meaningless and must not split identities.
		n.PPC = 0
	} else {
		if n.PPC <= 0 {
			n.PPC = 250
		}
		// Batching only exists for DL methods.
		n.Batched = false
		n.MaxBatch = 0
	}
	if !n.Batched {
		n.MaxBatch = 0
	}
	return n
}

// Validate checks the normalized spec, returning a submission-refusing
// error (HTTP 400) on the first problem.
func (s CampaignSpec) Validate() error {
	n := s.normalized()
	switch n.Scale {
	case ScaleTiny, ScaleScaled, ScalePaper:
	default:
		return fmt.Errorf("serve: unknown scale %q (want %s, %s or %s)",
			n.Scale, ScaleTiny, ScaleScaled, ScalePaper)
	}
	if len(n.V0s) == 0 || len(n.Vths) == 0 {
		return fmt.Errorf("serve: empty scan axes (v0s x vths is the scenario grid)")
	}
	_, needMLP, needCNN, err := experiments.ResolveMethodNames(strings.Join(n.Methods, ","))
	if err != nil {
		return err
	}
	if n.Distributed && n.Batched && (needMLP || needCNN) {
		return fmt.Errorf("serve: distributed campaigns run DL methods per-call on the workers (batched inference is a local-execution knob; drop \"batched\" or \"distributed\")")
	}
	return nil
}

// ID returns the job identity of the spec: 16 hex characters of the
// SHA-256 of its canonical (normalized) JSON encoding under a version
// prefix. Two specs with one ID describe bit-identical campaigns, so
// the daemon dedups submissions and shares journals and results on it.
func (s CampaignSpec) ID() string {
	buf, err := json.Marshal(s.normalized())
	if err != nil {
		// Unreachable: the spec is plain data with no cycles and no
		// unencodable types.
		panic(fmt.Sprintf("serve: encode spec: %v", err))
	}
	h := sha256.Sum256(append([]byte("dlpicd-spec-v1|"), buf...))
	return hex.EncodeToString(h[:8])
}
