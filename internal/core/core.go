// Package core implements the paper's primary contribution: the DL-based
// PIC method of §III (Fig. 2). The traditional field-solver stage —
// charge deposition followed by a Poisson solve — is replaced by two new
// steps executed every cycle:
//
//  1. interpolate the particles onto a 2D phase-space grid (a histogram
//     of positions and velocities), and
//  2. predict the grid electric field from that histogram with a neural
//     network trained offline on traditional PIC data.
//
// The package provides three pic.FieldMethod implementations:
//
//   - NNSolver — the paper's method, wrapping a trained internal/nn
//     network plus the input normalizer fixed at training time;
//   - OracleSolver — a "perfect DL solver": it consumes exactly the same
//     binned histogram but recovers the field through the spatial
//     marginal and a Poisson solve. It isolates the error introduced by
//     the cycle structure (binning information loss) from the error
//     introduced by learning, and is the reference the tests use;
//   - HybridSolver — a convex blend of a learned solver and the oracle,
//     used by the ablation benchmarks.
package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"

	"dlpic/internal/fft"
	"dlpic/internal/grid"
	"dlpic/internal/nn"
	"dlpic/internal/phasespace"
	"dlpic/internal/pic"
	"dlpic/internal/poisson"
)

// NNSolver predicts the grid electric field from the binned electron
// phase space with a trained network. It implements pic.FieldMethod.
type NNSolver struct {
	// Net maps normalized histograms (Spec.Size() inputs) to E fields
	// (cells outputs).
	Net *nn.Network
	// Spec is the phase-space binning used at training time.
	Spec phasespace.GridSpec
	// Norm is the input normalizer fitted on the training corpus
	// (paper Eq. 5).
	Norm phasespace.Normalizer

	hist *phasespace.Hist
	in   []float64
	// ClampAbs, if positive, clamps predicted field values to
	// [-ClampAbs, +ClampAbs] as an out-of-distribution guard. Zero
	// disables clamping (the paper applies none).
	ClampAbs float64
	// SmoothModes, if positive, low-passes the predicted field to the
	// first SmoothModes Fourier modes. Prediction error on
	// out-of-distribution states is broadband, while the physical field
	// content of the two-stream problem lives in the first few modes;
	// the filter suppresses the random-walk heating that noise injects
	// (an extension beyond the paper, disabled by default).
	SmoothModes int
	smoothPlan  *fft.Plan
	smoothSpec  []complex128
	// Inference32 routes predictions through the float32 inference path
	// (nn.PredictBatch32: converted weights, half the memory traffic).
	// Opt-in: it changes results within the drift bounds measured by
	// nn.MeasureDrift32, so campaign digests are only stable against
	// runs using the same precision. Supported for dense stacks only;
	// ComputeField reports the conversion error for other nets.
	Inference32 bool

	// Predictions counts ComputeField invocations (diagnostics).
	Predictions int
}

// NewNNSolver validates shapes and builds the solver.
func NewNNSolver(net *nn.Network, spec phasespace.GridSpec, norm phasespace.Normalizer, cells int) (*NNSolver, error) {
	if net == nil {
		return nil, fmt.Errorf("core: nil network")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if net.InDim != spec.Size() {
		return nil, fmt.Errorf("core: network input %d != phase-space size %d", net.InDim, spec.Size())
	}
	if net.OutDim() != cells {
		return nil, fmt.Errorf("core: network output %d != grid cells %d", net.OutDim(), cells)
	}
	hist, err := phasespace.NewHist(spec)
	if err != nil {
		return nil, err
	}
	return &NNSolver{
		Net: net, Spec: spec, Norm: norm,
		hist: hist, in: make([]float64, spec.Size()),
	}, nil
}

// Name implements pic.FieldMethod.
func (s *NNSolver) Name() string { return "dl-mlp" }

// ComputeField implements pic.FieldMethod: bin, normalize, predict.
func (s *NNSolver) ComputeField(sim *pic.Simulation, e []float64) error {
	if err := s.hist.Bin(sim.P.X, sim.P.V); err != nil {
		return err
	}
	s.Norm.Apply(s.in, s.hist.Data)
	if err := s.predict(e); err != nil {
		return err
	}
	if s.SmoothModes > 0 {
		s.lowPass(e)
	}
	if s.ClampAbs > 0 {
		for i, v := range e {
			if v > s.ClampAbs {
				e[i] = s.ClampAbs
			} else if v < -s.ClampAbs {
				e[i] = -s.ClampAbs
			}
		}
	}
	for i, v := range e {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: network produced non-finite E[%d] = %v", i, v)
		}
	}
	s.Predictions++
	return nil
}

// predict evaluates the network on the prepared s.in, honouring the
// precision selection. Both paths are batch-1 calls on shared solver
// scratch — the Clone-per-scenario ownership rule is unchanged.
func (s *NNSolver) predict(e []float64) error {
	if s.Inference32 {
		return s.Net.PredictBatch32(1, s.in, e)
	}
	s.Net.Predict1(s.in, e)
	return nil
}

// lowPass zeroes every Fourier mode above SmoothModes in place.
func (s *NNSolver) lowPass(e []float64) {
	n := len(e)
	if s.smoothPlan == nil || s.smoothPlan.Len() != n {
		s.smoothPlan = fft.MustPlan(n)
		s.smoothSpec = make([]complex128, n)
	}
	s.smoothPlan.ForwardReal(s.smoothSpec, e)
	for k := 1; k < n; k++ {
		m := k
		if m > n/2 {
			m = n - k
		}
		if m > s.SmoothModes {
			s.smoothSpec[k] = 0
		}
	}
	s.smoothPlan.InverseReal(e, s.smoothSpec)
}

// Clone returns an independent copy of the solver: deep-copied network,
// fresh histogram and input scratch, same binning spec, normalizer and
// post-processing options. A sweep that runs the DL method on the
// per-call path needs one clone per scenario, because a solver's
// network scratch makes sharing an instance across concurrently
// stepping simulations a data race; the batched inference server
// (internal/batch) is the alternative that shares one network safely.
func (s *NNSolver) Clone() (*NNSolver, error) {
	net, err := nn.Clone(s.Net)
	if err != nil {
		return nil, err
	}
	c, err := NewNNSolver(net, s.Spec, s.Norm, net.OutDim())
	if err != nil {
		return nil, err
	}
	c.ClampAbs = s.ClampAbs
	c.SmoothModes = s.SmoothModes
	c.Inference32 = s.Inference32
	return c, nil
}

// PredictFromHistogram runs the solver on a raw histogram vector
// (un-normalized bin counts), writing the field into e. Exposed for the
// evaluation harness.
func (s *NNSolver) PredictFromHistogram(histData, e []float64) error {
	if len(histData) != s.Spec.Size() {
		return fmt.Errorf("core: histogram length %d, want %d", len(histData), s.Spec.Size())
	}
	s.Norm.Apply(s.in, histData)
	return s.predict(e)
}

// ---------------------------------------------------------------------------
// Oracle solver

// OracleSolver consumes the same phase-space histogram as the learned
// solver but computes the field exactly: the histogram's spatial
// marginal is converted to a charge density, the neutralizing background
// is added, and the periodic Poisson problem is solved spectrally.
// Any growth-rate or conservation error it exhibits is attributable to
// the DL-PIC *cycle* (the binning step), not to learning.
type OracleSolver struct {
	Spec phasespace.GridSpec

	hist    *phasespace.Hist
	g       *grid.Grid
	solver  *poisson.Spectral
	rho     []float64
	scratch []float64
}

// NewOracleSolver builds the oracle for a PIC configuration. The
// phase-space grid must have exactly one position bin per PIC cell.
func NewOracleSolver(cfg pic.Config, spec phasespace.GridSpec) (*OracleSolver, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.NX != cfg.Cells {
		return nil, fmt.Errorf("core: oracle needs NX == Cells (%d != %d)", spec.NX, cfg.Cells)
	}
	if spec.L != cfg.Length {
		return nil, fmt.Errorf("core: oracle phase-space box %v != PIC box %v", spec.L, cfg.Length)
	}
	g, err := grid.New(cfg.Cells, cfg.Length)
	if err != nil {
		return nil, err
	}
	hist, err := phasespace.NewHist(spec)
	if err != nil {
		return nil, err
	}
	return &OracleSolver{
		Spec: spec, hist: hist, g: g,
		solver:  poisson.NewSpectral(g, cfg.Eps0),
		rho:     make([]float64, cfg.Cells),
		scratch: make([]float64, cfg.Cells),
	}, nil
}

// Name implements pic.FieldMethod.
func (s *OracleSolver) Name() string { return "dl-oracle" }

// ComputeField implements pic.FieldMethod.
func (s *OracleSolver) ComputeField(sim *pic.Simulation, e []float64) error {
	if err := s.hist.Bin(sim.P.X, sim.P.V); err != nil {
		return err
	}
	if err := s.hist.SpatialDensity(s.rho); err != nil {
		return err
	}
	// counts per bin -> charge density: q * counts / dx.
	scale := sim.P.Charge / s.g.Dx()
	for i := range s.rho {
		s.rho[i] = s.rho[i]*scale + sim.IonRho
	}
	return poisson.SolveE(s.solver, s.g, e, s.rho, s.scratch)
}

// ---------------------------------------------------------------------------
// Hybrid solver

// HybridSolver blends a learned solver with the oracle:
// E = alpha * E_nn + (1 - alpha) * E_oracle. alpha = 1 is the paper's
// method; alpha = 0 is the oracle. Intermediate values quantify how much
// learned error the PIC loop tolerates (ablation).
type HybridSolver struct {
	NN     *NNSolver
	Oracle *OracleSolver
	Alpha  float64

	eNN, eOr []float64
}

// NewHybridSolver validates and builds the blend.
func NewHybridSolver(nnSolver *NNSolver, oracle *OracleSolver, alpha float64, cells int) (*HybridSolver, error) {
	if nnSolver == nil || oracle == nil {
		return nil, fmt.Errorf("core: hybrid needs both solvers")
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("core: hybrid alpha %v outside [0,1]", alpha)
	}
	return &HybridSolver{
		NN: nnSolver, Oracle: oracle, Alpha: alpha,
		eNN: make([]float64, cells), eOr: make([]float64, cells),
	}, nil
}

// Name implements pic.FieldMethod.
func (s *HybridSolver) Name() string { return fmt.Sprintf("dl-hybrid(%.2f)", s.Alpha) }

// ComputeField implements pic.FieldMethod.
func (s *HybridSolver) ComputeField(sim *pic.Simulation, e []float64) error {
	if err := s.NN.ComputeField(sim, s.eNN); err != nil {
		return err
	}
	if err := s.Oracle.ComputeField(sim, s.eOr); err != nil {
		return err
	}
	for i := range e {
		e[i] = s.Alpha*s.eNN[i] + (1-s.Alpha)*s.eOr[i]
	}
	return nil
}

// ---------------------------------------------------------------------------
// Model bundle persistence

// modelBundle is the on-disk representation of a deployable DL field
// solver: network weights plus the preprocessing contract.
type modelBundle struct {
	Version  int
	Spec     phasespace.GridSpec
	Norm     phasespace.Normalizer
	Cells    int
	NetBytes []byte
}

const bundleVersion = 1

// init pins the bundle's process-global gob type id (see the matching
// init in internal/nn): encoding a zero bundle at package init makes
// SaveModel's output byte-identical across processes regardless of
// what they gob-encoded or decoded before — the property the CI
// smoke's byte-diff of resumed vs uninterrupted bundles relies on.
func init() {
	_ = gob.NewEncoder(io.Discard).Encode(modelBundle{})
}

// SaveModel writes a complete, reloadable solver bundle.
func SaveModel(s *NNSolver, cells int, w io.Writer) error {
	var netBuf bytes.Buffer
	if err := nn.Save(s.Net, &netBuf); err != nil {
		return err
	}
	b := modelBundle{
		Version: bundleVersion, Spec: s.Spec, Norm: s.Norm, Cells: cells,
		NetBytes: netBuf.Bytes(),
	}
	return gob.NewEncoder(w).Encode(b)
}

// LoadModel reads a bundle saved with SaveModel.
func LoadModel(r io.Reader) (*NNSolver, error) {
	var b modelBundle
	if err := gob.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("core: decode model bundle: %w", err)
	}
	if b.Version != bundleVersion {
		return nil, fmt.Errorf("core: unsupported bundle version %d", b.Version)
	}
	net, err := nn.Load(bytes.NewReader(b.NetBytes))
	if err != nil {
		return nil, err
	}
	return NewNNSolver(net, b.Spec, b.Norm, b.Cells)
}

// SaveModelFile saves the bundle to path.
func SaveModelFile(s *NNSolver, cells int, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveModel(s, cells, f); err != nil {
		return err
	}
	return f.Close()
}

// LoadModelFile loads a bundle from path.
func LoadModelFile(path string) (*NNSolver, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}
