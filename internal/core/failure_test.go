package core

import (
	"math"
	"strings"
	"testing"

	"dlpic/internal/interp"
	"dlpic/internal/nn"
	"dlpic/internal/phasespace"
	"dlpic/internal/pic"
	"dlpic/internal/rng"
	"dlpic/internal/tensor"
)

// Failure injection: the DL solver is the one stage that can emit
// unphysical output (a network is not a solver with guarantees). These
// tests pin down the failure behavior: corrupted networks are detected
// at the field-solve boundary and surface as errors, never as silent
// NaN propagation into particle state.

func corruptibleSetup(t *testing.T) (pic.Config, phasespace.GridSpec, *nn.Network) {
	t.Helper()
	cfg := pic.Default()
	cfg.Cells = 16
	cfg.ParticlesPerCell = 5
	cfg.Vth = 0
	cfg.QuietStart = true
	spec := phasespace.GridSpec{NX: 16, NV: 8, L: cfg.Length, VMin: -0.8, VMax: 0.8, Binning: interp.NGP}
	net, err := nn.NewMLP(nn.MLPConfig{InDim: spec.Size(), OutDim: 16, Hidden: 8, HiddenLayers: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return cfg, spec, net
}

func TestNaNWeightDetectedAtConstruction(t *testing.T) {
	cfg, spec, net := corruptibleSetup(t)
	// Corrupt the output bias: it is added unconditionally, so the NaN
	// reaches the prediction regardless of input sparsity. (A NaN in a
	// weight column that only ever sees zero inputs is skipped by the
	// GEMM's zero-shortcut — that is a deliberate kernel property.)
	params := net.Params()
	params[len(params)-1].W.Data[0] = math.NaN()
	solver, err := NewNNSolver(net, spec, phasespace.Normalizer{Min: 0, Max: 1}, cfg.Cells)
	if err != nil {
		t.Fatal(err)
	}
	// pic.New performs the initial field solve; the NaN must surface as
	// an error there, not as corrupted particles.
	if _, err := pic.New(cfg, solver); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("NaN weights not detected at initial solve: err=%v", err)
	}
}

func TestNaNWeightDetectedMidRun(t *testing.T) {
	cfg, spec, net := corruptibleSetup(t)
	solver, err := NewNNSolver(net, spec, phasespace.Normalizer{Min: 0, Max: 1}, cfg.Cells)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := pic.New(cfg, solver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Step(); err != nil {
		t.Fatalf("healthy step failed: %v", err)
	}
	// Corrupt the network mid-run (simulating, e.g., a bad fine-tune);
	// the output bias is always consumed.
	params := net.Params()
	params[len(params)-1].W.Data[0] = math.Inf(1)
	if _, err := sim.Step(); err == nil {
		t.Fatal("Inf weights not detected mid-run")
	}
	// Particle state must still be finite: the error fired before the
	// field was consumed by a kick.
	for i := range sim.P.V {
		if math.IsNaN(sim.P.V[i]) || math.IsInf(sim.P.V[i], 0) {
			t.Fatalf("particle %d corrupted after detected failure", i)
		}
	}
}

func TestClampContainsExplosiveNetwork(t *testing.T) {
	cfg, spec, net := corruptibleSetup(t)
	// Saturate the output layer: raw predictions in the hundreds.
	params := net.Params()
	params[len(params)-2].W.Fill(50)
	solver, err := NewNNSolver(net, spec, phasespace.Normalizer{Min: 0, Max: 1}, cfg.Cells)
	if err != nil {
		t.Fatal(err)
	}
	solver.ClampAbs = 0.2
	sim, err := pic.New(cfg, solver)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 20; step++ {
		if _, err := sim.Step(); err != nil {
			t.Fatalf("clamped run failed at step %d: %v", step, err)
		}
	}
	if err := sim.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	// Velocities stay bounded by the clamp: |dv| <= clamp*dt per step.
	_, vmax := sim.P.VelocityBounds()
	if vmax > 1.0 {
		t.Fatalf("velocities escaped despite clamp: vmax=%v", vmax)
	}
}

// Training with the physics-informed loss must converge like plain MSE
// (the paper's §VII PINN suggestion, implemented as an extension).
func TestPhysicsInformedTrainingConverges(t *testing.T) {
	r := rng.New(3)
	inDim, outDim, n := 32, 16, 256
	// Synthetic task shaped like the field-solver problem: smooth
	// periodic targets from non-negative inputs.
	x := tensor.New(n, inDim)
	y := tensor.New(n, outDim)
	for i := 0; i < n; i++ {
		amp := r.Float64()
		phase := r.Float64() * 2 * math.Pi
		for j := 0; j < inDim; j++ {
			x.Data[i*inDim+j] = r.Float64()
		}
		for j := 0; j < outDim; j++ {
			y.Data[i*outDim+j] = amp * 0.1 * math.Sin(2*math.Pi*float64(j)/float64(outDim)+phase)
		}
	}
	net, err := nn.NewMLP(nn.MLPConfig{InDim: inDim, OutDim: outDim, Hidden: 32, HiddenLayers: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	loss := nn.PhysicsMSE{Dx: 0.1, LambdaDiv: 0.2, LambdaMean: 0.2}
	hist, err := nn.Fit(net, x, y, nil, nil, nn.TrainConfig{
		Epochs: 30, BatchSize: 32, Optimizer: nn.NewAdam(2e-3), Loss: loss, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, last := hist.Epochs[0].TrainLoss, hist.Final().TrainLoss
	if last > first/5 {
		t.Fatalf("PINN training barely improved: %v -> %v", first, last)
	}
}
