package core

import (
	"bytes"
	"math"
	"testing"

	"dlpic/internal/dataset"
	"dlpic/internal/diag"
	"dlpic/internal/interp"
	"dlpic/internal/nn"
	"dlpic/internal/phasespace"
	"dlpic/internal/pic"
	"dlpic/internal/rng"
	"dlpic/internal/theory"
)

// fastCfg mirrors the pic package's fast test configuration.
func fastCfg() pic.Config {
	cfg := pic.Default()
	cfg.ParticlesPerCell = 50
	cfg.Vth = 0
	cfg.QuietStart = true
	cfg.PerturbAmp = 1e-4 * cfg.Length
	cfg.PerturbMode = 1
	return cfg
}

func oracleSpec(cfg pic.Config) phasespace.GridSpec {
	return phasespace.GridSpec{
		NX: cfg.Cells, NV: 64, L: cfg.Length, VMin: -0.8, VMax: 0.8, Binning: interp.NGP,
	}
}

func TestNewOracleSolverValidation(t *testing.T) {
	cfg := fastCfg()
	spec := oracleSpec(cfg)
	if _, err := NewOracleSolver(cfg, spec); err != nil {
		t.Fatalf("valid oracle rejected: %v", err)
	}
	bad := spec
	bad.NX = cfg.Cells + 1
	if _, err := NewOracleSolver(cfg, bad); err == nil {
		t.Error("NX mismatch should fail")
	}
	bad = spec
	bad.L = 999
	if _, err := NewOracleSolver(cfg, bad); err == nil {
		t.Error("box mismatch should fail")
	}
}

// The core integration test of the paper's new cycle: running the PIC
// loop with the phase-space-binning field stage (oracle variant)
// reproduces the two-stream growth rate. This isolates the Fig. 2 cycle
// from network training quality.
func TestDLCycleWithOracleReproducesGrowthRate(t *testing.T) {
	cfg := fastCfg()
	oracle, err := NewOracleSolver(cfg, oracleSpec(cfg))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := pic.New(cfg, oracle)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	if err := sim.Run(150, &rec, nil); err != nil {
		t.Fatal(err)
	}
	amps, _ := rec.Series("mode")
	times := rec.Times()
	t0, t1, err := diag.AutoGrowthWindow(times, amps, 0.01, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := diag.FitGrowthRate(times, amps, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	want := theory.TwoStream{Wp: cfg.Wp, V0: cfg.V0}.GrowthRate(2 * math.Pi / cfg.Length)
	if math.Abs(fit.Gamma-want)/want > 0.15 {
		t.Fatalf("oracle DL-cycle growth %v, theory %v (%.1f%% off)",
			fit.Gamma, want, 100*math.Abs(fit.Gamma-want)/want)
	}
}

// NGP binning at one bin per cell loses sub-cell position information;
// the oracle run therefore has slightly different noise properties but
// must conserve energy comparably to the traditional method.
func TestDLCycleOracleEnergyBounded(t *testing.T) {
	cfg := fastCfg()
	oracle, err := NewOracleSolver(cfg, oracleSpec(cfg))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := pic.New(cfg, oracle)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	if err := sim.Run(200, &rec, nil); err != nil {
		t.Fatal(err)
	}
	tot, _ := rec.Series("total")
	if v := diag.MaxRelativeVariation(tot); v > 0.08 {
		t.Fatalf("oracle cycle energy variation %.2f%%", 100*v)
	}
	if err := sim.CheckFinite(); err != nil {
		t.Fatal(err)
	}
}

// trainTinySolver trains a small MLP on a tiny corpus and returns the
// solver plus its validation metrics.
func trainTinySolver(t *testing.T, cfg pic.Config, spec phasespace.GridSpec) (*NNSolver, nn.Metrics) {
	t.Helper()
	gen := dataset.GenerateOpts{
		Base: cfg,
		V0s:  []float64{0.15, 0.2, 0.25}, Vths: []float64{0.0, 0.01},
		Repeats: 1, Steps: 60, SampleEvery: 1,
		Spec: spec, Seed: 11,
	}
	ds, err := dataset.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Normalize(); err != nil {
		t.Fatal(err)
	}
	ds.Shuffle(1)
	nVal := ds.N() / 10
	train, val, _, err := ds.Split(ds.N()-nVal, nVal, 0)
	if err != nil {
		t.Fatal(err)
	}
	net, err := nn.NewMLP(nn.MLPConfig{
		InDim: spec.Size(), OutDim: cfg.Cells, Hidden: 64, HiddenLayers: 2,
	}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	_, err = nn.Fit(net, train.Inputs, train.Targets, val.Inputs, val.Targets, nn.TrainConfig{
		Epochs: 40, BatchSize: 32, Optimizer: nn.NewAdam(1e-3), Loss: nn.MSE{}, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	solver, err := NewNNSolver(net, spec, ds.Norm, cfg.Cells)
	if err != nil {
		t.Fatal(err)
	}
	return solver, nn.Evaluate(net, val.Inputs, val.Targets, 32)
}

// End-to-end: a small trained MLP drives the PIC loop stably and the
// instability develops. This is the scaled version of the paper's Fig. 4
// validation; the full-scale version lives in cmd/experiments.
func TestDLCycleWithTrainedMLP(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	cfg := fastCfg()
	cfg.Cells = 32
	cfg.ParticlesPerCell = 40
	cfg.Vth = 0.01
	cfg.QuietStart = false
	cfg.PerturbAmp = 1e-3 * cfg.Length
	spec := phasespace.GridSpec{NX: 32, NV: 32, L: cfg.Length, VMin: -0.8, VMax: 0.8, Binning: interp.NGP}
	solver, metrics := trainTinySolver(t, cfg, spec)
	// The learned field solve must beat the trivial zero predictor by a
	// wide margin: MAE well below the field scale (~0.1 paper, smaller
	// here early in runs).
	if metrics.MAE > 0.02 {
		t.Fatalf("trained solver MAE %v too high to drive the loop", metrics.MAE)
	}
	simCfg := cfg
	simCfg.V0 = 0.2
	simCfg.Vth = 0.01
	simCfg.Seed = 999
	sim, err := pic.New(simCfg, solver)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	if err := sim.Run(120, &rec, nil); err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	if solver.Predictions < 120 {
		t.Fatalf("solver invoked %d times, want >= 120", solver.Predictions)
	}
	// The instability must develop: mode 1 grows by at least 10x over
	// its starting amplitude.
	amps, _ := rec.Series("mode")
	peak := 0.0
	for _, a := range amps {
		if a > peak {
			peak = a
		}
	}
	if peak < 10*amps[0] || peak < 1e-3 {
		t.Fatalf("no instability under trained solver: start %v peak %v", amps[0], peak)
	}
}

func TestNNSolverValidation(t *testing.T) {
	cfg := fastCfg()
	spec := oracleSpec(cfg)
	r := rng.New(1)
	if _, err := NewNNSolver(nil, spec, phasespace.Normalizer{Max: 1}, cfg.Cells); err == nil {
		t.Error("nil network should fail")
	}
	wrongIn, _ := nn.NewMLP(nn.MLPConfig{InDim: 10, OutDim: cfg.Cells, Hidden: 4, HiddenLayers: 1}, r)
	if _, err := NewNNSolver(wrongIn, spec, phasespace.Normalizer{Max: 1}, cfg.Cells); err == nil {
		t.Error("input mismatch should fail")
	}
	wrongOut, _ := nn.NewMLP(nn.MLPConfig{InDim: spec.Size(), OutDim: 7, Hidden: 4, HiddenLayers: 1}, r)
	if _, err := NewNNSolver(wrongOut, spec, phasespace.Normalizer{Max: 1}, cfg.Cells); err == nil {
		t.Error("output mismatch should fail")
	}
}

func TestNNSolverClampGuard(t *testing.T) {
	cfg := fastCfg()
	cfg.Cells = 16
	cfg.ParticlesPerCell = 4
	spec := phasespace.GridSpec{NX: 16, NV: 8, L: cfg.Length, VMin: -0.8, VMax: 0.8, Binning: interp.NGP}
	r := rng.New(2)
	net, err := nn.NewMLP(nn.MLPConfig{InDim: spec.Size(), OutDim: 16, Hidden: 8, HiddenLayers: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	// Blow up the output layer weights so raw predictions are huge.
	params := net.Params()
	last := params[len(params)-2]
	last.W.Fill(100)
	solver, err := NewNNSolver(net, spec, phasespace.Normalizer{Min: 0, Max: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	solver.ClampAbs = 0.5
	sim, err := pic.New(cfg, solver)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range sim.E {
		if math.Abs(v) > 0.5+1e-12 {
			t.Fatalf("clamp failed: E[%d] = %v", i, v)
		}
	}
}

func TestPredictFromHistogram(t *testing.T) {
	cfg := fastCfg()
	cfg.Cells = 16
	spec := phasespace.GridSpec{NX: 16, NV: 8, L: cfg.Length, VMin: -0.8, VMax: 0.8, Binning: interp.NGP}
	r := rng.New(3)
	net, _ := nn.NewMLP(nn.MLPConfig{InDim: spec.Size(), OutDim: 16, Hidden: 8, HiddenLayers: 1}, r)
	solver, err := NewNNSolver(net, spec, phasespace.Normalizer{Min: 0, Max: 10}, 16)
	if err != nil {
		t.Fatal(err)
	}
	hist := make([]float64, spec.Size())
	e := make([]float64, 16)
	if err := solver.PredictFromHistogram(hist, e); err != nil {
		t.Fatal(err)
	}
	if err := solver.PredictFromHistogram(make([]float64, 3), e); err == nil {
		t.Fatal("wrong histogram length should fail")
	}
}

func TestHybridSolverBlend(t *testing.T) {
	cfg := fastCfg()
	spec := oracleSpec(cfg)
	oracle, err := NewOracleSolver(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	net, _ := nn.NewMLP(nn.MLPConfig{InDim: spec.Size(), OutDim: cfg.Cells, Hidden: 8, HiddenLayers: 1}, r)
	nnSolver, err := NewNNSolver(net, spec, phasespace.Normalizer{Min: 0, Max: 1000}, cfg.Cells)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHybridSolver(nnSolver, oracle, 1.5, cfg.Cells); err == nil {
		t.Error("alpha > 1 should fail")
	}
	if _, err := NewHybridSolver(nil, oracle, 0.5, cfg.Cells); err == nil {
		t.Error("nil solver should fail")
	}
	// alpha = 0 reproduces the oracle exactly.
	hybrid, err := NewHybridSolver(nnSolver, oracle, 0, cfg.Cells)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := pic.New(cfg, hybrid)
	if err != nil {
		t.Fatal(err)
	}
	eHybrid := append([]float64(nil), sim.E...)
	eOracle := make([]float64, cfg.Cells)
	if err := oracle.ComputeField(sim, eOracle); err != nil {
		t.Fatal(err)
	}
	for i := range eHybrid {
		if math.Abs(eHybrid[i]-eOracle[i]) > 1e-12 {
			t.Fatalf("alpha=0 hybrid differs from oracle at %d", i)
		}
	}
}

func TestModelBundleRoundTrip(t *testing.T) {
	cfg := fastCfg()
	cfg.Cells = 16
	spec := phasespace.GridSpec{NX: 16, NV: 8, L: cfg.Length, VMin: -0.8, VMax: 0.8, Binning: interp.NGP}
	r := rng.New(5)
	net, _ := nn.NewMLP(nn.MLPConfig{InDim: spec.Size(), OutDim: 16, Hidden: 8, HiddenLayers: 1}, r)
	solver, err := NewNNSolver(net, spec, phasespace.Normalizer{Min: 0, Max: 42}, 16)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(solver, 16, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Norm != solver.Norm {
		t.Fatal("normalizer lost in bundle")
	}
	if loaded.Spec != solver.Spec {
		t.Fatal("spec lost in bundle")
	}
	hist := make([]float64, spec.Size())
	for i := range hist {
		hist[i] = float64(i % 7)
	}
	e1 := make([]float64, 16)
	e2 := make([]float64, 16)
	if err := solver.PredictFromHistogram(hist, e1); err != nil {
		t.Fatal(err)
	}
	if err := loaded.PredictFromHistogram(hist, e2); err != nil {
		t.Fatal(err)
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("bundle prediction differs at %d", i)
		}
	}
}

func TestModelBundleFile(t *testing.T) {
	cfg := fastCfg()
	cfg.Cells = 16
	spec := phasespace.GridSpec{NX: 16, NV: 8, L: cfg.Length, VMin: -0.8, VMax: 0.8, Binning: interp.NGP}
	net, _ := nn.NewMLP(nn.MLPConfig{InDim: spec.Size(), OutDim: 16, Hidden: 4, HiddenLayers: 1}, rng.New(6))
	solver, err := NewNNSolver(net, spec, phasespace.Normalizer{Min: 0, Max: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.dlpic"
	if err := SaveModelFile(solver, 16, path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFile(path + ".missing"); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestLoadModelGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage bundle should fail")
	}
}
