package core

import (
	"testing"

	"dlpic/internal/diag"
	"dlpic/internal/fft"
	"dlpic/internal/nn"
	"dlpic/internal/phasespace"
	"dlpic/internal/pic"
	"dlpic/internal/rng"
)

// Hybrid-alpha ablation: as alpha moves from 0 (oracle) to 1 (pure
// network), the run must transition smoothly — every blend runs stably,
// and the alpha = 0 endpoint reproduces the oracle's trajectory.
func TestHybridAlphaSweep(t *testing.T) {
	cfg := fastCfg()
	cfg.Cells = 32
	cfg.ParticlesPerCell = 20
	spec := phasespace.GridSpec{NX: 32, NV: 16, L: cfg.Length, VMin: -0.8, VMax: 0.8}
	oracle, err := NewOracleSolver(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	// An untrained network: the worst case a blend must still contain at
	// small alpha.
	net, err := nn.NewMLP(nn.MLPConfig{InDim: spec.Size(), OutDim: cfg.Cells, Hidden: 16, HiddenLayers: 1}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	nnSolver, err := NewNNSolver(net, spec, phasespace.Normalizer{Min: 0, Max: 100}, cfg.Cells)
	if err != nil {
		t.Fatal(err)
	}
	run := func(alpha float64) *diag.Recorder {
		hybrid, err := NewHybridSolver(nnSolver, oracle, alpha, cfg.Cells)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := pic.New(cfg, hybrid)
		if err != nil {
			t.Fatal(err)
		}
		var rec diag.Recorder
		if err := sim.Run(40, &rec, nil); err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		if err := sim.CheckFinite(); err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		return &rec
	}
	recs := map[float64]*diag.Recorder{}
	for _, alpha := range []float64{0, 0.25, 0.5, 1} {
		recs[alpha] = run(alpha)
	}
	// alpha = 0 equals a pure oracle run sample-for-sample.
	oracleSim, err := pic.New(cfg, oracle)
	if err != nil {
		t.Fatal(err)
	}
	var oracleRec diag.Recorder
	if err := oracleSim.Run(40, &oracleRec, nil); err != nil {
		t.Fatal(err)
	}
	a0 := recs[0].Samples
	for i := range a0 {
		if a0[i] != oracleRec.Samples[i] {
			t.Fatalf("alpha=0 diverged from the oracle at sample %d", i)
		}
	}
	// The untrained endpoint must differ from the oracle endpoint
	// (otherwise the blend is not actually blending).
	tot1, _ := recs[1].Series("total")
	tot0, _ := recs[0].Series("total")
	same := true
	for i := range tot1 {
		if tot1[i] != tot0[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("alpha=1 trajectory identical to alpha=0: blend inert")
	}
}

// The CNN architecture drives the PIC loop through the same solver
// plumbing as the MLP.
func TestDLCycleWithCNNSolver(t *testing.T) {
	cfg := fastCfg()
	cfg.Cells = 32
	cfg.ParticlesPerCell = 10
	spec := phasespace.GridSpec{NX: 32, NV: 32, L: cfg.Length, VMin: -0.8, VMax: 0.8}
	net, err := nn.NewCNN(nn.CNNConfig{
		H: spec.NV, W: spec.NX, OutDim: cfg.Cells,
		Channels1: 2, Channels2: 2, Kernel: 3, Hidden: 16, HiddenLayers: 1,
	}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	solver, err := NewNNSolver(net, spec, phasespace.Normalizer{Min: 0, Max: 50}, cfg.Cells)
	if err != nil {
		t.Fatal(err)
	}
	solver.ClampAbs = 0.3 // untrained CNN: keep the fields physical
	sim, err := pic.New(cfg, solver)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(20, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	if solver.Predictions < 20 {
		t.Fatalf("CNN solver invoked %d times", solver.Predictions)
	}
}

// SmoothModes preserves the low-mode field content exactly while
// removing everything above the cutoff.
func TestSmoothModesFilter(t *testing.T) {
	cfg := fastCfg()
	cfg.Cells = 32
	spec := phasespace.GridSpec{NX: 32, NV: 8, L: cfg.Length, VMin: -0.8, VMax: 0.8}
	net, err := nn.NewMLP(nn.MLPConfig{InDim: spec.Size(), OutDim: cfg.Cells, Hidden: 8, HiddenLayers: 1}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	solver, err := NewNNSolver(net, spec, phasespace.Normalizer{Min: 0, Max: 1}, cfg.Cells)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := pic.New(cfg, solver)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]float64, cfg.Cells)
	if err := solver.ComputeField(sim, raw); err != nil {
		t.Fatal(err)
	}
	solver.SmoothModes = 3
	smooth := make([]float64, cfg.Cells)
	if err := solver.ComputeField(sim, smooth); err != nil {
		t.Fatal(err)
	}
	// Compare Fourier content: modes 1..3 match, higher modes vanish.
	rawAmp := modeAmps(raw)
	smAmp := modeAmps(smooth)
	for k := 1; k <= 3; k++ {
		if absf(rawAmp[k]-smAmp[k]) > 1e-9 {
			t.Fatalf("mode %d changed by the filter: %v vs %v", k, rawAmp[k], smAmp[k])
		}
	}
	for k := 4; k < len(smAmp); k++ {
		if smAmp[k] > 1e-9 {
			t.Fatalf("mode %d survived the filter: %v", k, smAmp[k])
		}
	}
}

func modeAmps(e []float64) []float64 {
	plan := fft.MustPlan(len(e))
	amps := make([]float64, len(e)/2+1)
	fft.Amplitudes(amps, e, plan)
	return amps
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
