package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 1.0); err == nil {
		t.Error("New(1, 1) should fail")
	}
	if _, err := New(8, 0); err == nil {
		t.Error("New(8, 0) should fail")
	}
	if _, err := New(8, -2); err == nil {
		t.Error("New(8, -2) should fail")
	}
	g, err := New(64, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 64 || g.Length() != 2.0 {
		t.Fatalf("got N=%d L=%v", g.N(), g.Length())
	}
	if math.Abs(g.Dx()-2.0/64) > 1e-15 {
		t.Fatalf("Dx = %v", g.Dx())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0,1) did not panic")
		}
	}()
	MustNew(0, 1)
}

func TestXCoordinates(t *testing.T) {
	g := MustNew(4, 8.0)
	for i, want := range []float64{0, 2, 4, 6} {
		if g.X(i) != want {
			t.Errorf("X(%d) = %v, want %v", i, g.X(i), want)
		}
	}
}

func TestWrapProperty(t *testing.T) {
	g := MustNew(16, 5.0)
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true
		}
		w := g.Wrap(x)
		if w < 0 || w >= g.Length() {
			return false
		}
		// Wrapped value differs from x by an integer number of periods.
		k := (x - w) / g.Length()
		return math.Abs(k-math.Round(k)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWrapEdges(t *testing.T) {
	g := MustNew(8, 1.0)
	cases := []struct{ in, want float64 }{
		{0, 0}, {0.5, 0.5}, {1.0, 0}, {1.5, 0.5}, {-0.25, 0.75}, {-1.0, 0}, {2.25, 0.25},
	}
	for _, c := range cases {
		if got := g.Wrap(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Wrap(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCellOf(t *testing.T) {
	g := MustNew(4, 4.0)
	cases := []struct {
		x    float64
		want int
	}{{0, 0}, {0.99, 0}, {1.0, 1}, {3.999, 3}}
	for _, c := range cases {
		if got := g.CellOf(c.x); got != c.want {
			t.Errorf("CellOf(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestGradientOfSinusoid(t *testing.T) {
	g := MustNew(256, 2*math.Pi)
	f := make([]float64, g.N())
	for i := range f {
		f[i] = math.Sin(g.X(i))
	}
	df := make([]float64, g.N())
	g.Gradient(df, f)
	// Centered difference of sin on a uniform grid gives cos * sinc factor.
	factor := math.Sin(g.Dx()) / g.Dx()
	for i := range df {
		want := math.Cos(g.X(i)) * factor
		if math.Abs(df[i]-want) > 1e-10 {
			t.Fatalf("i=%d: grad %v, want %v", i, df[i], want)
		}
	}
}

func TestGradientSecondOrderConvergence(t *testing.T) {
	errAt := func(n int) float64 {
		g := MustNew(n, 2*math.Pi)
		f := make([]float64, n)
		for i := range f {
			f[i] = math.Sin(2 * g.X(i))
		}
		df := make([]float64, n)
		g.Gradient(df, f)
		var maxErr float64
		for i := range df {
			e := math.Abs(df[i] - 2*math.Cos(2*g.X(i)))
			if e > maxErr {
				maxErr = e
			}
		}
		return maxErr
	}
	e1, e2 := errAt(64), errAt(128)
	ratio := e1 / e2
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("gradient convergence ratio %v, want ~4 (second order)", ratio)
	}
}

func TestLaplacianOfSinusoid(t *testing.T) {
	g := MustNew(512, 2*math.Pi)
	f := make([]float64, g.N())
	for i := range f {
		f[i] = math.Cos(3 * g.X(i))
	}
	lap := make([]float64, g.N())
	g.Laplacian(lap, f)
	// Discrete eigenvalue of the 3-point Laplacian for mode k is
	// -(2/dx^2)(1-cos(k dx)) = -(4/dx^2) sin^2(k dx / 2).
	k := 3.0
	eig := -4 / (g.Dx() * g.Dx()) * math.Pow(math.Sin(k*g.Dx()/2), 2)
	for i := range lap {
		want := eig * f[i]
		if math.Abs(lap[i]-want) > 1e-8 {
			t.Fatalf("i=%d: lap %v, want %v", i, lap[i], want)
		}
	}
}

func TestGradientOfConstantIsZero(t *testing.T) {
	g := MustNew(32, 1.0)
	f := make([]float64, 32)
	for i := range f {
		f[i] = 7.5
	}
	df := make([]float64, 32)
	g.Gradient(df, f)
	for i, v := range df {
		if v != 0 {
			t.Fatalf("grad of constant non-zero at %d: %v", i, v)
		}
	}
}

func TestIntegralAndMean(t *testing.T) {
	g := MustNew(10, 5.0)
	f := make([]float64, 10)
	for i := range f {
		f[i] = float64(i)
	}
	// sum = 45, dx = 0.5 -> integral 22.5, mean 4.5
	if got := g.Integral(f); math.Abs(got-22.5) > 1e-12 {
		t.Errorf("Integral = %v, want 22.5", got)
	}
	if got := g.Mean(f); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("Mean = %v, want 4.5", got)
	}
}

func TestSubtractMeanProperty(t *testing.T) {
	g := MustNew(16, 2.0)
	f := func(vals [16]float64) bool {
		fs := make([]float64, 16)
		for i := range fs {
			v := vals[i]
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
				v = 1
			}
			fs[i] = v
		}
		g.SubtractMean(fs)
		var scale float64
		for _, v := range fs {
			if math.Abs(v) > scale {
				scale = math.Abs(v)
			}
		}
		return math.Abs(g.Mean(fs)) <= 1e-9*(1+scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	g := MustNew(8, 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched Gradient lengths")
		}
	}()
	g.Gradient(make([]float64, 4), make([]float64, 8))
}
