// Package grid defines the one-dimensional periodic spatial grid on which
// the PIC field quantities (charge density, potential, electric field)
// live, together with the finite-difference operators used by the field
// solvers and diagnostics.
//
// The grid has N cells of width dx spanning [0, L). Grid point i sits at
// x_i = i*dx; point N wraps to point 0 (periodic boundary). All field
// arrays are cell/node collocated of length N.
package grid

import "fmt"

// Grid describes a uniform periodic 1D mesh.
type Grid struct {
	n  int     // number of cells / nodes
	l  float64 // domain length
	dx float64 // cell width
}

// New constructs a periodic grid with n cells on [0, length).
func New(n int, length float64) (*Grid, error) {
	if n < 2 {
		return nil, fmt.Errorf("grid: need at least 2 cells, got %d", n)
	}
	if !(length > 0) {
		return nil, fmt.Errorf("grid: domain length must be positive, got %v", length)
	}
	return &Grid{n: n, l: length, dx: length / float64(n)}, nil
}

// MustNew is New that panics on error, for static configurations.
func MustNew(n int, length float64) *Grid {
	g, err := New(n, length)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of cells.
func (g *Grid) N() int { return g.n }

// Length returns the domain length L.
func (g *Grid) Length() float64 { return g.l }

// Dx returns the cell width.
func (g *Grid) Dx() float64 { return g.dx }

// X returns the coordinate of node i (0 <= i < N).
func (g *Grid) X(i int) float64 { return float64(i) * g.dx }

// Wrap maps a position into the periodic domain [0, L).
func (g *Grid) Wrap(x float64) float64 {
	if x >= 0 && x < g.l {
		return x
	}
	x -= g.l * float64(int(x/g.l))
	if x < 0 {
		x += g.l
	}
	if x >= g.l { // guard against rounding x==L
		x -= g.l
	}
	return x
}

// CellOf returns the index of the cell containing position x (which must
// already lie in [0, L); use Wrap first for arbitrary positions).
func (g *Grid) CellOf(x float64) int {
	i := int(x / g.dx)
	if i >= g.n {
		i = g.n - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// Gradient computes dst = d(src)/dx with the second-order centered
// difference on the periodic grid: dst[i] = (src[i+1]-src[i-1]) / (2 dx).
// dst and src must have length N and may not alias.
func (g *Grid) Gradient(dst, src []float64) {
	n := g.n
	g.checkLen("Gradient", dst, src)
	inv2dx := 1 / (2 * g.dx)
	dst[0] = (src[1] - src[n-1]) * inv2dx
	for i := 1; i < n-1; i++ {
		dst[i] = (src[i+1] - src[i-1]) * inv2dx
	}
	dst[n-1] = (src[0] - src[n-2]) * inv2dx
}

// Laplacian computes dst = d2(src)/dx2 with the standard three-point
// stencil on the periodic grid.
func (g *Grid) Laplacian(dst, src []float64) {
	n := g.n
	g.checkLen("Laplacian", dst, src)
	invDx2 := 1 / (g.dx * g.dx)
	dst[0] = (src[1] - 2*src[0] + src[n-1]) * invDx2
	for i := 1; i < n-1; i++ {
		dst[i] = (src[i+1] - 2*src[i] + src[i-1]) * invDx2
	}
	dst[n-1] = (src[0] - 2*src[n-1] + src[n-2]) * invDx2
}

// Integral returns the integral of f over the periodic domain using the
// rectangle rule (exact for grid functions): sum f_i * dx.
func (g *Grid) Integral(f []float64) float64 {
	if len(f) != g.n {
		panic(fmt.Sprintf("grid: Integral length %d, grid %d", len(f), g.n))
	}
	var s float64
	for _, v := range f {
		s += v
	}
	return s * g.dx
}

// Mean returns the spatial average of f.
func (g *Grid) Mean(f []float64) float64 {
	return g.Integral(f) / g.l
}

// SubtractMean removes the spatial average from f in place and returns
// the removed mean. Periodic Poisson problems require zero-mean sources.
func (g *Grid) SubtractMean(f []float64) float64 {
	m := g.Mean(f)
	for i := range f {
		f[i] -= m
	}
	return m
}

func (g *Grid) checkLen(op string, dst, src []float64) {
	if len(dst) != g.n || len(src) != g.n {
		panic(fmt.Sprintf("grid: %s length mismatch dst=%d src=%d grid=%d", op, len(dst), len(src), g.n))
	}
}
