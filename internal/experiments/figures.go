package experiments

import (
	"fmt"
	"math"

	"dlpic/internal/core"
	"dlpic/internal/diag"
	"dlpic/internal/phasespace"
	"dlpic/internal/pic"
	"dlpic/internal/theory"
)

// newOracle builds the learning-free oracle field method for cfg.
func newOracle(cfg pic.Config, spec phasespace.GridSpec) (pic.FieldMethod, error) {
	return core.NewOracleSolver(cfg, spec)
}

// RunResult bundles everything one simulation contributes to the
// figures: the diagnostics series plus the final particle snapshot for
// phase-space rendering.
type RunResult struct {
	Method          string
	Rec             diag.Recorder
	FinalX          []float64
	FinalV          []float64
	Growth          diag.GrowthFit
	FitOK           bool
	EnergyVariation float64
	MomentumDrift   float64
	// VelocitySpread is the per-beam RMS spread at the end of the run
	// (the cold-beam heating metric of Fig. 6).
	VelocitySpreadStart, VelocitySpreadEnd float64
}

// runOne executes steps of a simulation built from cfg with the given
// field method (nil = traditional) and extracts the figure metrics.
func runOne(cfg pic.Config, method pic.FieldMethod, steps int) (*RunResult, error) {
	sim, err := pic.New(cfg, method)
	if err != nil {
		return nil, err
	}
	res := &RunResult{Method: sim.Method().Name()}
	res.VelocitySpreadStart = diag.VelocitySpread(sim.P.V)
	if err := sim.Run(steps, &res.Rec, nil); err != nil {
		return nil, err
	}
	if err := sim.CheckFinite(); err != nil {
		return nil, err
	}
	res.FinalX = append([]float64(nil), sim.P.X...)
	res.FinalV = append([]float64(nil), sim.P.V...)
	res.VelocitySpreadEnd = diag.VelocitySpread(sim.P.V)

	amps, _ := res.Rec.Series("mode")
	times := res.Rec.Times()
	// Noise-seeded runs fluctuate near the floor; fit between 5%% and
	// 60%% of the peak to isolate the clean exponential phase.
	if t0, t1, err := diag.AutoGrowthWindow(times, amps, 0.05, 0.6); err == nil {
		if fit, err := diag.FitGrowthRate(times, amps, t0, t1); err == nil {
			res.Growth = fit
			res.FitOK = true
		}
	}
	tot, _ := res.Rec.Series("total")
	res.EnergyVariation = diag.MaxRelativeVariation(tot)
	mom, _ := res.Rec.Series("momentum")
	res.MomentumDrift = diag.Drift(mom)
	return res, nil
}

// Fig4Result is the paper's validation experiment: traditional vs
// DL-based PIC at v0 = 0.2, vth = 0.025, with the linear-theory growth
// rate as reference. It also carries the energy/momentum series of
// Fig. 5 (the same two runs produce both figures).
type Fig4Result struct {
	Traditional, DL *RunResult
	// TheoryGamma is the cold-beam linear growth rate of mode 1.
	TheoryGamma float64
	// WarmGamma includes the fluid thermal correction at vth = 0.025.
	WarmGamma float64
	Steps     int
}

// Fig4 runs the paper's §V validation (Figures 4 and 5).
func (p *Pipeline) Fig4(steps int) (*Fig4Result, error) {
	if steps <= 0 {
		steps = 200
	}
	cfg := p.ValidationConfig(p.Opts.Seed + 200)
	p.logf("[fig4] traditional run (%d steps)", steps)
	trad, err := runOne(cfg, nil, steps)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4 traditional: %w", err)
	}
	p.logf("[fig4] DL-based run (MLP)")
	dl, err := runOne(cfg, p.MLP, steps)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4 DL: %w", err)
	}
	ts := theory.TwoStream{Wp: cfg.Wp, V0: cfg.V0, Vth: cfg.Vth}
	k1 := 2 * math.Pi / cfg.Length
	return &Fig4Result{
		Traditional: trad, DL: dl,
		TheoryGamma: theory.TwoStream{Wp: cfg.Wp, V0: cfg.V0}.GrowthRate(k1),
		WarmGamma:   ts.GrowthRateWarm(k1),
		Steps:       steps,
	}, nil
}

// Fig6Result is the cold-beam stability experiment: v0 = 0.4, vth = 0.
// The physical system is linearly stable; traditional momentum- and
// energy-conserving PIC develops the numerical cold-beam instability
// (phase-space ripples, energy growth), while the DL-based cycle does
// not amplify the grid-scale aliasing that drives it.
//
// Oracle runs the same cold-beam configuration through the DL cycle
// with exact field recovery. It separates the paper's structural claim
// (the binning stage filters the sub-cell information that feeds the
// instability — the oracle shows flat energy) from learning error
// (a finitely-trained network adds out-of-distribution bias on v0 = 0.4
// inputs, which the training sweep tops out below).
type Fig6Result struct {
	Traditional, DL, Oracle *RunResult
	Steps                   int
}

// Fig6 runs the cold-beam experiment.
func (p *Pipeline) Fig6(steps int) (*Fig6Result, error) {
	if steps <= 0 {
		steps = 200
	}
	cfg := p.ColdBeamConfig(p.Opts.Seed + 300)
	p.logf("[fig6] traditional cold-beam run (%d steps)", steps)
	trad, err := runOne(cfg, nil, steps)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig6 traditional: %w", err)
	}
	p.logf("[fig6] DL-based cold-beam run (MLP)")
	dl, err := runOne(cfg, p.MLP, steps)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig6 DL: %w", err)
	}
	// Oracle variant: the cycle with exact field recovery isolates the
	// structural stability claim from learning error.
	p.logf("[fig6] oracle cold-beam run (DL cycle, exact fields)")
	oracle, err := newOracle(cfg, p.Spec)
	if err != nil {
		return nil, err
	}
	orc, err := runOne(cfg, oracle, steps)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig6 oracle: %w", err)
	}
	return &Fig6Result{Traditional: trad, DL: dl, Oracle: orc, Steps: steps}, nil
}

// OracleRun executes the validation configuration with the
// learning-free oracle field method (cycle-error baseline; ablation
// beyond the paper).
func (p *Pipeline) OracleRun(steps int) (*RunResult, error) {
	if steps <= 0 {
		steps = 200
	}
	cfg := p.ValidationConfig(p.Opts.Seed + 200)
	oracle, err := newOracle(cfg, p.Spec)
	if err != nil {
		return nil, err
	}
	return runOne(cfg, oracle, steps)
}
