package experiments

import (
	"strings"
	"testing"

	"dlpic/internal/core"
	"dlpic/internal/nn"
)

func TestTable1RowsWithoutCNN(t *testing.T) {
	res := Table1Result{
		MLPSetI:  nn.Metrics{MAE: 0.01, MaxErr: 0.1},
		MLPSetII: nn.Metrics{MAE: 0.02, MaxErr: 0.2},
		HaveCNN:  false,
	}
	rows := res.Rows()
	if len(rows) != 5 {
		t.Fatalf("rows without CNN = %d, want 5", len(rows))
	}
	joined := ""
	for _, r := range rows {
		joined += strings.Join(r, " ") + "\n"
	}
	if strings.Contains(joined, "CNN") {
		t.Fatalf("CNN rows present despite HaveCNN=false:\n%s", joined)
	}
	if !strings.Contains(joined, "0.01") || !strings.Contains(joined, "0.2") {
		t.Fatalf("measured values missing:\n%s", joined)
	}
}

func TestSkipCNNPipeline(t *testing.T) {
	p, err := New(Options{Tiny: true, Seed: 3, SkipCNN: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.CNN != nil {
		t.Fatal("CNN trained despite SkipCNN")
	}
	res, err := p.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if res.HaveCNN {
		t.Fatal("Table 1 claims CNN without one")
	}
	if res.MLPSetI.MAE <= 0 {
		t.Fatal("MLP metrics missing")
	}
}

func TestModelExportAndReload(t *testing.T) {
	dir := t.TempDir()
	p, err := New(Options{Tiny: true, Seed: 4, SkipCNN: true, ModelDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// The bundle must reload into an equivalent solver.
	loaded, err := core.LoadModelFile(dir + "/mlp.dlpic")
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, p.Spec.Size())
	for i := range in {
		in[i] = float64(i % 5)
	}
	e1 := make([]float64, p.Cfg.Cells)
	e2 := make([]float64, p.Cfg.Cells)
	if err := p.MLP.PredictFromHistogram(in, e1); err != nil {
		t.Fatal(err)
	}
	if err := loaded.PredictFromHistogram(in, e2); err != nil {
		t.Fatal(err)
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("exported model differs at %d", i)
		}
	}
	// And a fresh pipeline can adopt it via LoadModels.
	p2, err := New(Options{Tiny: true, Seed: 4, SkipCNN: true, LoadModels: dir})
	if err != nil {
		t.Fatal(err)
	}
	if p2.MLP == nil {
		t.Fatal("LoadModels did not populate the MLP")
	}
	if _, err := New(Options{Tiny: true, Seed: 4, SkipCNN: true, LoadModels: t.TempDir()}); err == nil {
		t.Fatal("missing bundle dir should fail")
	}
}
