package experiments

import (
	"fmt"

	"dlpic/internal/dataset"
	"dlpic/internal/nn"
)

// Paper values for Table I (MAE and maximum error of the DL electric
// field solvers on test sets I and II).
var (
	PaperTable1 = map[string]float64{
		"MLP/MAE/I":  0.0019,
		"MLP/Max/I":  0.06899,
		"MLP/MAE/II": 0.0015,
		"MLP/Max/II": 0.0286,
		"CNN/MAE/I":  0.0020,
		"CNN/Max/I":  0.0463,
		"CNN/MAE/II": 0.0032,
		"CNN/Max/II": 0.073,
	}
	// PaperMaxField is the reference scale the paper quotes: "the maximum
	// electric field value obtained in the simulations is approximately
	// 0.1".
	PaperMaxField = 0.1
)

// Table1Result carries measured Table-I metrics for both architectures
// and both test sets.
type Table1Result struct {
	// MLPSetI/II and CNNSetI/II are the measured metrics; CNN entries
	// are zero when the pipeline skipped CNN training.
	MLPSetI, MLPSetII nn.Metrics
	CNNSetI, CNNSetII nn.Metrics
	HaveCNN           bool
	// MaxFieldInCorpus is the measured counterpart of PaperMaxField.
	MaxFieldInCorpus float64
	// SetIISamples is the Test Set II size.
	SetIISamples int
}

// GenerateTestSetII builds the paper's second test set: samples from
// simulations with parameter combinations not present in the training
// sweep (the §V validation parameters among them).
func (p *Pipeline) GenerateTestSetII() (*dataset.Dataset, error) {
	steps := 100
	every := 2
	if p.Opts.Paper {
		steps, every = 200, 1
	}
	opts := dataset.GenerateOpts{
		Base: p.Cfg,
		// Unseen combinations: v0 = 0.2 (the validation beam speed) and
		// 0.25; vth values off the training grid.
		V0s: []float64{0.2, 0.25}, Vths: []float64{0.025, 0.0075},
		Repeats: 1, Steps: steps, SampleEvery: every,
		Spec: p.Spec, Seed: p.Opts.Seed + 100,
	}
	ds, err := dataset.Generate(opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: test set II: %w", err)
	}
	// Test sets reuse the training normalizer (never refit).
	if err := ds.NormalizeWith(p.Train.Norm); err != nil {
		return nil, err
	}
	return ds, nil
}

// Table1 evaluates both solvers on test sets I and II.
func (p *Pipeline) Table1() (Table1Result, error) {
	var res Table1Result
	setII, err := p.GenerateTestSetII()
	if err != nil {
		return res, err
	}
	res.SetIISamples = setII.N()
	res.MLPSetI = nn.Evaluate(p.MLP.Net, p.TestI.Inputs, p.TestI.Targets, 64)
	res.MLPSetII = nn.Evaluate(p.MLP.Net, setII.Inputs, setII.Targets, 64)
	if p.CNN != nil {
		res.HaveCNN = true
		res.CNNSetI = nn.Evaluate(p.CNN.Net, p.TestI.Inputs, p.TestI.Targets, 64)
		res.CNNSetII = nn.Evaluate(p.CNN.Net, setII.Inputs, setII.Targets, 64)
	}
	// Field scale across the test targets (paper: ~0.1).
	for _, v := range p.TestI.Targets.Data {
		if a := abs(v); a > res.MaxFieldInCorpus {
			res.MaxFieldInCorpus = a
		}
	}
	for _, v := range setII.Targets.Data {
		if a := abs(v); a > res.MaxFieldInCorpus {
			res.MaxFieldInCorpus = a
		}
	}
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Rows renders the result as table rows (metric, paper, measured) in the
// paper's row order.
func (r Table1Result) Rows() [][]string {
	f := func(v float64) string { return fmt.Sprintf("%.4g", v) }
	rows := [][]string{
		{"Metric", "Test Set", "Arch", "Paper", "Measured"},
		{"Mean Absolute Error", "I", "MLP", f(PaperTable1["MLP/MAE/I"]), f(r.MLPSetI.MAE)},
		{"Max Error", "I", "MLP", f(PaperTable1["MLP/Max/I"]), f(r.MLPSetI.MaxErr)},
		{"Mean Absolute Error", "II", "MLP", f(PaperTable1["MLP/MAE/II"]), f(r.MLPSetII.MAE)},
		{"Max Error", "II", "MLP", f(PaperTable1["MLP/Max/II"]), f(r.MLPSetII.MaxErr)},
	}
	if r.HaveCNN {
		rows = append(rows,
			[]string{"Mean Absolute Error", "I", "CNN", f(PaperTable1["CNN/MAE/I"]), f(r.CNNSetI.MAE)},
			[]string{"Max Error", "I", "CNN", f(PaperTable1["CNN/Max/I"]), f(r.CNNSetI.MaxErr)},
			[]string{"Mean Absolute Error", "II", "CNN", f(PaperTable1["CNN/MAE/II"]), f(r.CNNSetII.MAE)},
			[]string{"Max Error", "II", "CNN", f(PaperTable1["CNN/Max/II"]), f(r.CNNSetII.MaxErr)},
		)
	}
	return rows
}
