package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"dlpic/internal/core"
	"dlpic/internal/dataset"
	"dlpic/internal/nn"
	"dlpic/internal/phasespace"
	"dlpic/internal/pic"
	"dlpic/internal/tensor"
)

// Trained-model persistence. A DL campaign spends almost all of its
// wall clock training, so trained solvers are treated as persistent
// artifacts: when Options.BundleDir is set, every trained solver is
// saved there as a model bundle keyed by its *training fingerprint*,
// and a later pipeline build with the same fingerprint reloads the
// bundle instead of retraining (zero training epochs). While a fit is
// in flight, an epoch-granular nn training checkpoint lives next to
// the bundle under the same key, so a killed campaign resumes
// mid-training rather than from scratch.
//
// The fingerprint covers everything the trained weights depend on: the
// corpus definition (base PIC config fingerprint, sweep axes, binning
// spec, generation seed), the pipeline seed that drives the shuffle
// and split, the network architecture, and the training configuration
// (epochs, batch size, optimizer and loss hyper-parameters, training
// seed, clip norm, shard override). Worker counts and logging are
// excluded — the training engine's determinism contract makes weights
// bit-identical at any of their values. Any other change produces a
// different key, so a stale bundle is simply never found; it can't be
// mistaken for current work.

// trainIdentity is the gob-hashed payload behind a training
// fingerprint. Field order matters only for the hash, which is fine:
// the struct is never persisted, only hashed in-process.
type trainIdentity struct {
	// CorpusBaseKey fingerprints the base PIC configuration the corpus
	// sweep runs (pic.ConfigKey — the campaign journal's own keying).
	CorpusBaseKey string
	V0s, Vths     []float64
	Repeats       int
	Steps         int
	SampleEvery   int
	Spec          phasespace.GridSpec
	CorpusSeed    uint64
	// PipelineSeed drives the corpus shuffle and split.
	PipelineSeed uint64
	// Arch describes the network architecture (config struct dump).
	Arch string
	// Training configuration identity (Epochs included: a bundle is a
	// *finished* artifact, unlike an nn checkpoint, so the epoch budget
	// is part of what it is).
	Epochs    int
	BatchSize int
	Optimizer string
	Loss      string
	TrainSeed uint64
	ClipNorm  float64
	Shards    int
}

// init pins trainIdentity's process-global gob type id by encoding a
// zero value to io.Discard at package init (see
// internal/nn/checkpoint.go): trainKey hashes the gob bytes of a
// trainIdentity, and without pinning those bytes — and therefore every
// training fingerprint keying the bundle store — would depend on what
// else the process gob-(de)serialized first, so a resumed campaign
// could miss the very bundles it persisted.
func init() {
	_ = gob.NewEncoder(io.Discard).Encode(trainIdentity{})
}

// trainKey fingerprints one solver's training run: corpus definition +
// architecture + training configuration.
func trainKey(sweep dataset.GenerateOpts, pipelineSeed uint64, arch any, tc nn.TrainConfig) (string, error) {
	baseKey, err := pic.ConfigKey(sweep.Base)
	if err != nil {
		return "", err
	}
	id := trainIdentity{
		CorpusBaseKey: baseKey,
		V0s:           sweep.V0s,
		Vths:          sweep.Vths,
		Repeats:       sweep.Repeats,
		Steps:         sweep.Steps,
		SampleEvery:   sweep.SampleEvery,
		Spec:          sweep.Spec,
		CorpusSeed:    sweep.Seed,
		PipelineSeed:  pipelineSeed,
		Arch:          fmt.Sprintf("%T%+v", arch, arch),
		Epochs:        tc.Epochs,
		BatchSize:     tc.BatchSize,
		Optimizer:     nn.OptimizerDesc(tc.Optimizer),
		Loss:          fmt.Sprintf("%T|%+v", tc.Loss, tc.Loss),
		TrainSeed:     tc.Seed,
		ClipNorm:      tc.ClipNorm,
		Shards:        tc.Shards,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(id); err != nil {
		return "", fmt.Errorf("experiments: fingerprint training: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:8]), nil
}

// Training singleflight. A long-running service can build several
// pipelines concurrently (one per campaign job), and two jobs whose
// specs share a training fingerprint would otherwise train the same
// model twice — and race their checkpoint and bundle writes at the
// same paths. trainSolver therefore serializes on the canonical bundle
// path: the second trainer waits for the first, then finds the
// persisted bundle and loads it (zero training epochs). The lock is
// process-global by design — the path, not the store, identifies the
// artifact, so two stores over one directory still exclude each other.
var (
	trainFlightMu sync.Mutex
	trainFlight   = map[string]*flightLock{}
)

// flightLock is one per-path mutex with a reference count so the map
// entry is dropped when the last holder leaves.
type flightLock struct {
	mu   sync.Mutex
	refs int
}

// lockTraining acquires the per-path training lock and returns its
// unlock.
func lockTraining(path string) func() {
	trainFlightMu.Lock()
	fl := trainFlight[path]
	if fl == nil {
		fl = &flightLock{}
		trainFlight[path] = fl
	}
	fl.refs++
	trainFlightMu.Unlock()
	fl.mu.Lock()
	return func() {
		fl.mu.Unlock()
		trainFlightMu.Lock()
		fl.refs--
		if fl.refs == 0 {
			delete(trainFlight, path)
		}
		trainFlightMu.Unlock()
	}
}

// bundleStore resolves fingerprint-keyed artifact paths under one
// directory and loads/saves solver bundles with logged fallbacks.
type bundleStore struct {
	dir  string
	logf func(format string, args ...any)
}

// bundlePath is the persisted model bundle of one (solver name, key).
func (s *bundleStore) bundlePath(name, key string) string {
	return filepath.Join(s.dir, name+"-"+key+".dlpic")
}

// ckptPath is the in-flight training checkpoint of one (name, key).
func (s *bundleStore) ckptPath(name, key string) string {
	return filepath.Join(s.dir, name+"-"+key+".ckpt")
}

// load returns the persisted solver for (name, key) when a structurally
// valid bundle with matching shapes exists. A missing file means a
// fresh or stale fingerprint — silently retrain. A present-but-corrupt
// bundle (truncated file, bad payload, wrong shapes) is logged with the
// reason and also falls back to retraining; it is never an error.
func (s *bundleStore) load(name, key string, spec phasespace.GridSpec, cells int) (*core.NNSolver, bool) {
	path := s.bundlePath(name, key)
	solver, err := core.LoadModelFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.logf("[%s] bundle %s unusable (%v); retraining", name, path, err)
		}
		return nil, false
	}
	if solver.Net.InDim != spec.Size() || solver.Net.OutDim() != cells {
		s.logf("[%s] bundle %s is %dx%d, pipeline wants %dx%d; retraining",
			name, path, solver.Net.InDim, solver.Net.OutDim(), spec.Size(), cells)
		return nil, false
	}
	return solver, true
}

// save persists a freshly trained solver under (name, key) and retires
// the training checkpoint that produced it — the bundle supersedes it.
// The write is atomic (tmp + rename, the checkpoint writer's pattern):
// a kill mid-save leaves no bundle rather than a truncated one at the
// canonical key path. Persistence failures are logged, not fatal: the
// in-memory pipeline is already complete.
func (s *bundleStore) save(name, key string, solver *core.NNSolver, cells int) {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		s.logf("[%s] bundle dir %s: %v (not persisted)", name, s.dir, err)
		return
	}
	path := s.bundlePath(name, key)
	tmp := path + ".tmp"
	if err := writeBundle(solver, cells, tmp); err != nil {
		s.logf("[%s] persist bundle %s: %v", name, path, err)
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		s.logf("[%s] install bundle %s: %v", name, path, err)
		os.Remove(tmp)
		return
	}
	s.logf("[%s] persisted bundle %s", name, path)
	os.Remove(s.ckptPath(name, key))
	os.Remove(s.ckptPath(name, key) + ".tmp")
}

// trainSolver produces one trained solver, going through the bundle
// store when one is configured: a persisted bundle with the same
// training fingerprint is reloaded (zero training epochs, empty
// History), otherwise training runs with an epoch-granular checkpoint
// under the same key — resuming a fit an interrupted build left
// behind — and the finished solver is persisted for the next build.
// With store == nil this is exactly the old train-from-scratch path.
func (p *Pipeline) trainSolver(store *bundleStore, name string, sweep dataset.GenerateOpts, ds *dataset.Dataset,
	arch any, build func() (*nn.Network, error), tc nn.TrainConfig) (*core.NNSolver, nn.History, error) {
	key := ""
	if store != nil {
		var err error
		key, err = trainKey(sweep, p.Opts.Seed, arch, tc)
		if err != nil {
			p.logf("[%s] training fingerprint failed (%v); bundle persistence disabled", name, err)
			store = nil
		}
	}
	if store != nil {
		// Singleflight across concurrent pipeline builds: hold the
		// fingerprint's training lock over load-or-train-and-save, so a
		// sibling build with the same identity waits here and then loads
		// the bundle this holder persists instead of retraining.
		unlock := lockTraining(store.bundlePath(name, key))
		defer unlock()
	}
	if store != nil {
		if solver, ok := store.load(name, key, p.Spec, p.Cfg.Cells); ok {
			p.logf("[%s] reusing persisted bundle %s (0 training epochs)", name, store.bundlePath(name, key))
			p.recordBundle(name, store.bundlePath(name, key))
			return solver, nn.History{}, nil
		}
		// Cadence ~10% of the budget bounds a kill's lost work without
		// serializing the full training state (weights + both Adam
		// moment vectors, fsynced) after every one of a paper-scale
		// run's 100-150 epochs; small budgets still checkpoint each
		// epoch.
		tc.Checkpoint = nn.Checkpoint{Path: store.ckptPath(name, key), Every: max(1, tc.Epochs/10)}
		if err := os.MkdirAll(store.dir, 0o755); err != nil {
			return nil, nn.History{}, fmt.Errorf("experiments: bundle dir %s: %w", store.dir, err)
		}
	}
	net, hist, err := fitWithCheckpoint(build, p.Train.Inputs, p.Train.Targets, p.Val.Inputs, p.Val.Targets, tc, p.logf)
	if err != nil {
		return nil, hist, err
	}
	solver, err := core.NewNNSolver(net, p.Spec, ds.Norm, p.Cfg.Cells)
	if err != nil {
		return nil, hist, err
	}
	if store != nil {
		store.save(name, key, solver, p.Cfg.Cells)
		// save logs-and-continues on persistence failures, so only a
		// bundle that actually landed becomes shippable.
		if path := store.bundlePath(name, key); fileExists(path) {
			p.recordBundle(name, path)
		}
	}
	return solver, hist, nil
}

// recordBundle notes the persisted bundle backing one trained solver
// (see Pipeline.BundlePaths).
func (p *Pipeline) recordBundle(name, path string) {
	if p.BundlePaths == nil {
		p.BundlePaths = make(map[string]string)
	}
	p.BundlePaths[name] = path
}

// fileExists reports whether path exists as a regular file.
func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.Mode().IsRegular()
}

// writeBundle encodes one solver bundle with the durability half of
// the atomic-write pattern (encode, fsync, close) — save renames it
// into place afterwards, so a crash at any point leaves either no
// bundle or a fully durable one at the canonical key path.
func writeBundle(solver *core.NNSolver, cells int, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := core.SaveModel(solver, cells, f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fitWithCheckpoint trains a fresh network (built by build) under tc,
// first attempting to resume the epoch-checkpointed fit at
// tc.Checkpoint.Path when an interrupted run left one. An unusable
// checkpoint — corrupt, truncated, or written by a different training
// configuration — is logged and ignored; training restarts clean and
// overwrites it at the first cadence point.
func fitWithCheckpoint(build func() (*nn.Network, error), x, y, xVal, yVal *tensor.Tensor, tc nn.TrainConfig,
	logf func(format string, args ...any)) (*nn.Network, nn.History, error) {
	if tc.Checkpoint.Path != "" {
		if _, err := os.Stat(tc.Checkpoint.Path); err == nil {
			net, hist, err := nn.ResumeFit(x, y, xVal, yVal, tc)
			if err == nil {
				return net, hist, nil
			}
			// Only a fault in the checkpoint itself licenses a retrain;
			// a failure in the resumed training run (disk full writing
			// the next checkpoint, non-finite loss) would deterministically
			// recur from scratch, so propagate it unrelabelled.
			if !errors.Is(err, nn.ErrCheckpointUnusable) {
				return nil, hist, err
			}
			logf("[train] checkpoint %s unusable (%v); retraining from scratch", tc.Checkpoint.Path, err)
		}
	}
	net, err := build()
	if err != nil {
		return nil, nn.History{}, err
	}
	hist, err := nn.Fit(net, x, y, xVal, yVal, tc)
	return net, hist, err
}
