package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dlpic/internal/batch"
	"dlpic/internal/core"
	"dlpic/internal/phasespace"
	"dlpic/internal/pic"
	"dlpic/internal/sweep"
)

// Method names understood by ResolveMethodNames / Methods. The paper's
// comparison set: the traditional deposit+Poisson solver, the two
// trained DL solvers, and the learning-free oracle that isolates cycle
// error from learning error.
const (
	MethodTraditional = "traditional"
	MethodOracle      = "oracle"
	MethodMLP         = "mlp"
	MethodCNN         = "cnn"
)

// KnownMethods returns the registry names Methods resolves, sorted.
func KnownMethods() []string {
	names := []string{MethodTraditional, MethodOracle, MethodMLP, MethodCNN}
	sort.Strings(names)
	return names
}

// ResolveMethodNames parses a comma-separated -methods flag value into
// a validated, deduplicated name list (order preserved) and reports
// which trained solvers it needs.
func ResolveMethodNames(raw string) (names []string, needMLP, needCNN bool, err error) {
	seen := map[string]bool{}
	for _, part := range strings.Split(raw, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		switch name {
		case MethodTraditional, MethodOracle:
		case MethodMLP:
			needMLP = true
		case MethodCNN:
			needCNN = true
		default:
			return nil, false, false, fmt.Errorf("experiments: unknown method %q (known: %s)",
				name, strings.Join(KnownMethods(), ", "))
		}
		if seen[name] {
			return nil, false, false, fmt.Errorf("experiments: duplicate method %q", name)
		}
		seen[name] = true
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, false, false, fmt.Errorf("experiments: empty method list")
	}
	return names, needMLP, needCNN, nil
}

// PipelineProvider supplies the trained pipeline a DL method needs. It
// is invoked at most once, concurrently-safely, and only when a DL
// cell actually executes — a resumed campaign whose DL cells are all
// journaled never pays corpus generation or training. FixedPipeline
// wraps an already-built pipeline; NewPipelineProvider memoizes a
// lazy build.
type PipelineProvider func() (*Pipeline, error)

// FixedPipeline wraps an existing pipeline as a provider.
func FixedPipeline(p *Pipeline) PipelineProvider {
	return func() (*Pipeline, error) { return p, nil }
}

// NewPipelineProvider returns a provider that builds the pipeline of
// opts on first use and reuses it afterwards (also across methods —
// the MLP and CNN entries share one corpus and training run).
func NewPipelineProvider(opts Options) PipelineProvider {
	var (
		once sync.Once
		p    *Pipeline
		err  error
	)
	return func() (*Pipeline, error) {
		once.Do(func() { p, err = New(opts) })
		return p, err
	}
}

// lazyBatcher defers building a batched inference backend until the
// first scenario of its method actually runs, so restored-from-journal
// campaigns neither train nor start servers. It implements
// sweep.Batcher; close releases the backend if one was built.
type lazyBatcher struct {
	build func() (*batch.Solver, error)
	once  sync.Once
	bs    *batch.Solver
	err   error
}

func (l *lazyBatcher) FieldMethod(cfg pic.Config) (pic.FieldMethod, error) {
	l.once.Do(func() { l.bs, l.err = l.build() })
	if l.err != nil {
		return nil, l.err
	}
	return l.bs.FieldMethod(cfg)
}

func (l *lazyBatcher) close() {
	if l.bs != nil {
		l.bs.Close()
	}
}

// MethodConfig selects how DL methods execute their field solves.
// The zero value is the per-call path: every scenario clones its own
// solver. Batched routes solves through shared batched-inference
// servers instead (MaxBatch <= 0 selects the default flush cap) —
// results are bit-identical either way. Pool, when set alongside
// Batched, sources those servers from a shared batch.Pool under
// PoolKey(method) rather than constructing one per registry: requesters
// from many concurrent campaigns then join and leave one live server,
// and the pool — not the registry's cleanup — owns its lifetime.
// PoolKey must fold in everything the built server depends on (the
// pipeline's training identity and the batch cap); it is required when
// Pool is set.
//
// Inference32 routes the DL methods' field solves through the float32
// inference path (per-call: core.NNSolver.Inference32; batched:
// batch.FromNNSolver32). Unlike Batched it is NOT result-neutral:
// observables drift within the nn.MeasureDrift32 bounds, so campaign
// digests only reproduce across runs of the same precision — and a
// PoolKey used with it must fold the precision in, or float32 and
// float64 campaigns would share a server. Dense stacks (the MLP) only;
// the CNN reports the conversion error.
type MethodConfig struct {
	Batched     bool
	MaxBatch    int
	Pool        *batch.Pool
	PoolKey     func(method string) string
	Inference32 bool
}

// BundleMethod constructs the method spec of one DL method from a
// locally cached model bundle — the worker side of distributed DL
// execution (dist.WorkerOptions.BundleMethod). It loads the bundle
// eagerly, so a corrupt file fails the cell at resolution rather than
// mid-sweep, and clones the solver per scenario exactly like the
// serial per-call path (MethodsWith without Batched), which is what
// keeps a distributed DL digest bit-identical to the serial one.
func BundleMethod(name, path string) (sweep.MethodSpec, error) {
	solver, err := core.LoadModelFile(path)
	if err != nil {
		return sweep.MethodSpec{}, fmt.Errorf("experiments: bundle method %q: %w", name, err)
	}
	return sweep.MethodSpec{Name: name, Factory: func(sweep.Scenario) (pic.FieldMethod, error) {
		return solver.Clone()
	}}, nil
}

// Methods resolves method names into the sweep method registry of a
// comparison campaign. provider supplies the trained solvers on first
// DL use; it may be nil when only model-free methods (traditional,
// oracle) are requested. With batched set, the DL methods route their
// field solves through shared batched-inference servers (maxBatch <= 0
// selects the default flush cap) instead of cloning one solver per
// scenario — results are bit-identical either way. The returned
// cleanup releases any batched backends and must be called after the
// sweeps using the specs have returned (it is a no-op when none were
// built).
func Methods(provider PipelineProvider, names []string, batched bool, maxBatch int) (specs []sweep.MethodSpec, cleanup func(), err error) {
	return MethodsWith(provider, names, MethodConfig{Batched: batched, MaxBatch: maxBatch})
}

// MethodsWith is Methods with the full MethodConfig seam, including
// pool-shared batched backends. With mc.Pool set the returned cleanup
// does not close pooled servers — they stay live for other campaigns
// and are released by Pool.Close when the owning service drains.
func MethodsWith(provider PipelineProvider, names []string, mc MethodConfig) (specs []sweep.MethodSpec, cleanup func(), err error) {
	if mc.Pool != nil && !mc.Batched {
		return nil, func() {}, fmt.Errorf("experiments: MethodConfig.Pool requires Batched")
	}
	if mc.Pool != nil && mc.PoolKey == nil {
		return nil, func() {}, fmt.Errorf("experiments: MethodConfig.Pool requires PoolKey")
	}
	var closers []func()
	cleanup = func() {
		for _, c := range closers {
			c()
		}
	}
	trained := func(name string) (*core.NNSolver, error) {
		if provider == nil {
			return nil, fmt.Errorf("experiments: method %q needs a trained %s solver", name, name)
		}
		p, err := provider()
		if err != nil {
			return nil, err
		}
		var solver *core.NNSolver
		if p != nil {
			switch name {
			case MethodMLP:
				solver = p.MLP
			case MethodCNN:
				solver = p.CNN
			}
		}
		if solver == nil {
			return nil, fmt.Errorf("experiments: method %q needs a trained %s solver", name, name)
		}
		return solver, nil
	}
	solverSpec := func(name string) sweep.MethodSpec {
		if mc.Batched {
			build := func() (*batch.Solver, error) {
				solver, err := trained(name)
				if err != nil {
					return nil, err
				}
				if mc.Inference32 {
					return batch.FromNNSolver32(solver, mc.MaxBatch)
				}
				return batch.FromNNSolver(solver, mc.MaxBatch)
			}
			if mc.Pool != nil {
				pool, key := mc.Pool, mc.PoolKey(name)
				// Pool-owned: not in closers — the server outlives this
				// registry so later campaigns' requesters can join it.
				return sweep.MethodSpec{Name: name,
					Batcher: &lazyBatcher{build: func() (*batch.Solver, error) {
						return pool.Solver(key, build)
					}}}
			}
			lb := &lazyBatcher{build: build}
			closers = append(closers, lb.close)
			return sweep.MethodSpec{Name: name, Batcher: lb}
		}
		return sweep.MethodSpec{Name: name, Factory: func(sweep.Scenario) (pic.FieldMethod, error) {
			solver, err := trained(name)
			if err != nil {
				return nil, err
			}
			c, err := solver.Clone()
			if err != nil {
				return nil, err
			}
			if mc.Inference32 {
				c.Inference32 = true
			}
			return c, nil
		}}
	}
	for _, name := range names {
		switch name {
		case MethodTraditional:
			specs = append(specs, sweep.MethodSpec{Name: MethodTraditional})
		case MethodOracle:
			// The oracle is model-free: it consumes the default binning
			// with NX following the grid (which its density recovery
			// requires) — the same spec the trained pipeline uses on
			// the paper box.
			specs = append(specs, sweep.MethodSpec{Name: MethodOracle,
				Factory: func(sc sweep.Scenario) (pic.FieldMethod, error) {
					spec := phasespace.DefaultSpec(sc.Cfg.Length)
					spec.NX = sc.Cfg.Cells
					return core.NewOracleSolver(sc.Cfg, spec)
				}})
		case MethodMLP, MethodCNN:
			if provider == nil {
				cleanup()
				return nil, func() {}, fmt.Errorf("experiments: method %q needs a trained solver (no pipeline provider)", name)
			}
			specs = append(specs, solverSpec(name))
		default:
			cleanup()
			return nil, func() {}, fmt.Errorf("experiments: unknown method %q", name)
		}
	}
	return specs, cleanup, nil
}
