package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dlpic/internal/campaign"
	"dlpic/internal/nn"
	"dlpic/internal/rng"
	"dlpic/internal/sweep"
)

// tinyBundleOpts is the smallest pipeline that exercises the bundle
// store (tiny scale, MLP only, silent).
func tinyBundleOpts(dir string, seed uint64) Options {
	return Options{Tiny: true, Seed: seed, SkipCNN: true, BundleDir: dir}
}

// mlpBytes serializes a pipeline's MLP weights for byte comparison.
func mlpBytes(t *testing.T, p *Pipeline) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := nn.Save(p.MLP.Net, &buf); err != nil {
		t.Fatalf("save mlp: %v", err)
	}
	return buf.Bytes()
}

// bundleFiles lists the .dlpic bundles currently persisted in dir.
func bundleFiles(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "*.dlpic"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBundleReuse_SkipsTraining: a second pipeline build with the same
// fingerprint reloads the persisted bundle — zero training epochs,
// bit-identical solver.
func TestBundleReuse_SkipsTraining(t *testing.T) {
	dir := t.TempDir()
	p1, err := New(tinyBundleOpts(dir, 1))
	if err != nil {
		t.Fatalf("first build: %v", err)
	}
	if len(p1.MLPHistory.Epochs) == 0 {
		t.Fatal("first build did not train")
	}
	if n := len(bundleFiles(t, dir)); n != 1 {
		t.Fatalf("expected 1 persisted bundle, found %d", n)
	}
	// The training checkpoint is retired once the bundle exists.
	if m, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(m) != 0 {
		t.Fatalf("training checkpoint not retired: %v", m)
	}

	p2, err := New(tinyBundleOpts(dir, 1))
	if err != nil {
		t.Fatalf("second build: %v", err)
	}
	if len(p2.MLPHistory.Epochs) != 0 {
		t.Fatalf("second build ran %d training epochs, want 0", len(p2.MLPHistory.Epochs))
	}
	if !bytes.Equal(mlpBytes(t, p1), mlpBytes(t, p2)) {
		t.Fatal("reloaded bundle differs from the trained solver")
	}
}

// TestBundleReuse_StaleFingerprintRetrains: changing anything the
// weights depend on (here the pipeline seed, which drives corpus
// shuffling and init) produces a different key, so the old bundle is
// ignored and training runs again.
func TestBundleReuse_StaleFingerprintRetrains(t *testing.T) {
	dir := t.TempDir()
	if _, err := New(tinyBundleOpts(dir, 1)); err != nil {
		t.Fatalf("first build: %v", err)
	}
	p2, err := New(tinyBundleOpts(dir, 2))
	if err != nil {
		t.Fatalf("second build: %v", err)
	}
	if len(p2.MLPHistory.Epochs) == 0 {
		t.Fatal("stale-fingerprint build reused a bundle it must not see")
	}
	if n := len(bundleFiles(t, dir)); n != 2 {
		t.Fatalf("expected 2 persisted bundles (one per fingerprint), found %d", n)
	}
}

// TestBundleReuse_CorruptBundleFallsBack: garbage and truncated bundle
// files are logged and retrained through, with final results identical
// to a clean train.
func TestBundleReuse_CorruptBundleFallsBack(t *testing.T) {
	dir := t.TempDir()
	p1, err := New(tinyBundleOpts(dir, 1))
	if err != nil {
		t.Fatalf("reference build: %v", err)
	}
	want := mlpBytes(t, p1)
	path := bundleFiles(t, dir)[0]

	corruptions := map[string]func() error{
		"garbage": func() error { return os.WriteFile(path, []byte("not a bundle"), 0o644) },
		"truncated": func() error {
			buf, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, buf[:len(buf)/3], 0o644)
		},
	}
	for name, corrupt := range corruptions {
		// Restore a clean persisted bundle, then corrupt it.
		if _, err := New(tinyBundleOpts(dir, 1)); err != nil {
			t.Fatalf("%s: rebuild: %v", name, err)
		}
		if err := corrupt(); err != nil {
			t.Fatalf("%s: corrupt: %v", name, err)
		}
		p, err := New(tinyBundleOpts(dir, 1))
		if err != nil {
			t.Fatalf("%s: build over corrupt bundle: %v", name, err)
		}
		if len(p.MLPHistory.Epochs) == 0 {
			t.Fatalf("%s: corrupt bundle was reused instead of retrained", name)
		}
		if !bytes.Equal(mlpBytes(t, p), want) {
			t.Fatalf("%s: retrain after corruption diverged from the clean train", name)
		}
	}
}

// TestBundleReuse_InterruptedTrainingResumes: an nn training checkpoint
// left by an interrupted pipeline build is resumed — not restarted —
// and the finished weights are identical to an uninterrupted build's.
func TestBundleReuse_InterruptedTrainingResumes(t *testing.T) {
	dir := t.TempDir()
	ref, err := New(tinyBundleOpts(dir, 1))
	if err != nil {
		t.Fatalf("reference build: %v", err)
	}
	want := mlpBytes(t, ref)
	bundle := bundleFiles(t, dir)[0]
	ckpt := bundle[:len(bundle)-len(".dlpic")] + ".ckpt"

	// Simulate a kill mid-training: rerun the exact fit the pipeline
	// runs, but stop at epoch 4 of the tiny scale's 10, leaving the
	// checkpoint where the pipeline would find it; then remove the
	// bundle so the next build cannot shortcut past training.
	interruptedFit(t, dir, ckpt, 4)
	if err := os.Remove(bundle); err != nil {
		t.Fatal(err)
	}

	p2, err := New(tinyBundleOpts(dir, 1))
	if err != nil {
		t.Fatalf("resumed build: %v", err)
	}
	if got := len(p2.MLPHistory.Epochs); got != 10 {
		t.Fatalf("resumed build history has %d epochs, want the full 10", got)
	}
	if !bytes.Equal(mlpBytes(t, p2), want) {
		t.Fatal("resumed training diverged from the uninterrupted build")
	}
}

// interruptedFit reproduces the tiny pipeline's MLP fit up to `epochs`
// epochs with a checkpoint at path — exactly the state a kill during a
// pipeline build leaves behind. The corpus partitions come from a
// bundle-reusing build (no extra training).
func interruptedFit(t *testing.T, dir, path string, epochs int) {
	t.Helper()
	p, err := New(tinyBundleOpts(dir, 1))
	if err != nil {
		t.Fatalf("corpus build: %v", err)
	}
	arch := nn.MLPConfig{InDim: p.Spec.Size(), OutDim: p.Cfg.Cells, Hidden: 32, HiddenLayers: 3}
	net, err := nn.NewMLP(arch, rng.New(p.Opts.Seed+2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = nn.Fit(net, p.Train.Inputs, p.Train.Targets, p.Val.Inputs, p.Val.Targets, nn.TrainConfig{
		Epochs: epochs, BatchSize: 64, Optimizer: nn.NewAdam(1e-3),
		Loss: nn.MSE{}, Seed: p.Opts.Seed + 3,
		Checkpoint: nn.Checkpoint{Path: path},
	})
	if err != nil {
		t.Fatalf("interrupted fit: %v", err)
	}
}

// TestBundleReuse_BundlePresentJournalMissing: deleting the campaign
// journal but keeping the artifact directory re-runs every cell with
// the reloaded bundle — zero training epochs and a bit-identical
// campaign digest.
func TestBundleReuse_BundlePresentJournalMissing(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "scan.jsonl")
	artifacts := campaign.ArtifactDir(journal)

	runCampaign := func() (string, *Pipeline) {
		var built *Pipeline
		provider := func() (*Pipeline, error) {
			if built == nil {
				p, err := New(tinyBundleOpts(artifacts, 1))
				if err != nil {
					return nil, err
				}
				built = p
			}
			return built, nil
		}
		specs, cleanup, err := Methods(provider, []string{MethodMLP}, false, 0)
		if err != nil {
			t.Fatalf("Methods: %v", err)
		}
		defer cleanup()
		base := Options{Tiny: true}.BaseConfig()
		results, err := campaign.Run(journal, campaign.Spec{
			Scenarios: sweep.Grid(base, []float64{0.2}, []float64{0.01}, 1, 10, 1),
			Opts:      sweep.Options{Workers: 2, Methods: specs},
		})
		if err != nil {
			t.Fatalf("campaign.Run: %v", err)
		}
		if err := sweep.FirstError(results); err != nil {
			t.Fatalf("cell failed: %v", err)
		}
		return campaign.Digest(results), built
	}

	d1, p1 := runCampaign()
	if p1 == nil || len(p1.MLPHistory.Epochs) == 0 {
		t.Fatal("first campaign did not train")
	}
	if err := os.Remove(journal); err != nil {
		t.Fatal(err)
	}
	d2, p2 := runCampaign()
	if p2 == nil {
		t.Fatal("second campaign never built a pipeline (journal was deleted, cells must re-run)")
	}
	if len(p2.MLPHistory.Epochs) != 0 {
		t.Fatalf("second campaign ran %d training epochs, want 0 (bundle present)", len(p2.MLPHistory.Epochs))
	}
	if d1 != d2 {
		t.Fatalf("digests diverge across journal loss: %s vs %s", d1, d2)
	}
}

// TestBundleSingleflight_ConcurrentBuildsTrainOnce: two pipeline builds
// racing on one training fingerprint in one bundle directory — the
// shape of two concurrent service campaigns needing the same model —
// train exactly once. The second build waits on the fingerprint's
// training lock and then loads the bundle the first persisted: one
// .dlpic file, one non-empty training history, byte-identical weights.
func TestBundleSingleflight_ConcurrentBuildsTrainOnce(t *testing.T) {
	dir := t.TempDir()
	pipes := make([]*Pipeline, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := range pipes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pipes[i], errs[i] = New(tinyBundleOpts(dir, 1))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("build %d: %v", i, err)
		}
	}
	if n := len(bundleFiles(t, dir)); n != 1 {
		t.Fatalf("concurrent same-fingerprint builds persisted %d bundles, want 1", n)
	}
	trainedN := 0
	for _, p := range pipes {
		if len(p.MLPHistory.Epochs) > 0 {
			trainedN++
		}
	}
	if trainedN != 1 {
		t.Fatalf("%d of 2 concurrent builds trained, want exactly 1", trainedN)
	}
	if !bytes.Equal(mlpBytes(t, pipes[0]), mlpBytes(t, pipes[1])) {
		t.Fatal("concurrent builds disagree on MLP weights")
	}
}
