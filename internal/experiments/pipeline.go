// Package experiments reproduces the paper's evaluation: Table I (MAE /
// max error of the MLP and CNN on seen and unseen parameters) and
// Figures 4-6 (two-stream validation against linear theory, energy and
// momentum conservation, cold-beam stability). cmd/experiments renders
// the results; the root benchmark suite reuses the same pipeline.
//
// Two scales are provided. The scaled configuration (default) preserves
// the experiment structure — same box, same time step, same sweep axes
// structure, same architectures — at sizes that train in minutes on one
// CPU core. The paper configuration (-paper) matches the original sizes
// (64x64 phase space, 1000 particles/cell, 3x1024 MLP, 40,000-sample
// corpus) and takes correspondingly longer.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"dlpic/internal/core"
	"dlpic/internal/dataset"
	"dlpic/internal/interp"
	"dlpic/internal/nn"
	"dlpic/internal/phasespace"
	"dlpic/internal/pic"
	"dlpic/internal/rng"
)

// Options selects the pipeline scale and reporting sinks.
type Options struct {
	// Paper selects the full paper-sized configuration.
	Paper bool
	// Tiny selects a seconds-scale configuration for tests and
	// benchmark fixtures (takes precedence over Paper).
	Tiny bool
	// Seed drives all randomness.
	Seed uint64
	// Log receives progress lines (nil silences).
	Log io.Writer
	// SkipCNN skips CNN training (the slowest stage); Table I then
	// reports only the MLP rows.
	SkipCNN bool
	// ModelDir, when non-empty, receives the trained solver bundles
	// (mlp.dlpic, cnn.dlpic) for reuse with cmd/picrun.
	ModelDir string
	// LoadModels, when non-empty, loads previously saved bundles from
	// the directory instead of training (corpus generation still runs —
	// it is cheap and Table I needs the test partitions).
	LoadModels string
	// BundleDir, when non-empty, makes training resumable and
	// reusable: trained solvers are persisted there as model bundles
	// keyed by their training fingerprint (corpus definition +
	// architecture + training configuration), a matching bundle is
	// reloaded instead of retrained (zero training epochs), and while
	// a fit is in flight an epoch-granular nn training checkpoint
	// under the same key lets an interrupted build resume
	// mid-training. Stale or corrupt artifacts fall back to a clean
	// retrain with a logged reason. Campaigns point this at the
	// journal's artifact directory (campaign.ArtifactDir). Unlike
	// LoadModels, reuse is fingerprint-checked — a bundle trained
	// under different settings is never picked up. LoadModels takes
	// precedence: with it set, training is bypassed and the bundle
	// store is never consulted.
	BundleDir string
	// TrainWorkers is the data-parallel worker count of the sharded
	// training engine (0 = GOMAXPROCS). Trained weights, losses and
	// histories are bit-identical for any value.
	TrainWorkers int
	// TrainPipeline overlaps each batch's gather with the previous
	// batch's optimizer step (nn.TrainConfig.Pipeline). Like
	// TrainWorkers it is an execution-environment knob: weights and
	// histories are bit-identical with it on or off, and it does not
	// enter the training fingerprint BundleDir keys on.
	TrainPipeline bool
	// Inference32 routes DL field solves through the float32 inference
	// path when the campaign's method registry opts in (see
	// MethodConfig.Inference32). Training always stays float64; this
	// option only threads the flag through to solver construction.
	Inference32 bool
}

// Pipeline holds the shared state of the evaluation: the corpus, the
// trained solvers, and the base configuration.
type Pipeline struct {
	Opts Options
	// Cfg is the base PIC configuration (paper §III box).
	Cfg pic.Config
	// Spec is the phase-space binning (64x64 over [-0.8, 0.8]).
	Spec phasespace.GridSpec

	// Corpus partitions (normalized).
	Train, Val, TestI *dataset.Dataset

	// Trained solvers.
	MLP *core.NNSolver
	CNN *core.NNSolver

	// Training histories.
	MLPHistory, CNNHistory nn.History

	// BundlePaths maps a DL method name ("mlp", "cnn") to the persisted
	// model bundle backing it, populated when Options.BundleDir is set
	// (whether the build trained fresh or reused a persisted bundle).
	// Distributed campaigns turn these into dist.BundleRef wire
	// identities so workers can fetch the trained models.
	BundlePaths map[string]string

	// MaxField is the largest |E| in the corpus targets (the paper's
	// ~0.1 reference scale).
	MaxField float64

	// Timings.
	GenTime, MLPTrainTime, CNNTrainTime time.Duration
}

// logf writes a progress line when a log sink is configured.
func (p *Pipeline) logf(format string, args ...any) {
	if p.Opts.Log != nil {
		fmt.Fprintf(p.Opts.Log, format+"\n", args...)
	}
}

// Scale identifies a pipeline size.
type Scale int

// Pipeline scales, from smallest to the paper's original sizes.
const (
	ScaleTiny Scale = iota
	ScaleDefault
	ScalePaper
)

func (o Options) scale() Scale {
	switch {
	case o.Tiny:
		return ScaleTiny
	case o.Paper:
		return ScalePaper
	default:
		return ScaleDefault
	}
}

// BaseConfig returns the PIC configuration for the chosen scale.
func BaseConfig(paper bool) pic.Config {
	return baseConfig(map[bool]Scale{true: ScalePaper, false: ScaleDefault}[paper])
}

// BaseConfig returns the base PIC configuration the pipeline of these
// options would use — a pure function of the scale, available without
// generating a corpus or training. Campaign scans use it to build the
// scenario list up front and defer pipeline construction until a DL
// cell actually runs.
func (o Options) BaseConfig() pic.Config { return baseConfig(o.scale()) }

func baseConfig(sc Scale) pic.Config {
	cfg := pic.Default()
	switch sc {
	case ScalePaper:
		// Paper values: 1000 particles/cell.
	case ScaleDefault:
		// Scaled: fewer macro-particles per cell; everything else
		// (box, cells, dt) stays at the paper values. The particle count
		// must match between corpus generation and the DL-PIC runs
		// because the histogram magnitudes (and hence the fitted
		// normalizer) scale with it.
		cfg.ParticlesPerCell = 250
	case ScaleTiny:
		cfg.ParticlesPerCell = 30
	}
	return cfg
}

// SweepOpts returns the corpus sweep for the chosen scale.
func SweepOpts(cfg pic.Config, spec phasespace.GridSpec, paper bool, seed uint64) dataset.GenerateOpts {
	sc := ScaleDefault
	if paper {
		sc = ScalePaper
	}
	return sweepOpts(cfg, spec, sc, seed)
}

func sweepOpts(cfg pic.Config, spec phasespace.GridSpec, sc Scale, seed uint64) dataset.GenerateOpts {
	switch sc {
	case ScalePaper:
		return dataset.GenerateOpts{
			Base:    cfg,
			V0s:     []float64{0.05, 0.1, 0.15, 0.18, 0.3},
			Vths:    []float64{0.0, 0.001, 0.005, 0.01},
			Repeats: 10, Steps: 200, SampleEvery: 1,
			Spec: spec, Seed: seed,
		}
	case ScaleTiny:
		return dataset.GenerateOpts{
			Base:    cfg,
			V0s:     []float64{0.15, 0.2},
			Vths:    []float64{0.0},
			Repeats: 1, Steps: 80, SampleEvery: 2,
			Spec: spec, Seed: seed,
		}
	default:
		// All five of the paper's v0 values with three of its vth values
		// at reduced repeats — the corpus structure of §IV-1 at 1/13 of
		// the samples.
		return dataset.GenerateOpts{
			Base:    cfg,
			V0s:     []float64{0.05, 0.1, 0.15, 0.18, 0.3},
			Vths:    []float64{0.0, 0.005, 0.01},
			Repeats: 2, Steps: 200, SampleEvery: 2,
			Spec: spec, Seed: seed,
		}
	}
}

// New generates the corpus and trains the solvers.
func New(opts Options) (*Pipeline, error) {
	p := &Pipeline{Opts: opts}
	sc := opts.scale()
	p.Cfg = baseConfig(sc)
	p.Spec = phasespace.DefaultSpec(p.Cfg.Length)

	// --- Corpus ---------------------------------------------------------
	sweep := sweepOpts(p.Cfg, p.Spec, sc, opts.Seed)
	totalRuns := len(sweep.V0s) * len(sweep.Vths) * sweep.Repeats
	p.logf("[gen] corpus: %d runs x %d steps (sample every %d), %d particles each",
		totalRuns, sweep.Steps, sweep.SampleEvery, p.Cfg.NumParticles())
	sweep.Progress = func(done, total int) {
		if done%4 == 0 || done == total {
			p.logf("[gen]   %d/%d runs", done, total)
		}
	}
	//determlint:ignore nondet GenTime is log-only stage telemetry; it never reaches a digest, journal or fingerprint
	start := time.Now()
	ds, err := dataset.Generate(sweep)
	if err != nil {
		return nil, fmt.Errorf("experiments: corpus generation: %w", err)
	}
	p.GenTime = time.Since(start) //determlint:ignore nondet GenTime is log-only telemetry
	p.logf("[gen] %d samples in %v", ds.N(), p.GenTime.Round(time.Second))
	if err := ds.Normalize(); err != nil {
		return nil, err
	}
	for _, v := range ds.Targets.Data {
		if a := v; a < 0 {
			a = -a
			if a > p.MaxField {
				p.MaxField = a
			}
		} else if a > p.MaxField {
			p.MaxField = a
		}
	}
	ds.Shuffle(opts.Seed + 1)
	// Paper split ratio: 38000/1000/1000 of 40000 => 95% / 2.5% / 2.5%.
	nVal := ds.N() / 40
	if nVal < 16 {
		nVal = 16
	}
	nTest := nVal
	p.Train, p.Val, p.TestI, err = ds.Split(ds.N()-nVal-nTest, nVal, nTest)
	if err != nil {
		return nil, err
	}

	if opts.LoadModels != "" {
		return p, p.loadModels(opts.LoadModels)
	}

	var store *bundleStore
	if opts.BundleDir != "" {
		store = &bundleStore{dir: opts.BundleDir, logf: p.logf}
	}

	// --- MLP -------------------------------------------------------------
	mlpArch := nn.MLPConfig{InDim: p.Spec.Size(), OutDim: p.Cfg.Cells, Hidden: 192, HiddenLayers: 3}
	mlpEpochs, cnnEpochs := 60, 25
	// The paper trains with Adam at lr 1e-4 for 150/100 epochs; the
	// scaled schedules compensate their shorter epoch budgets with a
	// higher rate.
	lr := 1e-3
	switch sc {
	case ScalePaper:
		mlpArch.Hidden = 1024
		mlpEpochs, cnnEpochs = 150, 100
		lr = 1e-4
	case ScaleTiny:
		mlpArch.Hidden = 32
		mlpEpochs, cnnEpochs = 10, 4
	}
	//determlint:ignore nondet MLPTrainTime is log-only stage telemetry, never digested
	start = time.Now()
	p.MLP, p.MLPHistory, err = p.trainSolver(store, "mlp", sweep, ds, mlpArch,
		func() (*nn.Network, error) {
			net, err := nn.NewMLP(mlpArch, rng.New(opts.Seed+2))
			if err == nil {
				p.logf("[mlp] %s", net.Summary())
			}
			return net, err
		},
		nn.TrainConfig{
			Epochs: mlpEpochs, BatchSize: 64, Optimizer: nn.NewAdam(lr),
			Loss: nn.MSE{}, Seed: opts.Seed + 3, Log: opts.Log, LogEvery: 5,
			Workers: opts.TrainWorkers, Pipeline: opts.TrainPipeline,
		})
	if err != nil {
		return nil, fmt.Errorf("experiments: MLP training: %w", err)
	}
	p.MLPTrainTime = time.Since(start) //determlint:ignore nondet MLPTrainTime is log-only telemetry
	if n := len(p.MLPHistory.Epochs); n > 0 {
		p.logf("[mlp] trained in %v (val MAE %.3g)", p.MLPTrainTime.Round(time.Second), p.MLPHistory.Final().ValMAE)
	}

	// --- CNN -------------------------------------------------------------
	if !opts.SkipCNN {
		cnnArch := nn.CNNConfig{
			H: p.Spec.NV, W: p.Spec.NX, OutDim: p.Cfg.Cells,
			Channels1: 4, Channels2: 8, Kernel: 3, Hidden: 128, HiddenLayers: 3,
		}
		switch sc {
		case ScalePaper:
			cnnArch.Channels1, cnnArch.Channels2, cnnArch.Hidden = 16, 32, 1024
		case ScaleTiny:
			cnnArch.Channels1, cnnArch.Channels2, cnnArch.Hidden = 2, 2, 32
		}
		//determlint:ignore nondet CNNTrainTime is log-only stage telemetry, never digested
		start = time.Now()
		p.CNN, p.CNNHistory, err = p.trainSolver(store, "cnn", sweep, ds, cnnArch,
			func() (*nn.Network, error) {
				net, err := nn.NewCNN(cnnArch, rng.New(opts.Seed+4))
				if err == nil {
					p.logf("[cnn] %s", net.Summary())
				}
				return net, err
			},
			nn.TrainConfig{
				Epochs: cnnEpochs, BatchSize: 64, Optimizer: nn.NewAdam(lr),
				Loss: nn.MSE{}, Seed: opts.Seed + 5, Log: opts.Log, LogEvery: 5,
				Workers: opts.TrainWorkers, Pipeline: opts.TrainPipeline,
			})
		if err != nil {
			return nil, fmt.Errorf("experiments: CNN training: %w", err)
		}
		p.CNNTrainTime = time.Since(start) //determlint:ignore nondet CNNTrainTime is log-only telemetry
		if n := len(p.CNNHistory.Epochs); n > 0 {
			p.logf("[cnn] trained in %v (val MAE %.3g)", p.CNNTrainTime.Round(time.Second), p.CNNHistory.Final().ValMAE)
		}
	}
	if opts.ModelDir != "" {
		if err := os.MkdirAll(opts.ModelDir, 0o755); err != nil {
			return nil, err
		}
		if err := core.SaveModelFile(p.MLP, p.Cfg.Cells, filepath.Join(opts.ModelDir, "mlp.dlpic")); err != nil {
			return nil, err
		}
		if p.CNN != nil {
			if err := core.SaveModelFile(p.CNN, p.Cfg.Cells, filepath.Join(opts.ModelDir, "cnn.dlpic")); err != nil {
				return nil, err
			}
		}
		p.logf("[models] saved to %s", opts.ModelDir)
	}
	return p, nil
}

// loadModels restores previously exported solver bundles.
func (p *Pipeline) loadModels(dir string) error {
	mlp, err := core.LoadModelFile(filepath.Join(dir, "mlp.dlpic"))
	if err != nil {
		return fmt.Errorf("experiments: load mlp: %w", err)
	}
	p.MLP = mlp
	p.logf("[models] loaded MLP from %s", dir)
	if !p.Opts.SkipCNN {
		cnn, err := core.LoadModelFile(filepath.Join(dir, "cnn.dlpic"))
		if err != nil {
			return fmt.Errorf("experiments: load cnn: %w", err)
		}
		p.CNN = cnn
		p.logf("[models] loaded CNN from %s", dir)
	}
	return nil
}

// ValidationConfig returns the configuration of the paper's §V
// validation run: v0 = 0.2, vth = 0.025 — parameters excluded from the
// training sweep.
func (p *Pipeline) ValidationConfig(seed uint64) pic.Config {
	cfg := p.Cfg
	cfg.V0 = 0.2
	cfg.Vth = 0.025
	cfg.Seed = seed
	return cfg
}

// ColdBeamConfig returns the configuration of the paper's Fig. 6 run:
// v0 = 0.4, vth = 0 (linearly stable, numerically fragile).
func (p *Pipeline) ColdBeamConfig(seed uint64) pic.Config {
	cfg := p.Cfg
	cfg.V0 = 0.4
	cfg.Vth = 0.0
	cfg.Seed = seed
	return cfg
}

// NGP returns a copy of the pipeline's binning with NGP (the paper's
// choice); CIC switches to the higher-order binning extension.
func (p *Pipeline) BinningVariant(scheme interp.Scheme) phasespace.GridSpec {
	spec := p.Spec
	spec.Binning = scheme
	return spec
}
