package experiments

import (
	"math"
	"strings"
	"testing"
)

// tinyPipeline is shared across tests (built once; ~seconds).
var tinyPipe *Pipeline

func getPipeline(t *testing.T) *Pipeline {
	t.Helper()
	if tinyPipe != nil {
		return tinyPipe
	}
	p, err := New(Options{Tiny: true, Seed: 7})
	if err != nil {
		t.Fatalf("tiny pipeline: %v", err)
	}
	tinyPipe = p
	return p
}

func TestPipelineConstruction(t *testing.T) {
	p := getPipeline(t)
	if p.Train.N() == 0 || p.Val.N() == 0 || p.TestI.N() == 0 {
		t.Fatalf("empty partitions: %d/%d/%d", p.Train.N(), p.Val.N(), p.TestI.N())
	}
	if p.MLP == nil || p.CNN == nil {
		t.Fatal("solvers not trained")
	}
	if !p.Train.Normalized {
		t.Fatal("corpus not normalized")
	}
	// Training improved the loss.
	h := p.MLPHistory
	if len(h.Epochs) == 0 || h.Final().TrainLoss >= h.Epochs[0].TrainLoss {
		t.Fatalf("MLP training did not improve: %+v", h.Epochs)
	}
}

func TestTable1Runs(t *testing.T) {
	p := getPipeline(t)
	res, err := p.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if !res.HaveCNN {
		t.Fatal("CNN missing from Table 1")
	}
	if res.SetIISamples == 0 {
		t.Fatal("empty test set II")
	}
	// At tiny scale the errors are larger than the paper's but must stay
	// far below the field scale for the table to be meaningful.
	if res.MLPSetI.MAE <= 0 || res.MLPSetI.MAE > res.MaxFieldInCorpus {
		t.Fatalf("MLP Set I MAE %v implausible (field scale %v)", res.MLPSetI.MAE, res.MaxFieldInCorpus)
	}
	if res.MaxFieldInCorpus <= 0 {
		t.Fatal("field scale not measured")
	}
	rows := res.Rows()
	if len(rows) != 9 {
		t.Fatalf("row count %d, want 9 (header + 8 metrics)", len(rows))
	}
	joined := ""
	for _, r := range rows {
		joined += strings.Join(r, " ") + "\n"
	}
	if !strings.Contains(joined, "MLP") || !strings.Contains(joined, "CNN") {
		t.Fatalf("rows missing architectures: %s", joined)
	}
}

func TestFig4Runs(t *testing.T) {
	p := getPipeline(t)
	res, err := p.Fig4(60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traditional.Rec.Len() != 60 || res.DL.Rec.Len() != 60 {
		t.Fatal("missing samples")
	}
	if math.Abs(res.TheoryGamma-1/math.Sqrt(8)) > 1e-3 {
		t.Fatalf("theory gamma %v, want ~0.354", res.TheoryGamma)
	}
	if res.WarmGamma <= 0 || res.WarmGamma > res.TheoryGamma {
		t.Fatalf("warm gamma %v out of range (cold %v)", res.WarmGamma, res.TheoryGamma)
	}
	if len(res.DL.FinalX) == 0 || len(res.DL.FinalV) == 0 {
		t.Fatal("missing phase-space snapshot")
	}
}

func TestFig6Runs(t *testing.T) {
	p := getPipeline(t)
	res, err := p.Fig6(40)
	if err != nil {
		t.Fatal(err)
	}
	// Cold beams: starting spread is tiny (only the de-stagger half-kick
	// against the loading-noise field perturbs the exact +-v0 loading).
	if res.Traditional.VelocitySpreadStart > 0.01 {
		t.Fatalf("cold beam started warm: %v", res.Traditional.VelocitySpreadStart)
	}
	if res.Traditional.Rec.Len() != 40 || res.DL.Rec.Len() != 40 {
		t.Fatal("missing samples")
	}
}

func TestOracleRunMatchesTheory(t *testing.T) {
	p := getPipeline(t)
	res, err := p.OracleRun(150)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FitOK {
		t.Skip("noise-seeded tiny run produced no clean growth window")
	}
	want := 1 / math.Sqrt(8)
	if math.Abs(res.Growth.Gamma-want)/want > 0.35 {
		t.Fatalf("oracle growth %v too far from theory %v", res.Growth.Gamma, want)
	}
}

func TestValidationConfigUsesUnseenParameters(t *testing.T) {
	p := getPipeline(t)
	cfg := p.ValidationConfig(1)
	if cfg.V0 != 0.2 || cfg.Vth != 0.025 {
		t.Fatalf("validation config %+v, want v0=0.2 vth=0.025", cfg)
	}
	cold := p.ColdBeamConfig(1)
	if cold.V0 != 0.4 || cold.Vth != 0 {
		t.Fatalf("cold-beam config %+v, want v0=0.4 vth=0", cold)
	}
}

func TestPaperTable1Reference(t *testing.T) {
	// Sanity on the hard-coded paper numbers.
	if PaperTable1["MLP/MAE/I"] != 0.0019 || PaperTable1["CNN/Max/II"] != 0.073 {
		t.Fatal("paper reference values corrupted")
	}
	if PaperMaxField != 0.1 {
		t.Fatal("paper field scale corrupted")
	}
}
