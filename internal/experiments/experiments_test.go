package experiments

import (
	"math"
	"strings"
	"testing"

	"dlpic/internal/sweep"
)

// tinyPipeline is shared across tests (built once; ~seconds).
var tinyPipe *Pipeline

func getPipeline(t *testing.T) *Pipeline {
	t.Helper()
	if tinyPipe != nil {
		return tinyPipe
	}
	p, err := New(Options{Tiny: true, Seed: 7})
	if err != nil {
		t.Fatalf("tiny pipeline: %v", err)
	}
	tinyPipe = p
	return p
}

func TestPipelineConstruction(t *testing.T) {
	p := getPipeline(t)
	if p.Train.N() == 0 || p.Val.N() == 0 || p.TestI.N() == 0 {
		t.Fatalf("empty partitions: %d/%d/%d", p.Train.N(), p.Val.N(), p.TestI.N())
	}
	if p.MLP == nil || p.CNN == nil {
		t.Fatal("solvers not trained")
	}
	if !p.Train.Normalized {
		t.Fatal("corpus not normalized")
	}
	// Training improved the loss.
	h := p.MLPHistory
	if len(h.Epochs) == 0 || h.Final().TrainLoss >= h.Epochs[0].TrainLoss {
		t.Fatalf("MLP training did not improve: %+v", h.Epochs)
	}
}

func TestTable1Runs(t *testing.T) {
	p := getPipeline(t)
	res, err := p.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if !res.HaveCNN {
		t.Fatal("CNN missing from Table 1")
	}
	if res.SetIISamples == 0 {
		t.Fatal("empty test set II")
	}
	// At tiny scale the errors are larger than the paper's but must stay
	// far below the field scale for the table to be meaningful.
	if res.MLPSetI.MAE <= 0 || res.MLPSetI.MAE > res.MaxFieldInCorpus {
		t.Fatalf("MLP Set I MAE %v implausible (field scale %v)", res.MLPSetI.MAE, res.MaxFieldInCorpus)
	}
	if res.MaxFieldInCorpus <= 0 {
		t.Fatal("field scale not measured")
	}
	rows := res.Rows()
	if len(rows) != 9 {
		t.Fatalf("row count %d, want 9 (header + 8 metrics)", len(rows))
	}
	joined := ""
	for _, r := range rows {
		joined += strings.Join(r, " ") + "\n"
	}
	if !strings.Contains(joined, "MLP") || !strings.Contains(joined, "CNN") {
		t.Fatalf("rows missing architectures: %s", joined)
	}
}

func TestFig4Runs(t *testing.T) {
	p := getPipeline(t)
	res, err := p.Fig4(60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traditional.Rec.Len() != 60 || res.DL.Rec.Len() != 60 {
		t.Fatal("missing samples")
	}
	if math.Abs(res.TheoryGamma-1/math.Sqrt(8)) > 1e-3 {
		t.Fatalf("theory gamma %v, want ~0.354", res.TheoryGamma)
	}
	if res.WarmGamma <= 0 || res.WarmGamma > res.TheoryGamma {
		t.Fatalf("warm gamma %v out of range (cold %v)", res.WarmGamma, res.TheoryGamma)
	}
	if len(res.DL.FinalX) == 0 || len(res.DL.FinalV) == 0 {
		t.Fatal("missing phase-space snapshot")
	}
}

func TestFig6Runs(t *testing.T) {
	p := getPipeline(t)
	res, err := p.Fig6(40)
	if err != nil {
		t.Fatal(err)
	}
	// Cold beams: starting spread is tiny (only the de-stagger half-kick
	// against the loading-noise field perturbs the exact +-v0 loading).
	if res.Traditional.VelocitySpreadStart > 0.01 {
		t.Fatalf("cold beam started warm: %v", res.Traditional.VelocitySpreadStart)
	}
	if res.Traditional.Rec.Len() != 40 || res.DL.Rec.Len() != 40 {
		t.Fatal("missing samples")
	}
}

func TestOracleRunMatchesTheory(t *testing.T) {
	p := getPipeline(t)
	res, err := p.OracleRun(150)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FitOK {
		t.Skip("noise-seeded tiny run produced no clean growth window")
	}
	want := 1 / math.Sqrt(8)
	if math.Abs(res.Growth.Gamma-want)/want > 0.35 {
		t.Fatalf("oracle growth %v too far from theory %v", res.Growth.Gamma, want)
	}
}

func TestValidationConfigUsesUnseenParameters(t *testing.T) {
	p := getPipeline(t)
	cfg := p.ValidationConfig(1)
	if cfg.V0 != 0.2 || cfg.Vth != 0.025 {
		t.Fatalf("validation config %+v, want v0=0.2 vth=0.025", cfg)
	}
	cold := p.ColdBeamConfig(1)
	if cold.V0 != 0.4 || cold.Vth != 0 {
		t.Fatalf("cold-beam config %+v, want v0=0.4 vth=0", cold)
	}
}

func TestPaperTable1Reference(t *testing.T) {
	// Sanity on the hard-coded paper numbers.
	if PaperTable1["MLP/MAE/I"] != 0.0019 || PaperTable1["CNN/Max/II"] != 0.073 {
		t.Fatal("paper reference values corrupted")
	}
	if PaperMaxField != 0.1 {
		t.Fatal("paper field scale corrupted")
	}
}

func TestResolveMethodNames(t *testing.T) {
	names, needMLP, needCNN, err := ResolveMethodNames("traditional, mlp,cnn")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != MethodTraditional || names[1] != MethodMLP || names[2] != MethodCNN {
		t.Fatalf("resolved %v", names)
	}
	if !needMLP || !needCNN {
		t.Fatalf("needMLP=%v needCNN=%v", needMLP, needCNN)
	}
	if _, needMLP, needCNN, err = ResolveMethodNames("traditional,oracle"); err != nil || needMLP || needCNN {
		t.Fatalf("model-free resolve: %v %v %v", err, needMLP, needCNN)
	}
	if _, _, _, err := ResolveMethodNames("nope"); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, _, _, err := ResolveMethodNames("mlp,mlp"); err == nil {
		t.Fatal("duplicate method accepted")
	}
	if _, _, _, err := ResolveMethodNames(" , "); err == nil {
		t.Fatal("empty list accepted")
	}
}

// TestMethodsModelFreeWithoutPipeline: traditional and oracle resolve
// with a nil pipeline, and the oracle factory builds a working method.
func TestMethodsModelFreeWithoutPipeline(t *testing.T) {
	specs, cleanup, err := Methods(nil, []string{MethodTraditional, MethodOracle}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if len(specs) != 2 || specs[0].Name != MethodTraditional || specs[1].Name != MethodOracle {
		t.Fatalf("specs %+v", specs)
	}
	if specs[0].Factory != nil || specs[0].Batcher != nil {
		t.Fatal("traditional spec must be the zero method")
	}
	sc := sweep.Scenario{Name: "s", Cfg: BaseConfig(false), Steps: 3}
	sc.Cfg.ParticlesPerCell = 20
	m, err := specs[1].Factory(sc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "dl-oracle" {
		t.Fatalf("oracle factory built %q", m.Name())
	}
	// DL methods without a pipeline provider are a hard error.
	if _, _, err := Methods(nil, []string{MethodMLP}, false, 0); err == nil {
		t.Fatal("mlp resolved without a pipeline provider")
	}
}

// TestMethodsDLFromPipeline: the DL registry entries wrap the trained
// solvers, per-call and batched, and a tiny multi-method campaign runs
// bit-identically on both backends.
func TestMethodsDLFromPipeline(t *testing.T) {
	p := getPipeline(t)
	sc := sweep.Grid(p.Cfg, []float64{0.2}, []float64{0.01}, 1, 4, 13)
	run := func(batched bool) []sweep.Result {
		specs, cleanup, err := Methods(FixedPipeline(p), []string{MethodTraditional, MethodMLP, MethodCNN}, batched, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer cleanup()
		results := sweep.Run(sc, sweep.Options{Workers: 2, Methods: specs, SkipFit: true})
		if err := sweep.FirstError(results); err != nil {
			t.Fatal(err)
		}
		return results
	}
	perCall := run(false)
	batched := run(true)
	if len(perCall) != 3 || len(batched) != 3 {
		t.Fatalf("cell counts %d/%d, want 3", len(perCall), len(batched))
	}
	for c := range perCall {
		if perCall[c].Method != batched[c].Method {
			t.Fatalf("cell %d method %q vs %q", c, perCall[c].Method, batched[c].Method)
		}
		for k := range perCall[c].Rec.Samples {
			if perCall[c].Rec.Samples[k] != batched[c].Rec.Samples[k] {
				t.Fatalf("cell %d (%s) sample %d: batched backend diverged", c, perCall[c].Method, k)
			}
		}
	}
}

// TestInference32ObservableDrift is the observable-level half of the
// float32 accuracy harness (nn.MeasureDrift32 is the per-element half):
// an MLP two-stream run on the float32 path must reproduce the float64
// run's physics — fitted growth rate and energy variation — within
// loose tolerances, while the per-call and batched float32 backends
// agree with each other bit for bit (the same batch-invariance property
// the float64 A/B scan pins).
func TestInference32ObservableDrift(t *testing.T) {
	p := getPipeline(t)
	sc := sweep.Grid(p.Cfg, []float64{0.2}, []float64{0.025}, 1, 80, 7)
	run := func(mc MethodConfig) sweep.Result {
		specs, cleanup, err := MethodsWith(FixedPipeline(p), []string{MethodMLP}, mc)
		if err != nil {
			t.Fatal(err)
		}
		defer cleanup()
		results := sweep.Run(sc, sweep.Options{Methods: specs, SkipFit: true})
		if err := sweep.FirstError(results); err != nil {
			t.Fatal(err)
		}
		return results[0]
	}
	r64 := run(MethodConfig{})
	r32 := run(MethodConfig{Inference32: true})
	b32 := run(MethodConfig{Inference32: true, Batched: true})
	for k := range r32.Rec.Samples {
		if r32.Rec.Samples[k] != b32.Rec.Samples[k] {
			t.Fatalf("sample %d: batched float32 diverged from per-call float32", k)
		}
	}
	// The instability amplifies rounding differences exponentially, so
	// the per-sample series drift; the fitted observables must not.
	if g64, g32 := r64.Growth.Gamma, r32.Growth.Gamma; r64.FitOK {
		if !r32.FitOK {
			t.Fatal("float64 run fit a growth window, float32 did not")
		}
		if rel := math.Abs(g32-g64) / math.Abs(g64); rel > 0.1 {
			t.Errorf("fitted gamma drift %.1f%% (f64 %v, f32 %v)", 100*rel, g64, g32)
		}
	}
	if d := math.Abs(r32.EnergyVariation - r64.EnergyVariation); d > 0.02 {
		t.Errorf("energy variation drift %v (f64 %v, f32 %v)", d, r64.EnergyVariation, r32.EnergyVariation)
	}
}
