package mover

import (
	"math"
	"testing"

	"dlpic/internal/grid"
	"dlpic/internal/rng"
)

func TestKickUpdatesVelocities(t *testing.T) {
	v := []float64{1, 2, 3}
	ep := []float64{0.5, -0.5, 0}
	qm, dt := -1.0, 0.2
	Kick(v, ep, qm, dt)
	want := []float64{1 - 0.1, 2 + 0.1, 3}
	for i := range v {
		if math.Abs(v[i]-want[i]) > 1e-15 {
			t.Fatalf("v[%d] = %v, want %v", i, v[i], want[i])
		}
	}
}

func TestKickDiagnosticSums(t *testing.T) {
	v := []float64{1, -1}
	ep := []float64{2, 2}
	res := Kick(v, ep, 1.0, 0.5) // dv = 1 for both
	// vOld*vNew: 1*2 + (-1)*0 = 2; vMid: (1+2)/2 + (-1+0)/2 = 1.
	if math.Abs(res.VProdSum-2) > 1e-15 {
		t.Errorf("VProdSum = %v, want 2", res.VProdSum)
	}
	if math.Abs(res.VMidSum-1) > 1e-15 {
		t.Errorf("VMidSum = %v, want 1", res.VMidSum)
	}
}

func TestKickDeterministicOnLargeArrays(t *testing.T) {
	r := rng.New(1)
	n := 300000
	v1 := make([]float64, n)
	ep := make([]float64, n)
	for i := range v1 {
		v1[i] = r.NormFloat64()
		ep[i] = r.NormFloat64()
	}
	v2 := append([]float64(nil), v1...)
	r1 := Kick(v1, ep, -1, 0.2)
	r2 := Kick(v2, ep, -1, 0.2)
	if r1 != r2 {
		t.Fatalf("non-deterministic kick sums: %+v vs %+v", r1, r2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("velocity mismatch at %d", i)
		}
	}
}

func TestKickHalfTwiceEqualsKick(t *testing.T) {
	r := rng.New(2)
	n := 1000
	v1 := make([]float64, n)
	ep := make([]float64, n)
	for i := range v1 {
		v1[i] = r.NormFloat64()
		ep[i] = r.NormFloat64()
	}
	v2 := append([]float64(nil), v1...)
	Kick(v1, ep, -1, 0.2)
	KickHalf(v2, ep, -1, 0.2)
	KickHalf(v2, ep, -1, 0.2)
	for i := range v1 {
		if math.Abs(v1[i]-v2[i]) > 1e-14 {
			t.Fatalf("mismatch at %d: %v vs %v", i, v1[i], v2[i])
		}
	}
}

func TestDriftWrapsPeriodically(t *testing.T) {
	g := grid.MustNew(8, 1.0)
	x := []float64{0.95, 0.05, 0.5}
	v := []float64{1.0, -1.0, 0.0}
	Drift(x, v, 0.1, g)
	want := []float64{0.05, 0.95, 0.5}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestDriftLargeExcursion(t *testing.T) {
	g := grid.MustNew(8, 1.0)
	x := []float64{0.5}
	v := []float64{37.25} // many periods in one step
	Drift(x, v, 1.0, g)
	if x[0] < 0 || x[0] >= 1 {
		t.Fatalf("x = %v outside domain", x[0])
	}
	if math.Abs(x[0]-0.75) > 1e-9 {
		t.Fatalf("x = %v, want 0.75", x[0])
	}
}

// Leapfrog is time-reversible: kick+drift then drift-back+kick-back
// returns the exact initial state (up to rounding).
func TestLeapfrogReversibility(t *testing.T) {
	g := grid.MustNew(16, 2.0)
	r := rng.New(3)
	n := 500
	x := make([]float64, n)
	v := make([]float64, n)
	ep := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() * g.Length()
		v[i] = 0.1 * r.NormFloat64()
		ep[i] = r.NormFloat64()
	}
	x0 := append([]float64(nil), x...)
	v0 := append([]float64(nil), v...)
	qm, dt := -1.0, 0.2
	Kick(v, ep, qm, dt)
	Drift(x, v, dt, g)
	// Reverse.
	Drift(x, v, -dt, g)
	Kick(v, ep, qm, -dt)
	for i := range x {
		if math.Abs(x[i]-x0[i]) > 1e-12 || math.Abs(v[i]-v0[i]) > 1e-12 {
			t.Fatalf("irreversible at %d: dx=%v dv=%v", i, x[i]-x0[i], v[i]-v0[i])
		}
	}
}

// Leapfrog on a harmonic field E = -x (q/m = 1) conserves the leapfrog
// invariant and stays bounded over many periods.
func TestLeapfrogHarmonicStability(t *testing.T) {
	// Single particle, field evaluated analytically each step.
	x, v := 1.0, 0.0
	dt := 0.2
	// De-stagger: v at t = -dt/2.
	v -= 0.5 * dt * (-x)
	for step := 0; step < 10000; step++ {
		v += dt * (-x)
		x += dt * v
		if math.Abs(x) > 1.2 {
			t.Fatalf("orbit escaped at step %d: x=%v", step, x)
		}
	}
}

func TestBoris2VZeroFieldReducesToLeapfrog(t *testing.T) {
	g := grid.MustNew(16, 2.0)
	r := rng.New(4)
	n := 200
	x1 := make([]float64, n)
	vx1 := make([]float64, n)
	vy := make([]float64, n)
	ex := make([]float64, n)
	for i := range x1 {
		x1[i] = r.Float64() * g.Length()
		vx1[i] = 0.1 * r.NormFloat64()
		ex[i] = r.NormFloat64()
	}
	x2 := append([]float64(nil), x1...)
	vx2 := append([]float64(nil), vx1...)
	qm, dt := -1.0, 0.2
	Boris2V(x1, vx1, vy, ex, qm, dt, 0, g)
	Kick(vx2, ex, qm, dt)
	Drift(x2, vx2, dt, g)
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-13 || math.Abs(vx1[i]-vx2[i]) > 1e-13 {
			t.Fatalf("Boris(B=0) != leapfrog at %d", i)
		}
	}
	for i, v := range vy {
		if v != 0 {
			t.Fatalf("vy[%d] = %v, want 0", i, v)
		}
	}
}

// Pure magnetic rotation preserves speed exactly (Boris property).
func TestBoris2VRotationPreservesSpeed(t *testing.T) {
	g := grid.MustNew(16, 10.0)
	x := []float64{5.0}
	vx := []float64{0.3}
	vy := []float64{0.4}
	ex := []float64{0}
	speed0 := math.Hypot(vx[0], vy[0])
	for step := 0; step < 1000; step++ {
		Boris2V(x, vx, vy, ex, -1.0, 0.1, 2.5, g)
		if s := math.Hypot(vx[0], vy[0]); math.Abs(s-speed0) > 1e-12 {
			t.Fatalf("speed drifted at step %d: %v vs %v", step, s, speed0)
		}
	}
}

// Boris gyration frequency matches omega_c = |q/m| B to second order.
func TestBoris2VGyroFrequency(t *testing.T) {
	g := grid.MustNew(16, 1000.0)
	bz := 1.0
	qm := -1.0
	dt := 0.01
	x := []float64{500}
	vx := []float64{1}
	vy := []float64{0}
	ex := []float64{0}
	// Advance one full analytic gyro-period; vx should return near 1.
	steps := int(2 * math.Pi / (math.Abs(qm*bz) * dt))
	for s := 0; s < steps; s++ {
		Boris2V(x, vx, vy, ex, qm, dt, bz, g)
	}
	if math.Abs(vx[0]-1) > 5e-3 || math.Abs(vy[0]) > 5e-2 {
		t.Fatalf("after one period: vx=%v vy=%v, want ~(1,0)", vx[0], vy[0])
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	g := grid.MustNew(8, 1.0)
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	assertPanics("Kick", func() { Kick(make([]float64, 2), make([]float64, 3), 1, 1) })
	assertPanics("KickHalf", func() { KickHalf(make([]float64, 2), make([]float64, 3), 1, 1) })
	assertPanics("Drift", func() { Drift(make([]float64, 2), make([]float64, 3), 1, g) })
	assertPanics("Boris2V", func() {
		Boris2V(make([]float64, 2), make([]float64, 2), make([]float64, 2), make([]float64, 3), 1, 1, 0, g)
	})
}

func BenchmarkKick64k(b *testing.B) {
	r := rng.New(1)
	n := 64000
	v := make([]float64, n)
	ep := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
		ep[i] = r.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Kick(v, ep, -1, 0.2)
	}
}

func BenchmarkDrift64k(b *testing.B) {
	g := grid.MustNew(64, 2*math.Pi/3.06)
	r := rng.New(1)
	n := 64000
	x := make([]float64, n)
	v := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() * g.Length()
		v[i] = 0.2 * r.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Drift(x, v, 0.2, g)
	}
}
