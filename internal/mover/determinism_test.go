package mover

import (
	"runtime"
	"testing"

	"dlpic/internal/rng"
)

// Kick mutates velocities element-wise (order-independent) but also
// accumulates the time-centered energy/momentum sums; both must be
// bit-identical at every GOMAXPROCS.
func TestKickBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	const n = 60000
	r := rng.New(3)
	v0 := make([]float64, n)
	ep := make([]float64, n)
	for i := range v0 {
		v0[i] = 0.2 * r.NormFloat64()
		ep[i] = r.NormFloat64()
	}
	run := func(procs int) ([]float64, KickResult) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		v := append([]float64(nil), v0...)
		res := Kick(v, ep, -1, 0.2)
		return v, res
	}
	refV, refRes := run(1)
	for _, procs := range []int{2, 4, 8} {
		v, res := run(procs)
		if res != refRes {
			t.Fatalf("GOMAXPROCS=%d: sums %+v != serial %+v", procs, res, refRes)
		}
		for i := range v {
			if v[i] != refV[i] {
				t.Fatalf("GOMAXPROCS=%d: v[%d] = %v != serial %v", procs, i, v[i], refV[i])
			}
		}
	}
}
