// Package mover implements the particle pushers of the PIC cycle
// (paper Eqs. 1-2): the explicit leapfrog scheme used throughout the
// experiments, and a Boris rotation pusher provided for the
// electromagnetic extension path (it degenerates exactly to leapfrog at
// B = 0, which the tests verify).
//
// The leapfrog scheme staggers velocities half a step behind positions:
//
//	v^{n+1/2} = v^{n-1/2} + (q/m) E^n(x^n) dt
//	x^{n+1}   = x^n + v^{n+1/2} dt
//
// Kick returns the time-centered kinetic-energy and momentum sums
// (using both half-step velocities), which is the standard second-order
// energy diagnostic for leapfrog PIC.
package mover

import (
	"dlpic/internal/grid"
	"dlpic/internal/parallel"
)

// KickResult carries the time-centered diagnostic sums accumulated
// during a velocity kick.
type KickResult struct {
	// VProdSum is sum_p v_old * v_new; (m/2)*VProdSum is the
	// time-centered kinetic energy at the field time level.
	VProdSum float64
	// VMidSum is sum_p (v_old + v_new)/2; m*VMidSum is the time-centered
	// momentum.
	VMidSum float64
}

// Kick advances velocities by a full step, v += qm * ep * dt, where ep is
// the electric field gathered at each particle. It returns the
// time-centered diagnostic sums. The reduction uses the deterministic
// chunked primitives, so the sums are bit-identical at every GOMAXPROCS.
func Kick(v, ep []float64, qm, dt float64) KickResult {
	if len(v) != len(ep) {
		panic("mover: Kick length mismatch")
	}
	var sums [2]float64
	parallel.ReduceSums(len(v), sums[:], func(partial []float64, start, end int) {
		var ps, ms float64
		for i := start; i < end; i++ {
			vOld := v[i]
			vNew := vOld + qm*ep[i]*dt
			v[i] = vNew
			ps += vOld * vNew
			ms += 0.5 * (vOld + vNew)
		}
		partial[0] += ps
		partial[1] += ms
	})
	return KickResult{VProdSum: sums[0], VMidSum: sums[1]}
}

// KickHalf advances velocities by half a step (used to de-stagger the
// leapfrog at initialization: v^{-1/2} = v^0 - qm E^0 dt/2 with dt < 0,
// and to re-center velocities for diagnostics).
func KickHalf(v, ep []float64, qm, dt float64) {
	if len(v) != len(ep) {
		panic("mover: KickHalf length mismatch")
	}
	h := 0.5 * qm * dt
	parallel.For(len(v), func(start, end int) {
		for i := start; i < end; i++ {
			v[i] += h * ep[i]
		}
	})
}

// Drift advances positions by a full step, x += v*dt, wrapping into the
// periodic domain of g.
func Drift(x, v []float64, dt float64, g *grid.Grid) {
	if len(x) != len(v) {
		panic("mover: Drift length mismatch")
	}
	l := g.Length()
	parallel.For(len(x), func(start, end int) {
		for i := start; i < end; i++ {
			xn := x[i] + v[i]*dt
			// Fast wrap for the common one-period overshoot, falling back
			// to the general wrap for large excursions.
			if xn >= l {
				xn -= l
				if xn >= l {
					xn = g.Wrap(xn)
				}
			} else if xn < 0 {
				xn += l
				if xn < 0 {
					xn = g.Wrap(xn)
				}
			}
			x[i] = xn
		}
	})
}

// Boris2V advances a 1D2V particle population (positions x, velocity
// components vx, vy) under electric field ex at the particles and a
// uniform perpendicular magnetic field bz, using the Boris scheme:
// half electric kick, magnetic rotation, half electric kick, then drift
// in x. At bz == 0 it is algebraically identical to leapfrog Kick+Drift.
func Boris2V(x, vx, vy, ex []float64, qm, dt, bz float64, g *grid.Grid) {
	if len(x) != len(vx) || len(vx) != len(vy) || len(vx) != len(ex) {
		panic("mover: Boris2V length mismatch")
	}
	h := 0.5 * qm * dt
	t := h * bz // rotation tangent
	s := 2 * t / (1 + t*t)
	l := g.Length()
	parallel.For(len(x), func(start, end int) {
		for i := start; i < end; i++ {
			// Half electric kick (E is along x only in 1D electrostatics).
			vmx := vx[i] + h*ex[i]
			vmy := vy[i]
			// Rotation: v' = vm + vm x t; v+ = vm + v' x s (2D reduction).
			vpx := vmx + vmy*t
			vpy := vmy - vmx*t
			vplusX := vmx + vpy*s
			vplusY := vmy - vpx*s
			// Second half electric kick.
			vx[i] = vplusX + h*ex[i]
			vy[i] = vplusY
			// Drift.
			xn := x[i] + vx[i]*dt
			if xn >= l {
				xn -= l
				if xn >= l {
					xn = g.Wrap(xn)
				}
			} else if xn < 0 {
				xn += l
				if xn < 0 {
					xn = g.Wrap(xn)
				}
			}
			x[i] = xn
		}
	})
}
