package pic

import (
	"bytes"
	"testing"

	"dlpic/internal/diag"
)

// The checkpoint contract: (run A, checkpoint, run B) and
// (restore, run B) produce bit-identical trajectories.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	cfg := fastConfig()
	sim, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(50, nil, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Continue the original.
	var recA diag.Recorder
	if err := sim.Run(50, &recA, nil); err != nil {
		t.Fatal(err)
	}
	// Restore and continue.
	restored, err := LoadCheckpoint(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.StepCount() != 50 {
		t.Fatalf("restored step count %d, want 50", restored.StepCount())
	}
	var recB diag.Recorder
	if err := restored.Run(50, &recB, nil); err != nil {
		t.Fatal(err)
	}
	if recA.Len() != recB.Len() {
		t.Fatalf("sample counts differ: %d vs %d", recA.Len(), recB.Len())
	}
	for i := range recA.Samples {
		a, b := recA.Samples[i], recB.Samples[i]
		if a != b {
			t.Fatalf("trajectories diverged at sample %d:\n  original %+v\n  restored %+v", i, a, b)
		}
	}
	// Particle state identical too.
	for i := range sim.P.X {
		if sim.P.X[i] != restored.P.X[i] || sim.P.V[i] != restored.P.V[i] {
			t.Fatalf("particle %d differs after resume", i)
		}
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	cfg := fastConfig()
	sim, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(10, nil, nil); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ckpt.gob"
	if err := sim.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadCheckpointFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Time() != sim.Time() {
		t.Fatalf("time %v vs %v", restored.Time(), sim.Time())
	}
	if _, err := LoadCheckpointFile(path+".missing", nil); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestLoadCheckpointGarbage(t *testing.T) {
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("junk")), nil); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestLoadCheckpointCorruptFields(t *testing.T) {
	cfg := fastConfig()
	sim, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate the payload: decoding must fail, not panic.
	data := buf.Bytes()
	if _, err := LoadCheckpoint(bytes.NewReader(data[:len(data)/2]), nil); err == nil {
		t.Fatal("truncated checkpoint should fail")
	}
}

// TestConfigKeyDeterministicAndSensitive pins the fingerprint campaign
// journals key on: stable for equal configs, different for any changed
// field (including fields moving to/from their zero value).
func TestConfigKeyDeterministicAndSensitive(t *testing.T) {
	cfg := Default()
	k1, err := ConfigKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ConfigKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 || len(k1) != 16 {
		t.Fatalf("fingerprint unstable or malformed: %q vs %q", k1, k2)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Seed++ },
		func(c *Config) { c.V0 = 0.123 },
		func(c *Config) { c.Vth = 0 },
		func(c *Config) { c.Cells = 128 },
		func(c *Config) { c.EnergyConserving = true },
		func(c *Config) { c.Solver = "cg" },
	}
	for i, mutate := range mutations {
		c := Default()
		mutate(&c)
		k, err := ConfigKey(c)
		if err != nil {
			t.Fatal(err)
		}
		if k == k1 {
			t.Fatalf("mutation %d did not change the fingerprint", i)
		}
	}
}
