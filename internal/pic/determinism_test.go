package pic

import (
	"runtime"
	"testing"

	"dlpic/internal/diag"
)

// A whole simulation — gather, kick, drift, deposit, Poisson solve —
// must evolve bit-identically at every GOMAXPROCS, because every
// reduction in the hot path goes through the deterministic chunked
// primitives. This is the end-to-end guarantee the per-kernel tests
// build up to.
func TestSimulationBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	cfg := Default()
	cfg.ParticlesPerCell = 160 // > chunk grain, so deposits really chunk
	cfg.Seed = 5
	const steps = 20
	run := func(procs int) (diag.Recorder, []float64, []float64) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		sim, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		var rec diag.Recorder
		if err := sim.Run(steps, &rec, nil); err != nil {
			t.Fatal(err)
		}
		return rec, append([]float64(nil), sim.P.X...), append([]float64(nil), sim.P.V...)
	}
	refRec, refX, refV := run(1)
	for _, procs := range []int{2, 8} {
		rec, x, v := run(procs)
		for i := range rec.Samples {
			if rec.Samples[i] != refRec.Samples[i] {
				t.Fatalf("GOMAXPROCS=%d: sample %d %+v != serial %+v",
					procs, i, rec.Samples[i], refRec.Samples[i])
			}
		}
		for i := range x {
			if x[i] != refX[i] || v[i] != refV[i] {
				t.Fatalf("GOMAXPROCS=%d: particle %d (%v,%v) != serial (%v,%v)",
					procs, i, x[i], v[i], refX[i], refV[i])
			}
		}
	}
}

// The energy-conserving gather variant shares the same guarantee.
func TestEnergyConservingGatherDeterministic(t *testing.T) {
	cfg := Default()
	cfg.ParticlesPerCell = 120
	cfg.EnergyConserving = true
	run := func(procs int) diag.Recorder {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		sim, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		var rec diag.Recorder
		if err := sim.Run(10, &rec, nil); err != nil {
			t.Fatal(err)
		}
		return rec
	}
	ref := run(1)
	got := run(8)
	for i := range got.Samples {
		if got.Samples[i] != ref.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, got.Samples[i], ref.Samples[i])
		}
	}
}
