// Package pic implements the traditional explicit electrostatic
// Particle-in-Cell method of the paper's §II (Fig. 1) on a 1D periodic
// domain, with the field-solver stage factored behind the FieldMethod
// interface so the DL-based method of §III (internal/core) can replace
// it while sharing the interpolation, mover and diagnostics verbatim.
//
// The computational cycle per step is:
//
//  1. gather: interpolate E from the grid to particle positions,
//  2. push: leapfrog kick (v) and drift (x),
//  3. field: recompute the grid E from the new particle state —
//     deposit rho and solve Poisson for the traditional method, or
//     bin phase space and run the neural network for the DL method.
//
// Normalization (paper §III): dimensionless units with eps0 = 1 and
// plasma frequency Wp; the electron charge-to-mass ratio is QOverM = -1
// ("q/m equal to one" in magnitude). The macro-particle charge follows
// from wp^2 = (n0 q / eps0)(q/m):
//
//	q_macro = -Wp^2 * eps0 * L / (QOverM<0 ? N : -N),  m_macro = q/(q/m),
//
// and a motionless uniform ion background of density +Wp^2*eps0
// neutralizes the box.
package pic

import (
	"errors"
	"fmt"
	"math"

	"dlpic/internal/diag"
	"dlpic/internal/fft"
	"dlpic/internal/grid"
	"dlpic/internal/interp"
	"dlpic/internal/mover"
	"dlpic/internal/parallel"
	"dlpic/internal/particle"
	"dlpic/internal/poisson"
	"dlpic/internal/rng"
)

// Config collects every knob of a two-stream PIC run. The zero value is
// not runnable; call Default() for the paper's §III configuration and
// override fields as needed.
type Config struct {
	// Cells is the number of grid cells (paper: 64).
	Cells int
	// Length is the box size L (paper: 2*pi/3.06).
	Length float64
	// Dt is the time step (paper: 0.2).
	Dt float64
	// ParticlesPerCell sets the electron count N = Cells * ParticlesPerCell
	// (paper: 1000).
	ParticlesPerCell int
	// V0 and Vth are the beam drift and thermal speeds.
	V0, Vth float64
	// PerturbAmp seeds mode PerturbMode with a position displacement; 0
	// means noise-seeded (as in the paper).
	PerturbAmp  float64
	PerturbMode int
	// QuietStart loads deterministic uniform positions per beam.
	QuietStart bool
	// Scheme selects the particle-grid interpolation (paper: NGP for the
	// phase-space binning, CIC default here for the field loop).
	Scheme interp.Scheme
	// Solver names the Poisson solver: "spectral" (default),
	// "spectral-fd", "cg" or "sor".
	Solver string
	// Eps0 is the vacuum permittivity (1 in dimensionless units).
	Eps0 float64
	// Wp is the plasma frequency (1 in dimensionless units).
	Wp float64
	// QOverM is the electron charge-to-mass ratio (-1 dimensionless).
	QOverM float64
	// DiagMode is the field Fourier mode monitored in diagnostics
	// (1 = the most-unstable mode of the paper's box).
	DiagMode int
	// Seed drives all randomness of the run.
	Seed uint64
	// EnergyConserving switches the gather to the energy-conserving
	// differencing (E averaged from potential differences on the two
	// faces of the particle's cell) instead of the momentum-conserving
	// centered-difference field. Extension beyond the paper.
	EnergyConserving bool
}

// Default returns the paper's §III configuration: 64 cells, 1000
// particles/cell, L = 2*pi/3.06, dt = 0.2, v0 = 0.2, CIC, spectral solve.
func Default() Config {
	return Config{
		Cells:            64,
		Length:           2 * math.Pi / 3.06,
		Dt:               0.2,
		ParticlesPerCell: 1000,
		V0:               0.2,
		Vth:              0.025,
		Scheme:           interp.CIC,
		Solver:           "spectral",
		Eps0:             1,
		Wp:               1,
		QOverM:           -1,
		DiagMode:         1,
		Seed:             1,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.Cells < 2:
		return fmt.Errorf("pic: Cells = %d, need >= 2", c.Cells)
	case !(c.Length > 0):
		return fmt.Errorf("pic: Length = %v, need > 0", c.Length)
	case !(c.Dt > 0):
		return fmt.Errorf("pic: Dt = %v, need > 0", c.Dt)
	case c.ParticlesPerCell < 1:
		return fmt.Errorf("pic: ParticlesPerCell = %d, need >= 1", c.ParticlesPerCell)
	case c.Vth < 0:
		return fmt.Errorf("pic: Vth = %v, need >= 0", c.Vth)
	case !c.Scheme.Valid():
		return fmt.Errorf("pic: invalid interpolation scheme %v", c.Scheme)
	case !(c.Eps0 > 0):
		return fmt.Errorf("pic: Eps0 = %v, need > 0", c.Eps0)
	case !(c.Wp > 0):
		return fmt.Errorf("pic: Wp = %v, need > 0", c.Wp)
	case c.QOverM == 0:
		return fmt.Errorf("pic: QOverM must be non-zero")
	case c.DiagMode < 0 || c.DiagMode > c.Cells/2:
		return fmt.Errorf("pic: DiagMode = %d outside [0,%d]", c.DiagMode, c.Cells/2)
	}
	if c.Dt*c.Wp >= 2 {
		return fmt.Errorf("pic: leapfrog unstable: Wp*Dt = %v >= 2", c.Dt*c.Wp)
	}
	return nil
}

// NumParticles returns the total electron macro-particle count.
func (c Config) NumParticles() int { return c.Cells * c.ParticlesPerCell }

// MacroCharge returns the per-macro-particle charge implied by the
// normalization (negative for electrons with QOverM < 0).
func (c Config) MacroCharge() float64 {
	n := float64(c.NumParticles())
	// wp^2 = (N q / L) * (q/m) / eps0  =>  q = wp^2 eps0 L / (N (q/m)).
	return c.Wp * c.Wp * c.Eps0 * c.Length / (n * c.QOverM)
}

// FieldMethod computes the grid electric field from the current particle
// state. Implementations must write g.N() values into e.
//
// Implementations may keep internal scratch buffers, so a FieldMethod
// instance must be owned by exactly one Simulation: sharing one across
// simulations that step concurrently (e.g. in a sweep pool) is a data
// race. Build a fresh method per simulation instead.
type FieldMethod interface {
	// ComputeField updates e from the simulation's particle state. The
	// simulation exposes its grid, particles and scratch arrays; the
	// traditional method also refreshes sim.Rho and sim.Phi.
	ComputeField(sim *Simulation, e []float64) error
	// Name identifies the method in logs and experiment tables.
	Name() string
}

// Simulation is a running PIC system: particles, fields and the pluggable
// field method, advanced with Step.
type Simulation struct {
	Cfg Config
	G   *grid.Grid
	P   *particle.Population

	// Grid fields, length Cells. Rho and Phi are refreshed only by field
	// methods that compute them (the traditional solve); E is always the
	// current field.
	Rho, Phi, E []float64

	// Ep is the per-particle gathered field (scratch, length N).
	Ep []float64

	// IonRho is the uniform neutralizing background density (+Wp^2*Eps0).
	IonRho float64

	method   FieldMethod
	plan     *fft.Plan
	stepN    int
	time     float64
	lastKick mover.KickResult
	rng      *rng.Source
}

// New builds a simulation with the given field method (nil selects the
// traditional deposit+Poisson method), loads the two-stream population
// and computes the initial self-consistent field, then de-staggers the
// leapfrog velocities by half a step.
func New(cfg Config, method FieldMethod) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := grid.New(cfg.Cells, cfg.Length)
	if err != nil {
		return nil, err
	}
	if method == nil {
		method, err = NewTraditionalField(cfg, g)
		if err != nil {
			return nil, err
		}
	}
	r := rng.New(cfg.Seed)
	q := cfg.MacroCharge()
	m := q / cfg.QOverM
	pop, err := particle.LoadTwoStream(particle.TwoStreamOpts{
		N: cfg.NumParticles(), L: cfg.Length,
		V0: cfg.V0, Vth: cfg.Vth,
		PerturbAmp: cfg.PerturbAmp, PerturbMode: cfg.PerturbMode,
		Quiet:  cfg.QuietStart,
		Charge: q, Mass: m,
	}, r)
	if err != nil {
		return nil, err
	}
	sim := &Simulation{
		Cfg:    cfg,
		G:      g,
		P:      pop,
		Rho:    make([]float64, cfg.Cells),
		Phi:    make([]float64, cfg.Cells),
		E:      make([]float64, cfg.Cells),
		Ep:     make([]float64, pop.N()),
		IonRho: cfg.Wp * cfg.Wp * cfg.Eps0,
		method: method,
		plan:   fft.MustPlan(cfg.Cells),
		rng:    r,
	}
	if err := sim.method.ComputeField(sim, sim.E); err != nil {
		return nil, fmt.Errorf("pic: initial field solve: %w", err)
	}
	// De-stagger: v^{-1/2} = v^0 - (q/m) E^0 dt / 2.
	sim.gather()
	mover.KickHalf(pop.V, sim.Ep, pop.QOverM, -cfg.Dt)
	return sim, nil
}

// Method returns the active field method.
func (s *Simulation) Method() FieldMethod { return s.method }

// Time returns the current simulation time (Step * Dt).
func (s *Simulation) Time() float64 { return s.time }

// StepCount returns the number of completed steps.
func (s *Simulation) StepCount() int { return s.stepN }

// gather interpolates the current grid field to the particles.
func (s *Simulation) gather() {
	if s.Cfg.EnergyConserving {
		s.gatherEnergyConserving()
		return
	}
	interp.Gather(s.Cfg.Scheme, s.G, s.E, s.P.X, s.Ep)
}

// gatherEnergyConserving evaluates the field at particles from potential
// differences across the particle's cell faces (the classic
// energy-conserving differencing of Birdsall & Langdon §10): with NGP
// weighting of E defined on faces, E_p = (phi[i] - phi[i+1]) / dx for
// the cell containing the particle.
func (s *Simulation) gatherEnergyConserving() {
	n := s.G.N()
	dx := s.G.Dx()
	parallel.For(len(s.P.X), func(start, end int) {
		for p := start; p < end; p++ {
			i := s.G.CellOf(s.P.X[p])
			ip := i + 1
			if ip == n {
				ip = 0
			}
			s.Ep[p] = (s.Phi[i] - s.Phi[ip]) / dx
		}
	})
}

// Step advances the system by one time step and returns the diagnostics
// sample for the time level at the *start* of the step (the level at
// which the current E field and time-centered kinetic energy coincide).
func (s *Simulation) Step() (diag.Sample, error) {
	cfg := s.Cfg
	// 1. Gather E^n at x^n.
	s.gather()
	// 2a. Kick v^{n-1/2} -> v^{n+1/2}, accumulating time-centered sums.
	kick := mover.Kick(s.P.V, s.Ep, s.P.QOverM, cfg.Dt)
	s.lastKick = kick
	sample := diag.Sample{
		Step:     s.stepN,
		Time:     s.time,
		Kinetic:  0.5 * s.P.Mass * kick.VProdSum,
		Field:    diag.FieldEnergy(s.G, s.E, cfg.Eps0),
		Momentum: s.P.Mass * kick.VMidSum,
		ModeAmp:  diag.ModeAmplitude(s.plan, s.E, cfg.DiagMode),
	}
	sample.Total = sample.Kinetic + sample.Field
	// 2b. Drift x^n -> x^{n+1}.
	mover.Drift(s.P.X, s.P.V, cfg.Dt, s.G)
	// 3. Field solve at the new positions.
	if err := s.method.ComputeField(s, s.E); err != nil {
		return sample, fmt.Errorf("pic: field solve at step %d: %w", s.stepN+1, err)
	}
	s.stepN++
	s.time += cfg.Dt
	return sample, nil
}

// Run advances n steps, recording diagnostics into rec (which may be
// nil). The optional callback is invoked after every step with the
// sample; returning a non-nil error aborts the run.
func (s *Simulation) Run(n int, rec *diag.Recorder, callback func(diag.Sample) error) error {
	if n < 0 {
		return errors.New("pic: negative step count")
	}
	for i := 0; i < n; i++ {
		sample, err := s.Step()
		if err != nil {
			return err
		}
		if rec != nil {
			rec.Add(sample)
		}
		if callback != nil {
			if err := callback(sample); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckFinite scans the particle and field state for NaN/Inf, returning a
// descriptive error if any is found. The DL-based field solver can in
// principle produce unbounded output on out-of-distribution inputs; the
// experiment harness calls this as a failure-injection guard.
func (s *Simulation) CheckFinite() error {
	for i, v := range s.E {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("pic: non-finite E[%d] = %v at step %d", i, v, s.stepN)
		}
	}
	for i := range s.P.X {
		if math.IsNaN(s.P.X[i]) || math.IsNaN(s.P.V[i]) ||
			math.IsInf(s.P.X[i], 0) || math.IsInf(s.P.V[i], 0) {
			return fmt.Errorf("pic: non-finite particle %d (x=%v v=%v) at step %d",
				i, s.P.X[i], s.P.V[i], s.stepN)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Traditional field method (deposit + Poisson)

// TraditionalField implements the paper's Fig. 1 field-solver stage:
// deposit the electron charge density with the configured interpolation
// scheme, add the neutralizing ion background, solve the Poisson
// equation for phi, and differentiate for E.
type TraditionalField struct {
	solver poisson.Solver
}

// NewTraditionalField builds the deposit+Poisson field method for cfg.
func NewTraditionalField(cfg Config, g *grid.Grid) (*TraditionalField, error) {
	var solver poisson.Solver
	switch cfg.Solver {
	case "", "spectral":
		solver = poisson.NewSpectral(g, cfg.Eps0)
	case "spectral-fd":
		solver = poisson.NewSpectralFD(g, cfg.Eps0)
	case "cg":
		solver = poisson.NewCG(g, cfg.Eps0, 0, 0)
	case "sor":
		var err error
		solver, err = poisson.NewSOR(g, cfg.Eps0, 1.7, 0, 0)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("pic: unknown Poisson solver %q", cfg.Solver)
	}
	return &TraditionalField{solver: solver}, nil
}

// Name implements FieldMethod.
func (t *TraditionalField) Name() string { return "traditional" }

// Solver exposes the underlying Poisson solver (for benchmarks).
func (t *TraditionalField) Solver() poisson.Solver { return t.solver }

// ComputeField implements FieldMethod.
func (t *TraditionalField) ComputeField(sim *Simulation, e []float64) error {
	interp.Deposit(sim.Cfg.Scheme, sim.G, sim.P.X, sim.P.Charge, sim.Rho)
	for i := range sim.Rho {
		sim.Rho[i] += sim.IonRho
	}
	if err := t.solver.Solve(sim.Phi, sim.Rho); err != nil {
		return err
	}
	poisson.EFromPhi(sim.G, e, sim.Phi)
	return nil
}
