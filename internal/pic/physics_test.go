package pic

import (
	"math"
	"testing"

	"dlpic/internal/theory"
)

// measureOscillationFrequency runs a simulation and measures the
// frequency of the signed field at one grid node by counting zero
// crossings with linear interpolation between samples.
func measureOscillationFrequency(t *testing.T, cfg Config, steps, node int) float64 {
	t.Helper()
	sim, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var times, values []float64
	for i := 0; i < steps; i++ {
		times = append(times, sim.Time())
		values = append(values, sim.E[node])
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Zero crossings with sub-sample interpolation.
	var crossings []float64
	for i := 1; i < len(values); i++ {
		if (values[i-1] < 0 && values[i] >= 0) || (values[i-1] > 0 && values[i] <= 0) {
			frac := values[i-1] / (values[i-1] - values[i])
			crossings = append(crossings, times[i-1]+frac*(times[i]-times[i-1]))
		}
	}
	if len(crossings) < 4 {
		t.Fatalf("only %d zero crossings; node %d may sit on a node of the standing wave", len(crossings), node)
	}
	// Average interval between consecutive crossings is half a period.
	halfPeriod := (crossings[len(crossings)-1] - crossings[0]) / float64(len(crossings)-1)
	return math.Pi / halfPeriod
}

// A cold plasma at rest oscillates at exactly the plasma frequency —
// the most fundamental validation of the field-particle coupling and
// the normalization (wp = 1).
func TestColdPlasmaOscillationFrequency(t *testing.T) {
	cfg := Default()
	cfg.V0 = 0 // both "beams" at rest: a single cold plasma
	cfg.Vth = 0
	cfg.ParticlesPerCell = 40
	cfg.QuietStart = true
	cfg.PerturbAmp = 1e-3 * cfg.Length
	cfg.PerturbMode = 1
	cfg.Dt = 0.1 // finer step for a cleaner frequency measurement
	omega := measureOscillationFrequency(t, cfg, 600, 5)
	if math.Abs(omega-cfg.Wp)/cfg.Wp > 0.02 {
		t.Fatalf("plasma frequency %v, want %v (2%%)", omega, cfg.Wp)
	}
}

// A warm plasma oscillates at the Bohm-Gross frequency
// omega^2 = wp^2 + 3 k^2 vth^2.
func TestBohmGrossDispersion(t *testing.T) {
	cfg := Default()
	cfg.V0 = 0
	cfg.Vth = 0.05
	cfg.ParticlesPerCell = 400 // enough particles to suppress noise
	cfg.QuietStart = true
	cfg.PerturbAmp = 2e-3 * cfg.Length
	cfg.PerturbMode = 1
	cfg.Dt = 0.1
	k := 2 * math.Pi / cfg.Length
	want := theory.BohmGross(k, cfg.Wp, cfg.Vth)
	omega := measureOscillationFrequency(t, cfg, 600, 5)
	if math.Abs(omega-want)/want > 0.03 {
		t.Fatalf("warm frequency %v, want Bohm-Gross %v (3%%)", omega, want)
	}
	// The shift itself must be resolved: omega is closer to Bohm-Gross
	// than to the cold wp.
	if math.Abs(omega-want) > math.Abs(omega-cfg.Wp) {
		t.Fatalf("thermal shift unresolved: omega %v, wp %v, Bohm-Gross %v", omega, cfg.Wp, want)
	}
}

// The leapfrog frequency error is second order in dt: halving dt must
// shrink the plasma-frequency error by about 4x.
func TestLeapfrogFrequencyConvergence(t *testing.T) {
	base := Default()
	base.V0 = 0
	base.Vth = 0
	base.ParticlesPerCell = 40
	base.QuietStart = true
	base.PerturbAmp = 1e-3 * base.Length
	base.PerturbMode = 1

	errAt := func(dt float64) float64 {
		cfg := base
		cfg.Dt = dt
		steps := int(60 / dt)
		omega := measureOscillationFrequency(t, cfg, steps, 5)
		return math.Abs(omega - cfg.Wp)
	}
	// The leapfrog dispersion error is O(dt^2) ~ wp^3 dt^2 / 24; the
	// zero-crossing measurement adds its own (partially cancelling)
	// interpolation error, so assert the robust facts: the error shrinks
	// with dt and is within the theoretical band at the coarse step.
	e1 := errAt(0.4)
	e2 := errAt(0.1)
	if e1 < 1e-6 {
		t.Skip("frequency error at the noise floor; cannot measure convergence")
	}
	if !(e2 < e1) {
		t.Fatalf("frequency error did not shrink with dt: e(0.4)=%v e(0.1)=%v", e1, e2)
	}
	// Theoretical leapfrog error at dt=0.4: wp^3 dt^2/24 ~ 6.7e-3.
	if e1 > 0.02 {
		t.Fatalf("coarse-step frequency error %v way above the leapfrog bound", e1)
	}
}
