package pic

import (
	"math"
	"testing"

	"dlpic/internal/diag"
	"dlpic/internal/interp"
	"dlpic/internal/theory"
)

// fastConfig is a cheap configuration for unit tests: quiet start, cold
// beams, seeded mode 1, few particles.
func fastConfig() Config {
	cfg := Default()
	cfg.ParticlesPerCell = 20
	cfg.Vth = 0
	cfg.QuietStart = true
	cfg.PerturbAmp = 1e-4 * cfg.Length
	cfg.PerturbMode = 1
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := Default()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []struct {
		name   string
		mutate func(*Config)
	}{
		{"cells", func(c *Config) { c.Cells = 1 }},
		{"length", func(c *Config) { c.Length = 0 }},
		{"dt", func(c *Config) { c.Dt = 0 }},
		{"ppc", func(c *Config) { c.ParticlesPerCell = 0 }},
		{"vth", func(c *Config) { c.Vth = -1 }},
		{"scheme", func(c *Config) { c.Scheme = interp.Scheme(42) }},
		{"eps0", func(c *Config) { c.Eps0 = 0 }},
		{"wp", func(c *Config) { c.Wp = -1 }},
		{"qoverm", func(c *Config) { c.QOverM = 0 }},
		{"diagmode", func(c *Config) { c.DiagMode = 999 }},
		{"cfl", func(c *Config) { c.Dt = 3; c.Wp = 1 }},
	}
	for _, m := range mutations {
		cfg := Default()
		m.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestMacroChargeNormalization(t *testing.T) {
	cfg := Default()
	q := cfg.MacroCharge()
	if q >= 0 {
		t.Fatalf("electron macro-charge %v should be negative", q)
	}
	// wp^2 = (N q / L) (q/m) / eps0 must hold.
	n := float64(cfg.NumParticles())
	wp2 := (n * q / cfg.Length) * cfg.QOverM / cfg.Eps0
	if math.Abs(wp2-cfg.Wp*cfg.Wp) > 1e-12 {
		t.Fatalf("normalization: wp^2 = %v, want %v", wp2, cfg.Wp*cfg.Wp)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := Default()
	cfg.Cells = 0
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("expected error for bad config")
	}
	cfg = Default()
	cfg.Solver = "multigrid"
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("expected error for unknown solver")
	}
}

func TestInitialChargeNeutrality(t *testing.T) {
	cfg := fastConfig()
	sim, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Total rho (electrons + background) integrates to ~0.
	if tot := sim.G.Integral(sim.Rho); math.Abs(tot) > 1e-9 {
		t.Fatalf("net charge %v, want ~0", tot)
	}
}

func TestQuietColdStartHasTinyInitialField(t *testing.T) {
	cfg := fastConfig()
	cfg.PerturbAmp = 0 // no seed: uniform quiet start is exactly neutral
	sim, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range sim.E {
		if math.Abs(e) > 1e-9 {
			t.Fatalf("E[%d] = %v, want ~0 for unperturbed quiet start", i, e)
		}
	}
}

func TestStepAdvancesTime(t *testing.T) {
	sim, err := New(fastConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s, err := sim.Step()
		if err != nil {
			t.Fatal(err)
		}
		if s.Step != i {
			t.Fatalf("sample step %d, want %d", s.Step, i)
		}
		if math.Abs(s.Time-float64(i)*sim.Cfg.Dt) > 1e-12 {
			t.Fatalf("sample time %v, want %v", s.Time, float64(i)*sim.Cfg.Dt)
		}
	}
	if sim.StepCount() != 5 {
		t.Fatalf("StepCount = %d", sim.StepCount())
	}
	if math.Abs(sim.Time()-1.0) > 1e-12 {
		t.Fatalf("Time = %v, want 1.0", sim.Time())
	}
}

func TestRunRecordsSamples(t *testing.T) {
	sim, err := New(fastConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	calls := 0
	if err := sim.Run(10, &rec, func(diag.Sample) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 10 || calls != 10 {
		t.Fatalf("rec=%d calls=%d, want 10/10", rec.Len(), calls)
	}
	if err := sim.Run(-1, nil, nil); err == nil {
		t.Fatal("negative step count should error")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []float64 {
		sim, err := New(fastConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		var rec diag.Recorder
		if err := sim.Run(20, &rec, nil); err != nil {
			t.Fatal(err)
		}
		tot, _ := rec.Series("total")
		return tot
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic run at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// The headline physics test: the seeded mode grows at the linear-theory
// rate gamma ~ wp/sqrt(8) for the paper's box (K = 0.612).
func TestTwoStreamGrowthRateMatchesTheory(t *testing.T) {
	cfg := fastConfig()
	cfg.ParticlesPerCell = 100
	sim, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	if err := sim.Run(150, &rec, nil); err != nil { // t = 30
		t.Fatal(err)
	}
	amps, _ := rec.Series("mode")
	times := rec.Times()
	t0, t1, err := diag.AutoGrowthWindow(times, amps, 0.01, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := diag.FitGrowthRate(times, amps, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	ts := theory.TwoStream{Wp: cfg.Wp, V0: cfg.V0}
	want := ts.GrowthRate(2 * math.Pi / cfg.Length)
	if math.Abs(fit.Gamma-want)/want > 0.15 {
		t.Fatalf("growth rate %v, theory %v (%.1f%% off), window [%v,%v] R2=%v",
			fit.Gamma, want, 100*math.Abs(fit.Gamma-want)/want, t0, t1, fit.R2)
	}
	if fit.R2 < 0.98 {
		t.Fatalf("noisy linear phase: R2 = %v", fit.R2)
	}
}

// Momentum conservation of the traditional method (paper Fig. 5, bottom):
// CIC + symmetric solve keeps total momentum at the loading level.
func TestTraditionalMomentumConservation(t *testing.T) {
	cfg := fastConfig()
	cfg.ParticlesPerCell = 50
	sim, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	if err := sim.Run(150, &rec, nil); err != nil {
		t.Fatal(err)
	}
	mom, _ := rec.Series("momentum")
	drift := math.Abs(diag.Drift(mom))
	// Scale: single-beam momentum magnitude.
	scale := sim.P.Mass * float64(sim.P.N()) / 2 * cfg.V0
	if drift/scale > 1e-6 {
		t.Fatalf("momentum drift %v (%.2e of beam scale %v)", drift, drift/scale, scale)
	}
}

// Energy variation stays bounded through the instability (paper reports
// ~2% for this setup; we allow 5% for the small test population).
func TestTraditionalEnergyBounded(t *testing.T) {
	cfg := fastConfig()
	cfg.ParticlesPerCell = 50
	sim, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	if err := sim.Run(200, &rec, nil); err != nil {
		t.Fatal(err)
	}
	tot, _ := rec.Series("total")
	if v := diag.MaxRelativeVariation(tot); v > 0.05 {
		t.Fatalf("total energy variation %.3f%% > 5%%", 100*v)
	}
}

// Energy exchange: during the linear phase the field energy grows at
// 2*gamma while kinetic energy pays for it; total stays ~flat. Checks
// that the kinetic and field series are anti-correlated around growth.
func TestEnergyExchangeDuringInstability(t *testing.T) {
	cfg := fastConfig()
	cfg.ParticlesPerCell = 50
	sim, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	if err := sim.Run(150, &rec, nil); err != nil {
		t.Fatal(err)
	}
	field, _ := rec.Series("field")
	kin, _ := rec.Series("kinetic")
	iPeak := 0
	for i, f := range field {
		if f > field[iPeak] {
			iPeak = i
		}
	}
	if field[iPeak] < 100*field[0] {
		t.Fatalf("field energy never grew: start %v peak %v", field[0], field[iPeak])
	}
	if !(kin[iPeak] < kin[0]) {
		t.Fatalf("kinetic energy did not decrease while field grew: %v -> %v", kin[0], kin[iPeak])
	}
}

// All Poisson solver backends produce the same physics.
func TestSolverBackendsAgree(t *testing.T) {
	growth := func(solver string) float64 {
		cfg := fastConfig()
		cfg.ParticlesPerCell = 30
		cfg.Solver = solver
		sim, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		var rec diag.Recorder
		if err := sim.Run(120, &rec, nil); err != nil {
			t.Fatal(err)
		}
		amps, _ := rec.Series("mode")
		times := rec.Times()
		t0, t1, err := diag.AutoGrowthWindow(times, amps, 0.01, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		fit, err := diag.FitGrowthRate(times, amps, t0, t1)
		if err != nil {
			t.Fatal(err)
		}
		return fit.Gamma
	}
	ref := growth("spectral")
	for _, s := range []string{"spectral-fd", "cg"} {
		if g := growth(s); math.Abs(g-ref)/ref > 0.05 {
			t.Errorf("solver %s growth %v vs spectral %v", s, g, ref)
		}
	}
}

// The interpolation schemes all reproduce the instability; higher order
// is smoother but the growth rate is scheme-robust.
func TestInterpolationSchemesAgree(t *testing.T) {
	growth := func(s interp.Scheme) float64 {
		cfg := fastConfig()
		cfg.ParticlesPerCell = 30
		cfg.Scheme = s
		sim, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		var rec diag.Recorder
		if err := sim.Run(120, &rec, nil); err != nil {
			t.Fatal(err)
		}
		amps, _ := rec.Series("mode")
		times := rec.Times()
		t0, t1, err := diag.AutoGrowthWindow(times, amps, 0.01, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		fit, err := diag.FitGrowthRate(times, amps, t0, t1)
		if err != nil {
			t.Fatal(err)
		}
		return fit.Gamma
	}
	ref := growth(interp.CIC)
	// NGP's zeroth-order weighting attenuates the field response more, so
	// its tolerance is wider; TSC is higher order and should track CIC.
	if g := growth(interp.NGP); math.Abs(g-ref)/ref > 0.25 {
		t.Errorf("scheme NGP growth %v vs CIC %v", g, ref)
	}
	if g := growth(interp.TSC); math.Abs(g-ref)/ref > 0.1 {
		t.Errorf("scheme TSC growth %v vs CIC %v", g, ref)
	}
}

// A stable configuration (v0 = 0.4, K > 1) must not develop the physical
// instability: mode 1 stays orders of magnitude below the unstable runs.
func TestStableBeamsNoLinearGrowth(t *testing.T) {
	cfg := fastConfig()
	cfg.V0 = 0.4
	cfg.ParticlesPerCell = 50
	sim, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	if err := sim.Run(100, &rec, nil); err != nil { // t = 20
		t.Fatal(err)
	}
	amps, _ := rec.Series("mode")
	peak := 0.0
	for _, a := range amps {
		if a > peak {
			peak = a
		}
	}
	// Unstable runs reach E1 ~ 0.05-0.1 by t=20 from this seed; the
	// stable run should stay far below.
	if peak > 1e-2 {
		t.Fatalf("stable beams grew to E1 = %v", peak)
	}
}

func TestEnergyConservingGather(t *testing.T) {
	cfg := fastConfig()
	cfg.ParticlesPerCell = 50
	cfg.EnergyConserving = true
	sim, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	if err := sim.Run(150, &rec, nil); err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	// The instability still develops and total energy stays bounded.
	amps, _ := rec.Series("mode")
	peak := 0.0
	for _, a := range amps {
		if a > peak {
			peak = a
		}
	}
	if peak < 1e-3 {
		t.Fatalf("energy-conserving run never grew: peak %v", peak)
	}
	tot, _ := rec.Series("total")
	if v := diag.MaxRelativeVariation(tot); v > 0.10 {
		t.Fatalf("energy variation %v too large", v)
	}
}

func TestCheckFinite(t *testing.T) {
	sim, err := New(fastConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckFinite(); err != nil {
		t.Fatalf("fresh simulation reported non-finite state: %v", err)
	}
	sim.E[3] = math.NaN()
	if err := sim.CheckFinite(); err == nil {
		t.Fatal("NaN field not detected")
	}
	sim.E[3] = 0
	sim.P.V[0] = math.Inf(1)
	if err := sim.CheckFinite(); err == nil {
		t.Fatal("Inf velocity not detected")
	}
}

func TestFieldMethodName(t *testing.T) {
	sim, err := New(fastConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Method().Name() != "traditional" {
		t.Fatalf("method name %q", sim.Method().Name())
	}
}
