package pic

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"os"

	"dlpic/internal/fft"
	"dlpic/internal/grid"
	"dlpic/internal/particle"
)

// Checkpointing serializes the complete dynamical state of a simulation
// (configuration, particles, fields, clock) so long runs can be split
// across processes. The field method is NOT part of the checkpoint — it
// is code plus (for the DL method) a separately persisted model bundle —
// so the caller supplies it again at restore time, exactly as at New.

type checkpointFile struct {
	Version      int
	Cfg          Config
	X, V         []float64
	Charge, Mass float64
	Rho, Phi, E  []float64
	StepN        int
	Time         float64
}

const checkpointVersion = 1

// init pins the process-global gob type ids of the types this package
// serializes by encoding zero values to io.Discard in fixed order at
// package init (the internal/nn checkpoint lesson: gob assigns ids at
// a type's first encode or decode, so without pinning, checkpoint
// bytes — and the ConfigKey fingerprints hashed from Config's gob
// encoding, which key campaign journals and bundle stores — would
// depend on what else the process (de)serialized first).
func init() {
	enc := gob.NewEncoder(io.Discard)
	_ = enc.Encode(Config{})
	_ = enc.Encode(checkpointFile{})
}

// SaveCheckpoint writes the full simulation state to w.
func (s *Simulation) SaveCheckpoint(w io.Writer) error {
	f := checkpointFile{
		Version: checkpointVersion,
		Cfg:     s.Cfg,
		X:       s.P.X, V: s.P.V,
		Charge: s.P.Charge, Mass: s.P.Mass,
		Rho: s.Rho, Phi: s.Phi, E: s.E,
		StepN: s.stepN, Time: s.time,
	}
	return gob.NewEncoder(w).Encode(f)
}

// LoadCheckpoint restores a simulation from r with the given field
// method (nil selects the traditional deposit+Poisson method). The
// restored run continues bit-identically to the original: velocities are
// already leapfrog-staggered, so no de-stagger kick is applied.
func LoadCheckpoint(r io.Reader, method FieldMethod) (*Simulation, error) {
	var f checkpointFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("pic: decode checkpoint: %w", err)
	}
	if f.Version != checkpointVersion {
		return nil, fmt.Errorf("pic: unsupported checkpoint version %d", f.Version)
	}
	if err := f.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("pic: checkpoint config: %w", err)
	}
	if len(f.X) != len(f.V) {
		return nil, fmt.Errorf("pic: checkpoint particle arrays disagree: %d vs %d", len(f.X), len(f.V))
	}
	cells := f.Cfg.Cells
	if len(f.Rho) != cells || len(f.Phi) != cells || len(f.E) != cells {
		return nil, fmt.Errorf("pic: checkpoint field arrays wrong length")
	}
	g, err := grid.New(cells, f.Cfg.Length)
	if err != nil {
		return nil, err
	}
	if method == nil {
		method, err = NewTraditionalField(f.Cfg, g)
		if err != nil {
			return nil, err
		}
	}
	sim := &Simulation{
		Cfg: f.Cfg,
		G:   g,
		P: &particle.Population{
			X: f.X, V: f.V,
			Charge: f.Charge, Mass: f.Mass,
			QOverM: f.Cfg.QOverM,
		},
		Rho: f.Rho, Phi: f.Phi, E: f.E,
		Ep:     make([]float64, len(f.X)),
		IonRho: f.Cfg.Wp * f.Cfg.Wp * f.Cfg.Eps0,
		method: method,
		plan:   fft.MustPlan(cells),
		stepN:  f.StepN,
		time:   f.Time,
	}
	return sim, nil
}

// SaveCheckpointFile saves to path.
func (s *Simulation) SaveCheckpointFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.SaveCheckpoint(f); err != nil {
		return err
	}
	return f.Close()
}

// ConfigKey returns a short deterministic fingerprint of a Config,
// derived from the same gob serialization the checkpoint machinery
// uses. Two configs share a key iff they gob-encode identically, so
// any change to the physics (box, particle counts, seeds, solver
// choices) changes the key. Note that gob's type descriptor covers
// every struct field, so adding a field to Config — even one every
// config leaves at its zero value — changes all keys and invalidates
// existing campaign journals; that is the safe direction (stale
// records re-run rather than restore), but it means journals do not
// survive Config schema changes. Campaign journals (internal/campaign)
// key per-scenario records with it.
func ConfigKey(cfg Config) (string, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cfg); err != nil {
		return "", fmt.Errorf("pic: fingerprint config: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:8]), nil
}

// LoadCheckpointFile loads from path.
func LoadCheckpointFile(path string, method FieldMethod) (*Simulation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCheckpoint(f, method)
}
