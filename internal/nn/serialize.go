package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"dlpic/internal/tensor"
)

// The on-disk format is a gob-encoded netFile: an architecture spec
// (kind + integer fields per layer) plus flat weight payloads. Loading
// reconstructs the layers with zero initialization and overwrites the
// weights, so a loaded model is bit-identical to the saved one.

type layerSpec struct {
	Kind string
	Ints []int
	W, B []float64
}

type netFile struct {
	Version int
	InDim   int
	Layers  []layerSpec
}

const fileVersion = 1

func specOf(l Layer) (layerSpec, error) {
	switch v := l.(type) {
	case *Dense:
		return layerSpec{Kind: "dense", Ints: []int{v.InDim, v.OutDim_},
			W: v.W.Data, B: v.B.Data}, nil
	case *ReLU:
		return layerSpec{Kind: "relu"}, nil
	case *Conv2D:
		return layerSpec{Kind: "conv2d", Ints: []int{v.InC, v.H, v.W, v.OutC, v.K},
			W: v.Wt.Data, B: v.B.Data}, nil
	case *MaxPool2D:
		return layerSpec{Kind: "maxpool2d", Ints: []int{v.C, v.H, v.W}}, nil
	case *Residual:
		// Flatten the two inner dense layers into one spec payload.
		return layerSpec{Kind: "residual", Ints: []int{v.dim},
			W: append(append([]float64(nil), v.d1.W.Data...), v.d2.W.Data...),
			B: append(append([]float64(nil), v.d1.B.Data...), v.d2.B.Data...)}, nil
	default:
		return layerSpec{}, fmt.Errorf("nn: cannot serialize layer %T", l)
	}
}

func layerOf(s layerSpec) (Layer, error) {
	switch s.Kind {
	case "dense":
		if len(s.Ints) != 2 {
			return nil, fmt.Errorf("nn: dense spec wants 2 ints, got %d", len(s.Ints))
		}
		d := NewDense(s.Ints[0], s.Ints[1], ensureRng(nil))
		if len(s.W) != d.W.Len() || len(s.B) != d.B.Len() {
			return nil, fmt.Errorf("nn: dense weight payload mismatch")
		}
		copy(d.W.Data, s.W)
		copy(d.B.Data, s.B)
		return d, nil
	case "relu":
		return NewReLU(), nil
	case "conv2d":
		if len(s.Ints) != 5 {
			return nil, fmt.Errorf("nn: conv2d spec wants 5 ints, got %d", len(s.Ints))
		}
		c := NewConv2D(s.Ints[0], s.Ints[1], s.Ints[2], s.Ints[3], s.Ints[4], ensureRng(nil))
		if len(s.W) != c.Wt.Len() || len(s.B) != c.B.Len() {
			return nil, fmt.Errorf("nn: conv2d weight payload mismatch")
		}
		copy(c.Wt.Data, s.W)
		copy(c.B.Data, s.B)
		return c, nil
	case "maxpool2d":
		if len(s.Ints) != 3 {
			return nil, fmt.Errorf("nn: maxpool2d spec wants 3 ints, got %d", len(s.Ints))
		}
		return NewMaxPool2D(s.Ints[0], s.Ints[1], s.Ints[2]), nil
	case "residual":
		if len(s.Ints) != 1 {
			return nil, fmt.Errorf("nn: residual spec wants 1 int, got %d", len(s.Ints))
		}
		dim := s.Ints[0]
		b := NewResidual(dim, ensureRng(nil))
		wLen := dim * dim
		if len(s.W) != 2*wLen || len(s.B) != 2*dim {
			return nil, fmt.Errorf("nn: residual weight payload mismatch")
		}
		copy(b.d1.W.Data, s.W[:wLen])
		copy(b.d2.W.Data, s.W[wLen:])
		copy(b.d1.B.Data, s.B[:dim])
		copy(b.d2.B.Data, s.B[dim:])
		return b, nil
	default:
		return nil, fmt.Errorf("nn: unknown layer kind %q", s.Kind)
	}
}

// netToFile snapshots a network's architecture and weights as the
// serializable netFile payload shared by the model format (Save) and
// the training-checkpoint format (internal/nn checkpoints).
func netToFile(net *Network) (netFile, error) {
	file := netFile{Version: fileVersion, InDim: net.InDim}
	for _, l := range net.Layers {
		s, err := specOf(l)
		if err != nil {
			return netFile{}, err
		}
		file.Layers = append(file.Layers, s)
	}
	return file, nil
}

// netFromFile reconstructs a network from a netFile payload; the
// result is bit-identical to the snapshotted one.
func netFromFile(file netFile) (*Network, error) {
	if file.Version != fileVersion {
		return nil, fmt.Errorf("nn: unsupported model version %d", file.Version)
	}
	layers := make([]Layer, 0, len(file.Layers))
	for i, s := range file.Layers {
		l, err := layerOf(s)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", i, err)
		}
		layers = append(layers, l)
	}
	return NewNetwork(file.InDim, layers...)
}

// Save writes the network architecture and weights to w.
func Save(net *Network, w io.Writer) error {
	file, err := netToFile(net)
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(file)
}

// Load reads a network saved with Save.
func Load(r io.Reader) (*Network, error) {
	var file netFile
	if err := gob.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("nn: decode model: %w", err)
	}
	return netFromFile(file)
}

// Clone returns a deep copy of the network: same architecture,
// bit-identical weights, fresh scratch. A Network's forward scratch
// makes sharing one instance across concurrently stepping simulations a
// data race, so per-scenario sweeps on the per-call path clone the
// solver network once per scenario; the batched inference server
// (internal/batch) is the alternative that shares a single instance.
func Clone(net *Network) (*Network, error) {
	var buf bytes.Buffer
	if err := Save(net, &buf); err != nil {
		return nil, err
	}
	return Load(&buf)
}

// SaveFile saves the network to path.
func SaveFile(net *Network, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Save(net, f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile loads a network from path.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// GradCheck compares the analytic gradient of net's parameters (under
// loss) against central finite differences on a given batch. It returns
// the largest relative error encountered over a sample of parameter
// entries (stride subsamples large tensors). Used by the test suite for
// every layer type.
func GradCheck(net *Network, loss Loss, x, y *tensor.Tensor, eps float64, stride int) float64 {
	if stride < 1 {
		stride = 1
	}
	pred := net.Forward(x)
	grad := tensor.New(pred.Shape...)
	loss.Forward(pred, y, grad)
	net.ZeroGrad()
	net.Backward(grad)
	// Snapshot analytic gradients (optimizer-free), keyed by the stable
	// weight tensor pointer (Params() returns fresh Param structs).
	analytic := map[*tensor.Tensor][]float64{}
	for _, p := range net.Params() {
		analytic[p.W] = append([]float64(nil), p.G.Data...)
	}
	var worst float64
	for _, p := range net.Params() {
		for i := 0; i < p.W.Len(); i += stride {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := evalLoss(net, loss, x, y)
			p.W.Data[i] = orig - eps
			lm := evalLoss(net, loss, x, y)
			p.W.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			a := analytic[p.W][i]
			denom := maxf(1e-8, maxf(absf(a), absf(numeric)))
			if rel := absf(a-numeric) / denom; rel > worst && absf(a-numeric) > 1e-9 {
				worst = rel
			}
		}
	}
	return worst
}

func evalLoss(net *Network, loss Loss, x, y *tensor.Tensor) float64 {
	pred := net.Forward(x)
	grad := tensor.New(pred.Shape...)
	return loss.Forward(pred, y, grad)
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
