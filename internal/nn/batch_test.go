package nn

import (
	"fmt"
	"testing"

	"dlpic/internal/rng"
)

// buildArchs returns one network of every architecture family at small
// sizes (CNN input 8x8 => InDim 64).
func buildArchs(t *testing.T) map[string]*Network {
	t.Helper()
	mlp, err := NewMLP(MLPConfig{InDim: 24, OutDim: 10, Hidden: 16, HiddenLayers: 2}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	cnn, err := NewCNN(CNNConfig{H: 8, W: 8, OutDim: 6, Channels1: 2, Channels2: 3, Hidden: 12, HiddenLayers: 1}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewResMLP(ResMLPConfig{InDim: 24, OutDim: 10, Hidden: 16, Blocks: 2}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Network{"mlp": mlp, "cnn": cnn, "resmlp": res}
}

// TestPredictBatchMatchesPredict1 is the batching correctness property:
// every row of a PredictBatch result is bit-identical (==, not within
// tolerance) to Predict1 on that row, for every architecture family and
// a spread of batch sizes, regardless of the order rows were stacked.
func TestPredictBatchMatchesPredict1(t *testing.T) {
	for name, net := range buildArchs(t) {
		t.Run(name, func(t *testing.T) {
			inDim, outDim := net.InDim, net.OutDim()
			r := rng.New(99)
			for _, batch := range []int{1, 2, 3, 5, 8, 17} {
				in := make([]float64, batch*inDim)
				for i := range in {
					in[i] = r.NormFloat64()
				}
				out := make([]float64, batch*outDim)
				net.PredictBatch(batch, in, out)
				ref := make([]float64, outDim)
				for row := 0; row < batch; row++ {
					net.Predict1(in[row*inDim:(row+1)*inDim], ref)
					got := out[row*outDim : (row+1)*outDim]
					for j := range ref {
						if got[j] != ref[j] {
							t.Fatalf("batch %d row %d col %d: batched %v != per-call %v",
								batch, row, j, got[j], ref[j])
						}
					}
				}
			}
		})
	}
}

// TestPredictBatchInterleaved checks that alternating batch sizes and
// per-call predictions on the same network never perturb each other
// (they share layer scratch, resized on demand).
func TestPredictBatchInterleaved(t *testing.T) {
	net := buildArchs(t)["mlp"]
	inDim, outDim := net.InDim, net.OutDim()
	r := rng.New(7)
	in := make([]float64, 8*inDim)
	for i := range in {
		in[i] = r.NormFloat64()
	}
	want := make([]float64, 8*outDim)
	for row := 0; row < 8; row++ {
		net.Predict1(in[row*inDim:(row+1)*inDim], want[row*outDim:(row+1)*outDim])
	}
	for _, batch := range []int{3, 8, 1, 5, 8, 2} {
		out := make([]float64, batch*outDim)
		net.PredictBatch(batch, in[:batch*inDim], out)
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("batch %d: output[%d] = %v, want %v", batch, i, out[i], want[i])
			}
		}
	}
}

// TestPredictBatchShapePanics pins the contract violations down to
// panics rather than silent corruption.
func TestPredictBatchShapePanics(t *testing.T) {
	net := buildArchs(t)["mlp"]
	for _, tc := range []struct {
		name  string
		batch int
		inLen int
		out   int
	}{
		{"zero-batch", 0, 0, 0},
		{"short-input", 2, net.InDim, 2 * net.OutDim()},
		{"short-output", 2, 2 * net.InDim, net.OutDim()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			net.PredictBatch(tc.batch, make([]float64, tc.inLen), make([]float64, tc.out))
		})
	}
}

// TestCloneIndependence verifies Clone copies weights bit-exactly and
// decouples scratch: predictions agree, and mutating the clone's
// weights does not leak into the original.
func TestCloneIndependence(t *testing.T) {
	for name, net := range buildArchs(t) {
		t.Run(name, func(t *testing.T) {
			clone, err := Clone(net)
			if err != nil {
				t.Fatal(err)
			}
			in := make([]float64, net.InDim)
			r := rng.New(5)
			for i := range in {
				in[i] = r.NormFloat64()
			}
			a := make([]float64, net.OutDim())
			b := make([]float64, net.OutDim())
			net.Predict1(in, a)
			clone.Predict1(in, b)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("clone diverges at %d: %v vs %v", i, a[i], b[i])
				}
			}
			clone.Params()[0].W.Data[0] += 1
			clone.Predict1(in, b)
			net.Predict1(in, a)
			same := true
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("mutating the clone did not change its output relative to the original")
			}
		})
	}
}

func ExampleNetwork_Summary() {
	net, _ := NewMLP(MLPConfig{InDim: 4, OutDim: 2, Hidden: 3, HiddenLayers: 1}, rng.New(1))
	fmt.Println(net.Summary())
	// Output: input(4) -> dense(4x3) -> relu -> dense(3x2)  [23 params]
}
