package nn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"dlpic/internal/rng"
	"dlpic/internal/tensor"
)

// ckptTestData builds a small deterministic regression problem.
func ckptTestData(t *testing.T, n, in, out int, seed uint64) (x, y, xv, yv *tensor.Tensor) {
	t.Helper()
	r := rng.New(seed)
	fill := func(rows int) (*tensor.Tensor, *tensor.Tensor) {
		a := tensor.New(rows, in)
		b := tensor.New(rows, out)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = 0.3 * r.NormFloat64()
		}
		return a, b
	}
	x, y = fill(n)
	xv, yv = fill(n / 4)
	return
}

// ckptTestNet builds the small MLP all checkpoint tests train.
func ckptTestNet(t *testing.T, in, out int) *Network {
	t.Helper()
	net, err := NewMLP(MLPConfig{InDim: in, OutDim: out, Hidden: 16, HiddenLayers: 2}, rng.New(9))
	if err != nil {
		t.Fatalf("NewMLP: %v", err)
	}
	return net
}

// netBytes serializes weights for byte-exact comparison.
func netBytes(t *testing.T, net *Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(net, &buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// sameHistory compares histories bit-exactly (NaN-safe: ValMAE is NaN
// without a validation set).
func sameHistory(a, b History) bool {
	if len(a.Epochs) != len(b.Epochs) {
		return false
	}
	f := math.Float64bits
	for i := range a.Epochs {
		p, q := a.Epochs[i], b.Epochs[i]
		if p.Epoch != q.Epoch || f(p.TrainLoss) != f(q.TrainLoss) ||
			f(p.ValMAE) != f(q.ValMAE) || f(p.ValMax) != f(q.ValMax) {
			return false
		}
	}
	return true
}

// ckptCfg returns the reference training configuration, checkpointing
// to path.
func ckptCfg(epochs int, path string, workers int, opt Optimizer) TrainConfig {
	return TrainConfig{
		Epochs: epochs, BatchSize: 16, Optimizer: opt, Loss: MSE{},
		Seed: 5, Workers: workers,
		Checkpoint: Checkpoint{Path: path},
	}
}

// TestResumeFit_BitIdenticalAtAnyEpochAndWorkers is the kill-and-resume
// property test: a fit interrupted after any epoch k (simulated by
// training with Epochs=k, which leaves exactly the checkpoint a kill
// after epoch k would) and resumed to the full budget yields
// byte-identical final weights and History to the uninterrupted fit,
// across resume worker counts 1, 2, 4, 8 and optimizers.
func TestResumeFit_BitIdenticalAtAnyEpochAndWorkers(t *testing.T) {
	const n, in, out, epochs = 64, 12, 8, 6
	x, y, xv, yv := ckptTestData(t, n, in, out, 3)
	dir := t.TempDir()

	for _, opt := range []func() Optimizer{
		func() Optimizer { return NewAdam(1e-3) },
		func() Optimizer { return &Momentum{LR: 1e-3, Mu: 0.9} },
		func() Optimizer { return &SGD{LR: 1e-3} },
	} {
		refPath := filepath.Join(dir, "ref.ckpt")
		refNet := ckptTestNet(t, in, out)
		refHist, err := Fit(refNet, x, y, xv, yv, ckptCfg(epochs, refPath, 1, opt()))
		if err != nil {
			t.Fatalf("reference fit: %v", err)
		}
		want := netBytes(t, refNet)
		name := opt().Name()

		for k := 1; k < epochs; k++ {
			for _, workers := range []int{1, 2, 4, 8} {
				path := filepath.Join(dir, "part.ckpt")
				partNet := ckptTestNet(t, in, out)
				// The interrupted run itself may use any worker count too.
				if _, err := Fit(partNet, x, y, xv, yv, ckptCfg(k, path, workers, opt())); err != nil {
					t.Fatalf("%s k=%d: partial fit: %v", name, k, err)
				}
				net, hist, err := ResumeFit(x, y, xv, yv, ckptCfg(epochs, path, workers, opt()))
				if err != nil {
					t.Fatalf("%s k=%d workers=%d: ResumeFit: %v", name, k, workers, err)
				}
				if !bytes.Equal(netBytes(t, net), want) {
					t.Fatalf("%s k=%d workers=%d: resumed weights diverge", name, k, workers)
				}
				if !sameHistory(hist, refHist) {
					t.Fatalf("%s k=%d workers=%d: resumed history diverges", name, k, workers)
				}
			}
		}
	}
}

// TestResumeFit_CheckpointEveryCadence checks that a sparser cadence
// (Every > 1) still resumes bit-identically from the last written
// checkpoint, and that the final epoch is always checkpointed.
func TestResumeFit_CheckpointEveryCadence(t *testing.T) {
	const n, in, out, epochs = 48, 10, 6, 7
	x, y, _, _ := ckptTestData(t, n, in, out, 11)
	dir := t.TempDir()

	refPath := filepath.Join(dir, "ref.ckpt")
	refNet := ckptTestNet(t, in, out)
	refCfg := ckptCfg(epochs, refPath, 1, NewAdam(1e-3))
	refCfg.Checkpoint.Every = 3
	refHist, err := Fit(refNet, x, y, nil, nil, refCfg)
	if err != nil {
		t.Fatalf("reference fit: %v", err)
	}
	// Final epoch (7) is checkpointed even though 7 % 3 != 0.
	file, err := readCheckpoint(refPath)
	if err != nil {
		t.Fatalf("readCheckpoint: %v", err)
	}
	if file.Epoch != epochs {
		t.Fatalf("final checkpoint records epoch %d, want %d", file.Epoch, epochs)
	}

	// Interrupt after epoch 5: the last checkpoint on disk is epoch 3,
	// so the resume replays epochs 4-7.
	path := filepath.Join(dir, "part.ckpt")
	partNet := ckptTestNet(t, in, out)
	partCfg := ckptCfg(5, path, 2, NewAdam(1e-3))
	partCfg.Checkpoint.Every = 3
	if _, err := Fit(partNet, x, y, nil, nil, partCfg); err != nil {
		t.Fatalf("partial fit: %v", err)
	}
	resCfg := ckptCfg(epochs, path, 4, NewAdam(1e-3))
	resCfg.Checkpoint.Every = 3
	net, hist, err := ResumeFit(x, y, nil, nil, resCfg)
	if err != nil {
		t.Fatalf("ResumeFit: %v", err)
	}
	if !bytes.Equal(netBytes(t, net), netBytes(t, refNet)) {
		t.Fatal("sparse-cadence resume diverges from uninterrupted fit")
	}
	if !sameHistory(hist, refHist) {
		t.Fatal("sparse-cadence resume history diverges")
	}
}

// TestResumeFit_CompletedCheckpointRunsZeroEpochs: resuming a
// checkpoint that already records the full epoch budget restores the
// network and history without training.
func TestResumeFit_CompletedCheckpointRunsZeroEpochs(t *testing.T) {
	const n, in, out, epochs = 32, 8, 4, 3
	x, y, _, _ := ckptTestData(t, n, in, out, 13)
	path := filepath.Join(t.TempDir(), "done.ckpt")
	refNet := ckptTestNet(t, in, out)
	refHist, err := Fit(refNet, x, y, nil, nil, ckptCfg(epochs, path, 1, NewAdam(1e-3)))
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	net, hist, err := ResumeFit(x, y, nil, nil, ckptCfg(epochs, path, 1, NewAdam(1e-3)))
	if err != nil {
		t.Fatalf("ResumeFit: %v", err)
	}
	if !bytes.Equal(netBytes(t, net), netBytes(t, refNet)) || !sameHistory(hist, refHist) {
		t.Fatal("zero-epoch resume does not restore the completed fit")
	}
}

// TestResumeFit_RejectsMismatchedConfig: any change to the training
// identity (batch size, seed, optimizer hyper-parameters, loss, data)
// is caught by the fingerprint.
func TestResumeFit_RejectsMismatchedConfig(t *testing.T) {
	const n, in, out = 32, 8, 4
	x, y, _, _ := ckptTestData(t, n, in, out, 17)
	path := filepath.Join(t.TempDir(), "fp.ckpt")
	net := ckptTestNet(t, in, out)
	if _, err := Fit(net, x, y, nil, nil, ckptCfg(2, path, 1, NewAdam(1e-3))); err != nil {
		t.Fatalf("fit: %v", err)
	}
	mutations := map[string]func(*TrainConfig){
		"batch":     func(c *TrainConfig) { c.BatchSize = 8 },
		"seed":      func(c *TrainConfig) { c.Seed = 6 },
		"optimizer": func(c *TrainConfig) { c.Optimizer = NewAdam(1e-2) },
		"loss":      func(c *TrainConfig) { c.Loss = MAE{} },
		"clipnorm":  func(c *TrainConfig) { c.ClipNorm = 1 },
		"shards":    func(c *TrainConfig) { c.Shards = 2 },
	}
	for name, mutate := range mutations {
		cfg := ckptCfg(4, path, 1, NewAdam(1e-3))
		mutate(&cfg)
		if _, _, err := ResumeFit(x, y, nil, nil, cfg); err == nil {
			t.Errorf("%s: ResumeFit accepted a mismatched configuration", name)
		}
	}
	// A larger epoch budget is the legitimate difference.
	if _, _, err := ResumeFit(x, y, nil, nil, ckptCfg(4, path, 1, NewAdam(1e-3))); err != nil {
		t.Errorf("epoch extension rejected: %v", err)
	}
	// Different data.
	x2, y2, _, _ := ckptTestData(t, n, in, out, 18)
	if _, _, err := ResumeFit(x2, y2, nil, nil, ckptCfg(4, path, 1, NewAdam(1e-3))); err == nil {
		t.Error("ResumeFit accepted different training data")
	}
}

// TestResumeFit_CorruptAndTornFiles: a truncated checkpoint errors out
// cleanly, and a stale .tmp left by a kill mid-write is ignored.
func TestResumeFit_CorruptAndTornFiles(t *testing.T) {
	const n, in, out = 32, 8, 4
	x, y, _, _ := ckptTestData(t, n, in, out, 19)
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.ckpt")
	net := ckptTestNet(t, in, out)
	refHist, err := Fit(net, x, y, nil, nil, ckptCfg(2, path, 1, NewAdam(1e-3)))
	if err != nil {
		t.Fatalf("fit: %v", err)
	}

	// A stale tmp fragment (kill mid-write) must not affect the resume.
	if err := os.WriteFile(path+".tmp", []byte("torn garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, hist, err := ResumeFit(x, y, nil, nil, ckptCfg(2, path, 1, NewAdam(1e-3)))
	if err != nil {
		t.Fatalf("ResumeFit with stale tmp: %v", err)
	}
	if !sameHistory(hist, refHist) {
		t.Fatal("stale tmp perturbed the resume")
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A decodable checkpoint whose permutation was corrupted (the
	// fingerprint covers configuration and data, not the payload) is
	// rejected instead of crashing or silently diverging the resume.
	var file ckptFile
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&file); err != nil {
		t.Fatal(err)
	}
	file.Perm[0] = file.Perm[1] // duplicate index: still in range, not a permutation
	var enc bytes.Buffer
	if err := gob.NewEncoder(&enc).Encode(file); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, enc.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ResumeFit(x, y, nil, nil, ckptCfg(4, path, 1, NewAdam(1e-3))); !errors.Is(err, ErrCheckpointUnusable) {
		t.Fatalf("corrupted permutation: got %v, want ErrCheckpointUnusable", err)
	}
	// Truncation is detected, not silently resumed.
	if err := os.WriteFile(path, buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ResumeFit(x, y, nil, nil, ckptCfg(4, path, 1, NewAdam(1e-3))); !errors.Is(err, ErrCheckpointUnusable) {
		t.Fatalf("truncated checkpoint: got %v, want ErrCheckpointUnusable", err)
	}
	// Garbage is detected too.
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ResumeFit(x, y, nil, nil, ckptCfg(4, path, 1, NewAdam(1e-3))); !errors.Is(err, ErrCheckpointUnusable) {
		t.Fatalf("garbage checkpoint: got %v, want ErrCheckpointUnusable", err)
	}
	// A missing checkpoint is an error (use Fit to start fresh).
	if _, _, err := ResumeFit(x, y, nil, nil, ckptCfg(4, filepath.Join(dir, "absent.ckpt"), 1, NewAdam(1e-3))); !errors.Is(err, ErrCheckpointUnusable) {
		t.Fatalf("missing checkpoint: got %v, want ErrCheckpointUnusable", err)
	}
}

// TestFit_CheckpointingDoesNotPerturbTraining: the exact same weights
// come out with and without a checkpoint configured.
func TestFit_CheckpointingDoesNotPerturbTraining(t *testing.T) {
	const n, in, out, epochs = 48, 10, 6, 4
	x, y, xv, yv := ckptTestData(t, n, in, out, 23)
	plain := ckptTestNet(t, in, out)
	cfg := ckptCfg(epochs, "", 2, NewAdam(1e-3))
	plainHist, err := Fit(plain, x, y, xv, yv, cfg)
	if err != nil {
		t.Fatalf("plain fit: %v", err)
	}
	ck := ckptTestNet(t, in, out)
	cfg.Optimizer = NewAdam(1e-3) // fresh moments — the first fit consumed the old instance's
	cfg.Checkpoint = Checkpoint{Path: filepath.Join(t.TempDir(), "c.ckpt"), Every: 2}
	ckHist, err := Fit(ck, x, y, xv, yv, cfg)
	if err != nil {
		t.Fatalf("checkpointed fit: %v", err)
	}
	if !bytes.Equal(netBytes(t, plain), netBytes(t, ck)) || !sameHistory(plainHist, ckHist) {
		t.Fatal("checkpointing perturbed the training trajectory")
	}
}

// TestFit_CheckpointRequiresSerializableOptimizer: an optimizer without
// state capture is rejected up front, not at the first write.
func TestFit_CheckpointRequiresSerializableOptimizer(t *testing.T) {
	const n, in, out = 16, 8, 4
	x, y, _, _ := ckptTestData(t, n, in, out, 29)
	net := ckptTestNet(t, in, out)
	cfg := TrainConfig{
		Epochs: 1, BatchSize: 8, Optimizer: opaqueOptimizer{}, Loss: MSE{},
		Checkpoint: Checkpoint{Path: filepath.Join(t.TempDir(), "x.ckpt")},
	}
	if _, err := Fit(net, x, y, nil, nil, cfg); err == nil {
		t.Fatal("Fit checkpointed with a non-serializable optimizer")
	}
}

// opaqueOptimizer implements Optimizer but not optimizerCheckpointer.
type opaqueOptimizer struct{}

func (opaqueOptimizer) Step([]*Param) {}
func (opaqueOptimizer) Name() string  { return "opaque" }
