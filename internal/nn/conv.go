package nn

import (
	"fmt"
	"math"

	"dlpic/internal/rng"
	"dlpic/internal/tensor"
)

// Conv2D is a stride-1, same-padded 2D convolution over channel-major
// [C, H, W] features (flattened per sample). It is implemented with
// im2col + GEMM: each sample's receptive fields are unrolled into a
// column matrix and the kernel bank multiplies it in one MatMul, which
// is where the paper's observation that "the DL electric field solver is
// a series of matrix-vector multiplications" becomes literal.
type Conv2D struct {
	InC, H, W int // input channels and spatial size
	OutC, K   int // output channels, (odd) kernel size

	Wt     *tensor.Tensor // [OutC, InC*K*K]
	B      *tensor.Tensor // [1, OutC]
	dW, dB *tensor.Tensor

	x    *tensor.Tensor // cached input batch
	out  *tensor.Tensor
	dx   *tensor.Tensor
	cols *tensor.Tensor // [InC*K*K, H*W] im2col scratch (one sample)
	dcol *tensor.Tensor
}

// NewConv2D constructs a same-padded stride-1 convolution with
// He-uniform initialization. K must be odd.
func NewConv2D(inC, h, w, outC, k int, r *rng.Source) *Conv2D {
	if inC <= 0 || h <= 0 || w <= 0 || outC <= 0 {
		panic(fmt.Sprintf("nn: invalid conv dims inC=%d h=%d w=%d outC=%d", inC, h, w, outC))
	}
	if k <= 0 || k%2 == 0 {
		panic(fmt.Sprintf("nn: conv kernel size %d must be positive odd", k))
	}
	c := &Conv2D{
		InC: inC, H: h, W: w, OutC: outC, K: k,
		Wt: tensor.New(outC, inC*k*k),
		B:  tensor.New(1, outC),
		dW: tensor.New(outC, inC*k*k),
		dB: tensor.New(1, outC),
	}
	fanIn := float64(inC * k * k)
	c.Wt.RandomUniform(r, math.Sqrt(6.0/fanIn))
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv2d(%dx%dx%d->%d,k=%d)", c.InC, c.H, c.W, c.OutC, c.K)
}

// OutDim implements Layer.
func (c *Conv2D) OutDim(in int) (int, error) {
	if in != c.InC*c.H*c.W {
		return 0, fmt.Errorf("nn: conv expects input width %d (=%dx%dx%d), got %d",
			c.InC*c.H*c.W, c.InC, c.H, c.W, in)
	}
	return c.OutC * c.H * c.W, nil
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	return []*Param{
		{Name: c.Name() + ".W", W: c.Wt, G: c.dW},
		{Name: c.Name() + ".b", W: c.B, G: c.dB},
	}
}

// im2col unrolls sample x (len InC*H*W) into c.cols: row (ic*K*K + ky*K
// + kx) and column (y*W + x) holds input value at channel ic, position
// (y+ky-pad, x+kx-pad), zero outside the image.
func (c *Conv2D) im2col(x []float64) {
	k, h, w := c.K, c.H, c.W
	pad := k / 2
	cols := c.cols.Data
	for ic := 0; ic < c.InC; ic++ {
		chOff := ic * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				rowOff := ((ic*k+ky)*k + kx) * h * w
				for y := 0; y < h; y++ {
					sy := y + ky - pad
					dst := cols[rowOff+y*w : rowOff+(y+1)*w]
					if sy < 0 || sy >= h {
						for i := range dst {
							dst[i] = 0
						}
						continue
					}
					srcRow := x[chOff+sy*w : chOff+(sy+1)*w]
					for xx := 0; xx < w; xx++ {
						sx := xx + kx - pad
						if sx < 0 || sx >= w {
							dst[xx] = 0
						} else {
							dst[xx] = srcRow[sx]
						}
					}
				}
			}
		}
	}
}

// col2im scatters gradient columns back into dx (adds into dx).
func (c *Conv2D) col2im(dx []float64) {
	k, h, w := c.K, c.H, c.W
	pad := k / 2
	cols := c.dcol.Data
	for ic := 0; ic < c.InC; ic++ {
		chOff := ic * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				rowOff := ((ic*k+ky)*k + kx) * h * w
				for y := 0; y < h; y++ {
					sy := y + ky - pad
					if sy < 0 || sy >= h {
						continue
					}
					src := cols[rowOff+y*w : rowOff+(y+1)*w]
					dstRow := dx[chOff+sy*w : chOff+(sy+1)*w]
					for xx := 0; xx < w; xx++ {
						sx := xx + kx - pad
						if sx >= 0 && sx < w {
							dstRow[sx] += src[xx]
						}
					}
				}
			}
		}
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	inDim := c.InC * c.H * c.W
	if x.Cols() != inDim {
		panic(fmt.Sprintf("nn: %s got input width %d", c.Name(), x.Cols()))
	}
	batch := x.Rows()
	c.x = x
	hw := c.H * c.W
	out := ensure2D(&c.out, batch, c.OutC*hw)
	ensure2D(&c.cols, c.InC*c.K*c.K, hw)
	for s := 0; s < batch; s++ {
		c.im2col(x.Row(s))
		outS := tensor.FromSlice(out.Row(s), c.OutC, hw)
		tensor.MatMul(outS, c.Wt, c.cols, false, false)
		// Per-channel bias.
		for oc := 0; oc < c.OutC; oc++ {
			b := c.B.Data[oc]
			row := outS.Row(oc)
			for i := range row {
				row[i] += b
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return c.backward(dy, true)
}

// backwardParamsOnly is Backward without the input gradient (the
// W^T·dy GEMM and col2im scatter per sample) — see Network.backwardTrain.
func (c *Conv2D) backwardParamsOnly(dy *tensor.Tensor) {
	c.backward(dy, false)
}

func (c *Conv2D) backward(dy *tensor.Tensor, wantDX bool) *tensor.Tensor {
	if c.x == nil {
		panic("nn: conv Backward before Forward")
	}
	batch := dy.Rows()
	hw := c.H * c.W
	var dx *tensor.Tensor
	if wantDX {
		dx = ensure2D(&c.dx, batch, c.InC*hw)
		dx.Zero()
		ensure2D(&c.dcol, c.InC*c.K*c.K, hw)
	}
	for s := 0; s < batch; s++ {
		// Recompute the im2col of this sample (cheaper than caching all
		// columns for the batch: memory O(1 sample) instead of O(batch)).
		c.im2col(c.x.Row(s))
		dyS := tensor.FromSlice(dy.Row(s), c.OutC, hw)
		// dW accumulates dy_s · cols^T over the batch's samples; the
		// first sample writes (per the Layer contract, gradients are
		// overwritten, so the buffer needs no pre-zeroing), the rest
		// accumulate. Each element's per-sample dot product is formed in
		// full before the add, so the chain matches the old
		// scratch-then-add path.
		if s == 0 {
			tensor.MatMul(c.dW, dyS, c.cols, false, true)
		} else {
			tensor.MatMulAcc(c.dW, dyS, c.cols, false, true)
		}
		// db accumulates the per-channel sums the same way.
		for oc := 0; oc < c.OutC; oc++ {
			var sum float64
			for _, v := range dyS.Row(oc) {
				sum += v
			}
			if s == 0 {
				c.dB.Data[oc] = sum
			} else {
				c.dB.Data[oc] += sum
			}
		}
		if wantDX {
			// dcols = W^T · dy_s, then scatter back.
			tensor.MatMul(c.dcol, c.Wt, dyS, true, false)
			c.col2im(dx.Row(s))
		}
	}
	return dx
}

// ---------------------------------------------------------------------------
// MaxPool2D

// MaxPool2D is a 2x2, stride-2 max pooling over [C, H, W] features.
// H and W must be even.
type MaxPool2D struct {
	C, H, W int
	argmax  []int32 // per output element: index into the input sample
	out     *tensor.Tensor
	dx      *tensor.Tensor
	inCols  int
}

// NewMaxPool2D constructs the pooling layer.
func NewMaxPool2D(c, h, w int) *MaxPool2D {
	if c <= 0 || h <= 0 || w <= 0 || h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("nn: invalid maxpool dims c=%d h=%d w=%d (h,w must be even)", c, h, w))
	}
	return &MaxPool2D{C: c, H: h, W: w}
}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return fmt.Sprintf("maxpool2d(%dx%dx%d)", m.C, m.H, m.W) }

// OutDim implements Layer.
func (m *MaxPool2D) OutDim(in int) (int, error) {
	if in != m.C*m.H*m.W {
		return 0, fmt.Errorf("nn: maxpool expects input width %d, got %d", m.C*m.H*m.W, in)
	}
	return m.C * (m.H / 2) * (m.W / 2), nil
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	inDim := m.C * m.H * m.W
	if x.Cols() != inDim {
		panic(fmt.Sprintf("nn: %s got input width %d", m.Name(), x.Cols()))
	}
	batch := x.Rows()
	oh, ow := m.H/2, m.W/2
	outDim := m.C * oh * ow
	out := ensure2D(&m.out, batch, outDim)
	if cap(m.argmax) < batch*outDim {
		m.argmax = make([]int32, batch*outDim)
	}
	m.argmax = m.argmax[:batch*outDim]
	m.inCols = inDim
	for s := 0; s < batch; s++ {
		in := x.Row(s)
		o := out.Row(s)
		am := m.argmax[s*outDim : (s+1)*outDim]
		for ch := 0; ch < m.C; ch++ {
			for y := 0; y < oh; y++ {
				for xx := 0; xx < ow; xx++ {
					base := ch*m.H*m.W + 2*y*m.W + 2*xx
					best := base
					bv := in[base]
					for _, off := range [3]int{1, m.W, m.W + 1} {
						if v := in[base+off]; v > bv {
							bv = v
							best = base + off
						}
					}
					oi := ch*oh*ow + y*ow + xx
					o[oi] = bv
					am[oi] = int32(best)
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	batch := dy.Rows()
	outDim := dy.Cols()
	dx := ensure2D(&m.dx, batch, m.inCols)
	dx.Zero()
	for s := 0; s < batch; s++ {
		am := m.argmax[s*outDim : (s+1)*outDim]
		dyRow := dy.Row(s)
		dxRow := dx.Row(s)
		for i, g := range dyRow {
			dxRow[am[i]] += g
		}
	}
	return dx
}
