package nn

import (
	"fmt"

	"dlpic/internal/tensor"
)

// A replica is a worker-private view of a network for the data-parallel
// training and evaluation engines: it shares the master's weight
// tensors (read-only while workers run; the optimizer writes them only
// between batches, after the worker barrier) but owns its activation
// scratch and its gradient tensors, so concurrent forward/backward
// passes on disjoint row shards never race.
//
// Replica gradient tensors start unbound (nil backing): the training
// engine rebinds them onto a pooled per-shard buffer before every
// backward pass (bindGrads), which is what lets one replica produce
// independent gradient shards for the chunk-ordered reduction without
// copying. Evaluation replicas never touch gradients at all.
type replica struct {
	net    *Network
	params []*Param

	xb, yb, grad *tensor.Tensor // shard scratch (grow-only)
}

// newReplica builds a replica of net, or an error for layer types the
// engine cannot replicate (the sharded paths then fall back to the
// single-threaded reference implementation).
func newReplica(net *Network) (*replica, error) {
	layers := make([]Layer, len(net.Layers))
	for i, l := range net.Layers {
		rl, err := replicaLayer(l)
		if err != nil {
			return nil, err
		}
		layers[i] = rl
	}
	rnet := &Network{Layers: layers, InDim: net.InDim}
	return &replica{net: rnet, params: rnet.Params()}, nil
}

// replicaLayer mirrors one layer: weights shared, gradients unbound,
// scratch fresh. Keep the cases in sync with the layer types in
// layer.go / conv.go (specOf in serialize.go lists the same set).
func replicaLayer(l Layer) (Layer, error) {
	switch v := l.(type) {
	case *Dense:
		return &Dense{InDim: v.InDim, OutDim_: v.OutDim_,
			W: v.W, B: v.B, dW: unboundLike(v.dW), dB: unboundLike(v.dB)}, nil
	case *ReLU:
		return NewReLU(), nil
	case *Conv2D:
		return &Conv2D{InC: v.InC, H: v.H, W: v.W, OutC: v.OutC, K: v.K,
			Wt: v.Wt, B: v.B, dW: unboundLike(v.dW), dB: unboundLike(v.dB)}, nil
	case *MaxPool2D:
		return NewMaxPool2D(v.C, v.H, v.W), nil
	case *Residual:
		d1, err := replicaLayer(v.d1)
		if err != nil {
			return nil, err
		}
		d2, err := replicaLayer(v.d2)
		if err != nil {
			return nil, err
		}
		return &Residual{dim: v.dim, d1: d1.(*Dense), d2: d2.(*Dense), act: NewReLU()}, nil
	default:
		return nil, fmt.Errorf("nn: cannot replicate layer %T", l)
	}
}

// unboundLike returns a gradient tensor with t's shape and no backing
// storage; bindGrads attaches one before use. Touching an unbound
// gradient panics (length 0), which guards against a missed bind.
func unboundLike(t *tensor.Tensor) *tensor.Tensor {
	return &tensor.Tensor{Shape: append([]int(nil), t.Shape...)}
}

// bindGrads points each parameter's gradient tensor at consecutive
// slices of buf, whose layout is the concatenation of the parameter
// tensors in Params() order (sizes as given). The caller owns zeroing.
func bindGrads(params []*Param, sizes []int, buf []float64) {
	off := 0
	for i, p := range params {
		p.G.Data = buf[off : off+sizes[i]]
		off += sizes[i]
	}
}

// makeReplicas builds n replicas of net.
func makeReplicas(net *Network, n int) ([]*replica, error) {
	reps := make([]*replica, n)
	for i := range reps {
		r, err := newReplica(net)
		if err != nil {
			return nil, err
		}
		reps[i] = r
	}
	return reps, nil
}
