package nn

import (
	"fmt"
	"io"
	"math"

	"dlpic/internal/rng"
	"dlpic/internal/tensor"
)

// TrainConfig drives Fit. The paper's settings are batch 64, Adam with
// lr = 1e-4, 150 epochs (MLP) / 100 epochs (CNN).
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	Loss      Loss
	// Seed drives minibatch shuffling.
	Seed uint64
	// ClipNorm, if positive, clips the global gradient norm per batch.
	ClipNorm float64
	// Log, if non-nil, receives one line per epoch.
	Log io.Writer
	// LogEvery reduces log volume: epochs are logged when
	// (epoch+1) % LogEvery == 0 (default 1).
	LogEvery int
}

// EpochStats records the trajectory of one epoch.
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	ValMAE    float64 // NaN when no validation set was supplied
	ValMax    float64
}

// History is the full training trajectory.
type History struct {
	Epochs []EpochStats
}

// Final returns the last epoch's stats (zero value when empty).
func (h History) Final() EpochStats {
	if len(h.Epochs) == 0 {
		return EpochStats{}
	}
	return h.Epochs[len(h.Epochs)-1]
}

// Fit trains the network on (x, y) with optional validation set
// (xVal/yVal may be nil). Rows of x and y are samples. Returns the
// training history.
func Fit(net *Network, x, y, xVal, yVal *tensor.Tensor, cfg TrainConfig) (History, error) {
	if cfg.Epochs <= 0 {
		return History{}, fmt.Errorf("nn: Epochs = %d, need > 0", cfg.Epochs)
	}
	if cfg.BatchSize <= 0 {
		return History{}, fmt.Errorf("nn: BatchSize = %d, need > 0", cfg.BatchSize)
	}
	if cfg.Optimizer == nil || cfg.Loss == nil {
		return History{}, fmt.Errorf("nn: Optimizer and Loss are required")
	}
	if x.Rows() != y.Rows() {
		return History{}, fmt.Errorf("nn: sample count mismatch x=%d y=%d", x.Rows(), y.Rows())
	}
	if x.Cols() != net.InDim {
		return History{}, fmt.Errorf("nn: input width %d, network wants %d", x.Cols(), net.InDim)
	}
	if y.Cols() != net.OutDim() {
		return History{}, fmt.Errorf("nn: target width %d, network outputs %d", y.Cols(), net.OutDim())
	}
	if (xVal == nil) != (yVal == nil) {
		return History{}, fmt.Errorf("nn: validation inputs and targets must both be set or both nil")
	}
	nSamples := x.Rows()
	if nSamples == 0 {
		return History{}, fmt.Errorf("nn: empty training set")
	}
	bs := cfg.BatchSize
	if bs > nSamples {
		bs = nSamples
	}
	r := rng.New(cfg.Seed)
	perm := make([]int, nSamples)
	for i := range perm {
		perm[i] = i
	}
	xb := tensor.New(bs, x.Cols())
	yb := tensor.New(bs, y.Cols())
	grad := tensor.New(bs, y.Cols())
	logEvery := cfg.LogEvery
	if logEvery <= 0 {
		logEvery = 1
	}
	var hist History
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(nSamples, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var epochLoss float64
		var batches int
		for start := 0; start+bs <= nSamples; start += bs {
			// Gather the shuffled batch.
			for bi := 0; bi < bs; bi++ {
				src := perm[start+bi]
				copy(xb.Row(bi), x.Row(src))
				copy(yb.Row(bi), y.Row(src))
			}
			pred := net.Forward(xb)
			loss := cfg.Loss.Forward(pred, yb, grad)
			if math.IsNaN(loss) || math.IsInf(loss, 0) {
				return hist, fmt.Errorf("nn: non-finite loss %v at epoch %d batch %d", loss, epoch, batches)
			}
			net.ZeroGrad()
			net.Backward(grad)
			if cfg.ClipNorm > 0 {
				ClipGradNorm(net.Params(), cfg.ClipNorm)
			}
			cfg.Optimizer.Step(net.Params())
			epochLoss += loss
			batches++
		}
		stats := EpochStats{Epoch: epoch, TrainLoss: epochLoss / float64(batches), ValMAE: math.NaN(), ValMax: math.NaN()}
		if xVal != nil {
			m := Evaluate(net, xVal, yVal, bs)
			stats.ValMAE = m.MAE
			stats.ValMax = m.MaxErr
		}
		hist.Epochs = append(hist.Epochs, stats)
		if cfg.Log != nil && (epoch+1)%logEvery == 0 {
			if xVal != nil {
				fmt.Fprintf(cfg.Log, "epoch %3d/%d  loss %.6g  val MAE %.6g  val max %.6g\n",
					epoch+1, cfg.Epochs, stats.TrainLoss, stats.ValMAE, stats.ValMax)
			} else {
				fmt.Fprintf(cfg.Log, "epoch %3d/%d  loss %.6g\n", epoch+1, cfg.Epochs, stats.TrainLoss)
			}
		}
	}
	return hist, nil
}

// Metrics are the paper's Table-I error statistics over a dataset.
type Metrics struct {
	// MAE is the mean absolute error over all outputs and samples
	// (paper Eq. 6).
	MAE float64
	// MaxErr is the largest absolute error.
	MaxErr float64
	// RMSE is the root-mean-square error (extra, not in the paper).
	RMSE float64
	// N is the number of samples evaluated.
	N int
}

// Evaluate computes the Table-I metrics of the network on (x, y),
// processing in batches of batchSize.
func Evaluate(net *Network, x, y *tensor.Tensor, batchSize int) Metrics {
	n := x.Rows()
	if n != y.Rows() {
		panic(fmt.Sprintf("nn: Evaluate sample mismatch %d vs %d", n, y.Rows()))
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	if batchSize > n {
		batchSize = n
	}
	var sumAbs, sumSq, maxErr float64
	var count int
	xb := tensor.New(batchSize, x.Cols())
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		rows := end - start
		var batch *tensor.Tensor
		if rows == batchSize {
			batch = xb
		} else {
			batch = tensor.New(rows, x.Cols())
		}
		for bi := 0; bi < rows; bi++ {
			copy(batch.Row(bi), x.Row(start+bi))
		}
		pred := net.Forward(batch)
		for bi := 0; bi < rows; bi++ {
			pr := pred.Row(bi)
			tr := y.Row(start + bi)
			for j := range pr {
				d := math.Abs(pr[j] - tr[j])
				sumAbs += d
				sumSq += d * d
				if d > maxErr {
					maxErr = d
				}
				count++
			}
		}
	}
	if count == 0 {
		return Metrics{}
	}
	return Metrics{
		MAE:    sumAbs / float64(count),
		MaxErr: maxErr,
		RMSE:   math.Sqrt(sumSq / float64(count)),
		N:      n,
	}
}
