package nn

import (
	"fmt"
	"io"
	"math"
	"runtime"

	"dlpic/internal/parallel"
	"dlpic/internal/rng"
	"dlpic/internal/tensor"
)

// TrainConfig drives Fit. The paper's settings are batch 64, Adam with
// lr = 1e-4, 150 epochs (MLP) / 100 epochs (CNN).
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	Loss      Loss
	// Seed drives minibatch shuffling.
	Seed uint64
	// ClipNorm, if positive, clips the global gradient norm per batch.
	ClipNorm float64
	// Log, if non-nil, receives one line per epoch.
	Log io.Writer
	// LogEvery reduces log volume: epochs are logged when
	// (epoch+1) % LogEvery == 0 (default 1).
	LogEvery int
	// Workers is the data-parallel worker count of the sharded
	// forward/backward engine (0 = GOMAXPROCS, 1 = run the shards
	// inline). The gradient-shard decomposition and the chunk-ordered
	// reduction depend only on the batch geometry — never on Workers or
	// GOMAXPROCS — so the weights, epoch losses and History are
	// bit-identical at every Workers value.
	Workers int
	// Pipeline overlaps the gather of batch t+1 with the gradient clip
	// and optimizer step of batch t (double-buffered minibatches
	// through the parallel.Async seam). Like Workers it is an
	// execution-environment knob, not a training-configuration one: the
	// gathered rows depend only on the shuffle cursor, never on the
	// weights the optimizer is updating concurrently, so the weights,
	// losses and History are bit-identical with the pipeline on or off
	// — and it is excluded from the checkpoint fingerprint.
	Pipeline bool
	// Shards overrides the gradient-shard count per batch (0 = auto:
	// ceil(rows/trainShardRows) capped at maxTrainShards). Unlike
	// Workers, changing Shards changes the floating-point grouping of
	// the gradient reduction — it is part of the training configuration
	// the way BatchSize is, not part of the execution environment.
	Shards int
	// Checkpoint, when its Path is set, makes the fit resumable:
	// after every Checkpoint.Every-th epoch the full training state
	// (weights, optimizer moments, RNG/shuffle cursor, History) is
	// written atomically to Checkpoint.Path, and ResumeFit continues
	// from it bit-identically. Requires an optimizer whose state can
	// be serialized (SGD, Momentum, Adam).
	Checkpoint Checkpoint
}

// Auto shard sizing: one shard per trainShardRows batch rows, capped at
// maxTrainShards. The paper's batch of 64 yields 4 shards of 16 rows —
// per-shard GEMMs re-stream each layer's weight matrix, so fewer,
// fatter shards keep the serial (Workers=1) path at parity with the
// single-shard reference while still feeding 4 workers. Dense-stack
// training is memory-bound enough that more shards than that buy
// little even on wide machines; raise TrainConfig.Shards explicitly
// for conv-heavy nets, whose per-shard compute dwarfs the re-streaming.
const (
	trainShardRows = 16
	maxTrainShards = 8
)

// shardCount returns the gradient-shard count for a batch of rows. It
// is a pure function of the batch geometry and the configured override,
// which is the invariant behind worker-count-independent training.
func shardCount(rows, override int) int {
	if rows <= 0 {
		return 0
	}
	k := override
	if k <= 0 {
		k = (rows + trainShardRows - 1) / trainShardRows
		if k > maxTrainShards {
			k = maxTrainShards
		}
	}
	if k > rows {
		k = rows
	}
	return k
}

// EpochStats records the trajectory of one epoch.
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	ValMAE    float64 // NaN when no validation set was supplied
	ValMax    float64
}

// History is the full training trajectory.
type History struct {
	Epochs []EpochStats
}

// Final returns the last epoch's stats (zero value when empty).
func (h History) Final() EpochStats {
	if len(h.Epochs) == 0 {
		return EpochStats{}
	}
	return h.Epochs[len(h.Epochs)-1]
}

// resolveWorkers maps the config value to a concrete worker count.
func resolveWorkers(w int) int {
	if w > 0 {
		return w
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// shardEngine is the deterministic data-parallel trainer: each batch is
// split into shards whose bounds depend only on the row count, workers
// run forward + backward on per-worker replicas (shared weights,
// private scratch), and the per-shard gradients are folded into the
// master network's gradient accumulators in strict shard order
// (parallel.OrderedFold). The left-fold chain per gradient element is
// fixed by the shard indices, so the summed gradient — and with it the
// optimizer trajectory, the epoch losses and the final weights — is
// bit-identical at every Workers value, including the inline Workers=1
// path.
type shardEngine struct {
	net    *Network
	loss   Loss
	shards int // config override (0 = auto)

	reps  []*replica
	sizes []int     // parameter flat sizes, Params() order
	flat  []float64 // master gradient backing (G tensors are views)

	fold      parallel.OrderedFold
	shardLoss []float64
	evalParts []float64
}

// newShardEngine prepares replicas and rebinds the master's gradient
// tensors onto one flat buffer so the ordered fold can run over a
// single destination. Returns an error for nets with layer types the
// replica machinery does not know — Fit refuses to train such nets
// (a new Layer type must be added to replicaLayer before it is
// trainable); only EvaluateWorkers degrades to a serial fallback.
func newShardEngine(net *Network, loss Loss, workers, shards, batchRows int) (*shardEngine, error) {
	e := &shardEngine{net: net, loss: loss, shards: shards}
	params := net.Params()
	total := 0
	e.sizes = make([]int, len(params))
	for i, p := range params {
		e.sizes[i] = p.G.Len()
		total += e.sizes[i]
	}
	e.flat = make([]float64, total)
	bindGrads(params, e.sizes, e.flat)
	n := resolveWorkers(workers)
	if k := shardCount(batchRows, shards); n > k {
		n = k
	}
	reps, err := makeReplicas(net, n)
	if err != nil {
		return nil, err
	}
	e.reps = reps
	return e, nil
}

// runBatch shards one minibatch (the rows of x, y selected by perm)
// across the workers and leaves the chunk-order-reduced gradient in the
// master network's accumulators. Returns the batch loss (shard
// contributions summed in shard order).
func (e *shardEngine) runBatch(x, y *tensor.Tensor, perm []int) float64 {
	rows := len(perm)
	k := shardCount(rows, e.shards)
	// No gradient zeroing: Backward overwrites (Layer contract), shard
	// 0 writes the master's flat gradient view in place, and the fold
	// overwrites the rest of the chain.
	e.fold.Begin(e.flat, k)
	if cap(e.shardLoss) < k {
		e.shardLoss = make([]float64, k)
	}
	shardLoss := e.shardLoss[:k]
	workers := len(e.reps)
	if workers > k {
		workers = k
	}
	parallel.ForPoolWorkers(k, workers, func(w, c int) {
		s, t := parallel.ChunkBounds(rows, k, c)
		shardLoss[c] = e.runShard(e.reps[w], x, y, perm[s:t], rows, c)
	})
	var total float64
	for _, l := range shardLoss {
		total += l
	}
	return total
}

// runShard gathers one shard's rows, runs forward + backward on the
// replica with its gradients bound to a pooled buffer, and delivers the
// buffer to the ordered fold.
func (e *shardEngine) runShard(rep *replica, x, y *tensor.Tensor, rows []int, totalRows, chunk int) float64 {
	n := len(rows)
	xb := ensure2D(&rep.xb, n, x.Cols())
	yb := ensure2D(&rep.yb, n, y.Cols())
	tensor.GatherRows(xb, x, rows)
	tensor.GatherRows(yb, y, rows)
	return e.runShardRows(rep, xb, yb, totalRows, chunk)
}

// runShardRows is the forward/backward half of runShard: xb/yb already
// hold the shard's rows.
func (e *shardEngine) runShardRows(rep *replica, xb, yb *tensor.Tensor, totalRows, chunk int) float64 {
	pred := rep.net.Forward(xb)
	grad := ensure2D(&rep.grad, xb.Rows(), yb.Cols())
	lossVal := e.loss.ForwardShard(pred, yb, grad, totalRows)
	buf := e.fold.Buffer(chunk) // chunk 0 writes the master grads in place
	bindGrads(rep.params, e.sizes, buf)
	rep.net.backwardTrain(grad)
	e.fold.Deliver(chunk, buf)
	return lossVal
}

// runBatchGathered is runBatch on a pre-gathered minibatch (the
// pipelined trainer's path): shard c processes rows [s, t) of xb/yb as
// zero-copy views instead of gathering them itself. Bit-identical to
// runBatch over the same rows — the shards see the same row values
// under the same shard decomposition, and the fold order is unchanged.
func (e *shardEngine) runBatchGathered(xb, yb *tensor.Tensor) float64 {
	rows := xb.Rows()
	k := shardCount(rows, e.shards)
	e.fold.Begin(e.flat, k)
	if cap(e.shardLoss) < k {
		e.shardLoss = make([]float64, k)
	}
	shardLoss := e.shardLoss[:k]
	workers := len(e.reps)
	if workers > k {
		workers = k
	}
	parallel.ForPoolWorkers(k, workers, func(w, c int) {
		s, t := parallel.ChunkBounds(rows, k, c)
		shardLoss[c] = e.runShardRows(e.reps[w], rowView(xb, s, t), rowView(yb, s, t), rows, c)
	})
	var total float64
	for _, l := range shardLoss {
		total += l
	}
	return total
}

// rowView returns a zero-copy 2D view of rows [s, t) of a 2D tensor.
func rowView(t *tensor.Tensor, s, e int) *tensor.Tensor {
	c := t.Shape[1]
	return &tensor.Tensor{Shape: []int{e - s, c}, Data: t.Data[s*c : e*c]}
}

// batchPipeline double-buffers gathered minibatches for the pipelined
// trainer: while the optimizer steps batch t, the other buffer is
// filled with batch t+1 on a parallel.Async goroutine. The prefetch
// reads only the corpus and the shuffle permutation — both untouched
// until the next epoch's shuffle, which runs after the last batch's
// wait — and writes only the inactive buffer, so the overlap is
// deterministic by construction. The first batch of every epoch is
// gathered synchronously (there is nothing to overlap it with), and no
// prefetch crosses an epoch boundary.
type batchPipeline struct {
	x, y       *tensor.Tensor
	cur        int
	bufX, bufY [2]*tensor.Tensor
}

// gather fills buffer slot with the given corpus rows.
func (p *batchPipeline) gather(slot int, rows []int) {
	xb := ensure2D(&p.bufX[slot], len(rows), p.x.Cols())
	yb := ensure2D(&p.bufY[slot], len(rows), p.y.Cols())
	tensor.GatherRows(xb, p.x, rows)
	tensor.GatherRows(yb, p.y, rows)
}

// Fit trains the network on (x, y) with optional validation set
// (xVal/yVal may be nil). Rows of x and y are samples; a trailing
// partial batch is trained on like any other (no samples are dropped).
// Returns the training history.
//
// Training runs on the sharded data-parallel engine; see
// TrainConfig.Workers for the determinism contract.
func Fit(net *Network, x, y, xVal, yVal *tensor.Tensor, cfg TrainConfig) (History, error) {
	if err := validateFit(x, y, xVal, yVal, cfg); err != nil {
		return History{}, err
	}
	if x.Cols() != net.InDim {
		return History{}, fmt.Errorf("nn: input width %d, network wants %d", x.Cols(), net.InDim)
	}
	if y.Cols() != net.OutDim() {
		return History{}, fmt.Errorf("nn: target width %d, network outputs %d", y.Cols(), net.OutDim())
	}
	perm := make([]int, x.Rows())
	for i := range perm {
		perm[i] = i
	}
	fp := ""
	if cfg.Checkpoint.enabled() {
		fp = trainFingerprint(x, y, xVal, yVal, cfg)
	}
	return fitLoop(net, x, y, xVal, yVal, cfg, 0, rng.New(cfg.Seed), perm, History{}, fp)
}

// validateFit checks the configuration and data shapes shared by Fit
// and ResumeFit (network-dependent checks stay with the callers —
// ResumeFit only has a network after loading the checkpoint).
func validateFit(x, y, xVal, yVal *tensor.Tensor, cfg TrainConfig) error {
	if cfg.Epochs <= 0 {
		return fmt.Errorf("nn: Epochs = %d, need > 0", cfg.Epochs)
	}
	if cfg.BatchSize <= 0 {
		return fmt.Errorf("nn: BatchSize = %d, need > 0", cfg.BatchSize)
	}
	if cfg.Optimizer == nil || cfg.Loss == nil {
		return fmt.Errorf("nn: Optimizer and Loss are required")
	}
	if cfg.Checkpoint.enabled() {
		if _, ok := cfg.Optimizer.(optimizerCheckpointer); !ok {
			return fmt.Errorf("nn: optimizer %T cannot be checkpointed (no serializable state)", cfg.Optimizer)
		}
	}
	if x.Rows() != y.Rows() {
		return fmt.Errorf("nn: sample count mismatch x=%d y=%d", x.Rows(), y.Rows())
	}
	if (xVal == nil) != (yVal == nil) {
		return fmt.Errorf("nn: validation inputs and targets must both be set or both nil")
	}
	if x.Rows() == 0 {
		return fmt.Errorf("nn: empty training set")
	}
	return nil
}

// fitLoop runs epochs [start, cfg.Epochs) with the given shuffle state
// and accumulated history — the shared engine behind Fit (start = 0,
// fresh state) and ResumeFit (state restored from a checkpoint). perm
// is owned by the loop; fingerprint is stamped into every checkpoint.
func fitLoop(net *Network, x, y, xVal, yVal *tensor.Tensor, cfg TrainConfig,
	start int, r *rng.Source, perm []int, hist History, fingerprint string) (History, error) {
	nSamples := x.Rows()
	bs := cfg.BatchSize
	if bs > nSamples {
		bs = nSamples
	}
	eng, err := newShardEngine(net, cfg.Loss, cfg.Workers, cfg.Shards, bs)
	if err != nil {
		return hist, err
	}
	net.InvalidateF32()    // training moves the weights; drop stale converted copies
	params := net.Params() // stable across batches; avoids per-batch rebuilds
	logEvery := cfg.LogEvery
	if logEvery <= 0 {
		logEvery = 1
	}
	var pipe *batchPipeline
	if cfg.Pipeline {
		pipe = &batchPipeline{x: x, y: y}
	}
	for epoch := start; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(nSamples, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var epochLoss float64
		var batches int
		if pipe != nil {
			// First batch of the epoch: nothing to overlap, gather inline.
			pipe.gather(pipe.cur, perm[:bs])
		}
		for bstart := 0; bstart < nSamples; bstart += bs {
			bend := bstart + bs
			if bend > nSamples {
				bend = nSamples
			}
			var loss float64
			var wait func()
			if pipe != nil {
				loss = eng.runBatchGathered(pipe.bufX[pipe.cur], pipe.bufY[pipe.cur])
				if math.IsNaN(loss) || math.IsInf(loss, 0) {
					return hist, fmt.Errorf("nn: non-finite loss %v at epoch %d batch %d", loss, epoch, batches)
				}
				// Prefetch batch t+1 into the inactive buffer while the
				// clip + optimizer step below run on batch t's gradient.
				// Launched only after the loss check so an error return
				// never leaves a gather in flight; never crosses the
				// epoch boundary (the next epoch reshuffles perm).
				if bend < nSamples {
					next := 1 - pipe.cur
					nend := bend + bs
					if nend > nSamples {
						nend = nSamples
					}
					rows := perm[bend:nend]
					wait = parallel.Async(func() { pipe.gather(next, rows) })
				}
			} else {
				loss = eng.runBatch(x, y, perm[bstart:bend])
				if math.IsNaN(loss) || math.IsInf(loss, 0) {
					return hist, fmt.Errorf("nn: non-finite loss %v at epoch %d batch %d", loss, epoch, batches)
				}
			}
			if cfg.ClipNorm > 0 {
				ClipGradNorm(params, cfg.ClipNorm)
			}
			cfg.Optimizer.Step(params)
			if wait != nil {
				wait()
				pipe.cur = 1 - pipe.cur
			}
			epochLoss += loss
			batches++
		}
		stats := EpochStats{Epoch: epoch, TrainLoss: epochLoss / float64(batches), ValMAE: math.NaN(), ValMax: math.NaN()}
		if xVal != nil {
			m := evalReplicas(eng.reps, xVal, yVal, bs, &eng.evalParts)
			stats.ValMAE = m.MAE
			stats.ValMax = m.MaxErr
		}
		hist.Epochs = append(hist.Epochs, stats)
		if cfg.Log != nil && (epoch+1)%logEvery == 0 {
			if xVal != nil {
				fmt.Fprintf(cfg.Log, "epoch %3d/%d  loss %.6g  val MAE %.6g  val max %.6g\n",
					epoch+1, cfg.Epochs, stats.TrainLoss, stats.ValMAE, stats.ValMax)
			} else {
				fmt.Fprintf(cfg.Log, "epoch %3d/%d  loss %.6g\n", epoch+1, cfg.Epochs, stats.TrainLoss)
			}
		}
		if cfg.Checkpoint.enabled() && cfg.Checkpoint.due(epoch, cfg.Epochs) {
			file := ckptFile{
				Version:     ckptVersion,
				Fingerprint: fingerprint,
				Epoch:       epoch + 1,
				Opt:         cfg.Optimizer.(optimizerCheckpointer).captureState(params),
				RNG:         r.Snapshot(),
				Perm:        perm,
				Hist:        hist,
			}
			if file.Net, err = netToFile(net); err != nil {
				return hist, err
			}
			if err := writeCheckpoint(cfg.Checkpoint, file); err != nil {
				return hist, err
			}
		}
	}
	return hist, nil
}

// Metrics are the paper's Table-I error statistics over a dataset.
type Metrics struct {
	// MAE is the mean absolute error over all outputs and samples
	// (paper Eq. 6).
	MAE float64
	// MaxErr is the largest absolute error.
	MaxErr float64
	// RMSE is the root-mean-square error (extra, not in the paper).
	RMSE float64
	// N is the number of samples evaluated.
	N int
}

// Evaluate computes the Table-I metrics of the network on (x, y),
// processing in batches of batchSize. Equivalent to EvaluateWorkers
// with workers = 0 (GOMAXPROCS).
func Evaluate(net *Network, x, y *tensor.Tensor, batchSize int) Metrics {
	return EvaluateWorkers(net, x, y, batchSize, 0)
}

// EvaluateWorkers is Evaluate with an explicit worker count
// (0 = GOMAXPROCS). Batches are scored on per-worker replicas and the
// per-batch error sums are combined in batch-index order, so the
// metrics are bit-identical at every workers value and every
// GOMAXPROCS — the decomposition depends only on (samples, batchSize).
func EvaluateWorkers(net *Network, x, y *tensor.Tensor, batchSize, workers int) Metrics {
	n := x.Rows()
	if n != y.Rows() {
		panic(fmt.Sprintf("nn: Evaluate sample mismatch %d vs %d", n, y.Rows()))
	}
	if n == 0 {
		return Metrics{}
	}
	w := resolveWorkers(workers)
	// Clamp to the batch count before building replicas — extra
	// replicas past one-per-batch could never run.
	bsEff := batchSize
	if bsEff <= 0 {
		bsEff = 64
	}
	if nb := (n + bsEff - 1) / bsEff; w > nb {
		w = nb
	}
	reps, err := makeReplicas(net, w)
	if err != nil {
		// Nets with unreplicable layers fall back to scoring on the
		// master network itself, serially.
		return evaluateSerial(net, x, y, batchSize)
	}
	var parts []float64
	return evalReplicas(reps, x, y, batchSize, &parts)
}

// evalReplicas scores (x, y) on the given replicas: one task per batch,
// per-batch partial sums (|err|, err^2, max|err|) combined in batch
// order. partials is a grow-only scratch slice owned by the caller so
// per-epoch validation inside Fit does not allocate.
func evalReplicas(reps []*replica, x, y *tensor.Tensor, batchSize int, partials *[]float64) Metrics {
	n := x.Rows()
	if n != y.Rows() {
		panic(fmt.Sprintf("nn: Evaluate sample mismatch %d vs %d", n, y.Rows()))
	}
	if n == 0 {
		return Metrics{}
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	if batchSize > n {
		batchSize = n
	}
	nb := (n + batchSize - 1) / batchSize
	if cap(*partials) < 3*nb {
		*partials = make([]float64, 3*nb)
	}
	parts := (*partials)[:3*nb]
	workers := len(reps)
	if workers > nb {
		workers = nb
	}
	parallel.ForPoolWorkers(nb, workers, func(w, b int) {
		rep := reps[w]
		start := b * batchSize
		end := start + batchSize
		if end > n {
			end = n
		}
		rows := end - start
		xb := ensure2D(&rep.xb, rows, x.Cols())
		for i := 0; i < rows; i++ {
			copy(xb.Row(i), x.Row(start+i))
		}
		pred := rep.net.Forward(xb)
		var sumAbs, sumSq, maxErr float64
		for i := 0; i < rows; i++ {
			pr := pred.Row(i)
			tr := y.Row(start + i)
			for j := range pr {
				d := math.Abs(pr[j] - tr[j])
				sumAbs += d
				sumSq += d * d
				if d > maxErr {
					maxErr = d
				}
			}
		}
		parts[3*b], parts[3*b+1], parts[3*b+2] = sumAbs, sumSq, maxErr
	})
	var sumAbs, sumSq, maxErr float64
	for b := 0; b < nb; b++ {
		sumAbs += parts[3*b]
		sumSq += parts[3*b+1]
		if parts[3*b+2] > maxErr {
			maxErr = parts[3*b+2]
		}
	}
	count := n * y.Cols()
	if count == 0 {
		return Metrics{}
	}
	return Metrics{
		MAE:    sumAbs / float64(count),
		MaxErr: maxErr,
		RMSE:   math.Sqrt(sumSq / float64(count)),
		N:      n,
	}
}

// evaluateSerial is the reference implementation: one batch at a time
// on the master network. Kept for nets the replica machinery cannot
// mirror. The batch tensor is grow-only scratch — the trailing partial
// batch reslices it instead of allocating.
func evaluateSerial(net *Network, x, y *tensor.Tensor, batchSize int) Metrics {
	n := x.Rows()
	if batchSize <= 0 {
		batchSize = 64
	}
	if batchSize > n {
		batchSize = n
	}
	var sumAbs, sumSq, maxErr float64
	var count int
	var xb *tensor.Tensor
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		rows := end - start
		batch := ensure2D(&xb, rows, x.Cols())
		for bi := 0; bi < rows; bi++ {
			copy(batch.Row(bi), x.Row(start+bi))
		}
		pred := net.Forward(batch)
		for bi := 0; bi < rows; bi++ {
			pr := pred.Row(bi)
			tr := y.Row(start + bi)
			for j := range pr {
				d := math.Abs(pr[j] - tr[j])
				sumAbs += d
				sumSq += d * d
				if d > maxErr {
					maxErr = d
				}
				count++
			}
		}
	}
	if count == 0 {
		return Metrics{}
	}
	return Metrics{
		MAE:    sumAbs / float64(count),
		MaxErr: maxErr,
		RMSE:   math.Sqrt(sumSq / float64(count)),
		N:      n,
	}
}
