package nn

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dlpic/internal/rng"
	"dlpic/internal/tensor"
)

// Rectangular (non-square) images through conv and pool: the paper's
// phase-space histograms are square, but the layers must not assume it.
func TestConvRectangularImage(t *testing.T) {
	r := rng.New(31)
	net, err := NewNetwork(2*6*10,
		NewConv2D(2, 6, 10, 3, 3, r), NewReLU(),
		NewMaxPool2D(3, 6, 10),
		NewDense(3*3*5, 4, r))
	if err != nil {
		t.Fatal(err)
	}
	gradCheckNet(t, net, 2*6*10, 4, 32)
}

func TestCNNRequiresDivisibleBy4(t *testing.T) {
	if _, err := NewCNN(CNNConfig{H: 6, W: 8, OutDim: 4, Channels1: 2, Channels2: 2,
		Hidden: 8, HiddenLayers: 1}, rng.New(1)); err == nil {
		t.Fatal("H=6 should be rejected (two pooling stages)")
	}
}

func TestConvKernelValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("even kernel size should panic")
		}
	}()
	NewConv2D(1, 4, 4, 1, 2, rng.New(1))
}

func TestMaxPoolOddDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd pooling dims should panic")
		}
	}()
	NewMaxPool2D(1, 3, 4)
}

func TestPredict1CNNPath(t *testing.T) {
	r := rng.New(33)
	net, err := NewCNN(CNNConfig{H: 8, W: 8, OutDim: 4, Channels1: 2, Channels2: 2,
		Kernel: 3, Hidden: 8, HiddenLayers: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 64)
	for i := range in {
		in[i] = r.Float64()
	}
	out := make([]float64, 4)
	net.Predict1(in, out)
	for _, v := range out {
		if math.IsNaN(v) {
			t.Fatal("CNN Predict1 produced NaN")
		}
	}
	// Batch forward agrees.
	x := tensor.FromSlice(append([]float64(nil), in...), 1, 64)
	ref := net.Forward(x)
	for i := range out {
		if math.Abs(out[i]-ref.Data[i]) > 1e-14 {
			t.Fatalf("Predict1 CNN mismatch at %d", i)
		}
	}
}

func TestFitWithClipNorm(t *testing.T) {
	r := rng.New(34)
	net, _ := NewMLP(MLPConfig{InDim: 4, OutDim: 2, Hidden: 8, HiddenLayers: 1}, r)
	x := randBatch(r, 32, 4)
	y := randBatch(r, 32, 2)
	y.Scale(100) // large targets force large early gradients
	hist, err := Fit(net, x, y, nil, nil, TrainConfig{
		Epochs: 10, BatchSize: 16, Optimizer: NewAdam(1e-2), Loss: MSE{},
		ClipNorm: 1.0, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range hist.Epochs {
		if math.IsNaN(e.TrainLoss) || math.IsInf(e.TrainLoss, 0) {
			t.Fatal("clipped training produced non-finite loss")
		}
	}
}

func TestFitLogOutput(t *testing.T) {
	r := rng.New(35)
	net, _ := NewMLP(MLPConfig{InDim: 4, OutDim: 2, Hidden: 4, HiddenLayers: 1}, r)
	x := randBatch(r, 16, 4)
	y := randBatch(r, 16, 2)
	var sb strings.Builder
	_, err := Fit(net, x, y, x, y, TrainConfig{
		Epochs: 4, BatchSize: 8, Optimizer: NewAdam(1e-3), Loss: MSE{},
		Log: &sb, LogEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "epoch") != 2 {
		t.Fatalf("LogEvery=2 over 4 epochs should log twice, got: %q", out)
	}
	if !strings.Contains(out, "val MAE") {
		t.Fatalf("validation metrics missing from log: %q", out)
	}
}

func TestFitNonFiniteLossAborts(t *testing.T) {
	r := rng.New(36)
	net, _ := NewMLP(MLPConfig{InDim: 2, OutDim: 1, Hidden: 4, HiddenLayers: 1}, r)
	x := randBatch(r, 8, 2)
	y := randBatch(r, 8, 1)
	// Poison an *output-layer* weight: a NaN in a hidden layer would be
	// swallowed by ReLU (NaN > 0 is false), so the rectifier itself is a
	// NaN firewall — the output layer is the exposed surface.
	params := net.Params()
	params[len(params)-2].W.Data[0] = math.NaN()
	x.Fill(1) // ensure the poisoned weight is touched
	_, err := Fit(net, x, y, nil, nil, TrainConfig{
		Epochs: 2, BatchSize: 4, Optimizer: NewAdam(1e-3), Loss: MSE{},
	})
	if err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("expected non-finite loss error, got %v", err)
	}
}

func TestHistoryFinalEmpty(t *testing.T) {
	var h History
	if f := h.Final(); f.Epoch != 0 || f.TrainLoss != 0 {
		t.Fatalf("empty history Final = %+v", f)
	}
}

func TestSaveRejectsUnknownLayer(t *testing.T) {
	// A network smuggled an unserializable layer: Save must fail cleanly.
	net := &Network{InDim: 2, Layers: []Layer{fakeLayer{}}}
	var buf bytes.Buffer
	if err := Save(net, &buf); err == nil {
		t.Fatal("unknown layer should fail to serialize")
	}
}

type fakeLayer struct{}

func (fakeLayer) Forward(x *tensor.Tensor) *tensor.Tensor   { return x }
func (fakeLayer) Backward(dy *tensor.Tensor) *tensor.Tensor { return dy }
func (fakeLayer) Params() []*Param                          { return nil }
func (fakeLayer) OutDim(in int) (int, error)                { return in, nil }
func (fakeLayer) Name() string                              { return "fake" }

func TestEvaluateEmptyBatchSizeDefaults(t *testing.T) {
	r := rng.New(37)
	net, _ := NewNetwork(2, NewDense(2, 2, r))
	x := randBatch(r, 5, 2)
	y := randBatch(r, 5, 2)
	m := Evaluate(net, x, y, 0) // 0 -> default batch
	if m.N != 5 {
		t.Fatalf("N = %d", m.N)
	}
}

// Training is architecture-agnostic: the ResMLP trains on the same task
// through the same loop.
func TestResMLPTrains(t *testing.T) {
	r := rng.New(38)
	net, err := NewResMLP(ResMLPConfig{InDim: 8, OutDim: 4, Hidden: 16, Blocks: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	x := randBatch(r, 64, 8)
	w := tensor.New(8, 4)
	w.RandomNormal(r, 0.5)
	y := tensor.New(64, 4)
	tensor.MatMul(y, x, w, false, false)
	hist, err := Fit(net, x, y, nil, nil, TrainConfig{
		Epochs: 40, BatchSize: 16, Optimizer: NewAdam(2e-3), Loss: MSE{}, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Final().TrainLoss > hist.Epochs[0].TrainLoss/10 {
		t.Fatalf("ResMLP barely trained: %v -> %v",
			hist.Epochs[0].TrainLoss, hist.Final().TrainLoss)
	}
}
