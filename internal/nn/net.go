package nn

import (
	"fmt"

	"dlpic/internal/rng"
	"dlpic/internal/tensor"
)

// Network is a sequential stack of layers.
type Network struct {
	Layers []Layer
	// InDim is the expected per-sample input width.
	InDim int

	in1 *tensor.Tensor // batch-1 scratch for Predict1
	inB *tensor.Tensor // batched scratch for PredictBatch
	p32 *Predictor32   // lazy converted-weights cache for PredictBatch32
}

// NewNetwork validates that the layer widths chain correctly from inDim
// and returns the container.
func NewNetwork(inDim int, layers ...Layer) (*Network, error) {
	if inDim <= 0 {
		return nil, fmt.Errorf("nn: network input width %d invalid", inDim)
	}
	if len(layers) == 0 {
		return nil, fmt.Errorf("nn: network needs at least one layer")
	}
	w := inDim
	for i, l := range layers {
		var err error
		w, err = l.OutDim(w)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %w", i, l.Name(), err)
		}
	}
	return &Network{Layers: layers, InDim: inDim}, nil
}

// OutDim returns the per-sample output width.
func (n *Network) OutDim() int {
	w := n.InDim
	for _, l := range n.Layers {
		w, _ = l.OutDim(w)
	}
	return w
}

// Forward runs the batch through every layer.
func (n *Network) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates dL/d(output) to dL/d(input), writing this pass's
// parameter gradients in every layer (see the Layer contract:
// gradients are overwritten, not accumulated across passes).
func (n *Network) Backward(dy *tensor.Tensor) *tensor.Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dy = n.Layers[i].Backward(dy)
	}
	return dy
}

// inputGradFree is implemented by layers that can compute their
// parameter gradients without forming dL/d(input). The first layer of
// a network has no upstream consumer for its input gradient, so the
// trainer skips it — for the paper's MLP that avoids one extra stream
// of the widest weight matrix (the 4096-column input projection) per
// backward pass.
type inputGradFree interface {
	backwardParamsOnly(dy *tensor.Tensor)
}

// backwardTrain is Backward minus the first layer's input gradient,
// which no trainer consumes. Parameter gradients are bit-identical to
// Backward's.
func (n *Network) backwardTrain(dy *tensor.Tensor) {
	for i := len(n.Layers) - 1; i >= 1; i-- {
		dy = n.Layers[i].Backward(dy)
	}
	if pg, ok := n.Layers[0].(inputGradFree); ok {
		pg.backwardParamsOnly(dy)
		return
	}
	n.Layers[0].Backward(dy)
}

// Params returns all trainable parameters.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears every gradient accumulator.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.G.Zero()
	}
}

// NumParams returns the total trainable scalar count.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.W.Len()
	}
	return total
}

// Predict1 evaluates the network on a single sample, writing the result
// into out (which must have length OutDim()). It reuses an internal
// batch-1 tensor, so it is allocation-light in steady state — this is
// the path the DL-PIC simulation loop calls every time step.
func (n *Network) Predict1(in, out []float64) {
	if len(in) != n.InDim {
		panic(fmt.Sprintf("nn: Predict1 input length %d, want %d", len(in), n.InDim))
	}
	if n.in1 == nil {
		n.in1 = tensor.New(1, n.InDim)
	}
	copy(n.in1.Data, in)
	y := n.Forward(n.in1)
	if len(out) != y.Cols() {
		panic(fmt.Sprintf("nn: Predict1 output length %d, want %d", len(out), y.Cols()))
	}
	copy(out, y.Data)
}

// PredictBatch evaluates the network on batch stacked samples: in holds
// batch rows of InDim values back to back, and the corresponding rows
// of OutDim() outputs are written to out in the same order. One Forward
// pass services the whole stack, so each layer's weight matrix is
// streamed once per batch instead of once per sample (see the k-outer
// GEMM in internal/tensor) — the primitive the internal/batch inference
// server uses to amortize the DL field solve across concurrent
// simulations.
//
// Row r of the result is bit-identical to Predict1 on row r: every
// layer computes output rows independently from the matching input row
// with the same per-element operation order, so batching — at any
// batch size and in any row order — never changes a sample's result.
// Like Predict1 it reuses an internal input tensor and is
// allocation-light in steady state for a fixed batch size.
func (n *Network) PredictBatch(batch int, in, out []float64) {
	if batch < 1 {
		panic(fmt.Sprintf("nn: PredictBatch batch %d, want >= 1", batch))
	}
	if len(in) != batch*n.InDim {
		panic(fmt.Sprintf("nn: PredictBatch input length %d, want %d x %d", len(in), batch, n.InDim))
	}
	if outDim := n.OutDim(); len(out) != batch*outDim {
		panic(fmt.Sprintf("nn: PredictBatch output length %d, want %d x %d", len(out), batch, outDim))
	}
	ensure2D(&n.inB, batch, n.InDim)
	copy(n.inB.Data, in)
	y := n.Forward(n.inB)
	copy(out, y.Data)
}

// Summary returns a human-readable architecture description.
func (n *Network) Summary() string {
	s := fmt.Sprintf("input(%d)", n.InDim)
	for _, l := range n.Layers {
		s += " -> " + l.Name()
	}
	s += fmt.Sprintf("  [%d params]", n.NumParams())
	return s
}

// ---------------------------------------------------------------------------
// Paper architectures

// MLPConfig sizes the paper's MLP: Hidden units per layer (paper: 1024),
// HiddenLayers count (paper: 3), input and output widths.
type MLPConfig struct {
	InDim, OutDim int
	Hidden        int
	HiddenLayers  int
}

// NewMLP builds the paper's §IV-A MLP: HiddenLayers fully connected ReLU
// layers of Hidden units and a linear output of OutDim units.
func NewMLP(cfg MLPConfig, r *rng.Source) (*Network, error) {
	if cfg.Hidden <= 0 || cfg.HiddenLayers <= 0 {
		return nil, fmt.Errorf("nn: invalid MLP config %+v", cfg)
	}
	var layers []Layer
	w := cfg.InDim
	for i := 0; i < cfg.HiddenLayers; i++ {
		layers = append(layers, NewDense(w, cfg.Hidden, r), NewReLU())
		w = cfg.Hidden
	}
	layers = append(layers, NewDense(w, cfg.OutDim, r))
	return NewNetwork(cfg.InDim, layers...)
}

// CNNConfig sizes the paper's CNN: two blocks of two same-padded
// convolutions followed by 2x2 max pooling, then the same dense stack as
// the MLP. The paper fixes the dense part (3x1024 ReLU + 64 linear) but
// not the channel counts; Channels1/Channels2 parameterize them.
type CNNConfig struct {
	H, W                 int // input image size (phase-space bins)
	OutDim               int
	Channels1, Channels2 int
	Kernel               int
	Hidden, HiddenLayers int
}

// NewCNN builds the paper's §IV-A CNN.
func NewCNN(cfg CNNConfig, r *rng.Source) (*Network, error) {
	if cfg.H%4 != 0 || cfg.W%4 != 0 {
		return nil, fmt.Errorf("nn: CNN input %dx%d must be divisible by 4 (two pooling stages)", cfg.H, cfg.W)
	}
	if cfg.Channels1 <= 0 || cfg.Channels2 <= 0 || cfg.Hidden <= 0 || cfg.HiddenLayers <= 0 {
		return nil, fmt.Errorf("nn: invalid CNN config %+v", cfg)
	}
	k := cfg.Kernel
	if k == 0 {
		k = 3
	}
	h, w := cfg.H, cfg.W
	var layers []Layer
	// Block 1.
	layers = append(layers,
		NewConv2D(1, h, w, cfg.Channels1, k, r), NewReLU(),
		NewConv2D(cfg.Channels1, h, w, cfg.Channels1, k, r), NewReLU(),
		NewMaxPool2D(cfg.Channels1, h, w),
	)
	h, w = h/2, w/2
	// Block 2.
	layers = append(layers,
		NewConv2D(cfg.Channels1, h, w, cfg.Channels2, k, r), NewReLU(),
		NewConv2D(cfg.Channels2, h, w, cfg.Channels2, k, r), NewReLU(),
		NewMaxPool2D(cfg.Channels2, h, w),
	)
	h, w = h/2, w/2
	// Dense stack.
	width := cfg.Channels2 * h * w
	for i := 0; i < cfg.HiddenLayers; i++ {
		layers = append(layers, NewDense(width, cfg.Hidden, r), NewReLU())
		width = cfg.Hidden
	}
	layers = append(layers, NewDense(width, cfg.OutDim, r))
	return NewNetwork(cfg.H*cfg.W, layers...)
}

// ResMLPConfig sizes the residual-MLP extension: an input projection,
// Blocks residual blocks, and a linear readout.
type ResMLPConfig struct {
	InDim, OutDim int
	Hidden        int
	Blocks        int
}

// NewResMLP builds the residual-MLP variant from the paper's discussion.
func NewResMLP(cfg ResMLPConfig, r *rng.Source) (*Network, error) {
	if cfg.Hidden <= 0 || cfg.Blocks <= 0 {
		return nil, fmt.Errorf("nn: invalid ResMLP config %+v", cfg)
	}
	layers := []Layer{NewDense(cfg.InDim, cfg.Hidden, r), NewReLU()}
	for i := 0; i < cfg.Blocks; i++ {
		layers = append(layers, NewResidual(cfg.Hidden, r))
	}
	layers = append(layers, NewDense(cfg.Hidden, cfg.OutDim, r))
	return NewNetwork(cfg.InDim, layers...)
}

// ensureRng returns r or a fresh deterministic source.
func ensureRng(r *rng.Source) *rng.Source {
	if r == nil {
		return rng.New(0)
	}
	return r
}
