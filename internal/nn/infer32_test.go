package nn

import (
	"math"
	"testing"

	"dlpic/internal/rng"
)

// mlp32 builds a small paper-flavoured MLP for the f32 tests.
func mlp32(t *testing.T) *Network {
	t.Helper()
	net, err := NewMLP(MLPConfig{InDim: 24, OutDim: 8, Hidden: 48, HiddenLayers: 2}, rng.New(700))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestPredictor32Drift is the tier-1 accuracy gate on the float32 path:
// per-element drift against the float64 forward pass must stay within a
// float32-rounding budget. The bound is the harness's MaxRel — max
// absolute drift normalized by the largest float64 output — with the
// tolerance sized for ~100-term float32 dot products (k * 2^-23 with
// k ≈ 50 gives ~6e-6; 1e-4 leaves a 16x margin so the gate catches
// algorithmic mistakes, not rounding-noise weather).
func TestPredictor32Drift(t *testing.T) {
	net := mlp32(t)
	r := rng.New(701)
	x := randBatch(r, 96, 24)
	d, err := MeasureDrift32(net, x, 32)
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 96*8 {
		t.Fatalf("drift compared %d elements, want %d", d.N, 96*8)
	}
	if d.Scale == 0 {
		t.Fatal("drift harness saw all-zero float64 outputs")
	}
	if d.MaxRel > 1e-4 {
		t.Errorf("float32 drift MaxRel %g exceeds 1e-4 (MaxAbs %g, Scale %g)", d.MaxRel, d.MaxAbs, d.Scale)
	}
	if d.MeanAbs > d.MaxAbs {
		t.Errorf("MeanAbs %g > MaxAbs %g", d.MeanAbs, d.MaxAbs)
	}
}

// TestPredictor32BatchInvariance pins the batch.Predictor contract on
// the f32 path: row r of a stacked batch is bit-identical to a batch-1
// call on row r — what makes the batched f32 server equivalent to
// per-call f32 solves.
func TestPredictor32BatchInvariance(t *testing.T) {
	net := mlp32(t)
	p, err := NewPredictor32(net)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(702)
	x := randBatch(r, 17, 24)
	batched := make([]float64, 17*8)
	p.PredictBatch(17, x.Data, batched)
	row := make([]float64, 8)
	for i := 0; i < 17; i++ {
		p.PredictBatch(1, x.Data[i*24:(i+1)*24], row)
		for j := range row {
			if math.Float64bits(row[j]) != math.Float64bits(batched[i*8+j]) {
				t.Fatalf("row %d elem %d: batch-1 %v differs from stacked %v", i, j, row[j], batched[i*8+j])
			}
		}
	}
}

// TestPredictor32RejectsUnsupported: conversion must refuse
// architectures with non-dense layers instead of silently degrading.
func TestPredictor32RejectsUnsupported(t *testing.T) {
	cnn, err := NewCNN(CNNConfig{H: 8, W: 8, OutDim: 4, Channels1: 2, Channels2: 2,
		Kernel: 3, Hidden: 8, HiddenLayers: 1}, rng.New(703))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPredictor32(cnn); err == nil {
		t.Error("NewPredictor32 accepted a CNN")
	}
	if err := cnn.PredictBatch32(1, make([]float64, 64), make([]float64, 4)); err == nil {
		t.Error("PredictBatch32 accepted a CNN")
	}
}

// TestPredictBatch32CacheInvalidation: training must drop the cached
// converted weights, so post-training float32 predictions reflect the
// new float64 weights, not the ones converted before Fit ran.
func TestPredictBatch32CacheInvalidation(t *testing.T) {
	net := mlp32(t)
	r := rng.New(704)
	in := randBatch(r, 1, 24)
	out := make([]float64, 8)
	if err := net.PredictBatch32(1, in.Data, out); err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), out...)
	x := randBatch(r, 64, 24)
	y := randBatch(r, 64, 8)
	if _, err := Fit(net, x, y, nil, nil, TrainConfig{
		Epochs: 2, BatchSize: 32, Optimizer: NewAdam(1e-2), Loss: MSE{}, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.PredictBatch32(1, in.Data, out); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range out {
		if out[i] != before[i] {
			same = false
		}
	}
	if same {
		t.Error("PredictBatch32 served stale pre-training weights after Fit")
	}
	// And the rebuilt cache must match a fresh conversion exactly.
	p, err := NewPredictor32(net)
	if err != nil {
		t.Fatal(err)
	}
	fresh := make([]float64, 8)
	p.PredictBatch(1, in.Data, fresh)
	for i := range out {
		if math.Float64bits(out[i]) != math.Float64bits(fresh[i]) {
			t.Fatalf("cached predictor differs from fresh conversion at %d", i)
		}
	}
}
