package nn

import (
	"bytes"
	"math"
	"testing"

	"dlpic/internal/rng"
	"dlpic/internal/tensor"
)

func randBatch(r *rng.Source, rows, cols int) *tensor.Tensor {
	t := tensor.New(rows, cols)
	t.RandomNormal(r, 1)
	return t
}

// ---------------------------------------------------------------------------
// Gradient checks: every layer type against finite differences.

func gradCheckNet(t *testing.T, net *Network, inDim, outDim int, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	x := randBatch(r, 3, inDim)
	y := randBatch(r, 3, outDim)
	if worst := GradCheck(net, MSE{}, x, y, 1e-6, 1); worst > 1e-4 {
		t.Fatalf("gradient check failed: worst relative error %v", worst)
	}
}

func TestGradCheckDense(t *testing.T) {
	r := rng.New(1)
	net, err := NewNetwork(5, NewDense(5, 4, r))
	if err != nil {
		t.Fatal(err)
	}
	gradCheckNet(t, net, 5, 4, 2)
}

func TestGradCheckMLP(t *testing.T) {
	net, err := NewMLP(MLPConfig{InDim: 6, OutDim: 3, Hidden: 8, HiddenLayers: 2}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	gradCheckNet(t, net, 6, 3, 4)
}

func TestGradCheckConv(t *testing.T) {
	r := rng.New(5)
	net, err := NewNetwork(16, NewConv2D(1, 4, 4, 2, 3, r))
	if err != nil {
		t.Fatal(err)
	}
	gradCheckNet(t, net, 16, 32, 6)
}

func TestGradCheckConvMultiChannel(t *testing.T) {
	r := rng.New(7)
	net, err := NewNetwork(32,
		NewConv2D(2, 4, 4, 3, 3, r), NewReLU(), NewConv2D(3, 4, 4, 2, 3, r))
	if err != nil {
		t.Fatal(err)
	}
	gradCheckNet(t, net, 32, 32, 8)
}

func TestGradCheckMaxPool(t *testing.T) {
	r := rng.New(9)
	net, err := NewNetwork(32, NewConv2D(1, 4, 8, 2, 3, r), NewMaxPool2D(2, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	gradCheckNet(t, net, 32, 2*2*4, 10)
}

func TestGradCheckFullCNN(t *testing.T) {
	net, err := NewCNN(CNNConfig{H: 8, W: 8, OutDim: 8, Channels1: 2, Channels2: 3,
		Kernel: 3, Hidden: 10, HiddenLayers: 2}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	gradCheckNet(t, net, 64, 8, 12)
}

func TestGradCheckResidual(t *testing.T) {
	net, err := NewResMLP(ResMLPConfig{InDim: 6, OutDim: 4, Hidden: 8, Blocks: 2}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	gradCheckNet(t, net, 6, 4, 14)
}

func TestGradCheckMAELoss(t *testing.T) {
	r := rng.New(15)
	net, err := NewNetwork(4, NewDense(4, 3, r))
	if err != nil {
		t.Fatal(err)
	}
	x := randBatch(r, 2, 4)
	y := randBatch(r, 2, 3)
	if worst := GradCheck(net, MAE{}, x, y, 1e-6, 1); worst > 1e-3 {
		t.Fatalf("MAE gradient check: worst %v", worst)
	}
}

func TestGradCheckHuberLoss(t *testing.T) {
	r := rng.New(16)
	net, err := NewNetwork(4, NewDense(4, 3, r))
	if err != nil {
		t.Fatal(err)
	}
	x := randBatch(r, 2, 4)
	y := randBatch(r, 2, 3)
	if worst := GradCheck(net, Huber{Delta: 0.5}, x, y, 1e-6, 1); worst > 1e-3 {
		t.Fatalf("Huber gradient check: worst %v", worst)
	}
}

func TestGradCheckPhysicsLoss(t *testing.T) {
	r := rng.New(17)
	net, err := NewNetwork(4, NewDense(4, 8, r))
	if err != nil {
		t.Fatal(err)
	}
	x := randBatch(r, 2, 4)
	y := randBatch(r, 2, 8)
	loss := PhysicsMSE{Dx: 0.1, LambdaDiv: 0.5, LambdaMean: 0.3}
	if worst := GradCheck(net, loss, x, y, 1e-6, 1); worst > 1e-4 {
		t.Fatalf("physics loss gradient check: worst %v", worst)
	}
}

// ---------------------------------------------------------------------------
// Layer semantics

func TestDenseForwardKnownValues(t *testing.T) {
	d := NewDense(2, 2, rng.New(1))
	copy(d.W.Data, []float64{1, 2, 3, 4}) // W[0][*]=[1,2], W[1][*]=[3,4]
	copy(d.B.Data, []float64{0.5, -0.5})
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	out := d.Forward(x)
	// y = [1+3, 2+4] + b = [4.5, 5.5]
	if math.Abs(out.At(0, 0)-4.5) > 1e-14 || math.Abs(out.At(0, 1)-5.5) > 1e-14 {
		t.Fatalf("dense output %v", out.Data)
	}
}

func TestReLUSemantics(t *testing.T) {
	a := NewReLU()
	x := tensor.FromSlice([]float64{-1, 0, 2}, 1, 3)
	out := a.Forward(x)
	want := []float64{0, 0, 2}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("relu forward %v", out.Data)
		}
	}
	dy := tensor.FromSlice([]float64{5, 5, 5}, 1, 3)
	dx := a.Backward(dy)
	wantDx := []float64{0, 0, 5}
	for i := range wantDx {
		if dx.Data[i] != wantDx[i] {
			t.Fatalf("relu backward %v", dx.Data)
		}
	}
}

func TestConvIdentityKernel(t *testing.T) {
	// A 3x3 kernel with only the center weight set copies the input.
	r := rng.New(2)
	c := NewConv2D(1, 4, 4, 1, 3, r)
	c.Wt.Zero()
	c.Wt.Data[4] = 1 // center of the 3x3
	c.B.Zero()
	x := randBatch(r, 2, 16)
	out := c.Forward(x)
	for i := range x.Data {
		if math.Abs(out.Data[i]-x.Data[i]) > 1e-14 {
			t.Fatalf("identity conv mismatch at %d", i)
		}
	}
}

func TestConvShiftKernelRespectsPadding(t *testing.T) {
	// Kernel that picks the left neighbor: output[x] = input[x-1], zero at
	// the left edge (same padding).
	r := rng.New(3)
	c := NewConv2D(1, 1, 4, 1, 3, r)
	// Row-major kernel [k=3]: index 0 = left tap (kx=0 => sx = x-1).
	c.Wt.Zero()
	c.Wt.Data[0] = 1
	c.B.Zero()
	// H=1: pad in y means ky=0 and ky=2 rows fall outside; center row
	// ky=1... but with H=1 and pad=1, only ky=1 hits the image. The left
	// tap is (ky=0) though — all out of image. Use kx variation on the
	// center row: index ky*K+kx = 1*3+0 = 3.
	c.Wt.Zero()
	c.Wt.Data[3] = 1
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 4)
	out := c.Forward(x)
	want := []float64{0, 1, 2, 3}
	for i := range want {
		if math.Abs(out.Data[i]-want[i]) > 1e-14 {
			t.Fatalf("shift conv = %v, want %v", out.Data, want)
		}
	}
}

func TestMaxPoolSemantics(t *testing.T) {
	m := NewMaxPool2D(1, 2, 4)
	x := tensor.FromSlice([]float64{
		1, 5, 2, 0,
		3, 4, 8, 1,
	}, 1, 8)
	out := m.Forward(x)
	if out.Cols() != 2 || out.Data[0] != 5 || out.Data[1] != 8 {
		t.Fatalf("maxpool forward %v", out.Data)
	}
	dy := tensor.FromSlice([]float64{10, 20}, 1, 2)
	dx := m.Backward(dy)
	// Gradient routes to positions of 5 (index 1) and 8 (index 6).
	want := []float64{0, 10, 0, 0, 0, 0, 20, 0}
	for i := range want {
		if dx.Data[i] != want[i] {
			t.Fatalf("maxpool backward %v, want %v", dx.Data, want)
		}
	}
}

func TestNetworkValidation(t *testing.T) {
	r := rng.New(4)
	if _, err := NewNetwork(0, NewDense(1, 1, r)); err == nil {
		t.Error("zero input width should fail")
	}
	if _, err := NewNetwork(5); err == nil {
		t.Error("no layers should fail")
	}
	if _, err := NewNetwork(5, NewDense(4, 3, r)); err == nil {
		t.Error("width mismatch should fail")
	}
	net, err := NewNetwork(4, NewDense(4, 3, r), NewReLU(), NewDense(3, 2, r))
	if err != nil {
		t.Fatal(err)
	}
	if net.OutDim() != 2 {
		t.Fatalf("OutDim = %d", net.OutDim())
	}
	if net.NumParams() != 4*3+3+3*2+2 {
		t.Fatalf("NumParams = %d", net.NumParams())
	}
}

func TestPredict1MatchesForward(t *testing.T) {
	r := rng.New(5)
	net, err := NewMLP(MLPConfig{InDim: 6, OutDim: 4, Hidden: 8, HiddenLayers: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 6)
	for i := range in {
		in[i] = r.NormFloat64()
	}
	out1 := make([]float64, 4)
	net.Predict1(in, out1)
	x := tensor.FromSlice(append([]float64(nil), in...), 1, 6)
	out2 := net.Forward(x)
	for i := range out1 {
		if math.Abs(out1[i]-out2.Data[i]) > 1e-14 {
			t.Fatalf("Predict1 mismatch at %d", i)
		}
	}
	// Repeat to exercise buffer reuse.
	net.Predict1(in, out1)
	for i := range out1 {
		if math.Abs(out1[i]-out2.Data[i]) > 1e-14 {
			t.Fatalf("Predict1 second call mismatch at %d", i)
		}
	}
}

// ---------------------------------------------------------------------------
// Losses

func TestMSEKnownValue(t *testing.T) {
	pred := tensor.FromSlice([]float64{1, 2}, 1, 2)
	targ := tensor.FromSlice([]float64{0, 4}, 1, 2)
	grad := tensor.New(1, 2)
	l := MSE{}.Forward(pred, targ, grad)
	if math.Abs(l-(1+4)/2.0) > 1e-14 {
		t.Fatalf("MSE = %v, want 2.5", l)
	}
	if math.Abs(grad.Data[0]-1) > 1e-14 || math.Abs(grad.Data[1]+2) > 1e-14 {
		t.Fatalf("MSE grad = %v", grad.Data)
	}
}

func TestMAEKnownValue(t *testing.T) {
	pred := tensor.FromSlice([]float64{1, 2}, 1, 2)
	targ := tensor.FromSlice([]float64{0, 4}, 1, 2)
	grad := tensor.New(1, 2)
	l := MAE{}.Forward(pred, targ, grad)
	if math.Abs(l-1.5) > 1e-14 {
		t.Fatalf("MAE = %v, want 1.5", l)
	}
	if grad.Data[0] != 0.5 || grad.Data[1] != -0.5 {
		t.Fatalf("MAE grad = %v", grad.Data)
	}
}

func TestHuberLimits(t *testing.T) {
	// Small errors: quadratic (like 0.5*MSE); large errors: linear.
	pred := tensor.FromSlice([]float64{0.1, 10}, 1, 2)
	targ := tensor.FromSlice([]float64{0, 0}, 1, 2)
	grad := tensor.New(1, 2)
	l := Huber{Delta: 1}.Forward(pred, targ, grad)
	want := (0.5*0.01 + 1*(10-0.5)) / 2
	if math.Abs(l-want) > 1e-12 {
		t.Fatalf("Huber = %v, want %v", l, want)
	}
}

func TestPhysicsMSEPenalizesDivergenceMismatch(t *testing.T) {
	// Prediction differing from the target by a constant offset has the
	// same divergence: only the mean penalty reacts. A sawtooth
	// perturbation changes the divergence: the div penalty reacts.
	cols := 8
	targ := tensor.New(1, cols)
	constOff := tensor.New(1, cols)
	constOff.Fill(0.5)
	saw := tensor.New(1, cols)
	for j := 0; j < cols; j++ {
		// Period-4 square wave: the period-2 (Nyquist) sawtooth is in the
		// null space of the centered difference, so use period 4 to get a
		// non-zero divergence mismatch.
		saw.Data[j] = 0.5 * float64((j/2)%2)
	}
	grad := tensor.New(1, cols)
	divOnly := PhysicsMSE{Dx: 0.1, LambdaDiv: 1, LambdaMean: 0}
	base := MSE{}
	lConstP := divOnly.Forward(constOff, targ, grad)
	lConstM := base.Forward(constOff, targ, grad)
	if math.Abs(lConstP-lConstM) > 1e-12 {
		t.Fatalf("constant offset should add no divergence penalty: %v vs %v", lConstP, lConstM)
	}
	lSawP := divOnly.Forward(saw, targ, grad)
	lSawM := base.Forward(saw, targ, grad)
	if lSawP <= lSawM {
		t.Fatalf("sawtooth should be penalized: physics %v <= mse %v", lSawP, lSawM)
	}
	meanOnly := PhysicsMSE{Dx: 0.1, LambdaDiv: 0, LambdaMean: 1}
	lMean := meanOnly.Forward(constOff, targ, grad)
	if lMean <= lConstM {
		t.Fatalf("mean penalty missing: %v <= %v", lMean, lConstM)
	}
}

// ---------------------------------------------------------------------------
// Optimizers

func TestOptimizersMinimizeQuadratic(t *testing.T) {
	// Minimize f(w) = ||w - target||^2 using each optimizer through the
	// Param interface.
	target := []float64{1, -2, 3}
	run := func(opt Optimizer, iters int) float64 {
		w := tensor.FromSlice([]float64{0, 0, 0}, 1, 3)
		g := tensor.New(1, 3)
		p := []*Param{{W: w, G: g}}
		for i := 0; i < iters; i++ {
			for j := range w.Data {
				g.Data[j] = 2 * (w.Data[j] - target[j])
			}
			opt.Step(p)
		}
		var dist float64
		for j := range w.Data {
			dist += math.Abs(w.Data[j] - target[j])
		}
		return dist
	}
	if d := run(&SGD{LR: 0.1}, 200); d > 1e-6 {
		t.Errorf("SGD residual %v", d)
	}
	if d := run(&Momentum{LR: 0.05, Mu: 0.9}, 400); d > 1e-6 {
		t.Errorf("Momentum residual %v", d)
	}
	if d := run(NewAdam(0.1), 600); d > 1e-4 {
		t.Errorf("Adam residual %v", d)
	}
}

func TestAdamDefaultLR(t *testing.T) {
	a := NewAdam(0)
	if a.LR != 1e-4 {
		t.Fatalf("default Adam lr %v, want 1e-4 (paper)", a.LR)
	}
}

func TestClipGradNorm(t *testing.T) {
	g := tensor.FromSlice([]float64{3, 4}, 1, 2) // norm 5
	p := []*Param{{W: tensor.New(1, 2), G: g}}
	norm := ClipGradNorm(p, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v, want 5", norm)
	}
	if math.Abs(g.Data[0]-0.6) > 1e-12 || math.Abs(g.Data[1]-0.8) > 1e-12 {
		t.Fatalf("clipped grad %v", g.Data)
	}
	// No-op below threshold.
	ClipGradNorm(p, 10)
	if math.Abs(g.Data[0]-0.6) > 1e-12 {
		t.Fatal("clip should be a no-op below threshold")
	}
}

// ---------------------------------------------------------------------------
// Training

// The MLP learns a random linear map comfortably: loss decreases by
// orders of magnitude and validation MAE is small.
func TestFitLearnsLinearMap(t *testing.T) {
	r := rng.New(20)
	inDim, outDim, n := 8, 4, 256
	w := tensor.New(inDim, outDim)
	w.RandomNormal(r, 1)
	x := randBatch(r, n, inDim)
	y := tensor.New(n, outDim)
	tensor.MatMul(y, x, w, false, false)
	xv := randBatch(r, 64, inDim)
	yv := tensor.New(64, outDim)
	tensor.MatMul(yv, xv, w, false, false)

	net, err := NewMLP(MLPConfig{InDim: inDim, OutDim: outDim, Hidden: 32, HiddenLayers: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Fit(net, x, y, xv, yv, TrainConfig{
		Epochs: 400, BatchSize: 32, Optimizer: NewAdam(3e-3), Loss: MSE{}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, last := hist.Epochs[0], hist.Final()
	if last.TrainLoss > first.TrainLoss/100 {
		t.Fatalf("loss barely improved: %v -> %v", first.TrainLoss, last.TrainLoss)
	}
	// Judge the validation MAE relative to the target scale (a ReLU MLP
	// approximates an unbounded linear map only to a few percent).
	var meanAbsY float64
	for _, v := range yv.Data {
		meanAbsY += math.Abs(v)
	}
	meanAbsY /= float64(yv.Len())
	if last.ValMAE/meanAbsY > 0.10 {
		t.Fatalf("validation MAE %v (%.1f%% of target scale %v) too high",
			last.ValMAE, 100*last.ValMAE/meanAbsY, meanAbsY)
	}
}

func TestFitValidation(t *testing.T) {
	r := rng.New(21)
	net, _ := NewNetwork(2, NewDense(2, 1, r))
	x := randBatch(r, 8, 2)
	y := randBatch(r, 8, 1)
	bad := []TrainConfig{
		{Epochs: 0, BatchSize: 4, Optimizer: &SGD{LR: 0.1}, Loss: MSE{}},
		{Epochs: 1, BatchSize: 0, Optimizer: &SGD{LR: 0.1}, Loss: MSE{}},
		{Epochs: 1, BatchSize: 4, Loss: MSE{}},
		{Epochs: 1, BatchSize: 4, Optimizer: &SGD{LR: 0.1}},
	}
	for i, cfg := range bad {
		if _, err := Fit(net, x, y, nil, nil, cfg); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
	// Mismatched sample counts.
	if _, err := Fit(net, x, randBatch(r, 7, 1), nil, nil,
		TrainConfig{Epochs: 1, BatchSize: 4, Optimizer: &SGD{LR: 0.1}, Loss: MSE{}}); err == nil {
		t.Error("sample mismatch should fail")
	}
	// Val set half-specified.
	if _, err := Fit(net, x, y, x, nil,
		TrainConfig{Epochs: 1, BatchSize: 4, Optimizer: &SGD{LR: 0.1}, Loss: MSE{}}); err == nil {
		t.Error("half validation set should fail")
	}
}

func TestFitDeterministicWithSeed(t *testing.T) {
	run := func() float64 {
		r := rng.New(22)
		net, _ := NewMLP(MLPConfig{InDim: 4, OutDim: 2, Hidden: 8, HiddenLayers: 1}, r)
		x := randBatch(r, 64, 4)
		y := randBatch(r, 64, 2)
		hist, err := Fit(net, x, y, nil, nil, TrainConfig{
			Epochs: 5, BatchSize: 16, Optimizer: NewAdam(1e-3), Loss: MSE{}, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return hist.Final().TrainLoss
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("training not deterministic: %v vs %v", a, b)
	}
}

func TestEvaluateMetrics(t *testing.T) {
	r := rng.New(23)
	net, _ := NewNetwork(2, NewDense(2, 2, r))
	// Identity network: W = I, b = 0.
	d := net.Layers[0].(*Dense)
	d.W.Zero()
	d.W.Set(0, 0, 1)
	d.W.Set(1, 1, 1)
	d.B.Zero()
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := tensor.FromSlice([]float64{1, 2, 3, 5}, 2, 2) // one error of 1
	m := Evaluate(net, x, y, 64)
	if math.Abs(m.MAE-0.25) > 1e-12 {
		t.Errorf("MAE %v, want 0.25", m.MAE)
	}
	if math.Abs(m.MaxErr-1) > 1e-12 {
		t.Errorf("MaxErr %v, want 1", m.MaxErr)
	}
	if m.N != 2 {
		t.Errorf("N = %d", m.N)
	}
	// Ragged final batch path.
	x3 := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	y3 := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	if m3 := Evaluate(net, x3, y3, 2); m3.MAE != 0 || m3.N != 3 {
		t.Errorf("ragged batch metrics %+v", m3)
	}
}

// ---------------------------------------------------------------------------
// Serialization

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rng.New(24)
	arch := []struct {
		name string
		make func() (*Network, error)
	}{
		{"mlp", func() (*Network, error) {
			return NewMLP(MLPConfig{InDim: 6, OutDim: 3, Hidden: 8, HiddenLayers: 2}, r)
		}},
		{"cnn", func() (*Network, error) {
			return NewCNN(CNNConfig{H: 8, W: 8, OutDim: 4, Channels1: 2, Channels2: 2,
				Kernel: 3, Hidden: 8, HiddenLayers: 1}, r)
		}},
		{"resmlp", func() (*Network, error) {
			return NewResMLP(ResMLPConfig{InDim: 6, OutDim: 3, Hidden: 8, Blocks: 1}, r)
		}},
	}
	for _, a := range arch {
		net, err := a.make()
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		var buf bytes.Buffer
		if err := Save(net, &buf); err != nil {
			t.Fatalf("%s save: %v", a.name, err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s load: %v", a.name, err)
		}
		in := make([]float64, net.InDim)
		for i := range in {
			in[i] = r.NormFloat64()
		}
		out1 := make([]float64, net.OutDim())
		out2 := make([]float64, net.OutDim())
		net.Predict1(in, out1)
		loaded.Predict1(in, out2)
		for i := range out1 {
			if out1[i] != out2[i] {
				t.Fatalf("%s: loaded model differs at output %d: %v vs %v", a.name, i, out1[i], out2[i])
			}
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage should fail to load")
	}
}

func TestSaveLoadFile(t *testing.T) {
	r := rng.New(25)
	net, _ := NewMLP(MLPConfig{InDim: 4, OutDim: 2, Hidden: 4, HiddenLayers: 1}, r)
	path := t.TempDir() + "/model.gob"
	if err := SaveFile(net, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumParams() != net.NumParams() {
		t.Fatalf("param count changed: %d vs %d", loaded.NumParams(), net.NumParams())
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestSummary(t *testing.T) {
	r := rng.New(26)
	net, _ := NewMLP(MLPConfig{InDim: 4, OutDim: 2, Hidden: 8, HiddenLayers: 1}, r)
	s := net.Summary()
	if s == "" || len(s) < 10 {
		t.Fatalf("summary too short: %q", s)
	}
}

// The paper-shaped MLP (reduced width) learns the histogram->field task
// structure: a linear map with smoothing. This is the mini end-to-end
// sanity check for the Table-I pipeline.
func TestMLPLearnsSmoothedLinearTask(t *testing.T) {
	r := rng.New(27)
	inDim, outDim := 32, 8
	n := 512
	// Target: y = smooth(Ax) with fixed random A — loosely mimics
	// histogram -> field (linear solve of the binned density).
	a := tensor.New(inDim, outDim)
	a.RandomNormal(r, 0.3)
	x := tensor.New(n, inDim)
	for i := range x.Data {
		x.Data[i] = r.Float64() // histogram-like: non-negative
	}
	y := tensor.New(n, outDim)
	tensor.MatMul(y, x, a, false, false)
	net, err := NewMLP(MLPConfig{InDim: inDim, OutDim: outDim, Hidden: 64, HiddenLayers: 3}, r)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Fit(net, x, y, x, y, TrainConfig{
		Epochs: 60, BatchSize: 64, Optimizer: NewAdam(1e-3), Loss: MSE{}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Final().ValMAE > 0.2 {
		t.Fatalf("paper-shaped MLP failed to learn: val MAE %v", hist.Final().ValMAE)
	}
}
