package nn

import (
	"math"
	"runtime"
	"testing"

	"dlpic/internal/rng"
	"dlpic/internal/tensor"
)

// fitResult snapshots everything Fit produces: final weights and the
// full history. Comparison is by exact bits (==).
type fitResult struct {
	weights [][]float64
	hist    History
}

func runFit(t *testing.T, build func() (*Network, error), inDim, outDim, n int, cfg TrainConfig) fitResult {
	t.Helper()
	r := rng.New(900)
	x := randBatch(r, n, inDim)
	y := randBatch(r, n, outDim)
	xv := randBatch(r, 24, inDim)
	yv := randBatch(r, 24, outDim)
	net, err := build()
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Fit(net, x, y, xv, yv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res fitResult
	res.hist = hist
	for _, p := range net.Params() {
		res.weights = append(res.weights, append([]float64(nil), p.W.Data...))
	}
	return res
}

func sameFit(a, b fitResult) (string, bool) {
	if len(a.weights) != len(b.weights) {
		return "param count", false
	}
	for pi := range a.weights {
		for i := range a.weights[pi] {
			if a.weights[pi][i] != b.weights[pi][i] {
				return "weights", false
			}
		}
	}
	if len(a.hist.Epochs) != len(b.hist.Epochs) {
		return "epoch count", false
	}
	for i := range a.hist.Epochs {
		ae, be := a.hist.Epochs[i], b.hist.Epochs[i]
		if ae.TrainLoss != be.TrainLoss {
			return "train loss", false
		}
		// NaN != NaN; validation metrics are set in these tests.
		if ae.ValMAE != be.ValMAE || ae.ValMax != be.ValMax {
			return "validation metrics", false
		}
	}
	return "", true
}

// The tentpole property: the sharded Fit is bit-identical — weights,
// epoch losses, validation history — at Workers = 1, 2, 4, 8, for every
// architecture, with both the auto shard decomposition and an explicit
// override. This is what makes training reproducible on any machine
// regardless of core count.
func TestFitBitIdenticalAcrossWorkers(t *testing.T) {
	archs := []struct {
		name          string
		inDim, outDim int
		build         func() (*Network, error)
	}{
		{"mlp", 12, 6, func() (*Network, error) {
			return NewMLP(MLPConfig{InDim: 12, OutDim: 6, Hidden: 16, HiddenLayers: 2}, rng.New(910))
		}},
		{"cnn", 64, 5, func() (*Network, error) {
			return NewCNN(CNNConfig{H: 8, W: 8, OutDim: 5, Channels1: 2, Channels2: 2,
				Kernel: 3, Hidden: 12, HiddenLayers: 1}, rng.New(911))
		}},
		{"resmlp", 12, 6, func() (*Network, error) {
			return NewResMLP(ResMLPConfig{InDim: 12, OutDim: 6, Hidden: 16, Blocks: 1}, rng.New(912))
		}},
	}
	for _, arch := range archs {
		for _, shards := range []int{0, 8} {
			// n=72, bs=32: batches of 32, 32, 8 — multi-shard bodies
			// plus a tail batch with its own smaller decomposition. The
			// optimizer is stateful (Adam's step counter), so every run
			// gets a fresh instance.
			mkCfg := func(workers int) TrainConfig {
				return TrainConfig{Epochs: 3, BatchSize: 32, Optimizer: NewAdam(1e-3),
					Loss: MSE{}, Seed: 5, Shards: shards, Workers: workers}
			}
			ref := runFit(t, arch.build, arch.inDim, arch.outDim, 72, mkCfg(1))
			for _, workers := range []int{2, 4, 8} {
				got := runFit(t, arch.build, arch.inDim, arch.outDim, 72, mkCfg(workers))
				if what, ok := sameFit(ref, got); !ok {
					t.Errorf("%s shards=%d: Workers=%d differs from serial in %s",
						arch.name, shards, workers, what)
				}
			}
		}
	}
}

// The default Workers=0 (GOMAXPROCS) must also match the serial result
// at any GOMAXPROCS — the engine never lets the machine's core count
// leak into the arithmetic.
func TestFitBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	build := func() (*Network, error) {
		return NewMLP(MLPConfig{InDim: 10, OutDim: 4, Hidden: 12, HiddenLayers: 2}, rng.New(920))
	}
	run := func(procs int) fitResult {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		return runFit(t, build, 10, 4, 80, TrainConfig{
			Epochs: 2, BatchSize: 32, Optimizer: NewAdam(1e-3), Loss: MSE{}, Seed: 9})
	}
	ref := run(1)
	for _, procs := range []int{2, 8} {
		if what, ok := sameFit(ref, run(procs)); !ok {
			t.Errorf("GOMAXPROCS=%d differs from 1 in %s", procs, what)
		}
	}
}

// TestPipelinedFitBitIdentical pins the pipelined trainer's contract:
// overlapping the next batch's gather with the optimizer step changes
// timing and nothing else. Weights, epoch losses and validation history
// must match the serial gather path bit for bit, at several worker
// counts, with a tail batch in play (n=72, bs=32: the last prefetch of
// each epoch covers the 8-row tail).
func TestPipelinedFitBitIdentical(t *testing.T) {
	build := func() (*Network, error) {
		return NewMLP(MLPConfig{InDim: 12, OutDim: 6, Hidden: 16, HiddenLayers: 2}, rng.New(915))
	}
	mkCfg := func(workers int, pipeline bool) TrainConfig {
		return TrainConfig{Epochs: 3, BatchSize: 32, Optimizer: NewAdam(1e-3),
			Loss: MSE{}, Seed: 5, Workers: workers, Pipeline: pipeline}
	}
	ref := runFit(t, build, 12, 6, 72, mkCfg(1, false))
	for _, workers := range []int{1, 2, 8} {
		got := runFit(t, build, 12, 6, 72, mkCfg(workers, true))
		if what, ok := sameFit(ref, got); !ok {
			t.Errorf("Pipeline Workers=%d differs from serial reference in %s", workers, what)
		}
	}
	// Pipeline is an execution-environment knob: it must not move the
	// checkpoint fingerprint, or a checkpoint written with the pipeline
	// on would refuse to resume with it off.
	r := rng.New(916)
	x := randBatch(r, 8, 12)
	y := randBatch(r, 8, 6)
	on, off := mkCfg(1, true), mkCfg(1, false)
	if trainFingerprint(x, y, nil, nil, on) != trainFingerprint(x, y, nil, nil, off) {
		t.Error("Pipeline changes the train fingerprint; it must be excluded like Workers")
	}
}

// Sharding must also hold for the physics-informed loss, whose
// normalization mixes per-element and per-row terms — the shard seam
// most likely to get a denominator wrong.
func TestFitShardedPhysicsLoss(t *testing.T) {
	build := func() (*Network, error) {
		return NewMLP(MLPConfig{InDim: 8, OutDim: 8, Hidden: 12, HiddenLayers: 1}, rng.New(930))
	}
	mkCfg := func(workers int) TrainConfig {
		return TrainConfig{Epochs: 2, BatchSize: 24, Optimizer: NewAdam(1e-3),
			Loss: PhysicsMSE{Dx: 0.1, LambdaDiv: 0.3, LambdaMean: 0.2}, Seed: 3, Workers: workers}
	}
	ref := runFit(t, build, 8, 8, 60, mkCfg(1))
	for _, workers := range []int{2, 8} {
		if what, ok := sameFit(ref, runFit(t, build, 8, 8, 60, mkCfg(workers))); !ok {
			t.Errorf("physics loss: Workers=%d differs in %s", workers, what)
		}
	}
}

// ForwardShard over disjoint shards must reproduce the full-batch
// Forward: summed loss equal, per-row gradients bit-identical.
func TestLossForwardShardConsistency(t *testing.T) {
	r := rng.New(940)
	const rows, cols = 11, 8
	pred := randBatch(r, rows, cols)
	targ := randBatch(r, rows, cols)
	losses := []Loss{MSE{}, MAE{}, Huber{Delta: 0.5},
		PhysicsMSE{Dx: 0.1, LambdaDiv: 0.4, LambdaMean: 0.3}}
	for _, l := range losses {
		full := tensor.New(rows, cols)
		wantLoss := l.Forward(pred, targ, full)
		var gotLoss float64
		got := tensor.New(rows, cols)
		for _, bounds := range [][2]int{{0, 4}, {4, 9}, {9, rows}} {
			s, e := bounds[0], bounds[1]
			sp := tensor.FromSlice(pred.Data[s*cols:e*cols], e-s, cols)
			st := tensor.FromSlice(targ.Data[s*cols:e*cols], e-s, cols)
			sg := tensor.FromSlice(got.Data[s*cols:e*cols], e-s, cols)
			gotLoss += l.ForwardShard(sp, st, sg, rows)
		}
		if math.Abs(gotLoss-wantLoss) > 1e-13*math.Abs(wantLoss) {
			t.Errorf("%s: shard losses sum to %v, full batch %v", l.Name(), gotLoss, wantLoss)
		}
		for i := range got.Data {
			if got.Data[i] != full.Data[i] {
				t.Errorf("%s: shard gradient differs at %d: %v vs %v", l.Name(), i, got.Data[i], full.Data[i])
				break
			}
		}
	}
}

// countingLoss records how many rows it scored — the tail-batch probe.
type countingLoss struct {
	MSE
	rows *int
}

func (c countingLoss) Forward(pred, target, grad *tensor.Tensor) float64 {
	*c.rows += pred.Rows()
	return c.MSE.Forward(pred, target, grad)
}

func (c countingLoss) ForwardShard(pred, target, grad *tensor.Tensor, totalRows int) float64 {
	*c.rows += pred.Rows()
	return c.MSE.ForwardShard(pred, target, grad, totalRows)
}

// Fit must train on the trailing partial batch: every sample of every
// epoch reaches the loss exactly once (the seed dropped up to
// BatchSize-1 samples per epoch).
func TestFitTrainsTailBatch(t *testing.T) {
	r := rng.New(950)
	const n, bs, epochs = 19, 8, 3 // 19 = 8 + 8 + 3-row tail
	net, err := NewMLP(MLPConfig{InDim: 4, OutDim: 2, Hidden: 8, HiddenLayers: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	x := randBatch(r, n, 4)
	y := randBatch(r, n, 2)
	var rows int
	_, err = Fit(net, x, y, nil, nil, TrainConfig{
		Epochs: epochs, BatchSize: bs, Optimizer: NewAdam(1e-3),
		Loss: countingLoss{rows: &rows}, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != n*epochs {
		t.Fatalf("loss scored %d rows over %d epochs of %d samples, want %d (tail batch dropped?)",
			rows, epochs, n, n*epochs)
	}
}

// Evaluate must be bit-identical at every worker count, including the
// tail batch, and must agree with the serial reference reduction.
func TestEvaluateBitIdenticalAcrossWorkers(t *testing.T) {
	r := rng.New(960)
	net, err := NewMLP(MLPConfig{InDim: 6, OutDim: 3, Hidden: 8, HiddenLayers: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	x := randBatch(r, 53, 6) // 53 rows, batch 8: 7 batches, 5-row tail
	y := randBatch(r, 53, 3)
	ref := EvaluateWorkers(net, x, y, 8, 1)
	for _, workers := range []int{2, 4, 8, 0} {
		m := EvaluateWorkers(net, x, y, 8, workers)
		if m != ref {
			t.Errorf("workers=%d: %+v != serial %+v", workers, m, ref)
		}
	}
	if ref.N != 53 {
		t.Errorf("N = %d, want 53", ref.N)
	}
}

// The engine must reject (not silently mis-train) nets it cannot
// replicate, and Evaluate must fall back to the serial path for them.
func TestShardEngineUnknownLayer(t *testing.T) {
	net := &Network{InDim: 2, Layers: []Layer{fakeLayer{}}}
	x := tensor.New(3, 2)
	y := tensor.New(3, 2)
	if _, err := Fit(net, x, y, nil, nil, TrainConfig{
		Epochs: 1, BatchSize: 2, Optimizer: &SGD{LR: 0.1}, Loss: MSE{},
	}); err == nil {
		t.Error("Fit should refuse a net with unreplicable layers")
	}
	if m := Evaluate(net, x, y, 2); m.N != 3 {
		t.Errorf("serial-fallback Evaluate N = %d, want 3", m.N)
	}
}

// shardCount is a pure function of the batch geometry.
func TestShardCount(t *testing.T) {
	for _, tc := range []struct{ rows, override, want int }{
		{64, 0, 4},
		{32, 0, 2},
		{16, 0, 1},
		{3, 0, 1},
		{200, 0, 8}, // capped
		{64, 8, 8},
		{2, 8, 2}, // clamped to rows
		{0, 0, 0},
	} {
		if got := shardCount(tc.rows, tc.override); got != tc.want {
			t.Errorf("shardCount(%d, %d) = %d, want %d", tc.rows, tc.override, got, tc.want)
		}
	}
}
