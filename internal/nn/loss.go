package nn

import (
	"fmt"
	"math"

	"dlpic/internal/tensor"
)

// Loss scores a batch of predictions against targets and produces the
// gradient of the mean loss with respect to the predictions.
type Loss interface {
	// Forward returns the scalar batch loss and writes dL/dpred into
	// grad (same shape as pred). Equivalent to ForwardShard with
	// totalRows = pred.Rows().
	Forward(pred, target, grad *tensor.Tensor) float64
	// ForwardShard scores a shard of a larger minibatch: pred, target
	// and grad hold only the shard's rows, while totalRows is the full
	// batch's row count. Both the written gradients and the returned
	// loss contribution are normalized by the full batch size, so (a)
	// each row's gradient is bit-identical to the one the full-batch
	// Forward would write for that row, and (b) summing the
	// contributions of disjoint shards yields the full-batch loss.
	// This is the seam the data-parallel training engine shards
	// backpropagation through.
	ForwardShard(pred, target, grad *tensor.Tensor, totalRows int) float64
	Name() string
}

func checkLossShapes(pred, target, grad *tensor.Tensor) {
	if !tensor.SameShape(pred, target) || !tensor.SameShape(pred, grad) {
		panic(fmt.Sprintf("nn: loss shape mismatch pred=%v target=%v grad=%v",
			pred.Shape, target.Shape, grad.Shape))
	}
}

// MSE is the mean squared error over all elements.
type MSE struct{}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Forward implements Loss.
func (l MSE) Forward(pred, target, grad *tensor.Tensor) float64 {
	return l.ForwardShard(pred, target, grad, pred.Rows())
}

// ForwardShard implements Loss.
func (MSE) ForwardShard(pred, target, grad *tensor.Tensor, totalRows int) float64 {
	checkLossShapes(pred, target, grad)
	n := float64(totalRows * pred.Cols())
	var sum float64
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		sum += d * d
		grad.Data[i] = 2 * d / n
	}
	return sum / n
}

// MAE is the mean absolute error (the paper's Table-I metric, usable as
// a training loss too). The subgradient at zero is taken as 0.
type MAE struct{}

// Name implements Loss.
func (MAE) Name() string { return "mae" }

// Forward implements Loss.
func (l MAE) Forward(pred, target, grad *tensor.Tensor) float64 {
	return l.ForwardShard(pred, target, grad, pred.Rows())
}

// ForwardShard implements Loss.
func (MAE) ForwardShard(pred, target, grad *tensor.Tensor, totalRows int) float64 {
	checkLossShapes(pred, target, grad)
	n := float64(totalRows * pred.Cols())
	var sum float64
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		sum += math.Abs(d)
		switch {
		case d > 0:
			grad.Data[i] = 1 / n
		case d < 0:
			grad.Data[i] = -1 / n
		default:
			grad.Data[i] = 0
		}
	}
	return sum / n
}

// Huber is the smooth-L1 loss with threshold Delta.
type Huber struct{ Delta float64 }

// Name implements Loss.
func (h Huber) Name() string { return fmt.Sprintf("huber(%g)", h.Delta) }

// Forward implements Loss.
func (h Huber) Forward(pred, target, grad *tensor.Tensor) float64 {
	return h.ForwardShard(pred, target, grad, pred.Rows())
}

// ForwardShard implements Loss.
func (h Huber) ForwardShard(pred, target, grad *tensor.Tensor, totalRows int) float64 {
	checkLossShapes(pred, target, grad)
	delta := h.Delta
	if delta <= 0 {
		delta = 1
	}
	n := float64(totalRows * pred.Cols())
	var sum float64
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		if a := math.Abs(d); a <= delta {
			sum += 0.5 * d * d
			grad.Data[i] = d / n
		} else {
			sum += delta * (a - 0.5*delta)
			if d > 0 {
				grad.Data[i] = delta / n
			} else {
				grad.Data[i] = -delta / n
			}
		}
	}
	return sum / n
}

// PhysicsMSE is the physics-informed loss of the paper's §VII
// discussion: the data term (MSE) plus two physics penalties derived
// from the electrostatic field equations on the periodic grid,
//
//   - Gauss consistency: the centered difference dE/dx of the prediction
//     must match that of the target (equivalently, the implied charge
//     densities must agree: eps0 dE/dx = rho), weighted by LambdaDiv;
//   - Neutrality: a periodic neutral plasma has zero mean field, so the
//     per-sample mean of the prediction is penalized, weighted by
//     LambdaMean.
//
// Rows of the batch are field samples on a uniform periodic grid of
// spacing Dx.
type PhysicsMSE struct {
	Dx         float64
	LambdaDiv  float64
	LambdaMean float64
}

// Name implements Loss.
func (p PhysicsMSE) Name() string {
	return fmt.Sprintf("physics-mse(div=%g,mean=%g)", p.LambdaDiv, p.LambdaMean)
}

// Forward implements Loss.
func (p PhysicsMSE) Forward(pred, target, grad *tensor.Tensor) float64 {
	return p.ForwardShard(pred, target, grad, pred.Rows())
}

// ForwardShard implements Loss. Every penalty is per-sample, so a
// shard's rows contribute independently; only the normalizations use
// the full batch size.
func (p PhysicsMSE) ForwardShard(pred, target, grad *tensor.Tensor, totalRows int) float64 {
	checkLossShapes(pred, target, grad)
	if p.Dx <= 0 {
		panic("nn: PhysicsMSE requires positive Dx")
	}
	rows, cols := pred.Shape[0], pred.Shape[1]
	n := float64(totalRows * cols)
	// Data term.
	var loss float64
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d / n
		grad.Data[i] = 2 * d / n
	}
	inv2dx := 1 / (2 * p.Dx)
	// Physics terms, per sample.
	r := make([]float64, cols) // divergence residual
	for s := 0; s < rows; s++ {
		pr := pred.Data[s*cols : (s+1)*cols]
		tr := target.Data[s*cols : (s+1)*cols]
		gr := grad.Data[s*cols : (s+1)*cols]
		if p.LambdaDiv > 0 {
			// r_j = D(pred)_j - D(target)_j, centered periodic difference.
			for j := 0; j < cols; j++ {
				jp := j + 1
				if jp == cols {
					jp = 0
				}
				jm := j - 1
				if jm < 0 {
					jm = cols - 1
				}
				r[j] = ((pr[jp] - pr[jm]) - (tr[jp] - tr[jm])) * inv2dx
			}
			for _, v := range r {
				loss += p.LambdaDiv * v * v / n
			}
			// d/dpred_j of sum r^2: D is antisymmetric, so the adjoint is
			// -D: grad_j += lambda * 2/n * (r_{j-1} - r_{j+1}) * inv2dx.
			for j := 0; j < cols; j++ {
				jp := j + 1
				if jp == cols {
					jp = 0
				}
				jm := j - 1
				if jm < 0 {
					jm = cols - 1
				}
				gr[j] += p.LambdaDiv * 2 / n * (r[jm] - r[jp]) * inv2dx
			}
		}
		if p.LambdaMean > 0 {
			var m float64
			for _, v := range pr {
				m += v
			}
			m /= float64(cols)
			loss += p.LambdaMean * m * m / float64(totalRows)
			gm := p.LambdaMean * 2 * m / (float64(totalRows) * float64(cols))
			for j := range gr {
				gr[j] += gm
			}
		}
	}
	return loss
}
