package nn

import (
	"fmt"
	"math"

	"dlpic/internal/tensor"
)

// Opt-in float32 inference. A trained float64 network is converted once
// into a Predictor32 — weights and biases rounded to float32, dense
// stacks fused with their trailing ReLUs — and batches are evaluated
// entirely in float32 through tensor.MatMulF32: half the weight-matrix
// memory traffic of the float64 forward pass, which is what the paper's
// 4096-wide input projection is bound by. Training stays float64; only
// inference opts in, and only explicitly (TrainConfig never touches
// this, the -f32 flags and experiments.Options.Inference32 do).
//
// Precision, not determinism, is the trade: MatMulF32 follows the same
// one-owner-per-element k-ascending contract as the float64 kernels, so
// f32 results are bit-identical at any GOMAXPROCS and any batch size —
// they just differ from the float64 results by rounding. MeasureDrift32
// is the harness that bounds the difference; callers decide whether the
// drift is acceptable for their observables.

// denseStep32 is one fused dense(+ReLU) stage of a Predictor32.
type denseStep32 struct {
	in, out int
	w       []float32 // [in, out] row-major, converted from Dense.W
	b       []float32 // [out], converted from Dense.B
	relu    bool      // apply max(0, x) after the bias add
}

// Predictor32 evaluates a converted network in float32. It implements
// the batch.Predictor contract (panics on length mismatches, row r of a
// batch bit-identical to a batch-1 call on row r). Build with
// NewPredictor32, or use Network.PredictBatch32 for a cached one.
// Not safe for concurrent use: the activation buffers are shared
// scratch, like Network's.
type Predictor32 struct {
	inDim, outDim int
	steps         []denseStep32
	act           [2][]float32 // ping-pong activation buffers
}

// NewPredictor32 converts net's weights to float32. Only Dense and ReLU
// layers are supported — the paper's MLP surrogate, which is the model
// the inference servers run hot. Conv/pool/residual nets return an
// error naming the offending layer rather than silently degrading.
func NewPredictor32(net *Network) (*Predictor32, error) {
	p := &Predictor32{inDim: net.InDim, outDim: net.OutDim()}
	for i := 0; i < len(net.Layers); i++ {
		switch l := net.Layers[i].(type) {
		case *Dense:
			st := denseStep32{
				in:  l.InDim,
				out: l.OutDim_,
				w:   make([]float32, l.W.Len()),
				b:   make([]float32, l.B.Len()),
			}
			for j, v := range l.W.Data {
				st.w[j] = float32(v)
			}
			for j, v := range l.B.Data {
				st.b[j] = float32(v)
			}
			p.steps = append(p.steps, st)
		case *ReLU:
			if len(p.steps) == 0 {
				return nil, fmt.Errorf("nn: float32 inference: layer %d (relu) precedes any dense layer", i)
			}
			p.steps[len(p.steps)-1].relu = true
		default:
			return nil, fmt.Errorf("nn: float32 inference supports Dense and ReLU only; layer %d is %s", i, l.Name())
		}
	}
	if len(p.steps) == 0 {
		return nil, fmt.Errorf("nn: float32 inference: network has no dense layers")
	}
	return p, nil
}

// InDim returns the per-sample input width.
func (p *Predictor32) InDim() int { return p.inDim }

// OutDim returns the per-sample output width.
func (p *Predictor32) OutDim() int { return p.outDim }

// buf returns ping-pong buffer slot resized to n (grow-only backing).
func (p *Predictor32) buf(slot, n int) []float32 {
	if cap(p.act[slot]) < n {
		p.act[slot] = make([]float32, n)
	}
	p.act[slot] = p.act[slot][:n]
	return p.act[slot]
}

// PredictBatch evaluates batch stacked samples: in holds batch rows of
// InDim float64 values, out receives batch rows of OutDim values. The
// float64 boundary keeps it drop-in where a Network would serve
// (batch.Predictor); inputs are rounded to float32 on entry and results
// widened on exit. Panics on length mismatches, like
// Network.PredictBatch.
func (p *Predictor32) PredictBatch(batch int, in, out []float64) {
	if batch < 1 {
		panic(fmt.Sprintf("nn: Predictor32 batch %d, want >= 1", batch))
	}
	if len(in) != batch*p.inDim {
		panic(fmt.Sprintf("nn: Predictor32 input length %d, want %d x %d", len(in), batch, p.inDim))
	}
	if len(out) != batch*p.outDim {
		panic(fmt.Sprintf("nn: Predictor32 output length %d, want %d x %d", len(out), batch, p.outDim))
	}
	cur := 0
	a := p.buf(cur, batch*p.inDim)
	for i, v := range in {
		a[i] = float32(v)
	}
	for _, st := range p.steps {
		dst := p.buf(1-cur, batch*st.out)
		tensor.MatMulF32(dst, a, st.w, batch, st.in, st.out)
		for r := 0; r < batch; r++ {
			row := dst[r*st.out : (r+1)*st.out]
			for j, bv := range st.b {
				row[j] += bv
			}
			if st.relu {
				for j, v := range row {
					if v < 0 {
						row[j] = 0
					}
				}
			}
		}
		cur = 1 - cur
		a = dst
	}
	for i, v := range a {
		out[i] = float64(v)
	}
}

// PredictBatch32 is PredictBatch through a lazily built, cached float32
// predictor. The cache is invalidated by training (fitLoop) and by
// InvalidateF32; it returns NewPredictor32's error for unsupported
// architectures. Like PredictBatch it panics on length mismatches.
func (n *Network) PredictBatch32(batch int, in, out []float64) error {
	if n.p32 == nil {
		p, err := NewPredictor32(n)
		if err != nil {
			return err
		}
		n.p32 = p
	}
	n.p32.PredictBatch(batch, in, out)
	return nil
}

// InvalidateF32 drops the cached converted weights so the next
// PredictBatch32 rebuilds them. Any code that mutates the network's
// weights outside Fit must call this before serving float32 results.
func (n *Network) InvalidateF32() { n.p32 = nil }

// Drift32 summarizes float32-vs-float64 inference disagreement over a
// dataset: per-element absolute drift (max and mean), and the max drift
// relative to the largest float64 output magnitude (Scale) — the
// normalization that keeps near-zero outputs from dominating a
// per-element relative measure.
type Drift32 struct {
	MaxAbs  float64
	MeanAbs float64
	MaxRel  float64 // MaxAbs / Scale (0 when Scale is 0)
	Scale   float64 // max |float64 output| over the dataset
	N       int     // elements compared
}

// MeasureDrift32 is the accuracy harness for the float32 path: it runs
// every row of x (a [samples, InDim] tensor) through both the float64
// network and a freshly converted Predictor32 in batches of batchSize,
// and returns the drift statistics. The float64 outputs are the
// reference — the same goldens every campaign digest is built on.
func MeasureDrift32(net *Network, x *tensor.Tensor, batchSize int) (Drift32, error) {
	p, err := NewPredictor32(net)
	if err != nil {
		return Drift32{}, err
	}
	if x.Cols() != net.InDim {
		return Drift32{}, fmt.Errorf("nn: drift input width %d, network wants %d", x.Cols(), net.InDim)
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	nRows := x.Rows()
	outDim := net.OutDim()
	var d Drift32
	var sumAbs float64
	out64 := make([]float64, batchSize*outDim)
	out32 := make([]float64, batchSize*outDim)
	for start := 0; start < nRows; start += batchSize {
		end := start + batchSize
		if end > nRows {
			end = nRows
		}
		rows := end - start
		in := x.Data[start*x.Cols() : end*x.Cols()]
		o64 := out64[:rows*outDim]
		o32 := out32[:rows*outDim]
		net.PredictBatch(rows, in, o64)
		p.PredictBatch(rows, in, o32)
		for i, v := range o64 {
			if a := math.Abs(v); a > d.Scale {
				d.Scale = a
			}
			diff := math.Abs(o32[i] - v)
			sumAbs += diff
			if diff > d.MaxAbs {
				d.MaxAbs = diff
			}
			d.N++
		}
	}
	if d.N > 0 {
		d.MeanAbs = sumAbs / float64(d.N)
	}
	if d.Scale > 0 {
		d.MaxRel = d.MaxAbs / d.Scale
	}
	return d, nil
}
