// Package nn is a from-scratch, stdlib-only neural-network framework
// sufficient to express and train the paper's two architectures — the
// MLP (3 fully connected ReLU layers of 1024 units, 64-unit linear
// output) and the CNN (two blocks of [conv, conv, maxpool] followed by
// the same fully connected stack) — plus the residual-MLP and
// physics-informed-loss extensions the paper's discussion proposes.
//
// It substitutes for TensorFlow/Keras in the original work (the "no
// mature DL training stack in Go" gate): layers implement explicit
// forward/backward passes over batched row-major tensors, optimizers
// implement SGD/momentum/Adam, and every gradient is property-tested
// against finite differences.
//
// Layout conventions: a batch is a 2D tensor [batchSize, features].
// Convolutional layers interpret the feature axis as C*H*W (channel
// major) and are constructed with explicit input dimensions, so no
// separate Flatten layer is needed.
package nn

import (
	"fmt"
	"math"

	"dlpic/internal/rng"
	"dlpic/internal/tensor"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	G    *tensor.Tensor
}

// Layer is one differentiable stage of a network.
type Layer interface {
	// Forward computes the batch output. The returned tensor is owned by
	// the layer and valid until the next Forward call.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward consumes dL/d(output) and returns dL/d(input), writing
	// this pass's parameter gradients (overwriting the previous
	// pass's — callers that need accumulation across passes sum the
	// gradients externally, as the sharded trainer's ordered fold
	// does). Must be called after Forward with the matching batch.
	Backward(dy *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters (empty for stateless
	// layers).
	Params() []*Param
	// OutDim returns the per-sample output width given the input width,
	// or an error if the input width is incompatible.
	OutDim(in int) (int, error)
	// Name identifies the layer type and size.
	Name() string
}

// ---------------------------------------------------------------------------
// Dense

// Dense is a fully connected layer: y = x W + b.
type Dense struct {
	InDim, OutDim_ int
	W              *tensor.Tensor // [InDim, OutDim]
	B              *tensor.Tensor // [1, OutDim]
	dW, dB         *tensor.Tensor

	x   *tensor.Tensor // cached input (reference, not copy)
	out *tensor.Tensor
	dx  *tensor.Tensor
}

// NewDense constructs a dense layer with He-uniform initialization
// (appropriate for the ReLU stacks of the paper's MLP).
func NewDense(inDim, outDim int, r *rng.Source) *Dense {
	if inDim <= 0 || outDim <= 0 {
		panic(fmt.Sprintf("nn: invalid dense dims %dx%d", inDim, outDim))
	}
	d := &Dense{
		InDim: inDim, OutDim_: outDim,
		W:  tensor.New(inDim, outDim),
		B:  tensor.New(1, outDim),
		dW: tensor.New(inDim, outDim),
		dB: tensor.New(1, outDim),
	}
	limit := math.Sqrt(6.0 / float64(inDim))
	d.W.RandomUniform(r, limit)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%dx%d)", d.InDim, d.OutDim_) }

// OutDim implements Layer.
func (d *Dense) OutDim(in int) (int, error) {
	if in != d.InDim {
		return 0, fmt.Errorf("nn: dense expects input width %d, got %d", d.InDim, in)
	}
	return d.OutDim_, nil
}

// Params implements Layer.
func (d *Dense) Params() []*Param {
	return []*Param{
		{Name: d.Name() + ".W", W: d.W, G: d.dW},
		{Name: d.Name() + ".b", W: d.B, G: d.dB},
	}
}

// ensure2D returns a [rows, cols] scratch tensor, reusing buf's
// backing storage grow-only: shrinking the row count (batched inference
// flushes fluctuate with pool timing) reslices in place instead of
// reallocating. Callers fully overwrite the contents every use.
func ensure2D(buf **tensor.Tensor, rows, cols int) *tensor.Tensor {
	t := *buf
	if t == nil || t.Shape[1] != cols || cap(t.Data) < rows*cols {
		*buf = tensor.New(rows, cols)
		return *buf
	}
	if t.Shape[0] != rows {
		t.Shape[0] = rows
		t.Data = t.Data[:rows*cols]
	}
	return t
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Cols() != d.InDim {
		panic(fmt.Sprintf("nn: %s got input width %d", d.Name(), x.Cols()))
	}
	d.x = x
	out := ensure2D(&d.out, x.Rows(), d.OutDim_)
	tensor.MatMul(out, x, d.W, false, false)
	tensor.AddRowVector(out, d.B.Data)
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(dy *tensor.Tensor) *tensor.Tensor {
	d.backwardParamsOnly(dy)
	dx := ensure2D(&d.dx, dy.Rows(), d.InDim)
	tensor.MatMul(dx, dy, d.W, false, true)
	return dx
}

// backwardParamsOnly computes dW = x^T dy and db = column sums of dy
// without forming dL/d(input) — the input-gradient GEMM streams W once
// more, pure waste when this is a network's first layer (see
// Network.backwardTrain). Gradients are written, not accumulated (see
// the Layer contract), so no scratch product tensor and no pre-zeroing
// of the gradient buffers is needed.
func (d *Dense) backwardParamsOnly(dy *tensor.Tensor) {
	if d.x == nil {
		panic("nn: dense Backward before Forward")
	}
	tensor.MatMul(d.dW, d.x, dy, true, false)
	tensor.SumRows(d.dB.Data, dy)
}

// ---------------------------------------------------------------------------
// ReLU

// ReLU is the elementwise rectifier.
type ReLU struct {
	mask []bool
	out  *tensor.Tensor
	dx   *tensor.Tensor
}

// NewReLU constructs a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// OutDim implements Layer.
func (r *ReLU) OutDim(in int) (int, error) { return in, nil }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := ensure2D(&r.out, x.Rows(), x.Cols())
	if cap(r.mask) < x.Len() {
		r.mask = make([]bool, x.Len())
	}
	r.mask = r.mask[:x.Len()]
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			out.Data[i] = 0
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx := ensure2D(&r.dx, dy.Rows(), dy.Cols())
	for i, v := range dy.Data {
		if r.mask[i] {
			dx.Data[i] = v
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// ---------------------------------------------------------------------------
// Residual dense block (paper §VII extension: "networks fit to encode
// time sequences, such as Residual networks, might be a better fit")

// Residual wraps two dense+ReLU stages with an identity skip:
// y = x + W2 relu(W1 x + b1) + b2, requiring equal in/out width.
type Residual struct {
	dim    int
	d1, d2 *Dense
	act    *ReLU
	out    *tensor.Tensor
	dx     *tensor.Tensor
}

// NewResidual constructs a width-preserving residual block.
func NewResidual(dim int, r *rng.Source) *Residual {
	return &Residual{dim: dim, d1: NewDense(dim, dim, r), d2: NewDense(dim, dim, r), act: NewReLU()}
}

// Name implements Layer.
func (b *Residual) Name() string { return fmt.Sprintf("residual(%d)", b.dim) }

// OutDim implements Layer.
func (b *Residual) OutDim(in int) (int, error) {
	if in != b.dim {
		return 0, fmt.Errorf("nn: residual expects width %d, got %d", b.dim, in)
	}
	return b.dim, nil
}

// Params implements Layer.
func (b *Residual) Params() []*Param {
	return append(b.d1.Params(), b.d2.Params()...)
}

// Forward implements Layer.
func (b *Residual) Forward(x *tensor.Tensor) *tensor.Tensor {
	h := b.act.Forward(b.d1.Forward(x))
	y := b.d2.Forward(h)
	out := ensure2D(&b.out, x.Rows(), x.Cols())
	tensor.Add(out, x, y)
	return out
}

// Backward implements Layer.
func (b *Residual) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dBranch := b.d1.Backward(b.act.Backward(b.d2.Backward(dy)))
	dx := ensure2D(&b.dx, dy.Rows(), dy.Cols())
	tensor.Add(dx, dy, dBranch)
	return dx
}
