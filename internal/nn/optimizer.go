package nn

import (
	"fmt"
	"math"

	"dlpic/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update. Gradients are not cleared; callers
	// (the trainer) zero them per batch.
	Step(params []*Param)
	Name() string
}

// SGD is plain gradient descent: w -= lr * g.
type SGD struct{ LR float64 }

// Name implements Optimizer.
func (s *SGD) Name() string { return fmt.Sprintf("sgd(lr=%g)", s.LR) }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		tensor.AddScaled(p.W, -s.LR, p.G)
	}
}

// Momentum is SGD with classical momentum: v = mu*v + g; w -= lr*v.
// Per-parameter state is keyed by the weight tensor, which is stable
// across Params() calls.
type Momentum struct {
	LR, Mu float64
	vel    map[*tensor.Tensor]*tensor.Tensor
}

// Name implements Optimizer.
func (m *Momentum) Name() string { return fmt.Sprintf("momentum(lr=%g,mu=%g)", m.LR, m.Mu) }

// Step implements Optimizer.
func (m *Momentum) Step(params []*Param) {
	if m.vel == nil {
		m.vel = make(map[*tensor.Tensor]*tensor.Tensor)
	}
	for _, p := range params {
		v, ok := m.vel[p.W]
		if !ok {
			v = tensor.New(p.W.Shape...)
			m.vel[p.W] = v
		}
		for i := range v.Data {
			v.Data[i] = m.Mu*v.Data[i] + p.G.Data[i]
			p.W.Data[i] -= m.LR * v.Data[i]
		}
	}
}

// Adam is the optimizer the paper trains with (lr = 1e-4, batch 64).
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*tensor.Tensor]*tensor.Tensor
	v map[*tensor.Tensor]*tensor.Tensor
}

// NewAdam returns Adam with the paper's learning rate by default
// (pass lr <= 0 for 1e-4) and the standard beta/epsilon constants.
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		lr = 1e-4
	}
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return fmt.Sprintf("adam(lr=%g)", a.LR) }

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	if a.m == nil {
		a.m = make(map[*tensor.Tensor]*tensor.Tensor)
		a.v = make(map[*tensor.Tensor]*tensor.Tensor)
	}
	a.t++
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p.W]
		if !ok {
			m = tensor.New(p.W.Shape...)
			a.m[p.W] = m
			a.v[p.W] = tensor.New(p.W.Shape...)
		}
		v := a.v[p.W]
		for i := range p.W.Data {
			g := p.G.Data[i]
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mHat := m.Data[i] / b1c
			vHat := v.Data[i] / b2c
			p.W.Data[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// ClipGradNorm scales all gradients so their global L2 norm does not
// exceed maxNorm; returns the pre-clip norm. No-op for maxNorm <= 0.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.G.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / norm
		for _, p := range params {
			p.G.Scale(scale)
		}
	}
	return norm
}
