package nn

import (
	"fmt"
	"math"

	"dlpic/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update. Gradients are not cleared; callers
	// (the trainer) zero them per batch.
	Step(params []*Param)
	Name() string
}

// SGD is plain gradient descent: w -= lr * g.
type SGD struct{ LR float64 }

// Name implements Optimizer.
func (s *SGD) Name() string { return fmt.Sprintf("sgd(lr=%g)", s.LR) }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		tensor.AddScaled(p.W, -s.LR, p.G)
	}
}

// Momentum is SGD with classical momentum: v = mu*v + g; w -= lr*v.
// Per-parameter state is keyed by the weight tensor, which is stable
// across Params() calls.
type Momentum struct {
	LR, Mu float64
	vel    map[*tensor.Tensor]*tensor.Tensor
}

// Name implements Optimizer.
func (m *Momentum) Name() string { return fmt.Sprintf("momentum(lr=%g,mu=%g)", m.LR, m.Mu) }

// Step implements Optimizer.
func (m *Momentum) Step(params []*Param) {
	if m.vel == nil {
		m.vel = make(map[*tensor.Tensor]*tensor.Tensor)
	}
	for _, p := range params {
		v, ok := m.vel[p.W]
		if !ok {
			v = tensor.New(p.W.Shape...)
			m.vel[p.W] = v
		}
		for i := range v.Data {
			v.Data[i] = m.Mu*v.Data[i] + p.G.Data[i]
			p.W.Data[i] -= m.LR * v.Data[i]
		}
	}
}

// Adam is the optimizer the paper trains with (lr = 1e-4, batch 64).
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*tensor.Tensor]*tensor.Tensor
	v map[*tensor.Tensor]*tensor.Tensor
}

// NewAdam returns Adam with the paper's learning rate by default
// (pass lr <= 0 for 1e-4) and the standard beta/epsilon constants.
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		lr = 1e-4
	}
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return fmt.Sprintf("adam(lr=%g)", a.LR) }

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	if a.m == nil {
		a.m = make(map[*tensor.Tensor]*tensor.Tensor)
		a.v = make(map[*tensor.Tensor]*tensor.Tensor)
	}
	a.t++
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p.W]
		if !ok {
			m = tensor.New(p.W.Shape...)
			a.m[p.W] = m
			a.v[p.W] = tensor.New(p.W.Shape...)
		}
		v := a.v[p.W]
		for i := range p.W.Data {
			g := p.G.Data[i]
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mHat := m.Data[i] / b1c
			vHat := v.Data[i] / b2c
			p.W.Data[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// optimizerState is the serializable snapshot of an optimizer's
// per-parameter state, with slot vectors in Params() order (the order
// is a pure function of the network architecture, so a snapshot taken
// against one Network restores against any architecturally identical
// one). Fields are exported for gob; the type itself stays package
// private — it only ever crosses a training checkpoint file.
type optimizerState struct {
	// Kind names the optimizer implementation ("sgd", "momentum",
	// "adam"); restore refuses a mismatched kind.
	Kind string
	// Step is the global step counter (Adam's bias-correction t).
	Step int
	// Vecs holds the per-parameter state vectors: none for SGD, one per
	// parameter for Momentum (velocity), two per parameter for Adam
	// (first and second moment, interleaved m0,v0,m1,v1,...).
	Vecs [][]float64
}

// optimizerCheckpointer is implemented by optimizers whose state can
// round-trip through a training checkpoint. Fit refuses to checkpoint
// with an optimizer that does not implement it — silently dropping
// moment estimates would make a resumed fit diverge from an
// uninterrupted one.
type optimizerCheckpointer interface {
	captureState(params []*Param) optimizerState
	restoreState(params []*Param, st optimizerState) error
}

// checkKind validates the snapshot header shared by all restores.
func (st optimizerState) checkKind(kind string, params []*Param, vecsPerParam int) error {
	if st.Kind != kind {
		return fmt.Errorf("nn: checkpoint optimizer state is %q, configured optimizer is %q", st.Kind, kind)
	}
	if len(st.Vecs) != vecsPerParam*len(params) {
		return fmt.Errorf("nn: %s state has %d vectors, network wants %d", kind, len(st.Vecs), vecsPerParam*len(params))
	}
	return nil
}

// stateVec copies the per-parameter state tensor keyed by w (zeros when
// the optimizer never touched it, which cannot happen after a full
// epoch but keeps capture total).
func stateVec(m map[*tensor.Tensor]*tensor.Tensor, w *tensor.Tensor) []float64 {
	if t, ok := m[w]; ok {
		return append([]float64(nil), t.Data...)
	}
	return make([]float64, w.Len())
}

// restoreVec validates one snapshot vector and installs it as a state
// tensor shaped like w.
func restoreVec(m map[*tensor.Tensor]*tensor.Tensor, w *tensor.Tensor, vec []float64, kind string, i int) error {
	if len(vec) != w.Len() {
		return fmt.Errorf("nn: %s state vector %d has %d entries, parameter wants %d", kind, i, len(vec), w.Len())
	}
	t := tensor.New(w.Shape...)
	copy(t.Data, vec)
	m[w] = t
	return nil
}

// captureState implements optimizerCheckpointer. SGD is stateless; the
// snapshot records only the kind.
func (s *SGD) captureState([]*Param) optimizerState { return optimizerState{Kind: "sgd"} }

// restoreState implements optimizerCheckpointer.
func (s *SGD) restoreState(params []*Param, st optimizerState) error {
	return st.checkKind("sgd", params, 0)
}

// captureState implements optimizerCheckpointer: one velocity vector
// per parameter, Params() order.
func (m *Momentum) captureState(params []*Param) optimizerState {
	st := optimizerState{Kind: "momentum", Vecs: make([][]float64, 0, len(params))}
	for _, p := range params {
		st.Vecs = append(st.Vecs, stateVec(m.vel, p.W))
	}
	return st
}

// restoreState implements optimizerCheckpointer.
func (m *Momentum) restoreState(params []*Param, st optimizerState) error {
	if err := st.checkKind("momentum", params, 1); err != nil {
		return err
	}
	vel := make(map[*tensor.Tensor]*tensor.Tensor, len(params))
	for i, p := range params {
		if err := restoreVec(vel, p.W, st.Vecs[i], "momentum", i); err != nil {
			return err
		}
	}
	m.vel = vel
	return nil
}

// captureState implements optimizerCheckpointer: the step counter plus
// interleaved first/second-moment vectors, Params() order.
func (a *Adam) captureState(params []*Param) optimizerState {
	st := optimizerState{Kind: "adam", Step: a.t, Vecs: make([][]float64, 0, 2*len(params))}
	for _, p := range params {
		st.Vecs = append(st.Vecs, stateVec(a.m, p.W), stateVec(a.v, p.W))
	}
	return st
}

// restoreState implements optimizerCheckpointer.
func (a *Adam) restoreState(params []*Param, st optimizerState) error {
	if err := st.checkKind("adam", params, 2); err != nil {
		return err
	}
	if st.Step < 0 {
		return fmt.Errorf("nn: adam state has negative step %d", st.Step)
	}
	m := make(map[*tensor.Tensor]*tensor.Tensor, len(params))
	v := make(map[*tensor.Tensor]*tensor.Tensor, len(params))
	for i, p := range params {
		if err := restoreVec(m, p.W, st.Vecs[2*i], "adam", 2*i); err != nil {
			return err
		}
		if err := restoreVec(v, p.W, st.Vecs[2*i+1], "adam", 2*i+1); err != nil {
			return err
		}
	}
	a.t, a.m, a.v = st.Step, m, v
	return nil
}

// OptimizerDesc fingerprints the full hyper-parameter set of an
// optimizer for checkpoint and bundle identity checks — unlike Name,
// it covers every constant the update rule uses (Adam's betas and
// epsilon drift the trajectory just as surely as the learning rate).
func OptimizerDesc(o Optimizer) string {
	switch v := o.(type) {
	case *SGD:
		return fmt.Sprintf("sgd(lr=%g)", v.LR)
	case *Momentum:
		return fmt.Sprintf("momentum(lr=%g,mu=%g)", v.LR, v.Mu)
	case *Adam:
		return fmt.Sprintf("adam(lr=%g,b1=%g,b2=%g,eps=%g)", v.LR, v.Beta1, v.Beta2, v.Eps)
	default:
		return fmt.Sprintf("%T|%s", o, o.Name())
	}
}

// ClipGradNorm scales all gradients so their global L2 norm does not
// exceed maxNorm; returns the pre-clip norm. No-op for maxNorm <= 0.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.G.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / norm
		for _, p := range params {
			p.G.Scale(scale)
		}
	}
	return norm
}
