package nn

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"math"
	"os"

	"dlpic/internal/rng"
	"dlpic/internal/tensor"
)

// Training checkpoints make Fit itself resumable: after every k-th
// epoch the complete training state — network weights, optimizer
// moments, the RNG/shuffle cursor and the History so far — is written
// atomically to one file, and ResumeFit continues from it so that a
// fit killed at any epoch and resumed produces bit-identical final
// weights and History to an uninterrupted one, at any Workers value.
//
// The file is guarded by a fingerprint over everything the trajectory
// depends on (data, batch size, optimizer and loss hyper-parameters,
// shuffle seed, clip norm, shard override — but NOT Epochs, which is a
// target, not an identity: resuming with a larger epoch budget is how
// training is extended). Resuming under a different configuration is
// an error, never a silent divergence.

// Checkpoint configures epoch-granular training checkpoints; set it as
// TrainConfig.Checkpoint. The zero value disables checkpointing.
type Checkpoint struct {
	// Path is the checkpoint file. Writes go through a temporary file
	// and an atomic rename, so a kill mid-write never corrupts an
	// existing checkpoint — at worst it leaves a stale Path+".tmp".
	Path string
	// Every writes a checkpoint after every Every-th epoch (<= 0
	// selects 1). The final epoch is always checkpointed, so a
	// completed fit's checkpoint restores to a zero-epoch resume.
	Every int
}

// enabled reports whether checkpointing is configured.
func (c Checkpoint) enabled() bool { return c.Path != "" }

// due reports whether a checkpoint is written after the given epoch
// (0-based) under an e-epoch budget. The cadence depends only on the
// absolute epoch index, so an interrupted run and its resume agree on
// which epochs were checkpointed.
func (c Checkpoint) due(epoch, epochs int) bool {
	every := c.Every
	if every <= 0 {
		every = 1
	}
	return (epoch+1)%every == 0 || epoch+1 == epochs
}

// ckptFile is the gob-encoded checkpoint payload.
type ckptFile struct {
	Version     int
	Fingerprint string
	// Epoch is the number of completed epochs.
	Epoch int
	// Net is the full architecture + weights snapshot (the model-file
	// format of Save).
	Net netFile
	// Opt is the optimizer state in Params() order.
	Opt optimizerState
	// RNG is the shuffle stream state after Epoch epochs.
	RNG rng.State
	// Perm is the sample permutation after Epoch in-place shuffles.
	Perm []int
	// Hist is the training history so far.
	Hist History
}

const ckptVersion = 1

// ErrCheckpointUnusable marks ResumeFit failures caused by the
// checkpoint itself — missing, corrupt, or written by a different
// training configuration. Callers may treat it as "retrain from
// scratch"; errors from the resumed training run are returned without
// this mark, since retrying them discards restored epochs only to hit
// the same failure again.
var ErrCheckpointUnusable = errors.New("nn: checkpoint unusable")

// init pins the process-global gob type ids of every payload this
// package serializes by encoding zero values to io.Discard in a fixed
// order at package init. encoding/gob assigns type ids from a global
// counter at first encode, so without this, identical values could
// serialize to different bytes depending on what else the process
// encoded earlier — breaking the byte-identity contract CI enforces on
// model bundles and training checkpoints (a resumed process decodes a
// checkpoint before writing its bundle; an uninterrupted one does
// not). internal/core pins its bundle type the same way.
func init() {
	enc := gob.NewEncoder(io.Discard)
	_ = enc.Encode(netFile{Layers: []layerSpec{{}}})
	_ = enc.Encode(ckptFile{})
}

// trainFingerprint hashes everything the training trajectory depends
// on besides the epoch budget: the data (shapes and bytes), batch
// size, shuffle seed, clip norm, shard override, and the optimizer and
// loss hyper-parameters. Workers, Pipeline and logging are excluded —
// they never change the weights (the sharded engine's and the batch
// pipeline's determinism contracts), so a checkpoint written with the
// pipeline on resumes cleanly with it off and vice versa.
func trainFingerprint(x, y, xVal, yVal *tensor.Tensor, cfg TrainConfig) string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) { binary.LittleEndian.PutUint64(buf[:], v); h.Write(buf[:]) }
	str := func(s string) { u64(uint64(len(s))); h.Write([]byte(s)) }
	u64(uint64(cfg.BatchSize))
	u64(cfg.Seed)
	u64(math.Float64bits(cfg.ClipNorm))
	u64(uint64(cfg.Shards))
	str(OptimizerDesc(cfg.Optimizer))
	str(fmt.Sprintf("%T|%+v", cfg.Loss, cfg.Loss))
	hashTensor(h, x)
	hashTensor(h, y)
	hashTensor(h, xVal)
	hashTensor(h, yVal)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// hashTensor folds a tensor's shape and exact float bits into h (a nil
// tensor hashes as a distinct marker, so adding or dropping the
// validation set changes the fingerprint). Data is packed into a chunk
// buffer so paper-scale corpora hash at streaming speed instead of
// paying one hash.Write call per float.
func hashTensor(h hash.Hash, t *tensor.Tensor) {
	var buf [8]byte
	u64 := func(v uint64) { binary.LittleEndian.PutUint64(buf[:], v); h.Write(buf[:]) }
	if t == nil {
		u64(^uint64(0))
		return
	}
	u64(uint64(len(t.Shape)))
	for _, d := range t.Shape {
		u64(uint64(d))
	}
	const chunkFloats = 8192
	chunk := make([]byte, 0, 8*chunkFloats)
	for i, v := range t.Data {
		chunk = binary.LittleEndian.AppendUint64(chunk, math.Float64bits(v))
		if len(chunk) == cap(chunk) || i == len(t.Data)-1 {
			h.Write(chunk)
			chunk = chunk[:0]
		}
	}
}

// writeCheckpoint serializes one checkpoint atomically: encode to
// Path+".tmp", sync, rename. A kill at any instant leaves either the
// previous checkpoint or the new one, never a torn file.
func writeCheckpoint(c Checkpoint, file ckptFile) error {
	tmp := c.Path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("nn: checkpoint: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(file); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("nn: encode checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("nn: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("nn: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp, c.Path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("nn: install checkpoint: %w", err)
	}
	return nil
}

// readCheckpoint loads and structurally validates a checkpoint file.
func readCheckpoint(path string) (ckptFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return ckptFile{}, err
	}
	defer f.Close()
	var file ckptFile
	if err := gob.NewDecoder(f).Decode(&file); err != nil {
		return ckptFile{}, fmt.Errorf("nn: decode checkpoint %s: %w", path, err)
	}
	if file.Version != ckptVersion {
		return ckptFile{}, fmt.Errorf("nn: unsupported checkpoint version %d", file.Version)
	}
	if file.Epoch <= 0 {
		return ckptFile{}, fmt.Errorf("nn: checkpoint records %d completed epochs", file.Epoch)
	}
	if len(file.Hist.Epochs) != file.Epoch {
		return ckptFile{}, fmt.Errorf("nn: checkpoint history has %d epochs, header says %d", len(file.Hist.Epochs), file.Epoch)
	}
	return file, nil
}

// restorePerm validates that a checkpoint's shuffle permutation really
// is a permutation of [0, n) and returns a private copy — gob happily
// decodes a corrupted Perm (the fingerprint covers the configuration
// and data, not the checkpoint payload), and an out-of-range or
// duplicated index would crash or silently diverge the resumed fit.
func restorePerm(stored []int, n int) ([]int, error) {
	if len(stored) != n {
		return nil, fmt.Errorf("nn: checkpoint permutation has %d entries, data has %d rows", len(stored), n)
	}
	seen := make([]bool, n)
	for _, v := range stored {
		if v < 0 || v >= n || seen[v] {
			return nil, fmt.Errorf("nn: checkpoint permutation is not a permutation of [0,%d)", n)
		}
		seen[v] = true
	}
	return append([]int(nil), stored...), nil
}

// ResumeFit continues an interrupted Fit from cfg.Checkpoint.Path: it
// restores the network, optimizer state, shuffle cursor and History
// written after the last completed epoch, then trains on to
// cfg.Epochs. The resumed fit's final weights and History are
// bit-identical to an uninterrupted Fit with the same configuration,
// at any cfg.Workers value — Workers may differ between the
// interrupted run and the resume.
//
// cfg must match the configuration of the interrupted fit (same data,
// batch size, seed, optimizer and loss hyper-parameters); a mismatch
// is detected through the checkpoint fingerprint and returned as an
// error. cfg.Epochs is the one legitimate difference: it is the
// training target, so a resume may extend it. When the checkpoint
// already records >= cfg.Epochs completed epochs, ResumeFit returns
// the restored network and history without training (zero epochs run).
func ResumeFit(x, y, xVal, yVal *tensor.Tensor, cfg TrainConfig) (*Network, History, error) {
	if !cfg.Checkpoint.enabled() {
		return nil, History{}, fmt.Errorf("nn: ResumeFit needs TrainConfig.Checkpoint.Path")
	}
	if err := validateFit(x, y, xVal, yVal, cfg); err != nil {
		return nil, History{}, err
	}
	// Failures from here until training starts are the checkpoint's
	// fault and carry ErrCheckpointUnusable, licensing a fallback to a
	// clean retrain; failures from the resumed training itself do not.
	unusable := func(err error) (*Network, History, error) {
		return nil, History{}, fmt.Errorf("%w: %w", ErrCheckpointUnusable, err)
	}
	file, err := readCheckpoint(cfg.Checkpoint.Path)
	if err != nil {
		return unusable(err)
	}
	if fp := trainFingerprint(x, y, xVal, yVal, cfg); fp != file.Fingerprint {
		return unusable(fmt.Errorf("nn: checkpoint %s was written by a different training configuration (fingerprint %s, want %s)",
			cfg.Checkpoint.Path, file.Fingerprint, fp))
	}
	net, err := netFromFile(file.Net)
	if err != nil {
		return unusable(fmt.Errorf("nn: checkpoint network: %w", err))
	}
	if x.Cols() != net.InDim || y.Cols() != net.OutDim() {
		return unusable(fmt.Errorf("nn: checkpoint network is %dx%d, data is %dx%d",
			net.InDim, net.OutDim(), x.Cols(), y.Cols()))
	}
	oc, ok := cfg.Optimizer.(optimizerCheckpointer)
	if !ok {
		return nil, History{}, fmt.Errorf("nn: optimizer %T cannot restore checkpoint state", cfg.Optimizer)
	}
	params := net.Params()
	if err := oc.restoreState(params, file.Opt); err != nil {
		return unusable(err)
	}
	r, err := rng.FromState(file.RNG)
	if err != nil {
		return unusable(err)
	}
	perm, err := restorePerm(file.Perm, x.Rows())
	if err != nil {
		return unusable(err)
	}
	if file.Epoch >= cfg.Epochs {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "resumed training: checkpoint %s already records %d/%d epochs (0 epochs run)\n",
				cfg.Checkpoint.Path, file.Epoch, cfg.Epochs)
		}
		return net, file.Hist, nil
	}
	if cfg.Log != nil {
		fmt.Fprintf(cfg.Log, "resumed training at epoch %d/%d from %s\n", file.Epoch, cfg.Epochs, cfg.Checkpoint.Path)
	}
	hist, err := fitLoop(net, x, y, xVal, yVal, cfg, file.Epoch, r, perm, file.Hist, file.Fingerprint)
	return net, hist, err
}
