// Package fft implements the discrete Fourier transforms used by the
// spectral Poisson solver and the field-mode diagnostics.
//
// The implementation is self-contained (stdlib only): an iterative
// in-place radix-2 Cooley-Tukey transform for power-of-two lengths and
// Bluestein's chirp-z algorithm for arbitrary lengths. Plans cache twiddle
// factors so repeated transforms of the same length (the common case in a
// PIC loop, one solve per time step) allocate nothing.
//
// Convention: Forward computes X[k] = sum_n x[n] exp(-2*pi*i*k*n/N) and
// Inverse divides by N, so Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Plan holds precomputed tables for transforms of a fixed length.
// A Plan is safe for concurrent use by multiple goroutines only if each
// goroutine uses its own scratch buffers; the methods on Plan itself do
// not mutate the plan after construction except through caller-provided
// slices.
type Plan struct {
	n       int
	pow2    bool
	twiddle []complex128 // radix-2 twiddles for length n (pow2 only)
	rev     []int        // bit-reversal permutation (pow2 only)

	// Bluestein machinery (non-pow2 only).
	chirp []complex128 // exp(-i*pi*k^2/n)
	bk    []complex128 // pre-transformed filter, length m
	sub   *Plan        // power-of-two convolution plan of length m
	m     int
}

// NewPlan constructs a transform plan for length n. n must be positive.
func NewPlan(n int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fft: invalid transform length %d", n)
	}
	p := &Plan{n: n}
	if n&(n-1) == 0 {
		p.pow2 = true
		p.initRadix2()
		return p, nil
	}
	p.initBluestein()
	return p, nil
}

// MustPlan is NewPlan that panics on error; for use with static sizes.
func MustPlan(n int) *Plan {
	p, err := NewPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Len returns the transform length.
func (p *Plan) Len() int { return p.n }

func (p *Plan) initRadix2() {
	n := p.n
	p.twiddle = make([]complex128, n/2)
	for k := range p.twiddle {
		ang := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	p.rev = make([]int, n)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := range p.rev {
		p.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
}

func (p *Plan) initBluestein() {
	n := p.n
	// Convolution length: smallest power of two >= 2n-1.
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p.m = m
	p.sub = MustPlan(m)
	p.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// Use k*k mod 2n to keep the angle argument small and accurate.
		idx := (int64(k) * int64(k)) % int64(2*n)
		ang := -math.Pi * float64(idx) / float64(n)
		p.chirp[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	// Filter b[k] = conj(chirp[k]) wrapped, then forward transformed.
	b := make([]complex128, m)
	b[0] = cmplxConj(p.chirp[0])
	for k := 1; k < n; k++ {
		c := cmplxConj(p.chirp[k])
		b[k] = c
		b[m-k] = c
	}
	p.sub.forwardPow2(b)
	p.bk = b
}

func cmplxConj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// Forward replaces x with its DFT. len(x) must equal the plan length.
func (p *Plan) Forward(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: Forward length %d, plan length %d", len(x), p.n))
	}
	if p.pow2 {
		p.forwardPow2(x)
		return
	}
	p.bluestein(x, false)
}

// Inverse replaces x with its inverse DFT (normalized by 1/N).
func (p *Plan) Inverse(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: Inverse length %d, plan length %d", len(x), p.n))
	}
	if p.pow2 {
		conjugateAll(x)
		p.forwardPow2(x)
		invN := 1 / float64(p.n)
		for i := range x {
			x[i] = complex(real(x[i])*invN, -imag(x[i])*invN)
		}
		return
	}
	p.bluestein(x, true)
}

func conjugateAll(x []complex128) {
	for i := range x {
		x[i] = cmplxConj(x[i])
	}
}

// forwardPow2 is the iterative in-place radix-2 DIT transform.
func (p *Plan) forwardPow2(x []complex128) {
	n := p.n
	if !p.pow2 {
		panic("fft: forwardPow2 on non-power-of-two plan")
	}
	rev := p.rev
	for i, j := range rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[tw]
				tw += step
				u := x[k]
				v := x[k+half] * w
				x[k] = u + v
				x[k+half] = u - v
			}
		}
	}
}

// bluestein computes the length-n DFT (or inverse) via chirp-z.
func (p *Plan) bluestein(x []complex128, inverse bool) {
	n, m := p.n, p.m
	a := make([]complex128, m)
	if inverse {
		for k := 0; k < n; k++ {
			a[k] = cmplxConj(x[k]) * p.chirp[k]
		}
	} else {
		for k := 0; k < n; k++ {
			a[k] = x[k] * p.chirp[k]
		}
	}
	p.sub.forwardPow2(a)
	for i := range a {
		a[i] *= p.bk[i]
	}
	// Inverse transform of the product (power-of-two path).
	conjugateAll(a)
	p.sub.forwardPow2(a)
	scale := 1 / float64(m)
	for k := 0; k < n; k++ {
		v := complex(real(a[k])*scale, -imag(a[k])*scale) * p.chirp[k]
		if inverse {
			v = cmplxConj(v)
			v = complex(real(v)/float64(n), imag(v)/float64(n))
		}
		x[k] = v
	}
}

// ForwardReal computes the DFT of a real signal into dst (length n of the
// plan). dst and src may not alias. It returns dst for chaining.
func (p *Plan) ForwardReal(dst []complex128, src []float64) []complex128 {
	if len(src) != p.n || len(dst) != p.n {
		panic("fft: ForwardReal length mismatch")
	}
	for i, v := range src {
		dst[i] = complex(v, 0)
	}
	p.Forward(dst)
	return dst
}

// InverseReal computes the inverse DFT of spec and writes the real part
// into dst, discarding the (ideally negligible) imaginary residue.
// spec is clobbered.
func (p *Plan) InverseReal(dst []float64, spec []complex128) []float64 {
	if len(spec) != p.n || len(dst) != p.n {
		panic("fft: InverseReal length mismatch")
	}
	p.Inverse(spec)
	for i := range dst {
		dst[i] = real(spec[i])
	}
	return dst
}

// Amplitudes fills amp with the single-sided magnitude spectrum of the
// real signal x: amp[k] = |X_k| / N * (2 for 0<k<N/2, 1 otherwise),
// which makes amp[k] the amplitude of the cos/sin mode k. Returns amp.
// len(amp) must be n/2+1.
func Amplitudes(amp []float64, x []float64, p *Plan) []float64 {
	n := p.n
	if len(x) != n || len(amp) != n/2+1 {
		panic("fft: Amplitudes length mismatch")
	}
	spec := make([]complex128, n)
	p.ForwardReal(spec, x)
	invN := 1 / float64(n)
	for k := 0; k <= n/2; k++ {
		mag := math.Hypot(real(spec[k]), imag(spec[k])) * invN
		if k != 0 && !(n%2 == 0 && k == n/2) {
			mag *= 2
		}
		amp[k] = mag
	}
	return amp
}

// DFTSlow is a direct O(n^2) reference transform used by tests.
func DFTSlow(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * complex(math.Cos(ang), math.Sin(ang))
		}
		out[k] = sum
	}
	return out
}
