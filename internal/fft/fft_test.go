package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"dlpic/internal/rng"
)

const tol = 1e-9

func approxEqual(a, b complex128, eps float64) bool {
	return cmplx.Abs(a-b) <= eps
}

func randomSignal(r *rng.Source, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func TestNewPlanRejectsBadLength(t *testing.T) {
	for _, n := range []int{0, -1, -64} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d) succeeded, want error", n)
		}
	}
}

func TestMustPlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPlan(0) did not panic")
		}
	}()
	MustPlan(0)
}

func TestForwardMatchesDFTSlow(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 4, 8, 64, 128, 3, 5, 6, 7, 12, 15, 100} {
		p := MustPlan(n)
		x := randomSignal(r, n)
		want := DFTSlow(x)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		for k := range got {
			if !approxEqual(got[k], want[k], 1e-8*float64(n)) {
				t.Fatalf("n=%d k=%d: got %v want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{1, 2, 16, 64, 1024, 3, 9, 17, 60, 101} {
		p := MustPlan(n)
		x := randomSignal(r, n)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		for i := range x {
			if !approxEqual(x[i], y[i], tol*float64(n)) {
				t.Fatalf("n=%d: roundtrip mismatch at %d: %v vs %v", n, i, x[i], y[i])
			}
		}
	}
}

// Property: Parseval's identity sum|x|^2 == sum|X|^2 / N.
func TestParsevalProperty(t *testing.T) {
	r := rng.New(3)
	f := func(nRaw uint8) bool {
		n := int(nRaw%96) + 1
		p := MustPlan(n)
		x := randomSignal(r, n)
		var timeE float64
		for _, v := range x {
			timeE += real(v)*real(v) + imag(v)*imag(v)
		}
		p.Forward(x)
		var freqE float64
		for _, v := range x {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(timeE-freqE/float64(n)) < 1e-7*(1+timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: linearity F(a*x + y) = a*F(x) + F(y).
func TestLinearityProperty(t *testing.T) {
	r := rng.New(4)
	f := func(nRaw uint8, aRe, aIm int8) bool {
		n := int(nRaw%64) + 1
		a := complex(float64(aRe)/16, float64(aIm)/16)
		p := MustPlan(n)
		x := randomSignal(r, n)
		y := randomSignal(r, n)
		comb := make([]complex128, n)
		for i := range comb {
			comb[i] = a*x[i] + y[i]
		}
		p.Forward(comb)
		p.Forward(x)
		p.Forward(y)
		for i := range comb {
			if !approxEqual(comb[i], a*x[i]+y[i], 1e-7*float64(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardKnownValues(t *testing.T) {
	// DFT of [1,0,0,0] is [1,1,1,1]; DFT of [0,1,0,0] is [1,-i,-1,i].
	p := MustPlan(4)
	x := []complex128{0, 1, 0, 0}
	p.Forward(x)
	want := []complex128{1, complex(0, -1), -1, complex(0, 1)}
	for i := range x {
		if !approxEqual(x[i], want[i], tol) {
			t.Fatalf("k=%d: got %v want %v", i, x[i], want[i])
		}
	}
}

func TestForwardLengthMismatchPanics(t *testing.T) {
	p := MustPlan(8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	p.Forward(make([]complex128, 4))
}

func TestForwardRealMatchesComplex(t *testing.T) {
	r := rng.New(5)
	for _, n := range []int{8, 64, 20} {
		p := MustPlan(n)
		sig := make([]float64, n)
		for i := range sig {
			sig[i] = r.NormFloat64()
		}
		viaReal := make([]complex128, n)
		p.ForwardReal(viaReal, sig)
		viaComplex := make([]complex128, n)
		for i, v := range sig {
			viaComplex[i] = complex(v, 0)
		}
		p.Forward(viaComplex)
		for k := range viaReal {
			if !approxEqual(viaReal[k], viaComplex[k], tol*float64(n)) {
				t.Fatalf("n=%d k=%d mismatch", n, k)
			}
		}
	}
}

func TestInverseRealRoundTrip(t *testing.T) {
	r := rng.New(6)
	n := 64
	p := MustPlan(n)
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = r.NormFloat64()
	}
	spec := make([]complex128, n)
	p.ForwardReal(spec, sig)
	back := make([]float64, n)
	p.InverseReal(back, spec)
	for i := range sig {
		if math.Abs(sig[i]-back[i]) > 1e-9 {
			t.Fatalf("i=%d: %v vs %v", i, sig[i], back[i])
		}
	}
}

func TestAmplitudesRecoversSingleMode(t *testing.T) {
	n := 64
	p := MustPlan(n)
	for _, mode := range []int{1, 3, 7} {
		amp0 := 0.25
		x := make([]float64, n)
		for i := range x {
			x[i] = amp0 * math.Cos(2*math.Pi*float64(mode)*float64(i)/float64(n))
		}
		amp := make([]float64, n/2+1)
		Amplitudes(amp, x, p)
		for k := range amp {
			want := 0.0
			if k == mode {
				want = amp0
			}
			if math.Abs(amp[k]-want) > 1e-10 {
				t.Fatalf("mode=%d k=%d: amp %v want %v", mode, k, amp[k], want)
			}
		}
	}
}

func TestAmplitudesDCAndNyquist(t *testing.T) {
	n := 8
	p := MustPlan(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = 3.0 // pure DC
	}
	amp := make([]float64, n/2+1)
	Amplitudes(amp, x, p)
	if math.Abs(amp[0]-3.0) > tol {
		t.Fatalf("DC amplitude %v, want 3", amp[0])
	}
	// Nyquist mode (-1)^i.
	for i := range x {
		x[i] = 0.5 * math.Cos(math.Pi*float64(i))
	}
	Amplitudes(amp, x, p)
	if math.Abs(amp[n/2]-0.5) > tol {
		t.Fatalf("Nyquist amplitude %v, want 0.5", amp[n/2])
	}
}

func TestShiftTheoremProperty(t *testing.T) {
	// Circularly shifting the input multiplies spectrum k by exp(-2pi i k s / n).
	r := rng.New(7)
	f := func(nRaw, sRaw uint8) bool {
		n := int(nRaw%60) + 2
		s := int(sRaw) % n
		p := MustPlan(n)
		x := randomSignal(r, n)
		shifted := make([]complex128, n)
		for i := range shifted {
			shifted[i] = x[(i-s+n)%n]
		}
		p.Forward(x)
		p.Forward(shifted)
		for k := range x {
			ang := -2 * math.Pi * float64(k) * float64(s) / float64(n)
			want := x[k] * complex(math.Cos(ang), math.Sin(ang))
			if !approxEqual(shifted[k], want, 1e-7*float64(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForward64(b *testing.B) {
	p := MustPlan(64)
	x := randomSignal(rng.New(1), 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkForward1024(b *testing.B) {
	p := MustPlan(1024)
	x := randomSignal(rng.New(1), 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkForwardBluestein100(b *testing.B) {
	p := MustPlan(100)
	x := randomSignal(rng.New(1), 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}
