// Package vlasov implements a 1D1V Vlasov-Poisson solver — the
// noise-free kinetic substrate the paper's discussion (§VII) proposes
// for generating higher-quality training data: "more accurate training
// data sets can be obtained by running Vlasov codes that are not
// affected by the PIC numerical noise."
//
// The solver is semi-Lagrangian with Strang splitting:
//
//	half x-advection:  f(x, v) <- f(x - v dt/2, v)      (spectral shift)
//	field solve:       rho(x) = q Int f dv + rho_ion;  E from Poisson
//	full v-advection:  f(x, v) <- f(x, v - (q/m) E(x) dt)  (cubic)
//	half x-advection again.
//
// The x-advection is exact for band-limited f (FFT phase shift on the
// periodic box); the v-advection uses cubic Lagrange interpolation with
// zero inflow at the velocity boundaries. The distribution lives on the
// same (x, v) grid the DL-PIC phase-space histograms use, so a Vlasov
// run can feed the dataset pipeline directly (see Counts).
package vlasov

import (
	"fmt"
	"math"

	"dlpic/internal/diag"
	"dlpic/internal/fft"
	"dlpic/internal/grid"
	"dlpic/internal/parallel"
	"dlpic/internal/poisson"
)

// Config describes a Vlasov-Poisson system on [0, L) x [VMin, VMax].
type Config struct {
	// NX, NV are the phase-space resolution (NX also the field grid).
	NX, NV int
	// Length is the periodic box size; VMin/VMax the velocity window.
	Length     float64
	VMin, VMax float64
	// Dt is the time step.
	Dt float64
	// Wp is the plasma frequency; Eps0 the permittivity; QOverM the
	// electron charge-to-mass ratio (same conventions as pic.Config).
	Wp, Eps0, QOverM float64
	// DiagMode is the monitored field mode.
	DiagMode int
}

// Default returns a configuration matching the paper's box with a
// 64x128 phase-space grid (finer in v than the DL histogram, so the
// beams are resolved).
func Default() Config {
	return Config{
		NX: 64, NV: 128,
		Length: 2 * math.Pi / 3.06, VMin: -0.8, VMax: 0.8,
		Dt: 0.1, Wp: 1, Eps0: 1, QOverM: -1,
		DiagMode: 1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.NX < 4 || c.NV < 4:
		return fmt.Errorf("vlasov: grid %dx%d too small", c.NX, c.NV)
	case !(c.Length > 0):
		return fmt.Errorf("vlasov: non-positive box %v", c.Length)
	case !(c.VMax > c.VMin):
		return fmt.Errorf("vlasov: empty velocity window [%v,%v]", c.VMin, c.VMax)
	case !(c.Dt > 0):
		return fmt.Errorf("vlasov: non-positive dt %v", c.Dt)
	case !(c.Wp > 0) || !(c.Eps0 > 0):
		return fmt.Errorf("vlasov: non-positive wp/eps0")
	case c.QOverM == 0:
		return fmt.Errorf("vlasov: zero charge-to-mass ratio")
	case c.DiagMode < 0 || c.DiagMode > c.NX/2:
		return fmt.Errorf("vlasov: diag mode %d out of range", c.DiagMode)
	}
	return nil
}

// Solver evolves the electron distribution f(x, v).
type Solver struct {
	Cfg Config
	// F is the distribution, row-major [iv*NX + ix], in units where the
	// background density integrates to n0 = Wp^2 * Eps0 / (q/m * q)...
	// concretely: Int f dv = n0(x) with the neutralizing ion background
	// rho_ion = -q * n0_mean (the solver tracks charge internally).
	F []float64
	// E and Rho are the current field and charge density on the x grid.
	E, Rho []float64

	g       *grid.Grid
	dx, dv  float64
	poisson *poisson.Spectral
	phi     []float64
	planX   *fft.Plan
	// Per-row spectral buffers for x-advection.
	rowSpec []complex128
	// Charge per unit of f: the electron charge density is q*n with
	// q/m = QOverM and the normalization fixing wp.
	q, m float64

	stepN int
	time  float64
	plan  *fft.Plan
}

// TwoStreamInit configures the standard two-beam initial condition:
//
//	f0(x,v) = n0/2 [ M(v - V0) + M(v + V0) ] (1 + Amp cos(2 pi Mode x / L))
//
// with Maxwellians of width Vth (Vth must exceed ~one velocity cell so
// the beams are resolvable on the grid).
type TwoStreamInit struct {
	V0, Vth float64
	Amp     float64
	Mode    int
}

// New builds a solver with the two-stream initial condition.
func New(cfg Config, init TwoStreamInit) (*Solver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dv := (cfg.VMax - cfg.VMin) / float64(cfg.NV)
	if init.Vth < dv {
		return nil, fmt.Errorf("vlasov: Vth=%v below velocity resolution %v (beams unresolvable)", init.Vth, dv)
	}
	if init.Mode < 0 || init.Mode > cfg.NX/2 {
		return nil, fmt.Errorf("vlasov: perturbation mode %d out of range", init.Mode)
	}
	g, err := grid.New(cfg.NX, cfg.Length)
	if err != nil {
		return nil, err
	}
	s := &Solver{
		Cfg: cfg,
		F:   make([]float64, cfg.NX*cfg.NV),
		E:   make([]float64, cfg.NX),
		Rho: make([]float64, cfg.NX),
		g:   g, dx: g.Dx(), dv: dv,
		poisson: poisson.NewSpectral(g, cfg.Eps0),
		phi:     make([]float64, cfg.NX),
		planX:   fft.MustPlan(cfg.NX),
		rowSpec: make([]complex128, cfg.NX),
		plan:    fft.MustPlan(cfg.NX),
	}
	// Normalization: wp^2 = n0 q^2 / (eps0 m) with q/m = QOverM gives
	// q*n0 = wp^2 eps0 / QOverM (signed electron charge density).
	// Track f as number density n0 = 1 and fold the charge into q.
	s.q = cfg.Wp * cfg.Wp * cfg.Eps0 / cfg.QOverM // charge density per unit n
	s.m = s.q / cfg.QOverM

	// Fill the two-stream distribution with mean density 1.
	norm := 1.0 / (2 * init.Vth * math.Sqrt(2*math.Pi))
	for iv := 0; iv < cfg.NV; iv++ {
		v := cfg.VMin + (float64(iv)+0.5)*dv
		mPlus := math.Exp(-(v - init.V0) * (v - init.V0) / (2 * init.Vth * init.Vth))
		mMinus := math.Exp(-(v + init.V0) * (v + init.V0) / (2 * init.Vth * init.Vth))
		base := norm * (mPlus + mMinus)
		for ix := 0; ix < cfg.NX; ix++ {
			x := g.X(ix)
			pert := 1 + init.Amp*math.Cos(2*math.Pi*float64(init.Mode)*x/cfg.Length)
			s.F[iv*cfg.NX+ix] = base * pert
		}
	}
	// Renormalize the discrete integral to exactly density 1 on average
	// (the Gaussian tails truncated by the window would otherwise shift
	// the plasma frequency).
	var tot float64
	for _, fv := range s.F {
		tot += fv
	}
	mean := tot * dv / float64(cfg.NX)
	scale := 1 / mean
	for i := range s.F {
		s.F[i] *= scale
	}
	if err := s.solveField(); err != nil {
		return nil, err
	}
	return s, nil
}

// Time returns the current simulation time.
func (s *Solver) Time() float64 { return s.time }

// StepCount returns the completed step count.
func (s *Solver) StepCount() int { return s.stepN }

// VCenter returns the center velocity of row iv.
func (s *Solver) VCenter(iv int) float64 {
	return s.Cfg.VMin + (float64(iv)+0.5)*s.dv
}

// solveField recomputes Rho and E from the current distribution.
func (s *Solver) solveField() error {
	nx, nv := s.Cfg.NX, s.Cfg.NV
	for ix := 0; ix < nx; ix++ {
		s.Rho[ix] = 0
	}
	for iv := 0; iv < nv; iv++ {
		row := s.F[iv*nx : (iv+1)*nx]
		for ix, fv := range row {
			s.Rho[ix] += fv
		}
	}
	// Electron charge density + neutralizing background of the mean.
	var mean float64
	for ix := 0; ix < nx; ix++ {
		s.Rho[ix] *= s.dv * s.q
		mean += s.Rho[ix]
	}
	mean /= float64(nx)
	for ix := 0; ix < nx; ix++ {
		s.Rho[ix] -= mean
	}
	return poisson.SolveE(s.poisson, s.g, s.E, s.Rho, s.phi)
}

// advectX shifts every velocity row by -v*dt in x with an exact spectral
// phase shift (periodic boundary).
func (s *Solver) advectX(dt float64) {
	nx, nv := s.Cfg.NX, s.Cfg.NV
	l := s.Cfg.Length
	parallel.ForThreshold(nv, 4, func(start, end int) {
		spec := make([]complex128, nx)
		plan := fft.MustPlan(nx)
		for iv := start; iv < end; iv++ {
			row := s.F[iv*nx : (iv+1)*nx]
			shift := s.VCenter(iv) * dt
			plan.ForwardReal(spec, row)
			for k := 1; k < nx; k++ {
				m := k
				if m > nx/2 {
					m -= nx
				}
				ang := -2 * math.Pi * float64(m) * shift / l
				spec[k] *= complex(math.Cos(ang), math.Sin(ang))
			}
			if nx%2 == 0 {
				// Keep the Nyquist mode real (its shifted phase is
				// ambiguous); drop its imaginary part.
				spec[nx/2] = complex(real(spec[nx/2]), 0)
			}
			plan.InverseReal(row, spec)
		}
	})
}

// advectV shifts every spatial column by -(q/m) E(x) dt in v using cubic
// Lagrange interpolation; f is treated as zero outside the window.
func (s *Solver) advectV(dt float64) {
	nx, nv := s.Cfg.NX, s.Cfg.NV
	parallel.ForThreshold(nx, 4, func(start, end int) {
		col := make([]float64, nv)
		for ix := start; ix < end; ix++ {
			shift := s.Cfg.QOverM * s.E[ix] * dt / s.dv // in cells
			for iv := 0; iv < nv; iv++ {
				col[iv] = s.F[iv*nx+ix]
			}
			for iv := 0; iv < nv; iv++ {
				// Departure point in cell units.
				y := float64(iv) - shift
				j := int(math.Floor(y))
				frac := y - float64(j)
				// Cubic Lagrange on j-1 .. j+2.
				fm1 := sampleCol(col, j-1)
				f0 := sampleCol(col, j)
				f1 := sampleCol(col, j+1)
				f2 := sampleCol(col, j+2)
				a := frac
				val := fm1*(-a*(a-1)*(a-2)/6) +
					f0*((a+1)*(a-1)*(a-2)/2) +
					f1*(-(a+1)*a*(a-2)/2) +
					f2*((a+1)*a*(a-1)/6)
				s.F[iv*nx+ix] = val
			}
		}
	})
}

func sampleCol(col []float64, j int) float64 {
	if j < 0 || j >= len(col) {
		return 0
	}
	return col[j]
}

// Step advances one time step with Strang splitting and returns the
// diagnostics sample at the *new* time level.
func (s *Solver) Step() (diag.Sample, error) {
	dt := s.Cfg.Dt
	s.advectX(dt / 2)
	if err := s.solveField(); err != nil {
		return diag.Sample{}, err
	}
	s.advectV(dt)
	s.advectX(dt / 2)
	if err := s.solveField(); err != nil {
		return diag.Sample{}, err
	}
	s.stepN++
	s.time += dt
	return s.sample(), nil
}

// sample assembles the current diagnostics.
func (s *Solver) sample() diag.Sample {
	nx, nv := s.Cfg.NX, s.Cfg.NV
	var kin, mom float64
	for iv := 0; iv < nv; iv++ {
		v := s.VCenter(iv)
		row := s.F[iv*nx : (iv+1)*nx]
		var rowSum float64
		for _, fv := range row {
			rowSum += fv
		}
		kin += 0.5 * v * v * rowSum
		mom += v * rowSum
	}
	cell := s.dx * s.dv
	kin *= cell * s.m
	mom *= cell * s.m
	sampleOut := diag.Sample{
		Step: s.stepN, Time: s.time,
		Kinetic:  kin,
		Field:    diag.FieldEnergy(s.g, s.E, s.Cfg.Eps0),
		Momentum: mom,
		ModeAmp:  diag.ModeAmplitude(s.plan, s.E, s.Cfg.DiagMode),
	}
	sampleOut.Total = sampleOut.Kinetic + sampleOut.Field
	return sampleOut
}

// Run advances n steps, recording diagnostics.
func (s *Solver) Run(n int, rec *diag.Recorder) error {
	if n < 0 {
		return fmt.Errorf("vlasov: negative step count")
	}
	for i := 0; i < n; i++ {
		sample, err := s.Step()
		if err != nil {
			return err
		}
		if rec != nil {
			rec.Add(sample)
		}
	}
	return nil
}

// Mass returns the total integral of f over phase space (conserved by
// the exact equations; the cubic v-advection loses a little at the
// window edges).
func (s *Solver) Mass() float64 {
	var tot float64
	for _, fv := range s.F {
		tot += fv
	}
	return tot * s.dx * s.dv
}

// Counts converts the distribution to equivalent macro-particle bin
// counts for a virtual population of np particles, matching the scale of
// the PIC phase-space histograms: counts[i] = f[i] * dx * dv * np /
// mass. This is the bridge that lets Vlasov runs feed the DL training
// pipeline (the paper's suggested noise-free corpus).
func (s *Solver) Counts(np int, out []float64) error {
	if len(out) != len(s.F) {
		return fmt.Errorf("vlasov: Counts length %d, want %d", len(out), len(s.F))
	}
	mass := s.Mass()
	if mass <= 0 {
		return fmt.Errorf("vlasov: non-positive mass %v", mass)
	}
	scale := float64(np) * s.dx * s.dv / mass
	for i, fv := range s.F {
		out[i] = fv * scale
	}
	return nil
}

// MinF returns the most negative value of f (a quality metric: the
// semi-Lagrangian cubic interpolation can undershoot; large negative
// excursions signal under-resolution).
func (s *Solver) MinF() float64 {
	minV := math.Inf(1)
	for _, fv := range s.F {
		if fv < minV {
			minV = fv
		}
	}
	return minV
}
