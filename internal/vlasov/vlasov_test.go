package vlasov

import (
	"math"
	"testing"

	"dlpic/internal/diag"
	"dlpic/internal/theory"
)

func twoStreamCfg() (Config, TwoStreamInit) {
	cfg := Default()
	init := TwoStreamInit{V0: 0.2, Vth: 0.03, Amp: 1e-4, Mode: 1}
	return cfg, init
}

func TestConfigValidate(t *testing.T) {
	good := Default()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NX = 2 },
		func(c *Config) { c.NV = 2 },
		func(c *Config) { c.Length = 0 },
		func(c *Config) { c.VMax = c.VMin },
		func(c *Config) { c.Dt = 0 },
		func(c *Config) { c.Wp = 0 },
		func(c *Config) { c.QOverM = 0 },
		func(c *Config) { c.DiagMode = -1 },
	}
	for i, mutate := range bad {
		cfg := Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNewRejectsUnresolvableBeams(t *testing.T) {
	cfg, init := twoStreamCfg()
	init.Vth = 1e-6 // far below dv
	if _, err := New(cfg, init); err == nil {
		t.Fatal("unresolvable beams should be rejected")
	}
}

func TestInitialDensityNormalized(t *testing.T) {
	cfg, init := twoStreamCfg()
	s, err := New(cfg, init)
	if err != nil {
		t.Fatal(err)
	}
	// Mean density must be 1 (the normalization that fixes wp).
	mass := s.Mass()
	want := cfg.Length // density 1 over the box
	if math.Abs(mass-want)/want > 1e-12 {
		t.Fatalf("mass %v, want %v", mass, want)
	}
	// The seeded perturbation shows up in the initial field.
	if diag.ModeAmplitude(s.plan, s.E, 1) <= 0 {
		t.Fatal("seeded mode missing from initial field")
	}
}

func TestMassConservation(t *testing.T) {
	cfg, init := twoStreamCfg()
	s, err := New(cfg, init)
	if err != nil {
		t.Fatal(err)
	}
	m0 := s.Mass()
	if err := s.Run(100, nil); err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(s.Mass()-m0) / m0; d > 1e-6 {
		t.Fatalf("mass drifted by %v", d)
	}
}

func TestFreeStreamingPreservesProfile(t *testing.T) {
	// Without a field (uniform density => E = 0 exactly), advection must
	// transport the distribution without distorting the v-profile.
	cfg := Default()
	cfg.NX, cfg.NV = 32, 64
	init := TwoStreamInit{V0: 0.2, Vth: 0.05, Amp: 0, Mode: 0}
	s, err := New(cfg, init)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), s.F...)
	if err := s.Run(50, nil); err != nil {
		t.Fatal(err)
	}
	// Uniform in x at every v: profile identical to the start.
	var worst float64
	for i := range s.F {
		if d := math.Abs(s.F[i] - before[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-9 {
		t.Fatalf("free streaming distorted a uniform profile by %v", worst)
	}
}

// The headline Vlasov validation: the two-stream growth rate matches
// linear theory — with *no particle noise*, the exponential phase is
// razor clean (R2 ~ 1).
func TestVlasovTwoStreamGrowthRate(t *testing.T) {
	cfg, init := twoStreamCfg()
	s, err := New(cfg, init)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	if err := s.Run(300, &rec); err != nil { // t = 30
		t.Fatal(err)
	}
	amps, _ := rec.Series("mode")
	times := rec.Times()
	t0, t1, err := diag.AutoGrowthWindow(times, amps, 0.001, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := diag.FitGrowthRate(times, amps, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	ts := theory.TwoStream{Wp: cfg.Wp, V0: init.V0, Vth: init.Vth}
	k1 := 2 * math.Pi / cfg.Length
	want := ts.GrowthRateWarm(k1)
	if math.Abs(fit.Gamma-want)/want > 0.08 {
		t.Fatalf("Vlasov growth %v, warm theory %v (%.1f%% off)",
			fit.Gamma, want, 100*math.Abs(fit.Gamma-want)/want)
	}
	if fit.R2 < 0.998 {
		t.Fatalf("noise-free growth should be razor clean: R2 = %v", fit.R2)
	}
}

// Energy conservation through the instability.
func TestVlasovEnergyConservation(t *testing.T) {
	cfg, init := twoStreamCfg()
	s, err := New(cfg, init)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	if err := s.Run(300, &rec); err != nil {
		t.Fatal(err)
	}
	tot, _ := rec.Series("total")
	if v := diag.MaxRelativeVariation(tot); v > 0.03 {
		t.Fatalf("Vlasov energy variation %.2f%%", 100*v)
	}
}

// Momentum stays at its (zero) initial value for symmetric beams.
func TestVlasovMomentumConservation(t *testing.T) {
	cfg, init := twoStreamCfg()
	s, err := New(cfg, init)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	if err := s.Run(200, &rec); err != nil {
		t.Fatal(err)
	}
	mom, _ := rec.Series("momentum")
	// Scale: one beam's |momentum|.
	scale := 0.5 * s.m * init.V0 * cfg.Length
	if d := math.Abs(diag.Drift(mom)) / scale; d > 1e-3 {
		t.Fatalf("momentum drifted %.2e of beam scale", d)
	}
}

// Landau damping: a warm plasma mode decays at the kinetic rate — a
// validation completely inaccessible to cold-beam tests and a signature
// that the v-advection resolves fine phase-space filamentation.
func TestVlasovLandauDamping(t *testing.T) {
	// Standard setup: k lD = 0.5 with wp = 1 => vth = 0.5/k.
	cfg := Default()
	cfg.NX = 32
	cfg.NV = 256
	k := 0.5
	cfg.Length = 2 * math.Pi / k
	cfg.VMin, cfg.VMax = -6, 6 // window in units of vth = 1
	cfg.Dt = 0.05
	init := TwoStreamInit{V0: 0, Vth: 1.0, Amp: 0.01, Mode: 1}
	s, err := New(cfg, init)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	if err := s.Run(400, &rec); err != nil { // t = 20
		t.Fatal(err)
	}
	amps, _ := rec.Series("mode")
	times := rec.Times()
	// Fit the decay of the oscillation envelope: sample local maxima.
	var peakT, peakA []float64
	for i := 1; i < len(amps)-1; i++ {
		if amps[i] > amps[i-1] && amps[i] >= amps[i+1] && amps[i] > 1e-8 {
			peakT = append(peakT, times[i])
			peakA = append(peakA, amps[i])
		}
	}
	if len(peakT) < 4 {
		t.Fatalf("too few envelope peaks: %d", len(peakT))
	}
	// Only the initial linear-damping phase (before recurrence).
	var ft, fa []float64
	for i := range peakT {
		if peakT[i] <= 15 {
			ft = append(ft, peakT[i])
			fa = append(fa, peakA[i])
		}
	}
	fit, err := diag.FitGrowthRate(ft, fa, 0, 15)
	if err != nil {
		t.Fatal(err)
	}
	want := -theory.LandauDampingRate(k, cfg.Wp, 1.0)
	if math.Abs(fit.Gamma-want) > 0.25*math.Abs(want) {
		t.Fatalf("Landau damping rate %v, theory %v", fit.Gamma, want)
	}
}

func TestCountsMatchesHistogramScale(t *testing.T) {
	cfg, init := twoStreamCfg()
	s, err := New(cfg, init)
	if err != nil {
		t.Fatal(err)
	}
	np := 16000
	counts := make([]float64, len(s.F))
	if err := s.Counts(np, counts); err != nil {
		t.Fatal(err)
	}
	var tot float64
	for _, c := range counts {
		tot += c
	}
	if math.Abs(tot-float64(np)) > 1e-6*float64(np) {
		t.Fatalf("counts total %v, want %d", tot, np)
	}
	if err := s.Counts(np, make([]float64, 3)); err == nil {
		t.Fatal("wrong length should error")
	}
}

func TestMinFStaysSmall(t *testing.T) {
	cfg, init := twoStreamCfg()
	s, err := New(cfg, init)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(200, nil); err != nil {
		t.Fatal(err)
	}
	// Cubic undershoot exists but must stay a small fraction of the peak.
	var peak float64
	for _, fv := range s.F {
		if fv > peak {
			peak = fv
		}
	}
	if minF := s.MinF(); -minF > 0.05*peak {
		t.Fatalf("undershoot %v vs peak %v", minF, peak)
	}
}

func TestRunNegativeSteps(t *testing.T) {
	cfg, init := twoStreamCfg()
	s, err := New(cfg, init)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(-1, nil); err == nil {
		t.Fatal("negative steps should error")
	}
}

func BenchmarkVlasovStep(b *testing.B) {
	cfg, init := twoStreamCfg()
	s, err := New(cfg, init)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
