package cliutil

import (
	"strings"
	"testing"
)

func TestParseFloats(t *testing.T) {
	cases := []struct {
		in   string
		want []float64
	}{
		{"", nil},
		{"0.15", []float64{0.15}},
		{"0.1,0.2,0.3", []float64{0.1, 0.2, 0.3}},
		{" 0.1 , 0.2 ", []float64{0.1, 0.2}}, // whitespace tolerated
		{"-0.3,1e-2", []float64{-0.3, 0.01}}, // signs and exponents
		{"0,0,0", []float64{0, 0, 0}},        // duplicates preserved
		{"3,1,2", []float64{3, 1, 2}},        // order preserved, no sorting
	}
	for _, c := range cases {
		got, err := ParseFloats(c.in)
		if err != nil {
			t.Errorf("ParseFloats(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseFloats(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseFloats(%q)[%d] = %v, want %v", c.in, i, got[i], c.want[i])
			}
		}
	}
}

// TestParseFloatsEmptyIsNil pins the flag-default contract: an empty
// value is nil (axis unset), not an empty non-nil slice.
func TestParseFloatsEmptyIsNil(t *testing.T) {
	got, err := ParseFloats("")
	if err != nil || got != nil {
		t.Fatalf("ParseFloats(\"\") = %v, %v; want nil, nil", got, err)
	}
}

// TestParseFloatsErrors pins the rejection contract: garbage tokens —
// including empty list positions, which catch typos like "0.1,,0.2" —
// error with the offending token quoted.
func TestParseFloatsErrors(t *testing.T) {
	for _, in := range []string{"abc", "0.1,abc", "0.1;0.2", "0..1", "0.1,NaN!!", "0.1,,0.2", ",0.5", " , "} {
		if _, err := ParseFloats(in); err == nil {
			t.Errorf("ParseFloats(%q) accepted garbage", in)
		} else if !strings.Contains(err.Error(), "bad float") {
			t.Errorf("ParseFloats(%q) error %q lacks the offending token", in, err)
		}
	}
}
