// Package cliutil holds small flag-parsing helpers shared by the
// command-line front ends.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseFloats parses a comma-separated list of floats. An empty string
// returns nil, which callers treat as "keep the default".
func ParseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
