// Package ascii renders the paper's figures as terminal graphics: the
// phase-space scatter/heatmaps of Figs. 4 and 6 and the time-series
// panels (E1 amplitude, total energy, total momentum) of Figs. 4-6.
// The experiment harness and the examples print these so a reproduction
// run is interpretable without leaving the terminal; the same data is
// also written as CSV for external plotting.
package ascii

import (
	"fmt"
	"math"
	"strings"
)

// shade maps an intensity in [0, 1] to a density glyph.
var shades = []rune(" .:-=+*#%@")

// Heatmap renders a row-major matrix (rows x cols, row 0 at the bottom)
// as a shaded grid with axis labels. Values are auto-scaled; negative
// values are clipped to zero.
func Heatmap(data []float64, rows, cols int, title, xlabel, ylabel string) string {
	if len(data) != rows*cols {
		return fmt.Sprintf("ascii: heatmap size mismatch (%d != %dx%d)\n", len(data), rows, cols)
	}
	var maxV float64
	for _, v := range data {
		if v > maxV {
			maxV = v
		}
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	for r := rows - 1; r >= 0; r-- {
		sb.WriteString("  |")
		for c := 0; c < cols; c++ {
			v := data[r*cols+c]
			if v < 0 {
				v = 0
			}
			idx := 0
			if maxV > 0 {
				idx = int(v / maxV * float64(len(shades)-1))
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			sb.WriteRune(shades[idx])
		}
		sb.WriteString("|")
		if r == rows-1 && ylabel != "" {
			sb.WriteString("  " + ylabel)
		}
		sb.WriteString("\n")
	}
	sb.WriteString("  +" + strings.Repeat("-", cols) + "+\n")
	if xlabel != "" {
		sb.WriteString("   " + xlabel + "\n")
	}
	return sb.String()
}

// Series is one named line of a chart.
type Series struct {
	Name string
	X, Y []float64
}

// markers cycles through per-series glyphs.
var markers = []rune("*o+x#@")

// LineChart renders one or more series on shared axes in a width x
// height character canvas. With logY, Y values are plotted on a log10
// scale (non-positive values are skipped).
func LineChart(series []Series, width, height int, title string, logY bool) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	// Determine ranges.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			y := s.Y[i]
			if logY {
				if !(y > 0) {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			if s.X[i] < xmin {
				xmin = s.X[i]
			}
			if s.X[i] > xmax {
				xmax = s.X[i]
			}
			if y < ymin {
				ymin = y
			}
			if y > ymax {
				ymax = y
			}
		}
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	if math.IsInf(xmin, 1) {
		sb.WriteString("  (no plottable data)\n")
		return sb.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	canvas := make([][]rune, height)
	for r := range canvas {
		canvas[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			y := s.Y[i]
			if logY {
				if !(y > 0) {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			cx := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((y - ymin) / (ymax - ymin) * float64(height-1))
			if cx < 0 || cx >= width || cy < 0 || cy >= height {
				continue
			}
			canvas[height-1-cy][cx] = mark
		}
	}
	// Y-axis labels: top and bottom.
	topLabel, botLabel := ymax, ymin
	unit := ""
	if logY {
		unit = " (log10)"
	}
	for r := 0; r < height; r++ {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%9.3g ", topLabel)
		} else if r == height-1 {
			label = fmt.Sprintf("%9.3g ", botLabel)
		}
		sb.WriteString(label + "|" + string(canvas[r]) + "\n")
	}
	sb.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&sb, "%s%-12.4g%s%12.4g%s\n", strings.Repeat(" ", 10), xmin,
		strings.Repeat(" ", maxInt(0, width-24)), xmax, unit)
	// Legend.
	sb.WriteString(strings.Repeat(" ", 10))
	for si, s := range series {
		fmt.Fprintf(&sb, " %c=%s", markers[si%len(markers)], s.Name)
	}
	sb.WriteString("\n")
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PhaseSpace renders particle (x, v) pairs as a heatmap with nxBins x
// nvBins resolution over [0, l) x [vmin, vmax].
func PhaseSpace(x, v []float64, l, vmin, vmax float64, nxBins, nvBins int, title string) string {
	counts := make([]float64, nxBins*nvBins)
	dx := l / float64(nxBins)
	dv := (vmax - vmin) / float64(nvBins)
	for i := range x {
		ix := int(x[i] / dx)
		if ix < 0 {
			ix = 0
		}
		if ix >= nxBins {
			ix = nxBins - 1
		}
		iv := int((v[i] - vmin) / dv)
		if iv < 0 {
			iv = 0
		}
		if iv >= nvBins {
			iv = nvBins - 1
		}
		counts[iv*nxBins+ix]++
	}
	return Heatmap(counts, nvBins, nxBins, title,
		fmt.Sprintf("x in [0, %.3g)", l),
		fmt.Sprintf("v in [%.2g, %.2g]", vmin, vmax))
}

// Table renders rows of cells with aligned columns. The first row is
// treated as a header and underlined.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	cols := 0
	for _, r := range rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for _, r := range rows {
		for c, cell := range r {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var sb strings.Builder
	for ri, r := range rows {
		for c := 0; c < cols; c++ {
			cell := ""
			if c < len(r) {
				cell = r[c]
			}
			fmt.Fprintf(&sb, "%-*s", widths[c]+2, cell)
		}
		sb.WriteString("\n")
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			sb.WriteString(strings.Repeat("-", total) + "\n")
		}
	}
	return sb.String()
}
