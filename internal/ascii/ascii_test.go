package ascii

import (
	"math"
	"strings"
	"testing"
)

func TestHeatmapBasic(t *testing.T) {
	data := []float64{0, 1, 2, 3, 4, 5}
	out := Heatmap(data, 2, 3, "title", "xlab", "ylab")
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "xlab") || !strings.Contains(out, "ylab") {
		t.Error("missing axis labels")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 2 rows + border + xlabel = 5 lines.
	if len(lines) != 5 {
		t.Fatalf("line count %d: %q", len(lines), out)
	}
	// Max value renders as the densest glyph; zero as space.
	if !strings.ContainsRune(lines[1], '@') {
		t.Errorf("max glyph missing in top row: %q", lines[1])
	}
}

func TestHeatmapSizeMismatch(t *testing.T) {
	out := Heatmap([]float64{1, 2}, 2, 3, "", "", "")
	if !strings.Contains(out, "mismatch") {
		t.Fatalf("expected mismatch message, got %q", out)
	}
}

func TestHeatmapAllZero(t *testing.T) {
	out := Heatmap(make([]float64, 6), 2, 3, "", "", "")
	if strings.ContainsAny(out, "@#%") {
		t.Fatalf("zero data should render empty: %q", out)
	}
}

func TestLineChartBasic(t *testing.T) {
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i) * 2
	}
	out := LineChart([]Series{{Name: "linear", X: xs, Y: ys}}, 40, 10, "chart", false)
	if !strings.Contains(out, "chart") || !strings.Contains(out, "linear") {
		t.Fatalf("missing title/legend: %q", out)
	}
	if !strings.ContainsRune(out, '*') {
		t.Fatal("no data points plotted")
	}
}

func TestLineChartLogSkipsNonPositive(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, -1, 10, 100}
	out := LineChart([]Series{{Name: "s", X: xs, Y: ys}}, 30, 8, "", true)
	// Strip the legend line (it contains the marker glyph too).
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	canvas := strings.Join(lines[:len(lines)-1], "\n")
	count := strings.Count(canvas, "*")
	if count != 2 {
		t.Fatalf("log chart plotted %d points, want 2 (positives only): %q", count, out)
	}
}

func TestLineChartEmpty(t *testing.T) {
	out := LineChart([]Series{{Name: "empty"}}, 30, 8, "t", false)
	if !strings.Contains(out, "no plottable data") {
		t.Fatalf("expected empty-data message: %q", out)
	}
	// NaN-only series too.
	out = LineChart([]Series{{Name: "nan", X: []float64{1}, Y: []float64{math.NaN()}}}, 30, 8, "", false)
	if !strings.Contains(out, "no plottable data") {
		t.Fatalf("expected empty-data message for NaN: %q", out)
	}
}

func TestLineChartMultipleSeries(t *testing.T) {
	xs := []float64{0, 1, 2}
	out := LineChart([]Series{
		{Name: "a", X: xs, Y: []float64{1, 2, 3}},
		{Name: "b", X: xs, Y: []float64{3, 2, 1}},
	}, 30, 8, "", false)
	if !strings.ContainsRune(out, '*') || !strings.ContainsRune(out, 'o') {
		t.Fatalf("expected two marker styles: %q", out)
	}
}

func TestLineChartConstantSeries(t *testing.T) {
	// Constant y must not divide by zero.
	xs := []float64{0, 1, 2}
	ys := []float64{5, 5, 5}
	out := LineChart([]Series{{Name: "flat", X: xs, Y: ys}}, 30, 6, "", false)
	if !strings.ContainsRune(out, '*') {
		t.Fatalf("flat series not plotted: %q", out)
	}
}

func TestPhaseSpace(t *testing.T) {
	x := []float64{0.1, 0.1, 1.9}
	v := []float64{0.2, 0.2, -0.2}
	out := PhaseSpace(x, v, 2.0, -0.4, 0.4, 8, 4, "ps")
	if !strings.Contains(out, "ps") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "x in [0, 2)") {
		t.Fatalf("missing x label: %q", out)
	}
	// Out-of-range velocities clamp instead of panicking.
	out = PhaseSpace([]float64{0.5}, []float64{99}, 2.0, -0.4, 0.4, 8, 4, "")
	if out == "" {
		t.Fatal("clamped phase space empty")
	}
}

func TestTable(t *testing.T) {
	out := Table([][]string{
		{"Metric", "Paper", "Measured"},
		{"MAE I", "0.0019", "0.0021"},
		{"Max", "0.069", "0.05"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("missing header underline: %q", lines[1])
	}
	if !strings.Contains(lines[2], "MAE I") {
		t.Fatalf("row content lost: %q", lines[2])
	}
	if Table(nil) != "" {
		t.Fatal("empty table should render empty string")
	}
}

func TestTableRaggedRows(t *testing.T) {
	out := Table([][]string{{"a", "b", "c"}, {"only-one"}})
	if !strings.Contains(out, "only-one") {
		t.Fatalf("ragged row lost: %q", out)
	}
}
