package sweep_test

import (
	"fmt"
	"testing"

	"dlpic/internal/batch"
	"dlpic/internal/core"
	"dlpic/internal/interp"
	"dlpic/internal/nn"
	"dlpic/internal/phasespace"
	"dlpic/internal/pic"
	"dlpic/internal/rng"
	"dlpic/internal/sweep"
)

// dlFixture builds a small untrained-but-deterministic DL solver and a
// scenario grid sized for seconds-scale test runs. The weights are
// random yet fixed by seed, which is all determinism testing needs —
// the physics of an untrained net is meaningless but perfectly
// reproducible.
func dlFixture(t *testing.T) (*core.NNSolver, []sweep.Scenario) {
	t.Helper()
	cfg := pic.Default()
	cfg.Cells = 16
	cfg.ParticlesPerCell = 25
	spec := phasespace.GridSpec{NX: 16, NV: 8, L: cfg.Length, VMin: -0.8, VMax: 0.8, Binning: interp.NGP}
	net, err := nn.NewMLP(nn.MLPConfig{InDim: spec.Size(), OutDim: cfg.Cells, Hidden: 12, HiddenLayers: 2}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	solver, err := core.NewNNSolver(net, spec, phasespace.Normalizer{Min: 0, Max: 50}, cfg.Cells)
	if err != nil {
		t.Fatal(err)
	}
	scs := sweep.Grid(cfg, []float64{0.15, 0.2}, []float64{0, 0.025}, 1, 8, 7)
	return solver, scs
}

// resultKey flattens the determinism-relevant parts of a sweep result
// for bitwise comparison.
func resultKey(r sweep.Result) string {
	s := fmt.Sprintf("%q err=%v fit=%v", r.Scenario.Name, r.Err, r.FitOK)
	for _, smp := range r.Rec.Samples {
		s += fmt.Sprintf(" %x %x %x %x %x",
			smp.Kinetic, smp.Field, smp.Total, smp.Momentum, smp.ModeAmp)
	}
	for i := range r.FinalX {
		s += fmt.Sprintf(" %x:%x", r.FinalX[i], r.FinalV[i])
	}
	return s
}

func runKeys(t *testing.T, scs []sweep.Scenario, opts sweep.Options) []string {
	t.Helper()
	opts.SkipFit = true
	opts.KeepFinalState = true
	results := sweep.Run(scs, opts)
	if err := sweep.FirstError(results); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(results))
	for i, r := range results {
		keys[i] = resultKey(r)
	}
	return keys
}

// TestBatchedSweepMatchesPerCall is the acceptance property of the
// batched path: for every worker count and every batch cap, a batched
// sweep is bit-identical per scenario to the per-call sweep that clones
// the solver for each scenario.
func TestBatchedSweepMatchesPerCall(t *testing.T) {
	solver, scs := dlFixture(t)
	perCall := runKeys(t, scs, sweep.Options{
		Workers: 1,
		Methods: []sweep.MethodSpec{{Name: "mlp", Factory: func(sweep.Scenario) (pic.FieldMethod, error) {
			return solver.Clone()
		}}},
	})
	for _, workers := range []int{1, 2, 4, 8} {
		for _, maxBatch := range []int{1, 2, 64} {
			t.Run(fmt.Sprintf("workers=%d/batch=%d", workers, maxBatch), func(t *testing.T) {
				bs, err := batch.FromNNSolver(solver, maxBatch)
				if err != nil {
					t.Fatal(err)
				}
				defer bs.Close()
				got := runKeys(t, scs, sweep.Options{Workers: workers,
					Methods: []sweep.MethodSpec{{Name: "mlp-batched", Batcher: bs}}})
				for i := range perCall {
					if got[i] != perCall[i] {
						t.Fatalf("scenario %d (%s) diverged from per-call path", i, scs[i].Name)
					}
				}
				st := bs.Server.Stats()
				if st.MaxBatch > maxBatch {
					t.Fatalf("flush of %d rows exceeded cap %d", st.MaxBatch, maxBatch)
				}
				// Every scenario issues Steps+1 solves (initial field +
				// one per step).
				want := len(scs) * (scs[0].Steps + 1)
				if st.Requests != want {
					t.Fatalf("served %d rows, want %d", st.Requests, want)
				}
			})
		}
	}
}

// TestLateJoinerSweepMatchesPerCall pins the server's join/leave
// registration contract across sweep generations: after a first sweep's
// clients have all registered, predicted and left, a *second* sweep's
// late-joining clients on the same live server produce results
// bit-identical to the per-call path. This is the seam the campaign
// service leans on — many campaigns share one inference server through
// batch.Pool instead of constructing one server per sweep.
func TestLateJoinerSweepMatchesPerCall(t *testing.T) {
	solver, scs := dlFixture(t)
	perCall := runKeys(t, scs, sweep.Options{
		Workers: 1,
		Methods: []sweep.MethodSpec{{Name: "mlp", Factory: func(sweep.Scenario) (pic.FieldMethod, error) {
			return solver.Clone()
		}}},
	})
	bs, err := batch.FromNNSolver(solver, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	batchedOpts := sweep.Options{Workers: 4,
		Methods: []sweep.MethodSpec{{Name: "mlp-batched", Batcher: bs}}}
	// Generation 1: a full sweep joins and leaves the live server.
	first := runKeys(t, scs, batchedOpts)
	// Generation 2: late joiners register on the same, still-running
	// server after every generation-1 client has unregistered.
	second := runKeys(t, scs, batchedOpts)
	for i := range perCall {
		if first[i] != perCall[i] {
			t.Fatalf("generation 1 scenario %d diverged from per-call path", i)
		}
		if second[i] != perCall[i] {
			t.Fatalf("late-joiner scenario %d diverged from per-call path", i)
		}
	}
	// Both generations really hit the one server.
	st := bs.Server.Stats()
	want := 2 * len(scs) * (scs[0].Steps + 1)
	if st.Requests != want {
		t.Fatalf("shared server served %d rows, want %d across both generations", st.Requests, want)
	}
}

// TestPooledSolverSweepMatchesPerCall runs two method-registry sweeps
// whose batched backend is acquired from one batch.Pool under the same
// key: the pool memoizes a single server, both sweeps' requesters
// join/leave it, and results stay bit-identical to per-call runs.
func TestPooledSolverSweepMatchesPerCall(t *testing.T) {
	solver, scs := dlFixture(t)
	perCall := runKeys(t, scs, sweep.Options{
		Workers: 1,
		Methods: []sweep.MethodSpec{{Name: "mlp", Factory: func(sweep.Scenario) (pic.FieldMethod, error) {
			return solver.Clone()
		}}},
	})
	pool := batch.NewPool()
	defer pool.Close()
	build := func() (*batch.Solver, error) { return batch.FromNNSolver(solver, 0) }
	var shared *batch.Solver
	for gen := 0; gen < 2; gen++ {
		bs, err := pool.Solver("mlp", build)
		if err != nil {
			t.Fatal(err)
		}
		if gen == 0 {
			shared = bs
		} else if bs != shared {
			t.Fatal("pool handed out a second solver for one key")
		}
		got := runKeys(t, scs, sweep.Options{Workers: 2,
			Methods: []sweep.MethodSpec{{Name: "mlp-batched", Batcher: bs}}})
		for i := range perCall {
			if got[i] != perCall[i] {
				t.Fatalf("pooled generation %d scenario %d diverged from per-call path", gen, i)
			}
		}
	}
}

// TestBatcherMethodMutuallyExclusive pins the MethodSpec contract: one
// spec cannot carry both a per-call factory and a batched backend.
func TestBatcherMethodMutuallyExclusive(t *testing.T) {
	solver, scs := dlFixture(t)
	bs, err := batch.FromNNSolver(solver, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	results := sweep.Run(scs[:1], sweep.Options{
		Methods: []sweep.MethodSpec{{
			Name:    "both",
			Batcher: bs,
			Factory: func(sweep.Scenario) (pic.FieldMethod, error) {
				return solver.Clone()
			},
		}},
	})
	if err := sweep.FirstError(results); err == nil {
		t.Fatal("Factory+Batcher accepted")
	}
}

// TestBatchedSweepScenarioError verifies a failing scenario releases
// its batch client so the remaining scenarios still complete.
func TestBatchedSweepScenarioError(t *testing.T) {
	solver, scs := dlFixture(t)
	bad := scs[0]
	bad.Steps = 0 // invalid: rejected before the simulation is built
	mixed := append([]sweep.Scenario{bad}, scs...)
	bs, err := batch.FromNNSolver(solver, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	results := sweep.Run(mixed, sweep.Options{Workers: 4,
		Methods: []sweep.MethodSpec{{Name: "mlp-batched", Batcher: bs}}})
	if results[0].Err == nil {
		t.Fatal("invalid scenario did not error")
	}
	for i, r := range results[1:] {
		if r.Err != nil {
			t.Fatalf("scenario %d failed after sibling error: %v", i+1, r.Err)
		}
	}
}
