package sweep

import (
	"strings"
	"testing"

	"dlpic/internal/diag"
	"dlpic/internal/grid"
	"dlpic/internal/pic"
	"dlpic/internal/vlasov"
)

// tinyBase returns a seconds-scale configuration for sweep tests.
func tinyBase() pic.Config {
	cfg := pic.Default()
	cfg.Cells = 32
	cfg.ParticlesPerCell = 60
	return cfg
}

func TestGridBuildsCrossProductWithStableSeeds(t *testing.T) {
	base := tinyBase()
	scs := Grid(base, []float64{0.1, 0.2}, []float64{0, 0.01}, 3, 50, 42)
	if len(scs) != 12 {
		t.Fatalf("got %d scenarios, want 12", len(scs))
	}
	seen := map[uint64]bool{}
	for _, sc := range scs {
		if sc.Steps != 50 {
			t.Errorf("%s: steps %d, want 50", sc.Name, sc.Steps)
		}
		if seen[sc.Cfg.Seed] {
			t.Errorf("%s: duplicate seed %d", sc.Name, sc.Cfg.Seed)
		}
		seen[sc.Cfg.Seed] = true
	}
	// Same root seed -> identical list, including derived seeds.
	again := Grid(base, []float64{0.1, 0.2}, []float64{0, 0.01}, 3, 50, 42)
	for i := range scs {
		if scs[i] != again[i] {
			t.Fatalf("scenario %d not reproducible: %+v vs %+v", i, scs[i], again[i])
		}
	}
}

func TestRunMatchesDirectSerialRuns(t *testing.T) {
	scs := Grid(tinyBase(), []float64{0.2}, []float64{0.025}, 2, 40, 7)
	results := Run(scs, Options{Workers: 4, KeepFinalState: true})
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	for i, sc := range scs {
		sim, err := pic.New(sc.Cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		var rec diag.Recorder
		if err := sim.Run(sc.Steps, &rec, nil); err != nil {
			t.Fatal(err)
		}
		if len(rec.Samples) != len(results[i].Rec.Samples) {
			t.Fatalf("scenario %d: %d samples, want %d", i, len(results[i].Rec.Samples), len(rec.Samples))
		}
		for j := range rec.Samples {
			if rec.Samples[j] != results[i].Rec.Samples[j] {
				t.Fatalf("scenario %d sample %d: sweep %+v != direct %+v",
					i, j, results[i].Rec.Samples[j], rec.Samples[j])
			}
		}
		for p := range sim.P.X {
			if results[i].FinalX[p] != sim.P.X[p] || results[i].FinalV[p] != sim.P.V[p] {
				t.Fatalf("scenario %d: final state diverges at particle %d", i, p)
			}
		}
	}
}

func TestRunBitIdenticalAcrossWorkerCounts(t *testing.T) {
	scs := Grid(tinyBase(), []float64{0.15, 0.2}, []float64{0, 0.01}, 1, 30, 3)
	ref := Run(scs, Options{Workers: 1})
	if err := FirstError(ref); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got := Run(scs, Options{Workers: workers})
		for i := range got {
			if got[i].Err != nil {
				t.Fatalf("workers=%d scenario %d: %v", workers, i, got[i].Err)
			}
			for j := range got[i].Rec.Samples {
				if got[i].Rec.Samples[j] != ref[i].Rec.Samples[j] {
					t.Fatalf("workers=%d scenario %d sample %d differs", workers, i, j)
				}
			}
			if got[i].FitOK != ref[i].FitOK || got[i].Growth != ref[i].Growth {
				t.Fatalf("workers=%d scenario %d: fit differs", workers, i)
			}
		}
	}
}

func TestRunFitsGrowthAgainstTheory(t *testing.T) {
	base := tinyBase()
	base.ParticlesPerCell = 200
	scs := Grid(base, []float64{0.2}, []float64{0.025}, 1, 200, 1)
	results := Run(scs, Options{})
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if !r.FitOK {
		t.Fatal("expected a growth fit for the unstable two-stream configuration")
	}
	if r.TheoryGamma <= 0 {
		t.Fatalf("theory gamma %v, want > 0", r.TheoryGamma)
	}
	// The fitted rate should be in the physical ballpark of theory
	// (loose: the tiny run is noisy).
	if r.Growth.Gamma < 0.3*r.TheoryGamma || r.Growth.Gamma > 2.5*r.TheoryGamma {
		t.Fatalf("fitted gamma %v far from theory %v", r.Growth.Gamma, r.TheoryGamma)
	}
	if r.EnergyVariation <= 0 || r.EnergyVariation > 0.5 {
		t.Fatalf("energy variation %v out of plausible range", r.EnergyVariation)
	}
}

func TestRunReportsPerScenarioErrors(t *testing.T) {
	bad := tinyBase()
	bad.Cells = 1 // invalid
	scs := []Scenario{
		{Name: "bad", Cfg: bad, Steps: 10},
		{Name: "good", Cfg: tinyBase(), Steps: 5},
		{Name: "zero-steps", Cfg: tinyBase(), Steps: 0},
	}
	results := Run(scs, Options{Workers: 2, SkipFit: true})
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "bad") {
		t.Fatalf("bad scenario error = %v", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("good scenario failed: %v", results[1].Err)
	}
	if results[2].Err == nil {
		t.Fatal("zero-steps scenario must fail")
	}
	if FirstError(results) == nil {
		t.Fatal("FirstError must surface a failure")
	}
}

func TestRunProgressSerializedAndComplete(t *testing.T) {
	scs := Grid(tinyBase(), []float64{0.1, 0.2, 0.3}, []float64{0}, 2, 5, 2)
	var calls []int
	Run(scs, Options{
		Workers: 4,
		SkipFit: true,
		Progress: func(done, total int) {
			if total != len(scs) {
				t.Errorf("total %d, want %d", total, len(scs))
			}
			calls = append(calls, done)
		},
	})
	if len(calls) != len(scs) {
		t.Fatalf("%d progress calls, want %d", len(calls), len(scs))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress call %d reported done=%d, want %d", i, d, i+1)
		}
	}
}

func TestMethodFactoryCalledPerScenario(t *testing.T) {
	scs := Grid(tinyBase(), []float64{0.2}, []float64{0}, 3, 5, 4)
	var built []string
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	results := Run(scs, Options{
		Workers: 2,
		SkipFit: true,
		Methods: []MethodSpec{{Name: "custom", Factory: func(sc Scenario) (pic.FieldMethod, error) {
			<-mu
			built = append(built, sc.Name)
			mu <- struct{}{}
			g, err := grid.New(sc.Cfg.Cells, sc.Cfg.Length)
			if err != nil {
				return nil, err
			}
			return pic.NewTraditionalField(sc.Cfg, g)
		}}},
	})
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	if len(built) != len(scs) {
		t.Fatalf("factory called %d times, want %d", len(built), len(scs))
	}
}

func TestRunVlasovSweep(t *testing.T) {
	cfg := vlasov.Default()
	cfg.NX, cfg.NV = 32, 32
	scs := []VlasovScenario{
		{Name: "v0=0.2", Cfg: cfg, Init: vlasov.TwoStreamInit{V0: 0.2, Vth: 0.05, Amp: 1e-3, Mode: 1}, Steps: 20},
		{Name: "v0=0.3", Cfg: cfg, Init: vlasov.TwoStreamInit{V0: 0.3, Vth: 0.05, Amp: 1e-3, Mode: 1}, Steps: 20},
	}
	ref := RunVlasov(scs, Options{Workers: 1, SkipFit: true})
	got := RunVlasov(scs, Options{Workers: 2, SkipFit: true})
	for i := range scs {
		if ref[i].Err != nil || got[i].Err != nil {
			t.Fatalf("vlasov scenario %d: %v / %v", i, ref[i].Err, got[i].Err)
		}
		if len(ref[i].Rec.Samples) != 20 {
			t.Fatalf("vlasov scenario %d: %d samples, want 20", i, len(ref[i].Rec.Samples))
		}
		for j := range ref[i].Rec.Samples {
			if ref[i].Rec.Samples[j] != got[i].Rec.Samples[j] {
				t.Fatalf("vlasov scenario %d sample %d differs across worker counts", i, j)
			}
		}
	}
}

// namedTraditionalFactory builds a custom method for multi-method tests
// without importing internal/core (the grid-based traditional field
// under a different registry name suffices to exercise the plumbing).
func namedTraditionalFactory(t *testing.T) MethodFactory {
	t.Helper()
	return func(sc Scenario) (pic.FieldMethod, error) {
		g, err := grid.New(sc.Cfg.Cells, sc.Cfg.Length)
		if err != nil {
			return nil, err
		}
		return pic.NewTraditionalField(sc.Cfg, g)
	}
}

// TestRunMultiMethodScenarioMajor pins the cross-product contract:
// S scenarios x M methods produce S*M results, scenario-major, each
// tagged with its method name, and every method's slice is
// bit-identical to a single-method run of the same registry entry.
func TestRunMultiMethodScenarioMajor(t *testing.T) {
	scs := Grid(tinyBase(), []float64{0.15, 0.2}, []float64{0, 0.01}, 1, 12, 5)
	methods := []MethodSpec{
		{Name: "traditional"},
		{Name: "custom", Factory: namedTraditionalFactory(t)},
	}
	results := Run(scs, Options{Workers: 4, Methods: methods, SkipFit: true})
	if len(results) != len(scs)*len(methods) {
		t.Fatalf("got %d results, want %d", len(results), len(scs)*len(methods))
	}
	for i := range scs {
		for j := range methods {
			r := &results[i*len(methods)+j]
			if r.Err != nil {
				t.Fatalf("cell (%d,%d): %v", i, j, r.Err)
			}
			if r.Scenario.Name != scs[i].Name || r.Method != methods[j].Name {
				t.Fatalf("cell (%d,%d) is (%q, %q), want (%q, %q)",
					i, j, r.Scenario.Name, r.Method, scs[i].Name, methods[j].Name)
			}
		}
	}
	for j, m := range methods {
		single := Run(scs, Options{Workers: 1, Methods: []MethodSpec{m}, SkipFit: true})
		for i := range scs {
			got, want := results[i*len(methods)+j], single[i]
			if len(got.Rec.Samples) != len(want.Rec.Samples) {
				t.Fatalf("method %q scenario %d: %d samples, want %d",
					m.Name, i, len(got.Rec.Samples), len(want.Rec.Samples))
			}
			for k := range want.Rec.Samples {
				if got.Rec.Samples[k] != want.Rec.Samples[k] {
					t.Fatalf("method %q scenario %d sample %d differs from single-method run", m.Name, i, k)
				}
			}
		}
	}
}

// TestRunMultiMethodBitIdenticalAcrossWorkers repeats the worker-count
// invariance property for a multi-method registry.
func TestRunMultiMethodBitIdenticalAcrossWorkers(t *testing.T) {
	scs := Grid(tinyBase(), []float64{0.2}, []float64{0, 0.01}, 1, 10, 11)
	methods := []MethodSpec{
		{Name: "traditional"},
		{Name: "custom", Factory: namedTraditionalFactory(t)},
	}
	ref := Run(scs, Options{Workers: 1, Methods: methods, SkipFit: true, KeepFinalState: true})
	if err := FirstError(ref); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got := Run(scs, Options{Workers: workers, Methods: methods, SkipFit: true, KeepFinalState: true})
		for c := range got {
			if got[c].Err != nil {
				t.Fatalf("workers=%d cell %d: %v", workers, c, got[c].Err)
			}
			for k := range ref[c].Rec.Samples {
				if got[c].Rec.Samples[k] != ref[c].Rec.Samples[k] {
					t.Fatalf("workers=%d cell %d sample %d differs", workers, c, k)
				}
			}
			for p := range ref[c].FinalX {
				if got[c].FinalX[p] != ref[c].FinalX[p] || got[c].FinalV[p] != ref[c].FinalV[p] {
					t.Fatalf("workers=%d cell %d: final state diverges at particle %d", workers, c, p)
				}
			}
		}
	}
}

// TestResolveMethodsValidation pins the registry rules: empty lists
// default to traditional, multi-method entries need unique non-empty
// names, and Factory+Batcher on one spec is rejected.
func TestResolveMethodsValidation(t *testing.T) {
	ms, err := ResolveMethods(nil)
	if err != nil || len(ms) != 1 || ms[0].Name != "traditional" {
		t.Fatalf("empty registry resolved to %+v, %v", ms, err)
	}
	if _, err := ResolveMethods([]MethodSpec{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := ResolveMethods([]MethodSpec{{Name: "a"}, {Factory: namedTraditionalFactory(t)}}); err == nil {
		t.Fatal("unnamed non-traditional spec accepted in multi-method registry")
	}
	// Even alone, a Factory/Batcher spec needs a name: an anonymous
	// backend would collide with a *different* anonymous backend in
	// campaign journal keys across resumes.
	if _, err := ResolveMethods([]MethodSpec{{Factory: namedTraditionalFactory(t)}}); err == nil {
		t.Fatal("single unnamed Factory spec accepted")
	}
	// A single unnamed traditional spec stays valid and gets the name.
	ms, err = ResolveMethods([]MethodSpec{{}})
	if err != nil || ms[0].Name != "traditional" {
		t.Fatalf("unnamed traditional resolved to %+v, %v", ms, err)
	}
	// Registry errors surface in every cell, shape preserved.
	scs := Grid(tinyBase(), []float64{0.2}, []float64{0}, 1, 5, 1)
	bad := Run(scs, Options{Methods: []MethodSpec{{Name: "a"}, {Name: "a"}}})
	if len(bad) != 2*len(scs) {
		t.Fatalf("invalid registry returned %d results, want %d", len(bad), 2*len(scs))
	}
	if FirstError(bad) == nil {
		t.Fatal("invalid registry produced no error")
	}
}
