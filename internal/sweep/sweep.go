// Package sweep is the concurrent scenario-sweep engine: it fans a set
// of PIC (or Vlasov) scenario variants across a bounded worker pool,
// runs each to completion, and collects per-scenario diagnostics plus
// growth-rate fits. It is the substrate for corpus generation
// (cmd/datagen), parameter scans (cmd/experiments -scan), journaled
// campaigns (internal/campaign) and any future batched workload.
//
// Multi-method sweeps. Options.Methods is a named method registry: each
// MethodSpec names one field-method backend (traditional, a
// per-scenario factory, or a shared batched backend), and Run executes
// the full scenario x method cross product on one pool, tagging every
// Result with its method name. This is how the paper's side-by-side
// comparisons (traditional vs MLP vs CNN vs oracle over a scenario
// grid) run as a single campaign.
//
// Determinism: every scenario carries its own pre-derived seed (Grid
// assigns seeds in scenario order before anything runs), each
// simulation owns its state and field method exclusively, and results
// land in input-order slots. Combined with the GOMAXPROCS-invariant
// kernels of internal/parallel, a sweep produces bit-identical results
// for any worker count, including Workers=1.
package sweep

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"dlpic/internal/diag"
	"dlpic/internal/parallel"
	"dlpic/internal/pic"
	"dlpic/internal/rng"
	"dlpic/internal/theory"
	"dlpic/internal/vlasov"
)

// Scenario is one PIC run of a sweep: a named configuration and a step
// count. The Cfg carries its own Seed; Grid pre-derives seeds so that
// the scenario list is fully determined before any run starts.
type Scenario struct {
	Name  string
	Cfg   pic.Config
	Steps int
}

// MethodFactory builds the field method for one scenario. It is called
// once per scenario x method cell inside the worker that runs it, so it
// must be safe for concurrent calls; the returned method is owned by
// that cell's simulation exclusively (FieldMethod instances hold
// scratch state and must not be shared across concurrently stepping
// simulations). A nil factory selects the traditional deposit+Poisson
// method.
type MethodFactory func(sc Scenario) (pic.FieldMethod, error)

// Batcher builds per-scenario field methods that share one batched
// inference backend: instead of every scenario paying its own network
// call (and owning its own network clone), the methods a Batcher hands
// out submit their field requests to a common server that stacks them
// into single batched predictions. internal/batch.Solver implements
// this interface. Methods returned by a Batcher (or a MethodFactory)
// that implement io.Closer are closed when their scenario finishes, so
// the backend can track how many scenarios are still requesting.
type Batcher interface {
	// FieldMethod returns a field method for one scenario of the given
	// configuration, owned by that scenario's simulation exclusively.
	FieldMethod(cfg pic.Config) (pic.FieldMethod, error)
}

// MethodSpec is one entry of a sweep's method registry: a named
// field-method backend. At most one of Factory and Batcher may be set;
// with both nil the spec selects the traditional deposit+Poisson
// method. The zero value (with a Name) is therefore the traditional
// method. Specs are shared across pool workers: Factory must tolerate
// concurrent calls, and a Batcher hands each cell its own client while
// the heavyweight backend stays shared.
type MethodSpec struct {
	// Name identifies the method; it lands in Result.Method and in
	// campaign journal keys. Empty is allowed only when the spec is the
	// implicit traditional default (both Factory and Batcher nil), where
	// it resolves to "traditional".
	Name string
	// Factory builds one field method per scenario (per-call backend).
	Factory MethodFactory
	// Batcher routes every scenario's field solve through one shared
	// batched-inference backend (see internal/batch).
	Batcher Batcher
}

// Validate rejects a spec that sets both Factory and Batcher.
func (m MethodSpec) Validate() error {
	if m.Factory != nil && m.Batcher != nil {
		return fmt.Errorf("sweep: method %q: Factory and Batcher are mutually exclusive", m.label())
	}
	return nil
}

// label returns the display name of the spec, resolving the implicit
// traditional default.
func (m MethodSpec) label() string {
	if m.Name != "" {
		return m.Name
	}
	if m.Factory == nil && m.Batcher == nil {
		return "traditional"
	}
	return "unnamed"
}

// ValidateMethods checks a method registry: every spec must be valid,
// every spec carrying a Factory or Batcher must be named (names key
// results and journal records — an anonymous backend could be silently
// mistaken for a different one on a later resume), and names must be
// unique. Only the implicit traditional default (zero spec) may omit
// its name.
func ValidateMethods(methods []MethodSpec) error {
	seen := make(map[string]bool, len(methods))
	for _, m := range methods {
		if err := m.Validate(); err != nil {
			return err
		}
		name := m.label()
		if name == "unnamed" {
			return fmt.Errorf("sweep: method specs with a Factory or Batcher require a Name")
		}
		if seen[name] {
			return fmt.Errorf("sweep: duplicate method name %q", name)
		}
		seen[name] = true
	}
	return nil
}

// ResolveMethods normalizes a registry for execution: an empty list
// becomes the single traditional method, and every returned spec
// carries a non-empty name. The error is ValidateMethods'.
func ResolveMethods(methods []MethodSpec) ([]MethodSpec, error) {
	if len(methods) == 0 {
		return []MethodSpec{{Name: "traditional"}}, nil
	}
	if err := ValidateMethods(methods); err != nil {
		return nil, err
	}
	out := make([]MethodSpec, len(methods))
	for i, m := range methods {
		m.Name = m.label()
		out[i] = m
	}
	return out, nil
}

// Result is the outcome of one scenario x method cell.
type Result struct {
	Scenario Scenario
	// Method is the name of the method registry entry that produced
	// this result ("traditional" for the default).
	Method string
	// Rec holds the per-step diagnostics of the run.
	Rec diag.Recorder
	// Growth is the fitted exponential growth of the monitored mode
	// (valid when FitOK); TheoryGamma is the cold two-stream linear
	// prediction for the same mode.
	Growth      diag.GrowthFit
	FitOK       bool
	TheoryGamma float64
	// EnergyVariation is max |E(t)-E(0)|/|E(0)| of the total energy;
	// MomentumDrift is P(end) - P(0).
	EnergyVariation float64
	MomentumDrift   float64
	// FinalX, FinalV snapshot the particle phase space at the end of the
	// run (only when Options.KeepFinalState is set).
	FinalX, FinalV []float64
	// Elapsed is the wall-clock time of this cell.
	Elapsed time.Duration
	// Err is non-nil if the cell failed to build or step; the other
	// fields are partial in that case.
	Err error
}

// Failure implements Failer.
func (r Result) Failure() error { return r.Err }

// Options configures a sweep run.
type Options struct {
	// Workers bounds the pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Methods is the named method registry: every scenario runs once
	// per entry, and results carry the entry's name. Empty selects the
	// single traditional method. See MethodSpec.
	Methods []MethodSpec
	// SkipFit disables the growth-rate fit (e.g. for non-unstable
	// configurations where no growth window exists).
	SkipFit bool
	// KeepFinalState snapshots each run's final (x, v) into the Result.
	KeepFinalState bool
	// Progress, if non-nil, is called after each completed cell with
	// the completed and total counts. Calls are serialized.
	Progress func(done, total int)
}

// Collect runs run(i) for every index of [0, n) on a bounded worker
// pool and stores the returned values in input order; progress, if
// non-nil, is called serialized after each completion. It is the shared
// scheduling plumbing under Run, RunVlasov and the campaign engine: any
// per-index result type rides the same pool, ordering and progress
// discipline.
func Collect[R any](n, workers int, progress func(done, total int), run func(i int) R) []R {
	results := make([]R, n)
	var (
		mu   sync.Mutex
		done int
	)
	parallel.ForPool(n, workers, func(i int) {
		results[i] = run(i)
		if progress != nil {
			mu.Lock()
			done++
			progress(done, n)
			mu.Unlock()
		}
	})
	return results
}

// Run executes the scenario x method cross product on a bounded worker
// pool and returns the results scenario-major (all methods of scenario
// 0, then scenario 1, ...): cell (i, j) of S scenarios and M methods is
// results[i*M+j]. With an empty Options.Methods the result list is one
// traditional Result per scenario, exactly the single-method sweep.
// Per-cell failures are reported in Result.Err rather than aborting the
// sweep; FirstError collects them. An invalid method registry fails
// every cell.
func Run(scenarios []Scenario, opts Options) []Result {
	methods, err := ResolveMethods(opts.Methods)
	if err != nil {
		// Shape-preserving failure: the caller can still index cells.
		m := len(opts.Methods)
		results := make([]Result, len(scenarios)*m)
		for c := range results {
			results[c] = Result{Scenario: scenarios[c/m], Method: opts.Methods[c%m].label(), Err: err}
		}
		return results
	}
	m := len(methods)
	return Collect(len(scenarios)*m, opts.Workers, opts.Progress, func(c int) Result {
		return RunScenario(scenarios[c/m], methods[c%m], opts)
	})
}

// RunScenario executes one scenario with one method spec and returns
// its Result. It is the unit of work Run schedules and the campaign
// engine journals; calling it directly runs the cell inline.
func RunScenario(sc Scenario, m MethodSpec, opts Options) (res Result) {
	res = Result{Scenario: sc, Method: m.label()}
	//determlint:ignore nondet Elapsed is wall-clock telemetry only; campaign.Digest and journal keys exclude it by contract
	start := time.Now()
	defer func() { res.Elapsed = time.Since(start) }() //determlint:ignore nondet Elapsed is telemetry, excluded from digests
	if err := m.Validate(); err != nil {
		res.Err = fmt.Errorf("sweep: scenario %q: %w", sc.Name, err)
		return res
	}
	if sc.Steps < 1 {
		res.Err = fmt.Errorf("sweep: scenario %q: Steps = %d, need >= 1", sc.Name, sc.Steps)
		return res
	}
	var method pic.FieldMethod
	switch {
	case m.Batcher != nil:
		fm, err := m.Batcher.FieldMethod(sc.Cfg)
		if err != nil {
			res.Err = fmt.Errorf("sweep: scenario %q: method %q: batcher: %w", sc.Name, res.Method, err)
			return res
		}
		method = fm
	case m.Factory != nil:
		fm, err := m.Factory(sc)
		if err != nil {
			res.Err = fmt.Errorf("sweep: scenario %q: method %q: %w", sc.Name, res.Method, err)
			return res
		}
		method = fm
	}
	// Methods holding backend resources (e.g. a batch-server client)
	// release them when the scenario is done, success or failure.
	if c, ok := method.(io.Closer); ok {
		defer c.Close()
	}
	sim, err := pic.New(sc.Cfg, method)
	if err != nil {
		res.Err = fmt.Errorf("sweep: scenario %q: method %q: %w", sc.Name, res.Method, err)
		return res
	}
	if err := sim.Run(sc.Steps, &res.Rec, nil); err != nil {
		res.Err = fmt.Errorf("sweep: scenario %q: method %q: %w", sc.Name, res.Method, err)
		return res
	}
	res.TheoryGamma = theoryGamma(sc.Cfg)
	metrics := analyzeRun(&res.Rec, opts.SkipFit)
	res.Growth, res.FitOK = metrics.Growth, metrics.FitOK
	res.EnergyVariation = metrics.EnergyVariation
	res.MomentumDrift = metrics.MomentumDrift
	if opts.KeepFinalState {
		res.FinalX = append([]float64(nil), sim.P.X...)
		res.FinalV = append([]float64(nil), sim.P.V...)
	}
	return res
}

// runMetrics are the post-run diagnostics every scenario family (PIC,
// Vlasov) extracts from its recorder.
type runMetrics struct {
	Growth          diag.GrowthFit
	FitOK           bool
	EnergyVariation float64
	MomentumDrift   float64
}

// analyzeRun computes the shared growth-fit and conservation metrics of
// a completed run.
func analyzeRun(rec *diag.Recorder, skipFit bool) runMetrics {
	var m runMetrics
	if !skipFit {
		m.Growth, m.FitOK = fitGrowth(rec)
	}
	if total, err := rec.Series("total"); err == nil {
		m.EnergyVariation = diag.MaxRelativeVariation(total)
	}
	if mom, err := rec.Series("momentum"); err == nil {
		m.MomentumDrift = diag.Drift(mom)
	}
	return m
}

// fitGrowth fits the exponential growth of the recorded mode amplitude
// with an automatic window between the noise floor and saturation.
func fitGrowth(rec *diag.Recorder) (diag.GrowthFit, bool) {
	amps, err := rec.Series("mode")
	if err != nil {
		return diag.GrowthFit{}, false
	}
	times := rec.Times()
	t0, t1, err := diag.AutoGrowthWindow(times, amps, 0.01, 0.3)
	if err != nil {
		return diag.GrowthFit{}, false
	}
	fit, err := diag.FitGrowthRate(times, amps, t0, t1)
	if err != nil {
		return diag.GrowthFit{}, false
	}
	return fit, true
}

// theoryGamma returns the cold two-stream linear growth rate of the
// monitored mode for cfg.
func theoryGamma(cfg pic.Config) float64 {
	ts := theory.TwoStream{Wp: cfg.Wp, V0: cfg.V0, Vth: cfg.Vth}
	k := 2 * math.Pi * float64(cfg.DiagMode) / cfg.Length
	return ts.GrowthRate(k)
}

// Failer is the error accessor every sweep result type implements; the
// generic error plumbing (FirstError) is shared through it.
type Failer interface {
	// Failure returns the per-cell error, or nil on success.
	Failure() error
}

// FirstError returns the first per-cell error in a result set, or nil
// if every cell succeeded. It works for any sweep result family (PIC,
// Vlasov).
func FirstError[R Failer](results []R) error {
	for _, r := range results {
		if err := r.Failure(); err != nil {
			return err
		}
	}
	return nil
}

// Grid builds the cross product of beam speeds x thermal speeds x
// repeats over a base configuration, pre-deriving every run's seed from
// the root seed in scenario order. The scenario list — including the
// seeds — is therefore identical regardless of how the sweep is later
// scheduled.
func Grid(base pic.Config, v0s, vths []float64, repeats, steps int, seed uint64) []Scenario {
	seeder := rng.New(seed)
	out := make([]Scenario, 0, len(v0s)*len(vths)*repeats)
	for _, v0 := range v0s {
		for _, vth := range vths {
			for rep := 0; rep < repeats; rep++ {
				cfg := base
				cfg.V0 = v0
				cfg.Vth = vth
				cfg.Seed = seeder.Uint64()
				out = append(out, Scenario{
					Name:  fmt.Sprintf("v0=%g vth=%g rep=%d", v0, vth, rep),
					Cfg:   cfg,
					Steps: steps,
				})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Vlasov scenarios

// VlasovScenario is one Vlasov-Poisson run of a sweep.
type VlasovScenario struct {
	Name  string
	Cfg   vlasov.Config
	Init  vlasov.TwoStreamInit
	Steps int
}

// VlasovResult is the outcome of one Vlasov scenario.
type VlasovResult struct {
	Scenario        VlasovScenario
	Rec             diag.Recorder
	Growth          diag.GrowthFit
	FitOK           bool
	EnergyVariation float64
	Elapsed         time.Duration
	Err             error
}

// Failure implements Failer.
func (r VlasovResult) Failure() error { return r.Err }

// RunVlasov executes Vlasov scenarios on the same bounded pool
// discipline as Run: results in scenario order, per-scenario errors in
// the Result. The Vlasov solver has no field-method seam, so
// Options.Methods is ignored here.
func RunVlasov(scenarios []VlasovScenario, opts Options) []VlasovResult {
	return Collect(len(scenarios), opts.Workers, opts.Progress, func(i int) VlasovResult {
		return runOneVlasov(scenarios[i], opts)
	})
}

func runOneVlasov(sc VlasovScenario, opts Options) (res VlasovResult) {
	res = VlasovResult{Scenario: sc}
	//determlint:ignore nondet Elapsed is wall-clock telemetry only; no digest or journal key folds it in
	start := time.Now()
	defer func() { res.Elapsed = time.Since(start) }() //determlint:ignore nondet Elapsed is telemetry, excluded from digests
	if sc.Steps < 1 {
		res.Err = fmt.Errorf("sweep: vlasov scenario %q: Steps = %d, need >= 1", sc.Name, sc.Steps)
		return res
	}
	solver, err := vlasov.New(sc.Cfg, sc.Init)
	if err != nil {
		res.Err = fmt.Errorf("sweep: vlasov scenario %q: %w", sc.Name, err)
		return res
	}
	if err := solver.Run(sc.Steps, &res.Rec); err != nil {
		res.Err = fmt.Errorf("sweep: vlasov scenario %q: %w", sc.Name, err)
		return res
	}
	metrics := analyzeRun(&res.Rec, opts.SkipFit)
	res.Growth, res.FitOK = metrics.Growth, metrics.FitOK
	res.EnergyVariation = metrics.EnergyVariation
	return res
}
