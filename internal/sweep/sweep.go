// Package sweep is the concurrent scenario-sweep engine: it fans a set
// of PIC (or Vlasov) scenario variants across a bounded worker pool,
// runs each to completion, and collects per-scenario diagnostics plus
// growth-rate fits. It is the substrate for corpus generation
// (cmd/datagen), parameter scans (cmd/experiments -scan) and any future
// batched workload.
//
// Determinism: every scenario carries its own pre-derived seed (Grid
// assigns seeds in scenario order before anything runs), each
// simulation owns its state and field method exclusively, and results
// land in input-order slots. Combined with the GOMAXPROCS-invariant
// kernels of internal/parallel, a sweep produces bit-identical results
// for any worker count, including Workers=1.
package sweep

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"dlpic/internal/diag"
	"dlpic/internal/parallel"
	"dlpic/internal/pic"
	"dlpic/internal/rng"
	"dlpic/internal/theory"
	"dlpic/internal/vlasov"
)

// Scenario is one PIC run of a sweep: a named configuration and a step
// count. The Cfg carries its own Seed; Grid pre-derives seeds so that
// the scenario list is fully determined before any run starts.
type Scenario struct {
	Name  string
	Cfg   pic.Config
	Steps int
}

// MethodFactory builds the field method for one scenario. It is called
// once per scenario inside the worker that runs it; the returned method
// is owned by that scenario's simulation exclusively (FieldMethod
// instances hold scratch state and must not be shared across
// concurrently stepping simulations). A nil factory selects the
// traditional deposit+Poisson method.
type MethodFactory func(sc Scenario) (pic.FieldMethod, error)

// Batcher builds per-scenario field methods that share one batched
// inference backend: instead of every scenario paying its own network
// call (and owning its own network clone), the methods a Batcher hands
// out submit their field requests to a common server that stacks them
// into single batched predictions. internal/batch.Solver implements
// this interface. Methods returned by a Batcher (or a MethodFactory)
// that implement io.Closer are closed when their scenario finishes, so
// the backend can track how many scenarios are still requesting.
type Batcher interface {
	// FieldMethod returns a field method for one scenario of the given
	// configuration, owned by that scenario's simulation exclusively.
	FieldMethod(cfg pic.Config) (pic.FieldMethod, error)
}

// Result is the outcome of one scenario.
type Result struct {
	Scenario Scenario
	// Rec holds the per-step diagnostics of the run.
	Rec diag.Recorder
	// Growth is the fitted exponential growth of the monitored mode
	// (valid when FitOK); TheoryGamma is the cold two-stream linear
	// prediction for the same mode.
	Growth      diag.GrowthFit
	FitOK       bool
	TheoryGamma float64
	// EnergyVariation is max |E(t)-E(0)|/|E(0)| of the total energy;
	// MomentumDrift is P(end) - P(0).
	EnergyVariation float64
	MomentumDrift   float64
	// FinalX, FinalV snapshot the particle phase space at the end of the
	// run (only when Options.KeepFinalState is set).
	FinalX, FinalV []float64
	// Elapsed is the wall-clock time of this scenario.
	Elapsed time.Duration
	// Err is non-nil if the scenario failed to build or step; the other
	// fields are partial in that case.
	Err error
}

// Options configures a sweep run.
type Options struct {
	// Workers bounds the pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Method builds the per-scenario field method (nil = traditional).
	Method MethodFactory
	// Batcher, if non-nil, routes every scenario's field solve through
	// a shared batched-inference backend (see internal/batch). Results
	// are bit-identical to the per-call path at any worker count and
	// batch size. Mutually exclusive with Method.
	Batcher Batcher
	// SkipFit disables the growth-rate fit (e.g. for non-unstable
	// configurations where no growth window exists).
	SkipFit bool
	// KeepFinalState snapshots each run's final (x, v) into the Result.
	KeepFinalState bool
	// Progress, if non-nil, is called after each completed scenario with
	// the completed and total counts. Calls are serialized.
	Progress func(done, total int)
}

// Run executes every scenario on a bounded worker pool and returns the
// results in scenario order. Per-scenario failures are reported in
// Result.Err rather than aborting the sweep; FirstError collects them.
func Run(scenarios []Scenario, opts Options) []Result {
	results := make([]Result, len(scenarios))
	var (
		mu   sync.Mutex
		done int
	)
	parallel.ForPool(len(scenarios), opts.Workers, func(i int) {
		results[i] = runOne(scenarios[i], opts)
		if opts.Progress != nil {
			mu.Lock()
			done++
			opts.Progress(done, len(scenarios))
			mu.Unlock()
		}
	})
	return results
}

func runOne(sc Scenario, opts Options) (res Result) {
	res = Result{Scenario: sc}
	start := time.Now()
	defer func() { res.Elapsed = time.Since(start) }()
	if sc.Steps < 1 {
		res.Err = fmt.Errorf("sweep: scenario %q: Steps = %d, need >= 1", sc.Name, sc.Steps)
		return res
	}
	var method pic.FieldMethod
	switch {
	case opts.Method != nil && opts.Batcher != nil:
		res.Err = fmt.Errorf("sweep: scenario %q: Options.Method and Options.Batcher are mutually exclusive", sc.Name)
		return res
	case opts.Batcher != nil:
		m, err := opts.Batcher.FieldMethod(sc.Cfg)
		if err != nil {
			res.Err = fmt.Errorf("sweep: scenario %q: batcher: %w", sc.Name, err)
			return res
		}
		method = m
	case opts.Method != nil:
		m, err := opts.Method(sc)
		if err != nil {
			res.Err = fmt.Errorf("sweep: scenario %q: method: %w", sc.Name, err)
			return res
		}
		method = m
	}
	// Methods holding backend resources (e.g. a batch-server client)
	// release them when the scenario is done, success or failure.
	if c, ok := method.(io.Closer); ok {
		defer c.Close()
	}
	sim, err := pic.New(sc.Cfg, method)
	if err != nil {
		res.Err = fmt.Errorf("sweep: scenario %q: %w", sc.Name, err)
		return res
	}
	if err := sim.Run(sc.Steps, &res.Rec, nil); err != nil {
		res.Err = fmt.Errorf("sweep: scenario %q: %w", sc.Name, err)
		return res
	}
	res.TheoryGamma = theoryGamma(sc.Cfg)
	if !opts.SkipFit {
		res.Growth, res.FitOK = fitGrowth(&res.Rec)
	}
	if total, err := res.Rec.Series("total"); err == nil {
		res.EnergyVariation = diag.MaxRelativeVariation(total)
	}
	if mom, err := res.Rec.Series("momentum"); err == nil {
		res.MomentumDrift = diag.Drift(mom)
	}
	if opts.KeepFinalState {
		res.FinalX = append([]float64(nil), sim.P.X...)
		res.FinalV = append([]float64(nil), sim.P.V...)
	}
	return res
}

// fitGrowth fits the exponential growth of the recorded mode amplitude
// with an automatic window between the noise floor and saturation.
func fitGrowth(rec *diag.Recorder) (diag.GrowthFit, bool) {
	amps, err := rec.Series("mode")
	if err != nil {
		return diag.GrowthFit{}, false
	}
	times := rec.Times()
	t0, t1, err := diag.AutoGrowthWindow(times, amps, 0.01, 0.3)
	if err != nil {
		return diag.GrowthFit{}, false
	}
	fit, err := diag.FitGrowthRate(times, amps, t0, t1)
	if err != nil {
		return diag.GrowthFit{}, false
	}
	return fit, true
}

// theoryGamma returns the cold two-stream linear growth rate of the
// monitored mode for cfg.
func theoryGamma(cfg pic.Config) float64 {
	ts := theory.TwoStream{Wp: cfg.Wp, V0: cfg.V0, Vth: cfg.Vth}
	k := 2 * math.Pi * float64(cfg.DiagMode) / cfg.Length
	return ts.GrowthRate(k)
}

// FirstError returns the first per-scenario error in a result set, or
// nil if every scenario succeeded.
func FirstError(results []Result) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}

// Grid builds the cross product of beam speeds x thermal speeds x
// repeats over a base configuration, pre-deriving every run's seed from
// the root seed in scenario order. The scenario list — including the
// seeds — is therefore identical regardless of how the sweep is later
// scheduled.
func Grid(base pic.Config, v0s, vths []float64, repeats, steps int, seed uint64) []Scenario {
	seeder := rng.New(seed)
	out := make([]Scenario, 0, len(v0s)*len(vths)*repeats)
	for _, v0 := range v0s {
		for _, vth := range vths {
			for rep := 0; rep < repeats; rep++ {
				cfg := base
				cfg.V0 = v0
				cfg.Vth = vth
				cfg.Seed = seeder.Uint64()
				out = append(out, Scenario{
					Name:  fmt.Sprintf("v0=%g vth=%g rep=%d", v0, vth, rep),
					Cfg:   cfg,
					Steps: steps,
				})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Vlasov scenarios

// VlasovScenario is one Vlasov-Poisson run of a sweep.
type VlasovScenario struct {
	Name  string
	Cfg   vlasov.Config
	Init  vlasov.TwoStreamInit
	Steps int
}

// VlasovResult is the outcome of one Vlasov scenario.
type VlasovResult struct {
	Scenario        VlasovScenario
	Rec             diag.Recorder
	Growth          diag.GrowthFit
	FitOK           bool
	EnergyVariation float64
	Elapsed         time.Duration
	Err             error
}

// RunVlasov executes Vlasov scenarios on the same bounded pool
// discipline as Run: results in scenario order, per-scenario errors in
// the Result.
func RunVlasov(scenarios []VlasovScenario, opts Options) []VlasovResult {
	results := make([]VlasovResult, len(scenarios))
	var (
		mu   sync.Mutex
		done int
	)
	parallel.ForPool(len(scenarios), opts.Workers, func(i int) {
		results[i] = runOneVlasov(scenarios[i], opts)
		if opts.Progress != nil {
			mu.Lock()
			done++
			opts.Progress(done, len(scenarios))
			mu.Unlock()
		}
	})
	return results
}

func runOneVlasov(sc VlasovScenario, opts Options) (res VlasovResult) {
	res = VlasovResult{Scenario: sc}
	start := time.Now()
	defer func() { res.Elapsed = time.Since(start) }()
	if sc.Steps < 1 {
		res.Err = fmt.Errorf("sweep: vlasov scenario %q: Steps = %d, need >= 1", sc.Name, sc.Steps)
		return res
	}
	solver, err := vlasov.New(sc.Cfg, sc.Init)
	if err != nil {
		res.Err = fmt.Errorf("sweep: vlasov scenario %q: %w", sc.Name, err)
		return res
	}
	if err := solver.Run(sc.Steps, &res.Rec); err != nil {
		res.Err = fmt.Errorf("sweep: vlasov scenario %q: %w", sc.Name, err)
		return res
	}
	if !opts.SkipFit {
		res.Growth, res.FitOK = fitGrowth(&res.Rec)
	}
	if total, err := res.Rec.Series("total"); err == nil {
		res.EnergyVariation = diag.MaxRelativeVariation(total)
	}
	return res
}
