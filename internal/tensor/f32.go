package tensor

import (
	"dlpic/internal/parallel"
)

// Float32 GEMM. The opt-in float32 inference path (nn.PredictBatch32)
// runs its dense layers through this kernel against converted weights:
// half the memory traffic of the float64 GEMM for the same blocking.
// It follows the same determinism contract as every other kernel here
// — each output element is one k-ascending accumulation chain (zero
// a-entries skipped, like matMulNN) owned by exactly one worker, so
// results are bit-identical at any GOMAXPROCS and per-row identical at
// any batch size. What float32 changes is precision, not determinism;
// the accuracy harness in internal/nn bounds that drift against the
// float64 path.

// MatMulF32 computes dst = a * b for row-major float32 matrices with a
// m x kk, b kk x n, dst m x n (no transposes — the inference forward
// pass needs only NN). Same row blocks, k-unroll and KC blocking as
// the float64 nnKernel; deterministic at any GOMAXPROCS.
func MatMulF32(dst, a, b []float32, m, kk, n int) {
	if len(a) != m*kk || len(b) != kk*n || len(dst) != m*n {
		panic("tensor: MatMulF32 shape/length mismatch")
	}
	// float32 rows are half the bytes, so twice as many b rows fit the
	// same L2 budget.
	kcap := gemmKCBytes / 4 / n
	if kcap < gemmKCMin {
		kcap = gemmKCMin
	}
	parallel.ForThreshold(m, gemmParThreshold, func(is, ie int) {
		for kb := 0; kb < kk; kb += kcap {
			ke := min(kb+kcap, kk)
			for ib := is; ib < ie; ib += gemmRowBlock {
				im := min(ib+gemmRowBlock, ie)
				if kb == 0 {
					for i := ib; i < im; i++ {
						di := dst[i*n : i*n+n]
						for j := range di {
							di[j] = 0
						}
					}
				}
				k := kb
				for ; k+1 < ke; k += 2 {
					bk0 := b[k*n : k*n+n]
					bk1 := b[(k+1)*n : (k+1)*n+n]
					for i := ib; i < im; i++ {
						v0 := a[i*kk+k]
						v1 := a[i*kk+k+1]
						if v0 == 0 && v1 == 0 {
							continue
						}
						di := dst[i*n : i*n+n]
						switch {
						case v0 != 0 && v1 != 0:
							for j, bv := range bk0 {
								s := di[j] + v0*bv
								di[j] = s + v1*bk1[j]
							}
						case v0 != 0:
							for j, bv := range bk0 {
								di[j] += v0 * bv
							}
						default:
							for j, bv := range bk1 {
								di[j] += v1 * bv
							}
						}
					}
				}
				if k < ke {
					bk := b[k*n : k*n+n]
					for i := ib; i < im; i++ {
						if v := a[i*kk+k]; v != 0 {
							di := dst[i*n : i*n+n]
							for j, bv := range bk {
								di[j] += v * bv
							}
						}
					}
				}
			}
		}
	})
}
