package tensor

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"dlpic/internal/rng"
)

// gemmShapes is the property-test grid: degenerate single-element
// products, sub-block and exact-block shapes, every remainder class
// around the row block and the NT register tile, odd and even k (the
// k-unroll tail), and tall/wide paper-flavoured shapes.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 5, 1},
	{2, 3, 4},
	{3, 7, 5},
	{4, 4, 4},
	{4, 16, 4},
	{5, 9, 6},
	{7, 13, 9},
	{8, 8, 8},
	{8, 31, 17},
	{9, 17, 33},
	{16, 64, 63},
	{16, 64, 64},
	{16, 64, 65},
	{17, 40, 67},
	{33, 128, 12},
	{64, 100, 70},
	{100, 64, 3},
	{3, 300, 100},
}

// randTensorSparse fills a tensor with normal variates, with roughly a
// quarter of the entries forced to exact zero so every kernel's
// zero-skip branch is exercised (ReLU activations look like this).
func randTensorSparse(r *rng.Source, rows, cols int) *Tensor {
	t := New(rows, cols)
	t.RandomNormal(r, 1)
	for i := range t.Data {
		if r.Float64() < 0.25 {
			t.Data[i] = 0
		}
	}
	return t
}

// diffBits returns the first index where got and want differ bitwise,
// or -1. NaNs with equal bit patterns compare equal.
func diffBits(got, want []float64) int {
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return i
		}
	}
	return -1
}

// TestMatMulTiledBitEqualsReference is the tiling contract: for every
// shape x transpose x acc combination, at several GOMAXPROCS settings,
// the tiled kernels must agree with the serial reference loops bit for
// bit on every element.
func TestMatMulTiledBitEqualsReference(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	r := rng.New(42)
	for _, procs := range []int{1, 2, 3, 8} {
		runtime.GOMAXPROCS(procs)
		for _, sh := range gemmShapes {
			for _, transA := range []bool{false, true} {
				for _, transB := range []bool{false, true} {
					for _, acc := range []bool{false, true} {
						am, ak := sh.m, sh.k
						if transA {
							am, ak = ak, am
						}
						bk, bn := sh.k, sh.n
						if transB {
							bk, bn = bn, bk
						}
						a := randTensorSparse(r, am, ak)
						b := randTensorSparse(r, bk, bn)
						got := randTensorSparse(r, sh.m, sh.n)
						want := got.Clone() // same starting dst so acc chains match
						if acc {
							MatMulAcc(got, a, b, transA, transB)
							MatMulAccRef(want, a, b, transA, transB)
						} else {
							MatMul(got, a, b, transA, transB)
							MatMulRef(want, a, b, transA, transB)
						}
						if i := diffBits(got.Data, want.Data); i >= 0 {
							t.Fatalf("procs=%d m=%d k=%d n=%d transA=%v transB=%v acc=%v: element %d tiled=%x ref=%x",
								procs, sh.m, sh.k, sh.n, transA, transB, acc,
								i, math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
						}
					}
				}
			}
		}
	}
}

// TestMatMulGOMAXPROCSInvariant pins the stronger form of determinism:
// the tiled kernels produce bitwise the same output at every
// GOMAXPROCS, not merely reference-equal ones.
func TestMatMulGOMAXPROCSInvariant(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	r := rng.New(7)
	a := randTensorSparse(r, 33, 70)
	b := randTensorSparse(r, 70, 130)
	runtime.GOMAXPROCS(1)
	base := New(33, 130)
	MatMul(base, a, b, false, false)
	for _, procs := range []int{2, 5, 8} {
		runtime.GOMAXPROCS(procs)
		got := New(33, 130)
		MatMul(got, a, b, false, false)
		if i := diffBits(got.Data, base.Data); i >= 0 {
			t.Fatalf("GOMAXPROCS=%d differs from 1 at element %d", procs, i)
		}
	}
}

// TestMatMulPackPooled proves the kernels allocate no per-call
// scratch in steady state: TN's packed a-transpose comes from the
// pool (an unpooled pack would cost a ~1 MiB allocation per gradient
// GEMM), and NN/NT need no scratch at all.
func TestMatMulPackPooled(t *testing.T) {
	r := rng.New(3)
	for _, tc := range []struct {
		m, k, n        int
		transA, transB bool
	}{
		{64, 256, 512, false, false}, // NN: no scratch
		{512, 64, 256, true, false},  // TN: pooled a-transpose pack
		{64, 512, 256, false, true},  // NT: no scratch
	} {
		am, ak := tc.m, tc.k
		if tc.transA {
			am, ak = ak, am
		}
		bk, bn := tc.k, tc.n
		if tc.transB {
			bk, bn = bn, bk
		}
		a := randTensorSparse(r, am, ak)
		b := randTensorSparse(r, bk, bn)
		dst := New(tc.m, tc.n)
		MatMul(dst, a, b, tc.transA, tc.transB) // warm the pool
		allocs := testing.AllocsPerRun(10, func() {
			MatMul(dst, a, b, tc.transA, tc.transB)
		})
		// Budget covers goroutine fan-out bookkeeping only.
		if allocs > 8 {
			t.Errorf("m=%d k=%d n=%d transA=%v transB=%v: %v allocs/op, scratch is not pooled",
				tc.m, tc.k, tc.n, tc.transA, tc.transB, allocs)
		}
	}
}

// TestMatMulF32AgainstFloat64 bounds the float32 kernel against the
// float64 reference: same inputs rounded to float32 must agree within
// float32 epsilon scaled by the dot length.
func TestMatMulF32AgainstFloat64(t *testing.T) {
	r := rng.New(11)
	for _, sh := range []struct{ m, k, n int }{{1, 1, 1}, {3, 7, 5}, {16, 64, 64}, {13, 100, 37}, {64, 128, 16}} {
		a64 := randTensorSparse(r, sh.m, sh.k)
		b64 := randTensorSparse(r, sh.k, sh.n)
		a32 := make([]float32, len(a64.Data))
		b32 := make([]float32, len(b64.Data))
		for i, v := range a64.Data {
			a32[i] = float32(v)
			a64.Data[i] = float64(a32[i])
		}
		for i, v := range b64.Data {
			b32[i] = float32(v)
			b64.Data[i] = float64(b32[i])
		}
		want := New(sh.m, sh.n)
		MatMulRef(want, a64, b64, false, false)
		got := make([]float32, sh.m*sh.n)
		MatMulF32(got, a32, b32, sh.m, sh.k, sh.n)
		scale := want.MaxAbs()
		if scale == 0 {
			scale = 1
		}
		tol := float64(sh.k) * (1 << 1) * (1.0 / (1 << 23)) * scale
		for i := range got {
			if d := math.Abs(float64(got[i]) - want.Data[i]); d > tol {
				t.Fatalf("m=%d k=%d n=%d elem %d: f32=%g f64=%g drift %g > tol %g",
					sh.m, sh.k, sh.n, i, got[i], want.Data[i], d, tol)
			}
		}
	}
}

// TestMatMulF32Deterministic pins the float32 kernel's own contract:
// bit-identical at any GOMAXPROCS, and per-row identical between a
// stacked batch and row-at-a-time calls (what makes the batched f32
// inference server equivalent to per-call f32 solves).
func TestMatMulF32Deterministic(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	r := rng.New(23)
	const m, kk, n = 17, 90, 70
	a64 := randTensorSparse(r, m, kk)
	b64 := randTensorSparse(r, kk, n)
	a := make([]float32, m*kk)
	b := make([]float32, kk*n)
	for i, v := range a64.Data {
		a[i] = float32(v)
	}
	for i, v := range b64.Data {
		b[i] = float32(v)
	}
	runtime.GOMAXPROCS(1)
	base := make([]float32, m*n)
	MatMulF32(base, a, b, m, kk, n)
	for _, procs := range []int{2, 8} {
		runtime.GOMAXPROCS(procs)
		got := make([]float32, m*n)
		MatMulF32(got, a, b, m, kk, n)
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(base[i]) {
				t.Fatalf("GOMAXPROCS=%d differs from 1 at element %d", procs, i)
			}
		}
	}
	runtime.GOMAXPROCS(prev)
	for i := 0; i < m; i++ {
		row := make([]float32, n)
		MatMulF32(row, a[i*kk:(i+1)*kk], b, 1, kk, n)
		for j := range row {
			if math.Float32bits(row[j]) != math.Float32bits(base[i*n+j]) {
				t.Fatalf("row %d elem %d: batch-1 differs from stacked batch", i, j)
			}
		}
	}
}

// TestMatMulRefPanics pins the shared validation on the reference
// entry points (shape mismatch and aliasing are caller bugs there
// too).
func TestMatMulRefPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	a := New(2, 3)
	b := New(3, 4)
	expectPanic("bad dst", func() { MatMulRef(New(2, 5), a, b, false, false) })
	expectPanic("alias", func() { MatMulRef(a, a, b, false, false) })
	expectPanic("inner dims", func() { MatMulAccRef(New(2, 2), a, New(2, 2), false, false) })
}

// BenchmarkGEMMTiledVsRef reports the structural tiled-vs-reference
// ratio in one process (the cross-session-noise-proof form of the
// speedup claim). The root bench suite's BenchmarkMatMul_* grid is the
// recorded variant.
func BenchmarkGEMMTiledVsRef(b *testing.B) {
	r := rng.New(5)
	const m, kk, n = 64, 1024, 512
	a := randTensorSparse(r, m, kk)
	w := randTensorSparse(r, kk, n)
	dst := New(m, n)
	for _, v := range []struct {
		name string
		f    func()
	}{
		{"tiled", func() { MatMul(dst, a, w, false, false) }},
		{"ref", func() { MatMulRef(dst, a, w, false, false) }},
	} {
		b.Run(fmt.Sprintf("%s-%dx%dx%d", v.name, m, kk, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v.f()
			}
		})
	}
}
