package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"dlpic/internal/rng"
)

// matMulRef is a naive triple-loop reference for property tests.
func matMulRef(a, b *Tensor, transA, transB bool) *Tensor {
	get := func(t *Tensor, i, j int, trans bool) float64 {
		if trans {
			return t.At(j, i)
		}
		return t.At(i, j)
	}
	am, ak := a.Shape[0], a.Shape[1]
	if transA {
		am, ak = ak, am
	}
	_, bn := b.Shape[0], b.Shape[1]
	if transB {
		bn = b.Shape[0]
	}
	out := New(am, bn)
	for i := 0; i < am; i++ {
		for j := 0; j < bn; j++ {
			var s float64
			for k := 0; k < ak; k++ {
				s += get(a, i, k, transA) * get(b, k, j, transB)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randTensor(r *rng.Source, rows, cols int) *Tensor {
	t := New(rows, cols)
	t.RandomNormal(r, 1)
	return t
}

func TestNewAndAccessors(t *testing.T) {
	a := New(3, 4)
	if a.Len() != 12 || a.Rows() != 3 || a.Cols() != 4 {
		t.Fatalf("shape accessors wrong: %v", a.Shape)
	}
	a.Set(1, 2, 7.5)
	if a.At(1, 2) != 7.5 {
		t.Fatalf("At/Set roundtrip failed")
	}
	if a.Data[1*4+2] != 7.5 {
		t.Fatalf("row-major layout violated")
	}
	row := a.Row(1)
	if len(row) != 4 || row[2] != 7.5 {
		t.Fatalf("Row view wrong: %v", row)
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(3, 0)
}

func TestFromSlice(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	a := FromSlice(data, 2, 3)
	if a.At(1, 2) != 6 {
		t.Fatalf("FromSlice layout wrong")
	}
	data[0] = 99 // shared storage
	if a.At(0, 0) != 99 {
		t.Fatalf("FromSlice must not copy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice size mismatch did not panic")
		}
	}()
	FromSlice(data, 4, 2)
}

func TestCloneAndReshape(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	c := a.Clone()
	c.Data[0] = -1
	if a.Data[0] == -1 {
		t.Fatal("Clone shares storage")
	}
	v := a.Reshape(4, 1)
	v.Data[1] = 42 // view shares storage
	if a.Data[1] != 42 {
		t.Fatal("Reshape must share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad reshape did not panic")
		}
	}()
	a.Reshape(3, 1)
}

func TestZeroFillScale(t *testing.T) {
	a := New(2, 2)
	a.Fill(3)
	a.Scale(2)
	for _, v := range a.Data {
		if v != 6 {
			t.Fatalf("Fill+Scale = %v, want 6", v)
		}
	}
	a.Zero()
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	dst := New(2, 2)
	Add(dst, a, b)
	if dst.At(1, 1) != 44 {
		t.Fatalf("Add wrong: %v", dst.Data)
	}
	Hadamard(dst, a, b)
	if dst.At(0, 1) != 40 {
		t.Fatalf("Hadamard wrong: %v", dst.Data)
	}
	AddScaled(dst, 0.5, b)
	if dst.At(0, 1) != 50 {
		t.Fatalf("AddScaled wrong: %v", dst.Data)
	}
}

func TestAddRowVectorAndSumRows(t *testing.T) {
	a := New(3, 2)
	AddRowVector(a, []float64{1, -2})
	for i := 0; i < 3; i++ {
		if a.At(i, 0) != 1 || a.At(i, 1) != -2 {
			t.Fatalf("broadcast failed at row %d", i)
		}
	}
	sums := make([]float64, 2)
	SumRows(sums, a)
	if sums[0] != 3 || sums[1] != -6 {
		t.Fatalf("SumRows = %v, want [3 -6]", sums)
	}
}

func TestMaxAbsAndHasNaN(t *testing.T) {
	a := FromSlice([]float64{-5, 3, 2}, 1, 3)
	if a.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
	if a.HasNaN() {
		t.Fatal("false NaN positive")
	}
	a.Data[1] = math.Inf(-1)
	if !a.HasNaN() {
		t.Fatal("Inf not detected")
	}
	a.Data[1] = math.NaN()
	if !a.HasNaN() {
		t.Fatal("NaN not detected")
	}
}

func TestMatMulAgainstReferenceAllTransposes(t *testing.T) {
	r := rng.New(1)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {16, 16, 16}, {33, 17, 29},
	}
	for _, s := range shapes {
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				var a, b *Tensor
				if transA {
					a = randTensor(r, s.k, s.m)
				} else {
					a = randTensor(r, s.m, s.k)
				}
				if transB {
					b = randTensor(r, s.n, s.k)
				} else {
					b = randTensor(r, s.k, s.n)
				}
				got := New(s.m, s.n)
				MatMul(got, a, b, transA, transB)
				want := matMulRef(a, b, transA, transB)
				for i := range got.Data {
					if math.Abs(got.Data[i]-want.Data[i]) > 1e-10*float64(s.k) {
						t.Fatalf("shape %v transA=%v transB=%v: mismatch at %d: %v vs %v",
							s, transA, transB, i, got.Data[i], want.Data[i])
					}
				}
			}
		}
	}
}

func TestMatMulLargeParallel(t *testing.T) {
	r := rng.New(2)
	a := randTensor(r, 130, 70)
	b := randTensor(r, 70, 90)
	got := New(130, 90)
	MatMul(got, a, b, false, false)
	want := matMulRef(a, b, false, false)
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatalf("parallel mismatch at %d", i)
		}
	}
}

// Property: (A B) C == A (B C).
func TestMatMulAssociativityProperty(t *testing.T) {
	r := rng.New(3)
	f := func(mRaw, kRaw, nRaw, pRaw uint8) bool {
		m, k, n, p := int(mRaw%6)+1, int(kRaw%6)+1, int(nRaw%6)+1, int(pRaw%6)+1
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		c := randTensor(r, n, p)
		ab := New(m, n)
		MatMul(ab, a, b, false, false)
		abc1 := New(m, p)
		MatMul(abc1, ab, c, false, false)
		bc := New(k, p)
		MatMul(bc, b, c, false, false)
		abc2 := New(m, p)
		MatMul(abc2, a, bc, false, false)
		for i := range abc1.Data {
			if math.Abs(abc1.Data[i]-abc2.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A^T)^T A x == A^T (A x) exercised through MatVec vs MatMul.
func TestMatVecMatchesMatMul(t *testing.T) {
	r := rng.New(4)
	a := randTensor(r, 13, 7)
	x := make([]float64, 7)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	got := make([]float64, 13)
	MatVec(got, a, x)
	xt := FromSlice(append([]float64(nil), x...), 7, 1)
	want := New(13, 1)
	MatMul(want, a, xt, false, false)
	for i := range got {
		if math.Abs(got[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("MatVec mismatch at %d", i)
		}
	}
}

func TestMatMulPanics(t *testing.T) {
	cases := []func(){
		func() { MatMul(New(2, 2), New(2, 3), New(2, 3), false, false) }, // inner mismatch
		func() { MatMul(New(3, 3), New(2, 3), New(3, 2), false, false) }, // dst mismatch
		func() { a := New(2, 2); MatMul(a, a, New(2, 2), false, false) }, // aliasing
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestRandomInitializers(t *testing.T) {
	r := rng.New(5)
	a := New(100, 100)
	a.RandomNormal(r, 0.5)
	var sum, sumSq float64
	for _, v := range a.Data {
		sum += v
		sumSq += v * v
	}
	n := float64(a.Len())
	if std := math.Sqrt(sumSq/n - (sum/n)*(sum/n)); math.Abs(std-0.5) > 0.02 {
		t.Errorf("RandomNormal std %v, want 0.5", std)
	}
	b := New(100, 100)
	b.RandomUniform(r, 0.3)
	for _, v := range b.Data {
		if v < -0.3 || v > 0.3 {
			t.Fatalf("uniform value %v outside [-0.3,0.3]", v)
		}
	}
}

func TestSameShape(t *testing.T) {
	if !SameShape(New(2, 3), New(2, 3)) {
		t.Error("equal shapes reported different")
	}
	if SameShape(New(2, 3), New(3, 2)) {
		t.Error("different shapes reported equal")
	}
	if SameShape(New(6), New(2, 3)) {
		t.Error("different ranks reported equal")
	}
}

func BenchmarkMatMul64x4096x256(b *testing.B) {
	r := rng.New(1)
	a := randTensor(r, 64, 4096)
	w := randTensor(r, 4096, 256)
	dst := New(64, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, w, false, false)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	r := rng.New(1)
	a := randTensor(r, 256, 256)
	w := randTensor(r, 256, 256)
	dst := New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, w, false, false)
	}
}
