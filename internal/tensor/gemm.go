package tensor

import (
	"sync"

	"dlpic/internal/parallel"
)

// Tiled GEMM kernels.
//
// The four transpose variants below are cache-blocked rewrites of the
// reference loops in ref.go. The contract is strict bit-equality: every
// output element is produced by the exact per-element accumulation
// chain of its reference kernel — k ascending, the same zero-skip rule,
// the same acc seeding — so goldens, gradient checks and campaign
// digests are unchanged by the blocking. Three facts make that
// possible:
//
//   - An IEEE-754 accumulation chain does not care whether a partial
//     sum lives in a register or in dst's memory between additions.
//     Blocking the k loop and parking the partial sums in dst between
//     blocks performs the same additions in the same order as one
//     unblocked pass; holding a register tile's sums in scalars does
//     too.
//   - Fusing two k steps into one statement (s := d + v0*b0;
//     d = s + v1*b1) is the reference's two sequential read-modify-
//     writes with the intermediate kept in a register — same additions,
//     same order, one load and one store instead of two.
//   - Packing (the TN kernel transposes a into pooled scratch) copies
//     values without arithmetic, so the products are bitwise the
//     products the reference computes from the strided operand.
//
// Each dst element is written by exactly one worker per k block
// (partitions are over output rows), so results are bit-identical at
// any GOMAXPROCS — same as every other kernel in this package.
//
// Why the NN/TN kernels are wide loops rather than classic register
// tiles: the zero-skip rule is semantically load-bearing (dropping it
// flips signed zeros in gradients, which Adam's moments remember and
// the campaign digests hash), so every kernel carries one
// data-dependent branch per a-element. ReLU activations make that
// branch genuinely unpredictable (~25% zeros), and a 2x4 register tile
// amortizes each misprediction over only 4 FMAs — measured, that made
// the tiled kernel ~2.8x slower than the naive loop. A row-wide inner
// loop amortizes the same misprediction over n FMAs, which is why the
// blocking here keeps the reference's loop shape and attacks memory
// traffic instead: 4-row blocks reuse each b row from L1, the 2x
// k-unroll halves dst load/store traffic, and the KC blocking keeps
// the active slab of b resident in L2 instead of streaming all of b
// from L3 once per row block. NT has no zero-skip (its reference
// builds local dot products over contiguous rows of both operands), so
// it keeps a branch-free 2x4 register tile.

const (
	// gemmMR x gemmNR is the NT register tile: each micro-kernel call
	// produces this many output elements with the k loop's partial sums
	// held entirely in scalar registers. 2x4 is deliberate: eight
	// accumulators plus a four-wide b load and one a-value fit amd64's
	// sixteen float registers; a 4x4 tile's sixteen accumulators spill
	// to the stack (measured slower).
	gemmMR = 2
	gemmNR = 4

	// gemmRowBlock is the NN/TN row block: dst rows processed together
	// so each pair of b rows is read from L1 by every row in the block.
	// 4 rows of dst plus 2 rows of b stay inside a 48 KiB L1d for the
	// widest layer in the repo (n = 512: 4*4 KiB + 2*4 KiB = 24 KiB).
	gemmRowBlock = 4

	// gemmKCBytes bounds the bytes of b touched per k block so the slab
	// stays L2-resident while every row block re-reads it (b itself is
	// up to 8 MiB for the paper-shaped layers, several times L2).
	gemmKCBytes = 1 << 20

	// gemmKCMin floors the k block length so pathological widths cannot
	// degenerate into per-row-pair passes over b.
	gemmKCMin = 16

	// gemmParThreshold is the output-row count below which row-parallel
	// kernels run inline (tiny matrices are not worth goroutines).
	gemmParThreshold = 8
)

// packPool recycles packed-operand scratch across GEMM calls so the
// steady-state kernel allocates nothing (asserted by the pack-pooling
// test and the benchmark suite's allocs/op).
var packPool = sync.Pool{New: func() any { return new([]float64) }}

// getPack leases a scratch buffer of at least n elements. The returned
// handle goes back via putPack; the slice is valid until then.
func getPack(n int) (*[]float64, []float64) {
	h := packPool.Get().(*[]float64)
	if cap(*h) < n {
		*h = make([]float64, n)
	}
	return h, (*h)[:n]
}

func putPack(h *[]float64) { packPool.Put(h) }

// gemmKC returns the k-block length for an n-wide b: as many b rows as
// fit the gemmKCBytes budget, floored by gemmKCMin. Depends only on
// shape, so blocking is deterministic.
func gemmKC(n int) int {
	kc := gemmKCBytes / 8 / n
	if kc < gemmKCMin {
		kc = gemmKCMin
	}
	return kc
}

// nnKernel is the shared row-major GEMM engine: dst[i][j] (+)=
// sum_k a[i][k] b[k][j] for row-major aData (m x kk), bData (kk x n),
// dstData (m x n). matMulNN runs it directly; matMulTN runs it on a
// packed transpose of a. Per element the chain is the reference's
// exactly: k ascending (across and within k blocks — partial sums park
// in dst between blocks, which IEEE-754 addition cannot distinguish
// from a register), zero a-entries skipped, seeded from dst under acc.
func nnKernel(dstData, aData, bData []float64, m, kk, n int, acc bool) {
	kcap := gemmKC(n)
	parallel.ForThreshold(m, gemmParThreshold, func(is, ie int) {
		for kb := 0; kb < kk; kb += kcap {
			ke := min(kb+kcap, kk)
			for ib := is; ib < ie; ib += gemmRowBlock {
				im := min(ib+gemmRowBlock, ie)
				if !acc && kb == 0 {
					for i := ib; i < im; i++ {
						di := dstData[i*n : i*n+n]
						for j := range di {
							di[j] = 0
						}
					}
				}
				k := kb
				for ; k+1 < ke; k += 2 {
					bk0 := bData[k*n : k*n+n]
					bk1 := bData[(k+1)*n : (k+1)*n+n]
					for i := ib; i < im; i++ {
						v0 := aData[i*kk+k]
						v1 := aData[i*kk+k+1]
						if v0 == 0 && v1 == 0 {
							continue
						}
						di := dstData[i*n : i*n+n]
						switch {
						case v0 != 0 && v1 != 0:
							for j, bv := range bk0 {
								s := di[j] + v0*bv
								di[j] = s + v1*bk1[j]
							}
						case v0 != 0:
							for j, bv := range bk0 {
								di[j] += v0 * bv
							}
						default:
							for j, bv := range bk1 {
								di[j] += v1 * bv
							}
						}
					}
				}
				if k < ke {
					bk := bData[k*n : k*n+n]
					for i := ib; i < im; i++ {
						if v := aData[i*kk+k]; v != 0 {
							di := dstData[i*n : i*n+n]
							for j, bv := range bk {
								di[j] += v * bv
							}
						}
					}
				}
			}
		}
	})
}

// matMulNN: dst[i][j] = sum_k a[i][k] b[k][j]. This is the hot GEMM of
// both inference (b = weight matrix) and the forward half of training.
// Row-major b needs no packing — each of its rows already is the
// contiguous panel the wide inner loop wants — so the kernel is
// nnKernel on the operands in place.
func matMulNN(dst, a, b *Tensor, acc bool) {
	nnKernel(dst.Data, a.Data, b.Data, a.Shape[0], a.Shape[1], b.Shape[1], acc)
}

// matMulTN: dst[i][j] = sum_k a[k][i] b[k][j] — the parameter-gradient
// GEMM (dW = x^T dy), where k is the shard's row count. Here a's
// layout does fight the kernel (its k index strides by m), so a is
// packed once per call: transposed into pooled scratch, row-major,
// then reused across every row block by the shared engine. The pack is
// a pure copy, so products are bitwise the reference's; the pack costs
// O(m*kk) against the O(m*kk*n) multiply.
func matMulTN(dst, a, b *Tensor, acc bool) {
	kk, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	h, at := getPack(m * kk)
	for k := 0; k < kk; k++ {
		ak := a.Data[k*m : (k+1)*m]
		for i, v := range ak {
			at[i*kk+k] = v
		}
	}
	nnKernel(dst.Data, at, b.Data, m, kk, n, acc)
	putPack(h)
}

// matMulNT: dst[i][j] = dot(a[i,:], b[j,:]). Both operands are already
// contiguous along k, so no packing is needed; the register tile
// reuses each loaded a-value across four b rows and each b-value
// across two a rows, and each 2x4 tile streams four b rows once for
// eight dot products (halving b traffic versus the reference's
// row-at-a-time dots). Per element the chain is the reference's: a
// local sum from zero, k ascending, no zero skip, then one store (or
// one add under acc).
func matMulNT(dst, a, b *Tensor, acc bool) {
	m, kk := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	parallel.ForThreshold(m, gemmParThreshold, func(is, ie int) {
		for i := is; i < ie; i += gemmMR {
			h := min(gemmMR, ie-i)
			j := 0
			if h == gemmMR {
				for ; j+gemmNR <= n; j += gemmNR {
					ntMicro2x4(dst.Data, a.Data, b.Data, n, kk, i, j, acc)
				}
			}
			for ; j < n; j += gemmNR {
				ntMicro(dst.Data, a.Data, b.Data, n, kk, i, h, j, min(gemmNR, n-j), acc)
			}
		}
	})
}

// ntMicro2x4 computes the 2x4 tile of a * b^T from two a rows and four
// b rows. Sums start at zero regardless of acc — the NT reference
// folds into dst only once, after the dot product.
func ntMicro2x4(dst, aData, bData []float64, n, kk, i0, j0 int, acc bool) {
	ai0 := aData[(i0+0)*kk : (i0+0)*kk+kk]
	ai1 := aData[(i0+1)*kk : (i0+1)*kk+kk]
	bj0 := bData[(j0+0)*kk : (j0+0)*kk+kk]
	bj1 := bData[(j0+1)*kk : (j0+1)*kk+kk]
	bj2 := bData[(j0+2)*kk : (j0+2)*kk+kk]
	bj3 := bData[(j0+3)*kk : (j0+3)*kk+kk]
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	for k := 0; k < kk; k++ {
		b0, b1, b2, b3 := bj0[k], bj1[k], bj2[k], bj3[k]
		a0 := ai0[k]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		a1 := ai1[k]
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
	}
	d0 := dst[(i0+0)*n+j0 : (i0+0)*n+j0+4]
	d1 := dst[(i0+1)*n+j0 : (i0+1)*n+j0+4]
	if acc {
		d0[0] += c00
		d0[1] += c01
		d0[2] += c02
		d0[3] += c03
		d1[0] += c10
		d1[1] += c11
		d1[2] += c12
		d1[3] += c13
		return
	}
	d0[0], d0[1], d0[2], d0[3] = c00, c01, c02, c03
	d1[0], d1[1], d1[2], d1[3] = c10, c11, c12, c13
}

// ntMicro is the edge-tile variant of ntMicro2x4 (h x w, h <= gemmMR,
// w <= gemmNR).
func ntMicro(dst, aData, bData []float64, n, kk, i0, h, j0, w int, acc bool) {
	var c [gemmMR][gemmNR]float64
	for k := 0; k < kk; k++ {
		for r := 0; r < h; r++ {
			av := aData[(i0+r)*kk+k]
			cr := &c[r]
			for jj := 0; jj < w; jj++ {
				cr[jj] += av * bData[(j0+jj)*kk+k]
			}
		}
	}
	for r := 0; r < h; r++ {
		dr := dst[(i0+r)*n+j0 : (i0+r)*n+j0+w]
		if acc {
			for jj := 0; jj < w; jj++ {
				dr[jj] += c[r][jj]
			}
		} else {
			copy(dr, c[r][:w])
		}
	}
}

// matMulTT: dst[i][j] = sum_k a[k][i] b[j][k] (rare; used only in
// tests, so it keeps the reference loop shape and only gains the
// zero-skip of the other a-strided kernels).
func matMulTT(dst, a, b *Tensor, acc bool) {
	kk, m := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	parallel.ForThreshold(m, gemmParThreshold, func(start, end int) {
		for i := start; i < end; i++ {
			di := dst.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b.Data[j*kk : (j+1)*kk]
				var s float64
				for k := 0; k < kk; k++ {
					av := a.Data[k*m+i]
					if av == 0 {
						continue
					}
					s += av * bj[k]
				}
				if acc {
					di[j] += s
				} else {
					di[j] = s
				}
			}
		}
	})
}
