package tensor

import (
	"runtime"
	"testing"

	"dlpic/internal/rng"
)

// MatMulAcc into a zeroed destination must be bit-identical to MatMul,
// and a second accumulation must add the product exactly once more.
func TestMatMulAccMatchesMatMul(t *testing.T) {
	r := rng.New(41)
	for _, tc := range []struct {
		transA, transB bool
		m, k, n        int
	}{
		{false, false, 5, 7, 6},
		{false, true, 5, 7, 6},
		{true, false, 5, 7, 6},
		{true, true, 5, 7, 6},
		{false, false, 33, 17, 300}, // wide: column-split NN kernel
		{true, false, 64, 9, 12},    // the dW += x^T dy shape
	} {
		a := randTensor(r, tc.m, tc.k)
		if tc.transA {
			a = randTensor(r, tc.k, tc.m)
		}
		b := randTensor(r, tc.k, tc.n)
		if tc.transB {
			b = randTensor(r, tc.n, tc.k)
		}
		want := New(tc.m, tc.n)
		MatMul(want, a, b, tc.transA, tc.transB)
		got := New(tc.m, tc.n)
		MatMulAcc(got, a, b, tc.transA, tc.transB)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("transA=%v transB=%v: zeroed MatMulAcc differs at %d: %v vs %v",
					tc.transA, tc.transB, i, got.Data[i], want.Data[i])
			}
		}
		// A second accumulation continues each element's chain from the
		// stored value, so it doubles the product only up to rounding.
		MatMulAcc(got, a, b, tc.transA, tc.transB)
		for i := range got.Data {
			if d := got.Data[i] - 2*want.Data[i]; d > 1e-10 || d < -1e-10 {
				t.Fatalf("transA=%v transB=%v: second MatMulAcc not additive at %d (err %v)", tc.transA, tc.transB, i, d)
			}
		}
	}
}

func TestGatherRows(t *testing.T) {
	r := rng.New(42)
	src := randTensor(r, 10, 4)
	idx := []int{7, 0, 7, 3, 9}
	dst := New(len(idx), 4)
	GatherRows(dst, src, idx)
	for i, s := range idx {
		for j := 0; j < 4; j++ {
			if dst.At(i, j) != src.At(s, j) {
				t.Fatalf("row %d col %d: %v != src row %d", i, j, dst.At(i, j), s)
			}
		}
	}
}

func TestGatherRowsPanics(t *testing.T) {
	src := New(4, 3)
	for _, tc := range []struct {
		name string
		dst  *Tensor
		idx  []int
	}{
		{"width", New(2, 2), []int{0, 1}},
		{"rows", New(3, 3), []int{0, 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s mismatch should panic", tc.name)
				}
			}()
			GatherRows(tc.dst, src, tc.idx)
		}()
	}
}

// SumRows must stay bit-identical to the serial accumulation at every
// GOMAXPROCS (column split, per-element chain unchanged).
func TestSumRowsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	r := rng.New(43)
	m := randTensor(r, 37, 1500) // wide enough to cross the split threshold
	want := make([]float64, 1500)
	for i := 0; i < m.Shape[0]; i++ {
		row := m.Row(i)
		for j, v := range row {
			want[j] += v
		}
	}
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		got := make([]float64, 1500)
		SumRows(got, m)
		runtime.GOMAXPROCS(old)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("GOMAXPROCS=%d: col %d = %v, want %v", procs, j, got[j], want[j])
			}
		}
	}
}
