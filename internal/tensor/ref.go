package tensor

// Reference GEMM kernels. These serial, naive loops define the
// per-element accumulation contract the tiled kernels in gemm.go must
// reproduce bit-for-bit: for every output element, products are folded
// k ascending; the NN/TN/TT variants skip zero a-entries (the products
// they would contribute are exact zeros, and ReLU activations make the
// skip worth a branch); NN and TN accumulate in place (under acc the
// chain continues from dst's current value), while NT and TT build a
// local sum from zero and fold it into dst once. The property tests
// diff the tiled kernels against these loops across shapes, transposes,
// acc and GOMAXPROCS; the benchmark suite uses them as the untiled
// baseline for structural speedup ratios.

// MatMulRef computes dst = op(a) * op(b) with the serial reference
// loops (same shape/alias validation as MatMul).
func MatMulRef(dst, a, b *Tensor, transA, transB bool) {
	refMatMul(dst, a, b, transA, transB, false)
}

// MatMulAccRef computes dst += op(a) * op(b) with the serial reference
// loops (the reference for MatMulAcc).
func MatMulAccRef(dst, a, b *Tensor, transA, transB bool) {
	refMatMul(dst, a, b, transA, transB, true)
}

func refMatMul(dst, a, b *Tensor, transA, transB, acc bool) {
	checkMatMul(dst, a, b, transA, transB)
	switch {
	case !transA && !transB:
		refNN(dst, a, b, acc)
	case !transA && transB:
		refNT(dst, a, b, acc)
	case transA && !transB:
		refTN(dst, a, b, acc)
	default:
		refTT(dst, a, b, acc)
	}
}

// refNN: dst[i][j] = sum_k a[i][k] b[k][j], accumulated in place, zero
// a-entries skipped.
func refNN(dst, a, b *Tensor, acc bool) {
	m, kk := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	for i := 0; i < m; i++ {
		di := dst.Data[i*n : (i+1)*n]
		if !acc {
			for j := range di {
				di[j] = 0
			}
		}
		ai := a.Data[i*kk : (i+1)*kk]
		for k := 0; k < kk; k++ {
			aik := ai[k]
			if aik == 0 {
				continue
			}
			bk := b.Data[k*n : (k+1)*n]
			for j, bv := range bk {
				di[j] += aik * bv
			}
		}
	}
}

// refNT: dst[i][j] = dot(a[i,:], b[j,:]), local sum folded into dst
// once, no zero skip.
func refNT(dst, a, b *Tensor, acc bool) {
	m, kk := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	for i := 0; i < m; i++ {
		ai := a.Data[i*kk : (i+1)*kk]
		di := dst.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*kk : (j+1)*kk]
			var s float64
			for k, av := range ai {
				s += av * bj[k]
			}
			if acc {
				di[j] += s
			} else {
				di[j] = s
			}
		}
	}
}

// refTN: dst[i][j] = sum_k a[k][i] b[k][j], accumulated in place, zero
// a-entries skipped.
func refTN(dst, a, b *Tensor, acc bool) {
	kk, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	for i := 0; i < m; i++ {
		di := dst.Data[i*n : (i+1)*n]
		if !acc {
			for j := range di {
				di[j] = 0
			}
		}
		for k := 0; k < kk; k++ {
			aki := a.Data[k*m+i]
			if aki == 0 {
				continue
			}
			bk := b.Data[k*n : (k+1)*n]
			for j, bv := range bk {
				di[j] += aki * bv
			}
		}
	}
}

// refTT: dst[i][j] = sum_k a[k][i] b[j][k], local sum folded into dst
// once, zero a-entries skipped.
func refTT(dst, a, b *Tensor, acc bool) {
	kk, m := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	for i := 0; i < m; i++ {
		di := dst.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*kk : (j+1)*kk]
			var s float64
			for k := 0; k < kk; k++ {
				av := a.Data[k*m+i]
				if av == 0 {
					continue
				}
				s += av * bj[k]
			}
			if acc {
				di[j] += s
			} else {
				di[j] = s
			}
		}
	}
}
