// Package tensor provides the dense numerical arrays and the matrix
// kernels that power the neural-network framework (internal/nn).
//
// Tensors are row-major float64 with an explicit shape. The hot kernel is
// MatMul, a cache-blocked, goroutine-parallel GEMM with optional operand
// transposes — enough to express dense layers, im2col convolutions and
// all their gradients. Everything is deterministic: parallel partitions
// write disjoint output rows, so no reduction order ambiguity exists.
package tensor

import (
	"fmt"
	"math"

	"dlpic/internal/parallel"
	"dlpic/internal/rng"
)

// Tensor is a dense row-major array with shape metadata.
type Tensor struct {
	// Shape holds the extent of each dimension; Data has length
	// prod(Shape).
	Shape []int
	Data  []float64
}

// New allocates a zero tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data (not copied) with the given shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total element count.
func (t *Tensor) Len() int { return len(t.Data) }

// Rows and Cols are the 2D accessors (panic unless the tensor is 2D).
func (t *Tensor) Rows() int { t.want2D(); return t.Shape[0] }

// Cols returns the second dimension of a 2D tensor.
func (t *Tensor) Cols() int { t.want2D(); return t.Shape[1] }

func (t *Tensor) want2D() {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: expected 2D tensor, have shape %v", t.Shape))
	}
}

// At returns element (i, j) of a 2D tensor.
func (t *Tensor) At(i, j int) float64 { t.want2D(); return t.Data[i*t.Shape[1]+j] }

// Set assigns element (i, j) of a 2D tensor.
func (t *Tensor) Set(i, j int, v float64) { t.want2D(); t.Data[i*t.Shape[1]+j] = v }

// Row returns a view of row i of a 2D tensor.
func (t *Tensor) Row(i int) []float64 {
	t.want2D()
	c := t.Shape[1]
	return t.Data[i*c : (i+1)*c]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	return &Tensor{Shape: append([]int(nil), t.Shape...), Data: append([]float64(nil), t.Data...)}
}

// Reshape returns a view with a new shape of equal size (shares Data).
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.Shape, len(t.Data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Zero clears the tensor in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// RandomNormal fills the tensor with N(0, std) variates.
func (t *Tensor) RandomNormal(r *rng.Source, std float64) {
	for i := range t.Data {
		t.Data[i] = std * r.NormFloat64()
	}
}

// RandomUniform fills the tensor with U(-limit, limit) variates.
func (t *Tensor) RandomUniform(r *rng.Source, limit float64) {
	for i := range t.Data {
		t.Data[i] = (2*r.Float64() - 1) * limit
	}
}

// ---------------------------------------------------------------------------
// Elementwise and reduction kernels

// Add computes dst = a + b elementwise (equal sizes required).
func Add(dst, a, b *Tensor) {
	checkSameLen("Add", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// AddScaled computes dst += alpha * src.
func AddScaled(dst *Tensor, alpha float64, src *Tensor) {
	checkSameLen("AddScaled", dst, src)
	for i := range dst.Data {
		dst.Data[i] += alpha * src.Data[i]
	}
}

// Scale multiplies the tensor by alpha in place.
func (t *Tensor) Scale(alpha float64) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// Hadamard computes dst = a .* b elementwise.
func Hadamard(dst, a, b *Tensor) {
	checkSameLen("Hadamard", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// AddRowVector adds the 1D vector v to every row of the 2D tensor t
// (bias broadcast).
func AddRowVector(t *Tensor, v []float64) {
	t.want2D()
	if len(v) != t.Shape[1] {
		panic(fmt.Sprintf("tensor: AddRowVector length %d, cols %d", len(v), t.Shape[1]))
	}
	rows, cols := t.Shape[0], t.Shape[1]
	for i := 0; i < rows; i++ {
		row := t.Data[i*cols : (i+1)*cols]
		for j := range row {
			row[j] += v[j]
		}
	}
}

// SumRows writes the column sums of the 2D tensor into out (length cols):
// out[j] = sum_i t[i][j]. Used for bias gradients. The column range is
// split across workers; every element keeps the full i-ascending
// accumulation chain, so the result is bit-identical to the serial loop
// at any GOMAXPROCS.
func SumRows(out []float64, t *Tensor) {
	t.want2D()
	rows, cols := t.Shape[0], t.Shape[1]
	if len(out) != cols {
		panic(fmt.Sprintf("tensor: SumRows out length %d, cols %d", len(out), cols))
	}
	parallel.ForThreshold(cols, 512, func(js, je int) {
		for j := js; j < je; j++ {
			out[j] = 0
		}
		for i := 0; i < rows; i++ {
			row := t.Data[i*cols : (i+1)*cols]
			for j := js; j < je; j++ {
				out[j] += row[j]
			}
		}
	})
}

// GatherRows copies src row idx[i] into dst row i for every i, in
// parallel over destination rows (disjoint writes, so the copy is
// trivially deterministic). It is the batched gather the training loop
// uses to materialize a shuffled minibatch from the corpus.
func GatherRows(dst, src *Tensor, idx []int) {
	dst.want2D()
	src.want2D()
	if dst.Shape[1] != src.Shape[1] {
		panic(fmt.Sprintf("tensor: GatherRows width mismatch dst=%d src=%d", dst.Shape[1], src.Shape[1]))
	}
	if dst.Shape[0] != len(idx) {
		panic(fmt.Sprintf("tensor: GatherRows dst rows %d, idx length %d", dst.Shape[0], len(idx)))
	}
	parallel.ForThreshold(len(idx), 64, func(start, end int) {
		for i := start; i < end; i++ {
			copy(dst.Row(i), src.Row(idx[i]))
		}
	})
}

// MaxAbs returns the largest absolute value in the tensor (0 for empty).
func (t *Tensor) MaxAbs() float64 {
	var m float64
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// HasNaN reports whether the tensor contains NaN or Inf.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func checkSameLen(op string, ts ...*Tensor) {
	n := ts[0].Len()
	for _, t := range ts[1:] {
		if t.Len() != n {
			panic(fmt.Sprintf("tensor: %s size mismatch %d vs %d", op, n, t.Len()))
		}
	}
}

// ---------------------------------------------------------------------------
// GEMM

// MatMul computes dst = op(a) * op(b) where op optionally transposes:
// op(a) is a if !transA else a^T. All tensors must be 2D with consistent
// shapes; dst may not alias a or b. The kernels are cache-blocked and
// register-tiled (gemm.go) but bit-identical to the reference loops in
// ref.go, element by element, at any GOMAXPROCS.
func MatMul(dst, a, b *Tensor, transA, transB bool) {
	matMul(dst, a, b, transA, transB, false)
}

// MatMulAcc computes dst += op(a) * op(b): the same kernels as MatMul
// without the initial zeroing of dst, so parameter-gradient
// accumulation (dW += x^T dy) needs no scratch product tensor. Each
// output element continues its k-ascending accumulation chain from
// dst's current value; accumulating into a zeroed dst is therefore
// bit-identical to MatMul.
func MatMulAcc(dst, a, b *Tensor, transA, transB bool) {
	matMul(dst, a, b, transA, transB, true)
}

func matMul(dst, a, b *Tensor, transA, transB, acc bool) {
	checkMatMul(dst, a, b, transA, transB)
	switch {
	case !transA && !transB:
		matMulNN(dst, a, b, acc)
	case !transA && transB:
		matMulNT(dst, a, b, acc)
	case transA && !transB:
		matMulTN(dst, a, b, acc)
	default:
		matMulTT(dst, a, b, acc)
	}
}

// checkMatMul validates the shapes and aliasing of one GEMM call;
// shared by the tiled dispatcher and the reference kernels.
func checkMatMul(dst, a, b *Tensor, transA, transB bool) {
	dst.want2D()
	a.want2D()
	b.want2D()
	am, ak := a.Shape[0], a.Shape[1]
	if transA {
		am, ak = ak, am
	}
	bk, bn := b.Shape[0], b.Shape[1]
	if transB {
		bk, bn = bn, bk
	}
	if ak != bk {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d (transA=%v transB=%v)", ak, bk, transA, transB))
	}
	if dst.Shape[0] != am || dst.Shape[1] != bn {
		panic(fmt.Sprintf("tensor: MatMul dst shape %v, want [%d %d]", dst.Shape, am, bn))
	}
	// New rejects zero dims so the slices are non-empty today; the
	// length guard keeps the alias probe from panicking on empty data
	// if a future constructor relaxes that.
	if len(dst.Data) > 0 && len(a.Data) > 0 && len(b.Data) > 0 &&
		(&dst.Data[0] == &a.Data[0] || &dst.Data[0] == &b.Data[0]) {
		panic("tensor: MatMul dst aliases an operand")
	}
}

// MatVec computes dst = a * x for a 2D a and vectors x, dst.
func MatVec(dst []float64, a *Tensor, x []float64) {
	a.want2D()
	m, n := a.Shape[0], a.Shape[1]
	if len(x) != n || len(dst) != m {
		panic(fmt.Sprintf("tensor: MatVec shapes a=%v x=%d dst=%d", a.Shape, len(x), len(dst)))
	}
	parallel.ForThreshold(m, 64, func(start, end int) {
		for i := start; i < end; i++ {
			row := a.Data[i*n : (i+1)*n]
			var s float64
			for j, v := range row {
				s += v * x[j]
			}
			dst[i] = s
		}
	})
}
