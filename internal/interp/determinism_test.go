package interp

import (
	"runtime"
	"testing"

	"dlpic/internal/grid"
	"dlpic/internal/rng"
)

// The deposit and gather kernels must produce bit-identical output at
// every GOMAXPROCS: the chunk decomposition of internal/parallel
// depends only on the particle count, never on the worker count.

func detRandomPositions(n int, l float64) []float64 {
	r := rng.New(99)
	pos := make([]float64, n)
	for i := range pos {
		pos[i] = r.Float64() * l
	}
	return pos
}

func withProcs(t *testing.T, n int, f func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

func TestDepositBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	g := grid.MustNew(64, 1.0)
	pos := detRandomPositions(50000, g.Length())
	for _, s := range []Scheme{NGP, CIC, TSC} {
		ref := make([]float64, g.N())
		withProcs(t, 1, func() { Deposit(s, g, pos, -1.5, ref) })
		for _, procs := range []int{2, 4, 8} {
			got := make([]float64, g.N())
			withProcs(t, procs, func() { Deposit(s, g, pos, -1.5, got) })
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("%v GOMAXPROCS=%d: rho[%d] = %v != serial %v", s, procs, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestDepositWeightedBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	g := grid.MustNew(32, 2.0)
	pos := detRandomPositions(30000, g.Length())
	r := rng.New(7)
	weight := make([]float64, len(pos))
	for i := range weight {
		weight[i] = r.NormFloat64()
	}
	ref := make([]float64, g.N())
	withProcs(t, 1, func() { DepositWeighted(CIC, g, pos, weight, ref) })
	for _, procs := range []int{2, 8} {
		got := make([]float64, g.N())
		withProcs(t, procs, func() { DepositWeighted(CIC, g, pos, weight, got) })
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("GOMAXPROCS=%d: rho[%d] = %v != serial %v", procs, i, got[i], ref[i])
			}
		}
	}
}

func TestGatherBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	g := grid.MustNew(64, 1.0)
	pos := detRandomPositions(40000, g.Length())
	field := make([]float64, g.N())
	r := rng.New(11)
	for i := range field {
		field[i] = r.NormFloat64()
	}
	ref := make([]float64, len(pos))
	withProcs(t, 1, func() { Gather(TSC, g, field, pos, ref) })
	got := make([]float64, len(pos))
	withProcs(t, 8, func() { Gather(TSC, g, field, pos, got) })
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("out[%d] = %v != serial %v", i, got[i], ref[i])
		}
	}
}
