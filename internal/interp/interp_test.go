package interp

import (
	"math"
	"testing"
	"testing/quick"

	"dlpic/internal/grid"
	"dlpic/internal/rng"
)

var allSchemes = []Scheme{NGP, CIC, TSC}

func randomPositions(r *rng.Source, n int, l float64) []float64 {
	pos := make([]float64, n)
	for i := range pos {
		pos[i] = r.Float64() * l
	}
	return pos
}

func TestSchemeString(t *testing.T) {
	cases := map[Scheme]string{NGP: "NGP", CIC: "CIC", TSC: "TSC", Scheme(9): "Scheme(9)"}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("String() = %q, want %q", s.String(), want)
		}
	}
}

func TestParseScheme(t *testing.T) {
	for _, name := range []string{"NGP", "CIC", "TSC", "ngp", "cic", "tsc"} {
		s, err := ParseScheme(name)
		if err != nil {
			t.Errorf("ParseScheme(%q) error: %v", name, err)
		}
		if !s.Valid() {
			t.Errorf("ParseScheme(%q) invalid scheme", name)
		}
	}
	if _, err := ParseScheme("spline"); err == nil {
		t.Error("ParseScheme(spline) should fail")
	}
}

func TestSupport(t *testing.T) {
	if NGP.Support() != 1 || CIC.Support() != 2 || TSC.Support() != 3 {
		t.Fatalf("supports: %d %d %d", NGP.Support(), CIC.Support(), TSC.Support())
	}
}

// Property: weights are non-negative and sum to 1 for any position.
func TestWeightsPartitionOfUnity(t *testing.T) {
	g := grid.MustNew(32, 2.0)
	f := func(xRaw float64) bool {
		x := g.Wrap(math.Abs(math.Mod(xRaw, 100)))
		for _, s := range allSchemes {
			var w [3]float64
			_, cnt := weights(s, g, x, &w)
			var sum float64
			for k := 0; k < cnt; k++ {
				if w[k] < -1e-12 {
					return false
				}
				sum += w[k]
			}
			if math.Abs(sum-1) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Gathering a constant field returns the constant exactly for every scheme.
func TestGatherConstantField(t *testing.T) {
	g := grid.MustNew(16, 4.0)
	field := make([]float64, 16)
	for i := range field {
		field[i] = -3.25
	}
	pos := randomPositions(rng.New(1), 500, g.Length())
	out := make([]float64, len(pos))
	for _, s := range allSchemes {
		Gather(s, g, field, pos, out)
		for p, v := range out {
			if math.Abs(v+3.25) > 1e-12 {
				t.Fatalf("%v: particle %d gathered %v, want -3.25", s, p, v)
			}
		}
	}
}

// CIC reproduces linear functions exactly away from the periodic seam.
func TestGatherCICLinearExact(t *testing.T) {
	g := grid.MustNew(64, 8.0)
	field := make([]float64, 64)
	for i := range field {
		field[i] = 2*g.X(i) + 1
	}
	r := rng.New(2)
	// Keep positions inside [dx, L-2dx] so the seam (where the linear ramp
	// wraps) is not touched.
	pos := make([]float64, 300)
	for i := range pos {
		pos[i] = g.Dx() + r.Float64()*(g.Length()-3*g.Dx())
	}
	out := make([]float64, len(pos))
	Gather(CIC, g, field, pos, out)
	for p, v := range out {
		want := 2*pos[p] + 1
		if math.Abs(v-want) > 1e-10 {
			t.Fatalf("particle %d at %v: gathered %v, want %v", p, pos[p], v, want)
		}
	}
}

// TSC also reproduces linear functions exactly (order >= 1).
func TestGatherTSCLinearExact(t *testing.T) {
	g := grid.MustNew(64, 8.0)
	field := make([]float64, 64)
	for i := range field {
		field[i] = -0.5*g.X(i) + 3
	}
	r := rng.New(3)
	pos := make([]float64, 300)
	for i := range pos {
		pos[i] = 2*g.Dx() + r.Float64()*(g.Length()-4*g.Dx())
	}
	out := make([]float64, len(pos))
	Gather(TSC, g, field, pos, out)
	for p, v := range out {
		want := -0.5*pos[p] + 3
		if math.Abs(v-want) > 1e-10 {
			t.Fatalf("particle %d: gathered %v, want %v", p, v, want)
		}
	}
}

// Gather is linear in the field: gather(a*F + G) = a*gather(F) + gather(G).
func TestGatherLinearityProperty(t *testing.T) {
	g := grid.MustNew(16, 2.0)
	r := rng.New(4)
	pos := randomPositions(r, 64, g.Length())
	f := func(aRaw int8) bool {
		a := float64(aRaw) / 8
		f1 := make([]float64, 16)
		f2 := make([]float64, 16)
		for i := range f1 {
			f1[i] = r.NormFloat64()
			f2[i] = r.NormFloat64()
		}
		comb := make([]float64, 16)
		for i := range comb {
			comb[i] = a*f1[i] + f2[i]
		}
		for _, s := range allSchemes {
			o1 := make([]float64, len(pos))
			o2 := make([]float64, len(pos))
			oc := make([]float64, len(pos))
			Gather(s, g, f1, pos, o1)
			Gather(s, g, f2, pos, o2)
			Gather(s, g, comb, pos, oc)
			for p := range pos {
				if math.Abs(oc[p]-(a*o1[p]+o2[p])) > 1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Deposit conserves total charge for every scheme and any
// particle placement: integral(rho) == Np * q.
func TestDepositChargeConservationProperty(t *testing.T) {
	g := grid.MustNew(32, 2*math.Pi/3.06)
	r := rng.New(5)
	f := func(npRaw uint8, qRaw int8) bool {
		np := int(npRaw)%500 + 1
		q := float64(qRaw)/32 - 0.5
		pos := randomPositions(r, np, g.Length())
		rho := make([]float64, g.N())
		for _, s := range allSchemes {
			Deposit(s, g, pos, q, rho)
			got := g.Integral(rho)
			want := float64(np) * q
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDepositUniformPlacementGivesUniformDensity(t *testing.T) {
	// One particle per cell center -> perfectly uniform density for all
	// schemes (each particle contributes symmetric weights).
	g := grid.MustNew(16, 4.0)
	pos := make([]float64, 16)
	for i := range pos {
		pos[i] = (float64(i) + 0.5) * g.Dx()
	}
	q := -2.0
	want := q * float64(len(pos)) / g.Length()
	rho := make([]float64, g.N())
	for _, s := range allSchemes {
		Deposit(s, g, pos, q, rho)
		for i, v := range rho {
			if math.Abs(v-want) > 1e-12 {
				t.Fatalf("%v: rho[%d] = %v, want %v", s, i, v, want)
			}
		}
	}
}

func TestDepositSingleParticleNGP(t *testing.T) {
	g := grid.MustNew(8, 8.0)
	rho := make([]float64, 8)
	// Particle at x = 2.3 -> nearest node 2.
	Deposit(NGP, g, []float64{2.3}, 1.0, rho)
	for i, v := range rho {
		want := 0.0
		if i == 2 {
			want = 1.0 // q/dx with dx=1
		}
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("rho[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestDepositSingleParticleCIC(t *testing.T) {
	g := grid.MustNew(8, 8.0)
	rho := make([]float64, 8)
	Deposit(CIC, g, []float64{2.25}, 1.0, rho)
	if math.Abs(rho[2]-0.75) > 1e-12 || math.Abs(rho[3]-0.25) > 1e-12 {
		t.Fatalf("CIC split rho[2]=%v rho[3]=%v, want 0.75/0.25", rho[2], rho[3])
	}
}

func TestDepositPeriodicWrapAtSeam(t *testing.T) {
	g := grid.MustNew(8, 8.0)
	rho := make([]float64, 8)
	// Particle just left of the seam splits between node 7 and node 0.
	Deposit(CIC, g, []float64{7.5}, 1.0, rho)
	if math.Abs(rho[7]-0.5) > 1e-12 || math.Abs(rho[0]-0.5) > 1e-12 {
		t.Fatalf("seam split rho[7]=%v rho[0]=%v, want 0.5/0.5", rho[7], rho[0])
	}
	// TSC at a node on the seam spreads 0.125 / 0.75 / 0.125.
	Deposit(TSC, g, []float64{0}, 1.0, rho)
	if math.Abs(rho[0]-0.75) > 1e-12 || math.Abs(rho[7]-0.125) > 1e-12 || math.Abs(rho[1]-0.125) > 1e-12 {
		t.Fatalf("TSC seam: rho[7]=%v rho[0]=%v rho[1]=%v", rho[7], rho[0], rho[1])
	}
}

// Momentum conservation: with the same scheme for deposit and gather and a
// symmetric field solve, the total self-force sum_p q E(x_p) vanishes.
// Here we test the interpolation part of that statement: for the field
// produced by any charge distribution through a *symmetric* linear solve,
// the CIC pair gives zero total force. We verify the weaker identity that
// gather-transpose equals deposit: sum_p gather(F)[p] = sum_i F[i] *
// (deposited unit weights)[i] * dx, which is the adjointness property the
// momentum-conservation proof relies on.
func TestGatherDepositAdjointProperty(t *testing.T) {
	g := grid.MustNew(16, 2.0)
	r := rng.New(6)
	f := func(npRaw uint8) bool {
		np := int(npRaw)%100 + 1
		pos := randomPositions(r, np, g.Length())
		field := make([]float64, g.N())
		for i := range field {
			field[i] = r.NormFloat64()
		}
		for _, s := range allSchemes {
			out := make([]float64, np)
			Gather(s, g, field, pos, out)
			var lhs float64
			for _, v := range out {
				lhs += v
			}
			rho := make([]float64, g.N())
			Deposit(s, g, pos, 1.0, rho)
			var rhs float64
			for i := range rho {
				rhs += rho[i] * field[i]
			}
			rhs *= g.Dx()
			if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDepositWeighted(t *testing.T) {
	g := grid.MustNew(8, 8.0)
	pos := []float64{1.0, 5.0}
	wts := []float64{2.0, -1.0}
	rho := make([]float64, 8)
	DepositWeighted(NGP, g, pos, wts, rho)
	if math.Abs(rho[1]-2.0) > 1e-12 || math.Abs(rho[5]+1.0) > 1e-12 {
		t.Fatalf("rho = %v", rho)
	}
	if math.Abs(g.Integral(rho)-1.0) > 1e-12 {
		t.Fatalf("total = %v, want 1", g.Integral(rho))
	}
}

func TestDepositWeightedMatchesDepositWhenUniform(t *testing.T) {
	g := grid.MustNew(16, 2.0)
	r := rng.New(7)
	pos := randomPositions(r, 200, g.Length())
	q := 0.37
	wts := make([]float64, len(pos))
	for i := range wts {
		wts[i] = q
	}
	for _, s := range allSchemes {
		a := make([]float64, g.N())
		b := make([]float64, g.N())
		Deposit(s, g, pos, q, a)
		DepositWeighted(s, g, pos, wts, b)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-12 {
				t.Fatalf("%v: mismatch at %d: %v vs %v", s, i, a[i], b[i])
			}
		}
	}
}

func TestDepositDeterministicAcrossRuns(t *testing.T) {
	g := grid.MustNew(64, 2.0)
	pos := randomPositions(rng.New(8), 100000, g.Length())
	a := make([]float64, g.N())
	b := make([]float64, g.N())
	Deposit(CIC, g, pos, -1.0, a)
	Deposit(CIC, g, pos, -1.0, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic deposit at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGatherPanicsOnBadLengths(t *testing.T) {
	g := grid.MustNew(8, 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on field length mismatch")
		}
	}()
	Gather(CIC, g, make([]float64, 4), []float64{0.5}, make([]float64, 1))
}

func BenchmarkDepositCIC64k(b *testing.B) {
	g := grid.MustNew(64, 2*math.Pi/3.06)
	pos := randomPositions(rng.New(1), 64000, g.Length())
	rho := make([]float64, g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Deposit(CIC, g, pos, -1, rho)
	}
}

func BenchmarkGatherCIC64k(b *testing.B) {
	g := grid.MustNew(64, 2*math.Pi/3.06)
	pos := randomPositions(rng.New(1), 64000, g.Length())
	field := make([]float64, g.N())
	out := make([]float64, len(pos))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gather(CIC, g, field, pos, out)
	}
}
