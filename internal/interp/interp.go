// Package interp implements the particle-grid interpolation (weighting)
// schemes of the PIC method: Nearest-Grid-Point (NGP, order 0),
// Cloud-in-Cell (CIC, order 1) and Triangular-Shaped-Cloud (TSC, order 2),
// following Birdsall & Langdon and Hockney & Eastwood.
//
// Two directions are needed each PIC cycle:
//
//   - Gather: evaluate a grid field at particle positions
//     (step 1 of the cycle, E-field at x_p);
//   - Deposit (scatter): accumulate particle charge onto grid nodes
//     (step 3 of the cycle, charge density rho).
//
// Using the same weighting function for both directions makes the scheme
// momentum-conserving (zero net self-force); that property is exercised
// by the package tests and by the traditional-PIC integration tests.
package interp

import (
	"fmt"

	"dlpic/internal/grid"
	"dlpic/internal/parallel"
)

// Scheme identifies an interpolation order.
type Scheme int

const (
	// NGP assigns everything to the nearest grid node (top-hat, order 0).
	NGP Scheme = iota
	// CIC splits linearly between the two surrounding nodes (order 1).
	CIC
	// TSC spreads quadratically over three nodes (order 2).
	TSC
)

// String returns the scheme's conventional abbreviation.
func (s Scheme) String() string {
	switch s {
	case NGP:
		return "NGP"
	case CIC:
		return "CIC"
	case TSC:
		return "TSC"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme converts a string (case-sensitive, conventional
// abbreviation) to a Scheme.
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "NGP", "ngp":
		return NGP, nil
	case "CIC", "cic":
		return CIC, nil
	case "TSC", "tsc":
		return TSC, nil
	}
	return 0, fmt.Errorf("interp: unknown scheme %q (want NGP, CIC or TSC)", s)
}

// Valid reports whether s is a defined scheme.
func (s Scheme) Valid() bool { return s == NGP || s == CIC || s == TSC }

// Support returns the number of grid nodes a particle touches.
func (s Scheme) Support() int {
	switch s {
	case NGP:
		return 1
	case CIC:
		return 2
	default:
		return 3
	}
}

// weights computes, for a particle at position x on grid g, the leftmost
// touched node index and the per-node weights w (sum 1). The node index
// may be negative or >= N; callers wrap modulo N.
//
// Conventions (h = x/dx):
//   - NGP: node round(h), weight 1.
//   - CIC: nodes floor(h), floor(h)+1 with linear weights.
//   - TSC: nodes round(h)-1 .. round(h)+1 with quadratic spline weights.
func weights(s Scheme, g *grid.Grid, x float64, w *[3]float64) (left int, count int) {
	h := x / g.Dx()
	switch s {
	case NGP:
		i := int(h + 0.5)
		w[0] = 1
		return i, 1
	case CIC:
		i := int(h)
		frac := h - float64(i)
		w[0] = 1 - frac
		w[1] = frac
		return i, 2
	default: // TSC
		i := int(h + 0.5)
		d := h - float64(i) // in [-0.5, 0.5]
		w[0] = 0.5 * (0.5 - d) * (0.5 - d)
		w[1] = 0.75 - d*d
		w[2] = 0.5 * (0.5 + d) * (0.5 + d)
		return i - 1, 3
	}
}

// Gather evaluates the grid field on each particle position:
// out[p] = sum_i W(x_p - x_i) field[i]. Positions must lie in [0, L).
// out and pos must have equal length; field must have length g.N().
func Gather(s Scheme, g *grid.Grid, field []float64, pos []float64, out []float64) {
	if len(field) != g.N() {
		panic(fmt.Sprintf("interp: Gather field length %d, grid %d", len(field), g.N()))
	}
	if len(out) != len(pos) {
		panic(fmt.Sprintf("interp: Gather out length %d, pos %d", len(out), len(pos)))
	}
	n := g.N()
	parallel.For(len(pos), func(start, end int) {
		var w [3]float64
		for p := start; p < end; p++ {
			left, cnt := weights(s, g, pos[p], &w)
			var v float64
			for k := 0; k < cnt; k++ {
				idx := left + k
				// wrap into [0, n)
				if idx >= n {
					idx -= n
				} else if idx < 0 {
					idx += n
				}
				v += w[k] * field[idx]
			}
			out[p] = v
		}
	})
}

// Deposit accumulates per-particle charge onto grid nodes and converts to
// a density: rho[i] += sum_p q_p W(x_p - x_i) / dx. The charge argument is
// the charge per macro-particle (all particles share it, matching the
// two-stream setup); rho is overwritten, not accumulated into.
//
// The deposit is parallelized with the deterministic scatter-reduce of
// internal/parallel: one private density buffer per fixed chunk of the
// particle range, reduced in chunk order, so the result is bit-identical
// at every GOMAXPROCS.
func Deposit(s Scheme, g *grid.Grid, pos []float64, charge float64, rho []float64) {
	if len(rho) != g.N() {
		panic(fmt.Sprintf("interp: Deposit rho length %d, grid %d", len(rho), g.N()))
	}
	n := g.N()
	parallel.ScatterReduce(len(pos), rho, func(acc []float64, start, end int) {
		var w [3]float64
		for p := start; p < end; p++ {
			left, cnt := weights(s, g, pos[p], &w)
			for k := 0; k < cnt; k++ {
				idx := left + k
				if idx >= n {
					idx -= n
				} else if idx < 0 {
					idx += n
				}
				acc[idx] += w[k]
			}
		}
	})
	scale := charge / g.Dx()
	for i := range rho {
		rho[i] *= scale
	}
}

// DepositWeighted is Deposit with a per-particle weight array (used for
// mixed-charge populations and by tests); weight[p] multiplies particle
// p's contribution, and the final density is divided by dx.
func DepositWeighted(s Scheme, g *grid.Grid, pos, weight []float64, rho []float64) {
	if len(rho) != g.N() {
		panic(fmt.Sprintf("interp: DepositWeighted rho length %d, grid %d", len(rho), g.N()))
	}
	if len(weight) != len(pos) {
		panic(fmt.Sprintf("interp: DepositWeighted weight length %d, pos %d", len(weight), len(pos)))
	}
	n := g.N()
	parallel.ScatterReduce(len(pos), rho, func(acc []float64, start, end int) {
		var w [3]float64
		for p := start; p < end; p++ {
			left, cnt := weights(s, g, pos[p], &w)
			wp := weight[p]
			for k := 0; k < cnt; k++ {
				idx := left + k
				if idx >= n {
					idx -= n
				} else if idx < 0 {
					idx += n
				}
				acc[idx] += w[k] * wp
			}
		}
	})
	invDx := 1 / g.Dx()
	for i := range rho {
		rho[i] *= invDx
	}
}
