// Package particle stores macro-particle populations and implements the
// initial loading schemes of the two-stream experiments (paper §II-III).
//
// Particles are stored in structure-of-arrays layout (separate X and V
// slices) so the hot push/deposit loops stream through contiguous memory.
// All particles in a Population share one macro-particle charge and mass,
// matching the paper's setup of identical electrons over a motionless,
// neutralizing proton background.
package particle

import (
	"fmt"
	"math"

	"dlpic/internal/rng"
)

// Population is a set of identical macro-particles in 1D phase space.
type Population struct {
	// X holds positions in [0, L); V holds velocities. len(X) == len(V).
	X, V []float64
	// Charge and Mass are per macro-particle; QOverM = Charge/Mass is the
	// physical charge-to-mass ratio (independent of macro-particle
	// weighting).
	Charge, Mass, QOverM float64
}

// N returns the particle count.
func (p *Population) N() int { return len(p.X) }

// Clone returns a deep copy of the population.
func (p *Population) Clone() *Population {
	q := &Population{
		X:      append([]float64(nil), p.X...),
		V:      append([]float64(nil), p.V...),
		Charge: p.Charge, Mass: p.Mass, QOverM: p.QOverM,
	}
	return q
}

// TwoStreamOpts configures the two counter-streaming electron beams.
type TwoStreamOpts struct {
	// N is the total macro-particle count, split evenly between the two
	// beams (must be even and positive).
	N int
	// L is the periodic domain length.
	L float64
	// V0 is the beam drift speed: beam 1 drifts at +V0, beam 2 at -V0.
	V0 float64
	// Vth is the Gaussian thermal spread added to each beam.
	Vth float64
	// PerturbAmp, if non-zero, displaces initial positions by
	// PerturbAmp * sin(2 pi PerturbMode x / L) to seed a chosen mode.
	// With PerturbAmp == 0 the instability grows from loading noise, as in
	// the paper.
	PerturbAmp  float64
	PerturbMode int
	// Quiet selects deterministic uniform position loading (one particle
	// per equal slot per beam) instead of uniform-random loading. Quiet
	// starts suppress loading noise by orders of magnitude, giving clean
	// linear-phase growth-rate measurements.
	Quiet bool
	// Charge and Mass are per macro-particle (see pic.Config for the
	// standard normalization).
	Charge, Mass float64
}

// Validate checks option consistency.
func (o TwoStreamOpts) Validate() error {
	if o.N <= 0 || o.N%2 != 0 {
		return fmt.Errorf("particle: two-stream N must be positive and even, got %d", o.N)
	}
	if !(o.L > 0) {
		return fmt.Errorf("particle: two-stream L must be positive, got %v", o.L)
	}
	if o.Vth < 0 {
		return fmt.Errorf("particle: negative thermal speed %v", o.Vth)
	}
	if o.Mass == 0 {
		return fmt.Errorf("particle: zero macro-particle mass")
	}
	if o.PerturbAmp != 0 && o.PerturbMode <= 0 {
		return fmt.Errorf("particle: perturbation amplitude set but mode %d invalid", o.PerturbMode)
	}
	return nil
}

// LoadTwoStream creates the two-beam population of the paper's §III:
// half the particles drifting at +V0, half at -V0, each with Gaussian
// spread Vth, uniformly distributed in space.
func LoadTwoStream(o TwoStreamOpts, r *rng.Source) (*Population, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	p := &Population{
		X:      make([]float64, o.N),
		V:      make([]float64, o.N),
		Charge: o.Charge,
		Mass:   o.Mass,
		QOverM: o.Charge / o.Mass,
	}
	half := o.N / 2
	for i := 0; i < o.N; i++ {
		var x float64
		if o.Quiet {
			// Beam-local uniform slots with a half-slot offset; the two
			// beams are interleaved by construction of the index split.
			j := i
			if i >= half {
				j = i - half
			}
			x = (float64(j) + 0.5) / float64(half) * o.L
		} else {
			x = r.Float64() * o.L
		}
		if o.PerturbAmp != 0 {
			x += o.PerturbAmp * math.Sin(2*math.Pi*float64(o.PerturbMode)*x/o.L)
		}
		// Wrap into [0, L).
		x = math.Mod(x, o.L)
		if x < 0 {
			x += o.L
		}
		p.X[i] = x
		drift := o.V0
		if i >= half {
			drift = -o.V0
		}
		v := drift
		if o.Vth > 0 {
			v += o.Vth * r.NormFloat64()
		}
		p.V[i] = v
	}
	return p, nil
}

// MaxwellianOpts configures a single thermal population (used by the
// Landau-damping style examples and by tests).
type MaxwellianOpts struct {
	N            int
	L            float64
	VDrift, Vth  float64
	PerturbAmp   float64
	PerturbMode  int
	Charge, Mass float64
}

// LoadMaxwellian creates a drifting Maxwellian population.
func LoadMaxwellian(o MaxwellianOpts, r *rng.Source) (*Population, error) {
	if o.N <= 0 {
		return nil, fmt.Errorf("particle: maxwellian N must be positive, got %d", o.N)
	}
	if !(o.L > 0) {
		return nil, fmt.Errorf("particle: maxwellian L must be positive, got %v", o.L)
	}
	if o.Vth < 0 {
		return nil, fmt.Errorf("particle: negative thermal speed %v", o.Vth)
	}
	if o.Mass == 0 {
		return nil, fmt.Errorf("particle: zero macro-particle mass")
	}
	p := &Population{
		X:      make([]float64, o.N),
		V:      make([]float64, o.N),
		Charge: o.Charge,
		Mass:   o.Mass,
		QOverM: o.Charge / o.Mass,
	}
	for i := 0; i < o.N; i++ {
		x := r.Float64() * o.L
		if o.PerturbAmp != 0 && o.PerturbMode > 0 {
			x += o.PerturbAmp * math.Sin(2*math.Pi*float64(o.PerturbMode)*x/o.L)
			x = math.Mod(x, o.L)
			if x < 0 {
				x += o.L
			}
		}
		p.X[i] = x
		p.V[i] = o.VDrift + o.Vth*r.NormFloat64()
	}
	return p, nil
}

// KineticEnergy returns sum(1/2 m v^2) over the population. The
// time-centered variant used in production diagnostics lives in the
// mover's kick (which sees both half-step velocities).
func (p *Population) KineticEnergy() float64 {
	var s float64
	for _, v := range p.V {
		s += v * v
	}
	return 0.5 * p.Mass * s
}

// Momentum returns sum(m v) over the population.
func (p *Population) Momentum() float64 {
	var s float64
	for _, v := range p.V {
		s += v
	}
	return p.Mass * s
}

// VelocityBounds returns the min and max velocity in the population.
func (p *Population) VelocityBounds() (vmin, vmax float64) {
	if p.N() == 0 {
		return 0, 0
	}
	vmin, vmax = p.V[0], p.V[0]
	for _, v := range p.V[1:] {
		if v < vmin {
			vmin = v
		}
		if v > vmax {
			vmax = v
		}
	}
	return vmin, vmax
}
