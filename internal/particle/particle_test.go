package particle

import (
	"math"
	"testing"

	"dlpic/internal/rng"
)

func baseOpts() TwoStreamOpts {
	return TwoStreamOpts{
		N: 2000, L: 2 * math.Pi / 3.06, V0: 0.2, Vth: 0.01,
		Charge: -1e-4, Mass: 1e-4,
	}
}

func TestLoadTwoStreamValidation(t *testing.T) {
	cases := []func(*TwoStreamOpts){
		func(o *TwoStreamOpts) { o.N = 0 },
		func(o *TwoStreamOpts) { o.N = 3 },
		func(o *TwoStreamOpts) { o.N = -2 },
		func(o *TwoStreamOpts) { o.L = 0 },
		func(o *TwoStreamOpts) { o.Vth = -0.1 },
		func(o *TwoStreamOpts) { o.Mass = 0 },
		func(o *TwoStreamOpts) { o.PerturbAmp = 0.1; o.PerturbMode = 0 },
	}
	for i, mutate := range cases {
		o := baseOpts()
		mutate(&o)
		if _, err := LoadTwoStream(o, rng.New(1)); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestLoadTwoStreamBasicProperties(t *testing.T) {
	o := baseOpts()
	p, err := LoadTwoStream(o, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != o.N {
		t.Fatalf("N = %d, want %d", p.N(), o.N)
	}
	if p.QOverM != o.Charge/o.Mass {
		t.Fatalf("QOverM = %v", p.QOverM)
	}
	for i, x := range p.X {
		if x < 0 || x >= o.L {
			t.Fatalf("particle %d at %v outside [0,%v)", i, x, o.L)
		}
	}
	// First half drifts positive, second half negative.
	for i := 0; i < o.N/2; i++ {
		if p.V[i] < 0 {
			t.Fatalf("beam-1 particle %d has v=%v < 0", i, p.V[i])
		}
	}
	for i := o.N / 2; i < o.N; i++ {
		if p.V[i] > 0 {
			t.Fatalf("beam-2 particle %d has v=%v > 0", i, p.V[i])
		}
	}
}

func TestLoadTwoStreamBeamStatistics(t *testing.T) {
	o := baseOpts()
	o.N = 200000
	o.Vth = 0.02
	p, err := LoadTwoStream(o, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	half := o.N / 2
	mean := func(v []float64) float64 {
		var s float64
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	std := func(v []float64, m float64) float64 {
		var s float64
		for _, x := range v {
			s += (x - m) * (x - m)
		}
		return math.Sqrt(s / float64(len(v)))
	}
	m1 := mean(p.V[:half])
	m2 := mean(p.V[half:])
	if math.Abs(m1-o.V0) > 3*o.Vth/math.Sqrt(float64(half))*5 {
		t.Errorf("beam 1 mean %v, want %v", m1, o.V0)
	}
	if math.Abs(m2+o.V0) > 3*o.Vth/math.Sqrt(float64(half))*5 {
		t.Errorf("beam 2 mean %v, want %v", m2, -o.V0)
	}
	s1 := std(p.V[:half], m1)
	if math.Abs(s1-o.Vth) > 0.02*o.Vth {
		t.Errorf("beam 1 spread %v, want %v", s1, o.Vth)
	}
}

func TestLoadTwoStreamColdBeamExactVelocities(t *testing.T) {
	o := baseOpts()
	o.Vth = 0
	o.V0 = 0.4
	p, err := LoadTwoStream(o, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range p.V {
		want := 0.4
		if i >= o.N/2 {
			want = -0.4
		}
		if v != want {
			t.Fatalf("particle %d: v=%v want %v", i, v, want)
		}
	}
}

func TestLoadTwoStreamQuietIsDeterministicAndUniform(t *testing.T) {
	o := baseOpts()
	o.Quiet = true
	o.Vth = 0
	a, err := LoadTwoStream(o, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadTwoStream(o, rng.New(999)) // different seed: quiet must not care
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("quiet start depends on seed at particle %d", i)
		}
	}
	// Quiet positions are evenly spaced within each beam.
	half := o.N / 2
	gap := a.X[1] - a.X[0]
	for i := 1; i < half-1; i++ {
		if math.Abs((a.X[i+1]-a.X[i])-gap) > 1e-12 {
			t.Fatalf("quiet spacing not uniform at %d", i)
		}
	}
}

func TestLoadTwoStreamPerturbationSeedsChosenMode(t *testing.T) {
	o := baseOpts()
	o.Quiet = true
	o.Vth = 0
	o.PerturbAmp = 1e-3 * o.L
	o.PerturbMode = 1
	p, err := LoadTwoStream(o, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	o2 := o
	o2.PerturbAmp = 0
	q, err := LoadTwoStream(o2, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Displacement matches the seeded sine at the unperturbed positions.
	k := 2 * math.Pi / o.L
	for i := range p.X {
		want := o.PerturbAmp * math.Sin(k*q.X[i])
		got := p.X[i] - q.X[i]
		// Account for wrap-around.
		if got > o.L/2 {
			got -= o.L
		}
		if got < -o.L/2 {
			got += o.L
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("particle %d displaced %v, want %v", i, got, want)
		}
	}
}

func TestLoadMaxwellian(t *testing.T) {
	o := MaxwellianOpts{N: 100000, L: 4.0, VDrift: 0.5, Vth: 0.3, Charge: -1, Mass: 1}
	p, err := LoadMaxwellian(o, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	for _, v := range p.V {
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(o.N)
	variance := sumSq/float64(o.N) - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("drift %v, want 0.5", mean)
	}
	if math.Abs(math.Sqrt(variance)-0.3) > 0.01 {
		t.Errorf("spread %v, want 0.3", math.Sqrt(variance))
	}
	for _, x := range p.X {
		if x < 0 || x >= o.L {
			t.Fatalf("position %v outside domain", x)
		}
	}
}

func TestLoadMaxwellianValidation(t *testing.T) {
	bad := []MaxwellianOpts{
		{N: 0, L: 1, Mass: 1},
		{N: 10, L: 0, Mass: 1},
		{N: 10, L: 1, Vth: -1, Mass: 1},
		{N: 10, L: 1, Mass: 0},
	}
	for i, o := range bad {
		if _, err := LoadMaxwellian(o, rng.New(1)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p, err := LoadTwoStream(baseOpts(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	q.X[0] += 1
	q.V[0] += 1
	if p.X[0] == q.X[0] || p.V[0] == q.V[0] {
		t.Fatal("Clone shares storage with original")
	}
	if q.Charge != p.Charge || q.Mass != p.Mass || q.QOverM != p.QOverM {
		t.Fatal("Clone lost scalar fields")
	}
}

func TestEnergyMomentumHelpers(t *testing.T) {
	p := &Population{
		X: []float64{0, 0, 0}, V: []float64{1, -2, 3},
		Charge: -1, Mass: 2, QOverM: -0.5,
	}
	// KE = 0.5*2*(1+4+9) = 14; P = 2*(1-2+3) = 4.
	if ke := p.KineticEnergy(); math.Abs(ke-14) > 1e-12 {
		t.Errorf("KE = %v, want 14", ke)
	}
	if mom := p.Momentum(); math.Abs(mom-4) > 1e-12 {
		t.Errorf("P = %v, want 4", mom)
	}
	vmin, vmax := p.VelocityBounds()
	if vmin != -2 || vmax != 3 {
		t.Errorf("bounds (%v,%v), want (-2,3)", vmin, vmax)
	}
}

func TestVelocityBoundsEmpty(t *testing.T) {
	p := &Population{}
	vmin, vmax := p.VelocityBounds()
	if vmin != 0 || vmax != 0 {
		t.Fatalf("empty bounds (%v,%v), want (0,0)", vmin, vmax)
	}
}
