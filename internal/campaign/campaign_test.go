package campaign

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"dlpic/internal/grid"
	"dlpic/internal/pic"
	"dlpic/internal/sweep"
)

// tinyBase returns a seconds-scale configuration for campaign tests.
func tinyBase() pic.Config {
	cfg := pic.Default()
	cfg.Cells = 32
	cfg.ParticlesPerCell = 40
	return cfg
}

// tinySpec builds a 2-scenario x 2-method campaign (8 steps each).
func tinySpec(workers int) Spec {
	scs := sweep.Grid(tinyBase(), []float64{0.15, 0.2}, []float64{0.01}, 1, 8, 3)
	return Spec{
		Scenarios: scs,
		Opts: sweep.Options{
			Workers: workers,
			SkipFit: true,
			Methods: []sweep.MethodSpec{
				{Name: "traditional"},
				{Name: "custom", Factory: func(sc sweep.Scenario) (pic.FieldMethod, error) {
					g, err := grid.New(sc.Cfg.Cells, sc.Cfg.Length)
					if err != nil {
						return nil, err
					}
					return pic.NewTraditionalField(sc.Cfg, g)
				}},
			},
			KeepFinalState: true,
		},
	}
}

// sameResults compares two result sets on everything except Elapsed
// (the one field a resume legitimately re-measures).
func sameResults(t *testing.T, got, want []sweep.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for c := range want {
		g, w := &got[c], &want[c]
		if g.Method != w.Method || g.Scenario.Name != w.Scenario.Name {
			t.Fatalf("cell %d identity (%q,%q) != (%q,%q)", c, g.Method, g.Scenario.Name, w.Method, w.Scenario.Name)
		}
		if (g.Err == nil) != (w.Err == nil) || (g.Err != nil && g.Err.Error() != w.Err.Error()) {
			t.Fatalf("cell %d error %v != %v", c, g.Err, w.Err)
		}
		if len(g.Rec.Samples) != len(w.Rec.Samples) {
			t.Fatalf("cell %d: %d samples, want %d", c, len(g.Rec.Samples), len(w.Rec.Samples))
		}
		for k := range w.Rec.Samples {
			if g.Rec.Samples[k] != w.Rec.Samples[k] {
				t.Fatalf("cell %d sample %d differs: %+v != %+v", c, k, g.Rec.Samples[k], w.Rec.Samples[k])
			}
		}
		if g.Growth != w.Growth || g.FitOK != w.FitOK || g.TheoryGamma != w.TheoryGamma ||
			g.EnergyVariation != w.EnergyVariation || g.MomentumDrift != w.MomentumDrift {
			t.Fatalf("cell %d metrics differ", c)
		}
		if len(g.FinalX) != len(w.FinalX) {
			t.Fatalf("cell %d final state length %d != %d", c, len(g.FinalX), len(w.FinalX))
		}
		for p := range w.FinalX {
			if g.FinalX[p] != w.FinalX[p] || g.FinalV[p] != w.FinalV[p] {
				t.Fatalf("cell %d final state diverges at particle %d", c, p)
			}
		}
	}
}

// TestCampaignWithoutJournalMatchesSweep: path == "" is a plain
// multi-method sweep.
func TestCampaignWithoutJournalMatchesSweep(t *testing.T) {
	spec := tinySpec(2)
	got, err := Run("", spec)
	if err != nil {
		t.Fatal(err)
	}
	want := sweep.Run(spec.Scenarios, spec.Opts)
	sameResults(t, got, want)
	if Digest(got) != Digest(want) {
		t.Fatal("digest differs between campaign and direct sweep")
	}
}

// TestKillAndResumeBitIdentical is the acceptance property: a campaign
// interrupted after k of n cells (simulated by truncating the journal
// to its first k lines, exactly what a killed process leaves behind)
// and resumed from the journal yields results bit-identical to an
// uninterrupted run, at every worker count — including a resumed run
// whose journal tail is a torn partial line.
func TestKillAndResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	spec := tinySpec(1)
	want, err := Run(full, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.FirstError(want); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(buf), "\n"), "\n")
	n := len(lines)
	if n != len(want) {
		t.Fatalf("journal has %d lines, want %d", n, len(want))
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for k := 0; k <= n; k++ {
			part := filepath.Join(dir, fmt.Sprintf("part-%d-%d.jsonl", workers, k))
			partial := strings.Join(lines[:k], "")
			if k < n {
				// A killed writer tears the line it was appending.
				partial += lines[k][:len(lines[k])/2]
			}
			if err := os.WriteFile(part, []byte(partial), 0o644); err != nil {
				t.Fatal(err)
			}
			rspec := tinySpec(workers)
			got, err := Resume(part, rspec)
			if err != nil {
				t.Fatalf("workers=%d k=%d: %v", workers, k, err)
			}
			sameResults(t, got, want)
			if Digest(got) != Digest(want) {
				t.Fatalf("workers=%d k=%d: digest differs", workers, k)
			}
			// The resumed journal is complete: resuming again restores
			// everything without re-running a single cell.
			again, err := Resume(part, tinySpec(2))
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, again, want)
		}
	}
}

// TestFailedCellRetryBounded pins the retry contract: a permanently
// failing cell is re-run on each resume until MaxAttempts, after which
// its recorded failure is final and resumes stop executing it.
func TestFailedCellRetryBounded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	var calls atomic.Int64
	spec := Spec{
		Scenarios: sweep.Grid(tinyBase(), []float64{0.2}, []float64{0.01}, 1, 5, 9),
		Retry:     RetryPolicy{MaxAttempts: 2},
		Opts: sweep.Options{
			Workers: 2,
			SkipFit: true,
			Methods: []sweep.MethodSpec{
				{Name: "traditional"},
				{Name: "broken", Factory: func(sweep.Scenario) (pic.FieldMethod, error) {
					calls.Add(1)
					return nil, fmt.Errorf("backend permanently down")
				}},
			},
		},
	}
	results, err := Run(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("traditional cell failed: %v", results[0].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "permanently down") {
		t.Fatalf("broken cell error = %v", results[1].Err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("first run executed broken cell %d times, want 1", got)
	}
	// First resume: attempts 1 < MaxAttempts 2, so it re-runs once more.
	if _, err := Resume(path, spec); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("after first resume broken cell ran %d times, want 2", got)
	}
	// Further resumes: the failure is final; the cell must not run again,
	// and its recorded error is restored.
	for i := 0; i < 3; i++ {
		results, err = Resume(path, spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := calls.Load(); got != 2 {
			t.Fatalf("resume %d re-ran the out-of-attempts cell (%d executions)", i+2, got)
		}
		if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "permanently down") {
			t.Fatalf("restored failure = %v", results[1].Err)
		}
	}
}

// TestJournalTornTailAndCorruption: a torn last line is tolerated,
// corruption before valid records is not.
func TestJournalTornTailAndCorruption(t *testing.T) {
	dir := t.TempDir()
	good := `{"v":1,"key":"a","method":"traditional","scenario":"s","attempts":1,"elapsed_ns":1,"growth":{},"theory_gamma":0,"energy_variation":0,"momentum_drift":0}`
	torn := filepath.Join(dir, "torn.jsonl")
	if err := os.WriteFile(torn, []byte(good+"\n"+good[:40]), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadJournal(torn)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(recs) != 1 || recs["a"].Method != "traditional" {
		t.Fatalf("torn journal loaded %d records", len(recs))
	}
	corrupt := filepath.Join(dir, "corrupt.jsonl")
	if err := os.WriteFile(corrupt, []byte(good[:40]+"\n"+good+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJournal(corrupt); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
	ver := filepath.Join(dir, "version.jsonl")
	if err := os.WriteFile(ver, []byte(strings.Replace(good, `"v":1`, `"v":99`, 1)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJournal(ver); err == nil {
		t.Fatal("unknown record version accepted")
	}
}

// TestKeyDeterminismAndSensitivity: keys are stable across calls and
// change with any physics-relevant input.
func TestKeyDeterminismAndSensitivity(t *testing.T) {
	sc := sweep.Scenario{Name: "s", Cfg: tinyBase(), Steps: 10}
	var opts sweep.Options
	k1, err := Key("mlp", sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := Key("mlp", sc, opts)
	if k1 != k2 {
		t.Fatalf("key not deterministic: %q vs %q", k1, k2)
	}
	if k, _ := Key("cnn", sc, opts); k == k1 {
		t.Fatal("method name not in key")
	}
	sc2 := sc
	sc2.Steps = 11
	if k, _ := Key("mlp", sc2, opts); k == k1 {
		t.Fatal("step count not in key")
	}
	sc3 := sc
	sc3.Cfg.Seed = 999
	if k, _ := Key("mlp", sc3, opts); k == k1 {
		t.Fatal("config seed not in key")
	}
	sc4 := sc
	sc4.Cfg.Vth = 0.123
	if k, _ := Key("mlp", sc4, opts); k == k1 {
		t.Fatal("config physics not in key")
	}
	// Options that change what a Result contains are part of the key,
	// so resuming with different options re-runs instead of restoring
	// records missing the requested fields.
	if k, _ := Key("mlp", sc, sweep.Options{SkipFit: true}); k == k1 {
		t.Fatal("SkipFit not in key")
	}
	if k, _ := Key("mlp", sc, sweep.Options{KeepFinalState: true}); k == k1 {
		t.Fatal("KeepFinalState not in key")
	}
	// Pure scheduling knobs are not.
	if k, _ := Key("mlp", sc, sweep.Options{Workers: 7}); k != k1 {
		t.Fatal("Workers leaked into the key")
	}
	// '|' inside names cannot shift the method/scenario boundary: the
	// components are length-prefixed.
	scX := sc
	scX.Name = "x"
	scY := sc
	scY.Name = "s1|x"
	kx, _ := Key("a|s1", scX, opts)
	ky, _ := Key("a", scY, opts)
	if kx == ky {
		t.Fatal("pipe in names collided two distinct cells")
	}
}

// TestResumeRequiresJournal pins the typo guard.
func TestResumeRequiresJournal(t *testing.T) {
	if _, err := Resume(filepath.Join(t.TempDir(), "missing.jsonl"), tinySpec(1)); err == nil {
		t.Fatal("resume of a missing journal succeeded")
	}
	if _, err := Resume("", tinySpec(1)); err == nil {
		t.Fatal("resume without a path succeeded")
	}
}

// TestStaleJournalEntriesIgnored: records whose keys no longer match
// the campaign (changed physics) are ignored, not restored.
func TestStaleJournalEntriesIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	spec := tinySpec(1)
	if _, err := Run(path, spec); err != nil {
		t.Fatal(err)
	}
	// Same scenario names, different physics: everything re-runs.
	changed := tinySpec(1)
	for i := range changed.Scenarios {
		changed.Scenarios[i].Steps = 9
	}
	want := sweep.Run(changed.Scenarios, changed.Opts)
	got, err := Resume(path, changed)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, want)
}

// nanField is a field method that poisons the run with NaNs, producing
// a result JSON cannot carry.
type nanField struct{}

func (nanField) Name() string { return "nan" }

func (nanField) ComputeField(sim *pic.Simulation, e []float64) error {
	for i := range e {
		e[i] = math.NaN()
	}
	return nil
}

// TestUnserializableResultCanonicalizedAsFailure: a journaled campaign
// whose cell result cannot cross JSON (non-finite floats) journals a
// stripped failure record, returns exactly what that record restores,
// and therefore stays digest-identical across resumes — and the
// attempt counter advances, so the retry bound still holds.
func TestUnserializableResultCanonicalizedAsFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	spec := Spec{
		// One step only: the NaN field poisons the recorded energies
		// without the diverged particles ever re-entering a deposit.
		Scenarios: sweep.Grid(tinyBase(), []float64{0.2}, []float64{0.01}, 1, 1, 21),
		Retry:     RetryPolicy{MaxAttempts: 1},
		Opts: sweep.Options{
			Workers: 1,
			SkipFit: true,
			Methods: []sweep.MethodSpec{{Name: "nan", Factory: func(sweep.Scenario) (pic.FieldMethod, error) {
				return nanField{}, nil
			}}},
		},
	}
	results, err := Run(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "not journaled") {
		t.Fatalf("unserializable cell reported %v, want a 'not journaled' failure", results[0].Err)
	}
	recs, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("journal holds %d records, want 1", len(recs))
	}
	for _, rec := range recs {
		if rec.Attempts != 1 || rec.Err == "" || len(rec.Samples) != 0 {
			t.Fatalf("fallback record %+v, want attempts=1, Err set, no payload", rec)
		}
	}
	// MaxAttempts=1: the failure is final; resume restores it without
	// re-running, and the digest matches the original run exactly.
	again, err := Resume(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, again, results)
	if Digest(again) != Digest(results) {
		t.Fatal("digest changed across resume of an unserializable cell")
	}
}
