// Package campaign runs resumable multi-method sweep campaigns: the
// scenario x method cross product of internal/sweep, with every
// completed cell appended to a journal file as it finishes. A campaign
// killed mid-run resumes from its journal — completed cells are
// restored bit-identically instead of re-run — so paper-scale
// comparison scans (traditional vs MLP vs CNN vs oracle over a
// parameter grid, the shape of the paper's Table I and Figs. 4-6)
// survive interruption at the cost of one line of JSON per cell.
//
// Keying. Every cell owns a deterministic key: the method name, the
// scenario name, the gob fingerprint of the scenario's full PIC
// configuration (pic.ConfigKey, the checkpoint machinery's
// serialization) and the step count. The key is a pure function of the
// campaign spec, so separate processes agree on it; any change to a
// cell's physics changes its key, and stale journal entries can never
// be mistaken for completed work.
//
// Resume contract. Run(path, spec) with an existing journal skips every
// key the journal records as complete and re-runs the rest. Because
// each cell's result depends only on its scenario seed and method — the
// sweep engine's determinism invariant — a resumed campaign's final
// result set is bit-identical to an uninterrupted run's, at any worker
// count, with one documented exception: Result.Elapsed is a wall-clock
// measurement, restored verbatim for journaled cells and re-measured
// for re-run ones. Digest hashes exactly the invariant part.
//
// Failure handling. A failed cell is journaled too, with Err as a
// string and an attempt counter. Transient failures (Transient:
// timeouts, connection resets, injected RPC faults) are retried within
// the run under Spec.Retry's deterministic seeded-jitter exponential
// backoff; permanent ones only across resumes. Either way a cell
// executes at most Spec.Retry.Attempts() times, after which the
// recorded failure is final and the cell is restored as failed, so a
// permanently broken scenario cannot wedge a campaign in a retry loop.
// Preempted executions (Preemption: the drain interrupt, an expired
// distributed lease) are the deliberate exception — they journal
// nothing and are never charged an attempt, so scheduling can never
// burn a cell's retry budget.
//
// Artifacts. The journal owns *results* — one line per completed cell.
// The expensive stages that produce results (model training) own their
// own persistence: trained solver bundles and in-flight training
// checkpoints live in the journal's artifact directory (ArtifactDir),
// keyed by training fingerprints the experiments pipeline computes.
// The two survive independently by design: deleting the journal forces
// every cell to re-run but a surviving artifact directory still spares
// retraining, while deleting the artifacts forces a (deterministic)
// retrain but journaled cells still restore bit-identically.
package campaign

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"dlpic/internal/pic"
	"dlpic/internal/sweep"
)

// ErrInterrupted marks a cell that was skipped because Spec.Interrupt
// tripped before the cell started. Interrupted cells are never
// journaled — they carry no physics — so a later Run over the same
// journal re-runs exactly them and nothing else. Detect with
// errors.Is on Result.Err, or Interrupted over the whole result set.
var ErrInterrupted = errors.New("campaign: interrupted before cell start")

// DefaultMaxAttempts bounds how many times a failing cell is executed
// across a campaign and its resumes when Spec.Retry.MaxAttempts is
// unset.
const DefaultMaxAttempts = 3

// Spec defines a campaign: a scenario grid crossed with the method
// registry of Opts.Methods, executed on the sweep pool.
type Spec struct {
	// Scenarios is the scenario grid (see sweep.Grid).
	Scenarios []sweep.Scenario
	// Opts configures the sweep engine. Opts.Methods is the campaign's
	// method registry (empty = traditional only); Opts.Progress, if
	// set, is called with done counting restored cells too, so a
	// resumed campaign starts partway.
	Opts sweep.Options
	// Retry bounds and paces failing-cell re-runs: RetryPolicy.
	// MaxAttempts caps executions across the campaign and its resumes
	// (zero selects DefaultMaxAttempts), and transient failures back
	// off within a run by RetryPolicy.Delay's deterministic
	// seeded-jitter schedule. The zero value reproduces the historic
	// bare-counter behavior.
	Retry RetryPolicy
	// Interrupt, when non-nil, is polled before each pending cell
	// starts; once it returns true the remaining cells are skipped with
	// ErrInterrupted instead of run. This is the graceful-drain seam: a
	// long-running service stops a campaign at the next cell boundary,
	// the journal keeps only fully completed cells, and a later Run
	// resumes bit-identically. Cells already executing when Interrupt
	// trips run to completion (and are journaled). The callback must be
	// safe for concurrent calls from pool workers.
	Interrupt func() bool
}

// Key returns the deterministic journal key of one scenario x method
// cell. Besides the scenario physics it folds in the sweep options
// that change what a Result contains (SkipFit, KeepFinalState), so
// resuming with different options re-runs cells instead of restoring
// records that lack the requested fields. What the key cannot see is
// the *content* behind a method name — a registry entry named "mlp"
// backed by a differently trained model produces the same key — so
// method names must identify their backend across resumes.
func Key(method string, sc sweep.Scenario, opts sweep.Options) (string, error) {
	fp, err := pic.ConfigKey(sc.Cfg)
	if err != nil {
		return "", err
	}
	// Name components are length-prefixed so a '|' inside a method or
	// scenario name cannot make two different cells collide on one key.
	return fmt.Sprintf("%d:%s|%d:%s|%s|steps=%d|fit=%t|final=%t",
		len(method), method, len(sc.Name), sc.Name, fp, sc.Steps,
		!opts.SkipFit, opts.KeepFinalState), nil
}

// Cell is one scenario x method unit of a campaign in result order
// (scenario-major): its input-order index, deterministic journal key,
// scenario and resolved method spec. Cells is the shared planning step
// of Run and the distributed coordinator (internal/dist) — both agree
// on cell identity and ordering because both plan through it.
type Cell struct {
	// Index is the cell's slot in the campaign's result set.
	Index int
	// Key is the deterministic journal key (see Key).
	Key string
	// Scenario and Method are the cell's inputs, with the method
	// registry already resolved (non-empty names).
	Scenario sweep.Scenario
	Method   sweep.MethodSpec
}

// Cells resolves the spec's method registry and keys the full
// scenario x method cross product in result order.
func Cells(spec Spec) ([]Cell, error) {
	methods, err := sweep.ResolveMethods(spec.Opts.Methods)
	if err != nil {
		return nil, err
	}
	m := len(methods)
	cells := make([]Cell, len(spec.Scenarios)*m)
	for c := range cells {
		k, err := Key(methods[c%m].Name, spec.Scenarios[c/m], spec.Opts)
		if err != nil {
			return nil, err
		}
		cells[c] = Cell{Index: c, Key: k, Scenario: spec.Scenarios[c/m], Method: methods[c%m]}
	}
	return cells, nil
}

// Run executes the campaign, journaling each completed cell to path as
// it finishes and skipping cells an existing journal at path already
// records as complete (path == "" disables journaling and runs
// everything). Results are scenario-major like sweep.Run's, and —
// Elapsed aside — bit-identical between interrupted-and-resumed and
// uninterrupted executions at any worker count. The error reports spec
// or journal problems; per-cell failures stay in Result.Err.
func Run(path string, spec Spec) ([]sweep.Result, error) {
	cells, err := Cells(spec)
	if err != nil {
		return nil, err
	}
	maxAttempts := spec.Retry.Attempts()

	var (
		journal   *Journal
		completed map[string]Record
	)
	if path != "" {
		journal, completed, err = OpenJournal(path)
		if err != nil {
			return nil, err
		}
		defer journal.Close()
	}

	// Partition the cells: restore what the journal settles (successes,
	// and failures out of attempts), run the rest.
	n := len(cells)
	results := make([]sweep.Result, n)
	attempts := make([]int, n)
	var pending []int
	restored := 0
	for c := range cells {
		if rec, ok := completed[cells[c].Key]; ok {
			if rec.Err == "" || rec.Attempts >= maxAttempts {
				results[c] = rec.Result(cells[c].Scenario)
				restored++
				continue
			}
			attempts[c] = rec.Attempts
		}
		pending = append(pending, c)
	}

	// Report progress over the whole campaign: restored cells count as
	// already done, so a resumed run starts partway.
	progress := spec.Opts.Progress
	if progress != nil {
		inner := progress
		progress = func(done, total int) { inner(restored+done, n) }
	}

	var (
		appendMu  sync.Mutex
		appendErr error
	)
	ran := sweep.Collect(len(pending), spec.Opts.Workers, progress, func(i int) sweep.Result {
		cell := cells[pending[i]]
		attempt := attempts[pending[i]]
		for {
			if spec.Interrupt != nil && spec.Interrupt() {
				// Skipped, not failed: no journal record, no attempt
				// charged. The cell stays pending for the next Run over
				// this journal.
				return sweep.Result{
					Scenario: cell.Scenario, Method: cell.Method.Name,
					Err: ErrInterrupted,
				}
			}
			res := sweep.RunScenario(cell.Scenario, cell.Method, spec.Opts)
			if res.Err != nil && Preemption(res.Err) {
				// Preempted mid-run (e.g. a backend drained away): like
				// the interrupt above, nothing is journaled and no
				// attempt is charged — preemption must never burn a
				// cell's retry budget.
				return res
			}
			attempt++
			if journal != nil {
				// An unserializable result (non-finite floats cannot
				// cross JSON, oversized records cannot be read back) is
				// canonicalized into a stripped failure record that
				// still advances the attempt counter — this run and
				// every resume then report the same (failed) cell and
				// digests stay identical.
				rec, stripped := NewRecord(cell.Key, attempt, res).Sanitized()
				if err := journal.Append(rec); err != nil {
					appendMu.Lock()
					if appendErr == nil {
						appendErr = err
					}
					appendMu.Unlock()
				}
				if stripped {
					res = rec.Result(cell.Scenario)
				}
			}
			if res.Err == nil || attempt >= maxAttempts || !Transient(res.Err) {
				return res
			}
			// Transient failure with budget left: back off on the
			// policy's deterministic seeded-jitter schedule and re-run
			// within this campaign instead of waiting for a resume.
			time.Sleep(spec.Retry.Delay(cell.Key, attempt))
		}
	})
	for i, c := range pending {
		results[c] = ran[i]
	}
	return results, appendErr
}

// Resume is Run against a journal that must already exist — the
// explicit "continue this interrupted campaign" entry point. It errors
// when path has no journal, which catches typos before hours of
// recomputation.
func Resume(path string, spec Spec) ([]sweep.Result, error) {
	if path == "" {
		return nil, fmt.Errorf("campaign: Resume needs a journal path")
	}
	if _, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("campaign: resume: %w", err)
	}
	return Run(path, spec)
}

// Interrupted reports whether any cell of a result set was skipped by
// Spec.Interrupt. A true return means the campaign is incomplete by
// choice, not by failure: its journal holds only completed cells and a
// later Run finishes the rest bit-identically.
func Interrupted(results []sweep.Result) bool {
	for i := range results {
		if errors.Is(results[i].Err, ErrInterrupted) {
			return true
		}
	}
	return false
}

// ArtifactDir returns the canonical directory for persistent artifacts
// attached to the journal at path: "<path>.artifacts". Trained model
// bundles and epoch-granular training checkpoints are stored there
// (see experiments.Options.BundleDir), next to — but owned separately
// from — the journal itself.
func ArtifactDir(path string) string { return path + ".artifacts" }

// Digest returns a short hex digest over the physics payload of a
// result set — every field except the wall-clock Elapsed, which is the
// one quantity a resume legitimately changes. Two campaign executions
// are bit-identical iff their digests match, which is what the CI
// interrupt/resume smoke checks.
func Digest(results []sweep.Result) string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) { binary.LittleEndian.PutUint64(buf[:], v); h.Write(buf[:]) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(s string) { u64(uint64(len(s))); h.Write([]byte(s)) }
	for i := range results {
		r := &results[i]
		str(r.Method)
		str(r.Scenario.Name)
		u64(r.Scenario.Cfg.Seed)
		if r.Err != nil {
			str("err:" + r.Err.Error())
		}
		u64(uint64(len(r.Rec.Samples)))
		for _, s := range r.Rec.Samples {
			u64(uint64(s.Step))
			f64(s.Time)
			f64(s.Kinetic)
			f64(s.Field)
			f64(s.Total)
			f64(s.Momentum)
			f64(s.ModeAmp)
		}
		if r.FitOK {
			str("fit")
			f64(r.Growth.Gamma)
			f64(r.Growth.Intercept)
			f64(r.Growth.R2)
			u64(uint64(r.Growth.N))
			f64(r.Growth.T0)
			f64(r.Growth.T1)
		}
		f64(r.TheoryGamma)
		f64(r.EnergyVariation)
		f64(r.MomentumDrift)
		u64(uint64(len(r.FinalX)))
		for _, v := range r.FinalX {
			f64(v)
		}
		for _, v := range r.FinalV {
			f64(v)
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
