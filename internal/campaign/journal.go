package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"dlpic/internal/diag"
	"dlpic/internal/sweep"
)

// recordVersion is the journal line format version.
const recordVersion = 1

// Record is one journal line: the serialized outcome of one
// scenario x method cell. Every float crosses JSON losslessly — Go
// marshals float64 with the shortest representation that round-trips
// bit-exactly — so a restored Record reproduces its sweep.Result
// bit-identically (wall-clock Elapsed is carried verbatim from the run
// that produced it). A failed cell stores its error as a string plus
// the attempt count the retry bound is enforced against.
type Record struct {
	// Version is the line format version (recordVersion).
	Version int `json:"v"`
	// Key is the deterministic scenario x method key (see Key).
	Key string `json:"key"`
	// Method and Scenario echo the cell identity for human readers;
	// Key is what resume matches on.
	Method   string `json:"method"`
	Scenario string `json:"scenario"`
	// Attempts counts how many times this cell has been executed across
	// the campaign and its resumes (1 on the first run).
	Attempts int `json:"attempts"`
	// ElapsedNS is the cell's wall-clock time in nanoseconds.
	ElapsedNS int64 `json:"elapsed_ns"`
	// Err is the cell's failure, or "" on success. The remaining fields
	// are partial when set.
	Err string `json:"err,omitempty"`
	// Samples is the full per-step diagnostics series.
	Samples []diag.Sample `json:"samples,omitempty"`
	// Growth is the fitted exponential growth (meaningful when FitOK).
	Growth      diag.GrowthFit `json:"growth"`
	FitOK       bool           `json:"fit_ok,omitempty"`
	TheoryGamma float64        `json:"theory_gamma"`
	// EnergyVariation and MomentumDrift are the conservation metrics.
	EnergyVariation float64 `json:"energy_variation"`
	MomentumDrift   float64 `json:"momentum_drift"`
	// FinalX, FinalV snapshot the final phase space when the sweep ran
	// with KeepFinalState.
	FinalX []float64 `json:"final_x,omitempty"`
	FinalV []float64 `json:"final_v,omitempty"`
}

// NewRecord serializes one completed cell execution: the journal line
// a campaign appends, and the payload a distributed worker reports to
// its coordinator (which then owns the attempt counter and the
// journal).
func NewRecord(key string, attempts int, r sweep.Result) Record {
	rec := Record{
		Version:  recordVersion,
		Key:      key,
		Method:   r.Method,
		Scenario: r.Scenario.Name,
		Attempts: attempts,

		ElapsedNS:       int64(r.Elapsed),
		Samples:         r.Rec.Samples,
		Growth:          r.Growth,
		FitOK:           r.FitOK,
		TheoryGamma:     r.TheoryGamma,
		EnergyVariation: r.EnergyVariation,
		MomentumDrift:   r.MomentumDrift,
		FinalX:          r.FinalX,
		FinalV:          r.FinalV,
	}
	if r.Err != nil {
		rec.Err = r.Err.Error()
	}
	return rec
}

// Result restores the sweep.Result of a record. The scenario comes from
// the live campaign spec (the key guarantees it matches the one the
// record was produced from), so configs never round-trip through the
// journal.
func (rec Record) Result(sc sweep.Scenario) sweep.Result {
	res := sweep.Result{
		Scenario: sc,
		Method:   rec.Method,

		Growth:          rec.Growth,
		FitOK:           rec.FitOK,
		TheoryGamma:     rec.TheoryGamma,
		EnergyVariation: rec.EnergyVariation,
		MomentumDrift:   rec.MomentumDrift,
		FinalX:          rec.FinalX,
		FinalV:          rec.FinalV,
		Elapsed:         time.Duration(rec.ElapsedNS),
	}
	res.Rec.Samples = rec.Samples
	if rec.Err != "" {
		res.Err = &journaledError{msg: rec.Err}
	}
	return res
}

// Sanitized returns the record unchanged when it can cross the
// journal's JSON line format, or — when it cannot (non-finite floats
// do not marshal; oversized records would outgrow the reader's line
// cap) — the stripped failure record that canonically replaces it,
// plus whether stripping happened. Campaign runs and distributed
// workers both canonicalize through this, so every process produces
// the identical record for a given outcome and digests stay
// resume-stable.
func (rec Record) Sanitized() (Record, bool) {
	err := rec.encodable()
	if err == nil {
		return rec, false
	}
	return Record{
		Version: recordVersion, Key: rec.Key,
		Method: rec.Method, Scenario: rec.Scenario,
		Attempts: rec.Attempts, ElapsedNS: rec.ElapsedNS,
		Err: "campaign: result not journaled: " + err.Error(),
	}, true
}

// encodable reports whether the record can be written as one journal
// line, with the same validation (and error text) Append enforces.
func (rec Record) encodable() error {
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: marshal record %q: %w", rec.Key, err)
	}
	if len(buf) > maxRecordBytes {
		return fmt.Errorf("campaign: record %q is %d bytes, over the %d journal line limit", rec.Key, len(buf), maxRecordBytes)
	}
	return nil
}

// journaledError is a failure restored from a journal. It compares and
// prints as its recorded message.
type journaledError struct{ msg string }

// Error implements error.
func (e *journaledError) Error() string { return e.msg }

// Journal is an append-only JSON-lines file of cell Records. One
// process appends at a time; Append is safe for concurrent use by the
// pool workers of a single campaign.
type Journal struct {
	f  *os.File
	mu sync.Mutex
}

// LoadJournal reads the records of a journal file, last-wins by key (a
// retried cell appends a fresh record, so later lines supersede earlier
// ones). A torn final line — the signature of a killed writer — is
// ignored; corruption anywhere else is an error. A missing file is an
// error (use OpenJournal to create-or-resume).
func LoadJournal(path string) (map[string]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records := make(map[string]Record)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var (
		pendingErr  error
		pendingLine int
		line        int
	)
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 {
			continue
		}
		// A decode failure is fatal only if a valid line follows it:
		// the last line of the file may legitimately be torn.
		if pendingErr != nil {
			return nil, pendingErr
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			pendingErr = fmt.Errorf("campaign: journal %s line %d: %w", path, line, err)
			pendingLine = line
			continue
		}
		if rec.Version != recordVersion {
			return nil, fmt.Errorf("campaign: journal %s line %d: unsupported record version %d", path, line, rec.Version)
		}
		if rec.Key == "" {
			pendingErr = fmt.Errorf("campaign: journal %s line %d: record without key", path, line)
			pendingLine = line
			continue
		}
		records[rec.Key] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: journal %s: %w", path, err)
	}
	if pendingErr != nil && pendingLine != line {
		return nil, pendingErr
	}
	return records, nil
}

// OpenJournal opens path for appending, creating it if absent, and
// returns the records already present (empty for a fresh journal). A
// torn final line left by a killed writer is truncated away first —
// otherwise the next appended record would glue onto the fragment and
// corrupt the file for good.
func OpenJournal(path string) (*Journal, map[string]Record, error) {
	records := make(map[string]Record)
	if _, err := os.Stat(path); err == nil {
		// Truncate before loading: an unterminated final line — even
		// one that happens to be complete JSON — is dropped from disk
		// AND from the restored records, so the journal and the results
		// it produced never disagree.
		if err := TruncateTornTail(path); err != nil {
			return nil, nil, err
		}
		records, err = LoadJournal(path)
		if err != nil {
			return nil, nil, err
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &Journal{f: f}, records, nil
}

// TruncateTornTail cuts a non-newline-terminated final fragment off an
// append-only line file so appends start on a fresh line. The common
// path (a cleanly terminated file) reads a single byte; only the
// post-kill case loads the file to find the last complete line. It is
// the shared torn-tail discipline of the campaign journal and the
// distributed coordinator's lease log (internal/dist), both of which a
// kill -9 may leave mid-line.
func TruncateTornTail(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if st.Size() == 0 {
		return f.Close()
	}
	var last [1]byte
	if _, err := f.ReadAt(last[:], st.Size()-1); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if last[0] == '\n' {
		return nil
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	end := 0
	if i := bytes.LastIndexByte(buf, '\n'); i >= 0 {
		end = i + 1
	}
	return os.Truncate(path, int64(end))
}

// maxRecordBytes bounds one journal line at append time, below the
// reader's scanner cap, so a campaign can never write a journal its
// own resume cannot read back.
const maxRecordBytes = 48 << 20

// Append writes one record as a single JSON line. Records land in
// completion order; LoadJournal's last-wins rule makes that safe for
// retried keys. A marshal failure (non-finite floats cannot cross
// JSON) or an oversized record leaves the journal untouched and is
// returned so the campaign can journal a stripped failure record
// instead — the cell's in-memory result is unaffected.
func (j *Journal) Append(rec Record) error {
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: marshal record %q: %w", rec.Key, err)
	}
	if len(buf) > maxRecordBytes {
		return fmt.Errorf("campaign: record %q is %d bytes, over the %d journal line limit", rec.Key, len(buf), maxRecordBytes)
	}
	buf = append(buf, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("campaign: append record %q: %w", rec.Key, err)
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
