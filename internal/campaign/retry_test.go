package campaign

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"dlpic/internal/pic"
	"dlpic/internal/sweep"
)

// TestRetryDelayDeterministicJitter pins the backoff contract: the
// schedule is a pure function of (Seed, key, attempt), jittered within
// [0.5, 1.5) of the exponential envelope, capped, and zero whenever
// backoff is disabled.
func TestRetryDelayDeterministicJitter(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, Seed: 7}
	q := RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, Seed: 7}
	for attempt := 1; attempt <= 4; attempt++ {
		d1, d2 := p.Delay("cell-a", attempt), q.Delay("cell-a", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: equal policies disagree: %v vs %v", attempt, d1, d2)
		}
		envelope := time.Duration(float64(p.BaseDelay) * pow(DefaultRetryMultiplier, attempt-1))
		if d1 < envelope/2 || d1 >= envelope+envelope/2 {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d1, envelope/2, envelope+envelope/2)
		}
	}
	if p.Delay("cell-a", 1) == p.Delay("cell-b", 1) {
		t.Fatal("jitter ignores the cell key")
	}
	other := p
	other.Seed = 8
	if p.Delay("cell-a", 1) == other.Delay("cell-a", 1) {
		t.Fatal("jitter ignores the seed")
	}
	if d := (RetryPolicy{}).Delay("cell-a", 1); d != 0 {
		t.Fatalf("zero BaseDelay slept %v", d)
	}
	if d := p.Delay("cell-a", 0); d != 0 {
		t.Fatalf("attempt 0 slept %v", d)
	}
	// A pathological policy saturates at the cap instead of overflowing.
	huge := RetryPolicy{BaseDelay: time.Hour, Multiplier: 10}
	if d := huge.Delay("cell-a", 9); d != time.Minute {
		t.Fatalf("uncapped delay %v", d)
	}
}

func pow(base float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= base
	}
	return out
}

// transientTestErr classifies as Transient via the marker interface.
type transientTestErr struct{ msg string }

func (e transientTestErr) Error() string { return e.msg }
func (transientTestErr) Transient() bool { return true }

// preemptTestErr classifies as Preemption via the marker interface.
type preemptTestErr struct{}

func (preemptTestErr) Error() string    { return "lease expired underneath the cell" }
func (preemptTestErr) Preemption() bool { return true }

// TestClassifiers pins what counts as transient and as preemption,
// including wrapped chains.
func TestClassifiers(t *testing.T) {
	if !Transient(transientTestErr{msg: "x"}) {
		t.Fatal("marker interface not transient")
	}
	if !Transient(fmt.Errorf("rpc: %w", syscall.ECONNRESET)) {
		t.Fatal("wrapped ECONNRESET not transient")
	}
	if !Transient(io.ErrUnexpectedEOF) {
		t.Fatal("unexpected EOF not transient")
	}
	if Transient(nil) || Transient(errors.New("physics diverged")) {
		t.Fatal("permanent failure classified transient")
	}
	if !Preemption(ErrInterrupted) || !Preemption(fmt.Errorf("cell: %w", ErrInterrupted)) {
		t.Fatal("interrupt not preemption")
	}
	if !Preemption(fmt.Errorf("worker: %w", preemptTestErr{})) {
		t.Fatal("wrapped lease expiry not preemption")
	}
	if Preemption(errors.New("plain failure")) {
		t.Fatal("plain failure classified preemption")
	}
}

// TestTransientFailureRetriedWithinRun: a transiently failing backend
// is retried inside one Run under the policy's budget, every execution
// journaled, and the cell ends successful without needing a resume.
func TestTransientFailureRetriedWithinRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	var calls atomic.Int64
	spec := Spec{
		Scenarios: sweep.Grid(tinyBase(), []float64{0.2}, []float64{0.01}, 1, 5, 9),
		Retry:     RetryPolicy{MaxAttempts: 3, Seed: 1},
		Opts: sweep.Options{
			Workers: 1,
			SkipFit: true,
			Methods: []sweep.MethodSpec{
				{Name: "flaky", Factory: func(sc sweep.Scenario) (pic.FieldMethod, error) {
					if calls.Add(1) < 3 {
						return nil, transientTestErr{msg: "connection reset by chaos"}
					}
					return nil, nil // nil method = traditional
				}},
			},
		},
	}
	results, err := Run(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("cell failed after in-run retries: %v", results[0].Err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("backend called %d times, want 3 (2 transient failures + success)", got)
	}
	recs, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Attempts != 3 || rec.Err != "" {
			t.Fatalf("final record %+v, want attempts=3 success (last-wins)", rec)
		}
	}

	// The budget still binds: a backend that never recovers executes
	// exactly MaxAttempts times in one run, then the failure is final.
	calls.Store(0)
	spec2 := spec
	spec2.Opts.Methods = []sweep.MethodSpec{
		{Name: "always-flaky", Factory: func(sweep.Scenario) (pic.FieldMethod, error) {
			calls.Add(1)
			return nil, transientTestErr{msg: "still resetting"}
		}},
	}
	path2 := filepath.Join(t.TempDir(), "journal2.jsonl")
	results, err = Run(path2, spec2)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("exhausted cell reported success")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("exhausted backend called %d times, want exactly MaxAttempts=3", got)
	}
	// Out of attempts: a resume restores the failure without re-running.
	if _, err := Resume(path2, spec2); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("resume re-ran an out-of-attempts cell (%d executions)", got)
	}
}

// TestPreemptionNeverBurnsRetryBudget is the satellite bugfix test:
// executions that end in preemption (an expired lease, a drain racing
// the backend) journal nothing and charge no attempt, so any number of
// preemptions later the cell still has its full budget. Before
// RetryPolicy, a preemption-adjacent failure and a real failure were
// indistinguishable to the bare counter.
func TestPreemptionNeverBurnsRetryBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	var calls atomic.Int64
	spec := Spec{
		Scenarios: sweep.Grid(tinyBase(), []float64{0.2}, []float64{0.01}, 1, 5, 9),
		Retry:     RetryPolicy{MaxAttempts: 2},
		Opts: sweep.Options{
			Workers: 1,
			SkipFit: true,
			Methods: []sweep.MethodSpec{
				{Name: "preempted", Factory: func(sweep.Scenario) (pic.FieldMethod, error) {
					calls.Add(1)
					return nil, preemptTestErr{}
				}},
			},
		},
	}
	// Each Run executes the cell once, gets a preemption, journals
	// nothing, charges nothing — across many more runs than the budget.
	for i := 0; i < 5; i++ {
		results, err := Run(path, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !Preemption(results[0].Err) {
			t.Fatalf("run %d: result %v, want preemption", i, results[0].Err)
		}
		recs, err := LoadJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 0 {
			t.Fatalf("run %d journaled a preempted execution: %+v", i, recs)
		}
	}
	if got := calls.Load(); got != 5 {
		t.Fatalf("cell executed %d times, want 5 (once per run, never budget-limited)", got)
	}
	// The budget is intact: once preemption stops, the cell still gets
	// its full MaxAttempts of real executions.
	var fails atomic.Int64
	spec.Opts.Methods = []sweep.MethodSpec{
		{Name: "preempted", Factory: func(sweep.Scenario) (pic.FieldMethod, error) {
			fails.Add(1)
			return nil, transientTestErr{msg: "now failing for real"}
		}},
	}
	results, err := Run(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("failing cell succeeded")
	}
	if got := fails.Load(); got != 2 {
		t.Fatalf("post-preemption executions %d, want full MaxAttempts=2", got)
	}
}
