package campaign

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// TestInterruptSkipsCellsAndResumes is the graceful-drain property: a
// campaign whose Interrupt trips after k cells skips the rest with
// ErrInterrupted, journals exactly the completed cells, and a later Run
// over the same journal finishes to a digest bit-identical to an
// uninterrupted campaign.
func TestInterruptSkipsCellsAndResumes(t *testing.T) {
	ref, err := Run("", tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "int.jsonl")
	spec := tinySpec(1)
	var polls atomic.Int64
	spec.Interrupt = func() bool { return polls.Add(1) > 2 }
	results, err := Run(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !Interrupted(results) {
		t.Fatal("Interrupted() = false on a drained campaign")
	}
	interrupted := 0
	for i := range results {
		if errors.Is(results[i].Err, ErrInterrupted) {
			interrupted++
			if len(results[i].Rec.Samples) != 0 {
				t.Fatalf("interrupted cell %d carries samples", i)
			}
		}
	}
	if interrupted != 2 {
		t.Fatalf("interrupted %d of 4 cells, want 2", interrupted)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(buf), "\n"); lines != 2 {
		t.Fatalf("journal holds %d records, want only the 2 completed cells", lines)
	}

	// Finish the drained campaign: only the skipped cells re-run, and
	// the final results are bit-identical to the uninterrupted ones.
	resumed, err := Run(path, tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if Interrupted(resumed) {
		t.Fatal("resumed campaign still reports interruption")
	}
	sameResults(t, resumed, ref)
	if Digest(resumed) != Digest(ref) {
		t.Fatal("resumed digest differs from uninterrupted run")
	}
}

// TestInterruptNeverTrippedIsInert pins that a wired-but-quiet
// Interrupt changes nothing: same results, same digest.
func TestInterruptNeverTrippedIsInert(t *testing.T) {
	ref, err := Run("", tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec(1)
	spec.Interrupt = func() bool { return false }
	got, err := Run("", spec)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, ref)
	if Digest(got) != Digest(ref) {
		t.Fatal("digest differs with an untripped Interrupt")
	}
}
