package campaign

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"syscall"
	"time"

	"dlpic/internal/rng"
)

// DefaultRetryMultiplier is the exponential backoff base used when
// RetryPolicy.Multiplier is unset.
const DefaultRetryMultiplier = 2.0

// maxRetryDelay caps one backoff sleep so a misconfigured policy (huge
// multiplier, deep attempt) cannot park a worker for hours.
const maxRetryDelay = time.Minute

// RetryPolicy governs how failing cells are retried: how many times a
// cell may execute before its failure becomes final, and how long to
// back off between transient-failure retries. Delays carry
// deterministic seeded jitter — a pure function of (Seed, cell key,
// attempt) — so two runs of one campaign sleep identically and a chaos
// test that replays a failure schedule replays its backoff schedule
// too. The zero value selects DefaultMaxAttempts with no backoff
// sleeps, which is the pre-policy behavior.
type RetryPolicy struct {
	// MaxAttempts bounds how many times a failing cell is executed
	// across a campaign and its resumes (<= 0 selects
	// DefaultMaxAttempts). Preempted executions (Preemption) are not
	// attempts and never count against it.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry of a transient
	// failure; 0 disables backoff sleeps entirely.
	BaseDelay time.Duration
	// Multiplier grows the delay per attempt (delay =
	// BaseDelay * Multiplier^(attempt-1), jittered); values < 1 select
	// DefaultRetryMultiplier.
	Multiplier float64
	// Seed keys the jitter stream. Two policies with equal fields
	// produce identical delay schedules.
	Seed uint64
}

// Attempts returns the effective attempt bound of the policy.
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return DefaultMaxAttempts
}

// Delay returns the backoff before re-running key after its attempt-th
// failed execution: BaseDelay * Multiplier^(attempt-1), scaled by a
// deterministic jitter factor in [0.5, 1.5) derived from (Seed, key,
// attempt), capped at one minute. A zero BaseDelay (or attempt < 1)
// returns 0.
func (p RetryPolicy) Delay(key string, attempt int) time.Duration {
	if p.BaseDelay <= 0 || attempt < 1 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = DefaultRetryMultiplier
	}
	d := float64(p.BaseDelay) * math.Pow(mult, float64(attempt-1))
	// The jitter stream is keyed, not shared: every (key, attempt) owns
	// an independent draw, so schedules do not depend on retry order.
	h := sha256.Sum256([]byte(fmt.Sprintf("dlpic-retry|%d|%s|%d", p.Seed, key, attempt)))
	r := rng.New(binary.LittleEndian.Uint64(h[:8]))
	d *= 0.5 + r.Float64()
	if d > float64(maxRetryDelay) {
		d = float64(maxRetryDelay)
	}
	return time.Duration(d)
}

// Preemption reports whether err marks a cell that was preempted —
// stopped by scheduling, not by its own physics or backend: the
// campaign interrupt (ErrInterrupted), a distributed worker's expired
// lease, or any error whose chain implements Preemption() bool.
// Preempted cells are never journaled and never charged an attempt;
// they simply stay pending, so drains, kills and lease reassignments
// cannot burn a cell's retry budget.
func Preemption(err error) bool {
	if errors.Is(err, ErrInterrupted) {
		return true
	}
	var p interface{ Preemption() bool }
	return errors.As(err, &p) && p.Preemption()
}

// Transient reports whether err looks like a failure worth retrying
// with backoff inside one run: network timeouts, connection resets and
// refusals, unexpected EOFs, or any error whose chain implements
// Transient() bool (the seam injected RPC faults and backend errors
// classify through). Permanent failures — bad configurations, diverged
// physics — return false and are retried only across resumes, exactly
// as before the policy existed.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}
