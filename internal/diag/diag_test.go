package diag

import (
	"math"
	"strings"
	"testing"

	"dlpic/internal/fft"
	"dlpic/internal/grid"
	"dlpic/internal/rng"
)

func TestFieldEnergySinusoid(t *testing.T) {
	g := grid.MustNew(128, 2.0)
	e := make([]float64, g.N())
	amp := 0.3
	for i := range e {
		e[i] = amp * math.Sin(2*math.Pi*g.X(i)/g.Length())
	}
	// eps0/2 * integral(amp^2 sin^2) = eps0/2 * amp^2 * L/2.
	want := 0.5 * 1.0 * amp * amp * g.Length() / 2
	if got := FieldEnergy(g, e, 1.0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("field energy %v, want %v", got, want)
	}
	if got := FieldEnergy(g, e, 3.0); math.Abs(got-3*want) > 1e-12 {
		t.Fatalf("eps0 scaling broken: %v", got)
	}
}

func TestModeAmplitude(t *testing.T) {
	n := 64
	g := grid.MustNew(n, 2.0)
	plan := fft.MustPlan(n)
	e := make([]float64, n)
	for i := range e {
		x := g.X(i)
		e[i] = 0.5*math.Cos(2*math.Pi*x/g.Length()) + 0.2*math.Sin(2*math.Pi*3*x/g.Length())
	}
	if a := ModeAmplitude(plan, e, 1); math.Abs(a-0.5) > 1e-12 {
		t.Errorf("mode 1 amplitude %v, want 0.5", a)
	}
	if a := ModeAmplitude(plan, e, 3); math.Abs(a-0.2) > 1e-12 {
		t.Errorf("mode 3 amplitude %v, want 0.2", a)
	}
	if a := ModeAmplitude(plan, e, 2); a > 1e-12 {
		t.Errorf("mode 2 amplitude %v, want 0", a)
	}
}

func TestModeAmplitudePanicsOutOfRange(t *testing.T) {
	plan := fft.MustPlan(16)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range mode")
		}
	}()
	ModeAmplitude(plan, make([]float64, 16), 9)
}

func TestRecorderSeries(t *testing.T) {
	var r Recorder
	for i := 0; i < 5; i++ {
		r.Add(Sample{
			Step: i, Time: float64(i) * 0.2,
			Kinetic: float64(i), Field: 2 * float64(i), Total: 3 * float64(i),
			Momentum: -float64(i), ModeAmp: float64(i * i),
		})
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d", r.Len())
	}
	kin, err := r.Series("kinetic")
	if err != nil || kin[3] != 3 {
		t.Fatalf("kinetic series: %v %v", kin, err)
	}
	mom, err := r.Series("momentum")
	if err != nil || mom[4] != -4 {
		t.Fatalf("momentum series: %v %v", mom, err)
	}
	if _, err := r.Series("bogus"); err == nil {
		t.Fatal("unknown series should error")
	}
	times := r.Times()
	if times[2] != 0.4 {
		t.Fatalf("times = %v", times)
	}
}

func TestMaxRelativeVariation(t *testing.T) {
	if v := MaxRelativeVariation([]float64{100, 101, 99, 102}); math.Abs(v-0.02) > 1e-12 {
		t.Errorf("variation %v, want 0.02", v)
	}
	if v := MaxRelativeVariation(nil); v != 0 {
		t.Errorf("empty variation %v, want 0", v)
	}
	if v := MaxRelativeVariation([]float64{0, 1}); !math.IsInf(v, 1) {
		t.Errorf("zero-start variation %v, want +Inf", v)
	}
}

func TestDrift(t *testing.T) {
	if d := Drift([]float64{5, 7, 3}); d != -2 {
		t.Errorf("drift %v, want -2", d)
	}
	if d := Drift(nil); d != 0 {
		t.Errorf("empty drift %v, want 0", d)
	}
}

func TestWriteCSV(t *testing.T) {
	var r Recorder
	r.Add(Sample{Step: 0, Time: 0, Kinetic: 1, Field: 2, Total: 3, Momentum: 4, ModeAmp: 5})
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "step,time,kinetic") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "0,0,1,2,3,4,5") {
		t.Fatalf("missing row: %q", out)
	}
}

func TestFitGrowthRateExactExponential(t *testing.T) {
	gamma, c := 0.35, -6.0
	var times, amps []float64
	for i := 0; i < 100; i++ {
		tt := float64(i) * 0.2
		times = append(times, tt)
		amps = append(amps, math.Exp(gamma*tt+c))
	}
	fit, err := FitGrowthRate(times, amps, 2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Gamma-gamma) > 1e-10 {
		t.Errorf("gamma %v, want %v", fit.Gamma, gamma)
	}
	if math.Abs(fit.Intercept-c) > 1e-9 {
		t.Errorf("intercept %v, want %v", fit.Intercept, c)
	}
	if fit.R2 < 0.999999 {
		t.Errorf("R2 = %v, want ~1", fit.R2)
	}
}

func TestFitGrowthRateNoisy(t *testing.T) {
	r := rng.New(1)
	gamma := 0.35
	var times, amps []float64
	for i := 0; i < 200; i++ {
		tt := float64(i) * 0.2
		times = append(times, tt)
		amps = append(amps, math.Exp(gamma*tt-8)*(1+0.05*r.NormFloat64()))
	}
	fit, err := FitGrowthRate(times, amps, 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Gamma-gamma) > 0.02 {
		t.Errorf("gamma %v, want ~%v", fit.Gamma, gamma)
	}
}

func TestFitGrowthRateErrors(t *testing.T) {
	if _, err := FitGrowthRate([]float64{1}, []float64{1, 2}, 0, 1); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FitGrowthRate([]float64{1, 2}, []float64{1, 2}, 5, 6); err == nil {
		t.Error("empty window should fail")
	}
	// Negative amplitudes are skipped; all-negative -> too few points.
	if _, err := FitGrowthRate([]float64{1, 2, 3}, []float64{-1, -1, -1}, 0, 4); err == nil {
		t.Error("all non-positive amplitudes should fail")
	}
}

func TestAutoGrowthWindow(t *testing.T) {
	// Synthetic instability: noise floor, exponential rise, saturation.
	var times, amps []float64
	for i := 0; i < 300; i++ {
		tt := float64(i) * 0.2
		val := 1e-5 + math.Min(math.Exp(0.35*(tt-20)), 1.0)*0.1
		times = append(times, tt)
		amps = append(amps, val)
	}
	t0, t1, err := AutoGrowthWindow(times, amps, 0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !(t0 > 0 && t1 > t0) {
		t.Fatalf("window [%v,%v] not increasing", t0, t1)
	}
	fit, err := FitGrowthRate(times, amps, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Gamma-0.35) > 0.05 {
		t.Errorf("auto-window gamma %v, want ~0.35", fit.Gamma)
	}
}

func TestAutoGrowthWindowErrors(t *testing.T) {
	if _, _, err := AutoGrowthWindow([]float64{1, 2}, []float64{1, 2}, 0.01, 0.5); err == nil {
		t.Error("too-short series should fail")
	}
	times := []float64{1, 2, 3, 4}
	if _, _, err := AutoGrowthWindow(times, []float64{0, 0, 0, 0}, 0.01, 0.5); err == nil {
		t.Error("flat-zero series should fail")
	}
	if _, _, err := AutoGrowthWindow(times, []float64{1, 1, 1, 1}, 0.5, 0.01); err == nil {
		t.Error("inverted fractions should fail")
	}
}

func TestVelocitySpread(t *testing.T) {
	// Two cold beams: zero spread.
	v := []float64{0.4, 0.4, 0.4, -0.4, -0.4, -0.4}
	if s := VelocitySpread(v); s > 1e-12 {
		t.Errorf("cold beams spread %v, want 0", s)
	}
	// Symmetric spread of +-0.01 around each beam.
	v = []float64{0.39, 0.41, -0.39, -0.41}
	if s := VelocitySpread(v); math.Abs(s-0.01) > 1e-12 {
		t.Errorf("spread %v, want 0.01", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("p100 = %v", p)
	}
	if p := Percentile(xs, 50); p != 3 {
		t.Errorf("p50 = %v", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Errorf("p25 = %v", p)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	// Input must not be modified.
	xs2 := []float64{3, 1, 2}
	Percentile(xs2, 50)
	if xs2[0] != 3 || xs2[1] != 1 || xs2[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}
