package diag

import (
	"math"
	"testing"
)

func sineField(cells, mode int, amp, phase float64) []float64 {
	out := make([]float64, cells)
	for i := range out {
		out[i] = amp * math.Sin(2*math.Pi*float64(mode)*float64(i)/float64(cells)+phase)
	}
	return out
}

func TestErrorSpectrumValidation(t *testing.T) {
	if _, err := ComputeErrorSpectrum(make([]float64, 4), make([]float64, 8), 4); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := ComputeErrorSpectrum(make([]float64, 7), make([]float64, 7), 4); err == nil {
		t.Error("non-multiple length should fail")
	}
	if _, err := ComputeErrorSpectrum(nil, nil, 4); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ComputeErrorSpectrum(make([]float64, 4), make([]float64, 4), 1); err == nil {
		t.Error("cells < 2 should fail")
	}
}

func TestErrorSpectrumSingleModeError(t *testing.T) {
	cells := 32
	truth := sineField(cells, 1, 0.1, 0)
	pred := append([]float64(nil), truth...)
	// Inject a pure mode-3 error of amplitude 0.02.
	errField := sineField(cells, 3, 0.02, 0.5)
	for i := range pred {
		pred[i] += errField[i]
	}
	spec, err := ComputeErrorSpectrum(pred, truth, cells)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Samples != 1 {
		t.Fatalf("samples %d", spec.Samples)
	}
	if math.Abs(spec.PerMode[3]-0.02) > 1e-12 {
		t.Fatalf("mode-3 error %v, want 0.02", spec.PerMode[3])
	}
	for k := range spec.PerMode {
		if k != 3 && spec.PerMode[k] > 1e-12 {
			t.Fatalf("unexpected error at mode %d: %v", k, spec.PerMode[k])
		}
	}
	if math.Abs(spec.TruthPerMode[1]-0.1) > 1e-12 {
		t.Fatalf("truth mode-1 %v, want 0.1", spec.TruthPerMode[1])
	}
	if spec.DominantErrorMode() != 3 {
		t.Fatalf("dominant mode %d, want 3", spec.DominantErrorMode())
	}
}

func TestErrorSpectrumRelativeAt(t *testing.T) {
	cells := 16
	truth := sineField(cells, 1, 0.1, 0)
	pred := append([]float64(nil), truth...)
	for i := range pred {
		pred[i] += 0.5 * truth[i] // 50% relative error on mode 1
	}
	spec, err := ComputeErrorSpectrum(pred, truth, cells)
	if err != nil {
		t.Fatal(err)
	}
	if r := spec.RelativeAt(1); math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("relative error %v, want 0.5", r)
	}
	// Error on a mode with no truth power: infinite ratio.
	pred2 := append([]float64(nil), truth...)
	e := sineField(cells, 4, 0.01, 0)
	for i := range pred2 {
		pred2[i] += e[i]
	}
	// The truth has only FFT-roundoff power (~1e-17) at mode 4, so the
	// ratio is astronomically large (or +Inf if the roundoff cancels).
	spec2, _ := ComputeErrorSpectrum(pred2, truth, cells)
	if r := spec2.RelativeAt(4); !math.IsInf(r, 1) && r < 1e6 {
		t.Fatalf("expected an effectively infinite ratio, got %v", r)
	}
	// Out-of-range modes return 0.
	if spec2.RelativeAt(-1) != 0 || spec2.RelativeAt(999) != 0 {
		t.Fatal("out-of-range modes should return 0")
	}
}

func TestErrorSpectrumLowModeFraction(t *testing.T) {
	cells := 32
	truth := make([]float64, cells)
	// Error: equal power on modes 2 and 10.
	pred := make([]float64, cells)
	e2 := sineField(cells, 2, 0.05, 0)
	e10 := sineField(cells, 10, 0.05, 0)
	for i := range pred {
		pred[i] = e2[i] + e10[i]
	}
	spec, err := ComputeErrorSpectrum(pred, truth, cells)
	if err != nil {
		t.Fatal(err)
	}
	if f := spec.LowModeFraction(4); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("low-mode fraction %v, want 0.5", f)
	}
	if f := spec.LowModeFraction(16); math.Abs(f-1.0) > 1e-9 {
		t.Fatalf("all-mode fraction %v, want 1", f)
	}
	if spec.LowModeFraction(0) != 0 {
		t.Fatal("cut 0 should give 0")
	}
}

func TestErrorSpectrumMultiSampleRMS(t *testing.T) {
	cells := 16
	// Two samples with mode-1 errors of 0.01 and 0.03: RMS = sqrt((1+9)/2)*0.01.
	truth := make([]float64, 2*cells)
	pred := make([]float64, 2*cells)
	copy(pred[:cells], sineField(cells, 1, 0.01, 0))
	copy(pred[cells:], sineField(cells, 1, 0.03, 0))
	spec, err := ComputeErrorSpectrum(pred, truth, cells)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.01 * math.Sqrt(5)
	if math.Abs(spec.PerMode[1]-want) > 1e-12 {
		t.Fatalf("RMS %v, want %v", spec.PerMode[1], want)
	}
	if spec.Samples != 2 {
		t.Fatalf("samples %d", spec.Samples)
	}
}
