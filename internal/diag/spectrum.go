package diag

import (
	"fmt"
	"math"

	"dlpic/internal/fft"
)

// ErrorSpectrum implements the analysis the paper's conclusions call for
// ("more studies, such as spectral analysis of errors in the electric
// field values, are needed"): it decomposes the prediction error of a
// field solver by Fourier mode, revealing whether a learned solver errs
// on the physically active long wavelengths or on grid-scale noise.
type ErrorSpectrum struct {
	// PerMode[k] is the RMS amplitude of mode k of (pred - truth) over
	// the sample set, k = 0..n/2.
	PerMode []float64
	// TruthPerMode[k] is the RMS amplitude of mode k of the truth, for
	// normalization.
	TruthPerMode []float64
	// Samples is the number of field pairs analyzed.
	Samples int
}

// ComputeErrorSpectrum accumulates the per-mode RMS error over pairs of
// predicted and true fields. pred and truth are row-major [n, cells]
// sample sets of equal shape, supplied as flat slices.
func ComputeErrorSpectrum(pred, truth []float64, cells int) (*ErrorSpectrum, error) {
	if cells < 2 {
		return nil, fmt.Errorf("diag: ErrorSpectrum needs >= 2 cells, got %d", cells)
	}
	if len(pred) != len(truth) {
		return nil, fmt.Errorf("diag: ErrorSpectrum length mismatch %d vs %d", len(pred), len(truth))
	}
	if len(pred) == 0 || len(pred)%cells != 0 {
		return nil, fmt.Errorf("diag: ErrorSpectrum length %d not a multiple of %d", len(pred), cells)
	}
	n := len(pred) / cells
	plan := fft.MustPlan(cells)
	half := cells/2 + 1
	errSq := make([]float64, half)
	truthSq := make([]float64, half)
	diff := make([]float64, cells)
	amp := make([]float64, half)
	for s := 0; s < n; s++ {
		p := pred[s*cells : (s+1)*cells]
		tr := truth[s*cells : (s+1)*cells]
		for i := range diff {
			diff[i] = p[i] - tr[i]
		}
		fft.Amplitudes(amp, diff, plan)
		for k, a := range amp {
			errSq[k] += a * a
		}
		fft.Amplitudes(amp, tr, plan)
		for k, a := range amp {
			truthSq[k] += a * a
		}
	}
	spec := &ErrorSpectrum{
		PerMode:      make([]float64, half),
		TruthPerMode: make([]float64, half),
		Samples:      n,
	}
	for k := 0; k < half; k++ {
		spec.PerMode[k] = sqrt(errSq[k] / float64(n))
		spec.TruthPerMode[k] = sqrt(truthSq[k] / float64(n))
	}
	return spec, nil
}

// RelativeAt returns the error-to-signal ratio of mode k (infinite when
// the truth has no power there but the error does).
func (s *ErrorSpectrum) RelativeAt(k int) float64 {
	if k < 0 || k >= len(s.PerMode) {
		return 0
	}
	if s.TruthPerMode[k] == 0 {
		if s.PerMode[k] == 0 {
			return 0
		}
		return inf()
	}
	return s.PerMode[k] / s.TruthPerMode[k]
}

// DominantErrorMode returns the mode with the largest absolute RMS error
// (excluding the mean mode 0).
func (s *ErrorSpectrum) DominantErrorMode() int {
	best, bestVal := 1, 0.0
	for k := 1; k < len(s.PerMode); k++ {
		if s.PerMode[k] > bestVal {
			bestVal = s.PerMode[k]
			best = k
		}
	}
	return best
}

// LowModeFraction returns the fraction of total error power carried by
// modes 1..cut (inclusive). A learned solver whose error is mostly
// low-mode is biased; one whose error is mostly high-mode is noisy —
// they call for different remedies (more data vs output filtering).
func (s *ErrorSpectrum) LowModeFraction(cut int) float64 {
	if cut < 1 {
		return 0
	}
	var low, total float64
	for k := 1; k < len(s.PerMode); k++ {
		p := s.PerMode[k] * s.PerMode[k]
		total += p
		if k <= cut {
			low += p
		}
	}
	if total == 0 {
		return 0
	}
	return low / total
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

func inf() float64 { return math.Inf(1) }
