// Package diag computes and records the physics diagnostics the paper
// reports: total energy (kinetic + field), total momentum, and the
// Fourier amplitude of individual field modes (E1 in Fig. 4), plus the
// least-squares growth-rate fit used to compare against linear theory.
package diag

import (
	"fmt"
	"io"
	"math"
	"sort"

	"dlpic/internal/fft"
	"dlpic/internal/grid"
)

// Sample is one time level of recorded diagnostics.
type Sample struct {
	Step    int
	Time    float64
	Kinetic float64 // time-centered kinetic energy
	Field   float64 // electrostatic field energy eps0/2 * integral(E^2)
	Total   float64 // Kinetic + Field
	// Momentum is the time-centered total particle momentum.
	Momentum float64
	// ModeAmp is the amplitude of the monitored field mode (|E_mode|).
	ModeAmp float64
}

// FieldEnergy returns eps0/2 * integral(E^2 dx) over the periodic box.
func FieldEnergy(g *grid.Grid, e []float64, eps0 float64) float64 {
	if len(e) != g.N() {
		panic(fmt.Sprintf("diag: FieldEnergy length %d, grid %d", len(e), g.N()))
	}
	var s float64
	for _, v := range e {
		s += v * v
	}
	return 0.5 * eps0 * s * g.Dx()
}

// ModeAmplitude returns the amplitude of Fourier mode m of the grid field
// e, using the single-sided normalization (amplitude of the sinusoid).
// plan must have the grid length.
func ModeAmplitude(plan *fft.Plan, e []float64, m int) float64 {
	n := plan.Len()
	if len(e) != n {
		panic(fmt.Sprintf("diag: ModeAmplitude length %d, plan %d", len(e), n))
	}
	if m < 0 || m > n/2 {
		panic(fmt.Sprintf("diag: mode %d out of range [0,%d]", m, n/2))
	}
	amp := make([]float64, n/2+1)
	fft.Amplitudes(amp, e, plan)
	return amp[m]
}

// Recorder accumulates Samples over a run.
type Recorder struct {
	Samples []Sample
}

// Add appends a sample.
func (r *Recorder) Add(s Sample) { r.Samples = append(r.Samples, s) }

// Len returns the number of recorded samples.
func (r *Recorder) Len() int { return len(r.Samples) }

// Times returns the recorded time axis.
func (r *Recorder) Times() []float64 {
	out := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		out[i] = s.Time
	}
	return out
}

// Series extracts a named series: "kinetic", "field", "total",
// "momentum", "mode".
func (r *Recorder) Series(name string) ([]float64, error) {
	out := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		switch name {
		case "kinetic":
			out[i] = s.Kinetic
		case "field":
			out[i] = s.Field
		case "total":
			out[i] = s.Total
		case "momentum":
			out[i] = s.Momentum
		case "mode":
			out[i] = s.ModeAmp
		default:
			return nil, fmt.Errorf("diag: unknown series %q", name)
		}
	}
	return out, nil
}

// MaxRelativeVariation returns max |x - x0| / |x0| over the series, where
// x0 is the first element — the paper's "maximum variation of
// approximately 2%" metric for total energy.
func MaxRelativeVariation(series []float64) float64 {
	if len(series) == 0 {
		return 0
	}
	x0 := series[0]
	if x0 == 0 {
		return math.Inf(1)
	}
	var worst float64
	for _, v := range series {
		if d := math.Abs(v-x0) / math.Abs(x0); d > worst {
			worst = d
		}
	}
	return worst
}

// Drift returns series[end] - series[0]; used for the momentum-drift
// comparison of Fig. 5/6.
func Drift(series []float64) float64 {
	if len(series) == 0 {
		return 0
	}
	return series[len(series)-1] - series[0]
}

// WriteCSV emits the recorded samples as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "step,time,kinetic,field,total,momentum,mode_amp"); err != nil {
		return err
	}
	for _, s := range r.Samples {
		if _, err := fmt.Fprintf(w, "%d,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g\n",
			s.Step, s.Time, s.Kinetic, s.Field, s.Total, s.Momentum, s.ModeAmp); err != nil {
			return err
		}
	}
	return nil
}

// GrowthFit is the result of a log-linear least-squares fit of a mode
// amplitude over a time window: amp(t) ~ exp(gamma t + c).
type GrowthFit struct {
	Gamma     float64 // fitted growth rate
	Intercept float64 // fitted log-amplitude intercept
	R2        float64 // coefficient of determination of the log-linear fit
	N         int     // points used
	T0, T1    float64 // window actually used
}

// FitGrowthRate fits log(amp) = gamma*t + c over samples with
// t in [t0, t1] and amp > 0. It needs at least two usable points.
func FitGrowthRate(times, amps []float64, t0, t1 float64) (GrowthFit, error) {
	if len(times) != len(amps) {
		return GrowthFit{}, fmt.Errorf("diag: growth fit length mismatch %d vs %d", len(times), len(amps))
	}
	var xs, ys []float64
	for i, t := range times {
		if t < t0 || t > t1 || !(amps[i] > 0) {
			continue
		}
		xs = append(xs, t)
		ys = append(ys, math.Log(amps[i]))
	}
	if len(xs) < 2 {
		return GrowthFit{}, fmt.Errorf("diag: growth fit needs >= 2 points in [%v,%v], have %d", t0, t1, len(xs))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return GrowthFit{}, fmt.Errorf("diag: degenerate time window for growth fit")
	}
	gamma := (n*sxy - sx*sy) / den
	c := (sy - gamma*sx) / n
	// R^2.
	meanY := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		pred := gamma*xs[i] + c
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return GrowthFit{Gamma: gamma, Intercept: c, R2: r2, N: len(xs), T0: xs[0], T1: xs[len(xs)-1]}, nil
}

// AutoGrowthWindow picks a fitting window for a noisy exponential-growth
// series: it finds the time at which the amplitude first exceeds
// lowFrac * peak and the time it first exceeds highFrac * peak, which
// brackets the clean linear-growth phase between the noise floor and
// saturation. Returns an error when the series never grows.
func AutoGrowthWindow(times, amps []float64, lowFrac, highFrac float64) (t0, t1 float64, err error) {
	if len(times) != len(amps) || len(times) < 4 {
		return 0, 0, fmt.Errorf("diag: auto window needs >= 4 matched points")
	}
	if !(lowFrac > 0 && lowFrac < highFrac && highFrac <= 1) {
		return 0, 0, fmt.Errorf("diag: invalid window fractions %v, %v", lowFrac, highFrac)
	}
	peak := 0.0
	for _, a := range amps {
		if a > peak {
			peak = a
		}
	}
	if peak <= 0 {
		return 0, 0, fmt.Errorf("diag: series never grows above zero")
	}
	lo, hi := lowFrac*peak, highFrac*peak
	t0, t1 = math.NaN(), math.NaN()
	for i, a := range amps {
		if math.IsNaN(t0) && a >= lo {
			t0 = times[i]
		}
		if math.IsNaN(t1) && a >= hi {
			t1 = times[i]
			break
		}
	}
	if math.IsNaN(t0) || math.IsNaN(t1) || t1 <= t0 {
		return 0, 0, fmt.Errorf("diag: could not bracket a growth phase")
	}
	return t0, t1, nil
}

// VelocitySpread returns the standard deviation of v around each beam for
// a two-beam population split by sign of v: it is the cold-beam
// "heating" metric used in the Fig. 6 analysis. Particles with v >= 0
// form one beam, v < 0 the other; the returned value is the RMS of the
// two per-beam standard deviations.
func VelocitySpread(v []float64) float64 {
	var pos, neg []float64
	for _, x := range v {
		if x >= 0 {
			pos = append(pos, x)
		} else {
			neg = append(neg, x)
		}
	}
	sd := func(xs []float64) float64 {
		if len(xs) < 2 {
			return 0
		}
		var s float64
		for _, x := range xs {
			s += x
		}
		m := s / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - m) * (x - m)
		}
		return ss / float64(len(xs))
	}
	return math.Sqrt((sd(pos) + sd(neg)) / 2)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation; xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}
