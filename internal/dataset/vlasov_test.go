package dataset

import (
	"math"
	"testing"

	"dlpic/internal/interp"
	"dlpic/internal/phasespace"
	"dlpic/internal/vlasov"
)

func vlasovOpts() VlasovGenerateOpts {
	base := vlasov.Default()
	base.NX = 32
	base.NV = 64
	spec := phasespace.GridSpec{
		NX: 32, NV: 32, L: base.Length,
		VMin: base.VMin, VMax: base.VMax, Binning: interp.NGP,
	}
	return VlasovGenerateOpts{
		Base: base,
		V0s:  []float64{0.2}, Vths: []float64{0.03},
		Amps:  []float64{1e-3},
		Steps: 20, SampleEvery: 2,
		Np:   8000,
		Spec: spec,
	}
}

func TestVlasovOptsValidate(t *testing.T) {
	good := vlasovOpts()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid opts rejected: %v", err)
	}
	cases := []func(*VlasovGenerateOpts){
		func(o *VlasovGenerateOpts) { o.V0s = nil },
		func(o *VlasovGenerateOpts) { o.Vths = nil },
		func(o *VlasovGenerateOpts) { o.Amps = nil },
		func(o *VlasovGenerateOpts) { o.Steps = 0 },
		func(o *VlasovGenerateOpts) { o.SampleEvery = 0 },
		func(o *VlasovGenerateOpts) { o.Np = 0 },
		func(o *VlasovGenerateOpts) { o.Spec.NX = 16 },    // NX mismatch
		func(o *VlasovGenerateOpts) { o.Spec.NV = 24 },    // NV not divisor
		func(o *VlasovGenerateOpts) { o.Spec.L = 99 },     // box mismatch
		func(o *VlasovGenerateOpts) { o.Spec.VMax = 0.5 }, // window mismatch
		func(o *VlasovGenerateOpts) { o.Base.Dt = 0 },     // bad base
	}
	for i, mutate := range cases {
		o := vlasovOpts()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestGenerateVlasovShapes(t *testing.T) {
	o := vlasovOpts()
	calls := 0
	o.Progress = func(done, total int) {
		calls++
		if total != 1 {
			t.Errorf("total %d, want 1", total)
		}
	}
	ds, err := GenerateVlasov(o)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 10 {
		t.Fatalf("N = %d, want 10", ds.N())
	}
	if calls != 1 {
		t.Fatalf("progress calls %d", calls)
	}
	if ds.Inputs.Cols() != o.Spec.Size() || ds.Targets.Cols() != o.Base.NX {
		t.Fatalf("widths %d/%d", ds.Inputs.Cols(), ds.Targets.Cols())
	}
	// Inputs sum to the virtual particle count (noise-free histograms).
	for i := 0; i < ds.N(); i++ {
		var sum float64
		for _, v := range ds.Inputs.Row(i) {
			sum += v
		}
		if math.Abs(sum-float64(o.Np)) > 1e-6*float64(o.Np) {
			t.Fatalf("row %d sums to %v, want %d", i, sum, o.Np)
		}
	}
	// Targets carry the seeded-mode field (non-zero, finite).
	var maxAbs float64
	for _, v := range ds.Targets.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite target")
		}
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		t.Fatal("all-zero targets")
	}
}

func TestGenerateVlasovDeterministic(t *testing.T) {
	a, err := GenerateVlasov(vlasovOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateVlasov(vlasovOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Inputs.Data {
		if a.Inputs.Data[i] != b.Inputs.Data[i] {
			t.Fatal("Vlasov corpus not deterministic")
		}
	}
}

// A Vlasov corpus and a PIC corpus of the same configuration must be
// interchangeable: same shapes, compatible magnitudes (the count scale
// matches by construction), and a normalizer fitted on one applies to
// the other.
func TestVlasovPICCorpusInterchangeable(t *testing.T) {
	vo := vlasovOpts()
	vds, err := GenerateVlasov(vo)
	if err != nil {
		t.Fatal(err)
	}
	po := tinyOpts()
	po.Base.Cells = 32
	po.Base.ParticlesPerCell = vo.Np / 32
	po.Spec = vo.Spec
	po.V0s, po.Vths = vo.V0s, []float64{0.03}
	po.Steps, po.SampleEvery = 20, 2
	pds, err := Generate(po)
	if err != nil {
		t.Fatal(err)
	}
	if vds.Inputs.Cols() != pds.Inputs.Cols() || vds.Targets.Cols() != pds.Targets.Cols() {
		t.Fatalf("corpora not shape-compatible: %d/%d vs %d/%d",
			vds.Inputs.Cols(), vds.Targets.Cols(), pds.Inputs.Cols(), pds.Targets.Cols())
	}
	// Histogram scales agree within a factor ~2 (same total counts,
	// slightly different concentration).
	maxOf := func(xs []float64) float64 {
		var m float64
		for _, v := range xs {
			if v > m {
				m = v
			}
		}
		return m
	}
	vm, pm := maxOf(vds.Inputs.Data), maxOf(pds.Inputs.Data)
	if vm/pm > 3 || pm/vm > 3 {
		t.Fatalf("count scales diverge: vlasov max %v vs pic max %v", vm, pm)
	}
	if err := vds.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := pds.NormalizeWith(vds.Norm); err != nil {
		t.Fatal(err)
	}
	for _, v := range pds.Inputs.Data {
		if v < -0.1 || v > 2 {
			t.Fatalf("cross-normalized value %v far outside [0,1]", v)
		}
	}
}
