package dataset

import (
	"fmt"

	"dlpic/internal/phasespace"
	"dlpic/internal/tensor"
	"dlpic/internal/vlasov"
)

// VlasovGenerateOpts configures corpus generation from the Vlasov-Poisson
// solver instead of traditional PIC — the paper's §VII suggestion for
// noise-free training data. One deterministic run per (V0, Vth)
// combination (repeats would be pointless without particle noise);
// diversity comes from the parameter sweep and the per-run seed
// perturbation amplitudes.
type VlasovGenerateOpts struct {
	// Base is the Vlasov configuration template; its NX must equal the
	// histogram Spec.NX and its NV must be a multiple of Spec.NV (rows
	// are block-summed down to the histogram resolution).
	Base vlasov.Config
	// V0s and Vths are the sweep axes. Vth values below the Vlasov grid's
	// velocity resolution are rejected (a Vlasov beam must be resolved).
	V0s, Vths []float64
	// Amps are the seeded mode-1 perturbation amplitudes; each (V0, Vth)
	// combination is run once per amplitude.
	Amps []float64
	// Steps and SampleEvery control trajectory sampling as in
	// GenerateOpts.
	Steps, SampleEvery int
	// Np is the virtual macro-particle count used to scale the
	// distribution to PIC-histogram-equivalent bin counts, so corpora
	// from both generators are interchangeable.
	Np int
	// Spec is the target histogram discretization.
	Spec phasespace.GridSpec
	// Progress, if non-nil, is called after each completed run.
	Progress func(done, total int)
}

// Validate checks the sweep options.
func (o VlasovGenerateOpts) Validate() error {
	if err := o.Base.Validate(); err != nil {
		return err
	}
	if err := o.Spec.Validate(); err != nil {
		return err
	}
	if len(o.V0s) == 0 || len(o.Vths) == 0 || len(o.Amps) == 0 {
		return fmt.Errorf("dataset: empty Vlasov sweep axes")
	}
	if o.Steps < 1 || o.SampleEvery < 1 {
		return fmt.Errorf("dataset: invalid Steps=%d SampleEvery=%d", o.Steps, o.SampleEvery)
	}
	if o.Np < 1 {
		return fmt.Errorf("dataset: Np = %d, need >= 1", o.Np)
	}
	if o.Base.NX != o.Spec.NX {
		return fmt.Errorf("dataset: Vlasov NX %d != spec NX %d", o.Base.NX, o.Spec.NX)
	}
	if o.Base.NV%o.Spec.NV != 0 {
		return fmt.Errorf("dataset: Vlasov NV %d not a multiple of spec NV %d", o.Base.NV, o.Spec.NV)
	}
	if o.Base.Length != o.Spec.L {
		return fmt.Errorf("dataset: Vlasov box %v != spec box %v", o.Base.Length, o.Spec.L)
	}
	if o.Base.VMin != o.Spec.VMin || o.Base.VMax != o.Spec.VMax {
		return fmt.Errorf("dataset: velocity windows differ: [%v,%v] vs [%v,%v]",
			o.Base.VMin, o.Base.VMax, o.Spec.VMin, o.Spec.VMax)
	}
	return nil
}

// GenerateVlasov runs the Vlasov sweep and collects the corpus in the
// same layout as Generate (interchangeable for training).
func GenerateVlasov(o VlasovGenerateOpts) (*Dataset, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	samplesPerRun := o.Steps / o.SampleEvery
	totalRuns := len(o.V0s) * len(o.Vths) * len(o.Amps)
	n := totalRuns * samplesPerRun
	ds := &Dataset{
		Spec:    o.Spec,
		Cells:   o.Base.NX,
		Inputs:  tensor.New(n, o.Spec.Size()),
		Targets: tensor.New(n, o.Base.NX),
	}
	fullCounts := make([]float64, o.Base.NX*o.Base.NV)
	rowsPerBin := o.Base.NV / o.Spec.NV
	row := 0
	runIdx := 0
	for _, v0 := range o.V0s {
		for _, vth := range o.Vths {
			for _, amp := range o.Amps {
				solver, err := vlasov.New(o.Base, vlasov.TwoStreamInit{
					V0: v0, Vth: vth, Amp: amp, Mode: 1,
				})
				if err != nil {
					return nil, fmt.Errorf("dataset: vlasov run v0=%v vth=%v: %w", v0, vth, err)
				}
				for step := 0; step < o.Steps; step++ {
					if _, err := solver.Step(); err != nil {
						return nil, fmt.Errorf("dataset: vlasov step %d (v0=%v vth=%v): %w", step, v0, vth, err)
					}
					if (step+1)%o.SampleEvery != 0 || row >= n {
						continue
					}
					if err := solver.Counts(o.Np, fullCounts); err != nil {
						return nil, err
					}
					// Block-sum velocity rows down to the histogram grid.
					in := ds.Inputs.Row(row)
					for i := range in {
						in[i] = 0
					}
					for ivFull := 0; ivFull < o.Base.NV; ivFull++ {
						iv := ivFull / rowsPerBin
						src := fullCounts[ivFull*o.Base.NX : (ivFull+1)*o.Base.NX]
						dst := in[iv*o.Spec.NX : (iv+1)*o.Spec.NX]
						for ix, c := range src {
							dst[ix] += c
						}
					}
					copy(ds.Targets.Row(row), solver.E)
					row++
				}
				runIdx++
				if o.Progress != nil {
					o.Progress(runIdx, totalRuns)
				}
			}
		}
	}
	if row < n {
		ds.Inputs = shrinkRows(ds.Inputs, row)
		ds.Targets = shrinkRows(ds.Targets, row)
	}
	return ds, nil
}
