package dataset

import (
	"bytes"
	"math"
	"testing"

	"dlpic/internal/interp"
	"dlpic/internal/phasespace"
	"dlpic/internal/pic"
)

// tinyOpts is a fast sweep for tests: 2 combos x 1 repeat x 10 steps.
func tinyOpts() GenerateOpts {
	base := pic.Default()
	base.Cells = 16
	base.ParticlesPerCell = 20
	base.DiagMode = 1
	spec := phasespace.GridSpec{NX: 16, NV: 8, L: base.Length, VMin: -0.8, VMax: 0.8, Binning: interp.NGP}
	return GenerateOpts{
		Base: base,
		V0s:  []float64{0.2}, Vths: []float64{0.0, 0.01},
		Repeats: 1, Steps: 10, SampleEvery: 1,
		Spec: spec, Seed: 42,
	}
}

func TestGenerateOptsValidate(t *testing.T) {
	good := tinyOpts()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid opts rejected: %v", err)
	}
	cases := []func(*GenerateOpts){
		func(o *GenerateOpts) { o.V0s = nil },
		func(o *GenerateOpts) { o.Vths = nil },
		func(o *GenerateOpts) { o.Repeats = 0 },
		func(o *GenerateOpts) { o.Steps = 0 },
		func(o *GenerateOpts) { o.SampleEvery = 0 },
		func(o *GenerateOpts) { o.Spec.NX = 0 },
		func(o *GenerateOpts) { o.Spec.L = 999 },
	}
	for i, mutate := range cases {
		o := tinyOpts()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestGenerateShapesAndContent(t *testing.T) {
	o := tinyOpts()
	var progressCalls int
	o.Progress = func(done, total int) {
		progressCalls++
		if total != 2 {
			t.Errorf("total runs %d, want 2", total)
		}
	}
	ds, err := Generate(o)
	if err != nil {
		t.Fatal(err)
	}
	wantN := 2 * 10 // combos x steps
	if ds.N() != wantN {
		t.Fatalf("N = %d, want %d", ds.N(), wantN)
	}
	if progressCalls != 2 {
		t.Fatalf("progress calls %d, want 2", progressCalls)
	}
	if ds.Inputs.Cols() != o.Spec.Size() || ds.Targets.Cols() != o.Base.Cells {
		t.Fatalf("column widths %d/%d", ds.Inputs.Cols(), ds.Targets.Cols())
	}
	// Inputs are histograms: every row sums to the particle count.
	np := float64(o.Base.NumParticles())
	for i := 0; i < ds.N(); i++ {
		var sum float64
		for _, v := range ds.Inputs.Row(i) {
			sum += v
		}
		if math.Abs(sum-np) > 1e-9 {
			t.Fatalf("row %d histogram sums to %v, want %v", i, sum, np)
		}
	}
	// Targets are fields: finite, not identically zero across the corpus.
	var maxAbs float64
	for _, v := range ds.Targets.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite target")
		}
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		t.Fatal("all-zero targets")
	}
}

func TestGenerateSubsampling(t *testing.T) {
	o := tinyOpts()
	o.SampleEvery = 3 // 10 steps -> 3 samples per run
	ds, err := Generate(o)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2*3 {
		t.Fatalf("N = %d, want 6", ds.N())
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Inputs.Data {
		if a.Inputs.Data[i] != b.Inputs.Data[i] {
			t.Fatal("non-deterministic inputs")
		}
	}
	for i := range a.Targets.Data {
		if a.Targets.Data[i] != b.Targets.Data[i] {
			t.Fatal("non-deterministic targets")
		}
	}
}

func TestNormalize(t *testing.T) {
	ds, err := Generate(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Normalize(); err != nil {
		t.Fatal(err)
	}
	if !ds.Normalized {
		t.Fatal("Normalized flag not set")
	}
	for _, v := range ds.Inputs.Data {
		if v < -1e-12 || v > 1+1e-12 {
			t.Fatalf("normalized value %v outside [0,1]", v)
		}
	}
	if err := ds.Normalize(); err == nil {
		t.Fatal("double normalize should fail")
	}
}

func TestNormalizeWith(t *testing.T) {
	ds, err := Generate(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	norm := phasespace.Normalizer{Min: 0, Max: 100}
	if err := ds.NormalizeWith(norm); err != nil {
		t.Fatal(err)
	}
	if ds.Norm != norm {
		t.Fatal("normalizer not recorded")
	}
}

func TestShuffleAndSplit(t *testing.T) {
	ds, err := Generate(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Tag each row uniquely (bin 0 is usually empty, so use it as a
	// marker slot), then verify the permutation moved rows and kept
	// input/target rows paired.
	for i := 0; i < ds.N(); i++ {
		ds.Inputs.Row(i)[0] = float64(i + 1)
		ds.Targets.Row(i)[0] = float64(i + 1)
	}
	ds.Shuffle(7)
	same := 0
	seen := make(map[float64]bool)
	for i := 0; i < ds.N(); i++ {
		tag := ds.Inputs.Row(i)[0]
		if tag == float64(i+1) {
			same++
		}
		if seen[tag] {
			t.Fatalf("row %d duplicated by shuffle", i)
		}
		seen[tag] = true
		if ds.Targets.Row(i)[0] != tag {
			t.Fatalf("row %d: input/target pairing broken by shuffle", i)
		}
	}
	if same == ds.N() {
		t.Fatal("shuffle did nothing")
	}
	train, val, test, err := ds.Split(10, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if train.N() != 10 || val.N() != 5 || test.N() != 5 {
		t.Fatalf("split sizes %d/%d/%d", train.N(), val.N(), test.N())
	}
	// Views share the parent's storage.
	train.Inputs.Data[0] = -123
	if ds.Inputs.Data[0] != -123 {
		t.Fatal("split views should share storage")
	}
	if _, _, _, err := ds.Split(100, 0, 0); err == nil {
		t.Fatal("oversized split should fail")
	}
	if _, _, _, err := ds.Split(0, 1, 1); err == nil {
		t.Fatal("zero train split should fail")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds, err := Generate(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Normalize(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != ds.N() || loaded.Cells != ds.Cells || !loaded.Normalized {
		t.Fatalf("metadata lost: n=%d cells=%d norm=%v", loaded.N(), loaded.Cells, loaded.Normalized)
	}
	if loaded.Norm != ds.Norm {
		t.Fatal("normalizer lost")
	}
	// float32 roundtrip: values match to single precision.
	for i := range ds.Inputs.Data {
		if math.Abs(loaded.Inputs.Data[i]-ds.Inputs.Data[i]) > 1e-6 {
			t.Fatalf("input %d drifted: %v vs %v", i, loaded.Inputs.Data[i], ds.Inputs.Data[i])
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	ds, err := Generate(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/corpus.gob"
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != ds.N() {
		t.Fatalf("N = %d, want %d", loaded.N(), ds.N())
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage should fail")
	}
}

// The concurrent sweep must produce a corpus byte-identical to the
// serial one: seeds are pre-derived in run order and every run writes a
// disjoint row block.
func TestGenerateIdenticalAcrossWorkerCounts(t *testing.T) {
	o := tinyOpts()
	o.V0s = []float64{0.15, 0.2}
	o.Vths = []float64{0.0, 0.01}
	o.Repeats = 2
	o.Workers = 1
	ref, err := Generate(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 3, 8} {
		o.Workers = workers
		ds, err := Generate(o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ds.N() != ref.N() {
			t.Fatalf("workers=%d: %d samples, want %d", workers, ds.N(), ref.N())
		}
		for i, v := range ds.Inputs.Data {
			if v != ref.Inputs.Data[i] {
				t.Fatalf("workers=%d: input %d = %v != serial %v", workers, i, v, ref.Inputs.Data[i])
			}
		}
		for i, v := range ds.Targets.Data {
			if v != ref.Targets.Data[i] {
				t.Fatalf("workers=%d: target %d = %v != serial %v", workers, i, v, ref.Targets.Data[i])
			}
		}
	}
}

// Per-run failures inside the pool must surface as an error, not a
// partial corpus.
func TestGeneratePropagatesRunErrors(t *testing.T) {
	o := tinyOpts()
	o.Base.Solver = "spectral"
	o.Base.Dt = 0.2
	o.V0s = []float64{0.2}
	// An invalid per-run config slips past Validate (which only checks
	// sweep shape): force a failure by making the box/spec agree but the
	// PIC config invalid at run time.
	o.Base.QOverM = 0
	if _, err := Generate(o); err == nil {
		t.Fatal("expected per-run config error to propagate")
	}
}
