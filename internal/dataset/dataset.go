// Package dataset reproduces the training-corpus pipeline of the paper's
// §IV-1 (Fig. 3): traditional PIC simulations are run over a sweep of
// beam velocities v0 and thermal speeds vth (with several repeats per
// combination as data augmentation), and at every time step the electron
// phase-space histogram and the grid electric field are captured as one
// (input, target) sample.
//
// The paper's full corpus is 20 combinations x 10 experiments x 200
// steps = 40,000 samples; Generate produces any scaled version of that
// sweep deterministically from a root seed.
package dataset

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"dlpic/internal/parallel"
	"dlpic/internal/phasespace"
	"dlpic/internal/pic"
	"dlpic/internal/rng"
	"dlpic/internal/tensor"
)

// Dataset holds the (phase-space histogram, electric field) pairs.
// Inputs are raw bin counts until Normalize is called.
type Dataset struct {
	// Spec is the phase-space discretization of the inputs.
	Spec phasespace.GridSpec
	// Cells is the field grid size of the targets.
	Cells int
	// Inputs is [n, Spec.Size()]; Targets is [n, Cells].
	Inputs, Targets *tensor.Tensor
	// Norm is the min-max input normalizer (zero value until Normalize
	// or when loaded from a normalized file).
	Norm phasespace.Normalizer
	// Normalized records whether Inputs currently hold normalized values.
	Normalized bool
}

// N returns the sample count.
func (d *Dataset) N() int {
	if d.Inputs == nil {
		return 0
	}
	return d.Inputs.Rows()
}

// GenerateOpts configures the sweep.
type GenerateOpts struct {
	// Base is the PIC configuration template; V0/Vth/Seed are overridden
	// per run.
	Base pic.Config
	// V0s and Vths are the sweep axes (paper: 5 x 4 = 20 combinations).
	V0s, Vths []float64
	// Repeats is the number of experiments per combination (paper: 10).
	Repeats int
	// Steps is the number of PIC steps per experiment (paper: 200).
	Steps int
	// SampleEvery subsamples the trajectory (1 = every step, the paper's
	// setting).
	SampleEvery int
	// Spec is the phase-space binning of the inputs.
	Spec phasespace.GridSpec
	// Seed derives every run's seed.
	Seed uint64
	// Workers bounds the sweep pool (<= 0 selects GOMAXPROCS). Runs are
	// independent simulations writing disjoint sample rows, and every
	// run's seed is pre-derived in run order, so the corpus is identical
	// for any worker count.
	Workers int
	// Progress, if non-nil, is called after each completed run. Calls
	// are serialized.
	Progress func(done, total int)
}

// Validate checks the sweep options.
func (o GenerateOpts) Validate() error {
	if len(o.V0s) == 0 || len(o.Vths) == 0 {
		return fmt.Errorf("dataset: empty sweep axes (v0s=%d, vths=%d)", len(o.V0s), len(o.Vths))
	}
	if o.Repeats < 1 {
		return fmt.Errorf("dataset: Repeats = %d, need >= 1", o.Repeats)
	}
	if o.Steps < 1 {
		return fmt.Errorf("dataset: Steps = %d, need >= 1", o.Steps)
	}
	if o.SampleEvery < 1 {
		return fmt.Errorf("dataset: SampleEvery = %d, need >= 1", o.SampleEvery)
	}
	if err := o.Spec.Validate(); err != nil {
		return err
	}
	if o.Spec.L != o.Base.Length {
		return fmt.Errorf("dataset: phase-space box %v != PIC box %v", o.Spec.L, o.Base.Length)
	}
	return nil
}

// Generate runs the sweep and collects the corpus. The runs execute
// concurrently on a bounded pool (see GenerateOpts.Workers): each run
// owns a full simulation plus histogram and writes a disjoint block of
// sample rows, with its seed pre-derived from the root seed in run
// order, so the corpus is byte-identical for every worker count.
// Within each run the phase-space binning itself shards over particle
// chunks (phasespace.Hist.Bin reduces through parallel.ScatterReduce
// in chunk order), so a serial pool still engages every core — and
// because the chunk decomposition depends only on the particle count,
// corpora stay byte-identical at any Workers and GOMAXPROCS.
func Generate(o GenerateOpts) (*Dataset, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	samplesPerRun := o.Steps / o.SampleEvery
	totalRuns := len(o.V0s) * len(o.Vths) * o.Repeats
	n := totalRuns * samplesPerRun
	ds := &Dataset{
		Spec:    o.Spec,
		Cells:   o.Base.Cells,
		Inputs:  tensor.New(n, o.Spec.Size()),
		Targets: tensor.New(n, o.Base.Cells),
	}
	// Build the run list upfront, consuming the seed stream in the same
	// v0-outer, vth, repeat order the serial sweep used.
	type runSpec struct {
		cfg      pic.Config
		v0, vth  float64
		rep, row int
	}
	runs := make([]runSpec, 0, totalRuns)
	seeder := rng.New(o.Seed)
	row := 0
	for _, v0 := range o.V0s {
		for _, vth := range o.Vths {
			for rep := 0; rep < o.Repeats; rep++ {
				cfg := o.Base
				cfg.V0 = v0
				cfg.Vth = vth
				cfg.Seed = seeder.Uint64()
				runs = append(runs, runSpec{cfg: cfg, v0: v0, vth: vth, rep: rep, row: row})
				row += samplesPerRun
			}
		}
	}
	var (
		mu        sync.Mutex
		done      int
		runErr    error
		runErrIdx int
		failed    atomic.Bool
	)
	parallel.ForPool(len(runs), o.Workers, func(i int) {
		r := runs[i]
		// After a failure the corpus is doomed; skip runs that have not
		// started instead of simulating them. Among the failures that do
		// run, the lowest run index wins, so the reported error does not
		// depend on completion order.
		if failed.Load() {
			mu.Lock()
			done++
			if o.Progress != nil {
				o.Progress(done, totalRuns)
			}
			mu.Unlock()
			return
		}
		err := func() error {
			hist, err := phasespace.NewHist(o.Spec)
			if err != nil {
				return err
			}
			sim, err := pic.New(r.cfg, nil)
			if err != nil {
				return fmt.Errorf("dataset: run v0=%v vth=%v rep=%d: %w", r.v0, r.vth, r.rep, err)
			}
			rowAt := r.row
			for step := 0; step < o.Steps; step++ {
				if _, err := sim.Step(); err != nil {
					return fmt.Errorf("dataset: run v0=%v vth=%v rep=%d step=%d: %w", r.v0, r.vth, r.rep, step, err)
				}
				if (step+1)%o.SampleEvery != 0 {
					continue
				}
				if rowAt >= r.row+samplesPerRun {
					break
				}
				// After Step, sim.E is consistent with the current
				// particle positions — exactly the state the DL-PIC
				// loop will present to the solver at inference time.
				if err := hist.Bin(sim.P.X, sim.P.V); err != nil {
					return err
				}
				copy(ds.Inputs.Row(rowAt), hist.Data)
				copy(ds.Targets.Row(rowAt), sim.E)
				rowAt++
			}
			return nil
		}()
		mu.Lock()
		if err != nil {
			failed.Store(true)
			if runErr == nil || i < runErrIdx {
				runErr, runErrIdx = err, i
			}
		}
		done++
		if o.Progress != nil {
			o.Progress(done, totalRuns)
		}
		mu.Unlock()
	})
	if runErr != nil {
		return nil, runErr
	}
	return ds, nil
}

func shrinkRows(t *tensor.Tensor, rows int) *tensor.Tensor {
	return tensor.FromSlice(t.Data[:rows*t.Cols()], rows, t.Cols())
}

// Normalize fits the min-max normalizer on the inputs (paper Eq. 5) and
// applies it in place. Calling it twice is an error.
func (d *Dataset) Normalize() error {
	if d.Normalized {
		return fmt.Errorf("dataset: already normalized")
	}
	norm, err := phasespace.FitNormalizer(d.Inputs.Data)
	if err != nil {
		return err
	}
	norm.Apply(d.Inputs.Data, d.Inputs.Data)
	d.Norm = norm
	d.Normalized = true
	return nil
}

// NormalizeWith applies an externally fitted normalizer (used for test
// sets, which must reuse the training normalization).
func (d *Dataset) NormalizeWith(norm phasespace.Normalizer) error {
	if d.Normalized {
		return fmt.Errorf("dataset: already normalized")
	}
	norm.Apply(d.Inputs.Data, d.Inputs.Data)
	d.Norm = norm
	d.Normalized = true
	return nil
}

// Shuffle permutes samples in place, deterministically from seed.
func (d *Dataset) Shuffle(seed uint64) {
	r := rng.New(seed)
	n := d.N()
	inCols, tgCols := d.Inputs.Cols(), d.Targets.Cols()
	tmpIn := make([]float64, inCols)
	tmpTg := make([]float64, tgCols)
	r.Shuffle(n, func(i, j int) {
		copy(tmpIn, d.Inputs.Row(i))
		copy(d.Inputs.Row(i), d.Inputs.Row(j))
		copy(d.Inputs.Row(j), tmpIn)
		copy(tmpTg, d.Targets.Row(i))
		copy(d.Targets.Row(i), d.Targets.Row(j))
		copy(d.Targets.Row(j), tmpTg)
	})
}

// Split carves the dataset into train/val/test partitions of the given
// sizes (which must sum to at most N). Views share storage with d.
func (d *Dataset) Split(nTrain, nVal, nTest int) (train, val, test *Dataset, err error) {
	if nTrain <= 0 || nVal < 0 || nTest < 0 {
		return nil, nil, nil, fmt.Errorf("dataset: invalid split %d/%d/%d", nTrain, nVal, nTest)
	}
	if nTrain+nVal+nTest > d.N() {
		return nil, nil, nil, fmt.Errorf("dataset: split %d+%d+%d exceeds %d samples", nTrain, nVal, nTest, d.N())
	}
	view := func(start, rows int) *Dataset {
		if rows == 0 {
			return &Dataset{Spec: d.Spec, Cells: d.Cells, Norm: d.Norm, Normalized: d.Normalized,
				Inputs: tensor.New(1, d.Inputs.Cols()), Targets: tensor.New(1, d.Targets.Cols())}
		}
		return &Dataset{
			Spec: d.Spec, Cells: d.Cells, Norm: d.Norm, Normalized: d.Normalized,
			Inputs:  tensor.FromSlice(d.Inputs.Data[start*d.Inputs.Cols():(start+rows)*d.Inputs.Cols()], rows, d.Inputs.Cols()),
			Targets: tensor.FromSlice(d.Targets.Data[start*d.Targets.Cols():(start+rows)*d.Targets.Cols()], rows, d.Targets.Cols()),
		}
	}
	train = view(0, nTrain)
	val = view(nTrain, nVal)
	test = view(nTrain+nVal, nTest)
	return train, val, test, nil
}

// ---------------------------------------------------------------------------
// Persistence (float32 payload to halve file size)

type fileFormat struct {
	Version    int
	Spec       phasespace.GridSpec
	Cells      int
	N          int
	Norm       phasespace.Normalizer
	Normalized bool
	Inputs     []float32
	Targets    []float32
}

const fileVersion = 1

// init pins fileFormat's process-global gob type id by encoding a zero
// value to io.Discard at package init (see internal/nn/checkpoint.go):
// without it, the bytes of a saved corpus would depend on what else
// the process gob-(de)serialized first, and the byte-identical-corpora
// property `datagen -workers` is tested for would only hold within a
// single process history.
func init() {
	_ = gob.NewEncoder(io.Discard).Encode(fileFormat{})
}

// Save writes the dataset to w (gob, float32 payload).
func (d *Dataset) Save(w io.Writer) error {
	f := fileFormat{
		Version: fileVersion, Spec: d.Spec, Cells: d.Cells, N: d.N(),
		Norm: d.Norm, Normalized: d.Normalized,
		Inputs:  toF32(d.Inputs.Data),
		Targets: toF32(d.Targets.Data),
	}
	return gob.NewEncoder(w).Encode(f)
}

// Load reads a dataset saved with Save.
func Load(r io.Reader) (*Dataset, error) {
	var f fileFormat
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	if f.Version != fileVersion {
		return nil, fmt.Errorf("dataset: unsupported version %d", f.Version)
	}
	if f.N < 0 || len(f.Inputs) != f.N*f.Spec.Size() || len(f.Targets) != f.N*f.Cells {
		return nil, fmt.Errorf("dataset: corrupt payload (n=%d inputs=%d targets=%d)", f.N, len(f.Inputs), len(f.Targets))
	}
	d := &Dataset{
		Spec: f.Spec, Cells: f.Cells, Norm: f.Norm, Normalized: f.Normalized,
	}
	if f.N == 0 {
		return nil, fmt.Errorf("dataset: empty dataset file")
	}
	d.Inputs = tensor.FromSlice(toF64(f.Inputs), f.N, f.Spec.Size())
	d.Targets = tensor.FromSlice(toF64(f.Targets), f.N, f.Cells)
	return d, nil
}

// SaveFile saves to path.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile loads from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func toF32(xs []float64) []float32 {
	out := make([]float32, len(xs))
	for i, v := range xs {
		out[i] = float32(v)
	}
	return out
}

func toF64(xs []float32) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}
