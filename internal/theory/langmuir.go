package theory

import "math"

// Langmuir-wave theory for a single (non-drifting) electron population —
// used to validate the PIC substrate independently of the two-stream
// problem. These are textbook results (Birdsall & Langdon ch. 5).

// BohmGross returns the Bohm-Gross frequency of a Langmuir wave at
// wavenumber k in a plasma with frequency wp and thermal speed vth:
//
//	omega^2 = wp^2 + 3 k^2 vth^2.
func BohmGross(k, wp, vth float64) float64 {
	return math.Sqrt(wp*wp + 3*k*k*vth*vth)
}

// LandauDampingRate returns the Landau damping rate (positive value) of
// a Langmuir wave in a Maxwellian plasma, in the standard weak-damping
// approximation
//
//	gamma = sqrt(pi/8) * wp / (k lD)^3 * exp(-1/(2 (k lD)^2) - 3/2),
//
// with the Debye length lD = vth / wp. Accurate for k lD <~ 0.5; returns
// 0 for non-positive inputs.
func LandauDampingRate(k, wp, vth float64) float64 {
	if k <= 0 || wp <= 0 || vth <= 0 {
		return 0
	}
	kld := k * vth / wp
	k3 := kld * kld * kld
	return math.Sqrt(math.Pi/8) * wp / k3 * math.Exp(-1/(2*kld*kld)-1.5)
}
