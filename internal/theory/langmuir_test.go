package theory

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBohmGrossColdLimit(t *testing.T) {
	if w := BohmGross(3.06, 1, 0); w != 1 {
		t.Fatalf("cold Langmuir frequency %v, want wp", w)
	}
}

func TestBohmGrossThermalShift(t *testing.T) {
	k, wp, vth := 3.06, 1.0, 0.05
	want := math.Sqrt(1 + 3*k*k*vth*vth)
	if w := BohmGross(k, wp, vth); math.Abs(w-want) > 1e-14 {
		t.Fatalf("BohmGross %v, want %v", w, want)
	}
}

// Property: omega >= wp and increases monotonically with k.
func TestBohmGrossMonotoneProperty(t *testing.T) {
	f := func(kRaw, vthRaw uint8) bool {
		k := float64(kRaw)/16 + 0.1
		vth := float64(vthRaw) / 512
		w1 := BohmGross(k, 1, vth)
		w2 := BohmGross(k+0.5, 1, vth)
		return w1 >= 1 && w2 >= w1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLandauDampingKnownValue(t *testing.T) {
	// k lD = 0.5: the approximation gives gamma/wp ~ 0.151; the exact
	// kinetic value is ~0.153.
	got := LandauDampingRate(0.5, 1, 1)
	if math.Abs(got-0.1514) > 0.002 {
		t.Fatalf("gamma(k lD = 0.5) = %v, want ~0.1514", got)
	}
}

func TestLandauDampingLimits(t *testing.T) {
	// Strongly suppressed for long wavelengths.
	if g := LandauDampingRate(0.1, 1, 1); g > 1e-15 {
		t.Fatalf("k lD = 0.1 damping %v, want ~0", g)
	}
	// Invalid inputs.
	if LandauDampingRate(0, 1, 1) != 0 || LandauDampingRate(1, 0, 1) != 0 || LandauDampingRate(1, 1, 0) != 0 {
		t.Fatal("non-positive inputs should return 0")
	}
}

// Property: damping increases with k lD below the approximation's
// maximum at k lD = 1/sqrt(3) ~ 0.577.
func TestLandauDampingMonotoneProperty(t *testing.T) {
	f := func(raw uint8) bool {
		kld := 0.1 + float64(raw)/1024 // in (0.1, 0.35)
		g1 := LandauDampingRate(kld, 1, 1)
		g2 := LandauDampingRate(kld+0.01, 1, 1)
		return g2 >= g1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
