// Package theory implements the linear theory of the two-stream
// instability used to validate the simulations (the "Linear Theory" slope
// of the paper's Fig. 4).
//
// For two symmetric cold electron beams drifting at +-v0 over a fixed
// neutralizing background, the electrostatic dispersion relation is
//
//	1 = (wp^2/2) [ 1/(w - k v0)^2 + 1/(w + k v0)^2 ],
//
// where wp is the total plasma frequency. Substituting u = (w/wp)^2 and
// K = k v0 / wp yields the quadratic
//
//	u^2 - (2K^2 + 1) u + K^4 - K^2 = 0,
//
// whose lower root is negative for K < 1, giving a purely growing mode
// with rate gamma = wp sqrt(-u). The growth rate is maximal at
// K = sqrt(3/8) with gamma_max = wp / sqrt(8) ~= 0.3536 wp — precisely
// the configuration of the paper (k = 3.06, v0 = 0.2, wp = 1 gives
// K = 0.612 ~= sqrt(3/8)).
package theory

import (
	"fmt"
	"math"
)

// TwoStream describes two symmetric cold/warm counter-streaming beams.
type TwoStream struct {
	// Wp is the total plasma frequency of the two beams combined.
	Wp float64
	// V0 is the beam drift speed (each beam at +-V0).
	V0 float64
	// Vth is the per-beam thermal spread; it enters only through the
	// warm fluid correction (3 k^2 vth^2 pressure term).
	Vth float64
}

// GrowthRate returns the linear growth rate gamma(k) of the cold
// two-stream mode at wavenumber k. It returns 0 for stable wavenumbers.
func (ts TwoStream) GrowthRate(k float64) float64 {
	if ts.Wp <= 0 || k == 0 {
		return 0
	}
	K := k * ts.V0 / ts.Wp
	u := uMinus(K)
	if u >= 0 {
		return 0
	}
	return ts.Wp * math.Sqrt(-u)
}

// uMinus returns the lower root of u^2 - (2K^2+1)u + K^4 - K^2 = 0.
func uMinus(K float64) float64 {
	b := 2*K*K + 1
	disc := 8*K*K + 1
	return (b - math.Sqrt(disc)) / 2
}

// OmegaSquared returns both roots u of the dispersion quadratic times
// wp^2, i.e. the two branches of omega^2 at wavenumber k. The lower
// branch is negative (unstable) for |K| < 1.
func (ts TwoStream) OmegaSquared(k float64) (low, high float64) {
	K := k * ts.V0 / ts.Wp
	b := 2*K*K + 1
	disc := math.Sqrt(8*K*K + 1)
	wp2 := ts.Wp * ts.Wp
	return (b - disc) / 2 * wp2, (b + disc) / 2 * wp2
}

// Unstable reports whether wavenumber k is linearly unstable.
func (ts TwoStream) Unstable(k float64) bool {
	if ts.Wp <= 0 || k == 0 {
		return false
	}
	K := math.Abs(k * ts.V0 / ts.Wp)
	return K < 1 && K > 0
}

// MaxGrowth returns the wavenumber and growth rate of the fastest-growing
// mode: k* = sqrt(3/8) wp / v0, gamma* = wp / sqrt(8).
func (ts TwoStream) MaxGrowth() (k, gamma float64) {
	if ts.V0 == 0 || ts.Wp <= 0 {
		return 0, 0
	}
	k = math.Sqrt(3.0/8.0) * ts.Wp / math.Abs(ts.V0)
	gamma = ts.Wp / math.Sqrt(8)
	return k, gamma
}

// MostUnstableMode returns the integer mode number m (k_m = 2 pi m / L)
// with the largest growth rate on a periodic box of length L, along with
// that growth rate. Returns (0, 0) when every resolvable mode is stable.
func (ts TwoStream) MostUnstableMode(length float64, maxMode int) (mode int, gamma float64) {
	if maxMode < 1 {
		return 0, 0
	}
	for m := 1; m <= maxMode; m++ {
		k := 2 * math.Pi * float64(m) / length
		g := ts.GrowthRate(k)
		if g > gamma {
			gamma = g
			mode = m
		}
	}
	return mode, gamma
}

// GrowthRateWarm returns the growth rate including the lowest-order warm
// fluid correction: each beam acquires an effective pressure term so the
// beam response shifts from 1/(w -+ k v0)^2 to 1/((w -+ k v0)^2 - 3 k^2
// vth^2). The root is found numerically on the imaginary axis (the
// symmetric mode is purely growing), bisecting the dispersion function
//
//	D(i g) = 1 - (wp^2/2) [ 1/((ig - kv0)^2 - 3k^2vth^2) + (v0 -> -v0) ].
//
// For Vth == 0 it agrees with GrowthRate to solver tolerance.
func (ts TwoStream) GrowthRateWarm(k float64) float64 {
	if !ts.Unstable(k) {
		return 0
	}
	if ts.Vth == 0 {
		return ts.GrowthRate(k)
	}
	// On the imaginary axis w = i g the two beam terms are complex
	// conjugates, so D is real:
	// (ig - kv0)^2 = -g^2 - 2 i g k v0 + k^2 v0^2.
	// Adding the conjugate pair:
	//   1/(A - iB) + 1/(A + iB) = 2A / (A^2 + B^2),
	// with A = k^2 v0^2 - g^2 - 3 k^2 vth^2, B = 2 g k v0.
	d := func(g float64) float64 {
		a := k*k*ts.V0*ts.V0 - g*g - 3*k*k*ts.Vth*ts.Vth
		b := 2 * g * k * ts.V0
		return 1 - ts.Wp*ts.Wp*a/(a*a+b*b)
	}
	// Bracket the root: D(0+) < 0 in the unstable band, D(large) -> 1 > 0.
	lo, hi := 1e-12, 2*ts.Wp
	if d(lo) > 0 {
		return 0 // thermal effects stabilized the mode
	}
	for d(hi) < 0 {
		hi *= 2
		if hi > 1e6*ts.Wp {
			return 0
		}
	}
	for i := 0; i < 200; i++ {
		midG := 0.5 * (lo + hi)
		if d(midG) < 0 {
			lo = midG
		} else {
			hi = midG
		}
	}
	return 0.5 * (lo + hi)
}

// ColdBeamApprox reports whether the cold-beam approximation v0 >> vth
// holds (the regime in which GrowthRate is accurate; the paper validates
// against this limit).
func (ts TwoStream) ColdBeamApprox() bool {
	return ts.Vth == 0 || math.Abs(ts.V0) >= 5*ts.Vth
}

// Validate checks the parameters.
func (ts TwoStream) Validate() error {
	if ts.Wp <= 0 {
		return fmt.Errorf("theory: plasma frequency must be positive, got %v", ts.Wp)
	}
	if ts.Vth < 0 {
		return fmt.Errorf("theory: thermal speed must be non-negative, got %v", ts.Vth)
	}
	return nil
}
