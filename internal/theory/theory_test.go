package theory

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func cmplxAbs(c complex128) float64 { return cmplx.Abs(c) }

func TestMaxGrowthClosedForm(t *testing.T) {
	ts := TwoStream{Wp: 1, V0: 0.2}
	k, gamma := ts.MaxGrowth()
	if math.Abs(k-math.Sqrt(3.0/8.0)/0.2) > 1e-12 {
		t.Errorf("k* = %v, want %v", k, math.Sqrt(3.0/8.0)/0.2)
	}
	if math.Abs(gamma-1/math.Sqrt(8)) > 1e-12 {
		t.Errorf("gamma* = %v, want %v", gamma, 1/math.Sqrt(8))
	}
}

func TestGrowthRateAtMaxMatchesClosedForm(t *testing.T) {
	ts := TwoStream{Wp: 1, V0: 0.2}
	kStar, gStar := ts.MaxGrowth()
	if g := ts.GrowthRate(kStar); math.Abs(g-gStar) > 1e-12 {
		t.Fatalf("GrowthRate(k*) = %v, want %v", g, gStar)
	}
}

// The paper's configuration: L = 2*pi/3.06 so k1 = 3.06, v0 = 0.2, wp = 1
// gives K = 0.612 ~ sqrt(3/8); mode 1 is the most unstable with
// gamma ~ 0.3536.
func TestPaperConfiguration(t *testing.T) {
	ts := TwoStream{Wp: 1, V0: 0.2}
	L := 2 * math.Pi / 3.06
	mode, gamma := ts.MostUnstableMode(L, 32)
	if mode != 1 {
		t.Fatalf("most unstable mode %d, want 1", mode)
	}
	if math.Abs(gamma-1/math.Sqrt(8)) > 2e-4 {
		t.Fatalf("gamma = %v, want ~%v", gamma, 1/math.Sqrt(8))
	}
}

// The cold-beam run of Fig. 6: v0 = 0.4 makes K = k1*v0 = 1.224 > 1 for
// every resolvable mode, so the system is linearly stable.
func TestColdBeamFig6Stable(t *testing.T) {
	ts := TwoStream{Wp: 1, V0: 0.4}
	L := 2 * math.Pi / 3.06
	mode, gamma := ts.MostUnstableMode(L, 32)
	if mode != 0 || gamma != 0 {
		t.Fatalf("expected stability, got mode %d gamma %v", mode, gamma)
	}
	if ts.Unstable(3.06) {
		t.Fatal("k=3.06 should be stable at v0=0.4")
	}
}

func TestStabilityBoundary(t *testing.T) {
	ts := TwoStream{Wp: 1, V0: 1}
	// K = k v0 / wp = k here; unstable iff 0 < K < 1.
	if !ts.Unstable(0.5) {
		t.Error("K=0.5 should be unstable")
	}
	if ts.Unstable(1.0) {
		t.Error("K=1 should be marginally stable")
	}
	if ts.Unstable(1.5) {
		t.Error("K=1.5 should be stable")
	}
	if ts.Unstable(0) {
		t.Error("k=0 should be stable")
	}
	if g := ts.GrowthRate(1.5); g != 0 {
		t.Errorf("stable mode growth %v, want 0", g)
	}
}

// Property: the growth rate satisfies the dispersion relation. For any
// unstable K, substituting omega = i*gamma must solve
// 1 = (wp^2/2)[1/(ig-kv0)^2 + 1/(ig+kv0)^2].
func TestGrowthRateSatisfiesDispersionProperty(t *testing.T) {
	ts := TwoStream{Wp: 1.3, V0: 0.25}
	f := func(kFrac uint16) bool {
		// K in (0, 1): k = K*wp/v0.
		K := (float64(kFrac%999) + 1) / 1000
		k := K * ts.Wp / ts.V0
		g := ts.GrowthRate(k)
		if g <= 0 {
			return false
		}
		// D(ig) with complex arithmetic. The two beam terms individually
		// scale like 1/K^2, so the verification tolerance must scale with
		// their magnitude (catastrophic cancellation at small K).
		ig := complex(0, g)
		kv := complex(k*ts.V0, 0)
		wp2 := complex(ts.Wp*ts.Wp, 0)
		t1 := wp2 / 2 / ((ig - kv) * (ig - kv))
		t2 := wp2 / 2 / ((ig + kv) * (ig + kv))
		d := 1 - t1 - t2
		mag := 1 + cmplxAbs(t1) + cmplxAbs(t2)
		return math.Abs(real(d)) < 1e-11*mag && math.Abs(imag(d)) < 1e-11*mag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOmegaSquaredRoots(t *testing.T) {
	ts := TwoStream{Wp: 1, V0: 0.2}
	k := 3.06
	low, high := ts.OmegaSquared(k)
	if low >= 0 {
		t.Errorf("low branch %v should be negative (unstable)", low)
	}
	if high <= 0 {
		t.Errorf("high branch %v should be positive", high)
	}
	// Verify the quadratic: u^2 - (2K^2+1)u + K^4 - K^2 = 0 in wp units.
	K := k * ts.V0 / ts.Wp
	for _, u := range []float64{low, high} {
		res := u*u - (2*K*K+1)*u + K*K*K*K - K*K
		if math.Abs(res) > 1e-12 {
			t.Errorf("root %v residual %v", u, res)
		}
	}
}

func TestGrowthRateScalesWithWp(t *testing.T) {
	// gamma(k; wp, v0) = wp * f(k v0 / wp): doubling wp and halving v0*k
	// appropriately rescales.
	ts1 := TwoStream{Wp: 1, V0: 0.2}
	ts2 := TwoStream{Wp: 2, V0: 0.2}
	k := 3.06
	g1 := ts1.GrowthRate(k)
	g2 := ts2.GrowthRate(2 * k) // same K
	if math.Abs(g2-2*g1) > 1e-12 {
		t.Fatalf("scaling broken: %v vs %v", g2, 2*g1)
	}
}

func TestGrowthRateWarmReducesToColdAtZeroVth(t *testing.T) {
	ts := TwoStream{Wp: 1, V0: 0.2, Vth: 0}
	k := 3.06
	if g, want := ts.GrowthRateWarm(k), ts.GrowthRate(k); math.Abs(g-want) > 1e-9 {
		t.Fatalf("warm(vth=0) = %v, cold = %v", g, want)
	}
}

func TestGrowthRateWarmSmallCorrection(t *testing.T) {
	cold := TwoStream{Wp: 1, V0: 0.2}
	warm := TwoStream{Wp: 1, V0: 0.2, Vth: 0.025}
	k := 3.06
	gc := cold.GrowthRate(k)
	gw := warm.GrowthRateWarm(k)
	if gw <= 0 {
		t.Fatal("warm growth vanished for small vth")
	}
	// The thermal correction at vth/v0 = 0.125 shifts gamma by a modest
	// amount; it must stay within 25% of the cold value and the warm
	// rate should differ from cold (the correction is real).
	if math.Abs(gw-gc)/gc > 0.25 {
		t.Fatalf("warm correction too large: cold %v warm %v", gc, gw)
	}
	if gw == gc {
		t.Fatal("warm correction had no effect")
	}
}

func TestGrowthRateWarmSatisfiesWarmDispersion(t *testing.T) {
	ts := TwoStream{Wp: 1, V0: 0.2, Vth: 0.02}
	k := 3.06
	g := ts.GrowthRateWarm(k)
	if g <= 0 {
		t.Fatal("expected unstable warm mode")
	}
	a := k*k*ts.V0*ts.V0 - g*g - 3*k*k*ts.Vth*ts.Vth
	b := 2 * g * k * ts.V0
	d := 1 - ts.Wp*ts.Wp*a/(a*a+b*b)
	if math.Abs(d) > 1e-6 {
		t.Fatalf("warm dispersion residual %v", d)
	}
}

func TestColdBeamApprox(t *testing.T) {
	if !(TwoStream{Wp: 1, V0: 0.2, Vth: 0.025}).ColdBeamApprox() {
		t.Error("v0/vth = 8 should satisfy the cold-beam approximation")
	}
	if (TwoStream{Wp: 1, V0: 0.05, Vth: 0.02}).ColdBeamApprox() {
		t.Error("v0/vth = 2.5 should not satisfy the cold-beam approximation")
	}
	if !(TwoStream{Wp: 1, V0: 0.4, Vth: 0}).ColdBeamApprox() {
		t.Error("vth = 0 is always cold")
	}
}

func TestValidate(t *testing.T) {
	if err := (TwoStream{Wp: 0, V0: 1}).Validate(); err == nil {
		t.Error("wp=0 should fail")
	}
	if err := (TwoStream{Wp: 1, Vth: -1}).Validate(); err == nil {
		t.Error("vth<0 should fail")
	}
	if err := (TwoStream{Wp: 1, V0: 0.2, Vth: 0.01}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestMostUnstableModeEdge(t *testing.T) {
	ts := TwoStream{Wp: 1, V0: 0.2}
	if m, g := ts.MostUnstableMode(1, 0); m != 0 || g != 0 {
		t.Error("maxMode=0 should return (0,0)")
	}
}

func TestZeroV0DegenerateCase(t *testing.T) {
	ts := TwoStream{Wp: 1, V0: 0}
	if k, g := ts.MaxGrowth(); k != 0 || g != 0 {
		t.Errorf("v0=0 MaxGrowth = (%v,%v), want (0,0)", k, g)
	}
	// K = 0 exactly: two beams at rest are a stable cold plasma.
	if ts.Unstable(1.0) {
		t.Error("v0=0 should be stable at any k")
	}
}
