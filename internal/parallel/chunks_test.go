package parallel

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
)

// withGOMAXPROCS runs f under a temporary GOMAXPROCS setting.
func withGOMAXPROCS(t *testing.T, n int, f func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

func TestNumChunksBounds(t *testing.T) {
	cases := []struct{ n, want int }{
		{-1, 0}, {0, 0}, {1, 1}, {chunkGrain, 1}, {chunkGrain + 1, 2},
		{chunkGrain * chunkMax, chunkMax}, {chunkGrain*chunkMax + 1, chunkMax},
		{1 << 30, chunkMax},
	}
	for _, c := range cases {
		if got := NumChunks(c.n); got != c.want {
			t.Errorf("NumChunks(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestChunkBoundsPartition(t *testing.T) {
	for _, n := range []int{1, 2, 17, 1000, 65537} {
		k := NumChunks(n)
		next := 0
		for c := 0; c < k; c++ {
			s, e := chunkBounds(n, k, c)
			if s != next {
				t.Fatalf("n=%d chunk %d starts at %d, want %d", n, c, s, next)
			}
			if e <= s {
				t.Fatalf("n=%d chunk %d empty [%d,%d)", n, c, s, e)
			}
			next = e
		}
		if next != n {
			t.Fatalf("n=%d chunks cover [0,%d), want [0,%d)", n, next, n)
		}
	}
}

func TestForChunksCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 100, chunkGrain, 3*chunkGrain + 5, 200000} {
		seen := make([]int32, n)
		k := ForChunks(n, func(chunk, start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		if k != NumChunks(n) {
			t.Fatalf("n=%d: ForChunks returned %d chunks, want %d", n, k, NumChunks(n))
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

// scatterFixture deposits pseudo-random contributions into a small
// accumulator; FP addition order matters, so it detects any change in
// the partial-sum structure.
func scatterFixture(n, width int) []float64 {
	out := make([]float64, width)
	ScatterReduce(n, out, func(acc []float64, start, end int) {
		for i := start; i < end; i++ {
			x := math.Sin(float64(i) * 0.7)
			acc[i%width] += x
			acc[(i*7+1)%width] += 0.3 * x * x
		}
	})
	return out
}

func TestScatterReduceBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	const n, width = 100000, 17
	var ref []float64
	withGOMAXPROCS(t, 1, func() { ref = scatterFixture(n, width) })
	for _, procs := range []int{2, 3, 4, 8} {
		withGOMAXPROCS(t, procs, func() {
			for rep := 0; rep < 3; rep++ {
				got := scatterFixture(n, width)
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("GOMAXPROCS=%d rep=%d: out[%d] = %v != serial %v",
							procs, rep, i, got[i], ref[i])
					}
				}
			}
		})
	}
}

func TestScatterReduceSingleChunkMatchesNaive(t *testing.T) {
	// Below the grain there is exactly one chunk: the result must be
	// bitwise equal to the plain serial loop.
	n, width := chunkGrain-1, 5
	want := make([]float64, width)
	for i := 0; i < n; i++ {
		want[i%width] += math.Cos(float64(i))
	}
	got := make([]float64, width)
	ScatterReduce(n, got, func(acc []float64, start, end int) {
		for i := start; i < end; i++ {
			acc[i%width] += math.Cos(float64(i))
		}
	})
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScatterReduceCloseToNaiveSerial(t *testing.T) {
	// Across chunks the parenthesization differs from the naive serial
	// fold, so equality is only up to FP reassociation error.
	const n, width = 50000, 8
	want := make([]float64, width)
	for i := 0; i < n; i++ {
		want[i%width] += math.Sin(float64(i) * 0.3)
	}
	got := make([]float64, width)
	ScatterReduce(n, got, func(acc []float64, start, end int) {
		for i := start; i < end; i++ {
			acc[i%width] += math.Sin(float64(i) * 0.3)
		}
	})
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("out[%d] = %v, naive %v", i, got[i], want[i])
		}
	}
}

func TestScatterReduceOverwritesOut(t *testing.T) {
	out := []float64{42, -7}
	ScatterReduce(10, out, func(acc []float64, start, end int) {
		for i := start; i < end; i++ {
			acc[0]++
		}
	})
	if out[0] != 10 || out[1] != 0 {
		t.Fatalf("out = %v, want [10 0]", out)
	}
	ScatterReduce(0, out, func(acc []float64, start, end int) { t.Fatal("body ran for n=0") })
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("out = %v after n=0, want zeros", out)
	}
}

func TestReduceSumsDeterministic(t *testing.T) {
	const n = 80000
	run := func() [2]float64 {
		var sums [2]float64
		ReduceSums(n, sums[:], func(partial []float64, start, end int) {
			for i := start; i < end; i++ {
				partial[0] += math.Sin(float64(i))
				partial[1] += math.Cos(float64(i))
			}
		})
		return sums
	}
	var ref [2]float64
	withGOMAXPROCS(t, 1, func() { ref = run() })
	withGOMAXPROCS(t, 8, func() {
		if got := run(); got != ref {
			t.Fatalf("GOMAXPROCS=8 sums %v != serial %v", got, ref)
		}
	})
}

func TestForPoolCoversAll(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 64} {
		for _, n := range []int{0, 1, 7, 100} {
			seen := make([]int32, n)
			ForPool(n, workers, func(i int) {
				atomic.AddInt32(&seen[i], 1)
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d run %d times", workers, n, i, c)
				}
			}
		}
	}
}
