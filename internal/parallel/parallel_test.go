package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 2048, 10000} {
		seen := make([]int32, n)
		For(n, func(start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForThresholdInlineForSmallN(t *testing.T) {
	calls := 0
	ForThreshold(10, 100, func(start, end int) {
		calls++
		if start != 0 || end != 10 {
			t.Fatalf("inline call got [%d,%d), want [0,10)", start, end)
		}
	})
	if calls != 1 {
		t.Fatalf("expected single inline call, got %d", calls)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	ran := false
	For(0, func(start, end int) { ran = true })
	For(-5, func(start, end int) { ran = true })
	if ran {
		t.Fatal("body must not run for n <= 0")
	}
}

func TestForWorkersPartition(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 1000} {
		seen := make([]int32, n)
		used := ForWorkers(n, func(worker, start, end int) {
			if worker < 0 {
				t.Errorf("negative worker id %d", worker)
			}
			for i := start; i < end; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		if used <= 0 || used > n {
			t.Fatalf("n=%d: used=%d out of range", n, used)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForWorkersZero(t *testing.T) {
	if used := ForWorkers(0, func(worker, start, end int) {}); used != 0 {
		t.Fatalf("ForWorkers(0) used = %d, want 0", used)
	}
}

func TestForWorkersIDsAreDense(t *testing.T) {
	n := 1000
	var maxID int64 = -1
	counts := make([]int32, NumWorkers()+1)
	used := ForWorkers(n, func(worker, start, end int) {
		atomic.AddInt32(&counts[worker], 1)
		for {
			cur := atomic.LoadInt64(&maxID)
			if int64(worker) <= cur || atomic.CompareAndSwapInt64(&maxID, cur, int64(worker)) {
				break
			}
		}
	})
	if int(maxID) != used-1 {
		t.Fatalf("max worker id %d, want used-1 = %d", maxID, used-1)
	}
	for w := 0; w < used; w++ {
		if counts[w] != 1 {
			t.Fatalf("worker %d ran %d chunks, want 1", w, counts[w])
		}
	}
}

// Property: the sum over a slice computed through a parallel worker
// reduction equals the sequential sum, for any slice.
func TestForWorkersSumProperty(t *testing.T) {
	f := func(xs []int16) bool {
		n := len(xs)
		partial := make([]int64, NumWorkers())
		used := ForWorkers(n, func(worker, start, end int) {
			var s int64
			for i := start; i < end; i++ {
				s += int64(xs[i])
			}
			partial[worker] = s
		})
		var got int64
		for w := 0; w < used; w++ {
			got += partial[w]
		}
		var want int64
		for _, x := range xs {
			want += int64(x)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNumWorkersPositive(t *testing.T) {
	if NumWorkers() < 1 {
		t.Fatalf("NumWorkers() = %d, want >= 1", NumWorkers())
	}
}
