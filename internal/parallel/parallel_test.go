package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 2048, 10000} {
		seen := make([]int32, n)
		For(n, func(start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForThresholdInlineForSmallN(t *testing.T) {
	calls := 0
	ForThreshold(10, 100, func(start, end int) {
		calls++
		if start != 0 || end != 10 {
			t.Fatalf("inline call got [%d,%d), want [0,10)", start, end)
		}
	})
	if calls != 1 {
		t.Fatalf("expected single inline call, got %d", calls)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	ran := false
	For(0, func(start, end int) { ran = true })
	For(-5, func(start, end int) { ran = true })
	if ran {
		t.Fatal("body must not run for n <= 0")
	}
}
