package parallel

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestChunkBoundsCoversRange(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{10, 3}, {64, 8}, {7, 7}, {100, 1}} {
		prev := 0
		for c := 0; c < tc.k; c++ {
			s, e := ChunkBounds(tc.n, tc.k, c)
			if s != prev {
				t.Fatalf("n=%d k=%d chunk %d starts at %d, want %d", tc.n, tc.k, c, s, prev)
			}
			if e < s {
				t.Fatalf("n=%d k=%d chunk %d inverted [%d,%d)", tc.n, tc.k, c, s, e)
			}
			prev = e
		}
		if prev != tc.n {
			t.Fatalf("n=%d k=%d chunks end at %d", tc.n, tc.k, prev)
		}
	}
}

func TestForPoolWorkersRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		const n = 100
		var counts [n]atomic.Int32
		ForPoolWorkers(n, workers, func(w, i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForPoolWorkersWorkerIDsInRange(t *testing.T) {
	const n, workers = 64, 4
	var bad atomic.Int32
	ForPoolWorkers(n, workers, func(w, i int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d tasks saw out-of-range worker ids", bad.Load())
	}
}

// The ordered fold must produce the exact left-fold chain regardless of
// delivery order; compare against the serial in-order fold.
func TestOrderedFoldMatchesSerialChain(t *testing.T) {
	const k, width = 9, 37
	r := rand.New(rand.NewSource(1))
	parts := make([][]float64, k)
	for c := range parts {
		parts[c] = make([]float64, width)
		for i := range parts[c] {
			parts[c][i] = r.NormFloat64()
		}
	}
	want := make([]float64, width)
	for c := 0; c < k; c++ {
		for i, v := range parts[c] {
			want[i] += v
		}
	}
	for _, order := range [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7, 8},
		{8, 7, 6, 5, 4, 3, 2, 1, 0},
		{4, 0, 8, 2, 6, 1, 5, 3, 7},
	} {
		var f OrderedFold
		out := make([]float64, width)
		out[0] = 99 // prior contents must not survive the round
		f.Begin(out, k)
		for _, c := range order {
			buf := f.Buffer(c)
			copy(buf, parts[c])
			f.Deliver(c, buf)
		}
		if f.Folded() != k {
			t.Fatalf("order %v: folded %d of %d", order, f.Folded(), k)
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("order %v: element %d = %v, want %v", order, i, out[i], want[i])
			}
		}
	}
}

func TestOrderedFoldChunkZeroInPlace(t *testing.T) {
	var f OrderedFold
	out := make([]float64, 4)
	f.Begin(out, 1)
	buf := f.Buffer(0)
	if &buf[0] != &out[0] {
		t.Fatal("chunk 0's Buffer should return the destination")
	}
	buf[2] = 5
	f.Deliver(0, buf)
	if out[2] != 5 || f.Folded() != 1 {
		t.Fatalf("in-place fold broken: %v folded=%d", out, f.Folded())
	}
}

func TestOrderedFoldReusesBuffersAcrossRounds(t *testing.T) {
	var f OrderedFold
	for round := 0; round < 3; round++ {
		out := make([]float64, 8)
		f.Begin(out, 3)
		for c := 0; c < 3; c++ {
			buf := f.Buffer(c)
			// Buffers arrive with arbitrary contents; producers must
			// overwrite, not accumulate.
			for i := range buf {
				buf[i] = float64(c + 1)
			}
			f.Deliver(c, buf)
		}
		for i := range out {
			if out[i] != 6 {
				t.Fatalf("round %d: out[%d] = %v, want 6", round, i, out[i])
			}
		}
	}
}

// ScatterReduceBlocked must be bit-identical to ScatterReduce at every
// GOMAXPROCS: the blocked reduction only changes element ownership.
func TestScatterReduceBlockedMatchesScatterReduce(t *testing.T) {
	const n, width = 10_000, 4096
	vals := make([]float64, n)
	r := rand.New(rand.NewSource(7))
	for i := range vals {
		vals[i] = r.NormFloat64()
	}
	body := func(acc []float64, start, end int) {
		for p := start; p < end; p++ {
			acc[p%width] += vals[p]
			acc[(p*7)%width] += 0.5 * vals[p]
		}
	}
	want := make([]float64, width)
	ScatterReduce(n, want, body)
	for _, procs := range []int{1, 2, 8} {
		old := runtime.GOMAXPROCS(procs)
		got := make([]float64, width)
		ScatterReduceBlocked(n, got, body)
		runtime.GOMAXPROCS(old)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("GOMAXPROCS=%d: element %d = %v, want %v", procs, i, got[i], want[i])
			}
		}
	}
}

func TestScatterReduceBlockedSmall(t *testing.T) {
	// Single-chunk and empty paths.
	out := []float64{3, 3}
	ScatterReduceBlocked(0, out, func(acc []float64, s, e int) { t.Fatal("body called for n=0") })
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("n=0 should zero out, got %v", out)
	}
	ScatterReduceBlocked(5, out, func(acc []float64, s, e int) {
		for p := s; p < e; p++ {
			acc[p%2]++
		}
	})
	if out[0] != 3 || out[1] != 2 {
		t.Fatalf("single-chunk blocked reduce = %v", out)
	}
}
