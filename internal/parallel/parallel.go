// Package parallel provides small helpers for data-parallel loops used
// throughout the PIC and neural-network kernels.
//
// The helpers favour determinism: reductions performed through
// ForWorkers always combine per-worker results in worker-index order, so
// repeated runs with the same seed produce bit-identical output
// regardless of goroutine scheduling.
package parallel

import (
	"runtime"
	"sync"
)

// maxWorkers bounds the number of goroutines launched by For and
// ForWorkers. It defaults to GOMAXPROCS.
func maxWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// For splits the half-open index range [0, n) into contiguous chunks and
// runs body(start, end) for each chunk on its own goroutine. It blocks
// until every chunk completes. body must be safe to call concurrently on
// disjoint ranges.
//
// For small n the loop runs inline on the calling goroutine to avoid
// scheduling overhead.
func For(n int, body func(start, end int)) {
	ForThreshold(n, 2048, body)
}

// ForThreshold is For with an explicit sequential cutoff: ranges shorter
// than threshold run inline.
func ForThreshold(n, threshold int, body func(start, end int)) {
	if n <= 0 {
		return
	}
	workers := maxWorkers()
	if n < threshold || workers == 1 {
		body(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= n {
			break
		}
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			body(s, e)
		}(start, end)
	}
	wg.Wait()
}

// ForWorkers runs body(worker, start, end) over [0, n) with one contiguous
// chunk per worker, passing the worker index so callers can accumulate
// into private buffers indexed by worker. It returns the number of workers
// actually used, so callers can reduce buffers [0, used) in order.
//
// Unlike For, ForWorkers always partitions the range (even for tiny n)
// because callers rely on the returned worker count for reductions.
func ForWorkers(n int, body func(worker, start, end int)) int {
	if n <= 0 {
		return 0
	}
	workers := maxWorkers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		body(0, 0, n)
		return 1
	}
	chunk := (n + workers - 1) / workers
	used := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= n {
			break
		}
		end := start + chunk
		if end > n {
			end = n
		}
		used++
		wg.Add(1)
		go func(id, s, e int) {
			defer wg.Done()
			body(id, s, e)
		}(w, start, end)
	}
	wg.Wait()
	return used
}

// NumWorkers reports the worker count For/ForWorkers would use for a
// large range. Callers use it to size per-worker scratch buffers.
func NumWorkers() int { return maxWorkers() }
