// Package parallel provides small helpers for data-parallel loops used
// throughout the PIC and neural-network kernels.
//
// The helpers favour determinism. With the chunked primitives
// (ForChunks, ScatterReduce, ReduceSums) the range [0, n) is split
// into a fixed number of chunks
// that depends only on n — never on GOMAXPROCS — and per-chunk partial
// results are combined in chunk-index order. Because both the partial
// sums and the reduction order are invariant under the worker count,
// their output is bit-identical across any GOMAXPROCS setting,
// including the fully serial GOMAXPROCS=1 path. The PIC hot-path
// kernels (deposit, kick, field reductions) are built on these, which
// is what makes whole simulations reproducible across machines with
// different core counts.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// poolDepth counts ForPool invocations that currently have goroutine
// workers running. While one is active the fine-grained loops run
// inline: the outer pool already saturates the cores, and fanning
// GOMAXPROCS goroutines out of every pooled task would multiply
// concurrency to ~P^2. Inlining never changes results — the chunked
// primitives are bit-identical serial vs parallel by construction.
var poolDepth atomic.Int32

// maxWorkers bounds the number of goroutines launched by the
// fine-grained loops. It defaults to GOMAXPROCS, dropping to 1 inside
// an active ForPool.
func maxWorkers() int {
	if poolDepth.Load() > 0 {
		return 1
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// runPool dispatches fn(i) for i in [0, count) to workers goroutines
// pulling indices from a shared counter. Callers normalize workers to
// [2, count] first.
func runPool(count, workers int, fn func(i int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// For splits the half-open index range [0, n) into contiguous chunks and
// runs body(start, end) for each chunk on its own goroutine. It blocks
// until every chunk completes. body must be safe to call concurrently on
// disjoint ranges.
//
// For small n the loop runs inline on the calling goroutine to avoid
// scheduling overhead.
func For(n int, body func(start, end int)) {
	ForThreshold(n, 2048, body)
}

// ForThreshold is For with an explicit sequential cutoff: ranges shorter
// than threshold run inline.
func ForThreshold(n, threshold int, body func(start, end int)) {
	if n <= 0 {
		return
	}
	workers := maxWorkers()
	if n < threshold || workers == 1 {
		body(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= n {
			break
		}
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			body(s, e)
		}(start, end)
	}
	wg.Wait()
}

// Async runs task on its own goroutine and returns a wait function
// that blocks until the task completes. It is the sanctioned seam for
// one-shot overlap of two disjoint pieces of work — the pipelined
// trainer uses it to gather batch t+1 while the optimizer steps batch
// t. Determinism is the caller's contract: task must touch only state
// the caller does not read or write before wait returns, so the
// overlap changes timing and nothing else. wait must be called exactly
// once before any of the task's outputs are used.
func Async(task func()) (wait func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		task()
	}()
	return func() { <-done }
}

// ---------------------------------------------------------------------------
// Deterministic chunked primitives

const (
	// chunkGrain is the minimum elements per chunk; ranges below it run
	// as a single chunk (inline, no goroutines).
	chunkGrain = 1024
	// chunkMax caps the chunk count so per-chunk accumulator memory
	// stays bounded for huge ranges.
	chunkMax = 64
)

// NumChunks returns the chunk count the chunked primitives split [0, n)
// into. It is a pure function of n (never of GOMAXPROCS), which is the
// invariant that makes chunked reductions bit-identical across worker
// counts.
func NumChunks(n int) int {
	if n <= 0 {
		return 0
	}
	k := (n + chunkGrain - 1) / chunkGrain
	if k > chunkMax {
		k = chunkMax
	}
	return k
}

// chunkBounds returns the half-open range of chunk c when [0, n) is
// split into k near-equal chunks (the first n%k chunks get one extra).
func chunkBounds(n, k, c int) (start, end int) {
	base := n / k
	rem := n % k
	if c < rem {
		start = c * (base + 1)
		end = start + base + 1
		return
	}
	start = rem*(base+1) + (c-rem)*base
	end = start + base
	return
}

// ForChunks runs body(chunk, start, end) for every chunk of [0, n),
// distributing chunks over up to GOMAXPROCS goroutines via a shared
// counter. The decomposition depends only on n, so the set of
// (chunk, start, end) calls is identical at every GOMAXPROCS. It
// returns the chunk count so callers can reduce per-chunk partials in
// chunk order.
func ForChunks(n int, body func(chunk, start, end int)) int {
	k := NumChunks(n)
	if k == 0 {
		return 0
	}
	workers := maxWorkers()
	if workers > k {
		workers = k
	}
	if workers == 1 {
		for c := 0; c < k; c++ {
			s, e := chunkBounds(n, k, c)
			body(c, s, e)
		}
		return k
	}
	runPool(k, workers, func(c int) {
		s, e := chunkBounds(n, k, c)
		body(c, s, e)
	})
	return k
}

// scratchPool recycles the flat per-chunk accumulator buffers used by
// ScatterReduce and ReduceSums, so steady-state hot loops (one deposit
// per PIC step) stop allocating.
var scratchPool = sync.Pool{New: func() any { s := []float64(nil); return &s }}

func getScratch(size int) *[]float64 {
	p := scratchPool.Get().(*[]float64)
	if cap(*p) < size {
		*p = make([]float64, size)
	}
	*p = (*p)[:size]
	buf := *p
	for i := range buf {
		buf[i] = 0
	}
	return p
}

// ScatterReduce performs a deterministic parallel scatter-add into out:
// each chunk of [0, n) accumulates into a private zeroed buffer of
// len(out), and the per-chunk buffers are summed into out in chunk
// order. out is overwritten. body must add chunk-local contributions of
// elements [start, end) into acc and must not retain acc.
//
// Output is bit-identical for every GOMAXPROCS because the chunk
// decomposition depends only on n. For a single chunk, acc is out
// itself (no copy).
func ScatterReduce(n int, out []float64, body func(acc []float64, start, end int)) {
	for i := range out {
		out[i] = 0
	}
	if n <= 0 {
		return
	}
	width := len(out)
	k := NumChunks(n)
	if k == 1 || width == 0 {
		body(out, 0, n)
		return
	}
	p := getScratch(k * width)
	buf := *p
	ForChunks(n, func(chunk, start, end int) {
		body(buf[chunk*width:(chunk+1)*width], start, end)
	})
	for c := 0; c < k; c++ {
		row := buf[c*width : (c+1)*width]
		for i, v := range row {
			out[i] += v
		}
	}
	scratchPool.Put(p)
}

// ReduceSums is ScatterReduce for a handful of scalar accumulators
// (e.g. the kinetic-energy and momentum sums of a velocity kick): body
// adds the partial sums of elements [start, end) into partial (length
// len(sums)), and the per-chunk partials are combined into sums in
// chunk order. sums is overwritten. Deterministic across GOMAXPROCS
// for the same reason as ScatterReduce.
func ReduceSums(n int, sums []float64, body func(partial []float64, start, end int)) {
	ScatterReduce(n, sums, body)
}

// ForPool runs task(i) for every i in [0, n) on up to workers
// goroutines pulling indices from a shared counter. It is the
// coarse-grained counterpart of For, intended for heavyweight
// independent tasks (whole simulation runs in a sweep); workers <= 0
// selects GOMAXPROCS. Tasks must synchronize any shared state
// themselves; writing to per-index slots needs no locking.
// While the pool's goroutines run, the fine-grained loops inside the
// tasks execute inline (see poolDepth): coarse outer parallelism wins
// over nested fan-out. A pool that runs serially (workers resolves to
// 1) leaves inner parallelism enabled — there the kernels are the only
// source of concurrency.
func ForPool(n, workers int, task func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = maxWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	poolDepth.Add(1)
	defer poolDepth.Add(-1)
	runPool(n, workers, task)
}
