package parallel

import (
	"sync"
	"sync/atomic"
)

// ChunkBounds returns the half-open element range of chunk c when
// [0, n) is split into k near-equal chunks (the first n%k chunks get
// one extra element). It exposes the decomposition the chunked
// primitives use internally, for callers that orchestrate their own
// workers but need the same worker-count-independent split — the
// training engine in internal/nn shards minibatches with it.
func ChunkBounds(n, k, c int) (start, end int) {
	return chunkBounds(n, k, c)
}

// ForPoolWorkers is ForPool with stable worker identities: task(w, i)
// runs task i on worker w, where w is in [0, workers) and constant for
// the lifetime of that worker's goroutine. Callers use w to index
// per-worker state (scratch buffers, network replicas) without locking.
// Which worker runs which task is scheduling-dependent, so per-worker
// state must not influence results — only layout.
//
// workers <= 0 selects GOMAXPROCS; workers is clamped to n. Like
// ForPool, a multi-worker invocation suppresses nested fine-grained
// parallelism (see poolDepth); a pool that resolves to one worker runs
// the tasks inline in index order and leaves inner parallelism enabled.
func ForPoolWorkers(n, workers int, task func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = maxWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			task(0, i)
		}
		return
	}
	poolDepth.Add(1)
	defer poolDepth.Add(-1)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// OrderedFold is a streaming chunk-ordered tensor reduction: k workers
// produce equal-length partial buffers in any completion order, and the
// fold combines them into the destination in strict chunk order
// (out = buf_0, then out += buf_1, ...). Because the left-fold chain
// per element is fixed by the chunk indices, the result is bit-identical
// at any worker count — the ScatterReduce guarantee without
// materializing all k buffers when chunks complete nearly in order: a
// delivered buffer that has to wait only for earlier chunks is held,
// and every folded buffer is recycled for later chunks, so steady-state
// memory is O(workers) buffers rather than O(chunks).
//
// Two traffic optimizations shape the contract: chunk 0's "buffer" is
// the destination itself (its partial is produced in place, no copy and
// no fold add), and pooled buffers are handed out with arbitrary
// contents — the producer must fully overwrite its buffer, not
// accumulate into it. out's prior contents never survive Begin's round.
//
// Usage per reduction round: Begin(out, k); each worker obtains chunk
// c's buffer with Buffer(c), overwrites it with the chunk's partial,
// and hands it back with Deliver(c, buf). Every chunk must be delivered
// exactly once; after all k deliveries the fold is complete. Begin may
// be called again to start the next round, reusing the pool.
type OrderedFold struct {
	mu      sync.Mutex
	out     []float64
	next    int
	pending [][]float64 // indexed by chunk, nil until delivered
	free    [][]float64
}

// Begin starts a reduction round of k chunks into out. out is
// overwritten by the round (chunk 0 writes it directly).
func (f *OrderedFold) Begin(out []float64, k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.out = out
	f.next = 0
	if cap(f.pending) < k {
		f.pending = make([][]float64, k)
	}
	f.pending = f.pending[:k]
	for i := range f.pending {
		f.pending[i] = nil
	}
}

// Buffer returns the partial buffer for chunk c: the destination itself
// for chunk 0, a pooled buffer of len(out) otherwise. Contents are
// arbitrary — the caller must fully overwrite the buffer.
func (f *OrderedFold) Buffer(c int) []float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c == 0 {
		return f.out
	}
	for n := len(f.free); n > 0; n = len(f.free) {
		buf := f.free[n-1]
		f.free = f.free[:n-1]
		if len(buf) == len(f.out) {
			return buf
		}
	}
	return make([]float64, len(f.out))
}

// Deliver hands chunk c's completed buffer to the fold. If all chunks
// before c have been folded, buf (and any directly following pending
// buffers) is folded immediately and recycled; otherwise it is parked
// until its turn. Chunk 0 needs no add — its partial is already in
// out — it only unblocks the chain.
func (f *OrderedFold) Deliver(c int, buf []float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pending[c] = buf
	for f.next < len(f.pending) && f.pending[f.next] != nil {
		b := f.pending[f.next]
		f.pending[f.next] = nil
		if f.next > 0 {
			for i, v := range b {
				f.out[i] += v
			}
			f.free = append(f.free, b)
		}
		f.next++
	}
}

// Folded reports how many chunks have been folded into out so far.
func (f *OrderedFold) Folded() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// ScatterReduceBlocked is ScatterReduce with the final chunk-order
// reduction parallelized over disjoint blocks of out: each element
// still sums its per-chunk partials in ascending chunk order, so the
// result is bit-identical to ScatterReduce (and therefore to the serial
// path) at every GOMAXPROCS — only the ownership of output elements is
// split. Worth it when len(out) is large enough that the serial
// k*len(out) reduction shows up next to the scatter itself, e.g. the 2D
// deposit's row-major grids.
func ScatterReduceBlocked(n int, out []float64, body func(acc []float64, start, end int)) {
	for i := range out {
		out[i] = 0
	}
	if n <= 0 {
		return
	}
	width := len(out)
	k := NumChunks(n)
	if k == 1 || width == 0 {
		body(out, 0, n)
		return
	}
	p := getScratch(k * width)
	buf := *p
	ForChunks(n, func(chunk, start, end int) {
		body(buf[chunk*width:(chunk+1)*width], start, end)
	})
	ForThreshold(width, 2048, func(js, je int) {
		for c := 0; c < k; c++ {
			row := buf[c*width+js : c*width+je]
			o := out[js:je]
			for i, v := range row {
				o[i] += v
			}
		}
	})
	scratchPool.Put(p)
}
