package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dlpic/internal/campaign"
)

// leaseVersion is the lease log line format version.
const leaseVersion = 1

// Lease event kinds. Every transition of a lease's lifecycle appends
// one record; replaying the log in order reconstructs the active set.
const (
	leaseGrant   = "grant"   // cell handed to a worker
	leaseExtend  = "extend"  // heartbeat moved the expiry forward
	leaseRelease = "release" // completion (or settlement) ended the lease
	leaseExpire  = "expire"  // coordinator declared the holder dead
)

// leaseRecord is one line of the lease log: a single lease-state
// transition. The log is append-only JSONL next to the campaign
// journal ("<journal>.leases") and shares its torn-tail discipline —
// a coordinator killed mid-append leaves a fragment that recovery
// truncates away. Losing tail records is always safe: a lost grant or
// extend merely re-leases a cell earlier (preemption, never an
// attempt), and a lost release/expire leaves a stale lease that the
// next completion check or expiry sweep clears.
type leaseRecord struct {
	// V is the line format version (leaseVersion).
	V int `json:"v"`
	// Event is the transition kind (grant/extend/release/expire).
	Event string `json:"event"`
	// Seq is the coordinator-global grant counter, persisted so a
	// restarted coordinator never reissues a live lease id.
	Seq uint64 `json:"seq"`
	// Lease is the lease id ("<worker>.<seq>").
	Lease string `json:"lease"`
	// Key is the leased cell's campaign key (grant only).
	Key string `json:"key,omitempty"`
	// Worker is the holder's id (grant only).
	Worker string `json:"worker,omitempty"`
	// ExpiryNS is the lease deadline, UnixNano (grant and extend).
	ExpiryNS int64 `json:"expiry_ns,omitempty"`
}

// leaseState is one active lease reconstructed from the log.
type leaseState struct {
	lease  string
	key    string
	worker string
	expiry time.Time
}

// leaseLog is the append-side handle of the lease file. Appends are
// serialized by the coordinator's mutex, not here.
type leaseLog struct {
	f *os.File
}

// leasePath returns the lease log path adjacent to a campaign journal.
func leasePath(journalPath string) string { return journalPath + ".leases" }

// openLeaseLog opens (creating if absent) the lease log at path,
// truncates any torn tail, and replays the surviving records into the
// set of leases still active at now plus the next safe grant sequence
// number. Leases already expired at load time are dropped — their
// cells go straight back to the pending pool.
func openLeaseLog(path string, now time.Time) (*leaseLog, map[string]leaseState, uint64, error) {
	active := make(map[string]leaseState)
	var nextSeq uint64
	if _, err := os.Stat(path); err == nil {
		if err := campaign.TruncateTornTail(path); err != nil {
			return nil, nil, 0, fmt.Errorf("dist: lease log %s: %w", path, err)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, 0, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
		line := 0
		for sc.Scan() {
			line++
			text := sc.Bytes()
			if len(text) == 0 {
				continue
			}
			var rec leaseRecord
			// Post-truncation every line is complete, so any parse
			// failure is real corruption, not a torn tail.
			if err := json.Unmarshal(text, &rec); err != nil {
				f.Close()
				return nil, nil, 0, fmt.Errorf("dist: lease log %s line %d: %w", path, line, err)
			}
			if rec.V != leaseVersion {
				f.Close()
				return nil, nil, 0, fmt.Errorf("dist: lease log %s line %d: unsupported version %d", path, line, rec.V)
			}
			if rec.Seq >= nextSeq {
				nextSeq = rec.Seq + 1
			}
			switch rec.Event {
			case leaseGrant:
				active[rec.Lease] = leaseState{
					lease: rec.Lease, key: rec.Key, worker: rec.Worker,
					expiry: time.Unix(0, rec.ExpiryNS),
				}
			case leaseExtend:
				if st, ok := active[rec.Lease]; ok {
					st.expiry = time.Unix(0, rec.ExpiryNS)
					active[rec.Lease] = st
				}
			case leaseRelease, leaseExpire:
				delete(active, rec.Lease)
			default:
				f.Close()
				return nil, nil, 0, fmt.Errorf("dist: lease log %s line %d: unknown event %q", path, line, rec.Event)
			}
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("dist: lease log %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return nil, nil, 0, err
		}
		for id, st := range active {
			if !st.expiry.After(now) {
				delete(active, id)
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, 0, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	return &leaseLog{f: f}, active, nextSeq, nil
}

// append writes one transition as a single JSON line. An append
// failure is returned but deliberately non-fatal to the campaign: the
// lease log is a recovery aid, and in-memory lease state remains
// authoritative for a coordinator that stays alive.
func (l *leaseLog) append(rec leaseRecord) error {
	rec.V = leaseVersion
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("dist: marshal lease record %q: %w", rec.Lease, err)
	}
	buf = append(buf, '\n')
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("dist: append lease record %q: %w", rec.Lease, err)
	}
	return nil
}

// Close closes the lease log file.
func (l *leaseLog) Close() error { return l.f.Close() }
