package dist

import (
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"sync"
	"time"

	"dlpic/internal/campaign"
	"dlpic/internal/sweep"
)

// Hub routes distributed-execution RPCs to the coordinators of the
// jobs currently running. The serving daemon owns one Hub for its
// lifetime; each distributed job registers a coordinator for the
// duration of its campaign. Workers are job-agnostic: a claim scans
// the live jobs (in job-id order, for determinism) and the response
// tells the worker which job its lease belongs to.
type Hub struct {
	opts Options

	mu       sync.Mutex
	sessions map[string]*Coordinator
}

// NewHub returns a hub whose coordinators run with opts.
func NewHub(opts Options) *Hub {
	return &Hub{opts: opts.withDefaults(), sessions: make(map[string]*Coordinator)}
}

// Run executes one distributed campaign: it creates the job's
// coordinator over journalPath, serves its cells to whatever workers
// claim from the hub, and blocks until the campaign completes (or
// drains via spec.Interrupt). It is the distributed counterpart of
// campaign.Run with an identical contract: same result shape, same
// journal, same digest.
func (h *Hub) Run(job, journalPath string, spec campaign.Spec) ([]sweep.Result, error) {
	c, err := NewCoordinator(job, journalPath, spec, h.opts)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	h.sessions[job] = c
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		delete(h.sessions, job)
		h.mu.Unlock()
	}()
	return c.Run()
}

// coordinator returns the live coordinator of a job, or nil.
func (h *Hub) coordinator(job string) *Coordinator {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sessions[job]
}

// jobs returns the live job ids in sorted order.
func (h *Hub) jobs() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	ids := make([]string, 0, len(h.sessions))
	for id := range h.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Wire types. Scenarios cross the wire as their full JSON form —
// Go's float64 marshaling round-trips bit-exactly and the uint64 seed
// decodes into a typed field without precision loss — so a worker
// reconstructs exactly the cell the coordinator planned. Methods
// cross as *names* only (factories are code, not data): the claim
// carries the worker's supported method names and the coordinator
// only grants cells the worker can actually run.

// ClaimRequest asks the hub for a cell to execute.
type ClaimRequest struct {
	// Worker identifies the claimant; it lands in lease ids and logs.
	Worker string `json:"worker"`
	// Methods are the method names this worker can execute. Empty
	// claims anything (only sensible for method-name-agnostic tests).
	Methods []string `json:"methods,omitempty"`
}

// ClaimResponse is the hub's answer: a cell to run, or a hint to poll
// again, or the news that all known jobs are done.
type ClaimResponse struct {
	// Status is "cell" (run the enclosed cell), "idle" (nothing
	// claimable now, retry after RetryMS) or "done" (every live job's
	// cells are settled; also returned when no job is live).
	Status string `json:"status"`
	// RetryMS paces the next claim after "idle"/"done".
	RetryMS int64 `json:"retry_ms,omitempty"`

	// Job and Lease identify the granted lease ("cell" only).
	Job   string `json:"job,omitempty"`
	Lease string `json:"lease,omitempty"`
	// TTLMS is the lease lifetime; heartbeat well within it.
	TTLMS int64 `json:"ttl_ms,omitempty"`
	// Key, Index, Scenario and Method are the cell (see campaign.Cell);
	// SkipFit/KeepFinalState are the sweep options the key was built
	// under.
	Key            string         `json:"key,omitempty"`
	Index          int            `json:"index,omitempty"`
	Scenario       sweep.Scenario `json:"scenario"`
	Method         string         `json:"method,omitempty"`
	SkipFit        bool           `json:"skip_fit,omitempty"`
	KeepFinalState bool           `json:"keep_final_state,omitempty"`
}

// HeartbeatRequest extends a lease.
type HeartbeatRequest struct {
	Job   string `json:"job"`
	Lease string `json:"lease"`
}

// HeartbeatResponse acknowledges the extension.
type HeartbeatResponse struct {
	TTLMS int64 `json:"ttl_ms"`
}

// CompleteRequest reports a finished cell for journaling.
type CompleteRequest struct {
	Job   string `json:"job"`
	Lease string `json:"lease"`
	// Record is the worker-serialized outcome (campaign.NewRecord,
	// sanitized before sending so it is guaranteed to marshal).
	// Attempts is coordinator-owned and ignored on the way in.
	Record campaign.Record `json:"record"`
	// Transient is the worker's campaign.Transient verdict on the
	// original error, decided before flattening it to a string.
	Transient bool `json:"transient,omitempty"`
}

// Register mounts the distributed-execution endpoints on mux:
//
//	POST /dist/claim     ClaimRequest -> ClaimResponse
//	POST /dist/heartbeat HeartbeatRequest -> HeartbeatResponse | 410
//	POST /dist/complete  CompleteRequest -> 204 | 410
//
// 410 Gone is the wire form of ErrLeaseExpired/ErrUnknownJob: the
// lease (or its whole job) is no longer current and the worker must
// discard the cell without retrying.
func (h *Hub) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /dist/claim", h.handleClaim)
	mux.HandleFunc("POST /dist/heartbeat", h.handleHeartbeat)
	mux.HandleFunc("POST /dist/complete", h.handleComplete)
}

// handleClaim scans live jobs in id order for a claimable cell.
func (h *Hub) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "dist: bad claim request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Worker == "" {
		http.Error(w, "dist: claim needs a worker id", http.StatusBadRequest)
		return
	}
	allDone := true
	for _, job := range h.jobs() {
		c := h.coordinator(job)
		if c == nil {
			continue
		}
		grant, done, err := c.Claim(req.Worker, req.Methods)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if grant != nil {
			writeJSON(w, ClaimResponse{
				Status: "cell",
				Job:    job, Lease: grant.Lease, TTLMS: grant.TTL.Milliseconds(),
				Key: grant.Cell.Key, Index: grant.Cell.Index,
				Scenario: grant.Cell.Scenario, Method: grant.Cell.Method.Name,
				SkipFit: grant.SkipFit, KeepFinalState: grant.KeepFinalState,
			})
			return
		}
		if !done {
			allDone = false
		}
	}
	status := "idle"
	if allDone {
		status = "done"
	}
	writeJSON(w, ClaimResponse{Status: status, RetryMS: h.opts.ClaimRetry.Milliseconds()})
}

// handleHeartbeat extends one lease.
func (h *Hub) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "dist: bad heartbeat request: "+err.Error(), http.StatusBadRequest)
		return
	}
	c := h.coordinator(req.Job)
	if c == nil {
		http.Error(w, ErrUnknownJob.Error(), http.StatusGone)
		return
	}
	ttl, err := c.Heartbeat(req.Lease)
	if err != nil {
		writeRPCError(w, err)
		return
	}
	writeJSON(w, HeartbeatResponse{TTLMS: ttl.Milliseconds()})
}

// handleComplete journals one finished cell.
func (h *Hub) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "dist: bad complete request: "+err.Error(), http.StatusBadRequest)
		return
	}
	c := h.coordinator(req.Job)
	if c == nil {
		http.Error(w, ErrUnknownJob.Error(), http.StatusGone)
		return
	}
	if err := c.Complete(req.Lease, req.Record, req.Transient); err != nil {
		writeRPCError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeRPCError maps coordinator errors onto wire status codes: lease
// preemptions are 410 Gone (discard, do not retry), everything else
// 500 (transient from the worker's point of view).
func writeRPCError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrLeaseExpired) || errors.Is(err, ErrUnknownJob) {
		http.Error(w, err.Error(), http.StatusGone)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing to do but note it in the status
		// already sent. The client's decode error surfaces it.
		_ = err
	}
}

// LeaseTTL returns the hub's effective lease TTL (for display and
// worker pacing defaults).
func (h *Hub) LeaseTTL() time.Duration { return h.opts.LeaseTTL }
