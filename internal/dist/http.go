package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dlpic/internal/campaign"
	"dlpic/internal/sweep"
)

// Hub routes distributed-execution RPCs to the coordinators of the
// jobs currently running. The serving daemon owns one Hub for its
// lifetime; each distributed job registers a coordinator for the
// duration of its campaign. Workers are job-agnostic: a claim scans
// the live jobs (in job-id order, for determinism) and the response
// tells the worker which job its lease belongs to.
type Hub struct {
	opts Options

	mu       sync.Mutex
	sessions map[string]*Coordinator
}

// NewHub returns a hub whose coordinators run with opts.
func NewHub(opts Options) *Hub {
	return &Hub{opts: opts.withDefaults(), sessions: make(map[string]*Coordinator)}
}

// Run executes one distributed campaign: it creates the job's
// coordinator over journalPath, serves its cells to whatever workers
// claim from the hub, and blocks until the campaign completes (or
// drains via spec.Interrupt). It is the distributed counterpart of
// campaign.Run with an identical contract: same result shape, same
// journal, same digest.
//
// bundles are the trained model bundles the campaign's DL methods
// need (BundleRefFromFile over the trainer's persisted artifacts);
// grants for those methods carry the refs and the hub's bundle
// endpoint serves the bytes. Model-free campaigns pass none.
func (h *Hub) Run(job, journalPath string, spec campaign.Spec, bundles ...BundleRef) ([]sweep.Result, error) {
	c, err := NewCoordinator(job, journalPath, spec, h.opts, bundles...)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	h.sessions[job] = c
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		delete(h.sessions, job)
		h.mu.Unlock()
	}()
	return c.Run()
}

// coordinator returns the live coordinator of a job, or nil.
func (h *Hub) coordinator(job string) *Coordinator {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sessions[job]
}

// jobs returns the live job ids in sorted order.
func (h *Hub) jobs() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	ids := make([]string, 0, len(h.sessions))
	for id := range h.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Wire types. Scenarios cross the wire as their full JSON form —
// Go's float64 marshaling round-trips bit-exactly and the uint64 seed
// decodes into a typed field without precision loss — so a worker
// reconstructs exactly the cell the coordinator planned. Methods
// cross as *names* only (factories are code, not data): the claim
// carries the worker's supported method names and the coordinator
// only grants cells the worker can actually run.

// ClaimRequest asks the hub for up to Max cells to execute.
type ClaimRequest struct {
	// Worker identifies the claimant; it lands in lease ids and logs.
	Worker string `json:"worker"`
	// Methods are the method names this worker can execute. Empty
	// claims anything (only sensible for method-name-agnostic tests).
	Methods []string `json:"methods,omitempty"`
	// Max is the batch size: the largest number of cells the worker
	// wants in one round-trip (<= 0 means 1). The coordinator may
	// grant fewer — it divides the pending pool across the workers it
	// has seen.
	Max int `json:"max,omitempty"`
}

// CellGrant is one leased cell inside a ClaimResponse. Each granted
// cell has its own lease: heartbeats, expiry and completion stay
// cell-granular however many cells one claim returned.
type CellGrant struct {
	// Lease is the lease id the worker heartbeats and completes with.
	Lease string `json:"lease"`
	// TTLMS is the lease lifetime; heartbeat well within it.
	TTLMS int64 `json:"ttl_ms,omitempty"`
	// Key, Index, Scenario and Method are the cell (see campaign.Cell);
	// SkipFit/KeepFinalState are the sweep options the key was built
	// under.
	Key            string         `json:"key,omitempty"`
	Index          int            `json:"index,omitempty"`
	Scenario       sweep.Scenario `json:"scenario"`
	Method         string         `json:"method,omitempty"`
	SkipFit        bool           `json:"skip_fit,omitempty"`
	KeepFinalState bool           `json:"keep_final_state,omitempty"`
	// Bundles are the trained model bundles the cell's method needs;
	// fetch them from GET /bundles/{fingerprint} (empty for model-free
	// methods).
	Bundles []BundleRef `json:"bundles,omitempty"`
}

// ClaimResponse is the hub's answer: cells to run, or a hint to poll
// again, or the news that all known jobs are done.
type ClaimResponse struct {
	// Status is "cell" (run the enclosed cells), "idle" (nothing
	// claimable now, retry after RetryMS) or "done" (every live job's
	// cells are settled; also returned when no job is live).
	Status string `json:"status"`
	// RetryMS paces the next claim after "idle"/"done".
	RetryMS int64 `json:"retry_ms,omitempty"`
	// Job identifies the granting job ("cell" only); every cell of one
	// response belongs to it.
	Job string `json:"job,omitempty"`
	// Cells are the granted cells, at most the request's Max.
	Cells []CellGrant `json:"cells,omitempty"`
}

// HeartbeatRequest extends one or more leases of a job in one RPC (a
// batched worker holds several at once).
type HeartbeatRequest struct {
	Job    string   `json:"job"`
	Leases []string `json:"leases"`
}

// HeartbeatResponse acknowledges the extension. Leases that are no
// longer current come back in Expired — cell-granular preemption; the
// RPC itself is 410 only when every lease it named is gone.
type HeartbeatResponse struct {
	TTLMS   int64    `json:"ttl_ms"`
	Expired []string `json:"expired,omitempty"`
}

// CompleteRequest reports a finished cell for journaling.
type CompleteRequest struct {
	Job   string `json:"job"`
	Lease string `json:"lease"`
	// Record is the worker-serialized outcome (campaign.NewRecord,
	// sanitized before sending so it is guaranteed to marshal).
	// Attempts is coordinator-owned and ignored on the way in.
	Record campaign.Record `json:"record"`
	// Transient is the worker's campaign.Transient verdict on the
	// original error, decided before flattening it to a string.
	Transient bool `json:"transient,omitempty"`
}

// Register mounts the distributed-execution endpoints on mux:
//
//	POST /dist/claim          ClaimRequest -> ClaimResponse
//	POST /dist/heartbeat      HeartbeatRequest -> HeartbeatResponse | 410
//	POST /dist/complete       CompleteRequest -> 204 | 410
//	GET  /bundles/{fingerprint}  model bundle bytes | 404
//
// 410 Gone is the wire form of ErrLeaseExpired/ErrUnknownJob: the
// lease (or its whole job) is no longer current and the worker must
// discard the cell without retrying. The bundle endpoint serves the
// hub's Options.BundleDir; workers verify downloads against the
// digest their lease's BundleRef carried, so the endpoint itself
// needs no integrity handshake.
func (h *Hub) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /dist/claim", h.handleClaim)
	mux.HandleFunc("POST /dist/heartbeat", h.handleHeartbeat)
	mux.HandleFunc("POST /dist/complete", h.handleComplete)
	mux.HandleFunc("GET /bundles/{fingerprint}", h.handleBundle)
}

// handleClaim scans live jobs in id order for claimable cells; all
// cells of one response come from one job.
func (h *Hub) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "dist: bad claim request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Worker == "" {
		http.Error(w, "dist: claim needs a worker id", http.StatusBadRequest)
		return
	}
	allDone := true
	for _, job := range h.jobs() {
		c := h.coordinator(job)
		if c == nil {
			continue
		}
		grants, done, err := c.ClaimBatch(req.Worker, req.Methods, req.Max)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if len(grants) > 0 {
			resp := ClaimResponse{Status: "cell", Job: job}
			for _, g := range grants {
				resp.Cells = append(resp.Cells, CellGrant{
					Lease: g.Lease, TTLMS: g.TTL.Milliseconds(),
					Key: g.Cell.Key, Index: g.Cell.Index,
					Scenario: g.Cell.Scenario, Method: g.Cell.Method.Name,
					SkipFit: g.SkipFit, KeepFinalState: g.KeepFinalState,
					Bundles: g.Bundles,
				})
			}
			writeJSON(w, resp)
			return
		}
		if !done {
			allDone = false
		}
	}
	status := "idle"
	if allDone {
		status = "done"
	}
	writeJSON(w, ClaimResponse{Status: status, RetryMS: h.opts.ClaimRetry.Milliseconds()})
}

// handleHeartbeat extends the request's leases; only an all-gone batch
// is 410.
func (h *Hub) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "dist: bad heartbeat request: "+err.Error(), http.StatusBadRequest)
		return
	}
	c := h.coordinator(req.Job)
	if c == nil {
		http.Error(w, ErrUnknownJob.Error(), http.StatusGone)
		return
	}
	ttl, expired := c.HeartbeatBatch(req.Leases)
	if len(req.Leases) > 0 && len(expired) == len(req.Leases) {
		http.Error(w, ErrLeaseExpired.Error(), http.StatusGone)
		return
	}
	writeJSON(w, HeartbeatResponse{TTLMS: ttl.Milliseconds(), Expired: expired})
}

// handleBundle streams one model bundle from the hub's bundle
// directory. Fingerprints are validated (no path separators, no "..")
// before touching the filesystem; unknown fingerprints — and a hub
// with no bundle directory at all — are 404.
func (h *Hub) handleBundle(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fingerprint")
	if err := validFingerprint(fp); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if h.opts.BundleDir == "" {
		http.Error(w, "dist: no bundle directory configured", http.StatusNotFound)
		return
	}
	path := filepath.Join(h.opts.BundleDir, fp+bundleExt)
	f, err := os.Open(path)
	if err != nil {
		http.Error(w, "dist: unknown bundle fingerprint", http.StatusNotFound)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	if st, err := f.Stat(); err == nil {
		w.Header().Set("Content-Length", fmt.Sprintf("%d", st.Size()))
	}
	io.Copy(w, f)
}

// handleComplete journals one finished cell.
func (h *Hub) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "dist: bad complete request: "+err.Error(), http.StatusBadRequest)
		return
	}
	c := h.coordinator(req.Job)
	if c == nil {
		http.Error(w, ErrUnknownJob.Error(), http.StatusGone)
		return
	}
	if err := c.Complete(req.Lease, req.Record, req.Transient); err != nil {
		writeRPCError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeRPCError maps coordinator errors onto wire status codes: lease
// preemptions are 410 Gone (discard, do not retry), everything else
// 500 (transient from the worker's point of view).
func writeRPCError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrLeaseExpired) || errors.Is(err, ErrUnknownJob) {
		http.Error(w, err.Error(), http.StatusGone)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing to do but note it in the status
		// already sent. The client's decode error surfaces it.
		_ = err
	}
}

// LeaseTTL returns the hub's effective lease TTL (for display and
// worker pacing defaults).
func (h *Hub) LeaseTTL() time.Duration { return h.opts.LeaseTTL }
