package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"dlpic/internal/campaign"
)

// Client is a worker's RPC handle to a coordinator hub. It carries the
// fault-injection seam: every RPC consults the FaultPlan (keyed by RPC
// kind and a per-kind call counter) before and after the wire, so a
// chaos run's fault schedule is a pure function of the plan's seed.
type Client struct {
	base   string
	hc     *http.Client
	faults *FaultPlan
	counts map[string]int
}

// NewClient returns a client for the coordinator at base (e.g.
// "http://127.0.0.1:8080"). plan may be nil for a fault-free client.
func NewClient(base string, plan *FaultPlan) *Client {
	return &Client{
		base:   strings.TrimRight(base, "/"),
		hc:     &http.Client{Timeout: 30 * time.Second},
		faults: plan,
		counts: make(map[string]int),
	}
}

// Claim asks for up to max cells to execute (max <= 0 asks for one).
func (c *Client) Claim(worker string, methods []string, max int) (ClaimResponse, error) {
	var resp ClaimResponse
	err := c.do("claim", "/dist/claim", ClaimRequest{Worker: worker, Methods: methods, Max: max}, &resp)
	return resp, err
}

// Heartbeat extends the given leases of a job in one RPC and returns
// the refreshed TTL plus the leases the coordinator no longer honors
// (per-lease preemption). An all-gone batch surfaces as
// ErrLeaseExpired, like the single-lease protocol always did.
func (c *Client) Heartbeat(job string, leases []string) (time.Duration, []string, error) {
	var resp HeartbeatResponse
	err := c.do("heartbeat", "/dist/heartbeat", HeartbeatRequest{Job: job, Leases: leases}, &resp)
	return time.Duration(resp.TTLMS) * time.Millisecond, resp.Expired, err
}

// FetchBundle downloads one model bundle from the coordinator's
// bundle endpoint and returns its raw bytes. Digest verification is
// the cache's job (BundleCache.Get) — this is just the transport, and
// like every other RPC it runs through the fault seam (kind
// "bundle"), so chaos plans cover mid-download failures too.
func (c *Client) FetchBundle(fingerprint string) ([]byte, error) {
	const kind = "bundle"
	var f faultDecision
	if c.faults != nil {
		n := c.counts[kind]
		c.counts[kind] = n + 1
		f = c.faults.decide(kind, n)
	}
	if f.drop {
		return nil, transientError("dist: injected fault: dropped bundle fetch")
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	hr, err := c.hc.Get(c.base + "/bundles/" + url.PathEscape(fingerprint))
	if err != nil {
		return nil, transientError(fmt.Sprintf("dist: bundle fetch: %v", err))
	}
	defer hr.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hr.Body, 1<<30))
	if err != nil {
		return nil, transientError(fmt.Sprintf("dist: bundle fetch read: %v", err))
	}
	switch {
	case hr.StatusCode >= 500:
		return nil, transientError(fmt.Sprintf("dist: bundle fetch: %s: %s", hr.Status, strings.TrimSpace(string(data))))
	case hr.StatusCode >= 400:
		return nil, fmt.Errorf("dist: bundle fetch %q: %s: %s", fingerprint, hr.Status, strings.TrimSpace(string(data)))
	}
	if f.err {
		return nil, transientError("dist: injected fault: discarded bundle response")
	}
	return data, nil
}

// Complete reports a finished cell for journaling.
func (c *Client) Complete(job, lease string, rec campaign.Record, transient bool) error {
	return c.do("complete", "/dist/complete", CompleteRequest{
		Job: job, Lease: lease, Record: rec, Transient: transient,
	}, nil)
}

// do runs one RPC with fault injection. A "drop" fault suppresses the
// request entirely; a "delay" fault sleeps before sending; an "err"
// fault sends the request but discards its response. Both drop and err
// surface as transient errors, so the caller's normal retry/preemption
// classification absorbs them — err faults in particular exercise the
// at-most-once journaling guard, because the coordinator may have
// applied an RPC whose response the worker never saw.
func (c *Client) do(kind, path string, req, resp any) error {
	var f faultDecision
	if c.faults != nil {
		n := c.counts[kind]
		c.counts[kind] = n + 1
		f = c.faults.decide(kind, n)
	}
	if f.drop {
		return transientError(fmt.Sprintf("dist: injected fault: dropped %s rpc", kind))
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("dist: marshal %s request: %w", kind, err)
	}
	hr, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		// Transport failures (refused connections during a coordinator
		// restart, timeouts) are transient by classification already;
		// wrap to make the RPC kind visible.
		return transientError(fmt.Sprintf("dist: %s rpc: %v", kind, err))
	}
	defer hr.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(hr.Body, 64<<20))
	switch {
	case hr.StatusCode == http.StatusGone:
		return ErrLeaseExpired
	case hr.StatusCode >= 500:
		return transientError(fmt.Sprintf("dist: %s rpc: %s: %s", kind, hr.Status, strings.TrimSpace(string(msg))))
	case hr.StatusCode >= 400:
		return fmt.Errorf("dist: %s rpc: %s: %s", kind, hr.Status, strings.TrimSpace(string(msg)))
	}
	if f.err {
		return transientError(fmt.Sprintf("dist: injected fault: discarded %s response", kind))
	}
	if resp != nil {
		if err := json.Unmarshal(msg, resp); err != nil {
			return transientError(fmt.Sprintf("dist: decode %s response: %v", kind, err))
		}
	}
	return nil
}
