package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DefaultCacheEntries is the bundle-cache capacity when
// NewBundleCache is given a non-positive max.
const DefaultCacheEntries = 8

// BundleCache is a worker's on-disk LRU cache of downloaded model
// bundles, keyed by fingerprint. Every insert is digest-verified
// against the lease's BundleRef and written atomically (tmp + rename),
// so a worker killed mid-download leaves no entry and a corrupted
// transfer never becomes one. The cache is what turns "one download
// per cell" into "one download per worker": the first cell of a
// fingerprint fetches, every later cell loads the local file.
type BundleCache struct {
	dir string
	max int

	mu sync.Mutex
	// lru holds the cached fingerprints, least recently used first.
	lru []string
}

// NewBundleCache opens (creating if needed) an on-disk cache at dir
// holding at most max bundles (<= 0 selects DefaultCacheEntries).
// Entries a previous worker process left behind are adopted in sorted
// order; their bytes are digest-verified on first use, not on open.
func NewBundleCache(dir string, max int) (*BundleCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("dist: bundle cache needs a directory")
	}
	if max <= 0 {
		max = DefaultCacheEntries
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: bundle cache dir: %w", err)
	}
	c := &BundleCache{dir: dir, max: max}
	paths, err := filepath.Glob(filepath.Join(dir, "*"+bundleExt))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	for _, p := range paths {
		c.lru = append(c.lru, strings.TrimSuffix(filepath.Base(p), bundleExt))
	}
	return c, nil
}

// path is the on-disk location of one fingerprint's bundle.
func (c *BundleCache) path(fp string) string {
	return filepath.Join(c.dir, fp+bundleExt)
}

// Entries returns the cached fingerprints, least recently used first.
func (c *BundleCache) Entries() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.lru...)
}

// touchLocked moves fp to the most-recently-used end (appending it if
// absent). Callers hold c.mu.
func (c *BundleCache) touchLocked(fp string) {
	for i, e := range c.lru {
		if e == fp {
			c.lru = append(c.lru[:i], c.lru[i+1:]...)
			break
		}
	}
	c.lru = append(c.lru, fp)
}

// evictLocked drops least-recently-used entries until the cache fits
// its capacity. Callers hold c.mu.
func (c *BundleCache) evictLocked() {
	for len(c.lru) > c.max {
		victim := c.lru[0]
		c.lru = c.lru[1:]
		os.Remove(c.path(victim))
	}
}

// Get returns the local path of ref's bundle, fetching and caching it
// via fetch on a miss. hit reports whether the bytes were already
// cached (and verified against ref.Digest). A cached file that no
// longer hashes to the ref's digest — corruption, or a stale file from
// an earlier incompatible run — is discarded and refetched rather than
// served. A fetched payload that hashes wrong is rejected with a
// transient error (the retry machinery's business) and never touches
// the cache.
func (c *BundleCache) Get(ref BundleRef, fetch func() ([]byte, error)) (path string, hit bool, err error) {
	if err := validFingerprint(ref.Fingerprint); err != nil {
		return "", false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.path(ref.Fingerprint)
	if data, err := os.ReadFile(p); err == nil {
		if digestOf(data) == ref.Digest {
			c.touchLocked(ref.Fingerprint)
			return p, true, nil
		}
		// Cached bytes no longer match the coordinator's digest: drop
		// the entry and fall through to a fresh fetch.
		os.Remove(p)
		c.dropLocked(ref.Fingerprint)
	}
	data, err := fetch()
	if err != nil {
		return "", false, err
	}
	if got := digestOf(data); got != ref.Digest {
		return "", false, transientError(fmt.Sprintf(
			"dist: bundle %s digest mismatch: got %s, want %s (rejected)",
			ref.Fingerprint, got, ref.Digest))
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", false, fmt.Errorf("dist: cache bundle %s: %w", ref.Fingerprint, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return "", false, fmt.Errorf("dist: cache bundle %s: %w", ref.Fingerprint, err)
	}
	c.touchLocked(ref.Fingerprint)
	c.evictLocked()
	return p, false, nil
}

// dropLocked removes fp from the LRU list (the file is the caller's
// business). Callers hold c.mu.
func (c *BundleCache) dropLocked(fp string) {
	for i, e := range c.lru {
		if e == fp {
			c.lru = append(c.lru[:i], c.lru[i+1:]...)
			return
		}
	}
}

// digestOf is the cache's content hash: hex SHA-256, matching
// BundleRefFromFile.
func digestOf(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
