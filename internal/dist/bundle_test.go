package dist

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dlpic/internal/campaign"
	"dlpic/internal/core"
	"dlpic/internal/phasespace"
	"dlpic/internal/pic"
	"dlpic/internal/sweep"
)

// writeBundle writes fake bundle bytes under a store-shaped name and
// returns (path, ref).
func writeBundle(t *testing.T, dir, method, fingerprint string, data []byte) (string, BundleRef) {
	t.Helper()
	path := filepath.Join(dir, fingerprint+bundleExt)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ref, err := BundleRefFromFile(method, path)
	if err != nil {
		t.Fatal(err)
	}
	return path, ref
}

// TestBundleCacheDigestMismatch: a fetched payload that hashes wrong is
// rejected with a transient error and never cached; a cached file that
// rots is discarded and refetched rather than served.
func TestBundleCacheDigestMismatch(t *testing.T) {
	dir := t.TempDir()
	_, ref := writeBundle(t, t.TempDir(), "mlp", "mlp-0011223344556677", []byte("genuine model bytes"))
	cache, err := NewBundleCache(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Tampered download: rejected, transient, nothing cached.
	_, _, err = cache.Get(ref, func() ([]byte, error) { return []byte("tampered"), nil })
	if err == nil || !campaign.Transient(err) || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("tampered fetch = %v, want transient digest-mismatch error", err)
	}
	if got := cache.Entries(); len(got) != 0 {
		t.Fatalf("rejected payload entered the cache: %v", got)
	}
	if _, err := os.Stat(cache.path(ref.Fingerprint)); !os.IsNotExist(err) {
		t.Fatal("rejected payload left a file behind")
	}
	// Genuine download: cached, then a hit.
	p, hit, err := cache.Get(ref, func() ([]byte, error) { return []byte("genuine model bytes"), nil })
	if err != nil || hit {
		t.Fatalf("first genuine fetch = (%q, %v, %v)", p, hit, err)
	}
	if _, hit, err = cache.Get(ref, func() ([]byte, error) {
		t.Fatal("cache hit still fetched")
		return nil, nil
	}); err != nil || !hit {
		t.Fatalf("second get = (hit=%v, %v), want cache hit", hit, err)
	}
	// Rot the cached file: the next get refetches instead of serving it.
	if err := os.WriteFile(cache.path(ref.Fingerprint), []byte("bitrot"), 0o644); err != nil {
		t.Fatal(err)
	}
	fetched := false
	if _, hit, err = cache.Get(ref, func() ([]byte, error) {
		fetched = true
		return []byte("genuine model bytes"), nil
	}); err != nil || hit || !fetched {
		t.Fatalf("rotten entry get = (hit=%v, fetched=%v, %v), want refetch", hit, fetched, err)
	}
}

// TestBundleCacheEvictionOrder: the cache evicts least-recently-used
// first, a hit refreshes recency, and eviction removes the file.
func TestBundleCacheEvictionOrder(t *testing.T) {
	src := t.TempDir()
	cache, err := NewBundleCache(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var refs []BundleRef
	for i := 0; i < 3; i++ {
		data := []byte(fmt.Sprintf("model %d", i))
		_, ref := writeBundle(t, src, "mlp", fmt.Sprintf("mlp-%016x", i), data)
		refs = append(refs, ref)
	}
	fetcher := func(i int) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte(fmt.Sprintf("model %d", i)), nil }
	}
	for i := 0; i < 2; i++ {
		if _, _, err := cache.Get(refs[i], fetcher(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 0 so 1 becomes the LRU victim.
	if _, hit, err := cache.Get(refs[0], fetcher(0)); err != nil || !hit {
		t.Fatalf("touch = (hit=%v, %v)", hit, err)
	}
	if _, _, err := cache.Get(refs[2], fetcher(2)); err != nil {
		t.Fatal(err)
	}
	want := []string{refs[0].Fingerprint, refs[2].Fingerprint}
	if got := cache.Entries(); !reflect.DeepEqual(got, want) {
		t.Fatalf("entries after eviction = %v, want %v", got, want)
	}
	if _, err := os.Stat(cache.path(refs[1].Fingerprint)); !os.IsNotExist(err) {
		t.Fatal("evicted bundle's file survived")
	}
	// A fresh cache over the same directory adopts the survivors.
	cache2, err := NewBundleCache(cache.dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := cache2.Entries(); len(got) != 2 {
		t.Fatalf("reopened cache adopted %v, want 2 entries", got)
	}
}

// TestBatchedClaimLeaseAccounting: a batch's leases are independent —
// letting one expire returns only that cell to the pool, the siblings'
// leases keep working, and the expired lease's late completion is
// rejected. Also pins the fair-share cap: once a second claimer is
// seen, one worker cannot drain the whole pool in a single batch.
func TestBatchedClaimLeaseAccounting(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	spec := tinySpec(4, 5)
	c, err := NewCoordinator("job", filepath.Join(dir, "j.jsonl"), spec, Options{
		LeaseTTL: time.Second, Clock: clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	grants, done, err := c.ClaimBatch("wA", nil, 3)
	if err != nil || done || len(grants) != 3 {
		t.Fatalf("batch claim = (%d grants, done=%v, %v), want 3", len(grants), done, err)
	}
	// Heartbeat only the first two; the third goes silent past the TTL.
	clock.Advance(700 * time.Millisecond)
	live := []string{grants[0].Lease, grants[1].Lease}
	if _, expired := c.HeartbeatBatch(live); len(expired) != 0 {
		t.Fatalf("live leases reported expired: %v", expired)
	}
	clock.Advance(700 * time.Millisecond)
	// 1.4s total: the un-heartbeated third lease is past its 1s TTL, the
	// extended siblings are not.
	_, expired := c.HeartbeatBatch([]string{grants[0].Lease, grants[1].Lease, grants[2].Lease})
	if !reflect.DeepEqual(expired, []string{grants[2].Lease}) {
		t.Fatalf("expired = %v, want exactly the silent sibling %q", expired, grants[2].Lease)
	}
	// The expired cell is re-leasable; the siblings' cells are not (the
	// pool also holds the never-claimed 4th cell, so accept either, but
	// the live siblings must stay off the market).
	g2, _, err := c.Claim("wB", nil)
	if err != nil || g2 == nil {
		t.Fatalf("reclaim after sibling expiry: (%v, %v)", g2, err)
	}
	if g2.Cell.Key == grants[0].Cell.Key || g2.Cell.Key == grants[1].Cell.Key {
		t.Fatalf("sibling expiry released a live lease's cell %q", g2.Cell.Key)
	}
	// The expired lease's late completion journals nothing.
	rec := runGrant(grants[2])
	if err := c.Complete(grants[2].Lease, rec, false); err != ErrLeaseExpired {
		t.Fatalf("stale sibling completion = %v, want ErrLeaseExpired", err)
	}
	// The live siblings complete normally.
	for _, g := range grants[:2] {
		if err := c.Complete(g.Lease, runGrant(g), false); err != nil {
			t.Fatalf("live sibling completion: %v", err)
		}
	}
	// Fair share on a fresh pool: once two claimers are seen, a max=4
	// batch over 3 eligible cells grants ceil(3/2)=2, not all 3.
	c2, err := NewCoordinator("job2", filepath.Join(dir, "j2.jsonl"), spec, Options{
		LeaseTTL: time.Second, Clock: clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g, _, err := c2.Claim("wB", nil); err != nil || g == nil {
		t.Fatalf("registering claim: (%v, %v)", g, err)
	}
	batch, _, err := c2.ClaimBatch("wA", nil, 4)
	if err != nil || len(batch) != 2 {
		t.Fatalf("fair-share batch = %d grants (%v), want ceil(3/2)=2", len(batch), err)
	}
}

// TestBundleEndpointAndFaultPlan: the hub serves bundles by
// fingerprint, rejects traversal shapes, 404s unknowns, and the client
// fault seam covers the bundle kind — a bundle-scoped drop plan kills
// downloads deterministically without touching the lease RPCs.
func TestBundleEndpointAndFaultPlan(t *testing.T) {
	bundleDir := t.TempDir()
	data := []byte("weights weights weights")
	_, ref := writeBundle(t, bundleDir, "mlp", "mlp-00aa11bb22cc33dd", data)

	hub := NewHub(Options{BundleDir: bundleDir})
	mux := http.NewServeMux()
	hub.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Clean fetch round-trips the bytes.
	clean := NewClient(srv.URL, nil)
	got, err := clean.FetchBundle(ref.Fingerprint)
	if err != nil || string(got) != string(data) {
		t.Fatalf("FetchBundle = (%d bytes, %v)", len(got), err)
	}
	// Unknown fingerprint is a permanent (4xx) failure, not a transient.
	if _, err := clean.FetchBundle("mlp-ffffffffffffffff"); err == nil || campaign.Transient(err) {
		t.Fatalf("unknown fingerprint fetch = %v, want permanent error", err)
	}
	// Traversal shapes are rejected before the filesystem.
	for _, fp := range []string{"..", "a/../b", ".hidden", ""} {
		resp, err := http.Get(srv.URL + "/bundles/" + fp)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode < 400 {
			t.Fatalf("fingerprint %q served with status %d", fp, resp.StatusCode)
		}
	}
	// A bundle-scoped drop plan: every bundle fetch drops (transient),
	// while claim RPCs run fault-free.
	faulty := NewClient(srv.URL, &FaultPlan{Seed: 5, Kinds: map[string]*FaultPlan{
		"bundle": {Drop: 1},
	}})
	for i := 0; i < 3; i++ {
		if _, err := faulty.FetchBundle(ref.Fingerprint); err == nil || !campaign.Transient(err) {
			t.Fatalf("bundle fetch %d under drop=1 plan = %v, want transient drop", i, err)
		}
	}
	if _, err := faulty.Claim("w", nil, 1); err != nil {
		t.Fatalf("claim perturbed by bundle-scoped plan: %v", err)
	}
}

// TestEndToEndBundleBackedDigest is the tentpole acceptance in
// miniature: a campaign whose method is bundle-backed runs through the
// hub on workers that have no local factory for it — they fetch the
// bundle once, serve later cells from cache, and the distributed
// digest is bit-identical to the serial run's. Injected bundle-fetch
// drops on one worker are absorbed by the in-cell retry.
func TestEndToEndBundleBackedDigest(t *testing.T) {
	factory := func(sc sweep.Scenario) (pic.FieldMethod, error) {
		spec := phasespace.DefaultSpec(sc.Cfg.Length)
		spec.NX = sc.Cfg.Cells
		return core.NewOracleSolver(sc.Cfg, spec)
	}
	spec := tinySpec(3, 5)
	spec.Opts.Methods = []sweep.MethodSpec{{Name: "oracle-dl", Factory: factory}}
	spec.Scenarios = sweep.Grid(tinyBase(), []float64{0.15, 0.16, 0.17}, []float64{0.01}, 1, 5, 3)
	serial, err := campaign.Run("", spec)
	if err != nil {
		t.Fatal(err)
	}
	want := campaign.Digest(serial)

	// The "trained bundle" the coordinator ships; its bytes stand in for
	// gob-encoded weights (the test factory carries its own weights, so
	// any payload exercises the transfer/verify/cache path).
	bundleDir := t.TempDir()
	path, ref := writeBundle(t, bundleDir, "oracle-dl", "oracle-dl-0123456789abcdef", []byte("oracle weights"))

	hub := NewHub(Options{LeaseTTL: 2 * time.Second, ClaimRetry: 10 * time.Millisecond, BundleDir: bundleDir})
	mux := http.NewServeMux()
	hub.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	journal := filepath.Join(t.TempDir(), "job.jsonl")
	type out struct {
		results []sweep.Result
		err     error
	}
	doneCh := make(chan out, 1)
	go func() {
		results, err := hub.Run("job", journal, spec, ref)
		doneCh <- out{results, err}
	}()

	var wg sync.WaitGroup
	logs := make([]*strings.Builder, 2)
	for i := 0; i < 2; i++ {
		logs[i] = &strings.Builder{}
		var plan *FaultPlan
		if i == 1 {
			// Drop roughly half this worker's bundle fetches; the
			// in-cell retry must ride through without burning cell
			// attempts.
			plan = &FaultPlan{Seed: 1, Kinds: map[string]*FaultPlan{"bundle": {Drop: 0.5}}}
		}
		cache, err := NewBundleCache(filepath.Join(t.TempDir(), "cache"), 2)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorker(WorkerOptions{
			ID:            fmt.Sprintf("w%d", i),
			Client:        NewClient(srv.URL, plan),
			BundleMethods: []string{"oracle-dl"},
			Cache:         cache,
			BundleMethod: func(method, bundlePath string) (sweep.MethodSpec, error) {
				data, err := os.ReadFile(bundlePath)
				if err != nil {
					return sweep.MethodSpec{}, err
				}
				if string(data) != "oracle weights" {
					return sweep.MethodSpec{}, fmt.Errorf("bundle bytes corrupted: %q", data)
				}
				return sweep.MethodSpec{Name: method, Factory: factory}, nil
			},
			ClaimBatch:   2,
			Poll:         5 * time.Millisecond,
			Retry:        campaign.RetryPolicy{BaseDelay: 2 * time.Millisecond, Seed: uint64(i)},
			ExitWhenDone: true,
			Log:          logs[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(func() bool { return false })
		}()
	}

	res := <-doneCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	wg.Wait()
	if err := sweep.FirstError(res.results); err != nil {
		t.Fatal(err)
	}
	if got := campaign.Digest(res.results); got != want {
		t.Fatalf("bundle-backed distributed digest %s != serial %s", got, want)
	}
	// One download per worker, cache hits after: across the fleet the
	// download count equals the number of workers that ran cells, and
	// any worker that ran more than one cell logged a cache hit.
	for i, lg := range logs {
		s := lg.String()
		downloads := strings.Count(s, "downloaded and cached")
		hits := strings.Count(s, "cache hit")
		starts := strings.Count(s, ": start (lease")
		if starts > 0 && downloads != 1 {
			t.Fatalf("worker %d ran %d cells with %d downloads, want exactly 1:\n%s", i, starts, downloads, s)
		}
		if starts > 1 && hits != starts-1 {
			t.Fatalf("worker %d ran %d cells with %d cache hits, want %d:\n%s", i, starts, hits, starts-1, s)
		}
	}
	// The shipped file never changed (workers fetched copies).
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
