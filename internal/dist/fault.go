package dist

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"time"

	"dlpic/internal/rng"
)

// FaultPlan is a deterministic schedule of injected faults on the RPC
// boundary: whether the n-th RPC of a given kind is dropped, delayed,
// or has its response discarded is a pure function of (Seed, kind, n).
// Two workers running the same plan against the same claim sequence
// inject the identical faults, so chaos runs are reproducible — which
// is what lets `make smoke-dist` assert a bit-exact digest under
// fault injection.
type FaultPlan struct {
	// Seed keys the fault stream.
	Seed uint64
	// Drop is the probability an RPC is suppressed before sending.
	Drop float64
	// Err is the probability a sent RPC's response is discarded — the
	// nastiest fault, because the coordinator may have applied it.
	Err float64
	// DelayP is the probability an RPC is delayed by Delay first.
	DelayP float64
	// Delay is the injected latency for DelayP-selected RPCs.
	Delay time.Duration
	// Kinds scopes a fault schedule to one RPC kind ("claim",
	// "heartbeat", "complete", "bundle"): an RPC whose kind has an
	// entry draws its fate from that entry (seeded by the parent Seed
	// when the entry's own Seed is zero) instead of the plan-wide
	// probabilities. This is how a chaos run targets the bundle
	// endpoint specifically — e.g. stall only downloads to widen a
	// kill window — without perturbing the lease protocol's schedule.
	Kinds map[string]*FaultPlan `json:"kinds,omitempty"`
}

// faultKinds are the RPC kinds a plan may scope faults to.
var faultKinds = map[string]bool{"claim": true, "heartbeat": true, "complete": true, "bundle": true}

// faultDecision is the drawn fate of one RPC.
type faultDecision struct {
	drop  bool
	err   bool
	delay time.Duration
}

// decide draws the fate of the n-th RPC of the given kind. The three
// draws happen in a fixed order from a stream keyed by (Seed, kind, n),
// so adding or removing one fault probability never reshuffles the
// others' schedule.
func (p *FaultPlan) decide(kind string, n int) faultDecision {
	if p == nil {
		return faultDecision{}
	}
	if sub, ok := p.Kinds[kind]; ok && sub != nil {
		scoped := *sub
		if scoped.Seed == 0 {
			scoped.Seed = p.Seed
		}
		scoped.Kinds = nil
		return scoped.decide(kind, n)
	}
	if p.Drop <= 0 && p.Err <= 0 && p.DelayP <= 0 {
		return faultDecision{}
	}
	h := sha256.Sum256([]byte(fmt.Sprintf("dlpic-fault|%d|%s|%d", p.Seed, kind, n)))
	r := rng.New(binary.LittleEndian.Uint64(h[:8]))
	var f faultDecision
	f.drop = r.Float64() < p.Drop
	f.err = r.Float64() < p.Err
	if r.Float64() < p.DelayP {
		f.delay = p.Delay
	}
	return f
}

// ParseFaultPlan parses the flag syntax of a fault plan:
//
//	"seed=7,drop=0.2,err=0.1,delay=0.15:40ms,bundle.delay=1:2s"
//
// Fields may appear in any order and all are optional; delay takes
// "probability:duration". A field prefixed with an RPC kind
// ("claim.", "heartbeat.", "complete.", "bundle.") lands in that
// kind's scoped sub-plan (see FaultPlan.Kinds) instead of the
// plan-wide probabilities. An empty string is a nil (fault-free) plan.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	p := &FaultPlan{}
	for _, field := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("dist: fault plan field %q: want key=value", field)
		}
		target := p
		if kind, rest, scoped := strings.Cut(k, "."); scoped {
			if !faultKinds[kind] {
				return nil, fmt.Errorf("dist: fault plan: unknown rpc kind %q in field %q", kind, k)
			}
			if p.Kinds == nil {
				p.Kinds = map[string]*FaultPlan{}
			}
			if p.Kinds[kind] == nil {
				p.Kinds[kind] = &FaultPlan{}
			}
			target, k = p.Kinds[kind], rest
		}
		if err := target.setField(k, v); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// setField assigns one parsed key=value field of the flag syntax.
func (p *FaultPlan) setField(k, v string) error {
	switch k {
	case "seed":
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return fmt.Errorf("dist: fault plan seed %q: %w", v, err)
		}
		p.Seed = seed
	case "drop", "err":
		prob, err := strconv.ParseFloat(v, 64)
		if err != nil || prob < 0 || prob > 1 {
			return fmt.Errorf("dist: fault plan %s %q: want probability in [0,1]", k, v)
		}
		if k == "drop" {
			p.Drop = prob
		} else {
			p.Err = prob
		}
	case "delay":
		ps, ds, ok := strings.Cut(v, ":")
		if !ok {
			return fmt.Errorf("dist: fault plan delay %q: want probability:duration", v)
		}
		prob, err := strconv.ParseFloat(ps, 64)
		if err != nil || prob < 0 || prob > 1 {
			return fmt.Errorf("dist: fault plan delay probability %q: want [0,1]", ps)
		}
		d, err := time.ParseDuration(ds)
		if err != nil {
			return fmt.Errorf("dist: fault plan delay duration %q: %w", ds, err)
		}
		p.DelayP, p.Delay = prob, d
	default:
		return fmt.Errorf("dist: fault plan: unknown field %q", k)
	}
	return nil
}
