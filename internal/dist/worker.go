package dist

import (
	"fmt"
	"io"
	"time"

	"dlpic/internal/campaign"
	"dlpic/internal/sweep"
)

// WorkerOptions configures one worker process (or in-process worker
// loop in tests).
type WorkerOptions struct {
	// ID identifies the worker in leases and logs.
	ID string
	// Client is the RPC handle to the coordinator hub (NewClient).
	Client *Client
	// Methods is the worker's method registry: the backends it can
	// execute, matched to cells by name. Empty selects the traditional
	// method only.
	Methods []sweep.MethodSpec
	// BundleMethods are additional method names the worker claims and
	// serves from coordinator-shipped model bundles instead of its
	// local registry: a grant for one of these names carries BundleRefs,
	// the worker fetches them through Cache, and BundleMethod turns the
	// cached file into an executable MethodSpec. Requires Cache and
	// BundleMethod.
	BundleMethods []string
	// Cache is the worker's on-disk LRU bundle cache (NewBundleCache).
	// Required when BundleMethods is non-empty.
	Cache *BundleCache
	// BundleMethod constructs the MethodSpec of one bundle-backed
	// method from a locally cached bundle file. Required when
	// BundleMethods is non-empty. The construction must execute
	// identically to the serial registry's (experiments.BundleMethod
	// mirrors the per-call DL path), or digests diverge.
	BundleMethod func(method, path string) (sweep.MethodSpec, error)
	// ClaimBatch asks the coordinator for up to this many cells per
	// claim round-trip (<= 0 asks for one). Granted cells execute
	// sequentially with per-cell completion; all still-pending leases
	// of the batch are extended by a single heartbeat RPC per tick.
	ClaimBatch int
	// Poll paces claim retries when the coordinator reports idle and
	// gives no hint (<= 0 selects DefaultClaimRetry).
	Poll time.Duration
	// Retry paces RPC retries (claims through a restarting
	// coordinator, completes through injected faults) with the same
	// deterministic seeded-jitter schedule campaigns use for cells.
	Retry campaign.RetryPolicy
	// ExitWhenDone stops Run when the coordinator reports every job
	// done, instead of polling for future jobs. Tests and one-shot
	// workers set it; service workers poll forever.
	ExitWhenDone bool
	// Log receives worker progress lines (nil = discard).
	Log io.Writer
}

// Worker claims cells from a coordinator hub, executes them with
// sweep.RunScenario, heartbeats to keep its leases alive, and reports
// results back for journaling. It never touches the journal itself —
// a worker killed at any instant loses only its leases, never the
// campaign's consistency.
type Worker struct {
	opts        WorkerOptions
	methods     map[string]sweep.MethodSpec
	bundleNames map[string]bool
}

// NewWorker builds a worker. The methods registry is resolved like a
// sweep's — empty means traditional, unless the worker is
// bundle-methods-only, in which case it claims exactly those names.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	var methods []sweep.MethodSpec
	if len(opts.Methods) > 0 || len(opts.BundleMethods) == 0 {
		var err error
		methods, err = sweep.ResolveMethods(opts.Methods)
		if err != nil {
			return nil, err
		}
	}
	if opts.ID == "" {
		return nil, fmt.Errorf("dist: worker needs an ID")
	}
	if opts.Client == nil {
		return nil, fmt.Errorf("dist: worker needs a Client")
	}
	if len(opts.BundleMethods) > 0 && (opts.Cache == nil || opts.BundleMethod == nil) {
		return nil, fmt.Errorf("dist: bundle-backed methods need a Cache and a BundleMethod constructor")
	}
	if opts.Poll <= 0 {
		opts.Poll = DefaultClaimRetry
	}
	if opts.Log == nil {
		opts.Log = io.Discard
	}
	w := &Worker{
		opts:        opts,
		methods:     make(map[string]sweep.MethodSpec, len(methods)),
		bundleNames: make(map[string]bool, len(opts.BundleMethods)),
	}
	for _, m := range methods {
		w.methods[m.Name] = m
	}
	for _, name := range opts.BundleMethods {
		w.bundleNames[name] = true
	}
	return w, nil
}

// methodNames returns the claimable names in deterministic order for
// the claim request: the local registry's, then the bundle-backed
// ones.
func (w *Worker) methodNames() []string {
	names := make([]string, 0, len(w.methods)+len(w.opts.BundleMethods))
	for _, m := range w.opts.Methods {
		names = append(names, m.Name)
	}
	if len(names) == 0 && len(w.methods) > 0 {
		names = []string{"traditional"}
	}
	for _, name := range w.opts.BundleMethods {
		if _, dup := w.methods[name]; !dup {
			names = append(names, name)
		}
	}
	return names
}

// Run is the worker loop: claim (a batch), execute with heartbeats,
// complete per cell, repeat. It returns when stop reports true
// (checked between cells — a graceful stop never abandons a cell
// mid-execution; the rest of a claimed batch is left to lease expiry)
// or, with ExitWhenDone, when the hub reports all jobs done. Every
// error a worker can encounter is absorbed into the lease protocol:
// transient RPC failures retry with deterministic backoff, and a lost
// lease (ErrLeaseExpired) means the cell belongs to someone else now —
// the result is discarded without a word to the journal.
func (w *Worker) Run(stop func() bool) error {
	names := w.methodNames()
	claimFails := 0
	for !stop() {
		resp, err := w.opts.Client.Claim(w.opts.ID, names, w.opts.ClaimBatch)
		if err != nil {
			// A dead or restarting coordinator looks like transient
			// claim failures; back off deterministically and keep
			// trying until stopped.
			claimFails++
			w.sleepRetry("rpc|claim", claimFails)
			continue
		}
		claimFails = 0
		switch resp.Status {
		case "cell":
			w.runBatch(resp, stop)
		case "done":
			if w.opts.ExitWhenDone {
				return nil
			}
			w.idle(resp)
		default: // "idle"
			w.idle(resp)
		}
	}
	return nil
}

// idle sleeps the coordinator's retry hint (or the worker's own poll
// period) before the next claim.
func (w *Worker) idle(resp ClaimResponse) {
	d := time.Duration(resp.RetryMS) * time.Millisecond
	if d <= 0 {
		d = w.opts.Poll
	}
	time.Sleep(d)
}

// sleepRetry backs off an RPC retry on the policy's deterministic
// schedule, floored at the poll period so a zero policy still paces.
func (w *Worker) sleepRetry(key string, attempt int) {
	d := w.opts.Retry.Delay(key, attempt)
	if d <= 0 {
		d = w.opts.Poll
	}
	time.Sleep(d)
}

// batchState tracks the leases of one claimed batch through its
// sequential execution: pending leases are extended by every heartbeat
// tick, leases the coordinator reports expired are skipped (not yet
// started) or condemned (currently running).
type batchState struct {
	// pending are the leases still owed a completion, in grant order.
	pending []string
	skip    map[string]bool
}

// remove drops a lease from the pending set (completed or condemned).
func (b *batchState) remove(lease string) {
	for i, l := range b.pending {
		if l == lease {
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			return
		}
	}
}

// runBatch executes one claim's grants in order, per-cell completion,
// one heartbeat RPC per tick covering every still-pending lease of the
// batch. A lease the coordinator stops honoring is handled
// cell-granularly: a not-yet-started cell is skipped, the running
// cell's result is condemned (drained, discarded), and the siblings
// carry on.
func (w *Worker) runBatch(resp ClaimResponse, stop func() bool) {
	if len(resp.Cells) == 0 {
		return
	}
	st := &batchState{skip: make(map[string]bool)}
	for _, g := range resp.Cells {
		st.pending = append(st.pending, g.Lease)
	}
	if len(resp.Cells) > 1 {
		fmt.Fprintf(w.opts.Log, "[worker %s] claimed batch of %d cells\n", w.opts.ID, len(resp.Cells))
	}
	ttl := time.Duration(resp.Cells[0].TTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	hb := time.NewTicker(ttl / 3)
	defer hb.Stop()
	for i, g := range resp.Cells {
		if st.skip[g.Lease] {
			fmt.Fprintf(w.opts.Log, "[worker %s] cell %d: lease %s lost before start, skipping\n",
				w.opts.ID, g.Index, g.Lease)
			st.remove(g.Lease)
			continue
		}
		if i > 0 && stop() {
			// Graceful stop mid-batch: the rest of the batch is left to
			// lease expiry (no result is lost — nothing ran).
			return
		}
		w.runCell(resp.Job, g, st, hb, stop)
	}
}

// runCell executes one granted cell under the batch's heartbeats and
// reports the outcome. The execution (bundle resolution included —
// downloads happen under heartbeat cover, so a slow transfer cannot
// cost the lease) runs in its own goroutine while the worker
// heartbeats every still-pending lease of the batch; a heartbeat that
// stops honoring this cell's lease condemns the result, which is
// discarded once the run drains. Preemption by lease loss charges no
// attempt anywhere, by construction: only a Complete accepted by the
// coordinator journals anything.
func (w *Worker) runCell(job string, g CellGrant, st *batchState, hb *time.Ticker, stop func() bool) {
	fmt.Fprintf(w.opts.Log, "[worker %s] cell %d (%s, %s): start (lease %s)\n",
		w.opts.ID, g.Index, g.Scenario.Name, g.Method, g.Lease)
	resCh := make(chan sweep.Result, 1)
	go func() { resCh <- w.executeCell(g) }()

	leaseLost := false
	var res sweep.Result
running:
	for {
		select {
		case res = <-resCh:
			break running
		case <-hb.C:
			_, expired, err := w.opts.Client.Heartbeat(job, st.pending)
			switch {
			case err == nil:
				for _, lease := range expired {
					if lease == g.Lease {
						leaseLost = true
					} else {
						st.skip[lease] = true
					}
					st.remove(lease)
				}
			case campaign.Preemption(err):
				// Every lease of the batch is gone (coordinator restart
				// that lost the log, or all expired at once).
				for _, lease := range st.pending {
					if lease != g.Lease {
						st.skip[lease] = true
					}
				}
				st.pending = nil
				leaseLost = true
			default:
				// Transient heartbeat hiccup: the next tick retries.
			}
			if leaseLost {
				// Reassigned out from under us. Keep draining the run
				// (the goroutine owns real resources) but the result is
				// already condemned.
				fmt.Fprintf(w.opts.Log, "[worker %s] cell %d: lease %s lost, draining\n",
					w.opts.ID, g.Index, g.Lease)
				res = <-resCh
				break running
			}
		}
	}
	st.remove(g.Lease)
	if leaseLost {
		return
	}
	w.complete(job, g, res, stop)
}

// executeCell resolves the cell's method — from the local registry or
// from coordinator-shipped bundles — and runs the physics. Resolution
// failures become the cell's result (permanent or transient per the
// error's own classification), never a wedged lease.
func (w *Worker) executeCell(g CellGrant) sweep.Result {
	method, err := w.methodFor(g)
	if err != nil {
		return sweep.Result{Scenario: g.Scenario, Method: g.Method, Err: err}
	}
	opts := sweep.Options{SkipFit: g.SkipFit, KeepFinalState: g.KeepFinalState}
	return sweep.RunScenario(g.Scenario, method, opts)
}

// methodFor resolves one grant's method. Bundle-bearing grants go
// through the cache (one download per worker, cache hits after);
// everything else through the local registry. A bundle-backed name
// arriving without refs is a protocol bug and fails permanently —
// executing it from the local registry would silently run the wrong
// physics.
func (w *Worker) methodFor(g CellGrant) (sweep.MethodSpec, error) {
	if len(g.Bundles) == 0 {
		if w.bundleNames[g.Method] {
			return sweep.MethodSpec{}, fmt.Errorf(
				"dist: method %q is bundle-backed but the grant carries no bundle refs", g.Method)
		}
		method, ok := w.methods[g.Method]
		if !ok {
			// The coordinator filtered on our claimed names, so this is
			// a protocol bug, not a physics failure; report it as a
			// permanent cell failure rather than wedging the cell.
			return sweep.MethodSpec{}, fmt.Errorf("dist: worker %s cannot run method %q", w.opts.ID, g.Method)
		}
		return method, nil
	}
	if w.opts.Cache == nil || w.opts.BundleMethod == nil {
		return sweep.MethodSpec{}, fmt.Errorf(
			"dist: grant for method %q needs bundles but this worker has no cache (-cache-dir)", g.Method)
	}
	var path string
	for _, ref := range g.Bundles {
		p, err := w.fetchBundle(ref)
		if err != nil {
			return sweep.MethodSpec{}, err
		}
		if ref.Method == g.Method || path == "" {
			path = p
		}
	}
	return w.opts.BundleMethod(g.Method, path)
}

// maxBundleFetches bounds in-cell retries of a transiently failing
// bundle download before the failure is surfaced as the cell's
// (transient) result and the coordinator's retry budget takes over.
const maxBundleFetches = 5

// fetchBundle resolves one BundleRef to a local file through the
// worker cache, retrying transient transport failures on the worker's
// deterministic backoff schedule. The heartbeat loop keeps running
// while this blocks (it is called on the execution goroutine), so a
// stalled download costs time, not the lease.
func (w *Worker) fetchBundle(ref BundleRef) (string, error) {
	for attempt := 1; ; attempt++ {
		path, hit, err := w.opts.Cache.Get(ref, func() ([]byte, error) {
			fmt.Fprintf(w.opts.Log, "[worker %s] bundle %s: downloading from coordinator\n",
				w.opts.ID, ref.Fingerprint)
			return w.opts.Client.FetchBundle(ref.Fingerprint)
		})
		if err == nil {
			if hit {
				fmt.Fprintf(w.opts.Log, "[worker %s] bundle %s: cache hit\n", w.opts.ID, ref.Fingerprint)
			} else {
				fmt.Fprintf(w.opts.Log, "[worker %s] bundle %s: downloaded and cached (%d bytes)\n",
					w.opts.ID, ref.Fingerprint, ref.Size)
			}
			return path, nil
		}
		if !campaign.Transient(err) || attempt >= maxBundleFetches {
			return "", err
		}
		fmt.Fprintf(w.opts.Log, "[worker %s] bundle %s: fetch attempt %d failed (%v), retrying\n",
			w.opts.ID, ref.Fingerprint, attempt, err)
		w.sleepRetry("rpc|bundle|"+ref.Fingerprint, attempt)
	}
}

// complete reports one executed cell, retrying transient RPC failures
// with deterministic backoff until the coordinator accepts the record,
// rejects the lease (someone else owns the cell now — discard), or the
// worker is stopped. The record is sanitized before the wire for the
// same reason campaigns sanitize before the journal: the wire is JSON
// too, and the coordinator must journal exactly the record a serial
// run would have.
func (w *Worker) complete(job string, g CellGrant, res sweep.Result, stop func() bool) {
	transient := campaign.Transient(res.Err)
	rec, _ := campaign.NewRecord(g.Key, 0, res).Sanitized()
	for attempt := 1; ; attempt++ {
		err := w.opts.Client.Complete(job, g.Lease, rec, transient)
		if err == nil {
			fmt.Fprintf(w.opts.Log, "[worker %s] cell %d: completed (err %q)\n",
				w.opts.ID, g.Index, rec.Err)
			return
		}
		if campaign.Preemption(err) {
			fmt.Fprintf(w.opts.Log, "[worker %s] cell %d: completion rejected, lease %s gone\n",
				w.opts.ID, g.Index, g.Lease)
			return
		}
		if !campaign.Transient(err) || stop() {
			fmt.Fprintf(w.opts.Log, "[worker %s] cell %d: completion abandoned: %v\n",
				w.opts.ID, g.Index, err)
			return
		}
		w.sleepRetry("rpc|complete|"+g.Lease, attempt)
	}
}
