package dist

import (
	"fmt"
	"io"
	"time"

	"dlpic/internal/campaign"
	"dlpic/internal/sweep"
)

// WorkerOptions configures one worker process (or in-process worker
// loop in tests).
type WorkerOptions struct {
	// ID identifies the worker in leases and logs.
	ID string
	// Client is the RPC handle to the coordinator hub (NewClient).
	Client *Client
	// Methods is the worker's method registry: the backends it can
	// execute, matched to cells by name. Empty selects the traditional
	// method only.
	Methods []sweep.MethodSpec
	// Poll paces claim retries when the coordinator reports idle and
	// gives no hint (<= 0 selects DefaultClaimRetry).
	Poll time.Duration
	// Retry paces RPC retries (claims through a restarting
	// coordinator, completes through injected faults) with the same
	// deterministic seeded-jitter schedule campaigns use for cells.
	Retry campaign.RetryPolicy
	// ExitWhenDone stops Run when the coordinator reports every job
	// done, instead of polling for future jobs. Tests and one-shot
	// workers set it; service workers poll forever.
	ExitWhenDone bool
	// Log receives worker progress lines (nil = discard).
	Log io.Writer
}

// Worker claims cells from a coordinator hub, executes them with
// sweep.RunScenario, heartbeats to keep its lease alive, and reports
// results back for journaling. It never touches the journal itself —
// a worker killed at any instant loses only its lease, never the
// campaign's consistency.
type Worker struct {
	opts    WorkerOptions
	methods map[string]sweep.MethodSpec
}

// NewWorker builds a worker. The methods registry is resolved like a
// sweep's (empty = traditional).
func NewWorker(opts WorkerOptions) (*Worker, error) {
	methods, err := sweep.ResolveMethods(opts.Methods)
	if err != nil {
		return nil, err
	}
	if opts.ID == "" {
		return nil, fmt.Errorf("dist: worker needs an ID")
	}
	if opts.Client == nil {
		return nil, fmt.Errorf("dist: worker needs a Client")
	}
	if opts.Poll <= 0 {
		opts.Poll = DefaultClaimRetry
	}
	if opts.Log == nil {
		opts.Log = io.Discard
	}
	w := &Worker{opts: opts, methods: make(map[string]sweep.MethodSpec, len(methods))}
	for _, m := range methods {
		w.methods[m.Name] = m
	}
	return w, nil
}

// methodNames returns the registry's names in deterministic order for
// the claim request.
func (w *Worker) methodNames() []string {
	names := make([]string, 0, len(w.methods))
	for _, m := range w.opts.Methods {
		names = append(names, m.Name)
	}
	if len(names) == 0 {
		names = []string{"traditional"}
	}
	return names
}

// Run is the worker loop: claim, execute with heartbeats, complete,
// repeat. It returns when stop reports true (checked between cells —
// a graceful stop never abandons a cell mid-execution) or, with
// ExitWhenDone, when the hub reports all jobs
// done. Every error a worker can encounter is absorbed into the lease
// protocol: transient RPC failures retry with deterministic backoff,
// and a lost lease (ErrLeaseExpired) means the cell belongs to someone
// else now — the result is discarded without a word to the journal.
func (w *Worker) Run(stop func() bool) error {
	names := w.methodNames()
	claimFails := 0
	for !stop() {
		resp, err := w.opts.Client.Claim(w.opts.ID, names)
		if err != nil {
			// A dead or restarting coordinator looks like transient
			// claim failures; back off deterministically and keep
			// trying until stopped.
			claimFails++
			w.sleepRetry("rpc|claim", claimFails)
			continue
		}
		claimFails = 0
		switch resp.Status {
		case "cell":
			w.runCell(resp, stop)
		case "done":
			if w.opts.ExitWhenDone {
				return nil
			}
			w.idle(resp)
		default: // "idle"
			w.idle(resp)
		}
	}
	return nil
}

// idle sleeps the coordinator's retry hint (or the worker's own poll
// period) before the next claim.
func (w *Worker) idle(resp ClaimResponse) {
	d := time.Duration(resp.RetryMS) * time.Millisecond
	if d <= 0 {
		d = w.opts.Poll
	}
	time.Sleep(d)
}

// sleepRetry backs off an RPC retry on the policy's deterministic
// schedule, floored at the poll period so a zero policy still paces.
func (w *Worker) sleepRetry(key string, attempt int) {
	d := w.opts.Retry.Delay(key, attempt)
	if d <= 0 {
		d = w.opts.Poll
	}
	time.Sleep(d)
}

// runCell executes one granted cell under heartbeats and reports the
// outcome. The execution runs in its own goroutine while the worker
// heartbeats at a third of the lease TTL; a heartbeat answered with
// ErrLeaseExpired marks the lease lost, and the result — however far
// the physics got — is discarded once the run drains. Preemption by
// lease loss charges no attempt anywhere, by construction: only a
// Complete accepted by the coordinator journals anything.
func (w *Worker) runCell(resp ClaimResponse, stop func() bool) {
	method, ok := w.methods[resp.Method]
	if !ok {
		// The coordinator filtered on our claimed names, so this is a
		// protocol bug, not a physics failure; report it as a
		// permanent cell failure rather than wedging the cell.
		w.complete(resp, sweep.Result{
			Scenario: resp.Scenario, Method: resp.Method,
			Err: fmt.Errorf("dist: worker %s cannot run method %q", w.opts.ID, resp.Method),
		}, stop)
		return
	}
	fmt.Fprintf(w.opts.Log, "[worker %s] cell %d (%s, %s): start (lease %s)\n",
		w.opts.ID, resp.Index, resp.Scenario.Name, resp.Method, resp.Lease)
	opts := sweep.Options{SkipFit: resp.SkipFit, KeepFinalState: resp.KeepFinalState}
	resCh := make(chan sweep.Result, 1)
	go func() { resCh <- sweep.RunScenario(resp.Scenario, method, opts) }()

	ttl := time.Duration(resp.TTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	hb := time.NewTicker(ttl / 3)
	defer hb.Stop()
	leaseLost := false
	var res sweep.Result
running:
	for {
		select {
		case res = <-resCh:
			break running
		case <-hb.C:
			if _, err := w.opts.Client.Heartbeat(resp.Job, resp.Lease); err != nil {
				if campaign.Preemption(err) {
					// Reassigned out from under us. Keep draining the
					// run (the goroutine owns real resources) but the
					// result is already condemned.
					leaseLost = true
					fmt.Fprintf(w.opts.Log, "[worker %s] cell %d: lease %s lost, draining\n",
						w.opts.ID, resp.Index, resp.Lease)
					res = <-resCh
					break running
				}
				// Transient heartbeat hiccup: the next tick retries.
			}
		}
	}
	if leaseLost {
		return
	}
	w.complete(resp, res, stop)
}

// complete reports one executed cell, retrying transient RPC failures
// with deterministic backoff until the coordinator accepts the record,
// rejects the lease (someone else owns the cell now — discard), or the
// worker is stopped. The record is sanitized before the wire for the
// same reason campaigns sanitize before the journal: the wire is JSON
// too, and the coordinator must journal exactly the record a serial
// run would have.
func (w *Worker) complete(resp ClaimResponse, res sweep.Result, stop func() bool) {
	transient := campaign.Transient(res.Err)
	rec, _ := campaign.NewRecord(resp.Key, 0, res).Sanitized()
	for attempt := 1; ; attempt++ {
		err := w.opts.Client.Complete(resp.Job, resp.Lease, rec, transient)
		if err == nil {
			fmt.Fprintf(w.opts.Log, "[worker %s] cell %d: completed (err %q)\n",
				w.opts.ID, resp.Index, rec.Err)
			return
		}
		if campaign.Preemption(err) {
			fmt.Fprintf(w.opts.Log, "[worker %s] cell %d: completion rejected, lease %s gone\n",
				w.opts.ID, resp.Index, resp.Lease)
			return
		}
		if !campaign.Transient(err) || stop() {
			fmt.Fprintf(w.opts.Log, "[worker %s] cell %d: completion abandoned: %v\n",
				w.opts.ID, resp.Index, err)
			return
		}
		w.sleepRetry("rpc|complete|"+resp.Lease, attempt)
	}
}
