package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// Model-bundle shipping. DL methods are data plus code: the code (the
// solver implementation) ships with the worker binary, but the data —
// the trained weights — exists only where training ran. The coordinator
// therefore serves trained model bundles over GET /bundles/{fp}, and a
// lease grant carries the BundleRefs its cell needs: the fingerprint
// addressing the bundle (the experiments bundle store's
// "<name>-<trainkey>" basename) and the SHA-256 of its bytes, verified
// by the worker before a downloaded bundle enters its cache. Methods
// still cross the wire as names; the refs are how a name becomes
// executable on the other side.

// bundleExt is the on-disk extension of model bundles; fingerprints
// are bundle basenames without it.
const bundleExt = ".dlpic"

// BundleRef addresses one trained model bundle on the wire: which
// method it backs, the fingerprint it is stored and cached under, and
// the content digest the worker verifies the download against.
type BundleRef struct {
	// Method is the method registry name the bundle backs ("mlp",
	// "cnn").
	Method string `json:"method"`
	// Fingerprint is the bundle's storage identity: the experiments
	// bundle store's basename (training fingerprint included), without
	// the .dlpic extension. It addresses GET /bundles/{fingerprint} and
	// keys the worker cache.
	Fingerprint string `json:"fingerprint"`
	// Digest is the SHA-256 (hex) of the bundle bytes. A worker rejects
	// any download that hashes differently — a torn read or a
	// mid-restart swap can never poison a cache entry.
	Digest string `json:"digest"`
	// Size is the bundle's byte length (informational; logs and
	// progress).
	Size int64 `json:"size,omitempty"`
}

// BundleRefFromFile builds the wire reference of a persisted bundle:
// fingerprint from the basename, digest and size from the bytes. The
// coordinator side calls it once per job after training, so every
// grant of that job hands out the same verified identity.
func BundleRefFromFile(method, path string) (BundleRef, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BundleRef{}, fmt.Errorf("dist: bundle for method %q: %w", method, err)
	}
	fp := strings.TrimSuffix(filepath.Base(path), bundleExt)
	if err := validFingerprint(fp); err != nil {
		return BundleRef{}, err
	}
	sum := sha256.Sum256(data)
	return BundleRef{
		Method:      method,
		Fingerprint: fp,
		Digest:      hex.EncodeToString(sum[:]),
		Size:        int64(len(data)),
	}, nil
}

// fingerprintRe is the only shape a fingerprint may take: it becomes a
// path component on both the serving and the caching side, so anything
// beyond [A-Za-z0-9._-] (and any leading dot) is rejected outright
// rather than sanitized.
var fingerprintRe = regexp.MustCompile(`^[A-Za-z0-9_-][A-Za-z0-9._-]*$`)

// validFingerprint rejects fingerprints that could escape the bundle
// directory (path separators, "..") or hide as dotfiles.
func validFingerprint(fp string) error {
	if !fingerprintRe.MatchString(fp) || strings.Contains(fp, "..") {
		return fmt.Errorf("dist: invalid bundle fingerprint %q", fp)
	}
	return nil
}
