package dist

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dlpic/internal/campaign"
	"dlpic/internal/sweep"
)

// Grant is a leased cell: what a successful Claim hands a worker.
type Grant struct {
	// Lease is the lease id the worker heartbeats and completes with.
	Lease string
	// TTL is how long the lease lives without a heartbeat.
	TTL time.Duration
	// Cell is the unit of work (key, scenario, resolved method name).
	Cell campaign.Cell
	// SkipFit and KeepFinalState are the sweep options the cell must
	// run under — part of the cell's identity (they are folded into
	// the key), so the worker must honor them exactly.
	SkipFit        bool
	KeepFinalState bool
	// Bundles are the trained model bundles the cell's method needs,
	// fetchable from the coordinator's bundle endpoint (empty for
	// model-free methods).
	Bundles []BundleRef
}

// cellState tracks one campaign cell through the lease state machine:
// pending -> leased -> (settled | pending again), with settled
// absorbing. attempts counts journaled executions only — preempted
// leases (expiry, reassignment) go back to pending without charge.
type cellState struct {
	cell      campaign.Cell
	settled   bool
	res       sweep.Result
	attempts  int
	lease     string // "" when not leased
	worker    string
	expiry    time.Time
	notBefore time.Time // transient-failure backoff gate
}

// Coordinator schedules one campaign across remote workers. It is the
// single writer of the campaign journal; workers only ever execute
// cells and report records back. All lease transitions are persisted
// to the journal-adjacent lease log, so a coordinator restarted over
// the same journal path resumes with settled cells restored, live
// leases reattached, and expired ones back in the pending pool.
type Coordinator struct {
	job  string
	opts Options
	spec campaign.Spec
	// bundles maps a method name to the model bundles its cells need;
	// every grant of that method carries them.
	bundles map[string][]BundleRef

	journal *campaign.Journal
	leases  *leaseLog

	mu      sync.Mutex
	cond    *sync.Cond
	cells   []*cellState
	byLease map[string]*cellState
	// claimers are the distinct worker ids that have claimed so far;
	// batched claims divide the pending pool across them so one eager
	// worker cannot hoard the campaign's tail.
	claimers    map[string]bool
	nextSeq     uint64
	maxAttempts int
	restored    int
	closed      bool
}

// NewCoordinator plans spec's cells, opens (or resumes) the campaign
// journal at journalPath and the lease log next to it, and returns a
// coordinator ready to serve Claim/Heartbeat/Complete. Cells the
// journal already settles (successes, failures out of attempts) are
// restored bit-identically and never re-leased; unexpired leases from
// a previous coordinator incarnation stay with their workers.
//
// bundles are the trained model bundles the campaign's DL methods
// need: each grant of a method carries that method's refs, and the
// hub's bundle endpoint serves their bytes. Model-free campaigns pass
// none.
func NewCoordinator(job, journalPath string, spec campaign.Spec, opts Options, bundles ...BundleRef) (*Coordinator, error) {
	if journalPath == "" {
		return nil, fmt.Errorf("dist: coordinator needs a journal path")
	}
	cells, err := campaign.Cells(spec)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	journal, completed, err := campaign.OpenJournal(journalPath)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		job:         job,
		opts:        opts,
		spec:        spec,
		bundles:     make(map[string][]BundleRef),
		journal:     journal,
		byLease:     make(map[string]*cellState),
		claimers:    make(map[string]bool),
		maxAttempts: spec.Retry.Attempts(),
	}
	for _, ref := range bundles {
		c.bundles[ref.Method] = append(c.bundles[ref.Method], ref)
	}
	c.cond = sync.NewCond(&c.mu)
	c.cells = make([]*cellState, len(cells))
	byKey := make(map[string]*cellState, len(cells))
	for i, cell := range cells {
		cs := &cellState{cell: cell}
		if rec, ok := completed[cell.Key]; ok {
			if rec.Err == "" || rec.Attempts >= c.maxAttempts {
				cs.settled = true
				cs.res = rec.Result(cell.Scenario)
				c.restored++
			} else {
				cs.attempts = rec.Attempts
			}
		}
		c.cells[i] = cs
		byKey[cell.Key] = cs
	}
	now := opts.Clock()
	leases, active, nextSeq, err := openLeaseLog(leasePath(journalPath), now)
	if err != nil {
		journal.Close()
		return nil, err
	}
	c.leases = leases
	c.nextSeq = nextSeq
	// Reattach surviving leases in lease-id order so the release
	// records and log lines land deterministically. A lease whose cell
	// is already settled (its completion raced ahead of the release
	// record) or unknown (spec changed across the restart) is released
	// on the spot; its holder's next heartbeat gets ErrLeaseExpired and
	// the worker discards the cell as a preemption.
	ids := make([]string, 0, len(active))
	for id := range active {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st := active[id]
		cs, ok := byKey[st.key]
		if !ok || cs.settled || cs.lease != "" {
			c.leases.append(leaseRecord{Event: leaseRelease, Lease: st.lease})
			continue
		}
		cs.lease = st.lease
		cs.worker = st.worker
		cs.expiry = st.expiry
		c.byLease[st.lease] = cs
		fmt.Fprintf(c.opts.Log, "[dist] job %s: recovered lease %s cell %d (worker %s)\n",
			c.job, st.lease, cs.cell.Index, st.worker)
	}
	return c, nil
}

// expireStaleLocked sweeps leases whose deadline passed: the holder is
// presumed dead, the lease is logged expired, and the cell returns to
// the pending pool with no attempt charged. Callers hold c.mu.
func (c *Coordinator) expireStaleLocked(now time.Time) {
	ids := make([]string, 0, len(c.byLease))
	for id := range c.byLease {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		cs := c.byLease[id]
		if cs.expiry.After(now) {
			continue
		}
		fmt.Fprintf(c.opts.Log, "[dist] job %s: lease %s expired (worker %s, cell %d)\n",
			c.job, id, cs.worker, cs.cell.Index)
		c.leases.append(leaseRecord{Event: leaseExpire, Lease: id})
		delete(c.byLease, id)
		cs.lease, cs.worker = "", ""
		c.cond.Broadcast()
	}
}

// interruptedLocked reports whether the campaign's drain interrupt has
// tripped. Callers hold c.mu (the callback itself must be
// concurrency-safe per campaign.Spec).
func (c *Coordinator) interruptedLocked() bool {
	return c.spec.Interrupt != nil && c.spec.Interrupt()
}

// Claim leases the first eligible pending cell to worker: not settled,
// not currently leased, past its transient-failure backoff gate, and
// runnable by one of the worker's methods (an empty methods list
// accepts anything). It returns the grant, or (nil, false) when
// nothing is claimable right now — retry later — or (nil, true) when
// every cell is settled and the campaign is finishing.
func (c *Coordinator) Claim(worker string, methods []string) (*Grant, bool, error) {
	grants, done, err := c.ClaimBatch(worker, methods, 1)
	if len(grants) > 0 {
		return grants[0], done, err
	}
	return nil, done, err
}

// ClaimBatch leases up to max eligible pending cells to worker in one
// call, amortizing the per-claim round-trip across the batch. Each
// granted cell carries its own lease: expiry, heartbeat and completion
// accounting stay cell-granular, so one lease of a batch expiring (or
// failing) never releases its siblings. The effective batch size is
// worker-count-aware — capped at the pending pool divided by the
// number of distinct claimants seen so far — so a fleet's tail is
// spread across workers instead of queueing behind one batch. The
// bool result means the same as Claim's: every cell is settled.
func (c *Coordinator) ClaimBatch(worker string, methods []string, max int) ([]*Grant, bool, error) {
	if max <= 0 {
		max = 1
	}
	supported := func(string) bool { return true }
	if len(methods) > 0 {
		set := make(map[string]bool, len(methods))
		for _, m := range methods {
			set[m] = true
		}
		supported = func(name string) bool { return set[name] }
	}
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, true, nil
	}
	c.claimers[worker] = true
	c.expireStaleLocked(now)
	if c.interruptedLocked() {
		// Draining: grant nothing new, let outstanding leases finish.
		return nil, false, nil
	}
	done := true
	var eligible []*cellState
	for _, cs := range c.cells {
		if cs.settled {
			continue
		}
		done = false
		if cs.lease != "" || now.Before(cs.notBefore) || !supported(cs.cell.Method.Name) {
			continue
		}
		eligible = append(eligible, cs)
	}
	if len(eligible) == 0 {
		return nil, done, nil
	}
	// Fair share: never hand one worker more than its slice of the
	// eligible pool (rounded up, floored at one cell).
	fair := (len(eligible) + len(c.claimers) - 1) / len(c.claimers)
	if fair < 1 {
		fair = 1
	}
	n := min(max, fair, len(eligible))
	grants := make([]*Grant, 0, n)
	for _, cs := range eligible[:n] {
		id := fmt.Sprintf("%s.%d", worker, c.nextSeq)
		c.nextSeq++
		cs.lease = id
		cs.worker = worker
		cs.expiry = now.Add(c.opts.LeaseTTL)
		c.byLease[id] = cs
		c.leases.append(leaseRecord{
			Event: leaseGrant, Seq: c.nextSeq - 1, Lease: id,
			Key: cs.cell.Key, Worker: worker, ExpiryNS: cs.expiry.UnixNano(),
		})
		fmt.Fprintf(c.opts.Log, "[dist] job %s: lease %s cell %d method %s -> worker %s\n",
			c.job, id, cs.cell.Index, cs.cell.Method.Name, worker)
		grants = append(grants, &Grant{
			Lease: id, TTL: c.opts.LeaseTTL, Cell: cs.cell,
			SkipFit:        c.spec.Opts.SkipFit,
			KeepFinalState: c.spec.Opts.KeepFinalState,
			Bundles:        c.bundles[cs.cell.Method.Name],
		})
	}
	return grants, false, nil
}

// Heartbeat extends a live lease by the TTL and returns the new TTL.
// A lease that expired, was reassigned, or predates a restart whose
// log lost it gets ErrLeaseExpired: the worker must discard the cell.
func (c *Coordinator) Heartbeat(lease string) (time.Duration, error) {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrLeaseExpired
	}
	c.expireStaleLocked(now)
	cs, ok := c.byLease[lease]
	if !ok {
		return 0, ErrLeaseExpired
	}
	cs.expiry = now.Add(c.opts.LeaseTTL)
	c.leases.append(leaseRecord{Event: leaseExtend, Lease: lease, ExpiryNS: cs.expiry.UnixNano()})
	return c.opts.LeaseTTL, nil
}

// HeartbeatBatch extends every live lease in leases with one lock
// acquisition (the batched-claim worker's single heartbeat RPC per
// tick) and returns the subset that is no longer current — expired,
// reassigned, or lost to a restart. Expiry stays per-lease: a dead
// sibling never poisons the rest of the batch.
func (c *Coordinator) HeartbeatBatch(leases []string) (time.Duration, []string) {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	var expired []string
	if c.closed {
		return 0, append(expired, leases...)
	}
	c.expireStaleLocked(now)
	for _, lease := range leases {
		cs, ok := c.byLease[lease]
		if !ok {
			expired = append(expired, lease)
			continue
		}
		cs.expiry = now.Add(c.opts.LeaseTTL)
		c.leases.append(leaseRecord{Event: leaseExtend, Lease: lease, ExpiryNS: cs.expiry.UnixNano()})
	}
	return c.opts.LeaseTTL, expired
}

// Complete accepts a finished cell from the current holder of lease,
// journals the (sanitized) record with the attempt charged, and either
// settles the cell or — transient failure with budget left — returns
// it to the pending pool behind the retry policy's deterministic
// backoff gate. transient is the worker's campaign.Transient verdict
// on the original error, which cannot be reclassified after the error
// has been flattened to a string for the wire.
//
// A completion from anything but the cell's current lease is rejected
// with ErrLeaseExpired and journals nothing: this is the
// double-journal guard. Once a lease expires and the cell is
// re-leased, the old holder's result — no matter how far its
// execution got — can never reach the journal.
func (c *Coordinator) Complete(lease string, rec campaign.Record, transient bool) error {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrLeaseExpired
	}
	c.expireStaleLocked(now)
	cs, ok := c.byLease[lease]
	if !ok {
		return ErrLeaseExpired
	}
	if rec.Key != cs.cell.Key {
		return fmt.Errorf("dist: lease %s completion key mismatch: got %q, leased %q", lease, rec.Key, cs.cell.Key)
	}
	cs.attempts++
	rec.Attempts = cs.attempts
	rec, _ = rec.Sanitized()
	if err := c.journal.Append(rec); err != nil {
		// The attempt stands (the execution happened) but the cell
		// cannot settle without a journal line; surface the failure.
		cs.attempts--
		return err
	}
	c.leases.append(leaseRecord{Event: leaseRelease, Lease: lease})
	delete(c.byLease, lease)
	cs.lease, cs.worker = "", ""
	if rec.Err == "" || cs.attempts >= c.maxAttempts || !transient {
		cs.settled = true
		cs.res = rec.Result(cs.cell.Scenario)
		fmt.Fprintf(c.opts.Log, "[dist] job %s: cell %d settled (attempts %d, err %q)\n",
			c.job, cs.cell.Index, cs.attempts, rec.Err)
		if p := c.spec.Opts.Progress; p != nil {
			p(c.settledLocked(), len(c.cells))
		}
	} else {
		cs.notBefore = now.Add(c.spec.Retry.Delay(cs.cell.Key, cs.attempts))
		fmt.Fprintf(c.opts.Log, "[dist] job %s: cell %d transient failure (attempt %d/%d), re-leasable\n",
			c.job, cs.cell.Index, cs.attempts, c.maxAttempts)
	}
	c.cond.Broadcast()
	return nil
}

// settledLocked counts settled cells. Callers hold c.mu.
func (c *Coordinator) settledLocked() int {
	n := 0
	for _, cs := range c.cells {
		if cs.settled {
			n++
		}
	}
	return n
}

// Run blocks until every cell is settled — or, once the spec's drain
// interrupt trips, until outstanding leases resolve — then returns the
// campaign's results in input order, exactly the shape campaign.Run
// produces: settled cells carry their journaled results, drained ones
// campaign.ErrInterrupted. After Run returns the coordinator is
// closed; late RPCs get ErrLeaseExpired and journal nothing.
func (c *Coordinator) Run() ([]sweep.Result, error) {
	if p := c.spec.Opts.Progress; p != nil && c.restored > 0 {
		c.mu.Lock()
		p(c.restored, len(c.cells))
		c.mu.Unlock()
	}
	// The poker wakes the wait loop so lease expiry and the drain
	// interrupt are noticed even when no RPC arrives to notice them.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(c.opts.ClaimRetry)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.mu.Lock()
				c.expireStaleLocked(c.opts.Clock())
				c.cond.Broadcast()
				c.mu.Unlock()
			}
		}
	}()
	c.mu.Lock()
	for {
		if c.settledLocked() == len(c.cells) {
			break
		}
		if c.interruptedLocked() && len(c.byLease) == 0 {
			break
		}
		c.cond.Wait()
	}
	c.closed = true
	results := make([]sweep.Result, len(c.cells))
	for i, cs := range c.cells {
		if cs.settled {
			results[i] = cs.res
		} else {
			results[i] = sweep.Result{
				Scenario: cs.cell.Scenario, Method: cs.cell.Method.Name,
				Err: campaign.ErrInterrupted,
			}
		}
	}
	c.mu.Unlock()
	close(stop)
	wg.Wait()
	err1 := c.journal.Close()
	err2 := c.leases.Close()
	if err1 != nil {
		return results, err1
	}
	return results, err2
}
