package dist

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"dlpic/internal/campaign"
	"dlpic/internal/pic"
	"dlpic/internal/sweep"
)

// fakeClock is a scripted Options.Clock: tests advance it to force
// lease expiries without sleeping.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// tinyBase returns a seconds-scale configuration for dist tests.
func tinyBase() pic.Config {
	cfg := pic.Default()
	cfg.Cells = 32
	cfg.ParticlesPerCell = 40
	return cfg
}

// tinySpec builds a small single-method campaign spec.
func tinySpec(scenarios, steps int) campaign.Spec {
	v0s := make([]float64, scenarios)
	for i := range v0s {
		v0s[i] = 0.15 + 0.01*float64(i)
	}
	return campaign.Spec{
		Scenarios: sweep.Grid(tinyBase(), v0s, []float64{0.01}, 1, steps, 3),
		Retry:     campaign.RetryPolicy{MaxAttempts: 3, Seed: 3},
		Opts:      sweep.Options{SkipFit: true},
	}
}

// runGrant executes a granted cell inline and returns its sanitized
// record, exactly as a worker would produce it.
func runGrant(g *Grant) campaign.Record {
	res := sweep.RunScenario(g.Cell.Scenario, g.Cell.Method, sweep.Options{
		SkipFit: g.SkipFit, KeepFinalState: g.KeepFinalState,
	})
	rec, _ := campaign.NewRecord(g.Cell.Key, 0, res).Sanitized()
	return rec
}

// journalKeyCounts counts raw journal lines per key — double-journaled
// cells show up here even though LoadJournal's last-wins hides them.
func journalKeyCounts(t *testing.T, path string) map[string]int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	counts := make(map[string]int)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec campaign.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // torn tail
		}
		counts[rec.Key]++
	}
	return counts
}

// TestFaultPlanDeterministicSchedule: the fault fate of RPC (kind, n)
// is a pure function of the seed, independent across kinds, and stable
// across FaultPlan instances.
func TestFaultPlanDeterministicSchedule(t *testing.T) {
	p1 := &FaultPlan{Seed: 7, Drop: 0.3, Err: 0.2, DelayP: 0.5, Delay: time.Millisecond}
	p2 := &FaultPlan{Seed: 7, Drop: 0.3, Err: 0.2, DelayP: 0.5, Delay: time.Millisecond}
	differs := false
	for n := 0; n < 200; n++ {
		for _, kind := range []string{"claim", "heartbeat", "complete"} {
			if p1.decide(kind, n) != p2.decide(kind, n) {
				t.Fatalf("plan not deterministic at (%s, %d)", kind, n)
			}
		}
		if p1.decide("claim", n) != p1.decide("complete", n) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("fault schedule identical across RPC kinds: kind is not keyed in")
	}
	if (&FaultPlan{Seed: 9, Drop: 0.3}).decide("claim", 0) == (&FaultPlan{Seed: 10, Drop: 0.3}).decide("claim", 0) &&
		(&FaultPlan{Seed: 9, Drop: 0.3}).decide("claim", 1) == (&FaultPlan{Seed: 10, Drop: 0.3}).decide("claim", 1) &&
		(&FaultPlan{Seed: 9, Drop: 0.3}).decide("claim", 2) == (&FaultPlan{Seed: 10, Drop: 0.3}).decide("claim", 2) {
		t.Fatal("seed change left the first three draws identical")
	}
	var nilPlan *FaultPlan
	if nilPlan.decide("claim", 0) != (faultDecision{}) {
		t.Fatal("nil plan injected a fault")
	}
}

// TestParseFaultPlan pins the flag syntax.
func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("seed=7,drop=0.2,err=0.1,delay=0.15:40ms")
	if err != nil {
		t.Fatal(err)
	}
	want := &FaultPlan{Seed: 7, Drop: 0.2, Err: 0.1, DelayP: 0.15, Delay: 40 * time.Millisecond}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	if p, err := ParseFaultPlan(""); err != nil || p != nil {
		t.Fatalf("empty plan = (%v, %v), want (nil, nil)", p, err)
	}
	// Kind-scoped fields land in the kind's sub-plan, not plan-wide.
	p, err = ParseFaultPlan("seed=3,drop=0.1,bundle.delay=1:2s,bundle.drop=0.5")
	if err != nil {
		t.Fatal(err)
	}
	want = &FaultPlan{Seed: 3, Drop: 0.1, Kinds: map[string]*FaultPlan{
		"bundle": {Drop: 0.5, DelayP: 1, Delay: 2 * time.Second},
	}}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	for _, bad := range []string{"drop=2", "err=-1", "delay=40ms", "delay=0.5:nope", "seed=x", "bogus=1", "drop", "bogus.drop=0.5", "bundle.bogus=1"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}

// TestFaultPlanKindScoping: a kind-scoped sub-plan replaces the
// plan-wide probabilities for its kind only, inherits the parent seed
// when its own is zero, and leaves other kinds on the parent schedule.
func TestFaultPlanKindScoping(t *testing.T) {
	parent := &FaultPlan{Seed: 7, Drop: 0.3}
	scoped := &FaultPlan{Seed: 7, Drop: 0.3, Kinds: map[string]*FaultPlan{
		"bundle": {Drop: 1},
	}}
	for n := 0; n < 50; n++ {
		if !scoped.decide("bundle", n).drop {
			t.Fatalf("bundle rpc %d escaped a drop=1 sub-plan", n)
		}
		if scoped.decide("claim", n) != parent.decide("claim", n) {
			t.Fatalf("claim rpc %d schedule perturbed by the bundle sub-plan", n)
		}
	}
	// Zero-seed sub-plans inherit the parent seed: same schedule as a
	// standalone plan with the parent's seed.
	inherit := &FaultPlan{Seed: 9, Kinds: map[string]*FaultPlan{"bundle": {Drop: 0.4}}}
	standalone := &FaultPlan{Seed: 9, Drop: 0.4}
	for n := 0; n < 50; n++ {
		if inherit.decide("bundle", n) != standalone.decide("bundle", n) {
			t.Fatalf("zero-seed sub-plan did not inherit the parent seed at rpc %d", n)
		}
	}
}

// TestLeaseExpiryReassignsWithoutDoubleJournal drives the lease state
// machine with a scripted clock: a stalled worker's lease expires, the
// cell is re-leased, the stale holder's completion is rejected, and the
// journal records the cell exactly once with no attempt burned by the
// preemption.
func TestLeaseExpiryReassignsWithoutDoubleJournal(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "job.jsonl")
	clock := newFakeClock()
	spec := tinySpec(1, 5)
	c, err := NewCoordinator("job", journal, spec, Options{
		LeaseTTL: time.Second, Clock: clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}

	gA, done, err := c.Claim("wA", nil)
	if err != nil || done || gA == nil {
		t.Fatalf("claim A = (%v, %v, %v)", gA, done, err)
	}
	// A second claim while the lease is live gets nothing.
	if g, _, _ := c.Claim("wB", nil); g != nil {
		t.Fatal("double-leased a cell")
	}
	// Heartbeats keep the lease alive across TTL boundaries.
	clock.Advance(700 * time.Millisecond)
	if _, err := c.Heartbeat(gA.Lease); err != nil {
		t.Fatalf("heartbeat on live lease: %v", err)
	}
	clock.Advance(700 * time.Millisecond)
	if g, _, _ := c.Claim("wB", nil); g != nil {
		t.Fatal("heartbeat did not extend the lease")
	}
	// Silence past the TTL: the next claim expires and re-leases.
	clock.Advance(1100 * time.Millisecond)
	gB, done, err := c.Claim("wB", nil)
	if err != nil || done || gB == nil {
		t.Fatalf("claim B after expiry = (%v, %v, %v)", gB, done, err)
	}
	if gB.Cell.Key != gA.Cell.Key {
		t.Fatal("reassignment changed the cell")
	}
	if _, err := c.Heartbeat(gA.Lease); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("stale heartbeat = %v, want ErrLeaseExpired", err)
	}

	rec := runGrant(gB)
	// The stale holder finishes late and tries to report: rejected,
	// nothing journaled.
	if err := c.Complete(gA.Lease, rec, false); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("stale completion = %v, want ErrLeaseExpired", err)
	}
	if counts := journalKeyCounts(t, journal); len(counts) != 0 {
		t.Fatalf("stale completion journaled: %v", counts)
	}
	// The current holder reports: journaled once, attempts=1 — the
	// expired execution was a preemption, not an attempt.
	if err := c.Complete(gB.Lease, rec, false); err != nil {
		t.Fatal(err)
	}
	recs, err := campaign.LoadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if got := recs[gB.Cell.Key]; got.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (expiry must not burn budget)", got.Attempts)
	}
	results, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Err != nil {
		t.Fatalf("results = %+v", results)
	}
	// Completion against a closed coordinator is a preemption too.
	if err := c.Complete(gB.Lease, rec, false); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("post-close completion = %v", err)
	}
}

// TestTransientFailureReLeasedWithinBudget: a transient completion puts
// the cell back in the pool behind the backoff gate, and the budget
// caps total executions.
func TestTransientFailureReLeasedWithinBudget(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "job.jsonl")
	clock := newFakeClock()
	spec := tinySpec(1, 5)
	spec.Retry = campaign.RetryPolicy{MaxAttempts: 2, BaseDelay: 100 * time.Millisecond, Seed: 5}
	c, err := NewCoordinator("job", journal, spec, Options{LeaseTTL: time.Second, Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	g1, _, err := c.Claim("w", nil)
	if err != nil || g1 == nil {
		t.Fatalf("claim 1: (%v, %v)", g1, err)
	}
	failRec, _ := campaign.NewRecord(g1.Cell.Key, 0, sweep.Result{
		Scenario: g1.Cell.Scenario,
		Method:   g1.Cell.Method.Name,
		Err:      errors.New("connection reset by chaos"),
	}).Sanitized()
	if err := c.Complete(g1.Lease, failRec, true); err != nil {
		t.Fatal(err)
	}
	// Behind the backoff gate: not immediately claimable.
	if g, done, _ := c.Claim("w", nil); g != nil || done {
		t.Fatalf("claim during backoff granted (%v, done=%v)", g, done)
	}
	clock.Advance(time.Second)
	g2, _, err := c.Claim("w", nil)
	if err != nil || g2 == nil {
		t.Fatalf("claim after backoff: (%v, %v)", g2, err)
	}
	// Second transient failure exhausts MaxAttempts=2: settled failed.
	if err := c.Complete(g2.Lease, failRec, true); err != nil {
		t.Fatal(err)
	}
	if g, done, _ := c.Claim("w", nil); g != nil || !done {
		t.Fatalf("exhausted cell re-leased (%v, done=%v)", g, done)
	}
	results, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("exhausted cell reported success")
	}
	recs, err := campaign.LoadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if got := recs[g1.Cell.Key]; got.Attempts != 2 {
		t.Fatalf("attempts = %d, want exactly MaxAttempts=2", got.Attempts)
	}
}

// TestCoordinatorRestartRecoversLeases: a coordinator rebuilt over the
// same journal path reattaches unexpired leases (the worker's old
// lease id keeps working) and drops expired ones back to pending.
func TestCoordinatorRestartRecoversLeases(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "job.jsonl")
	clock := newFakeClock()
	spec := tinySpec(2, 5)
	opts := Options{LeaseTTL: time.Minute, Clock: clock.Now}
	c1, err := NewCoordinator("job", journal, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	g1, _, err := c1.Claim("w1", nil)
	if err != nil || g1 == nil {
		t.Fatalf("claim 1: (%v, %v)", g1, err)
	}
	g2, _, err := c1.Claim("w2", nil)
	if err != nil || g2 == nil {
		t.Fatalf("claim 2: (%v, %v)", g2, err)
	}
	// Settle cell 1 before the "crash" so the restart sees a journaled
	// cell, a live lease, and nothing else.
	if err := c1.Complete(g1.Lease, runGrant(g1), false); err != nil {
		t.Fatal(err)
	}
	// Crash: c1 is abandoned without Run/close, exactly like kill -9.

	// Restart before expiry: w2's lease survives with its id.
	c2, err := NewCoordinator("job", journal, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Heartbeat(g2.Lease); err != nil {
		t.Fatalf("recovered lease heartbeat: %v", err)
	}
	// The settled cell is not re-leasable; the leased cell is held.
	if g, done, _ := c2.Claim("w3", nil); g != nil || done {
		t.Fatalf("restart re-leased something (%v, done=%v)", g, done)
	}
	if err := c2.Complete(g2.Lease, runGrant(g2), false); err != nil {
		t.Fatalf("recovered lease completion: %v", err)
	}
	results, err := c2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.FirstError(results); err != nil {
		t.Fatal(err)
	}
	for key, n := range journalKeyCounts(t, journal) {
		if n != 1 {
			t.Fatalf("cell %q journaled %d times", key, n)
		}
	}

	// Restart after expiry: the lease is dropped at load and the cell
	// is immediately re-leasable (fresh journal dir to start over).
	dir2 := t.TempDir()
	journal2 := filepath.Join(dir2, "job.jsonl")
	c3, err := NewCoordinator("job", journal2, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	g3, _, err := c3.Claim("w1", nil)
	if err != nil || g3 == nil {
		t.Fatalf("claim: (%v, %v)", g3, err)
	}
	clock.Advance(2 * time.Minute)
	c4, err := NewCoordinator("job", journal2, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c4.Heartbeat(g3.Lease); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("expired lease survived restart: %v", err)
	}
	g4, _, err := c4.Claim("w4", nil)
	if err != nil || g4 == nil || g4.Cell.Key != g3.Cell.Key {
		t.Fatalf("expired cell not re-leased: (%v, %v)", g4, err)
	}
}

// TestMethodFilteredClaims: the coordinator only grants cells the
// claiming worker's method registry can execute.
func TestMethodFilteredClaims(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	spec := tinySpec(1, 5)
	spec.Opts.Methods = []sweep.MethodSpec{{Name: "traditional"}}
	c, err := NewCoordinator("job", filepath.Join(dir, "j.jsonl"), spec, Options{Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	if g, done, _ := c.Claim("w", []string{"oracle"}); g != nil || done {
		t.Fatalf("granted a cell the worker cannot run (%v, done=%v)", g, done)
	}
	if g, _, _ := c.Claim("w", []string{"oracle", "traditional"}); g == nil {
		t.Fatal("supported method refused")
	}
}

// TestLeaseLogTornTailProperty is the satellite recovery property:
// truncate the lease log at EVERY byte boundary of a mid-campaign
// snapshot and require the recovered coordinator to finish the
// campaign to the serial digest — re-leasing where grant records were
// lost, never double-journaling the settled cell, never exceeding the
// retry budget, never wedging.
func TestLeaseLogTornTailProperty(t *testing.T) {
	spec := tinySpec(2, 5)
	serial, err := campaign.Run("", spec)
	if err != nil {
		t.Fatal(err)
	}
	want := campaign.Digest(serial)

	// Build the mid-campaign state: cell 0 settled, cell 1 leased and
	// heartbeat once (so the log ends in an extend record).
	dir := t.TempDir()
	journal := filepath.Join(dir, "job.jsonl")
	clock := newFakeClock()
	opts := Options{LeaseTTL: time.Minute, Clock: clock.Now}
	c0, err := NewCoordinator("job", journal, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	g0, _, err := c0.Claim("w1", nil)
	if err != nil || g0 == nil {
		t.Fatalf("claim 0: (%v, %v)", g0, err)
	}
	g1, _, err := c0.Claim("w2", nil)
	if err != nil || g1 == nil {
		t.Fatalf("claim 1: (%v, %v)", g1, err)
	}
	if err := c0.Complete(g0.Lease, runGrant(g0), false); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Heartbeat(g1.Lease); err != nil {
		t.Fatal(err)
	}
	journalBytes, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	leaseBytes, err := os.ReadFile(leasePath(journal))
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(leaseBytes); cut++ {
		caseDir := filepath.Join(dir, fmt.Sprintf("cut-%d", cut))
		if err := os.MkdirAll(caseDir, 0o755); err != nil {
			t.Fatal(err)
		}
		j := filepath.Join(caseDir, "job.jsonl")
		if err := os.WriteFile(j, journalBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(leasePath(j), leaseBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := NewCoordinator("job", j, spec, opts)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		// Drive the campaign to completion: heartbeat the possibly
		// recovered lease, claim whatever is pending, complete it all.
		recovered := false
		if _, err := c.Heartbeat(g1.Lease); err == nil {
			recovered = true
			if err := c.Complete(g1.Lease, runGrant(g1), false); err != nil {
				t.Fatalf("cut %d: recovered-lease completion: %v", cut, err)
			}
		}
		for {
			g, done, err := c.Claim("w3", nil)
			if err != nil {
				t.Fatalf("cut %d: claim: %v", cut, err)
			}
			if g == nil {
				if !done {
					t.Fatalf("cut %d: coordinator wedged: pending cells but nothing claimable", cut)
				}
				break
			}
			if g.Cell.Key == g0.Cell.Key {
				t.Fatalf("cut %d: settled cell re-leased", cut)
			}
			if recovered {
				t.Fatalf("cut %d: cell leased twice after recovery", cut)
			}
			if err := c.Complete(g.Lease, runGrant(g), false); err != nil {
				t.Fatalf("cut %d: completion: %v", cut, err)
			}
		}
		results, err := c.Run()
		if err != nil {
			t.Fatalf("cut %d: run: %v", cut, err)
		}
		if got := campaign.Digest(results); got != want {
			t.Fatalf("cut %d: digest %s != serial %s", cut, got, want)
		}
		for key, n := range journalKeyCounts(t, j) {
			if n != 1 {
				t.Fatalf("cut %d: cell %q journaled %d times", cut, key, n)
			}
		}
	}
}

// TestEndToEndChaosDigest is the in-process chaos acceptance: a
// campaign fanned over the HTTP hub across three concurrent workers —
// one injecting deterministic drop/discard faults on every RPC kind —
// with a short lease TTL, must converge on the serial digest with no
// cell over its retry budget.
func TestEndToEndChaosDigest(t *testing.T) {
	spec := tinySpec(4, 6)
	spec.Retry = campaign.RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, Seed: 11}
	serial, err := campaign.Run("", spec)
	if err != nil {
		t.Fatal(err)
	}
	want := campaign.Digest(serial)

	hub := NewHub(Options{LeaseTTL: 2 * time.Second, ClaimRetry: 20 * time.Millisecond})
	mux := http.NewServeMux()
	hub.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	journal := filepath.Join(t.TempDir(), "job.jsonl")
	type out struct {
		results []sweep.Result
		err     error
	}
	doneCh := make(chan out, 1)
	go func() {
		results, err := hub.Run("job", journal, spec)
		doneCh <- out{results, err}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		var plan *FaultPlan
		if i == 0 {
			plan = &FaultPlan{Seed: 42, Drop: 0.3, Err: 0.3}
		}
		w, err := NewWorker(WorkerOptions{
			ID:           fmt.Sprintf("w%d", i),
			Client:       NewClient(srv.URL, plan),
			Poll:         10 * time.Millisecond,
			Retry:        campaign.RetryPolicy{BaseDelay: 5 * time.Millisecond, Seed: uint64(i)},
			ExitWhenDone: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(func() bool { return false })
		}()
	}

	res := <-doneCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	wg.Wait()
	if err := sweep.FirstError(res.results); err != nil {
		t.Fatal(err)
	}
	if got := campaign.Digest(res.results); got != want {
		t.Fatalf("distributed digest %s != serial %s", got, want)
	}
	recs, err := campaign.LoadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(serial) {
		t.Fatalf("journal holds %d cells, want %d", len(recs), len(serial))
	}
	for key, rec := range recs {
		if rec.Attempts > spec.Retry.MaxAttempts {
			t.Fatalf("cell %q executed %d times, budget %d", key, rec.Attempts, spec.Retry.MaxAttempts)
		}
	}
	// A distributed journal resumes like any other: a serial Run over
	// it restores everything bit-identically without re-running.
	again, err := campaign.Run(journal, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := campaign.Digest(again); got != want {
		t.Fatalf("journal resume digest %s != serial %s", got, want)
	}
}
