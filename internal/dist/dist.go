// Package dist fans a campaign's cells across crash-prone worker
// processes and makes the fleet converge on the same bit-exact digest
// as a serial campaign.Run. It is the robustness layer over two
// existing facts: a campaign cell is an independent, keyed,
// deterministic unit (internal/campaign), and the journal already
// tolerates torn tails and bounded retries. dist adds the scheduling
// semantics — leases, liveness, recovery — that let those facts
// survive kill -9'd workers, stalled workers and restarted
// coordinators.
//
// Roles. The coordinator owns the campaign journal exclusively:
// workers never write it. Workers claim cells over HTTP, execute
// sweep.RunScenario, heartbeat to keep their lease alive, and report
// the serialized result back; the coordinator journals it and settles
// the cell. A worker that dies mid-cell simply stops heartbeating, its
// lease expires, and the cell is re-leased to another worker — no
// attempt is charged (campaign.Preemption), so preemption can never
// burn a cell's retry budget. A worker whose result fails — really
// fails — is journaled with an attempt count, bounded by the
// campaign's RetryPolicy exactly like a serial run, with transient
// failures re-leasable after the policy's deterministic seeded-jitter
// backoff.
//
// Lease protocol. A lease is (cell key, worker id, expiry), granted by
// Claim, extended by Heartbeat, released by Complete or expiry. Every
// lease transition is appended to a journal-adjacent log
// ("<journal>.leases", torn-tail tolerant like the journal itself), so
// a restarted coordinator recovers in-flight state: unexpired leases
// keep their workers, expired ones return to the pending pool, and a
// grant lost to a torn tail merely re-leases — the completion check
// against the *current* lease id is what prevents double-journaling.
//
// Why digests stay bit-exact. Cell results are functions of (scenario
// seed, method) only — never of which worker ran them, how many times
// they were preempted, or when. The coordinator journals exactly one
// settling record per cell, the journal's floats round-trip JSON
// bit-exactly, and results assemble in input order. Any chaos schedule
// therefore produces the identical campaign.Digest, which is what
// `make smoke-dist` enforces with real kill -9 / SIGSTOP / restart
// chaos.
//
// Fault injection is a first-class seam: FaultPlan is a deterministic,
// seed-keyed schedule of drop/delay/error faults on the RPC boundary,
// so chaos runs are reproducible bit for bit.
package dist

import (
	"errors"
	"io"
	"time"
)

// DefaultLeaseTTL is the lease lifetime when Options.LeaseTTL is
// unset. Workers heartbeat at a third of the TTL, so the default
// tolerates two lost heartbeats before reassignment.
const DefaultLeaseTTL = 10 * time.Second

// DefaultClaimRetry is the idle-poll hint returned to workers when no
// cell is currently claimable.
const DefaultClaimRetry = 200 * time.Millisecond

// Options configures coordinators (and the Hub that routes RPCs to
// them). The zero value is usable.
type Options struct {
	// LeaseTTL is how long a granted or heartbeat-extended lease lives
	// without another heartbeat (<= 0 selects DefaultLeaseTTL). It
	// bounds how long a dead worker can hold a cell hostage.
	LeaseTTL time.Duration
	// ClaimRetry is the retry-after hint handed to idle workers (<= 0
	// selects DefaultClaimRetry).
	ClaimRetry time.Duration
	// Clock supplies the coordinator's notion of now, for lease expiry
	// only — wall-clock never reaches journal records or digests. Nil
	// selects the real clock; tests inject fakes to script expiries.
	Clock func() time.Time
	// BundleDir is the directory GET /bundles/{fingerprint} serves
	// trained model bundles from (the serving daemon's shared bundle
	// store). Empty disables the endpoint: bundle-bearing grants then
	// fail worker-side, so only coordinators that actually train should
	// leave it unset.
	BundleDir string
	// Log receives coordinator progress lines (nil = discard).
	Log io.Writer
}

// withDefaults resolves the option defaults.
func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = DefaultLeaseTTL
	}
	if o.ClaimRetry <= 0 {
		o.ClaimRetry = DefaultClaimRetry
	}
	if o.Clock == nil {
		o.Clock = func() time.Time {
			//determlint:ignore nondet lease expiry is liveness, not physics: wall-clock never reaches journal records or digests
			return time.Now()
		}
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	return o
}

// preemptionError is a scheduling-level rejection: the work was taken
// away, not failed. It classifies as campaign.Preemption so no retry
// budget is ever charged for it.
type preemptionError string

// Error implements error.
func (e preemptionError) Error() string { return string(e) }

// Preemption marks the error as a preemption for campaign.Preemption.
func (preemptionError) Preemption() bool { return true }

// ErrLeaseExpired rejects a heartbeat or completion whose lease is no
// longer the cell's current one — it expired, was reassigned, or was
// lost to a coordinator restart's torn lease log. Workers treat it as
// preemption: discard the cell silently and claim fresh work.
var ErrLeaseExpired error = preemptionError("dist: lease expired or reassigned")

// ErrUnknownJob rejects an RPC naming a job the hub is not currently
// coordinating (finished, drained, or never existed). Like
// ErrLeaseExpired it is preemption, not failure.
var ErrUnknownJob error = preemptionError("dist: unknown or finished job")

// transientError is a synthetic transient failure (injected faults,
// 5xx responses); campaign.Transient recognizes it via the Transient
// marker so the normal retry/backoff machinery absorbs it.
type transientError string

// Error implements error.
func (e transientError) Error() string { return string(e) }

// Transient marks the error as retryable for campaign.Transient.
func (transientError) Transient() bool { return true }

// errClosed rejects RPCs against a coordinator whose Run has finished.
var errClosed = errors.New("dist: coordinator closed")
