package batch

import (
	"strings"
	"sync"
	"testing"

	"dlpic/internal/nn"
	"dlpic/internal/rng"
)

func testNet(t *testing.T) *nn.Network {
	t.Helper()
	net, err := nn.NewMLP(nn.MLPConfig{InDim: 12, OutDim: 5, Hidden: 8, HiddenLayers: 2}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestServerMatchesPredict1 drives several concurrent clients through
// many rounds and checks every served row bitwise against a reference
// Predict1 on an independent clone of the network.
func TestServerMatchesPredict1(t *testing.T) {
	net := testNet(t)
	ref, err := nn.Clone(net)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewNetworkServer(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients, rounds = 5, 40
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		cl, err := srv.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id int, cl *Client) {
			defer wg.Done()
			defer cl.Close()
			r := rng.New(uint64(100 + id))
			in := make([]float64, srv.InDim())
			out := make([]float64, srv.OutDim())
			want := make([]float64, srv.OutDim())
			for round := 0; round < rounds; round++ {
				for i := range in {
					in[i] = r.NormFloat64()
				}
				if err := cl.Predict(in, out); err != nil {
					errs[id] = err
					return
				}
				// The reference net is only read from this goroutine's
				// critical section below; serialize access to it.
				refMu.Lock()
				ref.Predict1(in, want)
				refMu.Unlock()
				for i := range want {
					if out[i] != want[i] {
						t.Errorf("client %d round %d: out[%d] = %v, want %v", id, round, i, out[i], want[i])
						return
					}
				}
			}
		}(c, cl)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
	st := srv.Stats()
	if st.Requests != clients*rounds {
		t.Fatalf("stats.Requests = %d, want %d", st.Requests, clients*rounds)
	}
	if st.Batches == 0 || st.Batches > st.Requests {
		t.Fatalf("implausible flush count %d for %d requests", st.Batches, st.Requests)
	}
	if st.MaxBatch < 1 || st.MaxBatch > clients {
		t.Fatalf("stats.MaxBatch = %d outside [1,%d]", st.MaxBatch, clients)
	}
}

var refMu sync.Mutex

// TestSingleClientDegeneratesToPerCall checks the serial case: one
// client means every flush is a batch of one and nothing ever waits.
func TestSingleClientDegeneratesToPerCall(t *testing.T) {
	srv, err := NewNetworkServer(testNet(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := srv.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	in := make([]float64, srv.InDim())
	out := make([]float64, srv.OutDim())
	for i := 0; i < 10; i++ {
		if err := cl.Predict(in, out); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.Requests != 10 || st.Batches != 10 || st.MaxBatch != 1 {
		t.Fatalf("serial stats = %+v, want 10 batches of 1", st)
	}
}

// TestMaxBatchCap caps flushes below the client count and checks the
// server still completes and never exceeds the cap.
func TestMaxBatchCap(t *testing.T) {
	srv, err := NewNetworkServer(testNet(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const clients = 5
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		cl, err := srv.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(cl *Client) {
			defer wg.Done()
			defer cl.Close()
			in := make([]float64, srv.InDim())
			out := make([]float64, srv.OutDim())
			for i := 0; i < 20; i++ {
				if err := cl.Predict(in, out); err != nil {
					t.Error(err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	if st := srv.Stats(); st.MaxBatch > 2 {
		t.Fatalf("flush of %d rows exceeded MaxBatch 2", st.MaxBatch)
	}
}

// TestClientLifecycle covers misuse: predict after close, double close,
// shape mismatches, and use after server shutdown.
func TestClientLifecycle(t *testing.T) {
	srv, err := NewNetworkServer(testNet(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := srv.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, srv.InDim())
	out := make([]float64, srv.OutDim())
	if err := cl.Predict(in[:3], out); err == nil || !strings.Contains(err.Error(), "input length") {
		t.Fatalf("short input: err = %v", err)
	}
	if err := cl.Predict(in, out[:1]); err == nil || !strings.Contains(err.Error(), "output length") {
		t.Fatalf("short output: err = %v", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := cl.Predict(in, out); err == nil {
		t.Fatal("Predict on closed client succeeded")
	}
	srv.Close()
	srv.Close() // idempotent
	if _, err := srv.NewClient(); err == nil {
		t.Fatal("NewClient on closed server succeeded")
	}
}

// badPredictor panics, standing in for a shape-broken backend.
type badPredictor struct{}

func (badPredictor) PredictBatch(batch int, in, out []float64) { panic("boom") }

// TestPredictorPanicBecomesError checks a backend panic is delivered to
// the blocked requester as an error instead of wedging the server.
func TestPredictorPanicBecomesError(t *testing.T) {
	srv, err := NewServer(badPredictor{}, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := srv.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Predict(make([]float64, 2), make([]float64, 2))
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("want panic error, got %v", err)
	}
}

// TestNewServerValidation pins the constructor contract.
func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, 1, 1, 0); err == nil {
		t.Fatal("nil predictor accepted")
	}
	if _, err := NewServer(badPredictor{}, 0, 1, 0); err == nil {
		t.Fatal("zero input width accepted")
	}
	if _, err := NewNetworkServer(nil, 0); err == nil {
		t.Fatal("nil network accepted")
	}
}
