package batch

import (
	"errors"
	"sort"
	"sync"
)

// Pool shares live batched-inference solvers across independent sweeps
// and campaigns. Historically one Solver was constructed per sweep and
// closed with it; a long-running service runs many campaigns whose DL
// requesters should join and leave one live server instead (clients
// already register and unregister dynamically — the Pool extends that
// join/leave discipline to the server's own lifetime). Solvers are
// memoized by caller-chosen key; the first request under a key builds
// the solver (typically training or loading a model — minutes, so the
// build runs outside the pool lock and concurrent requesters for the
// same key wait for it), later requests share it. Determinism makes the
// sharing safe: a scenario's result depends only on its own request
// rows, never on which other campaigns' rows share a flush.
//
// Ownership: the Pool owns every solver it built. Callers must not
// Close a pooled solver; they stop using it (their clients unregister)
// and Close the pool itself when the service drains.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	entries map[string]*poolEntry
	closed  bool
}

// poolEntry is one memoized solver slot. building guards the window
// where the first requester constructs the solver outside the lock.
type poolEntry struct {
	building bool
	s        *Solver
}

// NewPool returns an empty solver pool.
func NewPool() *Pool {
	p := &Pool{entries: make(map[string]*poolEntry)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Solver returns the memoized solver under key, invoking build to
// construct it on first request. Concurrent calls with the same key
// block until the one in-flight build finishes and then share its
// result; a failed build is not cached — the next request retries. The
// key must capture everything the built solver depends on (model
// fingerprint inputs, batch cap): two keys never share a network, and
// one key must always describe bit-identical solvers.
func (p *Pool) Solver(key string, build func() (*Solver, error)) (*Solver, error) {
	p.mu.Lock()
	for {
		if p.closed {
			p.mu.Unlock()
			return nil, errors.New("batch: pool closed")
		}
		e := p.entries[key]
		if e == nil {
			break
		}
		if !e.building {
			s := e.s
			p.mu.Unlock()
			return s, nil
		}
		p.cond.Wait()
	}
	e := &poolEntry{building: true}
	p.entries[key] = e
	p.mu.Unlock()

	s, err := build()

	p.mu.Lock()
	if err != nil {
		delete(p.entries, key)
	} else {
		e.building = false
		e.s = s
	}
	closed := p.closed
	p.cond.Broadcast()
	p.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if closed {
		// The pool drained while we were building: Close could not see
		// this solver, so release it here instead of leaking its server.
		s.Close()
		return nil, errors.New("batch: pool closed")
	}
	return s, nil
}

// Len reports how many solvers the pool currently holds (completed
// builds only).
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.entries {
		if !e.building {
			n++
		}
	}
	return n
}

// Close stops every pooled solver and rejects further requests. Callers
// must have finished their sweeps first (a solver's clients must be
// closed before its server — the usual Solver.Close contract). Close is
// idempotent; in-flight builds complete, notice the closed pool, and
// release their solver themselves.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	keys := make([]string, 0, len(p.entries))
	for key := range p.entries {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var solvers []*Solver
	for _, key := range keys {
		if e := p.entries[key]; !e.building {
			solvers = append(solvers, e.s)
		}
	}
	p.entries = make(map[string]*poolEntry)
	p.cond.Broadcast()
	p.mu.Unlock()
	for _, s := range solvers {
		s.Close()
	}
}
