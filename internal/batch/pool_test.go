package batch

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"dlpic/internal/phasespace"
)

// slotPred is a trivial predictor for pool plumbing tests.
type slotPred struct{}

func (slotPred) PredictBatch(batch int, in, out []float64) { copy(out, in) }

func newPoolSolver(t *testing.T) *Solver {
	t.Helper()
	srv, err := NewServer(slotPred{}, 4, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &Solver{Server: srv, Spec: phasespace.GridSpec{}, Norm: phasespace.Normalizer{}}
}

// TestPoolMemoizesConcurrentBuilds: N concurrent requests for one key
// run the build exactly once and all share its solver.
func TestPoolMemoizesConcurrentBuilds(t *testing.T) {
	p := NewPool()
	defer p.Close()
	var builds atomic.Int64
	const n = 8
	got := make([]*Solver, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := p.Solver("shared", func() (*Solver, error) {
				builds.Add(1)
				return newPoolSolver(t), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = s
		}(i)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times, want 1", builds.Load())
	}
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatalf("request %d received a different solver", i)
		}
	}
	if p.Len() != 1 {
		t.Fatalf("pool holds %d solvers, want 1", p.Len())
	}
}

// TestPoolKeysAreIndependent: different keys build and hold different
// solvers.
func TestPoolKeysAreIndependent(t *testing.T) {
	p := NewPool()
	defer p.Close()
	a, err := p.Solver("a", func() (*Solver, error) { return newPoolSolver(t), nil })
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Solver("b", func() (*Solver, error) { return newPoolSolver(t), nil })
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("distinct keys shared one solver")
	}
	if p.Len() != 2 {
		t.Fatalf("pool holds %d solvers, want 2", p.Len())
	}
}

// TestPoolBuildErrorNotCached: a failed build is not memoized — the
// next request for the key retries and can succeed.
func TestPoolBuildErrorNotCached(t *testing.T) {
	p := NewPool()
	defer p.Close()
	boom := errors.New("boom")
	if _, err := p.Solver("k", func() (*Solver, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the build error", err)
	}
	s, err := p.Solver("k", func() (*Solver, error) { return newPoolSolver(t), nil })
	if err != nil || s == nil {
		t.Fatalf("retry after failed build: %v", err)
	}
}

// TestPoolClose: Close stops the pooled servers and rejects further
// requests; it is idempotent.
func TestPoolClose(t *testing.T) {
	p := NewPool()
	s, err := p.Solver("k", func() (*Solver, error) { return newPoolSolver(t), nil })
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close()
	if _, err := s.Server.NewClient(); err == nil {
		t.Fatal("pooled server still accepts clients after pool Close")
	}
	if _, err := p.Solver("k", func() (*Solver, error) { return newPoolSolver(t), nil }); err == nil {
		t.Fatal("closed pool accepted a request")
	}
}

// TestPoolCloseDuringBuild: a build in flight when the pool closes
// completes, is released, and its requester gets the closed error.
func TestPoolCloseDuringBuild(t *testing.T) {
	p := NewPool()
	started := make(chan struct{})
	release := make(chan struct{})
	errCh := make(chan error, 1)
	var built *Solver
	go func() {
		_, err := p.Solver("k", func() (*Solver, error) {
			close(started)
			<-release
			built = newPoolSolver(t)
			return built, nil
		})
		errCh <- err
	}()
	<-started
	p.Close() // does not block on the in-flight build
	close(release)
	if err := <-errCh; err == nil {
		t.Fatal("build finishing into a closed pool did not error")
	}
	if _, err := built.Server.NewClient(); err == nil {
		t.Fatal("orphaned build's server was not released")
	}
}
