// Package batch implements the batched-inference subsystem that
// amortizes the DL field solve across concurrent simulations. The
// paper's method replaces the PIC field solver with a neural network;
// when a sweep pool runs N scenarios side by side, letting each call
// Predict1 costs N small GEMMs per step (and N cloned networks, since a
// network's forward scratch cannot be shared). The Server here owns one
// network and collects the per-scenario field requests over channels,
// stacking them into a single PredictBatch call — one large GEMM whose
// weight traffic is paid once per batch instead of once per scenario.
//
// Flush protocol: requests accumulate until either the batch is full
// (MaxBatch rows) or every registered client has a request outstanding
// — the "all outstanding requesters are blocked" condition, tracked by
// comparing the pending count against the registered-client count. A
// client is either computing (it will eventually predict or close) or
// blocked in Predict, so the condition guarantees progress without
// timers: the server never waits on a clock, and a serial sweep
// (one client) degenerates to per-call inference with identical
// results.
//
// Determinism: a scenario's result depends only on that scenario's
// input row. Network.PredictBatch is bit-identical per-row to Predict1
// at any batch size and row order (see internal/nn and the k-outer GEMM
// in internal/tensor), so batch composition — which is timing-dependent
// under the pool — never leaks into the physics. Batched sweeps are
// therefore bit-identical to per-call sweeps at any worker count and
// any MaxBatch.
package batch

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"dlpic/internal/core"
	"dlpic/internal/nn"
	"dlpic/internal/phasespace"
	"dlpic/internal/pic"
)

// Predictor is the batched inference backend the server drives:
// PredictBatch consumes batch stacked rows of in and writes batch
// stacked rows of out. *nn.Network implements it.
type Predictor interface {
	PredictBatch(batch int, in, out []float64)
}

// Stats summarizes the traffic a server has processed.
type Stats struct {
	// Requests is the total number of rows served.
	Requests int
	// Batches is the number of PredictBatch flushes issued.
	Batches int
	// MaxBatch is the largest flush observed.
	MaxBatch int
}

// AvgBatch returns the mean rows per flush (0 before the first flush).
func (s Stats) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Requests) / float64(s.Batches)
}

// request is one row of work: the server reads in, writes out, and
// reports completion on done.
type request struct {
	in, out []float64
	done    chan error
}

// Server collects predict requests from registered clients and flushes
// them through a shared Predictor in stacked batches. One goroutine
// owns the predictor, so the backing network needs no locking and no
// per-scenario clones. Create with NewServer or NewNetworkServer, hand
// out clients with NewClient (or field methods with NewFieldMethod),
// and Close the server after every client is closed.
type Server struct {
	pred          Predictor
	inDim, outDim int
	maxBatch      int
	reqCh         chan *request
	regCh         chan int
	stopCh        chan struct{}
	stopped       chan struct{}
	mu            sync.Mutex
	stats         Stats
	closed        bool
}

// DefaultMaxBatch bounds a flush when the caller does not choose a
// batch cap. It comfortably exceeds any realistic sweep pool width, so
// the all-blocked condition is what triggers flushes in practice.
const DefaultMaxBatch = 64

// NewServer starts a server around an arbitrary predictor with the
// given row widths. maxBatch <= 0 selects DefaultMaxBatch.
func NewServer(pred Predictor, inDim, outDim, maxBatch int) (*Server, error) {
	if pred == nil {
		return nil, errors.New("batch: nil predictor")
	}
	if inDim < 1 || outDim < 1 {
		return nil, fmt.Errorf("batch: invalid row widths in=%d out=%d", inDim, outDim)
	}
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	s := &Server{
		pred: pred, inDim: inDim, outDim: outDim, maxBatch: maxBatch,
		reqCh:   make(chan *request),
		regCh:   make(chan int),
		stopCh:  make(chan struct{}),
		stopped: make(chan struct{}),
	}
	go s.loop()
	return s, nil
}

// NewNetworkServer starts a server that shares one network across all
// clients, taking the row widths from the network itself.
func NewNetworkServer(net *nn.Network, maxBatch int) (*Server, error) {
	if net == nil {
		return nil, errors.New("batch: nil network")
	}
	return NewServer(net, net.InDim, net.OutDim(), maxBatch)
}

// InDim returns the per-request input width.
func (s *Server) InDim() int { return s.inDim }

// OutDim returns the per-request output width.
func (s *Server) OutDim() int { return s.outDim }

// MaxBatch returns the flush cap.
func (s *Server) MaxBatch() int { return s.maxBatch }

// Stats returns a snapshot of the traffic counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close stops the server goroutine and waits for it to exit. Any
// request still in flight is failed with an error; close clients
// first in normal operation. Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.stopped
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopCh)
	<-s.stopped
}

// loop is the server goroutine: it interleaves registration changes and
// requests, flushing whenever the batch fills or every registered
// client is blocked waiting.
func (s *Server) loop() {
	defer close(s.stopped)
	var (
		pending []*request
		inBuf   []float64
		outBuf  []float64
		active  int
	)
	for {
		select {
		case d := <-s.regCh:
			active += d
		case r := <-s.reqCh:
			pending = append(pending, r)
		case <-s.stopCh:
			for _, r := range pending {
				r.done <- errors.New("batch: server closed with request in flight")
			}
			return
		}
		if len(pending) == 0 {
			continue
		}
		if len(pending) >= s.maxBatch || len(pending) >= active {
			b := len(pending)
			if need := b * s.inDim; cap(inBuf) < need {
				inBuf = make([]float64, need)
			}
			if need := b * s.outDim; cap(outBuf) < need {
				outBuf = make([]float64, need)
			}
			in, out := inBuf[:b*s.inDim], outBuf[:b*s.outDim]
			for i, r := range pending {
				copy(in[i*s.inDim:(i+1)*s.inDim], r.in)
			}
			err := s.predict(b, in, out)
			// Update the counters before waking any requester, so a
			// Stats() call issued right after a sweep returns always
			// sees its own final flush.
			s.mu.Lock()
			s.stats.Requests += b
			s.stats.Batches++
			if b > s.stats.MaxBatch {
				s.stats.MaxBatch = b
			}
			s.mu.Unlock()
			for i, r := range pending {
				if err == nil {
					copy(r.out, out[i*s.outDim:(i+1)*s.outDim])
				}
				r.done <- err
			}
			pending = pending[:0]
		}
	}
}

// predict runs the flush, converting a predictor panic into an error so
// a malformed backend cannot wedge every blocked client.
func (s *Server) predict(b int, in, out []float64) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("batch: predictor panic: %v", p)
		}
	}()
	s.pred.PredictBatch(b, in, out)
	return nil
}

// Client is one requester's handle on a server. A client belongs to
// exactly one simulation (or other serial caller): Predict blocks until
// the server flushes the batch containing the request, and at most one
// request may be outstanding per client. Close when the simulation is
// done — the server counts registered clients to detect the all-blocked
// flush condition, so a leaked client stalls every other requester.
type Client struct {
	s      *Server
	done   chan error
	closed bool
}

// NewClient registers a new requester with the server.
func (s *Server) NewClient() (*Client, error) {
	select {
	case s.regCh <- 1:
		return &Client{s: s, done: make(chan error, 1)}, nil
	case <-s.stopped:
		return nil, errors.New("batch: server closed")
	}
}

// Predict submits one row (length InDim) and blocks until the result
// row (length OutDim) has been written into out.
func (c *Client) Predict(in, out []float64) error {
	if c.closed {
		return errors.New("batch: Predict on closed client")
	}
	if len(in) != c.s.inDim {
		return fmt.Errorf("batch: input length %d, want %d", len(in), c.s.inDim)
	}
	if len(out) != c.s.outDim {
		return fmt.Errorf("batch: output length %d, want %d", len(out), c.s.outDim)
	}
	r := &request{in: in, out: out, done: c.done}
	select {
	case c.s.reqCh <- r:
	case <-c.s.stopped:
		return errors.New("batch: server closed")
	}
	return <-c.done
}

// Close unregisters the client. Idempotent; the client must not be
// used afterwards.
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	select {
	case c.s.regCh <- -1:
	case <-c.s.stopped:
	}
	return nil
}

// ---------------------------------------------------------------------------
// PIC field-method adapter

// FieldMethod routes one simulation's DL field solve through a batch
// server: it bins the particle phase space, normalizes the histogram
// with the training-time transform, and submits the row to the server,
// exactly mirroring core.NNSolver's per-call pipeline. It implements
// pic.FieldMethod and io.Closer; the sweep engine closes it when its
// scenario finishes.
type FieldMethod struct {
	client *Client
	norm   phasespace.Normalizer
	hist   *phasespace.Hist
	in     []float64
}

// NewFieldMethod registers a client and wraps it as a field method for
// a grid of the given cell count. The phase-space spec must match the
// server's input width and the cell count its output width — the same
// contract core.NewNNSolver enforces.
func (s *Server) NewFieldMethod(spec phasespace.GridSpec, norm phasespace.Normalizer, cells int) (*FieldMethod, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Size() != s.inDim {
		return nil, fmt.Errorf("batch: phase-space size %d != server input %d", spec.Size(), s.inDim)
	}
	if cells != s.outDim {
		return nil, fmt.Errorf("batch: grid cells %d != server output %d", cells, s.outDim)
	}
	hist, err := phasespace.NewHist(spec)
	if err != nil {
		return nil, err
	}
	client, err := s.NewClient()
	if err != nil {
		return nil, err
	}
	return &FieldMethod{
		client: client, norm: norm,
		hist: hist, in: make([]float64, spec.Size()),
	}, nil
}

// Name implements pic.FieldMethod.
func (m *FieldMethod) Name() string { return "dl-batched" }

// ComputeField implements pic.FieldMethod: bin, normalize, and predict
// through the shared server.
func (m *FieldMethod) ComputeField(sim *pic.Simulation, e []float64) error {
	if err := m.hist.Bin(sim.P.X, sim.P.V); err != nil {
		return err
	}
	m.norm.Apply(m.in, m.hist.Data)
	if err := m.client.Predict(m.in, e); err != nil {
		return err
	}
	for i, v := range e {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("batch: network produced non-finite E[%d] = %v", i, v)
		}
	}
	return nil
}

// Close implements io.Closer, unregistering the method's client.
func (m *FieldMethod) Close() error { return m.client.Close() }

// ---------------------------------------------------------------------------
// Sweep integration

// Solver bundles a running server with the preprocessing contract of a
// trained DL field solver. It implements sweep.Batcher: each scenario
// gets a FieldMethod bound to a fresh client, and every scenario's
// inference lands on the one shared network.
type Solver struct {
	// Server is the running inference server (owned; Close stops it).
	Server *Server
	// Spec and Norm are the binning and normalization fixed at
	// training time, shared by every scenario.
	Spec phasespace.GridSpec
	Norm phasespace.Normalizer
}

// NewSolver starts a batched solver around a trained network and its
// preprocessing contract. maxBatch <= 0 selects DefaultMaxBatch.
func NewSolver(net *nn.Network, spec phasespace.GridSpec, norm phasespace.Normalizer, maxBatch int) (*Solver, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if net != nil && net.InDim != spec.Size() {
		return nil, fmt.Errorf("batch: network input %d != phase-space size %d", net.InDim, spec.Size())
	}
	srv, err := NewNetworkServer(net, maxBatch)
	if err != nil {
		return nil, err
	}
	return &Solver{Server: srv, Spec: spec, Norm: norm}, nil
}

// FromNNSolver starts a batched solver that shares the network of an
// existing per-call solver (the solver's own scratch is untouched; do
// not step it concurrently with the server). The solver's optional
// ClampAbs / SmoothModes post-processing is not implemented on the
// batched path, so those must be at their (paper-default) zero values.
func FromNNSolver(s *core.NNSolver, maxBatch int) (*Solver, error) {
	if s == nil {
		return nil, errors.New("batch: nil solver")
	}
	if s.ClampAbs != 0 || s.SmoothModes != 0 {
		return nil, fmt.Errorf("batch: ClampAbs/SmoothModes post-processing is not supported on the batched path")
	}
	return NewSolver(s.Net, s.Spec, s.Norm, maxBatch)
}

// FromNNSolver32 is FromNNSolver on the float32 inference path: the
// solver's network is converted once (nn.NewPredictor32) and the shared
// server evaluates every scenario's batched solves in float32. The
// conversion is eager so unsupported architectures fail here, not at
// the first solve. Same post-processing restriction as FromNNSolver;
// results differ from the float64 path within the nn.MeasureDrift32
// bounds, so only compare digests across runs of the same precision.
func FromNNSolver32(s *core.NNSolver, maxBatch int) (*Solver, error) {
	if s == nil {
		return nil, errors.New("batch: nil solver")
	}
	if s.ClampAbs != 0 || s.SmoothModes != 0 {
		return nil, fmt.Errorf("batch: ClampAbs/SmoothModes post-processing is not supported on the batched path")
	}
	pred, err := nn.NewPredictor32(s.Net)
	if err != nil {
		return nil, fmt.Errorf("batch: float32 conversion: %w", err)
	}
	srv, err := NewServer(pred, pred.InDim(), pred.OutDim(), maxBatch)
	if err != nil {
		return nil, err
	}
	return &Solver{Server: srv, Spec: s.Spec, Norm: s.Norm}, nil
}

// FieldMethod implements sweep.Batcher: it registers a client for one
// scenario of the given configuration.
func (s *Solver) FieldMethod(cfg pic.Config) (pic.FieldMethod, error) {
	return s.Server.NewFieldMethod(s.Spec, s.Norm, cfg.Cells)
}

// Close stops the underlying server. Call after the sweeps using the
// solver have returned.
func (s *Solver) Close() { s.Server.Close() }
