package phasespace

import (
	"math"
	"runtime"
	"testing"
	"testing/quick"

	"dlpic/internal/interp"
	"dlpic/internal/rng"
)

func spec() GridSpec {
	return GridSpec{NX: 16, NV: 8, L: 2.0, VMin: -0.8, VMax: 0.8, Binning: interp.NGP}
}

func TestSpecValidate(t *testing.T) {
	good := spec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []GridSpec{
		{NX: 1, NV: 8, L: 1, VMin: -1, VMax: 1, Binning: interp.NGP},
		{NX: 8, NV: 1, L: 1, VMin: -1, VMax: 1, Binning: interp.NGP},
		{NX: 8, NV: 8, L: 0, VMin: -1, VMax: 1, Binning: interp.NGP},
		{NX: 8, NV: 8, L: 1, VMin: 1, VMax: 1, Binning: interp.NGP},
		{NX: 8, NV: 8, L: 1, VMin: -1, VMax: 1, Binning: interp.TSC},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestDefaultSpecCoversColdBeam(t *testing.T) {
	s := DefaultSpec(2 * math.Pi / 3.06)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NX != 64 || s.NV != 64 {
		t.Fatalf("default bins %dx%d, want 64x64", s.NX, s.NV)
	}
	if s.VMin > -0.4 || s.VMax < 0.4 {
		t.Fatalf("default window [%v,%v] does not cover v0=0.4", s.VMin, s.VMax)
	}
}

func TestNewHistRejectsBadSpec(t *testing.T) {
	if _, err := NewHist(GridSpec{}); err == nil {
		t.Fatal("zero spec should fail")
	}
}

// Property: binning conserves the particle count for both schemes.
func TestBinCountConservationProperty(t *testing.T) {
	r := rng.New(1)
	for _, binning := range []interp.Scheme{interp.NGP, interp.CIC} {
		s := spec()
		s.Binning = binning
		h, err := NewHist(s)
		if err != nil {
			t.Fatal(err)
		}
		f := func(nRaw uint8) bool {
			n := int(nRaw)%300 + 1
			x := make([]float64, n)
			v := make([]float64, n)
			for i := range x {
				x[i] = r.Float64() * s.L
				v[i] = (r.Float64()*4 - 2) * 0.8 // includes out-of-window values
			}
			if err := h.Bin(x, v); err != nil {
				return false
			}
			return math.Abs(h.Total()-float64(n)) < 1e-9*float64(n+1)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("%v: %v", binning, err)
		}
	}
}

func TestBinNGPPlacement(t *testing.T) {
	s := spec() // dx = 0.125, dv = 0.2
	h, _ := NewHist(s)
	// Particle at x=0.3 -> ix = int(0.3/0.125) = 2; v=0.1 -> iv = int((0.1+0.8)/0.2) = 4.
	if err := h.Bin([]float64{0.3}, []float64{0.1}); err != nil {
		t.Fatal(err)
	}
	if h.At(2, 4) != 1 {
		t.Fatalf("count at (2,4) = %v, want 1; hist total %v", h.At(2, 4), h.Total())
	}
}

func TestBinNGPVelocityClamping(t *testing.T) {
	s := spec()
	h, _ := NewHist(s)
	if err := h.Bin([]float64{0.1, 0.1}, []float64{-5.0, 5.0}); err != nil {
		t.Fatal(err)
	}
	if h.At(0, 0) != 1 {
		t.Fatalf("low outlier not clamped to bottom row")
	}
	if h.At(0, s.NV-1) != 1 {
		t.Fatalf("high outlier not clamped to top row")
	}
}

func TestBinCICSplitsBilinearly(t *testing.T) {
	s := spec()
	s.Binning = interp.CIC
	h, _ := NewHist(s)
	// Bin centers: x_c(i) = (i+0.5)*0.125, v_c(j) = -0.8 + (j+0.5)*0.2.
	// Particle exactly on a bin center deposits 1 into that bin.
	if err := h.Bin([]float64{0.3125}, []float64{-0.1}); err != nil { // ix=2 center x=0.3125; iv: (-0.1+0.8)/0.2-0.5=3.0 -> center of bin 3
		t.Fatal(err)
	}
	if math.Abs(h.At(2, 3)-1) > 1e-12 {
		t.Fatalf("center deposit = %v, want 1 (total %v)", h.At(2, 3), h.Total())
	}
	// Particle halfway between centers in both coordinates: four 0.25s.
	if err := h.Bin([]float64{0.375}, []float64{0.0}); err != nil {
		t.Fatal(err)
	}
	for _, q := range []struct{ ix, iv int }{{2, 3}, {3, 3}, {2, 4}, {3, 4}} {
		if math.Abs(h.At(q.ix, q.iv)-0.25) > 1e-12 {
			t.Fatalf("quad (%d,%d) = %v, want 0.25", q.ix, q.iv, h.At(q.ix, q.iv))
		}
	}
}

func TestBinCICPositionWrap(t *testing.T) {
	s := spec()
	s.Binning = interp.CIC
	h, _ := NewHist(s)
	// Particle past the last bin center splits across the periodic seam.
	x := s.L - 0.01
	if err := h.Bin([]float64{x}, []float64{-0.1}); err != nil {
		t.Fatal(err)
	}
	if h.At(s.NX-1, 3) <= 0 || h.At(0, 3) <= 0 {
		t.Fatalf("seam split missing: last=%v first=%v", h.At(s.NX-1, 3), h.At(0, 3))
	}
	if math.Abs(h.Total()-1) > 1e-12 {
		t.Fatalf("total %v, want 1", h.Total())
	}
}

func TestBinLengthMismatch(t *testing.T) {
	h, _ := NewHist(spec())
	if err := h.Bin(make([]float64, 3), make([]float64, 4)); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestSpatialDensityMarginal(t *testing.T) {
	s := spec()
	h, _ := NewHist(s)
	r := rng.New(2)
	n := 5000
	x := make([]float64, n)
	v := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() * s.L
		v[i] = 0.5 * r.NormFloat64()
	}
	if err := h.Bin(x, v); err != nil {
		t.Fatal(err)
	}
	dens := make([]float64, s.NX)
	if err := h.SpatialDensity(dens); err != nil {
		t.Fatal(err)
	}
	var tot float64
	for _, d := range dens {
		tot += d
	}
	if math.Abs(tot-float64(n)) > 1e-9 {
		t.Fatalf("marginal total %v, want %d", tot, n)
	}
	// Cross-check one column by brute force.
	dx := s.L / float64(s.NX)
	var brute float64
	for i := range x {
		if int(x[i]/dx) == 3 {
			brute++
		}
	}
	if math.Abs(dens[3]-brute) > 1e-9 {
		t.Fatalf("column 3: marginal %v, brute force %v", dens[3], brute)
	}
	if err := h.SpatialDensity(make([]float64, 3)); err == nil {
		t.Fatal("wrong length should error")
	}
}

func TestFitNormalizer(t *testing.T) {
	n, err := FitNormalizer([]float64{1, 5}, []float64{3, -2})
	if err != nil {
		t.Fatal(err)
	}
	if n.Min != -2 || n.Max != 5 {
		t.Fatalf("normalizer [%v,%v], want [-2,5]", n.Min, n.Max)
	}
	if _, err := FitNormalizer(); err == nil {
		t.Fatal("no samples should error")
	}
	if _, err := FitNormalizer([]float64{}); err == nil {
		t.Fatal("empty samples should error")
	}
}

func TestFitNormalizerConstantData(t *testing.T) {
	n, err := FitNormalizer([]float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 3)
	n.Apply(out, []float64{4, 4, 4})
	for _, v := range out {
		if v != 0 {
			t.Fatalf("constant data normalized to %v, want 0", v)
		}
	}
}

// Property: Apply maps into [0,1] for in-range data and Invert restores
// the original values.
func TestNormalizerRoundTripProperty(t *testing.T) {
	f := func(vals [8]float64) bool {
		src := make([]float64, 8)
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				v = float64(i)
			}
			src[i] = v
		}
		n, err := FitNormalizer(src)
		if err != nil {
			return false
		}
		norm := make([]float64, 8)
		n.Apply(norm, src)
		span := n.Max - n.Min
		for _, v := range norm {
			if v < -1e-12 || v > 1+1e-12 {
				return false
			}
		}
		back := make([]float64, 8)
		n.Invert(back, norm)
		for i := range back {
			if math.Abs(back[i]-src[i]) > 1e-9*(1+span) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizerApplyInPlace(t *testing.T) {
	n := Normalizer{Min: 0, Max: 10}
	vals := []float64{0, 5, 10}
	n.Apply(vals, vals)
	want := []float64{0, 0.5, 1}
	for i := range vals {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("in-place apply: %v, want %v", vals, want)
		}
	}
}

func BenchmarkBinNGP64k(b *testing.B) {
	s := DefaultSpec(2 * math.Pi / 3.06)
	h, _ := NewHist(s)
	r := rng.New(1)
	n := 64000
	x := make([]float64, n)
	v := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() * s.L
		v[i] = 0.3 * r.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Bin(x, v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinCIC64k(b *testing.B) {
	s := DefaultSpec(2 * math.Pi / 3.06)
	s.Binning = interp.CIC
	h, _ := NewHist(s)
	r := rng.New(1)
	n := 64000
	x := make([]float64, n)
	v := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() * s.L
		v[i] = 0.3 * r.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Bin(x, v); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBinBitIdenticalAcrossGOMAXPROCS pins the sharded scatter: the
// histogram must be bit-identical at every worker count for both
// binning schemes, at particle counts large enough to span many chunks.
func TestBinBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, scheme := range []interp.Scheme{interp.NGP, interp.CIC} {
		s := DefaultSpec(2 * math.Pi / 3.06)
		s.Binning = scheme
		r := rng.New(9)
		n := 50000 // >> chunkGrain: the scatter splits into many chunks
		x := make([]float64, n)
		v := make([]float64, n)
		for i := range x {
			x[i] = r.Float64() * s.L
			v[i] = 0.3 * r.NormFloat64()
		}
		ref := make([]float64, s.Size())
		for _, procs := range []int{1, 2, 4, 8} {
			runtime.GOMAXPROCS(procs)
			h, err := NewHist(s)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Bin(x, v); err != nil {
				t.Fatal(err)
			}
			if procs == 1 {
				copy(ref, h.Data)
				continue
			}
			for i := range ref {
				if h.Data[i] != ref[i] {
					t.Fatalf("%v binning: GOMAXPROCS=%d bin %d = %v, serial %v",
						scheme, procs, i, h.Data[i], ref[i])
				}
			}
		}
	}
}
