// Package phasespace implements the phase-space binning stage the
// DL-based PIC method introduces (paper §III, Fig. 2): particles are
// histogrammed onto a 2D (x, v) grid, and the resulting image is the
// input of the DL electric-field solver.
//
// The paper uses NGP ("the NGP interpolation scheme for the phase space
// binning") and suggests higher-order binning as an improvement; both
// NGP and CIC binning are provided.
package phasespace

import (
	"fmt"
	"math"

	"dlpic/internal/interp"
	"dlpic/internal/parallel"
)

// GridSpec describes the phase-space discretization: NX position bins
// over [0, L) (periodic) and NV velocity bins over [VMin, VMax]
// (clamped: particles outside the window are counted in the edge bins,
// so no particle is ever lost from the histogram).
type GridSpec struct {
	NX, NV     int
	L          float64
	VMin, VMax float64
	// Binning selects NGP (paper default) or CIC deposition into the
	// histogram. TSC is not supported here.
	Binning interp.Scheme
}

// DefaultSpec returns the repository default: 64x64 bins over the
// paper's box with a velocity window wide enough for the v0 = +-0.4
// cold-beam case plus nonlinear spread.
func DefaultSpec(l float64) GridSpec {
	return GridSpec{NX: 64, NV: 64, L: l, VMin: -0.8, VMax: 0.8, Binning: interp.NGP}
}

// Validate checks the spec.
func (s GridSpec) Validate() error {
	if s.NX < 2 || s.NV < 2 {
		return fmt.Errorf("phasespace: grid %dx%d too small", s.NX, s.NV)
	}
	if !(s.L > 0) {
		return fmt.Errorf("phasespace: non-positive box length %v", s.L)
	}
	if !(s.VMax > s.VMin) {
		return fmt.Errorf("phasespace: velocity window [%v,%v] empty", s.VMin, s.VMax)
	}
	if s.Binning != interp.NGP && s.Binning != interp.CIC {
		return fmt.Errorf("phasespace: unsupported binning %v (want NGP or CIC)", s.Binning)
	}
	return nil
}

// Size returns NX*NV, the flattened histogram length.
func (s GridSpec) Size() int { return s.NX * s.NV }

// Hist is a phase-space histogram: row-major [iv*NX + ix], counts (or
// CIC fractional counts) of particles per bin.
type Hist struct {
	Spec GridSpec
	Data []float64
}

// NewHist allocates an empty histogram for the spec.
func NewHist(spec GridSpec) (*Hist, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Hist{Spec: spec, Data: make([]float64, spec.Size())}, nil
}

// At returns the count at position bin ix, velocity bin iv.
func (h *Hist) At(ix, iv int) float64 { return h.Data[iv*h.Spec.NX+ix] }

// Total returns the sum of all bins (== particle count for NGP and CIC,
// since every particle deposits total weight 1).
func (h *Hist) Total() float64 {
	var s float64
	for _, v := range h.Data {
		s += v
	}
	return s
}

// Reset zeroes the histogram.
func (h *Hist) Reset() {
	for i := range h.Data {
		h.Data[i] = 0
	}
}

// Bin accumulates the particle population (x, v) into the histogram
// (which is reset first). Positions must lie in [0, L); velocities are
// clamped to the window edges.
//
// NGP: each particle adds 1 to the bin containing it.
// CIC: each particle splits its unit weight bilinearly over the 2x2
// neighborhood of bin centers; position wraps periodically, velocity
// clamps at the window.
//
// The scatter is sharded over particle chunks through
// parallel.ScatterReduce, the same deterministic primitive the PIC
// charge deposit uses: the chunk decomposition depends only on the
// particle count and per-chunk partial histograms reduce in chunk
// order, so the histogram is bit-identical at every GOMAXPROCS —
// including inside a sweep pool, where the chunks run inline.
func (h *Hist) Bin(x, v []float64) error {
	if len(x) != len(v) {
		return fmt.Errorf("phasespace: x/v length mismatch %d vs %d", len(x), len(v))
	}
	spec := h.Spec
	nx, nv := spec.NX, spec.NV
	dx := spec.L / float64(nx)
	dv := (spec.VMax - spec.VMin) / float64(nv)
	switch spec.Binning {
	case interp.NGP:
		parallel.ScatterReduce(len(x), h.Data, func(acc []float64, start, end int) {
			for p := start; p < end; p++ {
				ix := int(x[p] / dx)
				if ix >= nx {
					ix = nx - 1
				} else if ix < 0 {
					ix = 0
				}
				iv := int((v[p] - spec.VMin) / dv)
				if iv >= nv {
					iv = nv - 1
				} else if iv < 0 {
					iv = 0
				}
				acc[iv*nx+ix]++
			}
		})
	case interp.CIC:
		parallel.ScatterReduce(len(x), h.Data, func(acc []float64, start, end int) {
			for p := start; p < end; p++ {
				// Bin-center coordinates: center of bin i is (i+0.5)*dx.
				hx := x[p]/dx - 0.5
				ix0 := int(math.Floor(hx))
				fx := hx - float64(ix0)
				hv := (v[p]-spec.VMin)/dv - 0.5
				iv0 := int(math.Floor(hv))
				fv := hv - float64(iv0)
				// Clamp velocity indices; wrap position indices.
				iv1 := iv0 + 1
				if iv0 < 0 {
					iv0, iv1, fv = 0, 0, 0
				} else if iv1 >= nv {
					iv0, iv1, fv = nv-1, nv-1, 0
				}
				ix0w := ((ix0 % nx) + nx) % nx
				ix1w := (ix0w + 1) % nx
				w00 := (1 - fx) * (1 - fv)
				w10 := fx * (1 - fv)
				w01 := (1 - fx) * fv
				w11 := fx * fv
				acc[iv0*nx+ix0w] += w00
				acc[iv0*nx+ix1w] += w10
				acc[iv1*nx+ix0w] += w01
				acc[iv1*nx+ix1w] += w11
			}
		})
	default:
		return fmt.Errorf("phasespace: unsupported binning %v", spec.Binning)
	}
	return nil
}

// SpatialDensity writes the velocity-marginal of the histogram into out:
// out[ix] = sum_iv hist[iv][ix], i.e. the particle count per position
// bin. The oracle field solver uses this to recover the charge density
// the histogram encodes. out must have length NX.
func (h *Hist) SpatialDensity(out []float64) error {
	nx, nv := h.Spec.NX, h.Spec.NV
	if len(out) != nx {
		return fmt.Errorf("phasespace: SpatialDensity length %d, want %d", len(out), nx)
	}
	for ix := range out {
		out[ix] = 0
	}
	for iv := 0; iv < nv; iv++ {
		row := h.Data[iv*nx : (iv+1)*nx]
		for ix, c := range row {
			out[ix] += c
		}
	}
	return nil
}

// Normalizer rescales histogram values into [0, 1] with the min-max
// transform of the paper's Eq. 5: y = (x - min) / (max - min), where min
// and max are dataset-wide statistics fixed at training time.
type Normalizer struct {
	Min, Max float64
}

// FitNormalizer scans sample vectors and returns the min-max normalizer
// over all their entries.
func FitNormalizer(samples ...[]float64) (Normalizer, error) {
	if len(samples) == 0 {
		return Normalizer{}, fmt.Errorf("phasespace: FitNormalizer needs at least one sample")
	}
	mn, mx := math.Inf(1), math.Inf(-1)
	count := 0
	for _, s := range samples {
		for _, v := range s {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
			count++
		}
	}
	if count == 0 {
		return Normalizer{}, fmt.Errorf("phasespace: FitNormalizer saw no values")
	}
	if mx == mn {
		// Degenerate constant data: map everything to 0.
		return Normalizer{Min: mn, Max: mn + 1}, nil
	}
	return Normalizer{Min: mn, Max: mx}, nil
}

// Apply writes the normalized values of src into dst (which may alias).
func (n Normalizer) Apply(dst, src []float64) {
	scale := 1 / (n.Max - n.Min)
	for i, v := range src {
		dst[i] = (v - n.Min) * scale
	}
}

// Invert undoes the normalization.
func (n Normalizer) Invert(dst, src []float64) {
	scale := n.Max - n.Min
	for i, v := range src {
		dst[i] = v*scale + n.Min
	}
}
