// Package rng implements the deterministic random-number generation used
// by the simulations and the training pipeline.
//
// Reproducibility is a hard requirement for this project: dataset
// generation, particle loading, weight initialization and minibatch
// shuffling must all be replayable from a single root seed. The package
// provides a splittable generator (xoshiro256** seeded through SplitMix64)
// so that independent components can derive independent, stable streams
// from one seed without sharing mutable state.
package rng

import (
	"errors"
	"math"
)

// splitMix64 advances the 64-bit SplitMix64 state and returns the next
// output. It is used both for seeding xoshiro and for stream splitting.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic xoshiro256** pseudo-random generator.
// The zero value is not usable; construct with New or Split.
type Source struct {
	s [4]uint64
	// spare Gaussian value from Box-Muller, valid when hasSpare is set.
	spare    float64
	hasSpare bool
}

// New returns a Source deterministically derived from seed.
func New(seed uint64) *Source {
	var r Source
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start in the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split derives a new independent Source from r. The derived stream is a
// pure function of r's current state, and advancing r afterwards does not
// perturb it. Use Split to hand out one generator per worker or per
// simulation while keeping global determinism.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// NormFloat64 returns a standard-normal variate using the Box-Muller
// transform. Values come in pairs; the second of each pair is cached.
func (r *Source) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	// Box-Muller with rejection of u1 == 0 to avoid log(0).
	var u1 float64
	for {
		u1 = r.Float64()
		if u1 > 0 {
			break
		}
	}
	u2 := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u1))
	r.spare = mag * math.Sin(2*math.Pi*u2)
	r.hasSpare = true
	return mag * math.Cos(2*math.Pi*u2)
}

// State is the serializable snapshot of a Source: the xoshiro256**
// registers plus the cached Box-Muller spare. Restoring a snapshot
// reproduces the original stream bit-identically, which is what lets
// training checkpoints (internal/nn) freeze and resume the minibatch
// shuffle cursor mid-campaign.
type State struct {
	// S holds the four xoshiro256** state words.
	S [4]uint64
	// Spare and HasSpare carry the cached second Box-Muller variate.
	Spare    float64
	HasSpare bool
}

// Snapshot returns the current state of r. The snapshot is a value
// copy: advancing r afterwards does not perturb it.
func (r *Source) Snapshot() State {
	return State{S: r.s, Spare: r.spare, HasSpare: r.hasSpare}
}

// FromState reconstructs a Source from a snapshot. The restored source
// continues the original stream bit-identically. The all-zero xoshiro
// state is unreachable from New and would lock the generator at zero,
// so it is rejected as corrupt.
func FromState(st State) (*Source, error) {
	if st.S[0]|st.S[1]|st.S[2]|st.S[3] == 0 {
		return nil, errAllZeroState
	}
	return &Source{s: st.S, spare: st.Spare, hasSpare: st.HasSpare}, nil
}

// errAllZeroState rejects snapshots no healthy Source can produce.
var errAllZeroState = errors.New("rng: all-zero state snapshot (corrupt)")

// Shuffle permutes the integers [0, n) with the Fisher-Yates algorithm,
// calling swap(i, j) for each exchange.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
