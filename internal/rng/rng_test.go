package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	child := r.Split()
	// Capture the child's future output, then advance the parent and verify
	// the child is unaffected.
	want := make([]uint64, 16)
	probe := New(0)
	*probe = *child
	for i := range want {
		want[i] = probe.Uint64()
	}
	for i := 0; i < 1000; i++ {
		r.Uint64()
	}
	for i := range want {
		if got := child.Uint64(); got != want[i] {
			t.Fatalf("child stream perturbed by parent at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestIntnRangeProperty(t *testing.T) {
	r := New(11)
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from expected %.0f", i, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumSq, sumCube float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
		sumCube += v * v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	skew := sumCube / n
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
	if math.Abs(skew) > 0.05 {
		t.Errorf("third moment = %v, want ~0", skew)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleDistribution(t *testing.T) {
	// Every element should land in every slot roughly uniformly.
	r := New(17)
	const n, trials = 4, 40000
	counts := [n][n]int{}
	for trial := 0; trial < trials; trial++ {
		xs := [n]int{0, 1, 2, 3}
		r.Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		for slot, v := range xs {
			counts[v][slot]++
		}
	}
	want := float64(trials) / n
	for v := 0; v < n; v++ {
		for slot := 0; slot < n; slot++ {
			if math.Abs(float64(counts[v][slot])-want) > 6*math.Sqrt(want) {
				t.Fatalf("value %d in slot %d: count %d, want ~%.0f", v, slot, counts[v][slot], want)
			}
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

// TestSnapshotRestore_ContinuesStreamBitIdentically freezes a source
// mid-stream (with a Box-Muller spare pending) and checks the restored
// source continues the exact sequence, while the original keeps its own.
func TestSnapshotRestore_ContinuesStreamBitIdentically(t *testing.T) {
	r := New(42)
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	r.NormFloat64() // leave a spare cached so the snapshot carries it
	st := r.Snapshot()
	want := make([]float64, 50)
	for i := range want {
		want[i] = r.NormFloat64()
	}
	got, err := FromState(st)
	if err != nil {
		t.Fatalf("FromState: %v", err)
	}
	for i := range want {
		if v := got.NormFloat64(); v != want[i] {
			t.Fatalf("restored stream diverges at %d: %v != %v", i, v, want[i])
		}
	}
	// The snapshot value is independent of the original's later use.
	r2, err := FromState(st)
	if err != nil {
		t.Fatalf("FromState: %v", err)
	}
	if v := r2.NormFloat64(); v != want[0] {
		t.Fatalf("snapshot not a value copy: %v != %v", v, want[0])
	}
}

// TestSnapshotRestore_ShuffleCursor checks the training-checkpoint use
// case: a shuffle sequence interrupted and resumed from a snapshot
// produces the same permutations as an uninterrupted one.
func TestSnapshotRestore_ShuffleCursor(t *testing.T) {
	const n, epochs, cut = 37, 8, 3
	full := New(7)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var wantFinal []int
	for e := 0; e < epochs; e++ {
		full.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	}
	wantFinal = append(wantFinal, perm...)

	part := New(7)
	for i := range perm {
		perm[i] = i
	}
	for e := 0; e < cut; e++ {
		part.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	}
	resumed, err := FromState(part.Snapshot())
	if err != nil {
		t.Fatalf("FromState: %v", err)
	}
	for e := cut; e < epochs; e++ {
		resumed.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	}
	for i := range perm {
		if perm[i] != wantFinal[i] {
			t.Fatalf("resumed shuffle diverges at %d", i)
		}
	}
}

// TestFromState_RejectsAllZero guards the corrupt-snapshot path.
func TestFromState_RejectsAllZero(t *testing.T) {
	if _, err := FromState(State{}); err == nil {
		t.Fatal("FromState accepted the all-zero state")
	}
}
