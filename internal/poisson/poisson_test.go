package poisson

import (
	"math"
	"testing"
	"testing/quick"

	"dlpic/internal/grid"
	"dlpic/internal/rng"
)

func sineRho(g *grid.Grid, mode int, amp float64) []float64 {
	rho := make([]float64, g.N())
	k := 2 * math.Pi * float64(mode) / g.Length()
	for i := range rho {
		rho[i] = amp * math.Sin(k*g.X(i))
	}
	return rho
}

func randomZeroMeanRho(r *rng.Source, g *grid.Grid) []float64 {
	rho := make([]float64, g.N())
	for i := range rho {
		rho[i] = r.NormFloat64()
	}
	g.SubtractMean(rho)
	return rho
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// The continuum spectral solver inverts single Fourier modes exactly:
// for rho = A sin(kx), phi = A/(eps0 k^2) sin(kx).
func TestSpectralSingleModeExact(t *testing.T) {
	g := grid.MustNew(64, 2*math.Pi/3.06)
	s := NewSpectral(g, 1.0)
	for _, mode := range []int{1, 2, 5} {
		amp := 0.3
		rho := sineRho(g, mode, amp)
		phi := make([]float64, g.N())
		if err := s.Solve(phi, rho); err != nil {
			t.Fatal(err)
		}
		k := 2 * math.Pi * float64(mode) / g.Length()
		for i := range phi {
			want := amp / (k * k) * math.Sin(k*g.X(i))
			if math.Abs(phi[i]-want) > 1e-12*amp/(k*k)*100 {
				t.Fatalf("mode %d, i=%d: phi=%v want=%v", mode, i, phi[i], want)
			}
		}
	}
}

func TestSpectralEps0Scaling(t *testing.T) {
	g := grid.MustNew(32, 1.0)
	rho := sineRho(g, 1, 1.0)
	phi1 := make([]float64, g.N())
	phi2 := make([]float64, g.N())
	if err := NewSpectral(g, 1.0).Solve(phi1, rho); err != nil {
		t.Fatal(err)
	}
	if err := NewSpectral(g, 2.0).Solve(phi2, rho); err != nil {
		t.Fatal(err)
	}
	for i := range phi1 {
		if math.Abs(phi1[i]-2*phi2[i]) > 1e-12 {
			t.Fatalf("eps0 scaling broken at %d: %v vs %v", i, phi1[i], phi2[i])
		}
	}
}

// SpectralFD satisfies the discrete difference equation to machine
// precision for arbitrary zero-mean right-hand sides.
func TestSpectralFDResidualProperty(t *testing.T) {
	g := grid.MustNew(48, 3.0)
	s := NewSpectralFD(g, 1.0)
	r := rng.New(1)
	f := func() bool {
		rho := randomZeroMeanRho(r, g)
		phi := make([]float64, g.N())
		if err := s.Solve(phi, rho); err != nil {
			return false
		}
		return Residual(g, phi, rho, 1.0) < 1e-9
	}
	for i := 0; i < 25; i++ {
		if !f() {
			t.Fatal("spectral-fd residual too large")
		}
	}
}

func TestCGMatchesSpectralFD(t *testing.T) {
	g := grid.MustNew(64, 2.0)
	fd := NewSpectralFD(g, 1.0)
	cg := NewCG(g, 1.0, 1e-12, 0)
	r := rng.New(2)
	for trial := 0; trial < 10; trial++ {
		rho := randomZeroMeanRho(r, g)
		phiFD := make([]float64, g.N())
		phiCG := make([]float64, g.N())
		if err := fd.Solve(phiFD, rho); err != nil {
			t.Fatal(err)
		}
		if err := cg.Solve(phiCG, rho); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(phiFD, phiCG); d > 1e-8 {
			t.Fatalf("trial %d: CG and spectral-fd differ by %v", trial, d)
		}
		if cg.LastIterations <= 0 {
			t.Fatalf("CG reported %d iterations", cg.LastIterations)
		}
	}
}

func TestSORMatchesSpectralFD(t *testing.T) {
	g := grid.MustNew(32, 2.0)
	fd := NewSpectralFD(g, 1.0)
	sor, err := NewSOR(g, 1.0, 1.7, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	rho := randomZeroMeanRho(r, g)
	phiFD := make([]float64, g.N())
	phiSOR := make([]float64, g.N())
	if err := fd.Solve(phiFD, rho); err != nil {
		t.Fatal(err)
	}
	if err := sor.Solve(phiSOR, rho); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(phiFD, phiSOR); d > 1e-6 {
		t.Fatalf("SOR and spectral-fd differ by %v after %d sweeps", d, sor.LastIterations)
	}
}

func TestSOROmegaValidation(t *testing.T) {
	g := grid.MustNew(8, 1.0)
	for _, omega := range []float64{0, -1, 2, 2.5} {
		if _, err := NewSOR(g, 1.0, omega, 0, 0); err == nil {
			t.Errorf("NewSOR(omega=%v) should fail", omega)
		}
	}
}

// The solution of the periodic problem is defined up to a constant; all
// solvers return the zero-mean representative.
func TestSolversReturnZeroMeanPhi(t *testing.T) {
	g := grid.MustNew(32, 1.5)
	r := rng.New(4)
	rho := randomZeroMeanRho(r, g)
	sor, _ := NewSOR(g, 1.0, 1.5, 0, 0)
	solvers := []Solver{NewSpectral(g, 1.0), NewSpectralFD(g, 1.0), NewCG(g, 1.0, 0, 0), sor}
	for _, s := range solvers {
		phi := make([]float64, g.N())
		if err := s.Solve(phi, rho); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if m := math.Abs(g.Mean(phi)); m > 1e-10 {
			t.Errorf("%s: phi mean %v, want 0", s.Name(), m)
		}
	}
}

// Non-neutral rho (non-zero mean) must not blow up: solvers implicitly
// neutralize by projecting, matching the physics of a neutralizing
// background.
func TestSolversHandleNonNeutralRho(t *testing.T) {
	g := grid.MustNew(32, 1.0)
	rho := sineRho(g, 1, 1.0)
	for i := range rho {
		rho[i] += 5.0 // large DC offset
	}
	phiRef := make([]float64, g.N())
	if err := NewSpectral(g, 1.0).Solve(phiRef, sineRho(g, 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	phi := make([]float64, g.N())
	if err := NewSpectral(g, 1.0).Solve(phi, rho); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(phi, phiRef); d > 1e-10 {
		t.Fatalf("DC offset changed the solution by %v", d)
	}
}

func TestEFromPhi(t *testing.T) {
	g := grid.MustNew(128, 2*math.Pi)
	phi := make([]float64, g.N())
	for i := range phi {
		phi[i] = math.Sin(g.X(i))
	}
	e := make([]float64, g.N())
	EFromPhi(g, e, phi)
	factor := math.Sin(g.Dx()) / g.Dx() // centered-difference attenuation
	for i := range e {
		want := -math.Cos(g.X(i)) * factor
		if math.Abs(e[i]-want) > 1e-10 {
			t.Fatalf("i=%d: E=%v want=%v", i, e[i], want)
		}
	}
}

func TestSolveEHelper(t *testing.T) {
	g := grid.MustNew(64, 2.0)
	s := NewSpectral(g, 1.0)
	rho := sineRho(g, 1, 0.5)
	e := make([]float64, g.N())
	scratch := make([]float64, g.N())
	if err := SolveE(s, g, e, rho, scratch); err != nil {
		t.Fatal(err)
	}
	// For rho = A sin(kx): phi = A/k^2 sin(kx), E = -A/k cos(kx) (with the
	// centered-difference attenuation factor on the gradient).
	k := 2 * math.Pi / g.Length()
	factor := math.Sin(k*g.Dx()) / (k * g.Dx())
	for i := range e {
		want := -0.5 / k * math.Cos(k*g.X(i)) * factor
		if math.Abs(e[i]-want) > 1e-10 {
			t.Fatalf("i=%d: E=%v want=%v", i, e[i], want)
		}
	}
}

func TestSolveEDirectSingleMode(t *testing.T) {
	g := grid.MustNew(64, 2.0)
	s := NewSpectral(g, 1.0)
	rho := sineRho(g, 2, 0.7)
	e := make([]float64, g.N())
	if err := s.SolveEDirect(e, rho); err != nil {
		t.Fatal(err)
	}
	k := 2 * math.Pi * 2 / g.Length()
	for i := range e {
		want := -0.7 / k * math.Cos(k*g.X(i))
		if math.Abs(e[i]-want) > 1e-11 {
			t.Fatalf("i=%d: E=%v want=%v", i, e[i], want)
		}
	}
}

// Gauss's law in integral form: on the periodic domain the integral of E
// over the box is zero (no net field), and dE/dx = rho/eps0 holds for the
// spectral direct solve.
func TestGaussLawProperty(t *testing.T) {
	g := grid.MustNew(64, 2.0)
	s := NewSpectral(g, 1.0)
	r := rng.New(5)
	f := func() bool {
		rho := randomZeroMeanRho(r, g)
		// Band-limit: remove the Nyquist mode, which SolveEDirect zeroes by
		// construction (its derivative has no faithful representation).
		for i := range rho {
			if i%2 == 1 {
				// leave as-is; instead filter through a forward/backward pass below
				break
			}
		}
		e := make([]float64, g.N())
		if err := s.SolveEDirect(e, rho); err != nil {
			return false
		}
		if math.Abs(g.Integral(e)) > 1e-9 {
			return false
		}
		// Spectral derivative check on low modes via the mode amplitudes of
		// dE/dx vs rho: compare integrals against each sine mode.
		for mode := 1; mode <= 4; mode++ {
			k := 2 * math.Pi * float64(mode) / g.Length()
			var sinRho, cosE float64
			for i := 0; i < g.N(); i++ {
				x := g.X(i)
				sinRho += rho[i] * math.Sin(k*x)
				cosE += e[i] * math.Cos(k*x)
			}
			// For rho_k sin component a: E has -a/k cos component.
			if math.Abs(cosE+sinRho/k) > 1e-8*(1+math.Abs(sinRho)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDirichletTridiagQuadratic(t *testing.T) {
	// phi'' = -1, phi(0)=phi(L)=0 -> phi(x) = x(L-x)/2.
	n, L := 101, 2.0
	rho := make([]float64, n)
	for i := range rho {
		rho[i] = 1.0
	}
	phi := make([]float64, n)
	if err := SolveDirichletTridiag(phi, rho, L, 1.0); err != nil {
		t.Fatal(err)
	}
	dx := L / float64(n-1)
	for i := 0; i < n; i++ {
		x := float64(i) * dx
		want := x * (L - x) / 2
		if math.Abs(phi[i]-want) > 1e-10 {
			t.Fatalf("i=%d: phi=%v want=%v", i, phi[i], want)
		}
	}
}

func TestDirichletTridiagValidation(t *testing.T) {
	if err := SolveDirichletTridiag(make([]float64, 2), make([]float64, 2), 1, 1); err == nil {
		t.Error("n=2 should fail")
	}
	if err := SolveDirichletTridiag(make([]float64, 5), make([]float64, 4), 1, 1); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestSolveLengthMismatchErrors(t *testing.T) {
	g := grid.MustNew(16, 1.0)
	sor, _ := NewSOR(g, 1.0, 1.5, 0, 0)
	solvers := []Solver{NewSpectral(g, 1.0), NewSpectralFD(g, 1.0), NewCG(g, 1.0, 0, 0), sor}
	for _, s := range solvers {
		if err := s.Solve(make([]float64, 8), make([]float64, 16)); err == nil {
			t.Errorf("%s: expected length-mismatch error", s.Name())
		}
	}
}

func TestSpectral2DSingleMode(t *testing.T) {
	nx, ny := 32, 16
	lx, ly := 2.0, 1.0
	s, err := NewSpectral2D(nx, ny, lx, ly, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	kx := 2 * math.Pi * 2 / lx
	ky := 2 * math.Pi * 1 / ly
	rho := make([]float64, nx*ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			x := float64(ix) * lx / float64(nx)
			y := float64(iy) * ly / float64(ny)
			rho[iy*nx+ix] = math.Sin(kx*x) * math.Cos(ky*y)
		}
	}
	phi := make([]float64, nx*ny)
	if err := s.Solve(phi, rho); err != nil {
		t.Fatal(err)
	}
	den := kx*kx + ky*ky
	for i := range phi {
		want := rho[i] / den
		if math.Abs(phi[i]-want) > 1e-11 {
			t.Fatalf("i=%d: phi=%v want=%v", i, phi[i], want)
		}
	}
}

func TestSpectral2DValidation(t *testing.T) {
	if _, err := NewSpectral2D(1, 8, 1, 1, 1); err == nil {
		t.Error("1xN grid should fail")
	}
	if _, err := NewSpectral2D(8, 8, 0, 1, 1); err == nil {
		t.Error("zero length should fail")
	}
	s, _ := NewSpectral2D(8, 8, 1, 1, 1)
	if err := s.Solve(make([]float64, 8), make([]float64, 64)); err == nil {
		t.Error("length mismatch should fail")
	}
}

func BenchmarkSpectralSolve64(b *testing.B) {
	g := grid.MustNew(64, 2*math.Pi/3.06)
	s := NewSpectral(g, 1.0)
	rho := randomZeroMeanRho(rng.New(1), g)
	phi := make([]float64, g.N())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Solve(phi, rho); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCGSolve64(b *testing.B) {
	g := grid.MustNew(64, 2*math.Pi/3.06)
	s := NewCG(g, 1.0, 1e-10, 0)
	rho := randomZeroMeanRho(rng.New(1), g)
	phi := make([]float64, g.N())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Solve(phi, rho); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSORSolve64(b *testing.B) {
	g := grid.MustNew(64, 2*math.Pi/3.06)
	s, _ := NewSOR(g, 1.0, 1.7, 1e-8, 0)
	rho := randomZeroMeanRho(rng.New(1), g)
	phi := make([]float64, g.N())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Solve(phi, rho); err != nil {
			b.Fatal(err)
		}
	}
}
