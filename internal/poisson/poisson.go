// Package poisson provides solvers for the electrostatic field equations
// of the PIC cycle (paper Eqs. 3-4):
//
//	d2(phi)/dx2 = -rho / eps0,   E = -d(phi)/dx.
//
// Several solvers are implemented:
//
//   - Spectral: exact solve of the continuum operator in Fourier space on
//     the periodic grid (the default for the two-stream problem).
//   - SpectralFD: Fourier solve of the *discrete* three-point Laplacian
//     (same modes, finite-difference-consistent eigenvalues).
//   - CG: matrix-free conjugate gradient on the three-point Laplacian with
//     the zero-mean constraint handled by projection.
//   - SOR: successive over-relaxation (Gauss-Seidel when omega = 1).
//   - Tridiagonal: Thomas algorithm for Dirichlet problems (phi=0 at both
//     ends), provided for non-periodic use cases and cross-checks.
//
// On a periodic domain the Poisson problem is solvable only for zero-mean
// rho and determines phi up to a constant; solvers normalize to a
// zero-mean potential. The paper's configuration has an exactly neutral
// plasma (electrons plus a uniform ion background), so the projection is
// a numerical safety net rather than a physics change.
package poisson

import (
	"fmt"
	"math"

	"dlpic/internal/fft"
	"dlpic/internal/grid"
)

// Solver solves the periodic Poisson problem on a fixed grid.
// Solve computes the potential phi from the charge density rho such that
// Laplacian(phi) = -rho/eps0 with zero-mean phi. Implementations may
// assume len(phi) == len(rho) == grid.N().
type Solver interface {
	// Solve writes the zero-mean potential into phi.
	Solve(phi, rho []float64) error
	// Name identifies the solver in logs and benchmarks.
	Name() string
}

// EFromPhi computes the electric field E = -grad(phi) with the centered
// difference on the periodic grid.
func EFromPhi(g *grid.Grid, e, phi []float64) {
	g.Gradient(e, phi)
	for i := range e {
		e[i] = -e[i]
	}
}

// SolveE is a convenience helper: solve for phi, then differentiate into
// E. scratch must have length g.N() and is clobbered (it holds phi).
func SolveE(s Solver, g *grid.Grid, e, rho, scratch []float64) error {
	if err := s.Solve(scratch, rho); err != nil {
		return err
	}
	EFromPhi(g, e, scratch)
	return nil
}

// ---------------------------------------------------------------------------
// Spectral solver (continuum symbol)

// Spectral solves the periodic Poisson equation exactly in Fourier space
// using the continuum eigenvalues -k^2. It is the reference field solver
// for the two-stream experiments.
type Spectral struct {
	g    *grid.Grid
	eps0 float64
	plan *fft.Plan
	spec []complex128
	// invK2[k] = 1/k_k^2 for k != 0, 0 for the mean mode.
	invK2 []float64
}

// NewSpectral builds a spectral solver on g with vacuum permittivity eps0
// (1 in the paper's dimensionless units).
func NewSpectral(g *grid.Grid, eps0 float64) *Spectral {
	n := g.N()
	s := &Spectral{
		g:     g,
		eps0:  eps0,
		plan:  fft.MustPlan(n),
		spec:  make([]complex128, n),
		invK2: make([]float64, n),
	}
	l := g.Length()
	for k := 1; k < n; k++ {
		m := k
		if m > n/2 {
			m -= n // negative frequencies
		}
		kk := 2 * math.Pi * float64(m) / l
		s.invK2[k] = 1 / (kk * kk)
	}
	return s
}

// Name implements Solver.
func (s *Spectral) Name() string { return "spectral" }

// Solve implements Solver.
func (s *Spectral) Solve(phi, rho []float64) error {
	n := s.g.N()
	if len(phi) != n || len(rho) != n {
		return fmt.Errorf("poisson: spectral solve length mismatch phi=%d rho=%d n=%d", len(phi), len(rho), n)
	}
	s.plan.ForwardReal(s.spec, rho)
	// phi_hat = rho_hat / (eps0 * k^2); zero out the mean mode.
	s.spec[0] = 0
	for k := 1; k < n; k++ {
		s.spec[k] *= complex(s.invK2[k]/s.eps0, 0)
	}
	s.plan.InverseReal(phi, s.spec)
	return nil
}

// SolveEDirect computes E directly in Fourier space (E_hat = -i k phi_hat
// = -i rho_hat / (eps0 k)), avoiding the finite-difference gradient. Used
// by the energy-conserving scheme and by tests as a high-accuracy
// reference.
func (s *Spectral) SolveEDirect(e, rho []float64) error {
	n := s.g.N()
	if len(e) != n || len(rho) != n {
		return fmt.Errorf("poisson: SolveEDirect length mismatch")
	}
	s.plan.ForwardReal(s.spec, rho)
	s.spec[0] = 0
	l := s.g.Length()
	for k := 1; k < n; k++ {
		m := k
		if m > n/2 {
			m -= n
		}
		kk := 2 * math.Pi * float64(m) / l
		// E_hat = -i k phi_hat, phi_hat = rho_hat/(eps0 k^2)
		// => E_hat = -i rho_hat / (eps0 k)
		s.spec[k] *= complex(0, -1/(s.eps0*kk))
	}
	if n%2 == 0 {
		// The Nyquist mode has no faithful sign for the first derivative;
		// zero it for a real, symmetric field.
		s.spec[n/2] = 0
	}
	s.plan.InverseReal(e, s.spec)
	return nil
}

// ---------------------------------------------------------------------------
// Spectral solver with discrete (finite-difference) eigenvalues

// SpectralFD solves the discrete three-point Laplacian exactly in Fourier
// space: eigenvalue for mode k is -(4/dx^2) sin^2(pi k / N). Its output
// satisfies the same difference equations as CG/SOR to machine precision.
type SpectralFD struct {
	g      *grid.Grid
	eps0   float64
	plan   *fft.Plan
	spec   []complex128
	invEig []float64
}

// NewSpectralFD builds the discrete-symbol spectral solver.
func NewSpectralFD(g *grid.Grid, eps0 float64) *SpectralFD {
	n := g.N()
	s := &SpectralFD{
		g:      g,
		eps0:   eps0,
		plan:   fft.MustPlan(n),
		spec:   make([]complex128, n),
		invEig: make([]float64, n),
	}
	dx := g.Dx()
	for k := 1; k < n; k++ {
		sin := math.Sin(math.Pi * float64(k) / float64(n))
		eig := 4 / (dx * dx) * sin * sin
		s.invEig[k] = 1 / eig
	}
	return s
}

// Name implements Solver.
func (s *SpectralFD) Name() string { return "spectral-fd" }

// Solve implements Solver.
func (s *SpectralFD) Solve(phi, rho []float64) error {
	n := s.g.N()
	if len(phi) != n || len(rho) != n {
		return fmt.Errorf("poisson: spectral-fd solve length mismatch")
	}
	s.plan.ForwardReal(s.spec, rho)
	s.spec[0] = 0
	for k := 1; k < n; k++ {
		s.spec[k] *= complex(s.invEig[k]/s.eps0, 0)
	}
	s.plan.InverseReal(phi, s.spec)
	return nil
}

// ---------------------------------------------------------------------------
// Conjugate gradient

// CG solves the discrete periodic Poisson system with a matrix-free
// conjugate-gradient iteration. The periodic Laplacian is singular (the
// constant vector spans its null space); CG projects the right-hand side
// and iterates onto the zero-mean complement where the operator is SPD
// (after sign flip).
type CG struct {
	g       *grid.Grid
	eps0    float64
	tol     float64
	maxIter int
	r, p, q []float64

	// LastIterations reports the iteration count of the most recent Solve.
	LastIterations int
}

// NewCG builds a CG solver. tol is the relative residual target
// (default 1e-10 if <= 0); maxIter defaults to 10*N if <= 0.
func NewCG(g *grid.Grid, eps0, tol float64, maxIter int) *CG {
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 10 * g.N()
	}
	n := g.N()
	return &CG{
		g: g, eps0: eps0, tol: tol, maxIter: maxIter,
		r: make([]float64, n), p: make([]float64, n), q: make([]float64, n),
	}
}

// Name implements Solver.
func (c *CG) Name() string { return "cg" }

// Solve implements Solver.
func (c *CG) Solve(phi, rho []float64) error {
	n := c.g.N()
	if len(phi) != n || len(rho) != n {
		return fmt.Errorf("poisson: cg solve length mismatch")
	}
	// System: A phi = b with A = -Laplacian (SPD on zero-mean subspace),
	// b = rho/eps0 projected to zero mean.
	b := c.r
	for i := range b {
		b[i] = rho[i] / c.eps0
	}
	c.g.SubtractMean(b)

	for i := range phi {
		phi[i] = 0
	}
	// r = b - A*0 = b  (already in c.r)
	copy(c.p, b)
	rs := dot(b, b)
	bNorm := math.Sqrt(rs)
	if bNorm == 0 {
		c.LastIterations = 0
		return nil
	}
	var it int
	for it = 0; it < c.maxIter; it++ {
		c.applyA(c.q, c.p)
		alpha := rs / dot(c.p, c.q)
		for i := range phi {
			phi[i] += alpha * c.p[i]
		}
		for i := range c.r {
			c.r[i] -= alpha * c.q[i]
		}
		rsNew := dot(c.r, c.r)
		if math.Sqrt(rsNew) <= c.tol*bNorm {
			it++
			break
		}
		beta := rsNew / rs
		for i := range c.p {
			c.p[i] = c.r[i] + beta*c.p[i]
		}
		rs = rsNew
	}
	c.LastIterations = it
	c.g.SubtractMean(phi)
	return nil
}

// applyA computes dst = -Laplacian(src) on the periodic grid.
func (c *CG) applyA(dst, src []float64) {
	c.g.Laplacian(dst, src)
	for i := range dst {
		dst[i] = -dst[i]
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// ---------------------------------------------------------------------------
// SOR

// SOR solves the discrete periodic Poisson system with successive
// over-relaxation sweeps. omega = 1 degenerates to Gauss-Seidel.
type SOR struct {
	g       *grid.Grid
	eps0    float64
	omega   float64
	tol     float64
	maxIter int
	res     []float64

	// LastIterations reports the sweep count of the most recent Solve.
	LastIterations int
}

// NewSOR builds an SOR solver. omega must be in (0, 2); tol and maxIter
// default as in NewCG.
func NewSOR(g *grid.Grid, eps0, omega, tol float64, maxIter int) (*SOR, error) {
	if !(omega > 0 && omega < 2) {
		return nil, fmt.Errorf("poisson: SOR omega %v outside (0,2)", omega)
	}
	if tol <= 0 {
		tol = 1e-8
	}
	if maxIter <= 0 {
		maxIter = 200 * g.N()
	}
	return &SOR{g: g, eps0: eps0, omega: omega, tol: tol, maxIter: maxIter, res: make([]float64, g.N())}, nil
}

// Name implements Solver.
func (s *SOR) Name() string { return "sor" }

// Solve implements Solver.
func (s *SOR) Solve(phi, rho []float64) error {
	n := s.g.N()
	if len(phi) != n || len(rho) != n {
		return fmt.Errorf("poisson: sor solve length mismatch")
	}
	dx2 := s.g.Dx() * s.g.Dx()
	b := s.res // reuse as scratch for projected rhs
	for i := range b {
		b[i] = rho[i] / s.eps0
	}
	s.g.SubtractMean(b)
	var bNorm float64
	for _, v := range b {
		bNorm += v * v
	}
	bNorm = math.Sqrt(bNorm)
	if bNorm == 0 {
		for i := range phi {
			phi[i] = 0
		}
		s.LastIterations = 0
		return nil
	}
	for i := range phi {
		phi[i] = 0
	}
	var sweep int
	for sweep = 0; sweep < s.maxIter; sweep++ {
		// Discrete equation: (phi[i-1] - 2 phi[i] + phi[i+1])/dx2 = -b[i]
		// => phi[i] = (phi[i-1] + phi[i+1] + dx2*b[i]) / 2
		for i := 0; i < n; i++ {
			im := i - 1
			if im < 0 {
				im = n - 1
			}
			ip := i + 1
			if ip == n {
				ip = 0
			}
			gsUpdate := 0.5 * (phi[im] + phi[ip] + dx2*b[i])
			phi[i] += s.omega * (gsUpdate - phi[i])
		}
		// Convergence check every few sweeps (residual is O(n) work).
		if sweep%8 == 7 {
			var rNorm float64
			for i := 0; i < n; i++ {
				im := i - 1
				if im < 0 {
					im = n - 1
				}
				ip := i + 1
				if ip == n {
					ip = 0
				}
				r := (phi[im]-2*phi[i]+phi[ip])/dx2 + b[i]
				rNorm += r * r
			}
			if math.Sqrt(rNorm) <= s.tol*bNorm {
				sweep++
				break
			}
		}
	}
	s.LastIterations = sweep
	s.g.SubtractMean(phi)
	return nil
}

// ---------------------------------------------------------------------------
// Tridiagonal (Dirichlet)

// SolveDirichletTridiag solves phi” = -rho/eps0 on [0, L] with
// phi(0) = phi(L) = 0 using the Thomas algorithm on interior nodes.
// rho and phi have length n (nodes 0..n-1 at spacing dx = L/(n-1));
// phi[0] and phi[n-1] are set to zero. This solver serves non-periodic
// use cases (e.g. bounded sheath problems) and acts as an independently
// derived cross-check for the iterative kernels.
func SolveDirichletTridiag(phi, rho []float64, length, eps0 float64) error {
	n := len(phi)
	if len(rho) != n {
		return fmt.Errorf("poisson: tridiag length mismatch phi=%d rho=%d", len(rho), n)
	}
	if n < 3 {
		return fmt.Errorf("poisson: tridiag needs >= 3 nodes, got %d", n)
	}
	dx := length / float64(n-1)
	dx2 := dx * dx
	m := n - 2 // interior unknowns
	// System: (phi[i-1] - 2 phi[i] + phi[i+1]) = -dx2 * rho[i]/eps0.
	// Standard Thomas forward elimination with constant coefficients.
	cp := make([]float64, m)
	dp := make([]float64, m)
	beta := -2.0
	cp[0] = 1.0 / beta
	dp[0] = (-dx2 * rho[1] / eps0) / beta
	for i := 1; i < m; i++ {
		denom := beta - cp[i-1]
		cp[i] = 1.0 / denom
		dp[i] = ((-dx2 * rho[i+1] / eps0) - dp[i-1]) / denom
	}
	phi[0], phi[n-1] = 0, 0
	phi[n-2] = dp[m-1]
	for i := m - 2; i >= 0; i-- {
		phi[i+1] = dp[i] - cp[i]*phi[i+2]
	}
	return nil
}

// Residual computes the max-norm residual |Laplacian(phi) + rho/eps0| of
// a candidate periodic solution; used by tests and health checks.
func Residual(g *grid.Grid, phi, rho []float64, eps0 float64) float64 {
	n := g.N()
	lap := make([]float64, n)
	g.Laplacian(lap, phi)
	var maxRes float64
	mean := g.Mean(rho)
	for i := 0; i < n; i++ {
		r := math.Abs(lap[i] + (rho[i]-mean)/eps0)
		if r > maxRes {
			maxRes = r
		}
	}
	return maxRes
}
