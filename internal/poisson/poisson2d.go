package poisson

import (
	"fmt"
	"math"

	"dlpic/internal/fft"
)

// Spectral2D solves the periodic Poisson equation on a 2D nx-by-ny grid
// spanning [0,Lx) x [0,Ly): Laplacian(phi) = -rho/eps0 with zero-mean phi.
// Fields are stored row-major: f[iy*nx + ix].
//
// This is the first substrate step toward the paper's stated future work
// of extending the DL-PIC method to two- and three-dimensional systems;
// none of the 1D experiments depend on it.
type Spectral2D struct {
	nx, ny  int
	eps0    float64
	planX   *fft.Plan
	planY   *fft.Plan
	invK2   []float64 // per (ky, kx) inverse eigenvalue, 0 at the mean mode
	rowBuf  []complex128
	colBuf  []complex128
	specBuf []complex128
}

// NewSpectral2D builds a 2D periodic spectral solver.
func NewSpectral2D(nx, ny int, lx, ly, eps0 float64) (*Spectral2D, error) {
	if nx < 2 || ny < 2 {
		return nil, fmt.Errorf("poisson: 2D grid must be at least 2x2, got %dx%d", nx, ny)
	}
	if !(lx > 0) || !(ly > 0) {
		return nil, fmt.Errorf("poisson: 2D domain lengths must be positive")
	}
	s := &Spectral2D{
		nx: nx, ny: ny, eps0: eps0,
		planX:   fft.MustPlan(nx),
		planY:   fft.MustPlan(ny),
		invK2:   make([]float64, nx*ny),
		rowBuf:  make([]complex128, nx),
		colBuf:  make([]complex128, ny),
		specBuf: make([]complex128, nx*ny),
	}
	for ky := 0; ky < ny; ky++ {
		my := ky
		if my > ny/2 {
			my -= ny
		}
		kyv := 2 * math.Pi * float64(my) / ly
		for kx := 0; kx < nx; kx++ {
			mx := kx
			if mx > nx/2 {
				mx -= nx
			}
			kxv := 2 * math.Pi * float64(mx) / lx
			k2 := kxv*kxv + kyv*kyv
			if k2 > 0 {
				s.invK2[ky*nx+kx] = 1 / k2
			}
		}
	}
	return s, nil
}

// Name identifies the solver.
func (s *Spectral2D) Name() string { return "spectral-2d" }

// Solve computes the zero-mean potential phi from rho (both row-major
// ny*nx arrays).
func (s *Spectral2D) Solve(phi, rho []float64) error {
	n := s.nx * s.ny
	if len(phi) != n || len(rho) != n {
		return fmt.Errorf("poisson: 2D solve length mismatch phi=%d rho=%d n=%d", len(phi), len(rho), n)
	}
	// Forward transform: rows then columns.
	for iy := 0; iy < s.ny; iy++ {
		row := s.specBuf[iy*s.nx : (iy+1)*s.nx]
		for ix := 0; ix < s.nx; ix++ {
			row[ix] = complex(rho[iy*s.nx+ix], 0)
		}
		s.planX.Forward(row)
	}
	for ix := 0; ix < s.nx; ix++ {
		for iy := 0; iy < s.ny; iy++ {
			s.colBuf[iy] = s.specBuf[iy*s.nx+ix]
		}
		s.planY.Forward(s.colBuf)
		for iy := 0; iy < s.ny; iy++ {
			s.specBuf[iy*s.nx+ix] = s.colBuf[iy]
		}
	}
	// Apply the inverse symbol.
	for i := range s.specBuf {
		s.specBuf[i] *= complex(s.invK2[i]/s.eps0, 0)
	}
	s.specBuf[0] = 0
	// Inverse transform: columns then rows.
	for ix := 0; ix < s.nx; ix++ {
		for iy := 0; iy < s.ny; iy++ {
			s.colBuf[iy] = s.specBuf[iy*s.nx+ix]
		}
		s.planY.Inverse(s.colBuf)
		for iy := 0; iy < s.ny; iy++ {
			s.specBuf[iy*s.nx+ix] = s.colBuf[iy]
		}
	}
	for iy := 0; iy < s.ny; iy++ {
		row := s.specBuf[iy*s.nx : (iy+1)*s.nx]
		s.planX.Inverse(row)
		for ix := 0; ix < s.nx; ix++ {
			phi[iy*s.nx+ix] = real(row[ix])
		}
	}
	return nil
}
