// Package pic2d implements a two-dimensional electrostatic
// Particle-in-Cell simulator on a doubly periodic box — the first step
// of the paper's stated future work ("extend the method to study two-
// and three-dimensional systems"). It mirrors the 1D design: CIC
// particle-grid interpolation, leapfrog push, spectral Poisson solve,
// neutralizing ion background, and the same diagnostics, so the
// phase-space-binning DL field stage can later slot in the same way.
package pic2d

import (
	"errors"
	"fmt"
	"math"

	"dlpic/internal/diag"
	"dlpic/internal/fft"
	"dlpic/internal/parallel"
	"dlpic/internal/poisson"
	"dlpic/internal/rng"
)

// Config describes the 2D system. Two counter-streaming beams drift
// along x at +-V0 with isotropic thermal spread Vth.
type Config struct {
	// NX, NY are grid cells; LX, LY the box lengths.
	NX, NY int
	LX, LY float64
	// Dt is the time step.
	Dt float64
	// ParticlesPerCell is the macro-electron count per cell.
	ParticlesPerCell int
	// V0, Vth configure the beams.
	V0, Vth float64
	// PerturbAmp seeds the (PerturbMode, 0) mode via x-displacement.
	PerturbAmp  float64
	PerturbMode int
	// Physics normalization, as in the 1D code.
	Eps0, Wp, QOverM float64
	// DiagMode is the monitored kx mode of the y-averaged field.
	DiagMode int
	// Seed drives the loading.
	Seed uint64
}

// Default returns a 2D configuration analogous to the paper's 1D box:
// the same length and mode structure along x, a square-ish box in y.
func Default() Config {
	l := 2 * math.Pi / 3.06
	return Config{
		NX: 64, NY: 16, LX: l, LY: l / 4,
		Dt: 0.2, ParticlesPerCell: 50,
		V0: 0.2, Vth: 0.025,
		Eps0: 1, Wp: 1, QOverM: -1,
		DiagMode: 1, Seed: 1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.NX < 2 || c.NY < 2:
		return fmt.Errorf("pic2d: grid %dx%d too small", c.NX, c.NY)
	case !(c.LX > 0) || !(c.LY > 0):
		return fmt.Errorf("pic2d: non-positive box %vx%v", c.LX, c.LY)
	case !(c.Dt > 0):
		return fmt.Errorf("pic2d: non-positive dt")
	case c.ParticlesPerCell < 1:
		return fmt.Errorf("pic2d: ParticlesPerCell = %d", c.ParticlesPerCell)
	case c.Vth < 0:
		return fmt.Errorf("pic2d: negative vth")
	case !(c.Eps0 > 0) || !(c.Wp > 0):
		return fmt.Errorf("pic2d: non-positive eps0/wp")
	case c.QOverM == 0:
		return fmt.Errorf("pic2d: zero q/m")
	case c.DiagMode < 0 || c.DiagMode > c.NX/2:
		return fmt.Errorf("pic2d: diag mode %d out of range", c.DiagMode)
	}
	if c.Dt*c.Wp >= 2 {
		return fmt.Errorf("pic2d: leapfrog unstable: wp*dt = %v", c.Dt*c.Wp)
	}
	return nil
}

// NumParticles returns the total macro-electron count.
func (c Config) NumParticles() int { return c.NX * c.NY * c.ParticlesPerCell }

// Simulation is a running 2D system.
type Simulation struct {
	Cfg Config

	// Particle state (SoA).
	X, Y, VX, VY []float64
	// Charge and Mass per macro-particle.
	Charge, Mass float64

	// Grid fields, row-major [iy*NX + ix].
	Rho, Phi, Ex, Ey []float64

	// Per-particle gathered fields (scratch).
	epx, epy []float64

	ionRho float64
	solver *poisson.Spectral2D
	dx, dy float64
	planX  *fft.Plan

	stepN int
	time  float64
}

// New loads the beams and computes the initial field.
func New(cfg Config) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	solver, err := poisson.NewSpectral2D(cfg.NX, cfg.NY, cfg.LX, cfg.LY, cfg.Eps0)
	if err != nil {
		return nil, err
	}
	n := cfg.NumParticles()
	if n%2 != 0 {
		n++ // keep the beams symmetric
	}
	area := cfg.LX * cfg.LY
	// wp^2 = (N q / A)(q/m)/eps0 => q = wp^2 eps0 A / (N (q/m)).
	q := cfg.Wp * cfg.Wp * cfg.Eps0 * area / (float64(n) * cfg.QOverM)
	m := q / cfg.QOverM
	cells := cfg.NX * cfg.NY
	s := &Simulation{
		Cfg:    cfg,
		X:      make([]float64, n),
		Y:      make([]float64, n),
		VX:     make([]float64, n),
		VY:     make([]float64, n),
		Charge: q, Mass: m,
		Rho: make([]float64, cells),
		Phi: make([]float64, cells),
		Ex:  make([]float64, cells),
		Ey:  make([]float64, cells),
		epx: make([]float64, n),
		epy: make([]float64, n),
		// Neutralizing background: -N q / A.
		ionRho: -float64(n) * q / area,
		solver: solver,
		dx:     cfg.LX / float64(cfg.NX),
		dy:     cfg.LY / float64(cfg.NY),
		planX:  fft.MustPlan(cfg.NX),
	}
	r := rng.New(cfg.Seed)
	half := n / 2
	for i := 0; i < n; i++ {
		x := r.Float64() * cfg.LX
		if cfg.PerturbAmp != 0 && cfg.PerturbMode > 0 {
			x += cfg.PerturbAmp * math.Sin(2*math.Pi*float64(cfg.PerturbMode)*x/cfg.LX)
			x = math.Mod(x, cfg.LX)
			if x < 0 {
				x += cfg.LX
			}
		}
		s.X[i] = x
		s.Y[i] = r.Float64() * cfg.LY
		drift := cfg.V0
		if i >= half {
			drift = -cfg.V0
		}
		s.VX[i] = drift
		if cfg.Vth > 0 {
			s.VX[i] += cfg.Vth * r.NormFloat64()
			s.VY[i] = cfg.Vth * r.NormFloat64()
		}
	}
	if err := s.solveField(); err != nil {
		return nil, err
	}
	// De-stagger velocities by -dt/2.
	s.gather()
	h := 0.5 * cfg.QOverM * cfg.Dt
	parallel.For(len(s.VX), func(start, end int) {
		for i := start; i < end; i++ {
			s.VX[i] -= h * s.epx[i]
			s.VY[i] -= h * s.epy[i]
		}
	})
	return s, nil
}

// Time returns the current simulation time.
func (s *Simulation) Time() float64 { return s.time }

// StepCount returns the completed step count.
func (s *Simulation) StepCount() int { return s.stepN }

// deposit accumulates the bilinear (CIC) charge density with the
// blocked deterministic scatter-reduce: the per-chunk partial grids are
// summed into Rho in chunk order per element, with disjoint grid blocks
// owned by different workers, so the 2D grid's k*NX*NY reduction
// parallelizes too while staying bit-identical at every GOMAXPROCS.
func (s *Simulation) deposit() {
	nx, ny := s.Cfg.NX, s.Cfg.NY
	invDx, invDy := 1/s.dx, 1/s.dy
	parallel.ScatterReduceBlocked(len(s.X), s.Rho, func(buf []float64, start, end int) {
		for p := start; p < end; p++ {
			hx := s.X[p] * invDx
			hy := s.Y[p] * invDy
			ix := int(hx)
			iy := int(hy)
			fx := hx - float64(ix)
			fy := hy - float64(iy)
			if ix >= nx {
				ix -= nx
			}
			if iy >= ny {
				iy -= ny
			}
			ix1 := ix + 1
			if ix1 == nx {
				ix1 = 0
			}
			iy1 := iy + 1
			if iy1 == ny {
				iy1 = 0
			}
			buf[iy*nx+ix] += (1 - fx) * (1 - fy)
			buf[iy*nx+ix1] += fx * (1 - fy)
			buf[iy1*nx+ix] += (1 - fx) * fy
			buf[iy1*nx+ix1] += fx * fy
		}
	})
	scale := s.Charge * invDx * invDy
	for i := range s.Rho {
		s.Rho[i] = s.Rho[i]*scale + s.ionRho
	}
}

// solveField runs deposit -> Poisson -> E = -grad(phi).
func (s *Simulation) solveField() error {
	s.deposit()
	if err := s.solver.Solve(s.Phi, s.Rho); err != nil {
		return err
	}
	nx, ny := s.Cfg.NX, s.Cfg.NY
	inv2dx, inv2dy := 1/(2*s.dx), 1/(2*s.dy)
	// Rows are independent (disjoint writes), so the row loop is safe to
	// split; the per-cell values do not depend on the split.
	parallel.ForThreshold(ny, 8, func(startY, endY int) {
		for iy := startY; iy < endY; iy++ {
			iym := iy - 1
			if iym < 0 {
				iym = ny - 1
			}
			iyp := iy + 1
			if iyp == ny {
				iyp = 0
			}
			for ix := 0; ix < nx; ix++ {
				ixm := ix - 1
				if ixm < 0 {
					ixm = nx - 1
				}
				ixp := ix + 1
				if ixp == nx {
					ixp = 0
				}
				s.Ex[iy*nx+ix] = -(s.Phi[iy*nx+ixp] - s.Phi[iy*nx+ixm]) * inv2dx
				s.Ey[iy*nx+ix] = -(s.Phi[iyp*nx+ix] - s.Phi[iym*nx+ix]) * inv2dy
			}
		}
	})
	return nil
}

// gather interpolates (Ex, Ey) to the particles with CIC weights.
func (s *Simulation) gather() {
	nx, ny := s.Cfg.NX, s.Cfg.NY
	invDx, invDy := 1/s.dx, 1/s.dy
	parallel.For(len(s.X), func(start, end int) {
		for p := start; p < end; p++ {
			hx := s.X[p] * invDx
			hy := s.Y[p] * invDy
			ix := int(hx)
			iy := int(hy)
			fx := hx - float64(ix)
			fy := hy - float64(iy)
			if ix >= nx {
				ix -= nx
			}
			if iy >= ny {
				iy -= ny
			}
			ix1 := ix + 1
			if ix1 == nx {
				ix1 = 0
			}
			iy1 := iy + 1
			if iy1 == ny {
				iy1 = 0
			}
			w00 := (1 - fx) * (1 - fy)
			w10 := fx * (1 - fy)
			w01 := (1 - fx) * fy
			w11 := fx * fy
			s.epx[p] = w00*s.Ex[iy*nx+ix] + w10*s.Ex[iy*nx+ix1] +
				w01*s.Ex[iy1*nx+ix] + w11*s.Ex[iy1*nx+ix1]
			s.epy[p] = w00*s.Ey[iy*nx+ix] + w10*s.Ey[iy*nx+ix1] +
				w01*s.Ey[iy1*nx+ix] + w11*s.Ey[iy1*nx+ix1]
		}
	})
}

// Step advances one leapfrog step and returns the diagnostics sample at
// the starting time level.
func (s *Simulation) Step() (diag.Sample, error) {
	cfg := s.Cfg
	s.gather()
	qm, dt := cfg.QOverM, cfg.Dt
	var sums [2]float64
	parallel.ReduceSums(len(s.X), sums[:], func(partial []float64, start, end int) {
		var k, mx float64
		for i := start; i < end; i++ {
			vxOld, vyOld := s.VX[i], s.VY[i]
			vxNew := vxOld + qm*s.epx[i]*dt
			vyNew := vyOld + qm*s.epy[i]*dt
			s.VX[i] = vxNew
			s.VY[i] = vyNew
			k += vxOld*vxNew + vyOld*vyNew
			mx += 0.5 * (vxOld + vxNew)
		}
		partial[0] += k
		partial[1] += mx
	})
	sample := diag.Sample{
		Step: s.stepN, Time: s.time,
		Kinetic:  0.5 * s.Mass * sums[0],
		Field:    s.fieldEnergy(),
		Momentum: s.Mass * sums[1],
		ModeAmp:  s.modeAmplitude(cfg.DiagMode),
	}
	sample.Total = sample.Kinetic + sample.Field
	// Drift with periodic wrap.
	lx, ly := cfg.LX, cfg.LY
	parallel.For(len(s.X), func(start, end int) {
		for i := start; i < end; i++ {
			x := s.X[i] + s.VX[i]*dt
			for x >= lx {
				x -= lx
			}
			for x < 0 {
				x += lx
			}
			s.X[i] = x
			y := s.Y[i] + s.VY[i]*dt
			for y >= ly {
				y -= ly
			}
			for y < 0 {
				y += ly
			}
			s.Y[i] = y
		}
	})
	if err := s.solveField(); err != nil {
		return sample, err
	}
	s.stepN++
	s.time += dt
	return sample, nil
}

// Run advances n steps, recording diagnostics.
func (s *Simulation) Run(n int, rec *diag.Recorder) error {
	if n < 0 {
		return errors.New("pic2d: negative step count")
	}
	for i := 0; i < n; i++ {
		sample, err := s.Step()
		if err != nil {
			return err
		}
		if rec != nil {
			rec.Add(sample)
		}
	}
	return nil
}

// fieldEnergy returns eps0/2 integral(|E|^2).
func (s *Simulation) fieldEnergy() float64 {
	var sum float64
	for i := range s.Ex {
		sum += s.Ex[i]*s.Ex[i] + s.Ey[i]*s.Ey[i]
	}
	return 0.5 * s.Cfg.Eps0 * sum * s.dx * s.dy
}

// modeAmplitude returns the amplitude of kx mode m of the y-averaged Ex.
func (s *Simulation) modeAmplitude(m int) float64 {
	nx, ny := s.Cfg.NX, s.Cfg.NY
	avg := make([]float64, nx)
	for iy := 0; iy < ny; iy++ {
		row := s.Ex[iy*nx : (iy+1)*nx]
		for ix, v := range row {
			avg[ix] += v
		}
	}
	for ix := range avg {
		avg[ix] /= float64(ny)
	}
	return diag.ModeAmplitude(s.planX, avg, m)
}

// TotalCharge integrates rho over the box (machine zero for a neutral
// system).
func (s *Simulation) TotalCharge() float64 {
	var sum float64
	for _, v := range s.Rho {
		sum += v
	}
	return sum * s.dx * s.dy
}

// CheckFinite scans for NaN/Inf in particles and fields.
func (s *Simulation) CheckFinite() error {
	for i := range s.X {
		if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsNaN(s.VX[i]) || math.IsNaN(s.VY[i]) {
			return fmt.Errorf("pic2d: non-finite particle %d", i)
		}
	}
	for i := range s.Ex {
		if math.IsNaN(s.Ex[i]) || math.IsInf(s.Ex[i], 0) || math.IsNaN(s.Ey[i]) || math.IsInf(s.Ey[i], 0) {
			return fmt.Errorf("pic2d: non-finite field at %d", i)
		}
	}
	return nil
}
