package pic2d

import (
	"math"
	"testing"

	"dlpic/internal/diag"
	"dlpic/internal/theory"
)

func fastCfg() Config {
	cfg := Default()
	cfg.ParticlesPerCell = 20
	cfg.Vth = 0
	cfg.PerturbAmp = 1e-4 * cfg.LX
	cfg.PerturbMode = 1
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := Default()
	if err := good.Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NX = 1 },
		func(c *Config) { c.NY = 0 },
		func(c *Config) { c.LX = 0 },
		func(c *Config) { c.LY = -1 },
		func(c *Config) { c.Dt = 0 },
		func(c *Config) { c.ParticlesPerCell = 0 },
		func(c *Config) { c.Vth = -1 },
		func(c *Config) { c.Eps0 = 0 },
		func(c *Config) { c.QOverM = 0 },
		func(c *Config) { c.DiagMode = 999 },
		func(c *Config) { c.Dt = 5 },
	}
	for i, mutate := range bad {
		cfg := Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestChargeNeutrality(t *testing.T) {
	sim, err := New(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if q := sim.TotalCharge(); math.Abs(q) > 1e-9 {
		t.Fatalf("net charge %v", q)
	}
}

func TestNormalizationGivesWp(t *testing.T) {
	cfg := fastCfg()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// wp^2 = (N q / A)(q/m)/eps0 must equal 1.
	n := float64(len(sim.X))
	area := cfg.LX * cfg.LY
	wp2 := (n * sim.Charge / area) * cfg.QOverM / cfg.Eps0
	if math.Abs(wp2-1) > 1e-12 {
		t.Fatalf("wp^2 = %v", wp2)
	}
}

func TestParticlesStayInBox(t *testing.T) {
	cfg := fastCfg()
	cfg.Vth = 0.05
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(50, nil); err != nil {
		t.Fatal(err)
	}
	for i := range sim.X {
		if sim.X[i] < 0 || sim.X[i] >= cfg.LX || sim.Y[i] < 0 || sim.Y[i] >= cfg.LY {
			t.Fatalf("particle %d escaped: (%v, %v)", i, sim.X[i], sim.Y[i])
		}
	}
	if err := sim.CheckFinite(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		sim, err := New(fastCfg())
		if err != nil {
			t.Fatal(err)
		}
		var rec diag.Recorder
		if err := sim.Run(20, &rec); err != nil {
			t.Fatal(err)
		}
		tot, _ := rec.Series("total")
		return tot[len(tot)-1]
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

// The 2D two-stream instability with k along x must reproduce the same
// linear growth rate as the 1D problem (the transverse direction is a
// spectator for the (m, 0) mode).
func TestTwoStream2DGrowthMatches1DTheory(t *testing.T) {
	cfg := fastCfg()
	cfg.ParticlesPerCell = 60
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	if err := sim.Run(150, &rec); err != nil {
		t.Fatal(err)
	}
	amps, _ := rec.Series("mode")
	times := rec.Times()
	t0, t1, err := diag.AutoGrowthWindow(times, amps, 0.02, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := diag.FitGrowthRate(times, amps, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	want := theory.TwoStream{Wp: cfg.Wp, V0: cfg.V0}.GrowthRate(2 * math.Pi / cfg.LX)
	if math.Abs(fit.Gamma-want)/want > 0.2 {
		t.Fatalf("2D growth %v, 1D theory %v (%.0f%% off)", fit.Gamma, want, 100*math.Abs(fit.Gamma-want)/want)
	}
}

func TestEnergyBounded2D(t *testing.T) {
	cfg := fastCfg()
	cfg.ParticlesPerCell = 40
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	if err := sim.Run(150, &rec); err != nil {
		t.Fatal(err)
	}
	tot, _ := rec.Series("total")
	if v := diag.MaxRelativeVariation(tot); v > 0.08 {
		t.Fatalf("2D energy variation %.2f%%", 100*v)
	}
}

func TestMomentumConservation2D(t *testing.T) {
	cfg := fastCfg()
	cfg.ParticlesPerCell = 40
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	if err := sim.Run(100, &rec); err != nil {
		t.Fatal(err)
	}
	mom, _ := rec.Series("momentum")
	scale := sim.Mass * float64(len(sim.X)) / 2 * cfg.V0
	if d := math.Abs(diag.Drift(mom)) / scale; d > 1e-6 {
		t.Fatalf("x-momentum drifted %.2e of beam scale", d)
	}
}

func TestColdUniformPlasmaQuiescent2D(t *testing.T) {
	// No perturbation, no drift, no thermal spread: with random loading
	// only shot noise remains; the field energy must stay tiny compared
	// to a driven run.
	cfg := fastCfg()
	cfg.V0 = 0
	cfg.PerturbAmp = 0
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rec diag.Recorder
	if err := sim.Run(50, &rec); err != nil {
		t.Fatal(err)
	}
	field, _ := rec.Series("field")
	for i, f := range field {
		if f > 1e-3 {
			t.Fatalf("noise field energy %v at step %d too large", f, i)
		}
	}
}

func TestRunNegative(t *testing.T) {
	sim, err := New(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(-1, nil); err == nil {
		t.Fatal("negative steps should error")
	}
}

func BenchmarkStep2D(b *testing.B) {
	cfg := Default()
	cfg.ParticlesPerCell = 50
	sim, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
