package pic2d

import (
	"runtime"
	"testing"

	"dlpic/internal/diag"
)

// The 2D step (CIC deposit, spectral solve, kick, drift) must evolve
// bit-identically at every GOMAXPROCS.
func TestSimulation2DBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	cfg := Default()
	cfg.ParticlesPerCell = 10 // 64*16*10 = 10240 particles: several chunks
	cfg.Seed = 9
	const steps = 10
	run := func(procs int) (diag.Recorder, []float64, []float64) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var rec diag.Recorder
		if err := sim.Run(steps, &rec); err != nil {
			t.Fatal(err)
		}
		return rec, append([]float64(nil), sim.X...), append([]float64(nil), sim.VX...)
	}
	refRec, refX, refVX := run(1)
	for _, procs := range []int{2, 8} {
		rec, x, vx := run(procs)
		for i := range rec.Samples {
			if rec.Samples[i] != refRec.Samples[i] {
				t.Fatalf("GOMAXPROCS=%d: sample %d %+v != serial %+v",
					procs, i, rec.Samples[i], refRec.Samples[i])
			}
		}
		for i := range x {
			if x[i] != refX[i] || vx[i] != refVX[i] {
				t.Fatalf("GOMAXPROCS=%d: particle %d differs from serial", procs, i)
			}
		}
	}
}
