package pic2d

import (
	"runtime"
	"testing"

	"dlpic/internal/diag"
)

// The 2D step (CIC deposit, spectral solve, kick, drift) must evolve
// bit-identically at every GOMAXPROCS.
func TestSimulation2DBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	cfg := Default()
	cfg.ParticlesPerCell = 10 // 64*16*10 = 10240 particles: several chunks
	cfg.Seed = 9
	const steps = 10
	run := func(procs int) (diag.Recorder, []float64, []float64) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var rec diag.Recorder
		if err := sim.Run(steps, &rec); err != nil {
			t.Fatal(err)
		}
		return rec, append([]float64(nil), sim.X...), append([]float64(nil), sim.VX...)
	}
	refRec, refX, refVX := run(1)
	for _, procs := range []int{2, 8} {
		rec, x, vx := run(procs)
		for i := range rec.Samples {
			if rec.Samples[i] != refRec.Samples[i] {
				t.Fatalf("GOMAXPROCS=%d: sample %d %+v != serial %+v",
					procs, i, rec.Samples[i], refRec.Samples[i])
			}
		}
		for i := range x {
			if x[i] != refX[i] || vx[i] != refVX[i] {
				t.Fatalf("GOMAXPROCS=%d: particle %d differs from serial", procs, i)
			}
		}
	}
}

// The blocked deposit reduction must produce the same density grid at
// every GOMAXPROCS: the chunk decomposition depends only on the
// particle count and each grid element sums its per-chunk partials in
// chunk order, regardless of which worker owns the element's block.
func TestDeposit2DBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	cfg := Default()
	cfg.ParticlesPerCell = 12 // > 1 chunk of particles
	cfg.Seed = 31
	ref := func() []float64 {
		old := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(old)
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sim.deposit()
		return append([]float64(nil), sim.Rho...)
	}()
	for _, procs := range []int{2, 4, 8} {
		old := runtime.GOMAXPROCS(procs)
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sim.deposit()
		runtime.GOMAXPROCS(old)
		for i := range ref {
			if sim.Rho[i] != ref[i] {
				t.Fatalf("GOMAXPROCS=%d: rho[%d] = %v, serial %v", procs, i, sim.Rho[i], ref[i])
			}
		}
	}
}
