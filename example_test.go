package dlpic_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dlpic"
)

// ExampleRunSweep fans a small two-stream parameter scan across the
// concurrent sweep engine. Seeds are pre-derived in scenario order by
// SweepGrid and every kernel reduces deterministically, so the results
// are bit-identical at any Workers setting.
func ExampleRunSweep() {
	base := dlpic.DefaultConfig()
	base.ParticlesPerCell = 50 // laptop-scale example
	scs := dlpic.SweepGrid(base, []float64{0.15, 0.2}, []float64{0.025}, 1, 60, 1)
	results := dlpic.RunSweep(scs, dlpic.SweepRunOpts{Workers: 4, SkipFit: true})
	if err := dlpic.FirstSweepError(results); err != nil {
		fmt.Println("sweep failed:", err)
		return
	}
	for _, r := range results {
		fmt.Printf("%s: %d samples, theory gamma %.3f\n",
			r.Scenario.Name, r.Rec.Len(), r.TheoryGamma)
	}
	// Output:
	// v0=0.15 vth=0.025 rep=0: 60 samples, theory gamma 0.330
	// v0=0.2 vth=0.025 rep=0: 60 samples, theory gamma 0.354
}

// ExampleNetwork_PredictBatch stacks several field-solve inputs through
// one forward pass. Each output row is bit-identical to the Predict1
// result for the same input row — the property that lets the batched
// inference server mix scenarios freely without changing any of them.
func ExampleNetwork_PredictBatch() {
	cfg := dlpic.DefaultConfig()
	spec := dlpic.DefaultPhaseSpec(cfg)
	spec.NX, spec.NV = 16, 8 // small example network
	net, err := dlpic.BuildNetwork(dlpic.SolverOpts{Arch: dlpic.ArchMLP, Hidden: 12, Layers: 2, Seed: 3}, spec, 16)
	if err != nil {
		fmt.Println("build failed:", err)
		return
	}
	const batch = 3
	in := make([]float64, batch*net.InDim)
	for i := range in {
		in[i] = float64(i%7) / 7
	}
	outDim := net.OutDim()
	batched := make([]float64, batch*outDim)
	net.PredictBatch(batch, in, batched)

	identical := true
	row := make([]float64, outDim)
	for r := 0; r < batch; r++ {
		net.Predict1(in[r*net.InDim:(r+1)*net.InDim], row)
		for j := range row {
			if row[j] != batched[r*outDim+j] {
				identical = false
			}
		}
	}
	fmt.Printf("%d rows of %d outputs; bit-identical to Predict1: %v\n", batch, outDim, identical)
	// Output:
	// 3 rows of 16 outputs; bit-identical to Predict1: true
}

// ExampleRunCampaign runs a journaled multi-method campaign, simulates
// a mid-run kill by truncating the journal to its first two cells, and
// resumes: the restored-plus-rerun results are bit-identical to the
// uninterrupted campaign (CampaignDigest covers everything but
// wall-clock timings).
func ExampleRunCampaign() {
	base := dlpic.DefaultConfig()
	base.Cells = 32
	base.ParticlesPerCell = 30
	dir, err := os.MkdirTemp("", "dlpic-campaign")
	if err != nil {
		fmt.Println("tempdir failed:", err)
		return
	}
	defer os.RemoveAll(dir)
	spec := dlpic.CampaignSpec{
		Scenarios: dlpic.SweepGrid(base, []float64{0.15, 0.2}, []float64{0.01}, 1, 10, 1),
		Opts: dlpic.SweepRunOpts{
			SkipFit: true,
			Methods: []dlpic.SweepMethodSpec{
				{Name: "traditional"},
				{Name: "oracle", Factory: func(sc dlpic.SweepScenario) (dlpic.FieldMethod, error) {
					spec := dlpic.DefaultPhaseSpec(sc.Cfg)
					spec.NX = sc.Cfg.Cells // oracle recovery needs NX == Cells
					return dlpic.NewOracleSolver(sc.Cfg, spec)
				}},
			},
		},
	}
	journal := filepath.Join(dir, "campaign.jsonl")
	full, err := dlpic.RunCampaign(journal, spec)
	if err != nil {
		fmt.Println("campaign failed:", err)
		return
	}
	// Simulate a kill after two of the four cells.
	buf, _ := os.ReadFile(journal)
	lines := strings.SplitAfter(string(buf), "\n")
	os.WriteFile(journal, []byte(strings.Join(lines[:2], "")), 0o644)
	resumed, err := dlpic.ResumeCampaign(journal, spec)
	if err != nil {
		fmt.Println("resume failed:", err)
		return
	}
	if err := dlpic.FirstSweepError(resumed); err != nil {
		fmt.Println("cell failed:", err)
		return
	}
	fmt.Printf("%d cells; resumed bit-identical to uninterrupted: %v\n",
		len(resumed), dlpic.CampaignDigest(resumed) == dlpic.CampaignDigest(full))
	// Output:
	// 4 cells; resumed bit-identical to uninterrupted: true
}

// ExampleNewBatchedSolver routes a DL-method sweep through the batched
// inference server and checks it against the per-call path, which
// clones the solver for every scenario. The two are bit-identical; the
// batched path shares one network and stacks the concurrent scenarios'
// field solves into single PredictBatch calls.
func ExampleNewBatchedSolver() {
	cfg := dlpic.DefaultConfig()
	cfg.Cells = 16
	cfg.ParticlesPerCell = 25
	spec := dlpic.DefaultPhaseSpec(cfg)
	spec.NX, spec.NV = 16, 8
	net, err := dlpic.BuildNetwork(dlpic.SolverOpts{Arch: dlpic.ArchMLP, Hidden: 12, Layers: 2, Seed: 3}, spec, cfg.Cells)
	if err != nil {
		fmt.Println("build failed:", err)
		return
	}
	// An untrained network produces meaningless physics, but the example
	// only demonstrates the batched plumbing, which is weight-agnostic.
	solver, err := dlpic.WrapSolver(net, spec, dlpic.Normalizer{Min: 0, Max: 50}, cfg.Cells)
	if err != nil {
		fmt.Println("wrap failed:", err)
		return
	}
	scs := dlpic.SweepGrid(cfg, []float64{0.15, 0.2}, []float64{0, 0.025}, 1, 6, 1)

	perCall := dlpic.RunSweep(scs, dlpic.SweepRunOpts{
		SkipFit: true,
		Methods: []dlpic.SweepMethodSpec{{Name: "mlp", Factory: func(dlpic.SweepScenario) (dlpic.FieldMethod, error) {
			return solver.Clone()
		}}},
	})

	bs, err := dlpic.NewBatchedSolver(solver, 0)
	if err != nil {
		fmt.Println("batched solver failed:", err)
		return
	}
	defer bs.Close()
	batched := dlpic.RunSweep(scs, dlpic.SweepRunOpts{SkipFit: true,
		Methods: []dlpic.SweepMethodSpec{{Name: "mlp-batched", Batcher: bs}}})

	identical := dlpic.FirstSweepError(perCall) == nil && dlpic.FirstSweepError(batched) == nil
	for i := range batched {
		a, b := perCall[i].Rec.Samples, batched[i].Rec.Samples
		if len(a) != len(b) {
			identical = false
			continue
		}
		for j := range a {
			if a[j] != b[j] {
				identical = false
			}
		}
	}
	st := bs.Server.Stats()
	fmt.Printf("%d scenarios, %d batched field solves; bit-identical to per-call: %v\n",
		len(scs), st.Requests, identical)
	// Output:
	// 4 scenarios, 28 batched field solves; bit-identical to per-call: true
}

// ExampleResumeTraining checkpoints a tiny fit every epoch, simulates a
// kill at half the epoch budget (training to half and stopping leaves
// exactly the checkpoint a kill would), resumes to the full budget, and
// verifies the resumed weights are byte-identical to an uninterrupted
// fit's — the training-level analogue of ExampleRunCampaign.
func ExampleResumeTraining() {
	base := dlpic.DefaultConfig()
	base.Cells = 16
	base.ParticlesPerCell = 20
	spec := dlpic.DefaultPhaseSpec(base)
	spec.NX, spec.NV = 16, 8
	ds, err := dlpic.GenerateDataset(dlpic.SweepOpts{
		Base: base, V0s: []float64{0.2}, Vths: []float64{0.01},
		Repeats: 1, Steps: 24, SampleEvery: 1, Spec: spec, Seed: 1,
	})
	if err != nil {
		fmt.Println("datagen failed:", err)
		return
	}
	if err := ds.Normalize(); err != nil {
		fmt.Println("normalize failed:", err)
		return
	}
	dir, err := os.MkdirTemp("", "dlpic-ckpt")
	if err != nil {
		fmt.Println("tempdir failed:", err)
		return
	}
	defer os.RemoveAll(dir)

	arch := dlpic.SolverOpts{Arch: dlpic.ArchMLP, Hidden: 16, Seed: 2}
	cfg := func(epochs int, path string) dlpic.TrainConfig {
		return dlpic.TrainConfig{
			Epochs: epochs, BatchSize: 8, Optimizer: dlpic.NewAdam(1e-3),
			Loss: dlpic.MSELoss(), Seed: 3,
			Checkpoint: dlpic.TrainCheckpoint{Path: path, Every: 1},
		}
	}
	const epochs = 6
	netBytes := func(net *dlpic.Network) string {
		var buf strings.Builder
		if err := dlpic.SaveNetwork(net, &buf); err != nil {
			return err.Error()
		}
		return buf.String()
	}

	// Uninterrupted reference fit.
	ref, err := dlpic.BuildNetwork(arch, ds.Spec, ds.Cells)
	if err != nil {
		fmt.Println("build failed:", err)
		return
	}
	if _, err := dlpic.FitCheckpointed(ref, ds, nil, cfg(epochs, filepath.Join(dir, "ref.ckpt"))); err != nil {
		fmt.Println("fit failed:", err)
		return
	}

	// "Killed" fit: same configuration, stopped after 3 epochs.
	killed, err := dlpic.BuildNetwork(arch, ds.Spec, ds.Cells)
	if err != nil {
		fmt.Println("build failed:", err)
		return
	}
	ckpt := filepath.Join(dir, "killed.ckpt")
	if _, err := dlpic.FitCheckpointed(killed, ds, nil, cfg(epochs/2, ckpt)); err != nil {
		fmt.Println("fit failed:", err)
		return
	}

	// Resume to the full budget from the checkpoint alone.
	resumed, hist, err := dlpic.ResumeTraining(ds, nil, cfg(epochs, ckpt))
	if err != nil {
		fmt.Println("resume failed:", err)
		return
	}
	fmt.Printf("%d epochs total; resumed bit-identical to uninterrupted: %v\n",
		len(hist.Epochs), netBytes(resumed) == netBytes(ref))
	// Output:
	// 6 epochs total; resumed bit-identical to uninterrupted: true
}
