// Dispersion explorer: the linear theory behind the paper's "Linear
// Theory" reference line (Fig. 4). Prints the two-stream growth rate
// gamma(k) across the modes of the paper's periodic box for several beam
// speeds, the location of the fastest-growing mode, and the thermal
// corrections.
//
//	go run ./examples/dispersion
package main

import (
	"fmt"
	"math"

	"dlpic/internal/ascii"
	"dlpic/internal/theory"
)

func main() {
	length := 2 * math.Pi / 3.06 // the paper's box: k1 = 3.06

	fmt.Println("Two-stream dispersion on the paper's box (wp = 1, L = 2*pi/3.06)")
	fmt.Println()

	rows := [][]string{{"v0", "K1 = k1 v0/wp", "gamma(mode 1)", "gamma(mode 2)", "most unstable", "gamma(warm, vth=0.025)"}}
	for _, v0 := range []float64{0.05, 0.1, 0.15, 0.18, 0.2, 0.3, 0.4} {
		cold := theory.TwoStream{Wp: 1, V0: v0}
		warm := theory.TwoStream{Wp: 1, V0: v0, Vth: 0.025}
		k1 := 2 * math.Pi / length
		mode, gMax := cold.MostUnstableMode(length, 32)
		most := "stable"
		if mode > 0 {
			most = fmt.Sprintf("mode %d (%.4f)", mode, gMax)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", v0),
			fmt.Sprintf("%.3f", k1*v0),
			fmt.Sprintf("%.4f", cold.GrowthRate(k1)),
			fmt.Sprintf("%.4f", cold.GrowthRate(2*k1)),
			most,
			fmt.Sprintf("%.4f", warm.GrowthRateWarm(k1)),
		})
	}
	fmt.Println(ascii.Table(rows))

	// The continuous gamma(K) curve: maximal at K = sqrt(3/8).
	ts := theory.TwoStream{Wp: 1, V0: 0.2}
	var ks, gs []float64
	for k := 0.05; k <= 5.0; k += 0.05 {
		ks = append(ks, k*ts.V0) // plot against K = k v0 / wp
		gs = append(gs, ts.GrowthRate(k))
	}
	fmt.Print(ascii.LineChart([]ascii.Series{{Name: "gamma(K)", X: ks, Y: gs}},
		70, 14, "Growth rate vs K = k v0 / wp (unstable band K < 1)", false))
	kStar, gStar := ts.MaxGrowth()
	fmt.Printf("\nfastest-growing mode: k* = %.4f (K = %.4f), gamma* = %.4f = wp/sqrt(8)\n",
		kStar, kStar*ts.V0, gStar)
	fmt.Printf("the paper's box puts mode 1 at K = %.4f — within %.2f%% of the maximum\n",
		3.06*0.2, 100*math.Abs(3.06*0.2-kStar*ts.V0)/(kStar*ts.V0))
}
