// Cold-beam stability (paper Fig. 6): two beams at v0 = +-0.4 with zero
// thermal spread are linearly *stable* (K = k v0 / wp > 1), yet the
// traditional momentum-conserving PIC method develops the numerical
// cold-beam instability — phase-space ripples and artificial heating.
// The DL-based cycle (run here with the learning-free oracle solver,
// which consumes the same phase-space histogram a trained network
// would) filters the sub-cell information that feeds the instability.
//
//	go run ./examples/coldbeam
package main

import (
	"fmt"
	"log"

	"dlpic"
	"dlpic/internal/ascii"
	"dlpic/internal/diag"
)

func main() {
	cfg := dlpic.DefaultConfig()
	cfg.ParticlesPerCell = 300
	cfg.V0 = 0.4
	cfg.Vth = 0.0
	cfg.Seed = 7

	k1 := 2 * 3.141592653589793 / cfg.Length
	fmt.Printf("cold beams: v0 = %.1f, K = k1*v0/wp = %.3f > 1 -> linearly stable\n\n", cfg.V0, k1*cfg.V0/cfg.Wp)

	run := func(name string, sim *dlpic.Simulation) {
		var rec dlpic.Recorder
		spread0 := diag.VelocitySpread(sim.P.V)
		if err := sim.Run(200, &rec, nil); err != nil { // t = 40 as in Fig. 6
			log.Fatal(err)
		}
		tot, _ := rec.Series("total")
		fmt.Printf("%s\n", name)
		fmt.Printf("  beam RMS spread:       %.5f -> %.5f\n", spread0, diag.VelocitySpread(sim.P.V))
		fmt.Printf("  total energy variation: %.3f%%\n\n", 100*diag.MaxRelativeVariation(tot))
		fmt.Print(ascii.PhaseSpace(sim.P.X, sim.P.V, cfg.Length, -0.6, 0.6, 64, 16,
			"  phase space at t=40"))
		fmt.Println()
	}

	trad, err := dlpic.NewTraditional(cfg)
	if err != nil {
		log.Fatal(err)
	}
	run("traditional PIC (momentum-conserving, CIC + spectral)", trad)

	spec := dlpic.DefaultPhaseSpec(cfg)
	oracle, err := dlpic.NewOracleDLPIC(cfg, spec)
	if err != nil {
		log.Fatal(err)
	}
	run("DL-based PIC cycle (phase-space binning field stage)", oracle)
}
