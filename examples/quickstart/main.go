// Quickstart: run the paper's two-stream instability with the
// traditional PIC method and compare the measured growth rate of the
// most unstable mode against linear theory (the validation behind the
// paper's Fig. 4, bottom panel).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dlpic"
)

func main() {
	// The paper's §III configuration: 64 cells, L = 2*pi/3.06, dt = 0.2,
	// two beams at v0 = +-0.2. A reduced particle count and a seeded
	// mode-1 perturbation give a clean growth measurement in about a
	// second.
	cfg := dlpic.DefaultConfig()
	cfg.ParticlesPerCell = 200
	cfg.Vth = 0.005
	cfg.QuietStart = true
	cfg.PerturbAmp = 1e-4 * cfg.Length
	cfg.PerturbMode = 1

	sim, err := dlpic.NewTraditional(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var rec dlpic.Recorder
	if err := sim.Run(200, &rec, nil); err != nil { // t = 40, as in the paper
		log.Fatal(err)
	}

	fit, err := dlpic.MeasureGrowthRate(&rec)
	if err != nil {
		log.Fatal(err)
	}
	cold := cfg
	cold.Vth = 0
	gamma := dlpic.TheoreticalGrowthRate(cold)

	fmt.Printf("two-stream instability, %d particles, t = %.0f\n", cfg.NumParticles(), sim.Time())
	fmt.Printf("  linear theory growth rate: %.4f (wp/sqrt(8) = 0.3536 at K = 0.612)\n", gamma)
	fmt.Printf("  measured growth rate:      %.4f (R2 = %.4f, window t = [%.1f, %.1f])\n",
		fit.Gamma, fit.R2, fit.T0, fit.T1)
	fmt.Printf("  relative error:            %.1f%%\n", 100*abs(fit.Gamma-gamma)/gamma)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
