// Two-stream instability in two dimensions — the paper's future-work
// direction ("extend the method to study two- and three-dimensional
// systems"). The (1, 0) mode of a doubly periodic 2D system with beams
// along x grows at exactly the 1D rate, which this example verifies
// against the dispersion relation.
//
//	go run ./examples/twostream2d
package main

import (
	"fmt"
	"log"
	"math"

	"dlpic/internal/ascii"
	"dlpic/internal/diag"
	"dlpic/internal/pic2d"
	"dlpic/internal/theory"
)

func main() {
	cfg := pic2d.Default()
	cfg.ParticlesPerCell = 60
	cfg.Vth = 0
	cfg.PerturbAmp = 1e-4 * cfg.LX
	cfg.PerturbMode = 1

	sim, err := pic2d.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2D two-stream: %dx%d cells, %d particles, beams at +-%.1f along x\n",
		cfg.NX, cfg.NY, len(sim.X), cfg.V0)

	var rec diag.Recorder
	if err := sim.Run(175, &rec); err != nil { // t = 35
		log.Fatal(err)
	}
	if err := sim.CheckFinite(); err != nil {
		log.Fatal(err)
	}

	amps, _ := rec.Series("mode")
	times := rec.Times()
	fmt.Print(ascii.LineChart([]ascii.Series{{Name: "E1 (kx mode 1)", X: times, Y: amps}},
		70, 14, "Mode (1,0) amplitude (log scale)", true))

	t0, t1, err := diag.AutoGrowthWindow(times, amps, 0.02, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	fit, err := diag.FitGrowthRate(times, amps, t0, t1)
	if err != nil {
		log.Fatal(err)
	}
	want := theory.TwoStream{Wp: cfg.Wp, V0: cfg.V0}.GrowthRate(2 * math.Pi / cfg.LX)
	fmt.Printf("\nmeasured gamma %.4f vs 1D theory %.4f (%.1f%% off, R2 = %.3f)\n",
		fit.Gamma, want, 100*math.Abs(fit.Gamma-want)/want, fit.R2)

	// The x-vx projection of the 4D phase space shows the same vortex
	// structure as the 1D problem.
	fmt.Println()
	fmt.Print(ascii.PhaseSpace(sim.X, sim.VX, cfg.LX, -0.45, 0.45, 64, 18,
		"x-vx phase space at t=35"))
}
