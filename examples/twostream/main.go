// Two-stream end-to-end: the complete DL-PIC pipeline of the paper at a
// small scale — generate a training corpus with traditional PIC runs,
// train the MLP electric-field solver, then run the DL-based PIC method
// on beam parameters the network never saw and compare it against the
// traditional method and linear theory (paper Figs. 4 and 5).
//
//	go run ./examples/twostream
//
// Takes roughly a minute on one CPU core.
package main

import (
	"fmt"
	"log"
	"os"

	"dlpic"
	"dlpic/internal/nn"
)

func main() {
	// Base configuration: the paper's box at a reduced particle count.
	cfg := dlpic.DefaultConfig()
	cfg.ParticlesPerCell = 150

	// Phase-space binning: 64 x 64 NGP histogram, as in the paper.
	spec := dlpic.DefaultPhaseSpec(cfg)

	// 1. Corpus: a small sweep that leaves v0 = 0.2 / vth = 0.025 unseen.
	sweep := dlpic.SweepOpts{
		Base: cfg,
		V0s:  []float64{0.15, 0.18, 0.3}, Vths: []float64{0.0, 0.005},
		Repeats: 1, Steps: 200, SampleEvery: 2,
		Spec: spec, Seed: 1,
	}
	fmt.Fprintln(os.Stderr, "generating corpus (6 traditional PIC runs)...")
	ds, err := dlpic.GenerateDataset(sweep)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.Normalize(); err != nil {
		log.Fatal(err)
	}
	ds.Shuffle(2)
	train, val, _, err := ds.Split(ds.N()-40, 40, 0)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train the MLP field solver (scaled-width version of the paper's
	// 3x1024 network).
	fmt.Fprintln(os.Stderr, "training the MLP electric-field solver...")
	solver, _, err := dlpic.TrainSolver(
		dlpic.SolverOpts{Arch: dlpic.ArchMLP, Hidden: 96, Layers: 3, Seed: 3},
		train, val,
		dlpic.TrainConfig{Epochs: 25, BatchSize: 64, Optimizer: nn.NewAdam(1e-3), Loss: nn.MSE{}, Seed: 4},
	)
	if err != nil {
		log.Fatal(err)
	}
	m := dlpic.EvaluateSolver(solver, val)
	fmt.Printf("field-solver validation: MAE %.4g, max error %.4g\n\n", m.MAE, m.MaxErr)

	// 3. Validation runs at unseen parameters (the paper's §V setup).
	runCfg := cfg
	runCfg.V0 = 0.2
	runCfg.Vth = 0.025
	runCfg.Seed = 42

	runOne := func(name string, sim *dlpic.Simulation) *dlpic.Recorder {
		var rec dlpic.Recorder
		if err := sim.Run(200, &rec, nil); err != nil {
			log.Fatal(err)
		}
		if err := sim.CheckFinite(); err != nil {
			log.Fatal(err)
		}
		if fit, err := dlpic.MeasureGrowthRate(&rec); err == nil {
			fmt.Printf("%-16s growth rate %.4f (R2 %.3f)\n", name, fit.Gamma, fit.R2)
		} else {
			fmt.Printf("%-16s growth fit: %v\n", name, err)
		}
		return &rec
	}

	trad, err := dlpic.NewTraditional(runCfg)
	if err != nil {
		log.Fatal(err)
	}
	recT := runOne("traditional:", trad)

	dl, err := dlpic.NewDLPIC(runCfg, solver)
	if err != nil {
		log.Fatal(err)
	}
	recD := runOne("DL-based (MLP):", dl)

	cold := runCfg
	cold.Vth = 0
	fmt.Printf("%-16s growth rate %.4f\n\n", "linear theory:", dlpic.TheoreticalGrowthRate(cold))

	// 4. Conservation comparison (paper Fig. 5).
	report := func(name string, rec *dlpic.Recorder) {
		tot, _ := rec.Series("total")
		mom, _ := rec.Series("momentum")
		fmt.Printf("%-16s energy variation %.2f%%, momentum drift %+.4g\n",
			name, 100*maxRelVar(tot), mom[len(mom)-1]-mom[0])
	}
	report("traditional:", recT)
	report("DL-based (MLP):", recD)
}

func maxRelVar(series []float64) float64 {
	if len(series) == 0 || series[0] == 0 {
		return 0
	}
	worst := 0.0
	for _, v := range series {
		d := (v - series[0]) / series[0]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
