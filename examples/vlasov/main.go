// Vlasov training data (paper §VII): "more accurate training data sets
// can be obtained by running Vlasov codes that are not affected by the
// PIC numerical noise." This example runs the 1D1V semi-Lagrangian
// Vlasov-Poisson solver on the two-stream problem, shows its noise-free
// growth curve against linear theory, and trains the same MLP field
// solver once on a PIC corpus and once on a Vlasov corpus to compare
// the resulting field errors on a common (PIC) test set.
//
//	go run ./examples/vlasov
//
// Takes a couple of minutes on one CPU core.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"dlpic"
	"dlpic/internal/ascii"
	"dlpic/internal/dataset"
	"dlpic/internal/diag"
	"dlpic/internal/nn"
	"dlpic/internal/theory"
	"dlpic/internal/vlasov"
)

func main() {
	// 1. A single Vlasov run: razor-clean exponential growth.
	vcfg := vlasov.Default()
	init := vlasov.TwoStreamInit{V0: 0.2, Vth: 0.03, Amp: 1e-4, Mode: 1}
	solver, err := vlasov.New(vcfg, init)
	if err != nil {
		log.Fatal(err)
	}
	var rec diag.Recorder
	if err := solver.Run(300, &rec); err != nil { // t = 30
		log.Fatal(err)
	}
	amps, _ := rec.Series("mode")
	times := rec.Times()
	fmt.Print(ascii.LineChart([]ascii.Series{{Name: "E1 (Vlasov)", X: times, Y: amps}},
		70, 14, "Vlasov two-stream: mode-1 amplitude (log scale)", true))

	t0, t1, err := diag.AutoGrowthWindow(times, amps, 0.001, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fit, err := diag.FitGrowthRate(times, amps, t0, t1)
	if err != nil {
		log.Fatal(err)
	}
	ts := theory.TwoStream{Wp: vcfg.Wp, V0: init.V0, Vth: init.Vth}
	k1 := 2 * math.Pi / vcfg.Length
	fmt.Printf("\nmeasured gamma %.4f vs warm theory %.4f (R2 = %.5f — no particle noise)\n\n",
		fit.Gamma, ts.GrowthRateWarm(k1), fit.R2)

	// 2. Corpus quality comparison: PIC-generated vs Vlasov-generated
	// training data for the same MLP, evaluated on a PIC test set.
	cfg := dlpic.DefaultConfig()
	cfg.Cells = 64
	cfg.ParticlesPerCell = 125 // 8000 particles: matches the Vlasov Np
	spec := dlpic.DefaultPhaseSpec(cfg)
	np := cfg.NumParticles()

	fmt.Fprintln(os.Stderr, "generating PIC corpus...")
	picDS, err := dlpic.GenerateDataset(dlpic.SweepOpts{
		Base: cfg, V0s: []float64{0.15, 0.18}, Vths: []float64{0.03},
		Repeats: 2, Steps: 150, SampleEvery: 2, Spec: spec, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Fprintln(os.Stderr, "generating Vlasov corpus...")
	vbase := vcfg
	vbase.Dt = 0.2 // match the PIC sampling cadence
	vlasovDS, err := dataset.GenerateVlasov(dataset.VlasovGenerateOpts{
		Base: vbase, V0s: []float64{0.15, 0.18}, Vths: []float64{0.03},
		Amps: []float64{1e-4, 1e-3}, Steps: 150, SampleEvery: 2,
		Np: np, Spec: spec,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Fprintln(os.Stderr, "generating PIC test set (unseen v0 = 0.2)...")
	testDS, err := dlpic.GenerateDataset(dlpic.SweepOpts{
		Base: cfg, V0s: []float64{0.2}, Vths: []float64{0.03},
		Repeats: 1, Steps: 100, SampleEvery: 2, Spec: spec, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}

	trainAndEval := func(name string, ds *dlpic.Dataset) {
		if err := ds.Normalize(); err != nil {
			log.Fatal(err)
		}
		test := cloneDataset(testDS)
		if err := test.NormalizeWith(ds.Norm); err != nil {
			log.Fatal(err)
		}
		ds.Shuffle(3)
		fmt.Fprintf(os.Stderr, "training MLP on the %s corpus (%d samples)...\n", name, ds.N())
		solver, _, err := dlpic.TrainSolver(
			dlpic.SolverOpts{Arch: dlpic.ArchMLP, Hidden: 96, Layers: 3, Seed: 4},
			ds, nil,
			dlpic.TrainConfig{Epochs: 25, BatchSize: 64, Optimizer: nn.NewAdam(1e-3), Loss: nn.MSE{}, Seed: 5},
		)
		if err != nil {
			log.Fatal(err)
		}
		m := dlpic.EvaluateSolver(solver, test)
		fmt.Printf("%-16s corpus -> PIC test set: MAE %.4g, max error %.4g\n", name, m.MAE, m.MaxErr)
	}
	trainAndEval("PIC", picDS)
	trainAndEval("Vlasov", vlasovDS)
	fmt.Println("\n(the Vlasov corpus has no particle noise in either inputs or targets;")
	fmt.Println(" whether that helps on *noisy* PIC test data is exactly the open question")
	fmt.Println(" the paper's discussion raises)")
}

// cloneDataset deep-copies a dataset so each normalization is independent.
func cloneDataset(d *dlpic.Dataset) *dlpic.Dataset {
	return &dlpic.Dataset{
		Spec: d.Spec, Cells: d.Cells,
		Inputs:  d.Inputs.Clone(),
		Targets: d.Targets.Clone(),
	}
}
