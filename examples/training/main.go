// Architecture comparison (paper Table I, miniature): train the MLP, the
// CNN and the ResMLP extension on the same small corpus and compare
// their MAE / max-error metrics on a held-out test split and on a second
// test set from unseen beam parameters.
//
//	go run ./examples/training
//
// Takes a few minutes on one CPU core (the CNN dominates).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"dlpic"
	"dlpic/internal/ascii"
	"dlpic/internal/nn"
)

func main() {
	cfg := dlpic.DefaultConfig()
	cfg.ParticlesPerCell = 100
	spec := dlpic.DefaultPhaseSpec(cfg)

	fmt.Fprintln(os.Stderr, "generating corpora...")
	ds, err := dlpic.GenerateDataset(dlpic.SweepOpts{
		Base: cfg,
		V0s:  []float64{0.15, 0.18, 0.3}, Vths: []float64{0.0, 0.005},
		Repeats: 1, Steps: 150, SampleEvery: 2,
		Spec: spec, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.Normalize(); err != nil {
		log.Fatal(err)
	}
	ds.Shuffle(2)
	train, val, testI, err := ds.Split(ds.N()-60, 30, 30)
	if err != nil {
		log.Fatal(err)
	}

	// Test set II: unseen parameters, normalized with the training
	// transform (as the paper does).
	setII, err := dlpic.GenerateDataset(dlpic.SweepOpts{
		Base: cfg,
		V0s:  []float64{0.2}, Vths: []float64{0.025},
		Repeats: 1, Steps: 100, SampleEvery: 2,
		Spec: spec, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := setII.NormalizeWith(ds.Norm); err != nil {
		log.Fatal(err)
	}

	rows := [][]string{{"Arch", "Params", "Train time", "MAE (I)", "Max (I)", "MAE (II)", "Max (II)"}}
	for _, arch := range []dlpic.SolverArch{dlpic.ArchMLP, dlpic.ArchCNN, dlpic.ArchResMLP} {
		opts := dlpic.SolverOpts{Arch: arch, Hidden: 64, Layers: 2, Channels1: 2, Channels2: 4, Blocks: 2, Seed: 5}
		epochs := 20
		if arch == dlpic.ArchCNN {
			epochs = 8 // conv epochs are ~10x more expensive
		}
		fmt.Fprintf(os.Stderr, "training %v...\n", arch)
		start := time.Now()
		solver, _, err := dlpic.TrainSolver(opts, train, val, dlpic.TrainConfig{
			Epochs: epochs, BatchSize: 64, Optimizer: nn.NewAdam(1e-3), Loss: nn.MSE{}, Seed: 6,
		})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start).Round(time.Second)
		mI := dlpic.EvaluateSolver(solver, testI)
		mII := dlpic.EvaluateSolver(solver, setII)
		rows = append(rows, []string{
			arch.String(),
			fmt.Sprintf("%d", solver.Net.NumParams()),
			elapsed.String(),
			fmt.Sprintf("%.4g", mI.MAE), fmt.Sprintf("%.4g", mI.MaxErr),
			fmt.Sprintf("%.4g", mII.MAE), fmt.Sprintf("%.4g", mII.MaxErr),
		})
	}
	fmt.Println()
	fmt.Println("Table I (miniature): DL field-solver error by architecture")
	fmt.Println("(set I: held-out from training parameters; set II: v0=0.2, vth=0.025, unseen)")
	fmt.Println()
	fmt.Print(ascii.Table(rows))
}
