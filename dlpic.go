// Package dlpic is a Go reproduction of "A Deep Learning-Based
// Particle-in-Cell Method for Plasma Simulations" (Aguilar & Markidis,
// IEEE CLUSTER 2021, arXiv:2107.02232).
//
// It bundles a complete 1D electrostatic Particle-in-Cell simulator, a
// from-scratch neural-network framework, the phase-space-binning DL
// field solver that is the paper's contribution, and the dataset /
// training / evaluation pipeline connecting them. This package is the
// stable facade: it re-exports the main types and wires the common
// workflows (run a simulation, generate a corpus, train a solver, run
// the DL-PIC loop) in a few calls. The internal packages carry the full
// API surface.
//
// Quickstart (the examples/ directory has runnable versions):
//
//	cfg := dlpic.DefaultConfig()          // paper §III configuration
//	sim, _ := dlpic.NewTraditional(cfg)   // traditional PIC (Fig. 1)
//	var rec dlpic.Recorder
//	sim.Run(200, &rec, nil)               // two-stream instability
//	fit, _ := dlpic.MeasureGrowthRate(&rec)
//	theory := dlpic.TheoreticalGrowthRate(cfg)
//	fmt.Printf("growth: %.3f (theory %.3f)\n", fit.Gamma, theory)
//
// Scenario sweeps. Many-run workloads (parameter scans, corpus
// generation, convergence studies) go through the concurrent sweep
// engine instead of hand-rolled loops. SweepGrid builds a scenario list
// with pre-derived seeds; RunSweep fans it across a bounded worker pool
// and returns per-scenario recorders, growth-rate fits and conservation
// metrics in scenario order:
//
//	base := dlpic.DefaultConfig()
//	scs := dlpic.SweepGrid(base, []float64{0.1, 0.2, 0.3}, []float64{0, 0.025}, 2, 200, 1)
//	results := dlpic.RunSweep(scs, dlpic.SweepRunOpts{Workers: 0}) // 0 = all cores
//	if err := dlpic.FirstSweepError(results); err != nil { ... }
//	for _, r := range results {
//	    fmt.Printf("%s: gamma %.3f (theory %.3f)\n", r.Scenario.Name, r.Growth.Gamma, r.TheoryGamma)
//	}
//
// Batched DL inference. When the sweep's field method is the neural
// solver, per-scenario Predict1 calls pay one small GEMM per scenario
// per step. NewBatchedSolver starts an inference server that stacks
// the concurrent scenarios' field requests into single PredictBatch
// calls on one shared network:
//
//	bs, _ := dlpic.NewBatchedSolver(solver, 0) // 0 = default batch cap
//	defer bs.Close()
//	results := dlpic.RunSweep(scs, dlpic.SweepRunOpts{
//	    Methods: []dlpic.SweepMethodSpec{{Name: "mlp-batched", Batcher: bs}},
//	})
//
// Multi-method campaigns. SweepRunOpts.Methods is a named method
// registry: every scenario runs once per entry (traditional, MLP, CNN,
// oracle, ... side by side) and each result carries its method name.
// RunCampaign additionally journals every completed scenario x method
// cell to an append-only checkpoint file, and ResumeCampaign continues
// an interrupted campaign from it, re-running only the missing cells —
// the restored result set is bit-identical to an uninterrupted run.
//
// Every hot-path kernel reduces through the deterministic chunked
// primitives of internal/parallel, and batched rows are bit-identical
// to per-call inference, so simulations — and whole sweeps and
// campaigns, batched or not, interrupted or not — are bit-identical at
// any GOMAXPROCS, sweep worker count and batch size.
package dlpic

import (
	"fmt"
	"io"
	"math"

	"dlpic/internal/batch"
	"dlpic/internal/campaign"
	"dlpic/internal/core"
	"dlpic/internal/dataset"
	"dlpic/internal/diag"
	"dlpic/internal/dist"
	"dlpic/internal/nn"
	"dlpic/internal/phasespace"
	"dlpic/internal/pic"
	"dlpic/internal/rng"
	"dlpic/internal/serve"
	"dlpic/internal/sweep"
	"dlpic/internal/tensor"
	"dlpic/internal/theory"
	"dlpic/internal/vlasov"
)

// Re-exported core types. The aliases keep one import path for users
// while the implementation lives in focused internal packages.
type (
	// Config is the full PIC run configuration (see pic.Config).
	Config = pic.Config
	// Simulation is a running PIC system (traditional or DL-based).
	Simulation = pic.Simulation
	// FieldMethod computes the grid E field each cycle.
	FieldMethod = pic.FieldMethod
	// Recorder accumulates per-step diagnostics.
	Recorder = diag.Recorder
	// Sample is one time level of diagnostics.
	Sample = diag.Sample
	// GrowthFit is a fitted exponential growth rate.
	GrowthFit = diag.GrowthFit
	// PhaseSpec is the phase-space binning specification.
	PhaseSpec = phasespace.GridSpec
	// Normalizer is the min-max input transform (paper Eq. 5).
	Normalizer = phasespace.Normalizer
	// NNSolver is the trained DL electric-field solver (paper Fig. 2).
	NNSolver = core.NNSolver
	// OracleSolver is the learning-free reference field solver that
	// consumes the same phase-space histogram as the NN.
	OracleSolver = core.OracleSolver
	// Dataset is a (phase-space, E-field) training corpus.
	Dataset = dataset.Dataset
	// SweepOpts configures corpus generation (paper §IV-1).
	SweepOpts = dataset.GenerateOpts
	// Network is a trainable/deployable neural network.
	Network = nn.Network
	// TrainConfig drives training.
	TrainConfig = nn.TrainConfig
	// History is a training trajectory.
	History = nn.History
	// Metrics are the Table-I error statistics (MAE, max error).
	Metrics = nn.Metrics
	// TrainCheckpoint configures epoch-granular training checkpoints:
	// set it as TrainConfig.Checkpoint and every Every-th epoch the
	// full training state (weights, optimizer moments, shuffle cursor,
	// history) is written atomically to Path; ResumeTraining continues
	// a killed fit from it bit-identically.
	TrainCheckpoint = nn.Checkpoint
	// Optimizer updates network parameters from their gradients.
	Optimizer = nn.Optimizer
)

// NewAdam returns the paper's Adam optimizer (lr <= 0 selects the
// paper's 1e-4). Adam, SGD and Momentum state all survive training
// checkpoints.
func NewAdam(lr float64) Optimizer { return nn.NewAdam(lr) }

// MSELoss returns the mean-squared-error training loss (the paper's).
func MSELoss() nn.Loss { return nn.MSE{} }

// DefaultConfig returns the paper's §III configuration: 64 cells,
// L = 2*pi/3.06, dt = 0.2, 1000 electrons/cell, v0 = 0.2, vth = 0.025.
func DefaultConfig() Config { return pic.Default() }

// DefaultPhaseSpec returns the 64x64 phase-space binning over the box of
// cfg with the velocity window [-0.8, 0.8] (covers the paper's cold-beam
// case) and NGP binning as in the paper.
func DefaultPhaseSpec(cfg Config) PhaseSpec {
	return phasespace.DefaultSpec(cfg.Length)
}

// NewTraditional builds the traditional PIC simulation of Fig. 1
// (deposit + Poisson field solver).
func NewTraditional(cfg Config) (*Simulation, error) {
	return pic.New(cfg, nil)
}

// NewDLPIC builds the DL-based PIC simulation of Fig. 2 around a trained
// field solver.
func NewDLPIC(cfg Config, solver *NNSolver) (*Simulation, error) {
	if solver == nil {
		return nil, fmt.Errorf("dlpic: nil solver")
	}
	return pic.New(cfg, solver)
}

// NewOracleDLPIC builds the DL-PIC cycle with the learning-free oracle
// solver — same binning stage, exact field recovery. Useful to separate
// cycle error from learning error.
func NewOracleDLPIC(cfg Config, spec PhaseSpec) (*Simulation, error) {
	oracle, err := core.NewOracleSolver(cfg, spec)
	if err != nil {
		return nil, err
	}
	return pic.New(cfg, oracle)
}

// NewOracleSolver builds the learning-free oracle field method on its
// own — e.g. as the Factory of a sweep method registry entry, where
// the oracle runs side by side with the trained solvers.
func NewOracleSolver(cfg Config, spec PhaseSpec) (*OracleSolver, error) {
	return core.NewOracleSolver(cfg, spec)
}

// GenerateDataset runs the traditional-PIC sweep of §IV-1 and returns
// the raw (un-normalized) corpus.
func GenerateDataset(opts SweepOpts) (*Dataset, error) {
	return dataset.Generate(opts)
}

// PaperSweep returns the paper's full §IV-1 sweep axes: v0 in {0.05,
// 0.1, 0.15, 0.18, 0.3}, vth in {0, 0.001, 0.005, 0.01}, 10 repeats, 200
// steps (40,000 samples at full scale).
func PaperSweep(base Config, spec PhaseSpec, seed uint64) SweepOpts {
	return SweepOpts{
		Base:    base,
		V0s:     []float64{0.05, 0.1, 0.15, 0.18, 0.3},
		Vths:    []float64{0.0, 0.001, 0.005, 0.01},
		Repeats: 10, Steps: 200, SampleEvery: 1,
		Spec: spec, Seed: seed,
	}
}

// ScaledSweep returns a laptop-scale version of the paper's sweep that
// preserves its structure (multiple v0/vth combinations, repeats,
// full-instability trajectories) at a fraction of the samples.
func ScaledSweep(base Config, spec PhaseSpec, seed uint64) SweepOpts {
	return SweepOpts{
		Base:    base,
		V0s:     []float64{0.1, 0.15, 0.18, 0.3},
		Vths:    []float64{0.0, 0.005},
		Repeats: 2, Steps: 200, SampleEvery: 2,
		Spec: spec, Seed: seed,
	}
}

// SolverArch names a network architecture from the paper (plus the
// residual extension).
type SolverArch int

const (
	// ArchMLP is the paper's MLP (3 hidden ReLU layers + linear output).
	ArchMLP SolverArch = iota
	// ArchCNN is the paper's CNN (2 conv blocks + dense stack).
	ArchCNN
	// ArchResMLP is the residual-MLP extension from the discussion.
	ArchResMLP
)

// String returns the architecture name.
func (a SolverArch) String() string {
	switch a {
	case ArchMLP:
		return "MLP"
	case ArchCNN:
		return "CNN"
	case ArchResMLP:
		return "ResMLP"
	default:
		return fmt.Sprintf("SolverArch(%d)", int(a))
	}
}

// SolverOpts sizes a DL field solver. Zero values select the scaled
// defaults; Paper sets the paper's full sizes (1024-wide dense stack).
type SolverOpts struct {
	Arch   SolverArch
	Hidden int // dense width (paper: 1024; scaled default: 128)
	Layers int // dense depth (paper: 3)
	// CNN channels (scaled defaults 4/8; paper did not specify).
	Channels1, Channels2 int
	// ResMLP blocks (default 2).
	Blocks int
	Seed   uint64
}

func (o SolverOpts) withDefaults() SolverOpts {
	if o.Hidden == 0 {
		o.Hidden = 128
	}
	if o.Layers == 0 {
		o.Layers = 3
	}
	if o.Channels1 == 0 {
		o.Channels1 = 4
	}
	if o.Channels2 == 0 {
		o.Channels2 = 8
	}
	if o.Blocks == 0 {
		o.Blocks = 2
	}
	return o
}

// PaperSolverOpts returns the paper's full-size architecture settings.
func PaperSolverOpts(arch SolverArch, seed uint64) SolverOpts {
	return SolverOpts{Arch: arch, Hidden: 1024, Layers: 3, Channels1: 16, Channels2: 32, Blocks: 3, Seed: seed}
}

// BuildNetwork constructs an untrained network of the requested
// architecture for a given phase-space spec and grid size.
func BuildNetwork(opts SolverOpts, spec PhaseSpec, cells int) (*Network, error) {
	opts = opts.withDefaults()
	r := rng.New(opts.Seed)
	switch opts.Arch {
	case ArchMLP:
		return nn.NewMLP(nn.MLPConfig{
			InDim: spec.Size(), OutDim: cells, Hidden: opts.Hidden, HiddenLayers: opts.Layers,
		}, r)
	case ArchCNN:
		return nn.NewCNN(nn.CNNConfig{
			H: spec.NV, W: spec.NX, OutDim: cells,
			Channels1: opts.Channels1, Channels2: opts.Channels2,
			Kernel: 3, Hidden: opts.Hidden, HiddenLayers: opts.Layers,
		}, r)
	case ArchResMLP:
		return nn.NewResMLP(nn.ResMLPConfig{
			InDim: spec.Size(), OutDim: cells, Hidden: opts.Hidden, Blocks: opts.Blocks,
		}, r)
	default:
		return nil, fmt.Errorf("dlpic: unknown architecture %v", opts.Arch)
	}
}

// TrainSolver trains a DL field solver on a normalized corpus and wraps
// it for use in the PIC loop. The corpus must already be normalized
// (Dataset.Normalize); val may be nil.
func TrainSolver(arch SolverOpts, train, val *Dataset, tc TrainConfig) (*NNSolver, History, error) {
	if !train.Normalized {
		return nil, History{}, fmt.Errorf("dlpic: training corpus must be normalized first")
	}
	net, err := BuildNetwork(arch, train.Spec, train.Cells)
	if err != nil {
		return nil, History{}, err
	}
	var hist History
	if val != nil {
		hist, err = nn.Fit(net, train.Inputs, train.Targets, val.Inputs, val.Targets, tc)
	} else {
		hist, err = nn.Fit(net, train.Inputs, train.Targets, nil, nil, tc)
	}
	if err != nil {
		return nil, hist, err
	}
	solver, err := core.NewNNSolver(net, train.Spec, train.Norm, train.Cells)
	if err != nil {
		return nil, hist, err
	}
	return solver, hist, nil
}

// FitCheckpointed trains net on a normalized corpus with epoch-granular
// checkpointing: tc.Checkpoint.Path must be set, and after every
// tc.Checkpoint.Every-th epoch the complete training state is written
// atomically there. A fit killed at any epoch and continued with
// ResumeTraining produces bit-identical final weights and History to
// an uninterrupted one, at any tc.Workers value. val may be nil.
func FitCheckpointed(net *Network, train, val *Dataset, tc TrainConfig) (History, error) {
	if tc.Checkpoint.Path == "" {
		return History{}, fmt.Errorf("dlpic: FitCheckpointed needs TrainConfig.Checkpoint.Path")
	}
	if !train.Normalized {
		return History{}, fmt.Errorf("dlpic: training corpus must be normalized first")
	}
	xv, yv := valTensors(val)
	return nn.Fit(net, train.Inputs, train.Targets, xv, yv, tc)
}

// ResumeTraining continues a fit interrupted mid-training from
// tc.Checkpoint.Path: the network, optimizer state, shuffle cursor and
// history are restored from the checkpoint and training runs on to
// tc.Epochs (which may exceed the interrupted run's — it is the
// training target, not part of the checkpoint's identity). Everything
// else must match the interrupted run; a mismatch is caught by the
// checkpoint fingerprint and returned as an error.
func ResumeTraining(train, val *Dataset, tc TrainConfig) (*Network, History, error) {
	if !train.Normalized {
		return nil, History{}, fmt.Errorf("dlpic: training corpus must be normalized first")
	}
	xv, yv := valTensors(val)
	return nn.ResumeFit(train.Inputs, train.Targets, xv, yv, tc)
}

// valTensors unpacks an optional validation partition.
func valTensors(val *Dataset) (x, y *tensor.Tensor) {
	if val == nil {
		return nil, nil
	}
	return val.Inputs, val.Targets
}

// WrapSolver wraps a network with its preprocessing contract (binning
// spec and normalizer fixed at training time) as a deployable DL field
// solver for a grid of cells cells. TrainSolver does this implicitly;
// WrapSolver is the escape hatch for externally trained or synthetic
// networks.
func WrapSolver(net *Network, spec PhaseSpec, norm Normalizer, cells int) (*NNSolver, error) {
	return core.NewNNSolver(net, spec, norm, cells)
}

// EvaluateSolver computes the Table-I metrics of a solver's network on a
// normalized corpus.
func EvaluateSolver(s *NNSolver, ds *Dataset) Metrics {
	return nn.Evaluate(s.Net, ds.Inputs, ds.Targets, 64)
}

// ---------------------------------------------------------------------------
// Concurrent scenario sweeps

// Sweep engine re-exports (see internal/sweep for the full API).
type (
	// SweepScenario is one named PIC run of a sweep.
	SweepScenario = sweep.Scenario
	// SweepResult carries one scenario's recorder, growth fit and
	// conservation metrics.
	SweepResult = sweep.Result
	// SweepRunOpts bounds the worker pool and carries the method
	// registry (SweepRunOpts.Methods) a sweep compares side by side.
	SweepRunOpts = sweep.Options
	// SweepMethodSpec is one named entry of a sweep's method registry:
	// the traditional method (zero value), a per-scenario Factory, or a
	// shared batched Batcher backend.
	SweepMethodSpec = sweep.MethodSpec
	// VlasovScenario is one named Vlasov-Poisson run of a sweep.
	VlasovScenario = sweep.VlasovScenario
	// VlasovSweepResult is the outcome of one Vlasov scenario.
	VlasovSweepResult = sweep.VlasovResult
	// BatchedSolver is a batched DL field-solve backend: one shared
	// network serving every scenario of a sweep through the
	// internal/batch inference server. Use it as the Batcher of a
	// SweepMethodSpec registry entry.
	BatchedSolver = batch.Solver
	// BatchStats summarizes the traffic a batched solver has served
	// (rows, flushes, largest batch).
	BatchStats = batch.Stats
)

// SweepGrid builds the v0 x vth x repeats scenario cross product over a
// base configuration with seeds pre-derived in scenario order.
func SweepGrid(base Config, v0s, vths []float64, repeats, steps int, seed uint64) []SweepScenario {
	return sweep.Grid(base, v0s, vths, repeats, steps, seed)
}

// RunSweep fans the scenarios across a bounded worker pool and returns
// results in scenario order; per-scenario failures land in Result.Err.
func RunSweep(scenarios []SweepScenario, opts SweepRunOpts) []SweepResult {
	return sweep.Run(scenarios, opts)
}

// RunVlasovSweep is RunSweep for Vlasov-Poisson scenarios.
func RunVlasovSweep(scenarios []VlasovScenario, opts SweepRunOpts) []VlasovSweepResult {
	return sweep.RunVlasov(scenarios, opts)
}

// FirstSweepError returns the first per-scenario error of a sweep, or
// nil when every scenario succeeded.
func FirstSweepError(results []SweepResult) error {
	return sweep.FirstError(results)
}

// ---------------------------------------------------------------------------
// Resumable campaigns

// Campaign types re-exported from internal/campaign.
type (
	// CampaignSpec defines a resumable campaign: a scenario grid
	// crossed with the method registry of Opts.Methods.
	CampaignSpec = campaign.Spec
	// CampaignRecord is one journal line of a campaign checkpoint.
	CampaignRecord = campaign.Record
	// CampaignRetryPolicy governs how failing cells are retried: the
	// attempt budget, and deterministic seeded-jitter exponential
	// backoff between transient-failure retries (set it as
	// CampaignSpec.Retry).
	CampaignRetryPolicy = campaign.RetryPolicy
)

// CampaignTransient reports whether an error looks like a failure
// worth retrying with backoff inside one run (network resets, injected
// RPC faults, anything implementing Transient() bool).
func CampaignTransient(err error) bool { return campaign.Transient(err) }

// CampaignPreemption reports whether an error marks a cell stopped by
// scheduling rather than by its own physics — a campaign interrupt or
// an expired distributed lease. Preempted executions are never
// journaled and never charged a retry attempt.
func CampaignPreemption(err error) bool { return campaign.Preemption(err) }

// RunCampaign executes a multi-method sweep campaign, appending each
// completed scenario x method cell to the journal at journalPath as it
// finishes (empty path disables journaling). If the journal already
// holds completed cells — from an interrupted earlier run — they are
// restored instead of re-run, and the final result set is bit-identical
// (wall-clock Elapsed aside) to an uninterrupted campaign at any worker
// count.
func RunCampaign(journalPath string, spec CampaignSpec) ([]SweepResult, error) {
	return campaign.Run(journalPath, spec)
}

// ResumeCampaign continues an interrupted campaign from its journal; it
// errors when journalPath has no journal. Failed cells are retried up
// to spec.Retry.MaxAttempts times across resumes (transient failures
// also back off and retry within one run, per spec.Retry), then their
// recorded failure becomes final.
func ResumeCampaign(journalPath string, spec CampaignSpec) ([]SweepResult, error) {
	return campaign.Resume(journalPath, spec)
}

// CampaignDigest hashes the physics payload of a result set (everything
// except wall-clock timings); equal digests mean bit-identical results.
func CampaignDigest(results []SweepResult) string {
	return campaign.Digest(results)
}

// CampaignArtifactDir returns the canonical directory for persistent
// training artifacts (trained model bundles, epoch-granular training
// checkpoints) attached to a campaign journal: "<journalPath>.artifacts".
// The journal owns results; the artifact directory owns the expensive
// training stages that produce them, and the two survive independently.
func CampaignArtifactDir(journalPath string) string {
	return campaign.ArtifactDir(journalPath)
}

// ---------------------------------------------------------------------------
// Campaign service (dlpicd)

// Campaign-service types re-exported from internal/serve: the
// long-running daemon behind cmd/dlpicd. Submissions are
// content-addressed (identical specs collapse onto one job), the queue
// is bounded, trained model bundles are shared across jobs by training
// fingerprint, and SIGTERM/kill -9 both resume from the campaign
// journal on the next start.
type (
	// Daemon is the campaign service: HTTP job submission, bounded
	// queue, executor pool, journal-backed persistence.
	Daemon = serve.Daemon
	// DaemonConfig configures a Daemon (data directory, queue capacity,
	// executor and worker counts).
	DaemonConfig = serve.Config
	// DaemonCampaignSpec is the wire-format campaign description one
	// submits to a Daemon (not to be confused with CampaignSpec, the
	// in-process campaign.Spec alias).
	DaemonCampaignSpec = serve.CampaignSpec
	// DaemonJobStatus is one job's wire-format snapshot.
	DaemonJobStatus = serve.JobStatus
)

// NewDaemon builds a campaign-service daemon over cfg.DataDir, resumes
// any unfinished jobs the directory records, and starts its executors.
// Serve its HTTP API with Daemon.Handler and stop it with Daemon.Drain.
func NewDaemon(cfg DaemonConfig) (*Daemon, error) { return serve.New(cfg) }

// ---------------------------------------------------------------------------
// Distributed campaign execution (dlpicd -coordinator + dlpicworker)

// Distributed-execution types re-exported from internal/dist: a
// coordinator leases pending campaign cells to worker processes over
// HTTP, heartbeats keep leases alive, expired leases return their
// cells to the pool, and only the coordinator writes the journal — so
// workers may be killed, stalled or disconnected at any instant and
// the campaign digest stays bit-identical to a serial run.
type (
	// DistHub routes distributed-execution RPCs to the coordinators of
	// the jobs currently running (mount with DistHub.Register, run jobs
	// with DistHub.Run).
	DistHub = dist.Hub
	// DistOptions configures coordinators (lease TTL, claim retry
	// pacing, log sink).
	DistOptions = dist.Options
	// DistWorker claims leased cells from a coordinator, executes them
	// with the sweep engine, heartbeats, and reports results back.
	DistWorker = dist.Worker
	// DistWorkerOptions configures a DistWorker (identity, client,
	// method registry, pacing).
	DistWorkerOptions = dist.WorkerOptions
	// DistClient is the worker-side HTTP client of the lease protocol,
	// optionally wrapped in a deterministic injected-fault plan.
	DistClient = dist.Client
	// DistFaultPlan is a deterministic seed-keyed schedule of injected
	// RPC faults (drops, discarded responses, delays) for chaos testing;
	// kind-scoped sub-plans (Kinds) target one RPC kind, e.g. bundle
	// fetches.
	DistFaultPlan = dist.FaultPlan
	// DistBundleRef addresses one trained model bundle on the wire:
	// backing method, storage fingerprint, and the content digest the
	// worker verifies downloads against.
	DistBundleRef = dist.BundleRef
	// DistBundleCache is a worker's on-disk LRU cache of downloaded
	// model bundles, keyed by fingerprint and digest-verified on insert.
	DistBundleCache = dist.BundleCache
	// DistCellGrant is one leased cell inside a batched claim response;
	// each granted cell carries its own lease and (for DL methods) the
	// bundle refs it needs.
	DistCellGrant = dist.CellGrant
)

// NewDistHub returns a hub whose coordinators run with opts. A serving
// daemon owns one hub for its lifetime.
func NewDistHub(opts DistOptions) *DistHub { return dist.NewHub(opts) }

// NewDistClient returns a worker-side client of the coordinator at
// base (e.g. "http://127.0.0.1:8350"); a non-nil plan injects its
// deterministic fault schedule on every RPC.
func NewDistClient(base string, plan *DistFaultPlan) *DistClient {
	return dist.NewClient(base, plan)
}

// NewDistWorker builds a worker over opts; drive it with
// DistWorker.Run.
func NewDistWorker(opts DistWorkerOptions) (*DistWorker, error) {
	return dist.NewWorker(opts)
}

// ParseDistFaultPlan parses the comma-separated fault-plan syntax of
// dlpicworker's -fault flag, e.g. "seed=7,drop=0.2,err=0.1,
// delay=0.15:40ms,bundle.drop=0.5" (a kind-prefixed field scopes to
// that RPC kind). An empty string is a nil (fault-free) plan.
func ParseDistFaultPlan(s string) (*DistFaultPlan, error) {
	return dist.ParseFaultPlan(s)
}

// NewDistBundleCache opens (creating if needed) a worker's on-disk
// model-bundle cache at dir, holding at most max bundles (<= 0 selects
// the dist default). Entries left by a previous worker process are
// adopted; bytes are digest-verified on use.
func NewDistBundleCache(dir string, max int) (*DistBundleCache, error) {
	return dist.NewBundleCache(dir, max)
}

// DistBundleRefFromFile builds the wire reference of a persisted model
// bundle for the given method name: fingerprint from the basename,
// digest and size from the bytes.
func DistBundleRefFromFile(method, path string) (DistBundleRef, error) {
	return dist.BundleRefFromFile(method, path)
}

// NewBatchedSolver starts a batched inference backend around a trained
// solver's network: set the result as the Batcher of a SweepMethodSpec
// registry entry and that method's field solves are stacked into shared
// PredictBatch calls,
// amortizing the network cost across the pool. Results are bit-identical
// to per-call NNSolver sweeps at any worker count and any maxBatch
// (<= 0 selects the default cap). Close the solver when the sweeps
// using it have returned.
func NewBatchedSolver(s *NNSolver, maxBatch int) (*BatchedSolver, error) {
	return batch.FromNNSolver(s, maxBatch)
}

// NewBatchedSolver32 is NewBatchedSolver on the opt-in float32
// inference path: the solver's dense weights are converted once and
// every stacked solve runs in float32 (about half the inference memory
// traffic). Results drift from the float64 path within the bounds
// reported by MeasureInferenceDrift; they remain bit-identical across
// worker counts and batch caps. Dense (MLP) networks only.
func NewBatchedSolver32(s *NNSolver, maxBatch int) (*BatchedSolver, error) {
	return batch.FromNNSolver32(s, maxBatch)
}

// InferenceDrift summarizes float32-vs-float64 prediction disagreement
// (see MeasureInferenceDrift).
type InferenceDrift = nn.Drift32

// MeasureInferenceDrift runs every row of x through both the float64
// network and its float32 conversion and reports the drift statistics —
// the accuracy harness behind the float32 inference opt-in
// (NNSolver.Inference32, NewBatchedSolver32).
func MeasureInferenceDrift(net *Network, x *tensor.Tensor, batchSize int) (InferenceDrift, error) {
	return nn.MeasureDrift32(net, x, batchSize)
}

// MeasureGrowthRate fits the exponential growth of the recorded
// mode-amplitude series using an automatic window between the noise
// floor and saturation.
func MeasureGrowthRate(rec *Recorder) (GrowthFit, error) {
	amps, err := rec.Series("mode")
	if err != nil {
		return GrowthFit{}, err
	}
	times := rec.Times()
	t0, t1, err := diag.AutoGrowthWindow(times, amps, 0.01, 0.3)
	if err != nil {
		return GrowthFit{}, err
	}
	return diag.FitGrowthRate(times, amps, t0, t1)
}

// TheoreticalGrowthRate returns the cold two-stream linear growth rate
// of the monitored mode for cfg (the "Linear Theory" slope of Fig. 4).
func TheoreticalGrowthRate(cfg Config) float64 {
	ts := theory.TwoStream{Wp: cfg.Wp, V0: cfg.V0, Vth: cfg.Vth}
	k := 2 * math.Pi * float64(cfg.DiagMode) / cfg.Length
	return ts.GrowthRate(k)
}

// SaveNetwork writes a bare network's architecture and weights to w;
// LoadNetwork restores it bit-identically. Use SaveSolver for the
// deployable bundle that also carries the preprocessing contract.
func SaveNetwork(net *Network, w io.Writer) error { return nn.Save(net, w) }

// LoadNetwork reads a network saved with SaveNetwork.
func LoadNetwork(r io.Reader) (*Network, error) { return nn.Load(r) }

// SaveSolver and LoadSolver persist a deployable solver bundle
// (architecture, weights, normalizer, binning spec).
func SaveSolver(s *NNSolver, cells int, path string) error {
	return core.SaveModelFile(s, cells, path)
}

// LoadSolver loads a solver bundle saved with SaveSolver.
func LoadSolver(path string) (*NNSolver, error) {
	return core.LoadModelFile(path)
}

// ---------------------------------------------------------------------------
// Vlasov extension (paper §VII: noise-free training data)

// VlasovConfig configures the 1D1V Vlasov-Poisson solver.
type VlasovConfig = vlasov.Config

// VlasovInit is the two-stream initial condition for the Vlasov solver.
type VlasovInit = vlasov.TwoStreamInit

// VlasovSweepOpts configures noise-free corpus generation.
type VlasovSweepOpts = dataset.VlasovGenerateOpts

// DefaultVlasovConfig returns the paper-box Vlasov configuration.
func DefaultVlasovConfig() VlasovConfig { return vlasov.Default() }

// NewVlasov builds a Vlasov-Poisson solver with a two-stream initial
// condition.
func NewVlasov(cfg VlasovConfig, init VlasovInit) (*vlasov.Solver, error) {
	return vlasov.New(cfg, init)
}

// GenerateVlasovDataset runs the noise-free Vlasov sweep (paper §VII).
func GenerateVlasovDataset(opts VlasovSweepOpts) (*Dataset, error) {
	return dataset.GenerateVlasov(opts)
}
