// Command dlpicworker is the distributed campaign worker: it claims
// leased cells from a coordinator-mode dlpicd (-coordinator URL),
// executes them with the sweep engine, heartbeats to keep its lease
// alive, and reports results back for journaling by the coordinator.
// Workers never write the journal, so a worker may be kill -9'd,
// SIGSTOPped past its lease, or disconnected at any instant without
// hurting the campaign — its cells are simply re-leased elsewhere and
// the final digest is bit-identical to a serial run.
//
// Model-free methods (traditional, oracle) execute from the worker's
// built-in registry. DL methods (mlp, cnn) require -cache-dir: their
// trained model bundles ship from the coordinator on first use —
// fingerprint-addressed, digest-verified — and land in the worker's
// on-disk LRU cache, so a fleet downloads each bundle once per worker
// rather than once per cell. -claim-batch asks the coordinator for up
// to k cells per claim round-trip (completion stays per-cell).
// -fault injects a deterministic, seed-keyed fault schedule on the RPC
// boundary (see dist.ParseFaultPlan; kind-scoped fields like
// bundle.drop=0.5 target one RPC kind) for chaos testing.
// SIGINT/SIGTERM stops gracefully between cells: an in-flight cell
// finishes and reports before the worker exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"dlpic/internal/dist"
	"dlpic/internal/experiments"
)

func main() {
	coordinator := flag.String("coordinator", "http://127.0.0.1:8350", "coordinator base URL (a dlpicd started with -coordinator)")
	id := flag.String("id", "", "worker id (required; lands in lease ids and coordinator logs)")
	methods := flag.String("methods", "traditional,oracle", "comma-separated method names this worker can execute (mlp/cnn need -cache-dir)")
	poll := flag.Duration("poll", 200*time.Millisecond, "idle claim poll period")
	fault := flag.String("fault", "", "injected RPC fault plan, e.g. seed=7,drop=0.2,bundle.delay=1:2s (empty = none)")
	once := flag.Bool("once", false, "exit when the coordinator reports all jobs done instead of polling for new ones")
	cacheDir := flag.String("cache-dir", "", "on-disk model-bundle cache directory (required for DL methods)")
	cacheMax := flag.Int("cache-max", dist.DefaultCacheEntries, "bundle cache capacity (LRU entries)")
	claimBatch := flag.Int("claim-batch", 1, "cells to request per claim round-trip (the coordinator may grant fewer)")
	flag.Parse()
	if err := run(*coordinator, *id, *methods, *poll, *fault, *once, *cacheDir, *cacheMax, *claimBatch); err != nil {
		fmt.Fprintln(os.Stderr, "dlpicworker:", err)
		os.Exit(1)
	}
}

func run(coordinator, id, methods string, poll time.Duration, fault string, once bool,
	cacheDir string, cacheMax, claimBatch int) error {
	if id == "" {
		return fmt.Errorf("-id is required")
	}
	names, needMLP, needCNN, err := experiments.ResolveMethodNames(methods)
	if err != nil {
		return err
	}
	// Split the registry: model-free names execute from built-in
	// factories; DL names are bundle-backed — the coordinator ships the
	// trained models, the cache holds them, experiments.BundleMethod
	// turns them into the exact per-call specs a serial run would use.
	var localNames, bundleNames []string
	for _, name := range names {
		if name == experiments.MethodMLP || name == experiments.MethodCNN {
			bundleNames = append(bundleNames, name)
		} else {
			localNames = append(localNames, name)
		}
	}
	opts := dist.WorkerOptions{
		ID:           id,
		Poll:         poll,
		ClaimBatch:   claimBatch,
		ExitWhenDone: once,
		Log:          os.Stderr,
	}
	if (needMLP || needCNN) && cacheDir == "" {
		return fmt.Errorf("DL methods need a bundle cache: set -cache-dir (got -methods %q)", methods)
	}
	if len(localNames) > 0 {
		specs, cleanup, err := experiments.MethodsWith(nil, localNames, experiments.MethodConfig{})
		if err != nil {
			return err
		}
		defer cleanup()
		opts.Methods = specs
	}
	if cacheDir != "" {
		cache, err := dist.NewBundleCache(cacheDir, cacheMax)
		if err != nil {
			return err
		}
		opts.Cache = cache
		opts.BundleMethod = experiments.BundleMethod
		opts.BundleMethods = bundleNames
	}
	plan, err := dist.ParseFaultPlan(fault)
	if err != nil {
		return err
	}
	opts.Client = dist.NewClient(coordinator, plan)
	w, err := dist.NewWorker(opts)
	if err != nil {
		return err
	}
	var stopped atomic.Bool
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintf(os.Stderr, "[worker %s] stopping after current cell\n", id)
		stopped.Store(true)
	}()
	fmt.Fprintf(os.Stderr, "[worker %s] claiming from %s (methods %v)\n", id, coordinator, names)
	return w.Run(stopped.Load)
}
