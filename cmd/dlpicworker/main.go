// Command dlpicworker is the distributed campaign worker: it claims
// leased cells from a coordinator-mode dlpicd (-coordinator URL),
// executes them with the sweep engine, heartbeats to keep its lease
// alive, and reports results back for journaling by the coordinator.
// Workers never write the journal, so a worker may be kill -9'd,
// SIGSTOPped past its lease, or disconnected at any instant without
// hurting the campaign — its cells are simply re-leased elsewhere and
// the final digest is bit-identical to a serial run.
//
// Workers execute model-free methods only (-methods, default
// traditional,oracle): method names cross the wire, trained model
// backends do not. -fault injects a deterministic, seed-keyed fault
// schedule on the RPC boundary (see dist.ParseFaultPlan) for chaos
// testing. SIGINT/SIGTERM stops gracefully between cells: an in-flight
// cell finishes and reports before the worker exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"dlpic/internal/dist"
	"dlpic/internal/experiments"
)

func main() {
	coordinator := flag.String("coordinator", "http://127.0.0.1:8350", "coordinator base URL (a dlpicd started with -coordinator)")
	id := flag.String("id", "", "worker id (required; lands in lease ids and coordinator logs)")
	methods := flag.String("methods", "traditional,oracle", "comma-separated model-free method names this worker can execute")
	poll := flag.Duration("poll", 200*time.Millisecond, "idle claim poll period")
	fault := flag.String("fault", "", "injected RPC fault plan, e.g. seed=7,drop=0.2,err=0.1,delay=0.15:40ms (empty = none)")
	once := flag.Bool("once", false, "exit when the coordinator reports all jobs done instead of polling for new ones")
	flag.Parse()
	if err := run(*coordinator, *id, *methods, *poll, *fault, *once); err != nil {
		fmt.Fprintln(os.Stderr, "dlpicworker:", err)
		os.Exit(1)
	}
}

func run(coordinator, id, methods string, poll time.Duration, fault string, once bool) error {
	if id == "" {
		return fmt.Errorf("-id is required")
	}
	names, needMLP, needCNN, err := experiments.ResolveMethodNames(methods)
	if err != nil {
		return err
	}
	if needMLP || needCNN {
		return fmt.Errorf("workers execute model-free methods only (got %q)", methods)
	}
	specs, cleanup, err := experiments.MethodsWith(nil, names, experiments.MethodConfig{})
	if err != nil {
		return err
	}
	defer cleanup()
	plan, err := dist.ParseFaultPlan(fault)
	if err != nil {
		return err
	}
	w, err := dist.NewWorker(dist.WorkerOptions{
		ID:           id,
		Client:       dist.NewClient(coordinator, plan),
		Methods:      specs,
		Poll:         poll,
		ExitWhenDone: once,
		Log:          os.Stderr,
	})
	if err != nil {
		return err
	}
	var stopped atomic.Bool
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintf(os.Stderr, "[worker %s] stopping after current cell\n", id)
		stopped.Store(true)
	}()
	fmt.Fprintf(os.Stderr, "[worker %s] claiming from %s (methods %v)\n", id, coordinator, names)
	return w.Run(stopped.Load)
}
